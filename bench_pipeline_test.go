// Per-phase pipeline benchmarks over the small/medium/large bench pages of
// internal/corpus. scripts/bench.sh runs exactly these and emits
// BENCH_pipeline.json (ns/op, B/op, allocs/op per phase) so successive PRs
// can diff the performance trajectory; the paper's Tables 16/17 make these
// phase costs a first-class result.
package omini_test

import (
	"testing"

	"omini/internal/combine"
	"omini/internal/core"
	"omini/internal/corpus"
	"omini/internal/htmlparse"
	"omini/internal/separator"
	"omini/internal/subtree"
	"omini/internal/tagtree"
	"omini/internal/tidy"
)

// benchPages resolves the three bench pages once per benchmark.
func forEachBenchPage(b *testing.B, fn func(b *testing.B, html string)) {
	b.Helper()
	for _, size := range corpus.BenchSizes {
		page := corpus.BenchPage(size)
		b.Run(size, func(b *testing.B) {
			b.SetBytes(int64(len(page.HTML)))
			b.ReportAllocs()
			fn(b, page.HTML)
		})
	}
}

// benchSubtreeOf resolves the compound-chosen subtree of the page, outside
// the timed loop.
func benchSubtreeOf(b *testing.B, html string) *tagtree.Node {
	b.Helper()
	root, err := tagtree.Parse(html)
	if err != nil {
		b.Fatal(err)
	}
	ranked := subtree.Compound().Rank(root)
	if len(ranked) == 0 {
		b.Fatal("no subtree candidates")
	}
	return ranked[0].Node
}

// BenchmarkTokenize measures the raw lexer pass alone.
func BenchmarkTokenize(b *testing.B) {
	forEachBenchPage(b, func(b *testing.B, html string) {
		for i := 0; i < b.N; i++ {
			if toks := htmlparse.Tokenize(html); len(toks) == 0 {
				b.Fatal("no tokens")
			}
		}
	})
}

// BenchmarkTidy measures syntactic normalization (lexing included, as the
// normalizer consumes the lexer directly).
func BenchmarkTidy(b *testing.B) {
	forEachBenchPage(b, func(b *testing.B, html string) {
		for i := 0; i < b.N; i++ {
			if toks := tidy.NormalizeTokens(html); len(toks) == 0 {
				b.Fatal("no tokens")
			}
		}
	})
}

// BenchmarkBuildTree measures tag tree construction from a pre-normalized
// token stream — the tree-build phase in isolation.
func BenchmarkBuildTree(b *testing.B) {
	forEachBenchPage(b, func(b *testing.B, html string) {
		toks := tidy.NormalizeTokens(html)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := tagtree.Build(toks); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSubtree measures the compound object-rich subtree ranking.
func BenchmarkSubtree(b *testing.B) {
	forEachBenchPage(b, func(b *testing.B, html string) {
		root, err := tagtree.Parse(html)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if ranked := subtree.Compound().Rank(root); len(ranked) == 0 {
				b.Fatal("no candidates")
			}
		}
	})
}

// BenchmarkSeparator measures the five separator heuristics plus the
// probabilistic combination on the chosen subtree.
func BenchmarkSeparator(b *testing.B) {
	probs := combine.PaperProbs()
	forEachBenchPage(b, func(b *testing.B, html string) {
		sub := benchSubtreeOf(b, html)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if cands := combine.Combine(sub, separator.All(), probs); len(cands) == 0 {
				b.Fatal("no candidates")
			}
		}
	})
}

// BenchmarkExtractE2E measures the full discovery pipeline per page — the
// end-to-end number the acceptance gate of this PR tracks.
func BenchmarkExtractE2E(b *testing.B) {
	forEachBenchPage(b, func(b *testing.B, html string) {
		e := core.New(core.Options{})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := e.Extract(html); err != nil {
				b.Fatal(err)
			}
		}
	})
}
