module omini

go 1.22
