// Package omini is a from-scratch Go implementation of Omini, the fully
// automated object extraction system for the World Wide Web of Buttler, Liu
// and Pu (ICDCS 2001).
//
// Given an HTML page containing multiple data objects — search results,
// product listings, news items — Omini extracts the objects with no
// site-specific configuration, in three phases:
//
//  1. The page is normalized into a well-formed document and converted to a
//     tag tree.
//  2. The object-rich subtree is located (combining fanout, size-increase
//     and tag-count heuristics), then the object separator tag is
//     discovered by probabilistically combining five independent heuristics
//     (standard deviation, repeating pattern, identifiable path separator,
//     partial path, and sibling tag).
//  3. Candidate objects are constructed around the separator and refined,
//     dropping candidates that do not structurally conform to the majority.
//
// The quickest route in is Extract:
//
//	objects, err := omini.Extract(html)
//	for _, o := range objects {
//	    fmt.Println(o.Text())
//	}
//
// For control over heuristics, refinement, and the per-site rule cache that
// halves repeat-extraction cost, construct an Extractor. The internal
// packages additionally expose every individual heuristic, the synthetic
// evaluation corpus, and the benchmark harness that regenerates each table
// of the paper; see DESIGN.md and EXPERIMENTS.md.
package omini
