#!/bin/sh
# Per-phase pipeline benchmark runner. Runs the Benchmark{Tokenize,Tidy,
# BuildTree,Subtree,Separator,ExtractE2E} suite over the small/medium/large
# bench pages and emits BENCH_pipeline.json with ns/op, B/op and allocs/op
# per phase, so successive PRs can diff the performance trajectory.
#
#   ./scripts/bench.sh                # run, refresh "current" in the JSON
#   ./scripts/bench.sh -rebaseline    # also overwrite the stored baseline
#
# The baseline lives in scripts/bench_baseline.json (committed); the emitted
# BENCH_pipeline.json carries both baseline and current so the delta is
# visible in one file. BENCH_COUNT (default 3) repetitions are taken and the
# fastest run per benchmark is kept; BENCH_TIME (default 1s) sets -benchtime.
set -eu

cd "$(dirname "$0")/.."

REBASELINE=0
[ "${1:-}" = "-rebaseline" ] && REBASELINE=1

COUNT=${BENCH_COUNT:-3}
BENCHTIME=${BENCH_TIME:-1s}
BASELINE=scripts/bench_baseline.json
OUT=BENCH_pipeline.json

raw=$(go test -run '^$' \
    -bench '^Benchmark(Tokenize|Tidy|BuildTree|Subtree|Separator|ExtractE2E)$' \
    -benchmem -benchtime "$BENCHTIME" -count "$COUNT" .)

printf '%s\n' "$raw" >&2

# Fold repeated runs to the fastest and print one JSON object body.
current=$(printf '%s\n' "$raw" | awk '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns = bop = aop = ""
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op")     ns  = $(i-1)
        if ($i == "B/op")      bop = $(i-1)
        if ($i == "allocs/op") aop = $(i-1)
    }
    if (ns == "") next
    if (!(name in best) || ns + 0 < best[name] + 0) {
        best[name] = ns; bmem[name] = bop; ballocs[name] = aop
        if (!(name in seen)) { order[++n] = name; seen[name] = 1 }
    }
}
END {
    for (i = 1; i <= n; i++) {
        name = order[i]
        printf "    \"%s\": {\"ns_op\": %s, \"b_op\": %s, \"allocs_op\": %s}%s\n", \
            name, best[name], bmem[name], ballocs[name], (i < n ? "," : "")
    }
}')

if [ "$REBASELINE" = 1 ] || [ ! -f "$BASELINE" ]; then
    {
        echo '{'
        printf '%s\n' "$current"
        echo '}'
    } > "$BASELINE"
    echo "==> baseline written to $BASELINE" >&2
fi

# Baseline object body: strip the outer braces of the stored file.
baseline=$(sed '1d;$d' "$BASELINE")

{
    echo '{'
    echo '  "suite": "go test -bench ^Benchmark(Tokenize|Tidy|BuildTree|Subtree|Separator|ExtractE2E)$ -benchmem",'
    echo "  \"benchtime\": \"$BENCHTIME\","
    echo "  \"count\": $COUNT,"
    echo '  "baseline": {'
    printf '%s\n' "$baseline" | sed 's/^    /      /'
    echo '  },'
    echo '  "current": {'
    printf '%s\n' "$current" | sed 's/^    /      /'
    echo '  }'
    echo '}'
} > "$OUT"

echo "==> wrote $OUT" >&2
