#!/bin/sh
# Pre-merge check: formatting, vet, build, and the full test suite under
# the race detector. Run from the repository root:
#
#   ./scripts/ci.sh
set -eu

cd "$(dirname "$0")/.."

echo "==> gofmt -s"
unformatted=$(gofmt -s -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt -s needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> go vet ./..."
go vet ./...

# Project invariants: the governor, observability, error-wrapping,
# context, purity, and concurrency/resource-hygiene contracts are
# enforced mechanically (DESIGN.md §11, §16). Deliberate exceptions
# live in lint.baseline; the second run fails if any baseline entry
# names code that no longer exists. OMINILINT=0 skips (e.g. while
# iterating on a known-red tree).
OMINILINT="${OMINILINT:-1}"
if [ "$OMINILINT" != "0" ]; then
    echo "==> ominilint ./..."
    go run ./cmd/ominilint -baseline=lint.baseline ./...
    echo "==> ominilint stale-baseline check"
    go run ./cmd/ominilint -only=baseline -baseline=lint.baseline ./...
fi

echo "==> go build ./..."
go build ./...

echo "==> go test -race ./..."
go test -race ./...

# Targeted race pass over the distributed layer: the packages whose
# goroutines, locks, and channels the concurrency analyzers reason
# about get an extra uncached -race run under a hard time budget, so a
# schedule-dependent regression cannot hide behind the test cache.
# RACE_BUDGET=0 skips.
RACE_BUDGET="${RACE_BUDGET:-240s}"
if [ "$RACE_BUDGET" != "0" ]; then
    echo "==> distributed-layer race pass (-count=1, ${RACE_BUDGET} budget)"
    go test -race -count=1 -timeout "$RACE_BUDGET" \
        ./internal/farm/ ./internal/ruledist/ ./internal/cluster/ ./internal/obs/
fi

# Cluster mode: the kill-a-node chaos proof must stay race-clean — a
# 200-page batch (fetched through connection resets and slow-drip
# responses) across a three-node cluster with one node killed mid-batch
# completes 100% in input order, with failover and ejection recorded
# (DESIGN.md §12).
echo "==> cluster kill-a-node chaos under -race"
go test -race -run '^TestKillANodeChaosProof$' ./internal/cluster/

# Warm failover: the kill extends to a restart. In a three-node cluster
# that has learned 8 sites and replicated every rule, killing the owner
# of the most sites must leave every remapped site served fast-path by
# its new owner with zero relearns; the killed node must then restart
# into a warm cache — rules pulled from ring peers before /readyz
# flips, zero learns after re-admission (DESIGN.md §15).
echo "==> warm-failover restart chaos under -race"
go test -race -run '^TestWarmFailoverChaosProof$' ./internal/ruledist/

# Resource governor: every adversarial page in testdata/pathological must
# extract or fail fast with a typed limit/deadline error under the race
# detector — no hangs, panics, or stack overflows (DESIGN.md §10).
echo "==> pathological corpus under -race"
go test -race -run Pathological ./...

# Fuzz smoke: each target runs briefly so a lexer or builder regression that
# panics on malformed input fails the merge, without the cost of a long
# campaign. FUZZTIME=0 skips (e.g. on machines without the fuzz cache).
FUZZTIME="${FUZZTIME:-10s}"
if [ "$FUZZTIME" != "0" ]; then
    echo "==> fuzz smoke (${FUZZTIME} per target)"
    go test -run '^$' -fuzz '^FuzzTokenize$' -fuzztime "$FUZZTIME" ./internal/htmlparse/
    go test -run '^$' -fuzz '^FuzzParse$' -fuzztime "$FUZZTIME" ./internal/tagtree/
    go test -run '^$' -fuzz '^FuzzSnapshotCodec$' -fuzztime "$FUZZTIME" ./internal/farm/
fi

# Wrapper farm: the fast/slow-path parity suite is the farm's core
# correctness claim — rule replay must be byte-identical to full
# discovery on every golden page, through core and through the farm's
# caching layers, under the race detector (DESIGN.md §13). The full
# `go test -race ./...` above already runs it; this named gate keeps
# the claim visible even if the suite is ever filtered there.
echo "==> fast/slow-path parity under -race"
go test -race -run 'Parity' .

# Bench smoke: one iteration of every benchmark proves the harness still
# compiles and runs; timing is scripts/bench.sh's job.
echo "==> bench smoke (-benchtime=1x)"
go test -run '^$' -bench . -benchtime=1x ./... > /dev/null

# Observability: the telemetry package must stay vet- and race-clean on its
# own (it is imported by every layer), and a real ominiserve process must
# expose non-empty metrics and profiles. OBS_SMOKE=0 skips the server smoke
# (e.g. where binding a loopback port is not allowed).
echo "==> go vet ./internal/obs/..."
go vet ./internal/obs/...
go test -race ./internal/obs/...

OBS_SMOKE="${OBS_SMOKE:-1}"
if [ "$OBS_SMOKE" != "0" ]; then
    echo "==> ominiserve /metricsz + pprof smoke"
    tmpdir=$(mktemp -d)
    trap 'kill "$srv_pid" 2>/dev/null || true; rm -rf "$tmpdir"' EXIT
    go build -o "$tmpdir/ominiserve" ./cmd/ominiserve
    "$tmpdir/ominiserve" -addr 127.0.0.1:0 2> "$tmpdir/serve.log" &
    srv_pid=$!
    # The first log line is JSON with an "addr" field naming the bound port.
    addr=""
    for _ in $(seq 1 50); do
        addr=$(sed -n 's/.*"addr":"\([^"]*\)".*/\1/p' "$tmpdir/serve.log" | head -n 1)
        [ -n "$addr" ] && break
        sleep 0.1
    done
    if [ -z "$addr" ]; then
        echo "ominiserve did not report a listen address" >&2
        cat "$tmpdir/serve.log" >&2
        exit 1
    fi
    metrics=$(curl -sf "http://$addr/metricsz")
    echo "$metrics" | grep -q 'omini_phase_seconds_bucket{phase="tidy"' || {
        echo "/metricsz missing phase histograms:" >&2
        echo "$metrics" | head -n 20 >&2
        exit 1
    }
    echo "$metrics" | grep -q '^serve_panics 0$' || {
        echo "/metricsz missing serve counters" >&2
        exit 1
    }
    heap=$(curl -sf "http://$addr/debug/pprof/heap?debug=1")
    [ -n "$heap" ] || { echo "/debug/pprof/heap returned empty body" >&2; exit 1; }
    kill "$srv_pid"
    wait "$srv_pid" 2>/dev/null || true
    trap - EXIT
    rm -rf "$tmpdir"
fi

# Wrapper farm warm-path smoke: a live ominiserve with -rule-store takes
# 10 pages from each of the 15 sitegen test-set hosts (150 requests).
# The first request per host learns; every later one must replay, so
# the farm hit rate must reach 0.9 and the fast-path p50 must beat the
# slow-path p50 on /metricsz. The store file must survive shutdown.
# FARM_SMOKE=0 skips (same caveats as OBS_SMOKE).
FARM_SMOKE="${FARM_SMOKE:-1}"
if [ "$FARM_SMOKE" != "0" ]; then
    echo "==> warm-farm smoke: 150 requests, hit-rate + latency gates"
    tmpdir=$(mktemp -d)
    trap 'kill "$srv_pid" 2>/dev/null || true; rm -rf "$tmpdir"' EXIT
    go run ./cmd/sitegen -out "$tmpdir/corpus" -pages 10 -set test -q
    go build -o "$tmpdir/ominiserve" ./cmd/ominiserve
    "$tmpdir/ominiserve" -addr 127.0.0.1:0 -rule-store "$tmpdir/rules.json" \
        2> "$tmpdir/serve.log" &
    srv_pid=$!
    addr=""
    for _ in $(seq 1 50); do
        addr=$(sed -n 's/.*"addr":"\([^"]*\)".*/\1/p' "$tmpdir/serve.log" | head -n 1)
        [ -n "$addr" ] && break
        sleep 0.1
    done
    if [ -z "$addr" ]; then
        echo "ominiserve did not report a listen address" >&2
        cat "$tmpdir/serve.log" >&2
        exit 1
    fi
    for sitedir in "$tmpdir/corpus"/*/; do
        site=$(basename "$sitedir")
        for pagefile in "$sitedir"*.html; do
            curl -sf --data-binary @"$pagefile" \
                "http://$addr/extract?site=$site" > /dev/null || {
                echo "extract failed for $site ($pagefile)" >&2
                exit 1
            }
        done
    done
    metrics=$(curl -sf "http://$addr/metricsz")
    hits=$(echo "$metrics" | awk '$1 == "farm_hits" { print $2 }')
    misses=$(echo "$metrics" | awk '$1 == "farm_misses" { print $2 }')
    if [ -z "$hits" ] || [ -z "$misses" ] || [ "$misses" -eq 0 ]; then
        echo "farm counters missing from /metricsz (hits=$hits misses=$misses)" >&2
        exit 1
    fi
    # hits/(hits+misses) >= 0.9 without floating point: one miss per
    # host to learn, nine replays. Equality passes.
    if [ $((hits * 10)) -lt $(((hits + misses) * 9)) ]; then
        echo "warm-farm hit rate below 0.9: hits=$hits misses=$misses" >&2
        exit 1
    fi
    fast_p50=$(echo "$metrics" | awk '/^farm_path_seconds_quantile\{path="fast",quantile="0.5"\}/ { print $2 }')
    slow_p50=$(echo "$metrics" | awk '/^farm_path_seconds_quantile\{path="slow",quantile="0.5"\}/ { print $2 }')
    if [ -z "$fast_p50" ] || [ -z "$slow_p50" ]; then
        echo "farm path latency quantiles missing from /metricsz" >&2
        exit 1
    fi
    awk -v fast="$fast_p50" -v slow="$slow_p50" \
        'BEGIN { exit !(fast + 0 < slow + 0) }' || {
        echo "fast-path p50 ($fast_p50) not below slow-path p50 ($slow_p50)" >&2
        exit 1
    }
    echo "    hit rate: $hits/$((hits + misses)), fast p50 ${fast_p50}s vs slow p50 ${slow_p50}s"
    # Distributed tracing rides the same live server: the 150 requests
    # above were all sampled (default -trace-sample 1.0), so /tracez
    # must hold both farm paths — the first request per host traced the
    # slow (discovery) path, the replays the fast path — and a trace
    # fetched by ID must carry its handler root span.
    traces=$(curl -sf "http://$addr/tracez")
    echo "$traces" | grep -q '"path": "fast"' || {
        echo "/tracez holds no fast-path trace" >&2
        echo "$traces" | head -n 20 >&2
        exit 1
    }
    echo "$traces" | grep -q '"path": "slow"' || {
        echo "/tracez holds no slow-path trace" >&2
        echo "$traces" | head -n 20 >&2
        exit 1
    }
    tid=$(echo "$traces" | sed -n 's/.*"traceId": "\([0-9a-f]\{32\}\)".*/\1/p' | head -n 1)
    if [ -z "$tid" ]; then
        echo "/tracez summaries carry no well-formed 32-hex traceId" >&2
        exit 1
    fi
    trace_detail=$(curl -sf "http://$addr/tracez?id=$tid")
    echo "$trace_detail" | grep -q '"name": "handler"' || {
        echo "/tracez?id=$tid lacks the handler root span" >&2
        echo "$trace_detail" | head -n 20 >&2
        exit 1
    }
    echo "    tracez: fast + slow path traces present, $tid has a span tree"
    kill "$srv_pid"
    wait "$srv_pid" 2>/dev/null || true
    grep -q '"version": 2' "$tmpdir/rules.json" || {
        echo "-rule-store file missing or not a v2 snapshot after shutdown" >&2
        exit 1
    }
    trap - EXIT
    rm -rf "$tmpdir"
fi

echo "==> ci.sh: all checks passed"
