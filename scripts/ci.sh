#!/bin/sh
# Pre-merge check: formatting, vet, build, and the full test suite under
# the race detector. Run from the repository root:
#
#   ./scripts/ci.sh
set -eu

cd "$(dirname "$0")/.."

echo "==> gofmt -s"
unformatted=$(gofmt -s -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt -s needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> go vet ./..."
go vet ./...

# Project invariants: the governor, observability, error-wrapping,
# context and purity contracts are enforced mechanically (DESIGN.md
# §11). OMINILINT=0 skips (e.g. while iterating on a known-red tree).
OMINILINT="${OMINILINT:-1}"
if [ "$OMINILINT" != "0" ]; then
    echo "==> ominilint ./..."
    go run ./cmd/ominilint ./...
fi

echo "==> go build ./..."
go build ./...

echo "==> go test -race ./..."
go test -race ./...

# Cluster mode: the kill-a-node chaos proof must stay race-clean — a
# 200-page batch (fetched through connection resets and slow-drip
# responses) across a three-node cluster with one node killed mid-batch
# completes 100% in input order, with failover and ejection recorded
# (DESIGN.md §12).
echo "==> cluster kill-a-node chaos under -race"
go test -race -run '^TestKillANodeChaosProof$' ./internal/cluster/

# Resource governor: every adversarial page in testdata/pathological must
# extract or fail fast with a typed limit/deadline error under the race
# detector — no hangs, panics, or stack overflows (DESIGN.md §10).
echo "==> pathological corpus under -race"
go test -race -run Pathological ./...

# Fuzz smoke: each target runs briefly so a lexer or builder regression that
# panics on malformed input fails the merge, without the cost of a long
# campaign. FUZZTIME=0 skips (e.g. on machines without the fuzz cache).
FUZZTIME="${FUZZTIME:-10s}"
if [ "$FUZZTIME" != "0" ]; then
    echo "==> fuzz smoke (${FUZZTIME} per target)"
    go test -run '^$' -fuzz '^FuzzTokenize$' -fuzztime "$FUZZTIME" ./internal/htmlparse/
    go test -run '^$' -fuzz '^FuzzParse$' -fuzztime "$FUZZTIME" ./internal/tagtree/
fi

# Bench smoke: one iteration of every benchmark proves the harness still
# compiles and runs; timing is scripts/bench.sh's job.
echo "==> bench smoke (-benchtime=1x)"
go test -run '^$' -bench . -benchtime=1x ./... > /dev/null

# Observability: the telemetry package must stay vet- and race-clean on its
# own (it is imported by every layer), and a real ominiserve process must
# expose non-empty metrics and profiles. OBS_SMOKE=0 skips the server smoke
# (e.g. where binding a loopback port is not allowed).
echo "==> go vet ./internal/obs/..."
go vet ./internal/obs/...
go test -race ./internal/obs/...

OBS_SMOKE="${OBS_SMOKE:-1}"
if [ "$OBS_SMOKE" != "0" ]; then
    echo "==> ominiserve /metricsz + pprof smoke"
    tmpdir=$(mktemp -d)
    trap 'kill "$srv_pid" 2>/dev/null || true; rm -rf "$tmpdir"' EXIT
    go build -o "$tmpdir/ominiserve" ./cmd/ominiserve
    "$tmpdir/ominiserve" -addr 127.0.0.1:0 2> "$tmpdir/serve.log" &
    srv_pid=$!
    # The first log line is JSON with an "addr" field naming the bound port.
    addr=""
    for _ in $(seq 1 50); do
        addr=$(sed -n 's/.*"addr":"\([^"]*\)".*/\1/p' "$tmpdir/serve.log" | head -n 1)
        [ -n "$addr" ] && break
        sleep 0.1
    done
    if [ -z "$addr" ]; then
        echo "ominiserve did not report a listen address" >&2
        cat "$tmpdir/serve.log" >&2
        exit 1
    fi
    metrics=$(curl -sf "http://$addr/metricsz")
    echo "$metrics" | grep -q 'omini_phase_seconds_bucket{phase="tidy"' || {
        echo "/metricsz missing phase histograms:" >&2
        echo "$metrics" | head -n 20 >&2
        exit 1
    }
    echo "$metrics" | grep -q '^serve_panics 0$' || {
        echo "/metricsz missing serve counters" >&2
        exit 1
    }
    heap=$(curl -sf "http://$addr/debug/pprof/heap?debug=1")
    [ -n "$heap" ] || { echo "/debug/pprof/heap returned empty body" >&2; exit 1; }
    kill "$srv_pid"
    wait "$srv_pid" 2>/dev/null || true
    trap - EXIT
    rm -rf "$tmpdir"
fi

echo "==> ci.sh: all checks passed"
