#!/bin/sh
# Pre-merge check: formatting, vet, build, and the full test suite under
# the race detector. Run from the repository root:
#
#   ./scripts/ci.sh
set -eu

cd "$(dirname "$0")/.."

echo "==> gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test -race ./..."
go test -race ./...

# Fuzz smoke: each target runs briefly so a lexer or builder regression that
# panics on malformed input fails the merge, without the cost of a long
# campaign. FUZZTIME=0 skips (e.g. on machines without the fuzz cache).
FUZZTIME="${FUZZTIME:-10s}"
if [ "$FUZZTIME" != "0" ]; then
    echo "==> fuzz smoke (${FUZZTIME} per target)"
    go test -run '^$' -fuzz '^FuzzTokenize$' -fuzztime "$FUZZTIME" ./internal/htmlparse/
    go test -run '^$' -fuzz '^FuzzParse$' -fuzztime "$FUZZTIME" ./internal/tagtree/
fi

# Bench smoke: one iteration of every benchmark proves the harness still
# compiles and runs; timing is scripts/bench.sh's job.
echo "==> bench smoke (-benchtime=1x)"
go test -run '^$' -bench . -benchtime=1x ./... > /dev/null

echo "==> ci.sh: all checks passed"
