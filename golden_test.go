// Golden regression tests: the exact extraction outcome (subtree path,
// separator tag, object count, first/last object text) of a fixed set of
// corpus pages, checked in under testdata/golden/. The goldens were
// generated before the hot-path optimization pass, so a passing run proves
// the optimized pipeline is output-identical to the reference behavior.
//
// Regenerate (only when extraction behavior changes intentionally) with:
//
//	go test -run TestGoldenExtraction -update .
package omini_test

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"omini/internal/core"
	"omini/internal/corpus"
	"omini/internal/sitegen"
)

var updateGolden = flag.Bool("update", false, "rewrite golden extraction files")

// goldenRecord is the pinned outcome of one page's extraction.
type goldenRecord struct {
	Page        string `json:"page"`
	SubtreePath string `json:"subtree_path"`
	Separator   string `json:"separator"`
	ObjectCount int    `json:"object_count"`
	FirstObject string `json:"first_object_text"`
	LastObject  string `json:"last_object_text"`
}

// goldenSites are the corpus sites pinned by the goldens, spanning every
// layout family and noise profile the generator produces.
var goldenSites = []string{
	"agents.umbc.example",
	"www.alphabetstreet.example",
	"www.alphaworks.example",
	"www.amazon.example",
	"www.bookpool.example",
	"cbc.example",
	"www.google.example",
	"www.chapters.example",
	"www.aw.example",
}

// goldenPages assembles the pinned page set: the three bench pages, the two
// paper replicas, and one page from each golden site (≥10 pages total).
func goldenPages(t *testing.T) []sitegen.Page {
	t.Helper()
	pages := make([]sitegen.Page, 0, len(goldenSites)+5)
	for _, size := range corpus.BenchSizes {
		pages = append(pages, corpus.BenchPage(size))
	}
	pages = append(pages, sitegen.Canoe(), sitegen.LOC())
	specs := corpus.AllSpecs()
	for _, site := range goldenSites {
		found := false
		for _, spec := range specs {
			if spec.Name == site {
				pages = append(pages, spec.Page(1))
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("golden site %q not in corpus", site)
		}
	}
	return pages
}

func TestGoldenExtraction(t *testing.T) {
	e := core.New(core.Options{})
	for _, page := range goldenPages(t) {
		page := page
		t.Run(page.Name, func(t *testing.T) {
			res, err := e.Extract(page.HTML)
			if err != nil {
				t.Fatalf("extract: %v", err)
			}
			got := goldenRecord{
				Page:        page.Name,
				SubtreePath: res.SubtreePath,
				Separator:   res.Separator,
				ObjectCount: len(res.Objects),
			}
			if n := len(res.Objects); n > 0 {
				got.FirstObject = res.Objects[0].Text()
				got.LastObject = res.Objects[n-1].Text()
			}
			path := filepath.Join("testdata", "golden", page.Name+".json")
			if *updateGolden {
				data, err := json.MarshalIndent(got, "", "  ")
				if err != nil {
					t.Fatal(err)
				}
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			var want goldenRecord
			if err := json.Unmarshal(data, &want); err != nil {
				t.Fatalf("corrupt golden %s: %v", path, err)
			}
			if got != want {
				t.Errorf("extraction diverged from golden %s:\n got: %+v\nwant: %+v", path, got, want)
			}
		})
	}
}
