// Golden decision-trace tests: the trace an extraction reports must agree
// with the extraction itself. For pinned golden pages, the traced run's
// winning subtree path and separator tag must equal the checked-in golden
// record, the trace's combined ranking must put the winner first, and the
// per-phase span list must cover the whole pipeline. A trace that named a
// different winner than the extraction would be worse than no trace.
package omini_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"omini/internal/core"
	"omini/internal/corpus"
	"omini/internal/obs"
	"omini/internal/sitegen"
)

// tracedGoldenPages are the pages whose decision traces are pinned against
// the extraction goldens: the two paper replicas and one generated site.
func tracedGoldenPages(t *testing.T) []sitegen.Page {
	t.Helper()
	pages := []sitegen.Page{sitegen.Canoe(), sitegen.LOC()}
	for _, spec := range corpus.AllSpecs() {
		if spec.Name == "www.amazon.example" {
			return append(pages, spec.Page(1))
		}
	}
	t.Fatal("www.amazon.example not in corpus")
	return nil
}

func TestGoldenDecisionTrace(t *testing.T) {
	e := core.New(core.Options{})
	for _, page := range tracedGoldenPages(t) {
		page := page
		t.Run(page.Name, func(t *testing.T) {
			data, err := os.ReadFile(filepath.Join("testdata", "golden", page.Name+".json"))
			if err != nil {
				t.Fatalf("missing golden: %v", err)
			}
			var want goldenRecord
			if err := json.Unmarshal(data, &want); err != nil {
				t.Fatal(err)
			}

			ctx, _ := obs.WithTraceRecorder(t.Context(), false)
			res, err := e.ExtractContext(ctx, page.HTML)
			if err != nil {
				t.Fatalf("extract: %v", err)
			}
			tr := res.Trace
			if tr == nil {
				t.Fatal("traced extraction returned no trace")
			}

			// The trace must name the same winners the golden extraction
			// pinned.
			if tr.SubtreePath != want.SubtreePath {
				t.Errorf("trace subtree = %q, golden %q", tr.SubtreePath, want.SubtreePath)
			}
			if tr.Separator != want.Separator {
				t.Errorf("trace separator = %q, golden %q", tr.Separator, want.Separator)
			}
			if tr.Objects != want.ObjectCount {
				t.Errorf("trace objects = %d, golden %d", tr.Objects, want.ObjectCount)
			}

			// Internal consistency: the rankings the trace reports must
			// actually rank the winners first.
			if len(tr.SubtreeRanking) == 0 || tr.SubtreeRanking[0].Key != tr.SubtreePath {
				t.Errorf("subtree ranking does not lead with the winner: %+v", tr.SubtreeRanking)
			}
			if len(tr.Combined) == 0 || tr.Combined[0].Key != tr.Separator {
				t.Errorf("combined ranking does not lead with the winner: %+v", tr.Combined)
			}
			if len(tr.SeparatorRankings) == 0 {
				t.Error("trace has no per-heuristic rankings")
			}
			if tr.Confidence <= 0 || tr.Confidence > 1 {
				t.Errorf("confidence = %v, want (0, 1]", tr.Confidence)
			}

			// The span list must cover every pipeline phase, in order.
			wantPhases := []string{"tokenize", "tidy", "build", "subtree", "separator", "extract"}
			if len(tr.Phases) != len(wantPhases) {
				t.Fatalf("trace has %d phases, want %d: %+v", len(tr.Phases), len(wantPhases), tr.Phases)
			}
			for i, ph := range wantPhases {
				if tr.Phases[i].Name != ph {
					t.Errorf("phase %d = %q, want %q", i, tr.Phases[i].Name, ph)
				}
				if tr.Phases[i].DurationNS < 0 {
					t.Errorf("phase %q has negative duration", ph)
				}
			}

			// The trace must round-trip through JSON (it is served inline by
			// /extract?trace=1 and printed by omini -trace).
			blob, err := json.Marshal(tr)
			if err != nil {
				t.Fatalf("trace does not marshal: %v", err)
			}
			var back obs.DecisionTrace
			if err := json.Unmarshal(blob, &back); err != nil {
				t.Fatalf("trace does not round-trip: %v", err)
			}
			if back.SubtreePath != tr.SubtreePath || back.Separator != tr.Separator {
				t.Error("trace winners lost in JSON round-trip")
			}
		})
	}
}
