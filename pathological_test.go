package omini_test

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"omini"
	"omini/internal/obs"
)

// loadPathologicalCorpus reads the committed adversarial pages from
// testdata/pathological/.
func loadPathologicalCorpus(t *testing.T) map[string]string {
	t.Helper()
	dir := filepath.Join("testdata", "pathological")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("corpus missing (run go run ./internal/pathology/gen): %v", err)
	}
	pages := make(map[string]string)
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".html") {
			continue
		}
		body, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		pages[e.Name()] = string(body)
	}
	if len(pages) < 5 {
		t.Fatalf("corpus holds %d pages, want at least 5", len(pages))
	}
	return pages
}

// typedOutcome classifies an extraction result against the governor
// contract: success, a no-objects verdict, or a typed govern failure.
func typedOutcome(err error) (string, bool) {
	var lim *omini.ErrLimitExceeded
	switch {
	case err == nil:
		return "ok", true
	case errors.Is(err, omini.ErrNoObjects):
		return "no-objects", true
	case errors.As(err, &lim):
		return "limit:" + lim.Kind, true
	case errors.Is(err, omini.ErrDeadline):
		return "deadline", true
	}
	return err.Error(), false
}

// TestPathologicalCorpusChaos hammers every adversarial page with
// concurrent extractions (run under -race in CI) and checks the
// governor's core promise: each attempt completes within its budget —
// extracting, reporting no objects, or failing fast with a typed
// limit/deadline error. No hangs, no panics, no stack overflows.
func TestPathologicalCorpusChaos(t *testing.T) {
	pages := loadPathologicalCorpus(t)
	e := omini.NewExtractor()
	const passes = 3
	var wg sync.WaitGroup
	for name, html := range pages {
		for p := 0; p < passes; p++ {
			wg.Add(1)
			go func(name, html string, p int) {
				defer wg.Done()
				start := time.Now()
				_, err := e.ExtractResult(html)
				outcome, ok := typedOutcome(err)
				if !ok {
					t.Errorf("%s pass %d: untyped failure: %v", name, p, err)
				}
				// The default Deadline is 10s; even under -race an attempt
				// past 30s means cooperative cancellation failed somewhere.
				if d := time.Since(start); d > 30*time.Second {
					t.Errorf("%s pass %d: took %v (outcome %s), budget not enforced", name, p, d, outcome)
				}
			}(name, html, p)
		}
	}
	wg.Wait()
}

// TestPathologicalChaosRecord measures governed vs ungoverned behavior
// over the corpus for EXPERIMENTS.md. Gated behind OMINI_CHAOS_RECORD=1
// because the ungoverned arm deliberately runs without budgets and is
// slow by design; the deep-nesting page is excluded from that arm (its
// whole point is that only the depth budget makes it safe).
func TestPathologicalChaosRecord(t *testing.T) {
	if os.Getenv("OMINI_CHAOS_RECORD") != "1" {
		t.Skip("set OMINI_CHAOS_RECORD=1 to record the governed-vs-ungoverned comparison")
	}
	pages := loadPathologicalCorpus(t)
	governed := omini.NewExtractor()
	ungoverned := omini.NewExtractor(omini.WithLimits(omini.UnlimitedLimits()))

	fmt.Printf("%-24s %-12s %-14s %-12s %-14s\n", "page", "governed", "", "ungoverned", "")
	for name, html := range pages {
		gStart := time.Now()
		_, gErr := governed.ExtractResult(html)
		gDur := time.Since(gStart)
		gOut, _ := typedOutcome(gErr)

		uOut, uDur := "skipped", time.Duration(0)
		if name != "deep_nesting.html" {
			uStart := time.Now()
			_, uErr := ungoverned.ExtractResult(html)
			uDur = time.Since(uStart)
			uOut, _ = typedOutcome(uErr)
		}
		fmt.Printf("%-24s %-12s %-14s %-12s %-14s\n", name, gOut, gDur.Round(time.Millisecond), uOut, uDur.Round(time.Millisecond))
	}
	// The per-phase histograms for both arms accumulated in the default
	// registry; dump them so the record shows where the time went.
	_ = obs.Default.WritePrometheus(os.Stdout)
}
