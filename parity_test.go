// Fast/slow-path parity suite: the wrapper farm's entire value rests on
// the claim that replaying a learned rule (the Table 17 fast path) is a
// pure shortcut — same records, order-of-magnitude less work. This
// suite makes the claim falsifiable on every golden page: full Phase-2
// discovery and rule replay must produce byte-identical serialized
// output, both through core directly and through the farm (whose
// singleflight, LRU and versioning sit between the caller and core).
// ci.sh runs it under -race with the rest of the tree.
package omini_test

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"omini/internal/core"
	"omini/internal/farm"
	"omini/internal/obs"
)

// parityRecord serializes the extraction outcome fields the service
// exposes, so "byte-identical" covers everything a client can see:
// the rule itself, every object's text and size, raw (pre-refinement)
// object count and object order.
type parityRecord struct {
	SubtreePath string   `json:"subtree_path"`
	Separator   string   `json:"separator"`
	RawCount    int      `json:"raw_count"`
	Objects     []string `json:"objects"`
	Sizes       []int    `json:"sizes"`
}

func parityBytes(t *testing.T, res *core.Result) []byte {
	t.Helper()
	rec := parityRecord{
		SubtreePath: res.SubtreePath,
		Separator:   res.Separator,
		RawCount:    len(res.Raw),
	}
	for _, o := range res.Objects {
		rec.Objects = append(rec.Objects, o.Text())
		rec.Sizes = append(rec.Sizes, o.Size())
	}
	data, err := json.Marshal(rec)
	if err != nil {
		t.Fatalf("marshal parity record: %v", err)
	}
	return data
}

// TestFastSlowPathParity replays each golden page through
// ExtractWithRuleContext using the rule its own discovery produced and
// requires byte-identical output.
func TestFastSlowPathParity(t *testing.T) {
	e := core.New(core.Options{})
	ctx := context.Background()
	for _, page := range goldenPages(t) {
		page := page
		t.Run(page.Name, func(t *testing.T) {
			slow, err := e.ExtractContext(ctx, page.HTML)
			if err != nil {
				t.Fatalf("discovery: %v", err)
			}
			fast, err := e.ExtractWithRuleContext(ctx, page.HTML, slow.Rule(page.Site))
			if err != nil {
				t.Fatalf("rule replay: %v", err)
			}
			slowBytes, fastBytes := parityBytes(t, slow), parityBytes(t, fast)
			if !bytes.Equal(slowBytes, fastBytes) {
				t.Errorf("fast path diverged from discovery:\nslow: %s\nfast: %s",
					slowBytes, fastBytes)
			}
		})
	}
}

// TestFarmPathParity runs the same differential through the wrapper
// farm: the first request learns (slow path), the second replays (fast
// path), and the two must serialize identically — proving the farm's
// caching layers add no behavior of their own.
func TestFarmPathParity(t *testing.T) {
	f, err := farm.New(farm.Config{Stats: obs.NewRegistry()})
	if err != nil {
		t.Fatalf("farm.New: %v", err)
	}
	ctx := context.Background()
	for _, page := range goldenPages(t) {
		page := page
		t.Run(page.Name, func(t *testing.T) {
			slow, out, err := f.Extract(ctx, page.Site, page.HTML)
			if err != nil {
				t.Fatalf("learn: %v", err)
			}
			if !out.Learned {
				t.Fatalf("first farm request did not learn: %+v", out)
			}
			fast, out, err := f.Extract(ctx, page.Site, page.HTML)
			if err != nil {
				t.Fatalf("fast path: %v", err)
			}
			if !out.FromRule {
				t.Fatalf("second farm request did not replay: %+v", out)
			}
			slowBytes, fastBytes := parityBytes(t, slow), parityBytes(t, fast)
			if !bytes.Equal(slowBytes, fastBytes) {
				t.Errorf("farm fast path diverged from discovery:\nslow: %s\nfast: %s",
					slowBytes, fastBytes)
			}
		})
	}
}
