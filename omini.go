package omini

import (
	"context"

	"omini/internal/combine"
	"omini/internal/core"
	"omini/internal/extract"
	"omini/internal/govern"
	"omini/internal/nav"
	"omini/internal/rules"
	"omini/internal/separator"
	"omini/internal/subtree"
	"omini/internal/tagtree"
	"omini/internal/wrapgen"
)

// Object is one extracted data object.
type Object = extract.Object

// Rule is a learned per-site extraction rule (object-rich subtree path plus
// separator tag) that can be cached and replayed.
type Rule = rules.Rule

// RuleStore is a concurrency-safe collection of rules with JSON
// persistence.
type RuleStore = rules.Store

// NewRuleStore returns an empty rule store.
func NewRuleStore() *RuleStore { return rules.NewStore() }

// LoadRules reads a rule store previously written with (*RuleStore).Save.
func LoadRules(path string) (*RuleStore, error) { return rules.Load(path) }

// Result is the full outcome of one extraction: the objects, the discovered
// subtree path and separator tag, the combined candidate ranking, and
// per-phase timings.
type Result = core.Result

// Timing records per-phase extraction cost.
type Timing = core.Timing

// Errors surfaced by extraction; see the core package for details.
var (
	ErrNoObjects    = core.ErrNoObjects
	ErrRuleMismatch = core.ErrRuleMismatch
	// ErrDeadline marks a page that exceeded its wall-clock budget
	// (Limits.Deadline). It wraps context.DeadlineExceeded.
	ErrDeadline = govern.ErrDeadline
)

// ErrLimitExceeded reports a blown resource budget (input bytes,
// tokens, tree nodes, tree depth, or objects). Match with errors.As:
//
//	var lim *omini.ErrLimitExceeded
//	if errors.As(err, &lim) { ... lim.Kind ... }
type ErrLimitExceeded = govern.ErrLimitExceeded

// Limits bounds the resources one extraction may consume. Zero fields
// take DefaultLimits(); negative fields disable that limit.
type Limits = core.Limits

// DefaultLimits returns the production resource budgets every
// Extractor enforces unless overridden with WithLimits.
func DefaultLimits() Limits { return core.DefaultLimits() }

// UnlimitedLimits disables every resource budget — the pre-governor
// behavior, for trusted input and benchmarking.
func UnlimitedLimits() Limits { return govern.Unlimited() }

// WithLimits sets the extraction resource governor: hard budgets on
// input size, token count, tree size and depth, and object count, plus
// a per-page deadline. Violations surface as *ErrLimitExceeded or
// ErrDeadline.
func WithLimits(l Limits) Option {
	return optionFunc(func(o *core.Options) { o.Limits = l })
}

// Extract runs the full Omini pipeline with default options on an HTML page
// and returns the refined objects.
func Extract(html string) ([]Object, error) {
	res, err := NewExtractor().ExtractResult(html)
	if err != nil {
		return nil, err
	}
	return res.Objects, nil
}

// Extractor runs the Omini pipeline. The zero-argument constructor uses the
// paper's defaults (compound subtree heuristic, RSIPB separator
// combination, refinement on); options customize each stage.
type Extractor struct {
	inner *core.Extractor
}

// Option configures an Extractor.
type Option interface {
	apply(*core.Options)
}

type optionFunc func(*core.Options)

func (f optionFunc) apply(o *core.Options) { f(o) }

// WithoutRefinement disables the Phase-3 refinement step, returning every
// candidate object construction produces.
func WithoutRefinement() Option {
	return optionFunc(func(o *core.Options) { o.SkipRefine = true })
}

// WithSubtreeHeuristic selects the object-rich subtree heuristic by name:
// "HF", "GSI", "LTC" or "Compound" (the default). Unknown names keep the
// default.
func WithSubtreeHeuristic(name string) Option {
	return optionFunc(func(o *core.Options) {
		switch name {
		case "HF":
			o.Subtree = subtree.HF()
		case "GSI":
			o.Subtree = subtree.GSI()
		case "LTC":
			o.Subtree = subtree.LTC()
		case "Compound":
			o.Subtree = subtree.Compound()
		}
	})
}

// WithSeparatorHeuristics selects the separator heuristics to combine, by
// name ("SD", "RP", "IPS", "PP", "SB", plus the BYU baselines "HC" and
// "IT"). Unknown names are ignored; an empty selection keeps the default
// RSIPB combination.
func WithSeparatorHeuristics(names ...string) Option {
	return optionFunc(func(o *core.Options) {
		var hs []separator.Heuristic
		for _, name := range names {
			if h := separator.ByName(name); h != nil {
				hs = append(hs, h)
			}
		}
		if len(hs) > 0 {
			o.Separators = hs
		}
	})
}

// NewExtractor returns an Extractor configured by opts.
func NewExtractor(opts ...Option) *Extractor {
	var o core.Options
	for _, opt := range opts {
		opt.apply(&o)
	}
	return &Extractor{inner: core.New(o)}
}

// ExtractResult runs full discovery on an HTML page.
func (e *Extractor) ExtractResult(html string) (*Result, error) {
	return e.inner.Extract(html)
}

// ExtractResultContext is ExtractResult under a caller context. Pipeline
// phase timings land in the context's metrics registry
// (obs.WithRegistry), and when the context carries a trace recorder
// (obs.WithTraceRecorder) the result's Trace records every decision the
// pipeline made — subtree rankings, per-heuristic separator votes, the
// combined probabilities, and per-phase costs.
func (e *Extractor) ExtractResultContext(ctx context.Context, html string) (*Result, error) {
	return e.inner.ExtractContext(ctx, html)
}

// Objects runs full discovery and returns just the refined objects.
func (e *Extractor) Objects(html string) ([]Object, error) {
	res, err := e.inner.Extract(html)
	if err != nil {
		return nil, err
	}
	return res.Objects, nil
}

// Learn runs full discovery and returns both the result and a rule for the
// named site that replays the discovered subtree path and separator.
func (e *Extractor) Learn(site, html string) (*Result, Rule, error) {
	res, err := e.inner.Extract(html)
	if err != nil {
		return nil, Rule{}, err
	}
	return res, res.Rule(site), nil
}

// ExtractWithRule replays a cached rule on a page, skipping subtree and
// separator discovery — the order-of-magnitude-faster path of the paper's
// Table 17. It returns ErrRuleMismatch when the page no longer matches the
// rule (fall back to ExtractResult and re-learn).
func (e *Extractor) ExtractWithRule(html string, rule Rule) (*Result, error) {
	return e.inner.ExtractWithRule(html, rule)
}

// ExtractWithRuleContext is ExtractWithRule under a caller context, with
// the same metrics and trace behavior as ExtractResultContext.
func (e *Extractor) ExtractWithRuleContext(ctx context.Context, html string, rule Rule) (*Result, error) {
	return e.inner.ExtractWithRuleContext(ctx, html, rule)
}

// SeparatorProbability exposes the paper's rank-probability table (Table
// 10/20) used as combination evidence, for callers that want to inspect or
// rescale it.
func SeparatorProbability() map[string][]float64 {
	return combine.PaperProbs()
}

// RenderTree parses a page and renders its tag tree as indented ASCII, in
// the style of the paper's Figures 1 and 5 — a debugging aid for
// understanding why a page extracts the way it does.
func RenderTree(html string, maxDepth int) (string, error) {
	root, err := tagtree.Parse(html)
	if err != nil {
		return "", err
	}
	return tagtree.Render(root, tagtree.RenderOptions{
		MaxDepth:    maxDepth,
		ShowMetrics: true,
	}), nil
}

// Wrapper is a learned per-site record extractor: an extraction rule plus
// a field schema projecting each object into named fields — the automated
// wrapper generation the paper proposes building on Omini (Section 7).
type Wrapper = wrapgen.Wrapper

// Record is one structured object extracted by a Wrapper.
type Record = wrapgen.Record

// WrapperField is one field of a wrapper's record schema.
type WrapperField = wrapgen.Field

// LearnWrapper builds a wrapper for the site from a training page: the
// full pipeline discovers the objects, and their shared structure becomes
// the record schema ("title", "url", "image", plus path-named fields).
func LearnWrapper(site, html string) (*Wrapper, error) {
	return wrapgen.Learn(site, html)
}

// FindNextPage locates the page's next-result-page link (rel="next",
// next-flavored anchor text, or a numbered pagination bar) so callers can
// crawl a full result set. ok is false when the page offers none.
func FindNextPage(html string) (href string, ok bool) {
	root, err := tagtree.Parse(html)
	if err != nil {
		return "", false
	}
	return nav.FindNext(root)
}

// Select parses the page and returns the visible text of every node
// matching the CSS-flavored selector (tag names, ".class", "#id",
// "[attr]", "[attr=v]", ":nth(n)", descendant and ">" child combinators).
func Select(html, selector string) ([]string, error) {
	root, err := tagtree.Parse(html)
	if err != nil {
		return nil, err
	}
	nodes, err := tagtree.Select(root, selector)
	if err != nil {
		return nil, err
	}
	out := make([]string, len(nodes))
	for i, n := range nodes {
		out[i] = n.InnerText()
	}
	return out, nil
}

// SelectAttr parses the page and returns the named attribute of every node
// matching the selector; nodes without the attribute contribute "".
func SelectAttr(html, selector, attr string) ([]string, error) {
	root, err := tagtree.Parse(html)
	if err != nil {
		return nil, err
	}
	nodes, err := tagtree.Select(root, selector)
	if err != nil {
		return nil, err
	}
	out := make([]string, len(nodes))
	for i, n := range nodes {
		for _, a := range n.Attrs {
			if a.Name == attr {
				out[i] = a.Value
				break
			}
		}
	}
	return out, nil
}
