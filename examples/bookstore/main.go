// Bookstore: extract products from the table-heavy layouts that dominated
// 2000-era commerce sites (the amazon/bn/borders pattern of the paper's
// Table 12), and inspect the full extraction result — the discovered
// subtree path, the chosen separator, and the combined candidate ranking
// with compound probabilities.
//
//	go run ./examples/bookstore
package main

import (
	"fmt"
	"log"

	"omini"
	"omini/internal/corpus"
)

func main() {
	// Pull a generated bookstore page from the evaluation corpus: every
	// result row is one object, wrapped in banner/nav/sidebar chrome.
	var site corpusSite
	for _, spec := range corpus.AllSpecs() {
		if spec.Name == "www.bn.example" {
			site = corpusSite{spec.Name, spec.Page(7).HTML, spec.Page(7).Truth.ObjectCount}
		}
	}
	if site.html == "" {
		log.Fatal("bookstore site missing from corpus")
	}

	extractor := omini.NewExtractor()
	res, err := extractor.ExtractResult(site.html)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("site:       %s\n", site.name)
	fmt.Printf("subtree:    %s\n", res.SubtreePath)
	fmt.Printf("separator:  %q\n", res.Separator)
	fmt.Printf("candidates:\n")
	for _, c := range res.Candidates {
		fmt.Printf("  %-8s P=%.3f (ranked by %d heuristics)\n", c.Tag, c.Prob, c.Support)
	}
	fmt.Printf("objects:    %d extracted, %d expected, %d before refinement\n\n",
		len(res.Objects), site.expected, len(res.Raw))
	for i, o := range res.Objects {
		if i == 3 {
			fmt.Printf("... and %d more\n", len(res.Objects)-3)
			break
		}
		fmt.Printf("%d. %s\n", i+1, o.Text())
	}
}

type corpusSite struct {
	name     string
	html     string
	expected int
}
