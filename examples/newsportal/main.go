// Newsportal: the paper's Section 4 walk-through on the canoe.com replica.
// The page's navigation font has the highest fan-out in the tree, so the
// naive HF heuristic picks the menu; GSI, LTC and the compound algorithm
// find the real news region. The example prints each heuristic's top
// choice, then extracts the twelve news items.
//
//	go run ./examples/newsportal
package main

import (
	"fmt"
	"log"

	"omini"
	"omini/internal/sitegen"
	"omini/internal/subtree"
	"omini/internal/tagtree"
)

func main() {
	page := sitegen.Canoe()
	root, err := tagtree.Parse(page.HTML)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("object-rich subtree, per heuristic (Table 1 behaviour):")
	for _, h := range []subtree.Heuristic{subtree.HF(), subtree.GSI(), subtree.LTC(), subtree.Compound()} {
		top := h.Rank(root)[0]
		marker := " "
		if tagtree.Path(top.Node) == page.Truth.SubtreePath {
			marker = "*"
		}
		fmt.Printf("  %s %-8s -> %s\n", marker, h.Name(), tagtree.Path(top.Node))
	}
	fmt.Printf("ground truth: %s\n\n", page.Truth.SubtreePath)

	res, err := omini.NewExtractor().ExtractResult(page.HTML)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("separator %q -> %d news items (chrome candidates dropped: %d)\n\n",
		res.Separator, len(res.Objects), len(res.Raw)-len(res.Objects))
	for i, o := range res.Objects {
		text := o.Text()
		if len(text) > 78 {
			text = text[:78] + "..."
		}
		fmt.Printf("%2d. %s\n", i+1, text)
	}
}
