// Aggregator: the deployment the paper positions Omini inside — a search
// aggregation service gathering result sets from many sites. The example
// stands up the corpus HTTP server, then for each site crawls result pages
// by following discovered next-page links, extracts concurrently with
// per-site rule reuse, and merges everything into one ranked list.
//
//	go run ./examples/aggregator
package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"strings"

	"omini/internal/core"
	"omini/internal/fetch"
	"omini/internal/nav"
	"omini/internal/rules"
	"omini/internal/sitegen"
	"omini/internal/tagtree"
)

func main() {
	// Three "content providers", each serving a chain of result pages.
	providers := []sitegen.SiteSpec{
		{
			Name: "books.example", Domain: sitegen.DomainBooks,
			LayoutName: "row-table",
			Chrome:     sitegen.ChromeSpec{Banner: true, NavLinks: 20},
			Noise:      sitegen.NoiseSpec{InlineHeader: true, InlineFooter: true},
			MinItems:   6, MaxItems: 10,
		},
		{
			Name: "news.example", Domain: sitegen.DomainNews,
			LayoutName: "item-table",
			Chrome:     sitegen.ChromeSpec{Banner: true, NavLinks: 25},
			Noise:      sitegen.NoiseSpec{InlineHeader: true, InlineFooter: true},
			MinItems:   5, MaxItems: 8,
		},
		{
			Name: "search.example", Domain: sitegen.DomainSearch,
			LayoutName: "para-div",
			Noise:      sitegen.NoiseSpec{InlineHeader: true, InlineFooter: true},
			MinItems:   8, MaxItems: 12,
		},
	}
	const pagesPerSite = 4

	srv := fetch.NewCorpusServer()
	pagesByPath := make(map[string]sitegen.Page)
	for _, spec := range providers {
		for _, page := range spec.Pages(pagesPerSite) {
			srv.Add(page)
			pagesByPath["/"+page.Site+"/"+page.Name] = page
		}
	}
	if err := srv.Start(); err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	var (
		f         fetch.Fetcher
		ctx       = context.Background()
		extractor = core.New(core.Options{})
		store     = rules.NewStore()
	)

	type hit struct {
		site string
		text string
	}
	var hits []hit

	for _, spec := range providers {
		// Crawl the site's result chain: start at page 0, follow the
		// discovered "Next page" pointer (the corpus footers link "/next";
		// the example maps that onto the next generated page, the way an
		// aggregator maps relative links onto its fetch queue).
		var batch []core.BatchRequest
		for idx := 0; idx < pagesPerSite; idx++ {
			page := spec.Page(idx)
			body, err := f.Fetch(ctx, srv.URL(page))
			if err != nil {
				log.Fatalf("fetch %s: %v", page.Name, err)
			}
			batch = append(batch, core.BatchRequest{Site: spec.Name, HTML: body})
			if root, err := tagtree.Parse(body); err == nil {
				if _, ok := nav.FindNext(root); !ok {
					break // no further results advertised
				}
			}
		}
		results := extractor.ExtractBatch(ctx, batch, core.BatchOptions{Rules: store})
		ruleHits := 0
		for _, r := range results {
			if r.Err != nil {
				log.Fatalf("%s: %v", spec.Name, r.Err)
			}
			if r.FromRule {
				ruleHits++
			}
			for _, o := range r.Result.Objects {
				hits = append(hits, hit{site: spec.Name, text: o.Text()})
			}
		}
		fmt.Printf("%-16s crawled %d pages (%d via cached rule), %d objects, confidence %.2f\n",
			spec.Name, len(results), ruleHits,
			countObjects(results), results[0].Result.Confidence())
	}

	// Merge: one ranked list across providers, the aggregation output.
	sort.SliceStable(hits, func(i, j int) bool { return len(hits[i].text) > len(hits[j].text) })
	fmt.Printf("\naggregated %d objects from %d providers; top entries:\n", len(hits), len(providers))
	for i, h := range hits {
		if i == 5 {
			break
		}
		text := h.text
		if len(text) > 70 {
			text = text[:70] + "..."
		}
		fmt.Printf("%d. [%s] %s\n", i+1, strings.TrimSpace(h.site), text)
	}
}

func countObjects(results []core.BatchResult) int {
	n := 0
	for _, r := range results {
		if r.Result != nil {
			n += len(r.Result.Objects)
		}
	}
	return n
}
