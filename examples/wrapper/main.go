// Wrapper: automated wrapper generation on top of object extraction — the
// integration the paper proposes with XWRAP Elite (Section 7). One training
// page is enough to learn a per-site record schema; the wrapper then turns
// every page of the site into structured records with named fields, taking
// the cached-rule fast path.
//
//	go run ./examples/wrapper
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"

	"omini"
	"omini/internal/corpus"
	"omini/internal/sitegen"
)

func main() {
	var spec sitegen.SiteSpec
	for _, s := range corpus.AllSpecs() {
		if s.Name == "www.etoys.example" {
			spec = s
		}
	}

	// Learn the wrapper from one page.
	train := spec.Page(0)
	wrapper, err := omini.LearnWrapper(spec.Name, train.HTML)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("learned wrapper for %s (rule: %s / %q)\n",
		wrapper.Site, wrapper.Rule.SubtreePath, wrapper.Rule.Separator)
	fmt.Println("record schema:")
	for _, f := range wrapper.Fields {
		attr := "text"
		if f.Attr != "" {
			attr = "@" + f.Attr
		}
		fmt.Printf("  %-12s <- %s %s (support %.0f%%)\n", f.Name, f.Path, attr, f.Support*100)
	}

	// Apply it to an unseen page of the same site.
	page := spec.Page(9)
	records, err := wrapper.Extract(page.HTML)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nextracted %d records from %s:\n", len(records), page.Name)
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	for i, rec := range records {
		if i == 2 {
			fmt.Printf("... and %d more\n", len(records)-2)
			break
		}
		if err := enc.Encode(rec); err != nil {
			log.Fatal(err)
		}
	}
}
