// Quickstart: extract the data objects from an HTML page with one call.
//
// The page below is the kind Omini targets: a search result list wrapped in
// navigation chrome. No configuration, selectors, or templates are given —
// the pipeline locates the object-rich region and the separator tag on its
// own.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"omini"
)

const page = `
<html><head><title>BookFinder results</title></head><body>
<table><tr><td><img src="/logo.gif"></td><td><a href="/">Home</a></td>
<td><a href="/help">Help</a></td></tr></table>
<ul>
  <li><a href="/b/1">The Silent Canyon</a> — a field guide to desert acoustics.
      <b>by R. Okafor</b> $12.95 <a href="/b/1/x">details</a></li>
  <li><a href="/b/2">Distributed Gardens</a> — growing systems that span continents.
      <b>by L. Tanaka</b> $24.00 <a href="/b/2/x">details</a></li>
  <li><a href="/b/3">The Annotated Compiler</a> — twelve passes, explained slowly.
      <b>by M. Duarte</b> $38.50 <a href="/b/3/x">details</a></li>
  <li><a href="/b/4">Practical Satellites</a> — orbital mechanics for weekends.
      <b>by A. Novak</b> $19.99 <a href="/b/4/x">details</a></li>
</ul>
<p><a href="/next">Next page</a> - Copyright 2000.</p>
</body></html>`

func main() {
	objects, err := omini.Extract(page)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("extracted %d objects:\n", len(objects))
	for i, o := range objects {
		fmt.Printf("%d. %s\n", i+1, o.Text())
	}
}
