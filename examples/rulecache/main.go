// Rulecache: the Section 6.6 scenario behind the paper's Table 17. A site's
// structure rarely changes, so the subtree path and separator discovered on
// one page can be cached as a rule and replayed on every other page of the
// site, skipping discovery entirely. The example learns a rule from the
// first page of a corpus site, replays it across the rest, verifies the
// fast path extracts identical objects, and reports the speedup.
//
//	go run ./examples/rulecache
package main

import (
	"fmt"
	"log"
	"time"

	"omini"
	"omini/internal/corpus"
	"omini/internal/sitegen"
)

func main() {
	var spec sitegen.SiteSpec
	for _, s := range corpus.AllSpecs() {
		if s.Name == "www.amazon2.example" {
			spec = s
		}
	}
	pages := spec.Pages(30)
	extractor := omini.NewExtractor()

	// Learn once, from the first page.
	_, rule, err := extractor.Learn(spec.Name, pages[0].HTML)
	if err != nil {
		log.Fatal(err)
	}
	store := omini.NewRuleStore()
	if err := store.Put(rule); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("learned rule for %s: subtree=%s separator=%q\n\n",
		rule.Site, rule.SubtreePath, rule.Separator)

	// Replay across the site, comparing against full discovery.
	var fullTime, fastTime time.Duration
	var mismatches int
	for _, page := range pages[1:] {
		start := time.Now()
		full, err := extractor.ExtractResult(page.HTML)
		fullTime += time.Since(start)
		if err != nil {
			log.Fatalf("%s: %v", page.Name, err)
		}

		cached, err := store.Get(spec.Name)
		if err != nil {
			log.Fatal(err)
		}
		start = time.Now()
		fast, err := extractor.ExtractWithRule(page.HTML, cached)
		fastTime += time.Since(start)
		if err != nil {
			log.Fatalf("%s: rule replay: %v", page.Name, err)
		}
		if len(fast.Objects) != len(full.Objects) {
			mismatches++
		}
	}
	n := len(pages) - 1
	fmt.Printf("replayed on %d pages, %d mismatches with full discovery\n", n, mismatches)
	fmt.Printf("full discovery: %8.3f ms/page\n", ms(fullTime, n))
	fmt.Printf("cached rule:    %8.3f ms/page (%.1fx faster)\n",
		ms(fastTime, n), float64(fullTime)/float64(fastTime))
}

func ms(d time.Duration, n int) float64 {
	return float64(d) / float64(n) / float64(time.Millisecond)
}
