package omini

import (
	"errors"
	"path/filepath"
	"strings"
	"testing"

	"omini/internal/sitegen"
)

func TestExtractQuick(t *testing.T) {
	page := sitegen.LOC()
	objects, err := Extract(page.HTML)
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	if len(objects) != page.Truth.ObjectCount {
		t.Fatalf("objects = %d, want %d", len(objects), page.Truth.ObjectCount)
	}
}

func TestExtractorLearnAndReplay(t *testing.T) {
	page := sitegen.Canoe()
	e := NewExtractor()
	res, rule, err := e.Learn(page.Site, page.HTML)
	if err != nil {
		t.Fatalf("Learn: %v", err)
	}
	if rule.Site != page.Site || rule.Separator != "table" {
		t.Fatalf("rule = %+v", rule)
	}
	store := NewRuleStore()
	if err := store.Put(rule); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "rules.json")
	if err := store.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadRules(path)
	if err != nil {
		t.Fatal(err)
	}
	cached, err := loaded.Get(page.Site)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := e.ExtractWithRule(page.HTML, cached)
	if err != nil {
		t.Fatalf("ExtractWithRule: %v", err)
	}
	if len(fast.Objects) != len(res.Objects) {
		t.Errorf("fast objects = %d, full = %d", len(fast.Objects), len(res.Objects))
	}
}

func TestExtractorOptions(t *testing.T) {
	page := sitegen.Canoe()
	noRefine := NewExtractor(WithoutRefinement())
	res, err := noRefine.ExtractResult(page.HTML)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Objects) != len(res.Raw) {
		t.Error("WithoutRefinement ignored")
	}

	hf := NewExtractor(WithSubtreeHeuristic("HF"), WithSeparatorHeuristics("PP", "SD"))
	hfRes, err := hf.ExtractResult(page.HTML)
	if err != nil {
		t.Fatal(err)
	}
	if hfRes.SubtreePath == res.SubtreePath {
		t.Error("WithSubtreeHeuristic(HF) ignored on a chrome-heavy page")
	}

	// Unknown names keep defaults and do not panic.
	def := NewExtractor(WithSubtreeHeuristic("nope"), WithSeparatorHeuristics("nope"))
	if _, err := def.ExtractResult(page.HTML); err != nil {
		t.Fatal(err)
	}
}

func TestExtractErrNoObjects(t *testing.T) {
	if _, err := Extract(`<html><body>prose only</body></html>`); !errors.Is(err, ErrNoObjects) {
		t.Errorf("err = %v, want ErrNoObjects", err)
	}
}

func TestRenderTree(t *testing.T) {
	out, err := RenderTree(sitegen.LOC().HTML, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "html") || !strings.Contains(out, "body") {
		t.Errorf("render = %q", out)
	}
	if _, err := RenderTree("", 1); err == nil {
		t.Error("RenderTree of empty input should error")
	}
}

func TestSeparatorProbabilityExposed(t *testing.T) {
	probs := SeparatorProbability()
	if probs["PP"][0] != 0.85 {
		t.Errorf("PP rank-1 prob = %v", probs["PP"][0])
	}
}

func TestFindNextPage(t *testing.T) {
	href, ok := FindNextPage(`<html><body><ul><li>a</li></ul><a href="/p2">Next page</a></body></html>`)
	if !ok || href != "/p2" {
		t.Errorf("FindNextPage = %q, %v", href, ok)
	}
	if _, ok := FindNextPage(""); ok {
		t.Error("FindNextPage on empty input succeeded")
	}
	if _, ok := FindNextPage(`<html><body><p>no nav</p></body></html>`); ok {
		t.Error("FindNextPage found a link on a linkless page")
	}
}

func TestSelectPublicAPI(t *testing.T) {
	html := `<html><body><ul><li><a href="/a">alpha</a></li><li><a href="/b">beta</a></li></ul></body></html>`
	texts, err := Select(html, "ul > li a")
	if err != nil {
		t.Fatal(err)
	}
	if len(texts) != 2 || texts[0] != "alpha" || texts[1] != "beta" {
		t.Errorf("Select = %v", texts)
	}
	hrefs, err := SelectAttr(html, "li a", "href")
	if err != nil {
		t.Fatal(err)
	}
	if len(hrefs) != 2 || hrefs[0] != "/a" || hrefs[1] != "/b" {
		t.Errorf("SelectAttr = %v", hrefs)
	}
	if _, err := Select(html, ">"); err == nil {
		t.Error("bad selector accepted")
	}
	if _, err := Select("", "a"); err == nil {
		t.Error("empty document accepted")
	}
	if _, err := SelectAttr("", "a", "href"); err == nil {
		t.Error("SelectAttr empty document accepted")
	}
	if _, err := SelectAttr(html, "][", "href"); err == nil {
		t.Error("SelectAttr bad selector accepted")
	}
}
