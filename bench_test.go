// Benchmarks: one per table/figure of the paper's evaluation, plus
// ablations for the design choices DESIGN.md calls out. Each benchmark
// measures the computation that regenerates its table; the printable tables
// themselves come from cmd/ominibench, and paper-vs-measured numbers are
// recorded in EXPERIMENTS.md.
package omini_test

import (
	"testing"

	"omini"
	"omini/internal/combine"
	"omini/internal/core"
	"omini/internal/corpus"
	"omini/internal/eval"
	"omini/internal/separator"
	"omini/internal/sitegen"
	"omini/internal/subtree"
	"omini/internal/tagtree"
	"omini/internal/tidy"
)

// benchCorpus keeps benchmark corpora small enough for -bench runs while
// exercising every site.
func benchCorpus() *corpus.Corpus {
	return &corpus.Corpus{PagesPerSite: 4}
}

func benchHeuristics() []separator.Heuristic {
	return append(separator.All(), separator.HC(), separator.IT())
}

func mustPrepare(b *testing.B, sites []corpus.SitePages) []eval.PreparedSite {
	b.Helper()
	prep, err := eval.Prepare(sites, benchHeuristics())
	if err != nil {
		b.Fatal(err)
	}
	return prep
}

func canoeTree(b *testing.B) *tagtree.Node {
	b.Helper()
	root, err := tagtree.Parse(sitegen.Canoe().HTML)
	if err != nil {
		b.Fatal(err)
	}
	return root
}

func truthSubtree(b *testing.B, page sitegen.Page) *tagtree.Node {
	b.Helper()
	root, err := tagtree.Parse(page.HTML)
	if err != nil {
		b.Fatal(err)
	}
	sub := tagtree.FindPath(root, page.Truth.SubtreePath)
	if sub == nil {
		b.Fatalf("truth path %q unresolvable", page.Truth.SubtreePath)
	}
	return sub
}

// BenchmarkTable1SubtreeHeuristics ranks the canoe tree with HF, GSI, LTC
// and the compound algorithm (Table 1).
func BenchmarkTable1SubtreeHeuristics(b *testing.B) {
	root := canoeTree(b)
	heuristics := []subtree.Heuristic{subtree.HF(), subtree.GSI(), subtree.LTC(), subtree.Compound()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, h := range heuristics {
			if ranked := h.Rank(root); len(ranked) == 0 {
				b.Fatal("empty ranking")
			}
		}
	}
}

// BenchmarkTable2SD computes the SD ranking on the LOC subtree (Table 2).
func BenchmarkTable2SD(b *testing.B) {
	sub := truthSubtree(b, sitegen.LOC())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ranked := separator.SD().Rank(sub); len(ranked) == 0 {
			b.Fatal("empty")
		}
	}
}

// BenchmarkTable3RP computes the RP pair ranking on the canoe subtree
// (Table 3).
func BenchmarkTable3RP(b *testing.B) {
	sub := truthSubtree(b, sitegen.Canoe())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if pairs := separator.RPPairs(sub); len(pairs) == 0 {
			b.Fatal("empty")
		}
	}
}

// BenchmarkTable6SB computes sibling pairs on both replica pages (Table 6).
func BenchmarkTable6SB(b *testing.B) {
	canoe := truthSubtree(b, sitegen.Canoe())
	loc := truthSubtree(b, sitegen.LOC())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(separator.SBPairs(canoe)) == 0 || len(separator.SBPairs(loc)) == 0 {
			b.Fatal("empty")
		}
	}
}

// BenchmarkTable8PP enumerates partial paths and the PP ranking (Tables
// 7-8).
func BenchmarkTable8PP(b *testing.B) {
	sub := truthSubtree(b, sitegen.Canoe())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ranked := separator.PP().Rank(sub); len(ranked) == 0 {
			b.Fatal("empty")
		}
	}
}

// BenchmarkTable10TestSet measures the per-heuristic rank-distribution
// evaluation over the test collection (Table 10).
func BenchmarkTable10TestSet(b *testing.B) {
	prep := mustPrepare(b, benchCorpus().TestSet())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, h := range separator.All() {
			d := eval.HeuristicDist(h.Name(), prep)
			if d.Success <= 0 {
				b.Fatal("zero success")
			}
		}
	}
}

// BenchmarkTable11Combinations sweeps all 26 heuristic combinations
// (Table 11).
func BenchmarkTable11Combinations(b *testing.B) {
	prep := mustPrepare(b, benchCorpus().TestSet())
	table := eval.MeasureProbs(prep, benchHeuristics())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if sweep := eval.SweepCombinations(separator.All(), table, prep); len(sweep) != 26 {
			b.Fatal("bad sweep")
		}
	}
}

// BenchmarkTable13ExperimentalSet evaluates the five heuristics plus RSIPB
// over the experimental collection (Table 13).
func BenchmarkTable13ExperimentalSet(b *testing.B) {
	c := benchCorpus()
	testPrep := mustPrepare(b, c.TestSet())
	table := eval.MeasureProbs(testPrep, benchHeuristics())
	prep := mustPrepare(b, c.ExperimentalSet())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := eval.CombinationDist(combine.RSIPB(), table, prep)
		if d.Success <= 0 {
			b.Fatal("zero success")
		}
	}
}

// BenchmarkTable14PrecisionRecall computes success/precision/recall for the
// five heuristics on the test set (Table 14; Table 15 is the same code on
// the experimental set).
func BenchmarkTable14PrecisionRecall(b *testing.B) {
	prep := mustPrepare(b, benchCorpus().TestSet())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, h := range separator.All() {
			d := eval.HeuristicDist(h.Name(), prep)
			if d.Precision < d.Recall-1e-9 {
				b.Fatal("precision below recall")
			}
		}
	}
}

// BenchmarkTable16FullPipeline measures one full-discovery extraction per
// iteration — the per-page cost behind Table 16 (fetch excluded: that phase
// is network-bound and measured by cmd/ominibench).
func BenchmarkTable16FullPipeline(b *testing.B) {
	page := sitegen.Canoe()
	e := core.New(core.Options{})
	b.SetBytes(int64(len(page.HTML)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Extract(page.HTML); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable17CachedRules measures the cached-rule fast path — Table 17.
// Comparing with BenchmarkTable16FullPipeline shows the speedup of learned
// rules.
func BenchmarkTable17CachedRules(b *testing.B) {
	page := sitegen.Canoe()
	e := core.New(core.Options{})
	res, err := e.Extract(page.HTML)
	if err != nil {
		b.Fatal(err)
	}
	rule := res.Rule(page.Site)
	b.SetBytes(int64(len(page.HTML)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.ExtractWithRule(page.HTML, rule); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable19BYUComparison evaluates Omini's RSIPB and BYU's HTRS on
// the comparison sites (Table 19).
func BenchmarkTable19BYUComparison(b *testing.B) {
	c := benchCorpus()
	table := eval.MeasureProbs(mustPrepare(b, c.TestSet()), benchHeuristics())
	prep := mustPrepare(b, c.ComparisonSet())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		omini := eval.CombinationDist(combine.RSIPB(), table, prep)
		byu := eval.CombinationDist(combine.HTRS(), table, prep)
		if omini.Success <= byu.Success {
			b.Fatal("Omini did not beat BYU")
		}
	}
}

// BenchmarkTable20BYUCombos evaluates every BYU heuristic combination on
// the test set (Table 20).
func BenchmarkTable20BYUCombos(b *testing.B) {
	c := benchCorpus()
	prep := mustPrepare(b, c.TestSet())
	table := eval.MeasureProbs(prep, benchHeuristics())
	combos := combine.Combinations(combine.HTRS().Heuristics, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, combo := range combos {
			d := eval.CombinationDist(combo, table, prep)
			if d.Success <= 0 {
				b.Fatal("zero success")
			}
		}
	}
}

// BenchmarkFigureTreeConstruction measures Phase 1 alone — tokenize,
// normalize, and build the tag tree of the canoe replica (Figures 4-5).
func BenchmarkFigureTreeConstruction(b *testing.B) {
	html := sitegen.Canoe().HTML
	b.SetBytes(int64(len(html)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tagtree.Parse(html); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (DESIGN.md §5) ---

// BenchmarkAblationSubtreeCompoundVsHF compares the cost of the compound
// subtree heuristic against plain HF; the quality comparison is the
// "subtree" table of cmd/ominibench.
func BenchmarkAblationSubtreeCompoundVsHF(b *testing.B) {
	root := canoeTree(b)
	b.Run("HF", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			subtree.HF().Rank(root)
		}
	})
	b.Run("Compound", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			subtree.Compound().Rank(root)
		}
	})
}

// BenchmarkAblationRefinement measures extraction with and without Phase 3
// refinement.
func BenchmarkAblationRefinement(b *testing.B) {
	page := sitegen.Canoe()
	b.Run("with-refinement", func(b *testing.B) {
		e := core.New(core.Options{})
		for i := 0; i < b.N; i++ {
			if _, err := e.Extract(page.HTML); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("without-refinement", func(b *testing.B) {
		e := core.New(core.Options{SkipRefine: true})
		for i := 0; i < b.N; i++ {
			if _, err := e.Extract(page.HTML); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationNormalization measures the tidy pass against raw token
// tree building (quality effects are covered by core tests).
func BenchmarkAblationNormalization(b *testing.B) {
	html := sitegen.LOC().HTML
	b.Run("normalized", func(b *testing.B) {
		b.SetBytes(int64(len(html)))
		for i := 0; i < b.N; i++ {
			tidy.NormalizeTokens(html)
		}
	})
	b.Run("public-api", func(b *testing.B) {
		b.SetBytes(int64(len(html)))
		for i := 0; i < b.N; i++ {
			if _, err := omini.Extract(html); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationCandidateScope compares child-level candidate statistics
// (the paper's choice) against a full-descendant scan, justifying the
// Section 5 design decision.
func BenchmarkAblationCandidateScope(b *testing.B) {
	sub := truthSubtree(b, sitegen.Canoe())
	b.Run("children-only", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			separator.HC().Rank(sub)
		}
	})
	b.Run("all-descendants", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			counts := make(map[string]int)
			sub.Walk(func(n *tagtree.Node) bool {
				if !n.IsContent() {
					counts[n.Tag]++
				}
				return true
			})
			if len(counts) == 0 {
				b.Fatal("empty")
			}
		}
	})
}
