// External test package: the fuzz targets seed from corpus pages, and
// package corpus depends on htmlparse transitively (via sitegen and
// tagtree), so an internal test package would cycle.
package htmlparse_test

import (
	"reflect"
	"testing"

	"omini/internal/corpus"
	"omini/internal/htmlparse"
	"omini/internal/pathology"
	"omini/internal/tagtree"
)

// nastySnippets are small inputs aimed at the lexer's edge cases: truncated
// markup, raw-text elements, mismatched quotes, stray angle brackets,
// upper-case spellings, and non-ASCII bytes.
var nastySnippets = []string{
	"",
	"<",
	"<a",
	"</",
	"<!",
	"<!--",
	"<!-- unterminated",
	"<!DOCTYPE html><html><body>x</body></html>",
	"<p class=x>hi<P CLASS=Y>there</p>",
	"<script>if (a<b) { x() }</script>",
	"<script>never closed",
	"<style>p { color: red }</style><textarea><b>not bold</b></textarea>",
	"<div><span>a<div>b</span></div>",
	"plain text &amp; entities &unknown; &#65; &#x41; &#xffffffff;",
	"<td><td><td>",
	"<a href='x\" y>z</a>",
	"<a href=\"unterminated>text",
	"<ul><li>a<li>b<li>c</ul>",
	"<?xml version=\"1.0\"?><html>",
	"<?>",
	"<br/><hr / ><img src=x />",
	"< notatag> a < b > c",
	"\x00\xff<\x80tag>",
	"<table><tr><td>1<tr><td>2</table>",
	"<B><I>overlap</B></I>",
	"<p 0=1 = ==>odd attrs</p>",
}

func addFuzzSeeds(f *testing.F) {
	f.Add(corpus.BenchPage("small").HTML)
	for _, s := range nastySnippets {
		f.Add(s)
	}
	// Scaled-down instances of the pathological corpus (see
	// testdata/pathological): same attack shapes, fuzz-friendly sizes.
	f.Add(pathology.DeepNesting(500))
	f.Add(pathology.MegaAttributes(4, 16, 8))
	f.Add(pathology.EntityBomb(600))
	f.Add(pathology.UnclosedAvalanche(500))
	f.Add(pathology.HugeTextNode(4 << 10))
}

// FuzzTokenize checks the lexer's safety net on arbitrary bytes: it must
// never panic, offsets must stay in bounds and non-decreasing, every tag
// token's offset must point at the '<' that opened it, and tokenizing is
// deterministic.
func FuzzTokenize(f *testing.F) {
	addFuzzSeeds(f)
	f.Fuzz(func(t *testing.T, src string) {
		toks := htmlparse.Tokenize(src)
		prev := 0
		for i := range toks {
			tok := &toks[i]
			if tok.Offset < prev || tok.Offset > len(src) {
				t.Fatalf("token %d (%v %q): offset %d out of range (prev %d, len %d)",
					i, tok.Type, tok.Data, tok.Offset, prev, len(src))
			}
			prev = tok.Offset
			switch tok.Type {
			case htmlparse.StartTagToken, htmlparse.SelfClosingTagToken:
				if src[tok.Offset] != '<' {
					t.Fatalf("token %d (%v %q): offset %d does not round-trip to '<'",
						i, tok.Type, tok.Data, tok.Offset)
				}
				if tok.Data == "" {
					t.Fatalf("token %d: empty tag name", i)
				}
			case htmlparse.EndTagToken:
				// End tags synthesized at the end of a raw-text region point
				// at the closing tag, which always starts with '<'.
				if src[tok.Offset] != '<' {
					t.Fatalf("end tag %d (%q): offset %d does not round-trip to '<'",
						i, tok.Data, tok.Offset)
				}
			}
		}
		if again := htmlparse.Tokenize(src); !reflect.DeepEqual(toks, again) {
			t.Fatalf("tokenizing is not deterministic for %q", src)
		}
	})
}

// TestTokenizeTreeInvariants drives lexer output through the whole Phase 1
// pipeline for every corpus bench page and checks the resulting tree with
// the exported invariant validator, pinning the lexer's arena-backed
// attribute slices and interned names to tree-level correctness.
func TestTokenizeTreeInvariants(t *testing.T) {
	for _, size := range corpus.BenchSizes {
		page := corpus.BenchPage(size)
		root, err := tagtree.Parse(page.HTML)
		if err != nil {
			t.Fatalf("%s: %v", page.Name, err)
		}
		if err := tagtree.Validate(root); err != nil {
			t.Errorf("%s: %v", page.Name, err)
		}
	}
	for _, s := range nastySnippets {
		root, err := tagtree.Parse(s)
		if err != nil {
			continue
		}
		if err := tagtree.Validate(root); err != nil {
			t.Errorf("snippet %q: %v", s, err)
		}
	}
}
