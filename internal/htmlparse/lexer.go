package htmlparse

import (
	"strings"

	"omini/internal/govern"
)

// rawTextTags are elements whose content is raw character data: the lexer
// must not interpret '<' inside them as markup until the matching close tag.
var rawTextTags = map[string]bool{
	"script":   true,
	"style":    true,
	"textarea": true,
	"title":    true,
	"xmp":      true,
}

// Lexer tokenizes an HTML document. It never fails: any input produces a
// token stream (garbage in, best-effort tokens out), which is what a
// normalizer for real web pages requires.
type Lexer struct {
	src string
	pos int
	// rawUntil, when non-empty, is the tag name whose closing tag ends a
	// raw-text region (script/style/...).
	rawUntil string
	// attrs is a shared attribute arena: every token's Attrs is a capped
	// sub-slice of it, so a page costs a few attribute allocations instead
	// of one (or more) per tag. Earlier tokens keep their backing array
	// when the arena grows.
	attrs []Attr
	// lowered interns lower-cased copies of names that appear upper-cased
	// in the source, so <TD> pays for one ToLower per distinct spelling
	// instead of one per occurrence. Lazily allocated: fully lower-case
	// documents never touch it.
	lowered map[string]string
}

// NewLexer returns a Lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src}
}

// Tokenize lexes the whole of src in one call.
func Tokenize(src string) []Token {
	toks, _ := TokenizeGoverned(src, nil)
	return toks
}

// TokenizeGoverned lexes src under a resource guard: the input size is
// checked up front and every produced token is charged against the
// guard's token budget (which also polls the page context). A nil
// guard makes it identical to Tokenize.
func TokenizeGoverned(src string, g *govern.Guard) ([]Token, error) {
	if err := g.Input(len(src)); err != nil {
		return nil, err
	}
	lx := NewLexer(src)
	// A typical page has roughly one token per 20 bytes.
	toks := make([]Token, 0, len(src)/20+8)
	for {
		tok, ok := lx.Next()
		if !ok {
			return toks, nil
		}
		if err := g.Tokens(1); err != nil {
			return nil, err
		}
		toks = append(toks, tok)
	}
}

// lower returns the lower-cased form of an ASCII name, without allocating
// when the name is already lower-case, and interning the lowered copy
// otherwise.
func (lx *Lexer) lower(s string) string {
	hasUpper := false
	for i := 0; i < len(s); i++ {
		if c := s[i]; 'A' <= c && c <= 'Z' {
			hasUpper = true
			break
		}
	}
	if !hasUpper {
		return s
	}
	if lo, ok := lx.lowered[s]; ok {
		return lo
	}
	b := make([]byte, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		if 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		b[i] = c
	}
	lo := string(b)
	if lx.lowered == nil {
		lx.lowered = make(map[string]string, 8)
	}
	lx.lowered[s] = lo
	return lo
}

// Next returns the next token and true, or a zero Token and false at the end
// of input.
func (lx *Lexer) Next() (Token, bool) {
	if lx.pos >= len(lx.src) {
		return Token{}, false
	}
	if lx.rawUntil != "" {
		return lx.nextRaw(), true
	}
	start := lx.pos
	if lx.src[lx.pos] == '<' {
		if tok, ok := lx.lexMarkup(); ok {
			if tok.Type == StartTagToken && rawTextTags[tok.Data] {
				lx.rawUntil = tok.Data
			}
			return tok, true
		}
		// A lone '<' that does not begin markup is literal text.
		lx.pos = start + 1
	}
	return lx.lexText(start), true
}

// lexText consumes character data up to the next markup-looking '<'.
func (lx *Lexer) lexText(start int) Token {
	for lx.pos < len(lx.src) {
		i := strings.IndexByte(lx.src[lx.pos:], '<')
		if i < 0 {
			lx.pos = len(lx.src)
			break
		}
		lx.pos += i
		if lx.looksLikeMarkup(lx.pos) {
			break
		}
		lx.pos++ // stray '<' inside text
	}
	return Token{
		Type:   TextToken,
		Data:   UnescapeText(lx.src[start:lx.pos]),
		Offset: start,
	}
}

// nextRaw consumes the raw content of a script/style/... element, or the
// closing tag that terminates it.
func (lx *Lexer) nextRaw() Token {
	name := lx.rawUntil
	start := lx.pos
	closer := "</" + name
	rest := lx.src[lx.pos:]
	idx := indexFold(rest, closer)
	if idx < 0 {
		// Unterminated raw element: the remainder is its content.
		lx.pos = len(lx.src)
		lx.rawUntil = ""
		return Token{Type: TextToken, Data: rest, Offset: start}
	}
	if idx > 0 {
		lx.pos += idx
		return Token{Type: TextToken, Data: rest[:idx], Offset: start}
	}
	// At the closing tag itself.
	lx.rawUntil = ""
	end := strings.IndexByte(rest, '>')
	if end < 0 {
		lx.pos = len(lx.src)
	} else {
		lx.pos += end + 1
	}
	return Token{Type: EndTagToken, Data: name, Offset: start}
}

// looksLikeMarkup reports whether the '<' at offset i plausibly begins a tag,
// comment, doctype, or processing instruction.
func (lx *Lexer) looksLikeMarkup(i int) bool {
	if i+1 >= len(lx.src) {
		return false
	}
	c := lx.src[i+1]
	switch {
	case isLetter(c):
		return true
	case c == '/':
		return i+2 < len(lx.src) && isLetter(lx.src[i+2])
	case c == '!', c == '?':
		return true
	default:
		return false
	}
}

// lexMarkup lexes a construct beginning with '<'. It returns ok=false if the
// input at pos turns out not to be markup (the caller then treats the '<' as
// text).
func (lx *Lexer) lexMarkup() (Token, bool) {
	start := lx.pos
	s := lx.src
	i := start + 1
	if i >= len(s) {
		return Token{}, false
	}
	switch {
	case s[i] == '!':
		return lx.lexBang(start), true
	case s[i] == '?':
		end := strings.Index(s[i:], ">")
		if end < 0 {
			lx.pos = len(s)
			return Token{Type: ProcInstToken, Data: s[i+1:], Offset: start}, true
		}
		data := strings.TrimSuffix(s[i+1:i+end], "?")
		lx.pos = i + end + 1
		return Token{Type: ProcInstToken, Data: data, Offset: start}, true
	case s[i] == '/':
		i++
		nameStart := i
		for i < len(s) && isNameChar(s[i]) {
			i++
		}
		if i == nameStart {
			return Token{}, false
		}
		name := lx.lower(s[nameStart:i])
		// Skip anything up to '>' (attributes on end tags are invalid but
		// occur in the wild).
		for i < len(s) && s[i] != '>' {
			i++
		}
		if i < len(s) {
			i++
		}
		lx.pos = i
		return Token{Type: EndTagToken, Data: name, Offset: start}, true
	case isLetter(s[i]):
		return lx.lexStartTag(start), true
	default:
		return Token{}, false
	}
}

// lexBang lexes comments and doctype declarations.
func (lx *Lexer) lexBang(start int) Token {
	s := lx.src
	i := start + 2 // past "<!"
	if strings.HasPrefix(s[i:], "--") {
		i += 2
		end := strings.Index(s[i:], "-->")
		if end < 0 {
			lx.pos = len(s)
			return Token{Type: CommentToken, Data: s[i:], Offset: start}
		}
		lx.pos = i + end + 3
		return Token{Type: CommentToken, Data: s[i : i+end], Offset: start}
	}
	end := strings.IndexByte(s[i:], '>')
	if end < 0 {
		lx.pos = len(s)
		return Token{Type: DoctypeToken, Data: s[i:], Offset: start}
	}
	lx.pos = i + end + 1
	return Token{Type: DoctypeToken, Data: s[i : i+end], Offset: start}
}

// lexStartTag lexes a start tag with attributes, beginning at '<'.
func (lx *Lexer) lexStartTag(start int) Token {
	s := lx.src
	i := start + 1
	nameStart := i
	for i < len(s) && isNameChar(s[i]) {
		i++
	}
	tok := Token{
		Type:   StartTagToken,
		Data:   lx.lower(s[nameStart:i]),
		Offset: start,
	}
	attrStart := len(lx.attrs)
	for {
		// Skip whitespace between attributes.
		for i < len(s) && isSpace(s[i]) {
			i++
		}
		if i >= len(s) {
			break
		}
		if s[i] == '>' {
			i++
			break
		}
		if s[i] == '/' {
			// Possible self-closing marker.
			j := i + 1
			for j < len(s) && isSpace(s[j]) {
				j++
			}
			if j < len(s) && s[j] == '>' {
				tok.Type = SelfClosingTagToken
				i = j + 1
				break
			}
			i++ // stray slash, skip
			continue
		}
		var attr Attr
		attr, i = lx.lexAttr(s, i)
		if attr.Name != "" {
			lx.attrs = append(lx.attrs, attr)
		}
	}
	if end := len(lx.attrs); end > attrStart {
		// Cap the sub-slice so later arena appends can never alias into
		// this token's attributes.
		tok.Attrs = lx.attrs[attrStart:end:end]
	}
	lx.pos = i
	return tok
}

// lexAttr lexes one attribute starting at i and returns it with the new
// position. Accepts name, name=value, name="value", and name='value'.
func (lx *Lexer) lexAttr(s string, i int) (Attr, int) {
	nameStart := i
	for i < len(s) && !isSpace(s[i]) && s[i] != '=' && s[i] != '>' && s[i] != '/' {
		i++
	}
	name := lx.lower(s[nameStart:i])
	for i < len(s) && isSpace(s[i]) {
		i++
	}
	if i >= len(s) || s[i] != '=' {
		return Attr{Name: name}, i
	}
	i++ // past '='
	for i < len(s) && isSpace(s[i]) {
		i++
	}
	if i >= len(s) {
		return Attr{Name: name}, i
	}
	var val string
	if q := s[i]; q == '"' || q == '\'' {
		i++
		end := strings.IndexByte(s[i:], q)
		if end < 0 {
			val = s[i:]
			i = len(s)
		} else {
			val = s[i : i+end]
			i += end + 1
		}
	} else {
		valStart := i
		for i < len(s) && !isSpace(s[i]) && s[i] != '>' {
			i++
		}
		val = s[valStart:i]
	}
	return Attr{Name: name, Value: UnescapeText(val)}, i
}

// indexFold returns the index of the first case-insensitive occurrence of
// needle in haystack, or -1. needle must be ASCII.
func indexFold(haystack, needle string) int {
	n := len(needle)
	if n == 0 {
		return 0
	}
	for i := 0; i+n <= len(haystack); i++ {
		if equalFoldASCII(haystack[i:i+n], needle) {
			return i
		}
	}
	return -1
}

func equalFoldASCII(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}

func isLetter(c byte) bool {
	return ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z')
}

func isNameChar(c byte) bool {
	return isLetter(c) || ('0' <= c && c <= '9') || c == '-' || c == '_' || c == ':'
}

func isSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f'
}
