package htmlparse

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func tokenTypes(toks []Token) []TokenType {
	out := make([]TokenType, len(toks))
	for i, t := range toks {
		out[i] = t.Type
	}
	return out
}

func TestTokenizeSimpleDocument(t *testing.T) {
	toks := Tokenize(`<html><body><p>Hello</p></body></html>`)
	want := []TokenType{
		StartTagToken, StartTagToken, StartTagToken,
		TextToken,
		EndTagToken, EndTagToken, EndTagToken,
	}
	if got := tokenTypes(toks); !reflect.DeepEqual(got, want) {
		t.Fatalf("token types = %v, want %v", got, want)
	}
	if toks[3].Data != "Hello" {
		t.Errorf("text = %q, want %q", toks[3].Data, "Hello")
	}
}

func TestTokenizeTagNamesLowercased(t *testing.T) {
	toks := Tokenize(`<TABLE><TR><TD>x</TD></TR></TABLE>`)
	for _, tok := range toks {
		if tok.Type == TextToken {
			continue
		}
		if tok.Data != strings.ToLower(tok.Data) {
			t.Errorf("tag %q not lower-cased", tok.Data)
		}
	}
	if toks[0].Data != "table" {
		t.Errorf("first tag = %q, want table", toks[0].Data)
	}
}

func TestTokenizeAttributes(t *testing.T) {
	tests := []struct {
		name string
		give string
		want []Attr
	}{
		{
			name: "double quoted",
			give: `<a href="http://x.com/a?b=1&amp;c=2">`,
			want: []Attr{{Name: "href", Value: "http://x.com/a?b=1&c=2"}},
		},
		{
			name: "single quoted",
			give: `<a href='x y'>`,
			want: []Attr{{Name: "href", Value: "x y"}},
		},
		{
			name: "unquoted",
			give: `<table border=1 width=100%>`,
			want: []Attr{{Name: "border", Value: "1"}, {Name: "width", Value: "100%"}},
		},
		{
			name: "bare attribute",
			give: `<input disabled>`,
			want: []Attr{{Name: "disabled", Value: ""}},
		},
		{
			name: "mixed case names",
			give: `<img SRC="a.gif" Alt="pic">`,
			want: []Attr{{Name: "src", Value: "a.gif"}, {Name: "alt", Value: "pic"}},
		},
		{
			name: "spaces around equals",
			give: `<td colspan = "2">`,
			want: []Attr{{Name: "colspan", Value: "2"}},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			toks := Tokenize(tt.give)
			if len(toks) != 1 {
				t.Fatalf("got %d tokens, want 1", len(toks))
			}
			if !reflect.DeepEqual(toks[0].Attrs, tt.want) {
				t.Errorf("attrs = %+v, want %+v", toks[0].Attrs, tt.want)
			}
		})
	}
}

func TestTokenizeSelfClosing(t *testing.T) {
	toks := Tokenize(`<br/><hr /><img src="x.gif"/>`)
	if len(toks) != 3 {
		t.Fatalf("got %d tokens, want 3", len(toks))
	}
	for _, tok := range toks {
		if tok.Type != SelfClosingTagToken {
			t.Errorf("%s: type = %v, want self-closing", tok.Data, tok.Type)
		}
	}
}

func TestTokenizeCommentAndDoctype(t *testing.T) {
	toks := Tokenize(`<!DOCTYPE html><!-- a comment --><p>x</p>`)
	if toks[0].Type != DoctypeToken {
		t.Errorf("first token = %v, want doctype", toks[0].Type)
	}
	if toks[1].Type != CommentToken || toks[1].Data != " a comment " {
		t.Errorf("comment = %v %q", toks[1].Type, toks[1].Data)
	}
}

func TestTokenizeScriptRawText(t *testing.T) {
	src := `<script>if (a < b) { x = "<table>"; }</script><p>after</p>`
	toks := Tokenize(src)
	if len(toks) < 4 {
		t.Fatalf("got %d tokens: %v", len(toks), toks)
	}
	if toks[0].Type != StartTagToken || toks[0].Data != "script" {
		t.Fatalf("first = %v %q", toks[0].Type, toks[0].Data)
	}
	if toks[1].Type != TextToken || !strings.Contains(toks[1].Data, `x = "<table>"`) {
		t.Errorf("script body not raw: %q", toks[1].Data)
	}
	if toks[2].Type != EndTagToken || toks[2].Data != "script" {
		t.Errorf("script not closed: %v %q", toks[2].Type, toks[2].Data)
	}
}

func TestTokenizeUnterminatedScript(t *testing.T) {
	toks := Tokenize(`<script>var x = 1;`)
	if len(toks) != 2 {
		t.Fatalf("got %d tokens, want 2", len(toks))
	}
	if toks[1].Type != TextToken || toks[1].Data != "var x = 1;" {
		t.Errorf("body = %v %q", toks[1].Type, toks[1].Data)
	}
}

func TestTokenizeStrayAngleBracket(t *testing.T) {
	toks := Tokenize(`<p>3 < 5 and 7 > 2</p>`)
	if len(toks) != 3 {
		t.Fatalf("got %d tokens: %v", len(toks), toks)
	}
	if toks[1].Data != "3 < 5 and 7 > 2" {
		t.Errorf("text = %q", toks[1].Data)
	}
}

func TestTokenizeEndTagWithAttrs(t *testing.T) {
	toks := Tokenize(`</font color="red">`)
	if len(toks) != 1 || toks[0].Type != EndTagToken || toks[0].Data != "font" {
		t.Fatalf("got %v", toks)
	}
}

func TestTokenizeEmptyAndGarbage(t *testing.T) {
	if toks := Tokenize(""); len(toks) != 0 {
		t.Errorf("empty input produced %d tokens", len(toks))
	}
	// Garbage must not panic and must preserve text.
	toks := Tokenize("<<<>>><><")
	var text strings.Builder
	for _, tok := range toks {
		if tok.Type == TextToken {
			text.WriteString(tok.Data)
		}
	}
	if !strings.Contains(text.String(), "<") {
		t.Errorf("stray brackets lost: %q", text.String())
	}
}

func TestTokenAttrLookup(t *testing.T) {
	toks := Tokenize(`<a href="x" class="y">`)
	if v, ok := toks[0].Attr("HREF"); !ok || v != "x" {
		t.Errorf("Attr(HREF) = %q, %v", v, ok)
	}
	if _, ok := toks[0].Attr("missing"); ok {
		t.Error("Attr(missing) reported present")
	}
}

func TestTokenString(t *testing.T) {
	tests := []struct {
		give Token
		want string
	}{
		{Token{Type: StartTagToken, Data: "td", Attrs: []Attr{{Name: "colspan", Value: "2"}}}, `<td colspan="2">`},
		{Token{Type: EndTagToken, Data: "td"}, `</td>`},
		{Token{Type: SelfClosingTagToken, Data: "br"}, `<br/>`},
		{Token{Type: TextToken, Data: "hi"}, "hi"},
		{Token{Type: CommentToken, Data: "c"}, "<!--c-->"},
	}
	for _, tt := range tests {
		if got := tt.give.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestTokenizeOffsets(t *testing.T) {
	src := `<p>ab</p><b>c</b>`
	toks := Tokenize(src)
	for _, tok := range toks {
		if tok.Offset < 0 || tok.Offset >= len(src) {
			t.Errorf("offset %d out of range for %v", tok.Offset, tok)
		}
	}
	if toks[0].Offset != 0 || toks[1].Offset != 3 {
		t.Errorf("offsets = %d, %d", toks[0].Offset, toks[1].Offset)
	}
}

// Property: tokenizing never panics and text tokens never contain markup
// that the lexer recognized elsewhere; total consumed text is bounded.
func TestTokenizeNeverPanicsProperty(t *testing.T) {
	f := func(s string) bool {
		toks := Tokenize(s)
		for _, tok := range toks {
			if tok.Type == StartTagToken && tok.Data == "" {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTokenTypeString(t *testing.T) {
	names := map[TokenType]string{
		TextToken:           "text",
		StartTagToken:       "start-tag",
		EndTagToken:         "end-tag",
		SelfClosingTagToken: "self-closing-tag",
		CommentToken:        "comment",
		DoctypeToken:        "doctype",
		ProcInstToken:       "proc-inst",
		TokenType(99):       "TokenType(99)",
	}
	for tt, want := range names {
		if got := tt.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(tt), got, want)
		}
	}
}

func TestTokenizeProcessingInstruction(t *testing.T) {
	toks := Tokenize(`<?xml version="1.0"?><root>x</root>`)
	if toks[0].Type != ProcInstToken {
		t.Fatalf("first token = %v", toks[0].Type)
	}
	if !strings.Contains(toks[0].Data, "version") {
		t.Errorf("proc-inst data = %q", toks[0].Data)
	}
	// Unterminated processing instruction consumes the rest.
	toks = Tokenize(`<?php echo`)
	if len(toks) != 1 || toks[0].Type != ProcInstToken {
		t.Errorf("unterminated PI tokens = %v", toks)
	}
}

func TestTokenizeUnterminatedConstructs(t *testing.T) {
	for _, src := range []string{
		`<!-- never closed`,
		`<!DOCTYPE html`,
		`<a href="unclosed`,
		`<div`,
		`</`,
		`<`,
	} {
		toks := Tokenize(src) // must not panic or loop
		_ = toks
	}
}

func TestIndexFold(t *testing.T) {
	tests := []struct {
		haystack, needle string
		want             int
	}{
		{"abcDEF", "def", 3},
		{"abc", "ABC", 0},
		{"abc", "zzz", -1},
		{"", "", 0},
		{"short", "longer-than-haystack", -1},
	}
	for _, tt := range tests {
		if got := indexFold(tt.haystack, tt.needle); got != tt.want {
			t.Errorf("indexFold(%q, %q) = %d, want %d", tt.haystack, tt.needle, got, tt.want)
		}
	}
}
