package htmlparse

import (
	"testing"
	"testing/quick"
)

func TestUnescapeText(t *testing.T) {
	tests := []struct {
		name string
		give string
		want string
	}{
		{"no entities", "plain text", "plain text"},
		{"amp", "R&amp;D", "R&D"},
		{"lt gt", "&lt;b&gt;", "<b>"},
		{"quot", "&quot;hi&quot;", `"hi"`},
		{"nbsp", "a&nbsp;b", "a b"},
		{"decimal", "&#65;&#66;", "AB"},
		{"hex lower", "&#x41;", "A"},
		{"hex upper", "&#X42;", "B"},
		{"unknown named", "&bogus;", "&bogus;"},
		{"bare ampersand", "a & b", "a & b"},
		{"query string", "a=1&b=2", "a=1&b=2"},
		{"trailing ampersand", "end&", "end&"},
		{"copyright", "&copy; 2000", "© 2000"},
		{"mixed", "&lt;a&gt; &amp; &#99;", "<a> & c"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := UnescapeText(tt.give); got != tt.want {
				t.Errorf("UnescapeText(%q) = %q, want %q", tt.give, got, tt.want)
			}
		})
	}
}

func TestEscapeText(t *testing.T) {
	tests := []struct {
		give string
		want string
	}{
		{"plain", "plain"},
		{"a < b", "a &lt; b"},
		{"a > b", "a &gt; b"},
		{"R&D", "R&amp;D"},
		{`"x"`, `"x"`}, // quotes are legal in text
	}
	for _, tt := range tests {
		if got := EscapeText(tt.give); got != tt.want {
			t.Errorf("EscapeText(%q) = %q, want %q", tt.give, got, tt.want)
		}
	}
}

func TestEscapeAttr(t *testing.T) {
	if got := EscapeAttr(`a "quoted" & <b>`); got != `a &quot;quoted&quot; &amp; &lt;b&gt;` {
		t.Errorf("EscapeAttr = %q", got)
	}
}

// Property: escape-then-unescape is the identity on text content.
func TestEscapeUnescapeRoundTrip(t *testing.T) {
	f := func(s string) bool {
		return UnescapeText(EscapeText(s)) == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: unescaping never lengthens the string by more than the input
// (entities only shrink or keep length) and never panics.
func TestUnescapeNeverGrows(t *testing.T) {
	f := func(s string) bool {
		return len(UnescapeText(s)) <= len(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
