// Package htmlparse implements a from-scratch HTML tokenizer sufficient for
// the Omini object extraction pipeline.
//
// The tokenizer is deliberately forgiving: real web pages of the era the
// paper studies (and of today) are rarely well formed, so the lexer accepts
// unquoted attributes, bare ampersands, stray angle brackets in text, and
// case-insensitive tag names. Producing a *well-formed* document from the
// token stream is the job of package tidy; building the tag tree of the
// paper's Section 2.2 is the job of package tagtree.
package htmlparse

import (
	"fmt"
	"strings"
)

// TokenType identifies the kind of a lexed token.
type TokenType int

// Token types produced by the Lexer.
const (
	// TextToken is character data between tags.
	TextToken TokenType = iota + 1
	// StartTagToken is an opening tag such as <table border="1">.
	StartTagToken
	// EndTagToken is a closing tag such as </table>.
	EndTagToken
	// SelfClosingTagToken is an XML-style self-closed tag such as <br/>.
	SelfClosingTagToken
	// CommentToken is an HTML comment <!-- ... -->.
	CommentToken
	// DoctypeToken is a document type declaration <!DOCTYPE html>.
	DoctypeToken
	// ProcInstToken is a processing instruction such as <?xml ... ?>.
	ProcInstToken
)

// String returns a human-readable name for the token type.
func (t TokenType) String() string {
	switch t {
	case TextToken:
		return "text"
	case StartTagToken:
		return "start-tag"
	case EndTagToken:
		return "end-tag"
	case SelfClosingTagToken:
		return "self-closing-tag"
	case CommentToken:
		return "comment"
	case DoctypeToken:
		return "doctype"
	case ProcInstToken:
		return "proc-inst"
	default:
		return fmt.Sprintf("TokenType(%d)", int(t))
	}
}

// Attr is a single name="value" attribute on a tag.
type Attr struct {
	// Name is the attribute name, lower-cased.
	Name string
	// Value is the decoded attribute value ("" for bare attributes).
	Value string
}

// Token is one lexical unit of an HTML document.
type Token struct {
	// Type classifies the token.
	Type TokenType
	// Data is the tag name (lower-cased) for tag tokens, the decoded text
	// for text tokens, and the raw payload for comments/doctypes.
	Data string
	// Attrs holds tag attributes in document order. Nil for non-tag tokens.
	Attrs []Attr
	// Offset is the byte offset of the token start in the input.
	Offset int
}

// Attr returns the value of the named attribute and whether it was present.
// The lookup is case-insensitive because attribute names are stored
// lower-cased.
func (t *Token) Attr(name string) (string, bool) {
	name = strings.ToLower(name)
	for _, a := range t.Attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// String renders the token approximately as it would appear in a document.
// It is intended for debugging and tests, not for byte-exact serialization.
func (t *Token) String() string {
	switch t.Type {
	case TextToken:
		return t.Data
	case StartTagToken, SelfClosingTagToken:
		var b strings.Builder
		b.WriteByte('<')
		b.WriteString(t.Data)
		for _, a := range t.Attrs {
			b.WriteByte(' ')
			b.WriteString(a.Name)
			b.WriteString(`="`)
			b.WriteString(EscapeAttr(a.Value))
			b.WriteByte('"')
		}
		if t.Type == SelfClosingTagToken {
			b.WriteString("/>")
		} else {
			b.WriteByte('>')
		}
		return b.String()
	case EndTagToken:
		return "</" + t.Data + ">"
	case CommentToken:
		return "<!--" + t.Data + "-->"
	case DoctypeToken:
		return "<!" + t.Data + ">"
	case ProcInstToken:
		return "<?" + t.Data + "?>"
	default:
		return ""
	}
}
