package htmlparse

import (
	"strconv"
	"strings"
)

// entities maps the named character references that appear in practice on
// the result pages the paper studies. A full HTML5 entity table is not
// needed: unknown entities pass through verbatim, which matches how the
// 2000-era browsers (and HTML Tidy) treated them.
var entities = map[string]rune{
	"amp":    '&',
	"lt":     '<',
	"gt":     '>',
	"quot":   '"',
	"apos":   '\'',
	"nbsp":   '\x20', // plain space: nodeSize counts bytes of visible content
	"copy":   '©',
	"reg":    '®',
	"trade":  '™',
	"mdash":  '—',
	"ndash":  '–',
	"hellip": '…',
	"lsquo":  '‘',
	"rsquo":  '’',
	"ldquo":  '“',
	"rdquo":  '”',
	"middot": '·',
	"bull":   '•',
	"laquo":  '«',
	"raquo":  '»',
	"cent":   '¢',
	"pound":  '£',
	"yen":    '¥',
	"euro":   '€',
	"sect":   '§',
	"deg":    '°',
	"frac12": '½',
	"frac14": '¼',
	"times":  '×',
	"divide": '÷',
	"eacute": 'é',
	"egrave": 'è',
	"agrave": 'à',
	"ccedil": 'ç',
	"uuml":   'ü',
	"ouml":   'ö',
	"auml":   'ä',
	"ntilde": 'ñ',
}

// UnescapeText decodes character references (&amp;, &#65;, &#x41;) in s.
// Malformed references are left untouched so that no input byte is ever
// lost — the paper's well-formedness rules (Section 2.1) require only that
// *remaining* angle brackets in text be encoded, which EscapeText restores.
func UnescapeText(s string) string {
	amp := strings.IndexByte(s, '&')
	if amp < 0 {
		return s
	}
	var b strings.Builder
	b.Grow(len(s))
	for {
		b.WriteString(s[:amp])
		s = s[amp:]
		r, n := decodeEntity(s)
		if n == 0 {
			// Not a recognizable reference; emit the ampersand verbatim.
			b.WriteByte('&')
			s = s[1:]
		} else {
			b.WriteRune(r)
			s = s[n:]
		}
		amp = strings.IndexByte(s, '&')
		if amp < 0 {
			b.WriteString(s)
			return b.String()
		}
	}
}

// decodeEntity decodes one character reference at the start of s, which must
// begin with '&'. It returns the decoded rune and the number of input bytes
// consumed, or (0, 0) if s does not start with a valid reference.
func decodeEntity(s string) (rune, int) {
	if len(s) < 3 || s[0] != '&' {
		return 0, 0
	}
	// Numeric reference: &#123; or &#x7B;.
	if s[1] == '#' {
		i := 2
		base := 10
		if i < len(s) && (s[i] == 'x' || s[i] == 'X') {
			base = 16
			i++
		}
		start := i
		for i < len(s) && isDigitInBase(s[i], base) {
			i++
		}
		if i == start {
			return 0, 0
		}
		v, err := strconv.ParseInt(s[start:i], base, 32)
		if err != nil || v <= 0 || v > 0x10FFFF {
			return 0, 0
		}
		if i < len(s) && s[i] == ';' {
			i++
		}
		return rune(v), i
	}
	// Named reference: &name; (the semicolon is required for named refs to
	// avoid eating things like "R&D" or query strings "a=1&b=2").
	semi := strings.IndexByte(s[:min(len(s), 12)], ';')
	if semi < 2 {
		return 0, 0
	}
	if r, ok := entities[s[1:semi]]; ok {
		return r, semi + 1
	}
	return 0, 0
}

func isDigitInBase(c byte, base int) bool {
	switch {
	case c >= '0' && c <= '9':
		return true
	case base == 16 && c >= 'a' && c <= 'f':
		return true
	case base == 16 && c >= 'A' && c <= 'F':
		return true
	default:
		return false
	}
}

// EscapeText encodes the characters that may not appear literally in
// well-formed text content: '&', '<' and '>'.
func EscapeText(s string) string {
	if !strings.ContainsAny(s, "&<>") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '&':
			b.WriteString("&amp;")
		case '<':
			b.WriteString("&lt;")
		case '>':
			b.WriteString("&gt;")
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

// EscapeAttr encodes the characters that may not appear literally inside a
// double-quoted attribute value.
func EscapeAttr(s string) string {
	if !strings.ContainsAny(s, `&<>"`) {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '&':
			b.WriteString("&amp;")
		case '<':
			b.WriteString("&lt;")
		case '>':
			b.WriteString("&gt;")
		case '"':
			b.WriteString("&quot;")
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
