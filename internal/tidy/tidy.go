// Package tidy transforms arbitrary HTML into a well-formed document, in the
// sense of the paper's Section 2.1: every start tag acquires a matching end
// tag, void elements are immediately closed, implied closures (<li><li>,
// <td><td>, unclosed <p>) are made explicit, and overlapping inline elements
// are repaired by close-and-reopen. It plays the role HTML Tidy plays in the
// original Omini system.
package tidy

import (
	"strings"

	"omini/internal/govern"
	"omini/internal/htmlparse"
)

// openElem is one entry on the normalizer's open-element stack.
type openElem struct {
	name  string
	attrs []htmlparse.Attr
}

// normalizer rewrites a token stream into a balanced one.
type normalizer struct {
	out   []htmlparse.Token
	stack []openElem
	// g budgets emitted tokens and nesting depth; err is the sticky
	// governor violation that stops the rewrite. Repairs emit tokens
	// the input never had (format-tag reopening, implied closures), so
	// the output budget is charged here, where those tokens are born —
	// a repair loop that blows up quadratically trips MaxTokens even
	// when the raw input lexed comfortably under it.
	g   *govern.Guard
	err error
}

// Normalize converts src into a well-formed HTML document and returns its
// serialized form. The result round-trips through NormalizeTokens.
func Normalize(src string) string {
	return Serialize(NormalizeTokens(src))
}

// NormalizeTokens converts src into a balanced token stream: every
// StartTagToken has a matching EndTagToken, nesting is proper, and the
// stream has a single root "html" element with all flow content inside
// "body". Comments, doctypes and processing instructions are dropped, as
// the paper's tag tree contains only tag and content nodes.
func NormalizeTokens(src string) []htmlparse.Token {
	// Stream straight off the lexer instead of materializing the raw token
	// slice first: the normalizer is the only consumer, and the raw stream
	// of a large page is hundreds of kilobytes of short-lived tokens.
	lx := htmlparse.NewLexer(src)
	n := &normalizer{out: make([]htmlparse.Token, 0, len(src)/12+16)}
	for {
		tok, ok := lx.Next()
		if !ok {
			break
		}
		n.feed(&tok)
	}
	n.closeAll()
	return n.out
}

// NormalizeTokensFrom balances an already-lexed token stream, exactly as
// NormalizeTokens does for raw source. Callers that need the tokenize and
// tidy phases separately observable (the instrumented pipeline of
// internal/core) lex first with htmlparse.Tokenize and normalize here;
// callers that don't should prefer NormalizeTokens, which skips the
// intermediate slice.
func NormalizeTokensFrom(toks []htmlparse.Token) []htmlparse.Token {
	out, _ := NormalizeTokensFromGoverned(toks, nil)
	return out
}

// NormalizeTokensFromGoverned balances an already-lexed token stream
// under a resource guard: every emitted token is charged against the
// token budget and the open-element stack is checked against the depth
// limit on each push. A nil guard makes it identical to
// NormalizeTokensFrom.
func NormalizeTokensFromGoverned(toks []htmlparse.Token, g *govern.Guard) ([]htmlparse.Token, error) {
	n := &normalizer{out: make([]htmlparse.Token, 0, len(toks)+8), g: g}
	for i := range toks {
		if n.err != nil {
			return nil, n.err
		}
		n.feed(&toks[i])
	}
	n.closeAll()
	if n.err != nil {
		return nil, n.err
	}
	return n.out, nil
}

// feed routes one raw token through the normalizer.
func (n *normalizer) feed(tok *htmlparse.Token) {
	switch tok.Type {
	case htmlparse.TextToken:
		n.text(tok)
	case htmlparse.StartTagToken:
		n.start(tok.Data, tok.Attrs)
	case htmlparse.SelfClosingTagToken:
		n.start(tok.Data, tok.Attrs)
		if !IsVoid(tok.Data) {
			n.end(tok.Data)
		}
	case htmlparse.EndTagToken:
		n.end(tok.Data)
	case htmlparse.CommentToken, htmlparse.DoctypeToken, htmlparse.ProcInstToken:
		// Dropped: not part of the tag tree model.
	}
}

// headOnly are elements that belong in <head>.
var headOnly = map[string]bool{
	"title": true, "meta": true, "base": true, "link": true,
	"style": true, "isindex": true,
}

// text appends a text token, opening the structural context it needs.
// Whitespace-only text outside body is discarded rather than forcing a body
// open.
func (n *normalizer) text(tok *htmlparse.Token) {
	if strings.TrimSpace(tok.Data) == "" {
		if len(n.stack) < 2 {
			return
		}
	} else if top := n.top(); top == "" || top == "html" || top == "head" {
		// Text floating in the document skeleton needs a body; text inside
		// any real element (including head elements like <title>) stays put.
		n.ensureFlowContext("")
	}
	if n.err != nil {
		return
	}
	if err := n.g.Tokens(1); err != nil {
		n.err = err
		return
	}
	n.out = append(n.out, htmlparse.Token{
		Type:   htmlparse.TextToken,
		Data:   tok.Data,
		Offset: tok.Offset,
	})
}

// start handles a start tag: structural context, implied closures, push.
func (n *normalizer) start(name string, attrs []htmlparse.Attr) {
	switch name {
	case "html":
		if n.has("html") {
			return // duplicate <html>
		}
		n.push(name, attrs)
		return
	case "head":
		n.ensureOpen("html", nil)
		if n.has("head") || n.has("body") {
			return
		}
		n.push(name, attrs)
		return
	case "body":
		n.ensureOpen("html", nil)
		if n.has("body") {
			return
		}
		n.closeUpTo("html")
		n.push(name, attrs)
		return
	}
	n.ensureFlowContext(name)

	// Apply implied closures: a new <li> closes an open <li>, etc. A run
	// of open inline formatting elements does not shield the target: in
	// "<td><a href=x>title<td>" the second cell closes both the dangling
	// link and the first cell, as browsers do.
	for {
		top := n.top()
		if top == "" {
			break
		}
		if implicitClose(top, name) {
			n.pop()
			continue
		}
		if formatTags[top] && n.impliedTargetBelowFormatting(name) {
			n.pop()
			continue
		}
		break
	}

	if IsVoid(name) {
		// Emit <x></x> immediately; void elements never stay open.
		n.emitStart(name, attrs)
		n.emitEnd(name)
		return
	}
	n.push(name, attrs)
}

// end handles an end tag: find the matching open element, close everything
// above it, repairing inline overlaps by reopening formatting elements.
func (n *normalizer) end(name string) {
	if IsVoid(name) {
		return // </br> etc. — the start already emitted its close
	}
	if name == "html" || name == "body" {
		// Keep the document skeleton open until end of input so trailing
		// content (and a second <html> in concatenated documents) lands in
		// the same root instead of creating a sibling. Everything above the
		// skeleton element is closed now.
		if idx := n.find(name); idx >= 0 {
			for len(n.stack) > idx+1 {
				n.pop()
			}
		}
		return
	}
	idx := n.find(name)
	if idx < 0 {
		return // unmatched end tag: drop it
	}
	// Collect formatting elements that would be improperly closed, to
	// reopen them after (the <b><i></b></i> repair).
	var reopen []openElem
	for i := len(n.stack) - 1; i > idx; i-- {
		n.g.Poll()
		if formatTags[n.stack[i].name] {
			reopen = append(reopen, n.stack[i])
		}
	}
	for len(n.stack) > idx {
		n.pop()
	}
	// Reopen in original (outer-to-inner) order.
	for i := len(reopen) - 1; i >= 0; i-- {
		n.push(reopen[i].name, reopen[i].attrs)
	}
}

// impliedTargetBelowFormatting reports whether, beneath the run of open
// inline formatting elements on top of the stack, there is an element the
// incoming tag implicitly closes.
func (n *normalizer) impliedTargetBelowFormatting(name string) bool {
	for i := len(n.stack) - 1; i >= 0; i-- {
		n.g.Poll()
		el := n.stack[i].name
		if formatTags[el] {
			continue
		}
		return implicitClose(el, name)
	}
	return false
}

// find returns the stack index of the nearest open element with the given
// name, or -1. The search stops at scope boundaries (a </li> never matches
// an <li> outside the current list) and, for non-structural tags, at table
// cell boundaries.
func (n *normalizer) find(name string) int {
	for i := len(n.stack) - 1; i >= 0; i-- {
		n.g.Poll()
		if n.stack[i].name == name {
			return i
		}
		if boundsClose(name, n.stack[i].name) {
			return -1
		}
	}
	return -1
}

// ensureFlowContext opens html and body as needed so flow content has a
// home. Head-only elements are routed into head when body has not started.
func (n *normalizer) ensureFlowContext(name string) {
	n.ensureOpen("html", nil)
	if headOnly[name] && !n.has("body") {
		n.ensureOpen("head", nil)
		return
	}
	if name == "script" && !n.has("body") && n.has("head") {
		return // scripts in an open head stay in head
	}
	if !n.has("body") {
		n.closeUpTo("html")
		n.push("body", nil)
	}
}

// ensureOpen opens the named element at the appropriate level if it is not
// already open.
func (n *normalizer) ensureOpen(name string, attrs []htmlparse.Attr) {
	if !n.has(name) {
		n.push(name, attrs)
	}
}

// closeUpTo pops elements until the named element is on top of the stack.
func (n *normalizer) closeUpTo(name string) {
	for len(n.stack) > 0 && n.top() != name {
		n.pop()
	}
}

// closeAll closes every element remaining open at end of input.
func (n *normalizer) closeAll() {
	for len(n.stack) > 0 {
		n.pop()
	}
}

func (n *normalizer) has(name string) bool {
	for i := range n.stack {
		n.g.Poll()
		if n.stack[i].name == name {
			return true
		}
	}
	return false
}

func (n *normalizer) top() string {
	if len(n.stack) == 0 {
		return ""
	}
	return n.stack[len(n.stack)-1].name
}

func (n *normalizer) push(name string, attrs []htmlparse.Attr) {
	if n.err != nil {
		return
	}
	if err := n.g.Depth(len(n.stack) + 1); err != nil {
		n.err = err
		return
	}
	n.stack = append(n.stack, openElem{name: name, attrs: attrs})
	n.emitStart(name, attrs)
}

func (n *normalizer) pop() {
	top := n.stack[len(n.stack)-1]
	n.stack = n.stack[:len(n.stack)-1]
	n.emitEnd(top.name)
}

func (n *normalizer) emitStart(name string, attrs []htmlparse.Attr) {
	if n.err != nil {
		return
	}
	if err := n.g.Tokens(1); err != nil {
		n.err = err
		return
	}
	n.out = append(n.out, htmlparse.Token{
		Type:  htmlparse.StartTagToken,
		Data:  name,
		Attrs: attrs,
	})
}

func (n *normalizer) emitEnd(name string) {
	if n.err != nil {
		return
	}
	if err := n.g.Tokens(1); err != nil {
		n.err = err
		return
	}
	n.out = append(n.out, htmlparse.Token{
		Type: htmlparse.EndTagToken,
		Data: name,
	})
}

// Serialize renders a token stream back to HTML text. Text content and
// attribute values are re-escaped, so the output of NormalizeTokens
// serializes to a well-formed document in the paper's sense.
func Serialize(toks []htmlparse.Token) string {
	var b strings.Builder
	for i := range toks {
		tok := &toks[i]
		if tok.Type == htmlparse.TextToken {
			b.WriteString(htmlparse.EscapeText(tok.Data))
			continue
		}
		b.WriteString(tok.String())
	}
	return b.String()
}
