package tidy

import (
	"strings"
	"testing"
	"testing/quick"

	"omini/internal/htmlparse"
)

// balanced verifies that every start tag has a matching end tag with proper
// nesting, i.e. the stream is well formed in the paper's sense.
func balanced(t *testing.T, toks []htmlparse.Token) {
	t.Helper()
	var stack []string
	for _, tok := range toks {
		switch tok.Type {
		case htmlparse.StartTagToken:
			stack = append(stack, tok.Data)
		case htmlparse.EndTagToken:
			if len(stack) == 0 {
				t.Fatalf("end tag </%s> with empty stack", tok.Data)
			}
			top := stack[len(stack)-1]
			if top != tok.Data {
				t.Fatalf("end tag </%s> does not match open <%s>", tok.Data, top)
			}
			stack = stack[:len(stack)-1]
		case htmlparse.SelfClosingTagToken:
			t.Fatalf("normalized stream contains self-closing token %v", tok)
		}
	}
	if len(stack) != 0 {
		t.Fatalf("unclosed elements remain: %v", stack)
	}
}

func TestNormalizeBalancesEverything(t *testing.T) {
	tests := []struct {
		name string
		give string
	}{
		{"well formed", `<html><head><title>t</title></head><body><p>x</p></body></html>`},
		{"unclosed paragraphs", `<html><body><p>one<p>two<p>three</body></html>`},
		{"unclosed list items", `<html><body><ul><li>a<li>b<li>c</ul></body></html>`},
		{"unclosed table cells", `<html><body><table><tr><td>a<td>b<tr><td>c</table></body></html>`},
		{"void elements", `<html><body>a<br>b<hr><img src="x.gif"></body></html>`},
		{"self closing", `<html><body>a<br/>b</body></html>`},
		{"overlap", `<html><body><b>bold <i>both</b> italic</i></body></html>`},
		{"missing end tags", `<html><body><div><span>x`},
		{"stray end tags", `</td></table><html><body>x</b></i></body></html>`},
		{"no html wrapper", `<table><tr><td>x</td></tr></table>`},
		{"bare text", `just text`},
		{"dl runs", `<html><body><dl><dt>a<dd>1<dt>b<dd>2</dl></body></html>`},
		{"nested lists", `<ul><li>a<ul><li>a1<li>a2</ul><li>b</ul>`},
		{"empty", ``},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			balanced(t, NormalizeTokens(tt.give))
		})
	}
}

// countTags returns per-tag start counts in a token stream.
func countTags(toks []htmlparse.Token) map[string]int {
	counts := make(map[string]int)
	for _, tok := range toks {
		if tok.Type == htmlparse.StartTagToken {
			counts[tok.Data]++
		}
	}
	return counts
}

func TestImplicitLiClosure(t *testing.T) {
	toks := NormalizeTokens(`<ul><li>a<li>b<li>c</ul>`)
	if got := countTags(toks)["li"]; got != 3 {
		t.Errorf("li count = %d, want 3", got)
	}
	// Ensure the lis are siblings: nesting depth under ul should be 1.
	depth, maxLiDepth := 0, 0
	liDepth := -1
	for _, tok := range toks {
		switch tok.Type {
		case htmlparse.StartTagToken:
			depth++
			if tok.Data == "li" {
				if liDepth == -1 {
					liDepth = depth
				}
				if depth > maxLiDepth {
					maxLiDepth = depth
				}
			}
		case htmlparse.EndTagToken:
			depth--
		}
	}
	if maxLiDepth != liDepth {
		t.Errorf("li elements nested (depths %d vs %d), want siblings", maxLiDepth, liDepth)
	}
}

func TestNestedListKeepsInnerItems(t *testing.T) {
	toks := NormalizeTokens(`<ul><li>a<ul><li>a1<li>a2</ul><li>b</ul>`)
	if got := countTags(toks)["li"]; got != 4 {
		t.Errorf("li count = %d, want 4", got)
	}
	if got := countTags(toks)["ul"]; got != 2 {
		t.Errorf("ul count = %d, want 2", got)
	}
}

func TestTableCellClosure(t *testing.T) {
	toks := NormalizeTokens(`<table><tr><td>a<td>b<tr><td>c</table>`)
	counts := countTags(toks)
	if counts["tr"] != 2 || counts["td"] != 3 {
		t.Errorf("tr=%d td=%d, want tr=2 td=3", counts["tr"], counts["td"])
	}
}

func TestVoidElementsImmediatelyClosed(t *testing.T) {
	toks := NormalizeTokens(`<body>a<br>b<hr>c</body>`)
	for i, tok := range toks {
		if tok.Type == htmlparse.StartTagToken && IsVoid(tok.Data) {
			if i+1 >= len(toks) || toks[i+1].Type != htmlparse.EndTagToken || toks[i+1].Data != tok.Data {
				t.Errorf("void <%s> not immediately followed by its end tag", tok.Data)
			}
		}
	}
}

func TestEndBrIgnored(t *testing.T) {
	toks := NormalizeTokens(`<body>a<br></br>b</body>`)
	if got := countTags(toks)["br"]; got != 1 {
		t.Errorf("br count = %d, want 1", got)
	}
	balanced(t, toks)
}

func TestOverlapRepairReopensFormatting(t *testing.T) {
	toks := NormalizeTokens(`<body><b>bold <i>both</b> italic</i></body>`)
	balanced(t, toks)
	if got := countTags(toks)["i"]; got != 2 {
		t.Errorf("i count = %d, want 2 (closed and reopened)", got)
	}
	// The text " italic" must still be inside an <i>.
	var inI int
	found := false
	for _, tok := range toks {
		switch {
		case tok.Type == htmlparse.StartTagToken && tok.Data == "i":
			inI++
		case tok.Type == htmlparse.EndTagToken && tok.Data == "i":
			inI--
		case tok.Type == htmlparse.TextToken && strings.Contains(tok.Data, "italic"):
			found = true
			if inI == 0 {
				t.Error("'italic' text not inside <i> after repair")
			}
		}
	}
	if !found {
		t.Fatal("text lost during repair")
	}
}

func TestSynthesizesHTMLAndBody(t *testing.T) {
	toks := NormalizeTokens(`<table><tr><td>x</td></tr></table>`)
	counts := countTags(toks)
	if counts["html"] != 1 || counts["body"] != 1 {
		t.Errorf("html=%d body=%d, want 1 each", counts["html"], counts["body"])
	}
	if toks[0].Data != "html" || toks[1].Data != "body" {
		t.Errorf("stream starts %q %q, want html body", toks[0].Data, toks[1].Data)
	}
}

func TestHeadContentRouting(t *testing.T) {
	toks := NormalizeTokens(`<title>t</title><p>body text</p>`)
	// title must be inside head, p inside body.
	var stack []string
	containerOf := make(map[string]string)
	for _, tok := range toks {
		switch tok.Type {
		case htmlparse.StartTagToken:
			if tok.Data == "title" || tok.Data == "p" {
				containerOf[tok.Data] = strings.Join(stack, "/")
			}
			stack = append(stack, tok.Data)
		case htmlparse.EndTagToken:
			stack = stack[:len(stack)-1]
		}
	}
	if !strings.Contains(containerOf["title"], "head") {
		t.Errorf("title container = %q, want under head", containerOf["title"])
	}
	if !strings.Contains(containerOf["p"], "body") {
		t.Errorf("p container = %q, want under body", containerOf["p"])
	}
}

func TestDuplicateHTMLAndBodyIgnored(t *testing.T) {
	toks := NormalizeTokens(`<html><body>a</body></html><html><body>b</body></html>`)
	balanced(t, toks)
	counts := countTags(toks)
	if counts["html"] != 1 {
		t.Errorf("html count = %d, want 1", counts["html"])
	}
}

func TestParagraphClosedByTable(t *testing.T) {
	toks := NormalizeTokens(`<body><p>intro<table><tr><td>x</td></tr></table></body>`)
	// The table must not be inside the p.
	var stack []string
	for _, tok := range toks {
		switch tok.Type {
		case htmlparse.StartTagToken:
			if tok.Data == "table" {
				for _, s := range stack {
					if s == "p" {
						t.Fatal("table nested inside unclosed p")
					}
				}
			}
			stack = append(stack, tok.Data)
		case htmlparse.EndTagToken:
			stack = stack[:len(stack)-1]
		}
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	src := `<html><body><p>a &amp; b</p><table border="1"><tr><td>x</td></tr></table></body></html>`
	once := Normalize(src)
	twice := Normalize(once)
	if once != twice {
		t.Errorf("Normalize not idempotent:\n once: %s\ntwice: %s", once, twice)
	}
}

func TestCommentsAndDoctypeDropped(t *testing.T) {
	toks := NormalizeTokens(`<!DOCTYPE html><!-- hidden --><html><body>x</body></html>`)
	for _, tok := range toks {
		if tok.Type == htmlparse.CommentToken || tok.Type == htmlparse.DoctypeToken {
			t.Errorf("normalized stream contains %v", tok.Type)
		}
	}
}

func TestTextPreserved(t *testing.T) {
	src := `<html><body><p>alpha<p>beta<ul><li>gamma<li>delta</ul></body></html>`
	toks := NormalizeTokens(src)
	var text strings.Builder
	for _, tok := range toks {
		if tok.Type == htmlparse.TextToken {
			text.WriteString(tok.Data)
		}
	}
	for _, word := range []string{"alpha", "beta", "gamma", "delta"} {
		if !strings.Contains(text.String(), word) {
			t.Errorf("text %q lost in normalization", word)
		}
	}
}

// Property: normalization always yields a balanced stream, for arbitrary
// byte soup.
func TestNormalizeAlwaysBalancedProperty(t *testing.T) {
	f := func(s string) bool {
		toks := NormalizeTokens(s)
		var depth int
		for _, tok := range toks {
			switch tok.Type {
			case htmlparse.StartTagToken:
				depth++
			case htmlparse.EndTagToken:
				depth--
				if depth < 0 {
					return false
				}
			}
		}
		return depth == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// Property: normalization is idempotent at the serialized level.
func TestNormalizeIdempotentProperty(t *testing.T) {
	f := func(s string) bool {
		once := Normalize(s)
		return Normalize(once) == once
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// A dangling inline element must not shield implied closures: the second
// <td> closes both the open link and the first cell (tag-soup pages with
// no end tags at all depend on this).
func TestImpliedClosureUnwindsFormatting(t *testing.T) {
	toks := NormalizeTokens(`<table><tr><td><a href="/x">first<td>second<tr><td><b>third</table>`)
	balanced(t, toks)
	counts := countTags(toks)
	if counts["td"] != 3 || counts["tr"] != 2 {
		t.Errorf("td=%d tr=%d, want 3/2", counts["td"], counts["tr"])
	}
	// No td may end up nested inside an a.
	var stack []string
	for _, tok := range toks {
		switch tok.Type {
		case htmlparse.StartTagToken:
			if tok.Data == "td" {
				for _, s := range stack {
					if s == "a" || s == "b" {
						t.Fatalf("td nested inside <%s>", s)
					}
				}
			}
			stack = append(stack, tok.Data)
		case htmlparse.EndTagToken:
			stack = stack[:len(stack)-1]
		}
	}
}

// Formatting elements do not unwind when no implied target lies below:
// a <p> inside <b> inside <div> keeps the bold open.
func TestFormattingKeptWithoutImpliedTarget(t *testing.T) {
	toks := NormalizeTokens(`<div><b>bold <span>x</span> still bold</b></div>`)
	balanced(t, toks)
	if got := countTags(toks)["b"]; got != 1 {
		t.Errorf("b count = %d, want 1 (no spurious reopen)", got)
	}
}

func TestSelectOptionClosure(t *testing.T) {
	toks := NormalizeTokens(`<select><option>a<option>b<option>c</select>`)
	balanced(t, toks)
	if got := countTags(toks)["option"]; got != 3 {
		t.Errorf("option count = %d, want 3", got)
	}
}

func TestNestedTableEndTagScoping(t *testing.T) {
	// A stray </table> inside a cell must not close the outer table's cell
	// run; boundsClose confines td/tr matching to the nearest table.
	toks := NormalizeTokens(`<table><tr><td><table><tr><td>inner</td></tr></table></td>` +
		`<td>outer-continues</td></tr></table>`)
	balanced(t, toks)
	counts := countTags(toks)
	if counts["table"] != 2 || counts["td"] != 3 {
		t.Errorf("table=%d td=%d, want 2/3", counts["table"], counts["td"])
	}
}
