// External test package: tagtree depends on tidy, so checking tidy's output
// at the tree level needs the reverse import.
package tidy_test

import (
	"testing"

	"omini/internal/corpus"
	"omini/internal/tagtree"
	"omini/internal/tidy"
)

// TestNormalizedStreamBuildsValidTrees feeds the streaming normalizer's
// output to the tree builder for every corpus bench page and for a handful
// of malformed snippets, and checks the resulting trees with the exported
// invariant validator: a balanced stream that builds a corrupt tree would
// poison every heuristic downstream.
func TestNormalizedStreamBuildsValidTrees(t *testing.T) {
	var inputs []string
	for _, size := range corpus.BenchSizes {
		inputs = append(inputs, corpus.BenchPage(size).HTML)
	}
	inputs = append(inputs,
		"<td>a<td>b<td>c",
		"<b><i>overlap</b></i> trailing",
		"<ul><li>1<li>2<li>3",
		"bare text then <div>a div</div>",
	)
	for _, src := range inputs {
		root, err := tagtree.Build(tidy.NormalizeTokens(src))
		if err != nil {
			t.Fatalf("Build(NormalizeTokens(%.40q)): %v", src, err)
		}
		if err := tagtree.Validate(root); err != nil {
			t.Errorf("input %.40q: %v", src, err)
		}
	}
}
