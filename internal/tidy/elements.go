package tidy

// This file encodes the HTML element knowledge the normalizer needs: which
// elements are void (never have content), which closures are implied by a
// new start tag (the <li><li> and <td><td> patterns of 2000-era HTML), and
// which ancestors bound those implied closures.

// voidElements never take content; their end tags are synthesized
// immediately, per the well-formedness rules of the paper's Section 2.1
// ("<BR> will be denoted by <BR></BR>").
var voidElements = map[string]bool{
	"area":     true,
	"base":     true,
	"basefont": true,
	"br":       true,
	"col":      true,
	"embed":    true,
	"frame":    true,
	"hr":       true,
	"img":      true,
	"input":    true,
	"isindex":  true,
	"link":     true,
	"meta":     true,
	"param":    true,
	"source":   true,
	"spacer":   true,
	"wbr":      true,
}

// IsVoid reports whether the named element is a void element.
func IsVoid(name string) bool { return voidElements[name] }

// closedBy maps an open element to the set of start tags that implicitly
// close it. For example an open "li" is closed by a new "li"; an open "td"
// is closed by "td", "th" or "tr".
var closedBy = map[string]map[string]bool{
	"p": {
		"p": true, "div": true, "table": true, "ul": true, "ol": true,
		"dl": true, "li": true, "blockquote": true, "pre": true, "form": true,
		"h1": true, "h2": true, "h3": true, "h4": true, "h5": true, "h6": true,
		"hr": true, "center": true, "address": true,
	},
	"li":       {"li": true},
	"dt":       {"dt": true, "dd": true},
	"dd":       {"dt": true, "dd": true},
	"tr":       {"tr": true},
	"td":       {"td": true, "th": true, "tr": true},
	"th":       {"td": true, "th": true, "tr": true},
	"thead":    {"tbody": true, "tfoot": true},
	"tbody":    {"tbody": true, "tfoot": true},
	"tfoot":    {"tbody": true},
	"option":   {"option": true, "optgroup": true},
	"optgroup": {"optgroup": true},
	"colgroup": {
		"tr": true, "td": true, "th": true, "thead": true, "tbody": true,
		"tfoot": true, "colgroup": true,
	},
	"head": {"body": true},
}

// closeScopeBoundary bounds the upward search for an element to implicitly
// close: when looking for an open "li" to close we must not cross a nested
// "ul"/"ol". Keys are the elements being closed.
var closeScopeBoundary = map[string]map[string]bool{
	"li":     {"ul": true, "ol": true, "menu": true, "dir": true},
	"dt":     {"dl": true},
	"dd":     {"dl": true},
	"tr":     {"table": true},
	"td":     {"table": true, "tr": true},
	"th":     {"table": true, "tr": true},
	"thead":  {"table": true},
	"tbody":  {"table": true},
	"tfoot":  {"table": true},
	"option": {"select": true},
	"p":      {"td": true, "th": true, "table": true, "body": true},
}

// formatTags are inline formatting elements that participate in overlap
// repair: for input like <b>bold <i>both</b> italic</i> the normalizer
// closes and reopens the inline element instead of producing an overlap.
var formatTags = map[string]bool{
	"a": true, "b": true, "big": true, "em": true, "font": true, "i": true,
	"s": true, "small": true, "strike": true, "strong": true, "tt": true,
	"u": true,
}

// implicitClose reports whether an incoming start tag implicitly closes the
// given open element.
func implicitClose(open, incoming string) bool {
	set, ok := closedBy[open]
	return ok && set[incoming]
}

// boundsClose reports whether element bound stops the search for an open
// element named target during implicit closing or end-tag matching.
func boundsClose(target, bound string) bool {
	set, ok := closeScopeBoundary[target]
	return ok && set[bound]
}
