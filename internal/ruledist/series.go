package ruledist

import "omini/internal/obs"

// Registry series emitted by this package. One constant per series —
// the obsnames analyzer enforces that emission sites use these and
// that registerMetrics pre-registers every one of them, so /metricsz
// exposes the whole replication surface from boot.
const (
	// SeriesRounds counts completed anti-entropy rounds (SyncAll).
	SeriesRounds = "ruledist.rounds"
	// SeriesJoinSyncs counts budget-bounded warm-up rounds run before a
	// node flipped ready (SyncOnJoin).
	SeriesJoinSyncs = "ruledist.join_syncs"
	// SeriesPeerSyncs counts per-peer conversations that fully applied;
	// SeriesPeerErrors counts the ones that failed and were skipped.
	SeriesPeerSyncs  = "ruledist.peer_syncs"
	SeriesPeerErrors = "ruledist.peer_errors"
	// SeriesBreakerSkips counts peers skipped because their circuit
	// breaker was open (a dead peer costs one check, not a timeout).
	SeriesBreakerSkips = "ruledist.skipped_breaker"
	// SeriesNotModified counts digest polls answered 304 — the
	// steady-state outcome once the cluster has converged.
	SeriesNotModified = "ruledist.not_modified"
	// SeriesRulesPulled counts remote rules merged into the local farm;
	// SeriesStaleIgnored counts pulled rules rejected because the local
	// version (rule or tombstone) was at least as new.
	SeriesRulesPulled  = "ruledist.rules_pulled"
	SeriesStaleIgnored = "ruledist.stale_ignored"
	// SeriesTombstonesApplied counts remote evictions honored locally,
	// removing a stale rule or preventing its resurrection.
	SeriesTombstonesApplied = "ruledist.tombstones_applied"
	// SeriesCorruptDiscarded counts transfers thrown away whole —
	// oversized, truncated or undecodable bodies. Nothing from a
	// discarded transfer is ever applied.
	SeriesCorruptDiscarded = "ruledist.corrupt_discarded"

	// gaugePeers is the number of sync targets (the peer set minus this
	// node).
	gaugePeers = "ruledist.peers"
)

// registerMetrics pre-touches every series this package emits, so a
// scrape of a fresh process already shows the full replication surface
// at zero. The obsnames analyzer harvests this function as the boot
// pre-registration set.
func (r *Replicator) registerMetrics() {
	for _, name := range []string{
		SeriesRounds, SeriesJoinSyncs, SeriesPeerSyncs, SeriesPeerErrors,
		SeriesBreakerSkips, SeriesNotModified, SeriesRulesPulled,
		SeriesStaleIgnored, SeriesTombstonesApplied, SeriesCorruptDiscarded,
	} {
		r.stats.Counter(name)
	}
	// The sync/pull spans land in the shared phase histograms; touch
	// them so converged-idle processes still expose the series.
	r.stats.Histogram(obs.PhaseSeries("ruledist.sync"))
	r.stats.Histogram(obs.PhaseSeries("ruledist.pull"))
	npeers := len(r.cfg.Peers)
	if _, ok := r.cfg.Peers[r.cfg.Self]; ok {
		npeers--
	}
	r.stats.RegisterGaugeFunc(gaugePeers, func() float64 {
		return float64(npeers)
	})
}
