package ruledist

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"omini/internal/cluster"
	"omini/internal/farm"
	"omini/internal/resilience"
	"omini/internal/serve"
	"omini/internal/sitegen"
)

// chaosNode is one full cluster member: extraction server, replicator,
// coordinator, all served on a real TCP listener so it can be killed
// and restarted on the same address.
type chaosNode struct {
	id     string
	addr   string
	stats  *resilience.Stats
	srv    *serve.Server
	repl   *Replicator
	hs     *http.Server
	cancel context.CancelFunc
	done   chan struct{}
}

// startChaosNode boots a member on addr. With warmJoin the node holds
// /readyz until its join sync finishes — the warm re-admission path.
func startChaosNode(t *testing.T, id, addr string, peers map[string]string, warmJoin bool) *chaosNode {
	t.Helper()
	stats := resilience.NewStats()
	srv := serve.New(serve.Config{Stats: stats, Logger: quietLogger(), DeferReady: warmJoin})
	repl, err := New(Config{
		Self:     id,
		Peers:    peers,
		Farm:     srv.Farm(),
		Interval: -1, // rounds are join- and kick-driven in this test
		Stats:    stats,
		Logger:   quietLogger(),
		Breaker:  resilience.BreakerConfig{FailureThreshold: 3, Cooldown: 50 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	coord := cluster.New(cluster.Config{
		Self:          id,
		Peers:         peers,
		Local:         srv,
		Stats:         stats,
		Logger:        quietLogger(),
		ProbeInterval: 20 * time.Millisecond,
		ProbeTimeout:  250 * time.Millisecond,
		FailThreshold: 2,
		NodeAttempts:  2,
		RetryBase:     time.Millisecond,
		RetryMaxDelay: 4 * time.Millisecond,
		OnReadmission: func(string) { repl.Kick() },
	})
	go func() { _ = coord.Run(ctx) }()
	go func() { _ = repl.Run(ctx) }()

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		cancel()
		t.Fatalf("listen %s: %v", addr, err)
	}
	n := &chaosNode{
		id: id, addr: ln.Addr().String(), stats: stats, srv: srv, repl: repl,
		hs: &http.Server{Handler: coord}, cancel: cancel, done: make(chan struct{}),
	}
	go func() { defer close(n.done); _ = n.hs.Serve(ln) }()
	if warmJoin {
		go func() {
			_ = repl.SyncOnJoin(ctx)
			srv.MarkReady()
		}()
	}
	t.Cleanup(func() { n.kill(t) })
	return n
}

// kill tears the node down hard: listener closed, in-flight cut,
// background loops cancelled. Idempotent.
func (n *chaosNode) kill(t *testing.T) {
	t.Helper()
	n.cancel()
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	_ = n.hs.Shutdown(ctx)
	<-n.done
}

// warmSpecs returns the eight learned sites of the proof across
// distinct layout families.
func warmSpecs() []sitegen.SiteSpec {
	layouts := []string{
		"ul-record", "row-table", "dl-record", "item-table",
		"para-record", "div-card", "hr-record", "font-catalog",
	}
	specs := make([]sitegen.SiteSpec, len(layouts))
	for i, layout := range layouts {
		specs[i] = sitegen.SiteSpec{
			Name:       fmt.Sprintf("warm-%c.example", 'a'+i),
			Domain:     sitegen.DomainBooks,
			LayoutName: layout,
			MinItems:   6, MaxItems: 10,
		}
	}
	return specs
}

// extractVia drives one extraction through the front coordinator and
// returns status, serving node, and whether the fast path served it.
func extractVia(t *testing.T, front *cluster.Coordinator, site, html string) (status int, node string, fromRule bool) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/extract?site="+site, strings.NewReader(html))
	rec := httptest.NewRecorder()
	front.ServeHTTP(rec, req)
	var payload struct {
		Node     string `json:"node"`
		FromRule bool   `json:"fromRule"`
		Objects  []any  `json:"objects"`
	}
	if rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), &payload); err != nil {
			t.Fatalf("extract %s: bad JSON: %v", site, err)
		}
		if len(payload.Objects) == 0 {
			t.Fatalf("extract %s: zero objects", site)
		}
	}
	return rec.Code, payload.Node, payload.FromRule
}

func waitCond(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestWarmFailoverChaosProof is the acceptance experiment for rule
// distribution: a three-node cluster learns eight sites, every node
// syncs every rule, and the owner of the most sites is killed
// mid-operation. The proof obligations: every remapped site is served
// fast-path by its new owner with zero relearns, and the killed node
// restarts into a warm cache — join sync before /readyz, zero learns
// after re-admission. Run under -race by scripts/ci.sh.
func TestWarmFailoverChaosProof(t *testing.T) {
	// --- Boot: three members on real ports, plus a front router. ---
	addrs := make([]string, 3)
	peers := make(map[string]string, 3)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		_ = ln.Close() // the node re-binds this exact address
		peers[fmt.Sprintf("n%d", i)] = "http://" + addrs[i]
	}
	nodes := make(map[string]*chaosNode, 3)
	for i, addr := range addrs {
		id := fmt.Sprintf("n%d", i)
		nodes[id] = startChaosNode(t, id, addr, peers, false)
	}
	frontStats := resilience.NewStats()
	front := cluster.New(cluster.Config{
		Peers:         peers,
		Local:         serve.New(serve.Config{Stats: resilience.NewStats(), Logger: quietLogger()}),
		Stats:         frontStats,
		Logger:        quietLogger(),
		ProbeInterval: 20 * time.Millisecond,
		ProbeTimeout:  250 * time.Millisecond,
		FailThreshold: 2,
		NodeAttempts:  2,
		RetryBase:     time.Millisecond,
		RetryMaxDelay: 4 * time.Millisecond,
	})
	fctx, fcancel := context.WithCancel(context.Background())
	defer fcancel()
	go func() { _ = front.Run(fctx) }()

	// --- Learn: eight sites, each on its ring owner. ---
	specs := warmSpecs()
	owner := make(map[string]string, len(specs))
	for _, spec := range specs {
		status, node, fromRule := extractVia(t, front, spec.Name, spec.Page(0).HTML)
		if status != http.StatusOK {
			t.Fatalf("learn %s: status %d", spec.Name, status)
		}
		if fromRule {
			t.Fatalf("learn %s: served fromRule before any rule existed", spec.Name)
		}
		if node == "" {
			t.Fatalf("learn %s: no node attribution", spec.Name)
		}
		owner[spec.Name] = node
	}

	// --- Distribute: one anti-entropy round per node converges all 8
	// rules everywhere (n0 pulls from n1,n2; etc.).
	for _, n := range nodes {
		if err := n.repl.SyncAll(context.Background()); err != nil {
			t.Fatalf("SyncAll(%s): %v", n.id, err)
		}
		if got := n.srv.Farm().Len(); got != len(specs) {
			t.Fatalf("node %s has %d rules after sync, want %d", n.id, got, len(specs))
		}
	}

	// --- Kill the owner of the most sites (≥3 by pigeonhole). ---
	count := make(map[string]int)
	for _, n := range owner {
		count[n]++
	}
	victim := ""
	for id, c := range count {
		if victim == "" || c > count[victim] {
			victim = id
		}
	}
	if count[victim] < 3 {
		t.Fatalf("victim %s owns %d sites, want >= 3 (owners: %v)", victim, count[victim], owner)
	}
	var remapped []sitegen.SiteSpec
	for _, spec := range specs {
		if owner[spec.Name] == victim {
			remapped = append(remapped, spec)
		}
	}
	t.Logf("warm-failover: victim=%s owns %d/%d sites %v", victim, count[victim], len(specs), count)

	learnsBefore := make(map[string]int64)
	for id, n := range nodes {
		if id != victim {
			learnsBefore[id] = n.stats.Get(farm.SeriesLearns)
		}
	}
	nodes[victim].kill(t)
	front.KillForTest(victim) // instantaneous decision; the real prober confirms
	waitCond(t, "front prober ejection", func() bool {
		return frontStats.Get(cluster.SeriesProbeFailures) >= 1
	})

	// --- Proof 1: every site — the remapped ones included — is served
	// fast-path by a surviving node with zero relearns.
	for _, spec := range specs {
		status, node, fromRule := extractVia(t, front, spec.Name, spec.Page(1).HTML)
		if status != http.StatusOK {
			t.Fatalf("failover %s: status %d", spec.Name, status)
		}
		if node == victim {
			t.Fatalf("failover %s: served by the killed node", spec.Name)
		}
		if !fromRule {
			t.Errorf("failover %s: not served from the replicated rule (new owner %s)", spec.Name, node)
		}
	}
	for id, n := range nodes {
		if id == victim {
			continue
		}
		if got := n.stats.Get(farm.SeriesLearns) - learnsBefore[id]; got != 0 {
			t.Errorf("node %s relearned %d sites after failover, want 0", id, got)
		}
	}

	// --- Restart the victim cold-state but warm-join: fresh farm, rules
	// pulled from ring peers before /readyz flips.
	reborn := startChaosNode(t, victim, addrs[victimIndex(victim)], peers, true)
	nodes[victim] = reborn
	waitCond(t, "join sync + re-admission", func() bool {
		return reborn.srv.Ready() && frontStats.Get(cluster.SeriesReadmissions) >= 1
	})
	if got := reborn.srv.Farm().Len(); got != len(specs) {
		t.Fatalf("reborn %s has %d rules after join sync, want %d", victim, got, len(specs))
	}
	if got := reborn.stats.Get(SeriesJoinSyncs); got != 1 {
		t.Fatalf("reborn ruledist.join_syncs = %d, want 1", got)
	}

	// --- Proof 2: the remapped sites come home to a warm cache — the
	// reborn owner serves them fast-path without one relearn.
	waitCond(t, "victim back in the front ring", func() bool {
		_, node, _ := extractVia(t, front, remapped[0].Name, remapped[0].Page(2).HTML)
		return node == victim
	})
	for _, spec := range remapped {
		status, node, fromRule := extractVia(t, front, spec.Name, spec.Page(3).HTML)
		if status != http.StatusOK {
			t.Fatalf("re-admission %s: status %d", spec.Name, status)
		}
		if node != victim {
			t.Errorf("re-admission %s: served by %s, want reborn owner %s", spec.Name, node, victim)
		}
		if !fromRule {
			t.Errorf("re-admission %s: not served from the synced rule", spec.Name)
		}
	}
	if got := reborn.stats.Get(farm.SeriesLearns); got != 0 {
		t.Errorf("reborn farm.learns = %d, want 0 — failover was not relearn-free", got)
	}
	t.Logf("warm-failover: reborn=%s rules=%d learns=%d pulled=%d join_syncs=%d readmissions=%d",
		victim, reborn.srv.Farm().Len(), reborn.stats.Get(farm.SeriesLearns),
		reborn.stats.Get(SeriesRulesPulled), reborn.stats.Get(SeriesJoinSyncs),
		frontStats.Get(cluster.SeriesReadmissions))
}

// victimIndex maps a node id ("n2") back to its address slot.
func victimIndex(id string) int {
	return int(id[len(id)-1] - '0')
}
