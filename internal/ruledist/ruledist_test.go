package ruledist

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"omini/internal/farm"
	"omini/internal/govern"
	"omini/internal/obs"
	"omini/internal/resilience"
	"omini/internal/rules"
	"omini/internal/serve"
	"omini/internal/tagtree"
)

func quietLogger() *obs.Logger {
	return obs.NewLogger(io.Discard, obs.LevelError)
}

func unlimitedGuard() *govern.Guard {
	return govern.NewGuard(context.Background(), govern.Unlimited())
}

// peerNode is a real serve.Server (the actual /rulesz wire surface)
// plus its farm and registry, stood up behind httptest.
type peerNode struct {
	srv   *serve.Server
	ts    *httptest.Server
	stats *resilience.Stats
}

func newPeerNode(t *testing.T) *peerNode {
	t.Helper()
	stats := resilience.NewStats()
	srv := serve.New(serve.Config{Stats: stats, Logger: quietLogger()})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return &peerNode{srv: srv, ts: ts, stats: stats}
}

func (p *peerNode) seed(site string, version int) {
	p.srv.Farm().Put(rules.Rule{
		Site:        site,
		SubtreePath: "html[1].body[1].ul[1]",
		Separator:   "li",
		LearnedAt:   time.Date(2026, 8, 5, 0, 0, 0, 0, time.UTC),
		Version:     version,
	}, tagtree.Signature{"html": 1, "html.body": 1})
}

// newLocal builds the pulling side: a bare farm plus a replicator
// aimed at the given peers.
func newLocal(t *testing.T, peers map[string]string, tune func(*Config)) (*farm.Farm, *Replicator, *resilience.Stats) {
	t.Helper()
	stats := resilience.NewStats()
	f, err := farm.New(farm.Config{Stats: stats, Logger: quietLogger()})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Self:     "self",
		Peers:    peers,
		Farm:     f,
		Interval: -1, // rounds are driven by the test
		Stats:    stats,
		Logger:   quietLogger(),
	}
	if tune != nil {
		tune(&cfg)
	}
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return f, r, stats
}

func TestNewRequiresFarm(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New accepted a nil farm")
	}
}

// TestSyncStampsTraceHeader: when the replicator runs under a traced
// context, every digest and pull request carries a well-formed
// X-Omini-Trace header, so the peer's /rulesz handler spans parent to
// the sync round instead of starting orphan traces.
func TestSyncStampsTraceHeader(t *testing.T) {
	peer := newPeerNode(t)
	peer.seed("a.example", 1)

	var mu sync.Mutex
	headers := make(map[string][]string) // view -> trace headers seen
	wrapped := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		view := r.URL.Query().Get("view")
		headers[view] = append(headers[view], r.Header.Get(obs.TraceHeader))
		mu.Unlock()
		peer.srv.ServeHTTP(w, r)
	}))
	defer wrapped.Close()

	f, r, _ := newLocal(t, map[string]string{"peer": wrapped.URL}, nil)
	ctx, _ := obs.WithTraceRecorder(context.Background(), false)
	if err := r.SyncAll(ctx); err != nil {
		t.Fatalf("SyncAll: %v", err)
	}
	if f.Len() != 1 {
		t.Fatalf("local farm has %d rules after sync, want 1", f.Len())
	}
	mu.Lock()
	for _, view := range []string{"digest", "sync"} {
		if len(headers[view]) == 0 {
			t.Fatalf("no %s request reached the peer", view)
		}
		for _, h := range headers[view] {
			if h == "" {
				t.Fatalf("%s request carried no %s header", view, obs.TraceHeader)
			}
			if sc, err := obs.ParseTraceHeader(h); err != nil || !sc.Valid() {
				t.Fatalf("%s request header %q does not parse as a span context: %v", view, h, err)
			}
		}
	}
	// Untraced contexts propagate nothing: no fabricated trace roots.
	headers = make(map[string][]string)
	mu.Unlock()

	peer.seed("b.example", 1)
	if err := r.SyncAll(context.Background()); err != nil {
		t.Fatalf("untraced SyncAll: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	for view, hs := range headers {
		for _, h := range hs {
			if h != "" {
				t.Fatalf("untraced %s request carried %s header %q, want none", view, obs.TraceHeader, h)
			}
		}
	}
}

// TestSyncPullsMissingRules: one round against a peer holding rules
// the local farm lacks pulls them all — without a single learn — and
// the next round against unchanged state is a 304.
func TestSyncPullsMissingRules(t *testing.T) {
	peer := newPeerNode(t)
	for _, site := range []string{"a.example", "b.example", "c.example"} {
		peer.seed(site, 2)
	}
	f, r, stats := newLocal(t, map[string]string{"peer": peer.ts.URL}, nil)

	if err := r.SyncAll(context.Background()); err != nil {
		t.Fatalf("SyncAll: %v", err)
	}
	if f.Len() != 3 {
		t.Fatalf("local farm has %d rules after sync, want 3", f.Len())
	}
	if got, ok := f.Get("b.example"); !ok || got.Version != 2 {
		t.Fatalf("pulled rule = %+v ok=%v, want v2", got, ok)
	}
	if got := stats.Get(farm.SeriesLearns); got != 0 {
		t.Fatalf("farm.learns = %d after replication, want 0", got)
	}
	if got := stats.Get(SeriesRulesPulled); got != 3 {
		t.Fatalf("ruledist.rules_pulled = %d, want 3", got)
	}

	// Converged: the second round answers from the etag.
	if err := r.SyncAll(context.Background()); err != nil {
		t.Fatalf("second SyncAll: %v", err)
	}
	if got := stats.Get(SeriesNotModified); got != 1 {
		t.Fatalf("ruledist.not_modified = %d, want 1", got)
	}
	if got := stats.Get(SeriesRulesPulled); got != 3 {
		t.Fatalf("converged round pulled more rules: %d", got)
	}

	// A peer-side change invalidates the etag and flows through.
	peer.seed("d.example", 1)
	if err := r.SyncAll(context.Background()); err != nil {
		t.Fatalf("third SyncAll: %v", err)
	}
	if f.Len() != 4 {
		t.Fatalf("local farm has %d rules after peer change, want 4", f.Len())
	}
}

// TestSyncIgnoresStaleVersions: the version conflict rule on the pull
// side — a peer behind the local farm contributes nothing.
func TestSyncIgnoresStaleVersions(t *testing.T) {
	peer := newPeerNode(t)
	peer.seed("shared.example", 3)
	f, r, _ := newLocal(t, map[string]string{"peer": peer.ts.URL}, nil)
	f.Put(rules.Rule{
		Site:        "shared.example",
		SubtreePath: "html[1].body[2].table[1]",
		Separator:   "tr",
		Version:     5,
	}, tagtree.Signature{"html": 1})

	if err := r.SyncAll(context.Background()); err != nil {
		t.Fatalf("SyncAll: %v", err)
	}
	got, _ := f.Get("shared.example")
	if got.Version != 5 || got.Separator != "tr" {
		t.Fatalf("local rule clobbered by stale peer: %+v", got)
	}
}

// TestTombstonePropagation: a peer's eviction kills the local copy and
// keeps a stale third party from resurrecting it.
func TestTombstonePropagation(t *testing.T) {
	peer := newPeerNode(t)
	peer.seed("dead.example", 4)
	peer.srv.Farm().Invalidate("dead.example")

	f, r, stats := newLocal(t, map[string]string{"peer": peer.ts.URL}, nil)
	// Local still holds the rule at the evicted version.
	f.Put(rules.Rule{
		Site:        "dead.example",
		SubtreePath: "html[1].body[1].ul[1]",
		Separator:   "li",
		Version:     4,
	}, tagtree.Signature{"html": 1})

	if err := r.SyncAll(context.Background()); err != nil {
		t.Fatalf("SyncAll: %v", err)
	}
	if _, ok := f.Get("dead.example"); ok {
		t.Fatal("local rule survived a propagated tombstone")
	}
	if got := stats.Get(SeriesTombstonesApplied); got != 1 {
		t.Fatalf("ruledist.tombstones_applied = %d, want 1", got)
	}
	// The tombstone is now local state: a stale peer cannot undo it.
	if f.ApplyRemote(farm.StoredRule{Rule: rules.Rule{
		Site: "dead.example", SubtreePath: "html[1]", Separator: "li", Version: 4,
	}}) {
		t.Fatal("stale rule resurrected after tombstone propagation")
	}
}

// TestCorruptTransferDiscarded: a peer that advertises rules but ships
// garbage gets its transfer discarded whole — the farm stays untouched
// and the corruption is counted.
func TestCorruptTransferDiscarded(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /rulesz", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("view") == "digest" {
			w.Header().Set("Content-Type", "application/json")
			_, _ = w.Write([]byte(`{"etag":"feedface00000000","rules":{"lie.example":3},"tombstones":{}}`))
			return
		}
		// A truncated snapshot: valid prefix, missing tail.
		_, _ = w.Write([]byte(`{"version":2,"rules":[{"site":"lie.example","subtr`))
	})
	liar := httptest.NewServer(mux)
	defer liar.Close()

	f, r, stats := newLocal(t, map[string]string{"liar": liar.URL}, func(c *Config) {
		c.PullAttempts = 1
	})
	if err := r.SyncAll(context.Background()); err == nil {
		t.Fatal("SyncAll accepted a corrupt transfer")
	}
	if f.Len() != 0 {
		t.Fatalf("corrupt transfer leaked %d rules into the farm", f.Len())
	}
	if got := stats.Get(SeriesCorruptDiscarded); got == 0 {
		t.Fatal("ruledist.corrupt_discarded = 0")
	}
	if got := stats.Get(SeriesPeerErrors); got != 1 {
		t.Fatalf("ruledist.peer_errors = %d, want 1", got)
	}
	// The etag was not cached: the next round retries the diff rather
	// than treating the failed pull as converged.
	if r.lastEtag("liar") != "" {
		t.Fatal("etag cached for a peer whose pull failed")
	}
}

// TestBreakerSkipsDeadPeer: after the failure threshold a dead peer
// costs one breaker check per round instead of a connection timeout,
// and the live peer still syncs.
func TestBreakerSkipsDeadPeer(t *testing.T) {
	live := newPeerNode(t)
	live.seed("ok.example", 1)
	dead := httptest.NewServer(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {}))
	dead.Close() // connection refused from here on

	f, r, stats := newLocal(t, map[string]string{"live": live.ts.URL, "dead": dead.URL},
		func(c *Config) {
			c.PullAttempts = 1
			c.Breaker = resilience.BreakerConfig{FailureThreshold: 1, Cooldown: time.Hour}
		})

	// Round 1 charges the dead peer's breaker; round 2 skips it.
	_ = r.SyncAll(context.Background())
	_ = r.SyncAll(context.Background())
	if got := stats.Get(SeriesBreakerSkips); got == 0 {
		t.Fatal("ruledist.skipped_breaker = 0; dead peer probed every round")
	}
	if f.Len() != 1 {
		t.Fatalf("live peer not synced around the dead one: %d rules", f.Len())
	}
	if got := stats.Get(SeriesRounds); got != 2 {
		t.Fatalf("ruledist.rounds = %d, want 2", got)
	}
}

// TestKickTriggersRound: Run serves a Kick (the readmission hook) with
// an immediate round even with the interval ticker disabled.
func TestKickTriggersRound(t *testing.T) {
	peer := newPeerNode(t)
	peer.seed("kicked.example", 1)
	f, r, _ := newLocal(t, map[string]string{"peer": peer.ts.URL}, nil)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { defer close(done); _ = r.Run(ctx) }()

	r.Kick()
	deadline := time.Now().Add(5 * time.Second)
	for f.Len() == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if f.Len() != 1 {
		t.Fatal("Kick did not trigger a sync round")
	}
	cancel()
	<-done
}

// TestSyncOnJoinBudget: a join sync against an unreachable peer ends
// inside the budget with an advisory error — the caller flips ready
// and the node degrades to learn-on-miss instead of blocking.
func TestSyncOnJoinBudget(t *testing.T) {
	hung := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done() // never answers
	}))
	defer hung.Close()

	_, r, stats := newLocal(t, map[string]string{"hung": hung.URL}, func(c *Config) {
		c.JoinBudget = 150 * time.Millisecond
		c.PullTimeout = time.Hour // the join budget, not the attempt timeout, must cut this
		c.PullAttempts = 1
	})
	start := time.Now()
	if err := r.SyncOnJoin(context.Background()); err == nil {
		t.Fatal("SyncOnJoin reported success against a hung peer")
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Fatalf("SyncOnJoin ran %v past its 150ms budget", took)
	}
	if got := stats.Get(SeriesJoinSyncs); got != 1 {
		t.Fatalf("ruledist.join_syncs = %d, want 1", got)
	}
}

// TestPeerOrderRingDistance: peers sort by clockwise ring distance
// from self, deterministically, and self is excluded.
func TestPeerOrderRingDistance(t *testing.T) {
	peers := map[string]string{
		"a": "http://a", "b": "http://b", "c": "http://c", "self": "http://self",
	}
	_, r, _ := newLocal(t, peers, nil)
	order := r.peerOrder(unlimitedGuard())
	if len(order) != 3 {
		t.Fatalf("peerOrder = %d peers, want 3 (self excluded)", len(order))
	}
	selfH := ringHash64("self")
	for i := 1; i < len(order); i++ {
		prev, cur := ringHash64(order[i-1].id)-selfH, ringHash64(order[i].id)-selfH
		if prev > cur {
			t.Fatalf("peerOrder not sorted by ring distance: %+v", order)
		}
	}
	again := r.peerOrder(unlimitedGuard())
	for i := range order {
		if order[i].id != again[i].id {
			t.Fatalf("peerOrder unstable: %+v vs %+v", order, again)
		}
	}
}
