// Package ruledist is the rule-replication layer that keeps the
// paper's Table 17 fast path warm across cluster topology changes.
// The farm treats a learned rule as a versioned, persistent artifact;
// this package treats it as a *shared* one: PCSI's observation that
// content-structure inference results should be distributed among
// peers rather than recomputed, applied to Omini's wrapper farm.
//
// The protocol is pull-based anti-entropy over the existing /rulesz
// endpoint. Each round, for every peer in ring order (clockwise
// FNV-64a distance from this node, so ring neighbors — the nodes that
// inherit or donate this node's shards on a topology change — come
// first):
//
//  1. GET /rulesz?view=digest with If-None-Match: the peer's per-site
//     rule and tombstone versions, or a 304 when nothing changed since
//     the last round (the steady-state cost of the whole protocol).
//  2. Diff against the local farm's version vector. Per site the
//     highest version wins, whether it lives in a rule or a tombstone;
//     nothing is wanted from a peer that is behind.
//  3. GET /rulesz?view=sync&sites=... for just the divergent sites.
//     The body is the farm's canonical snapshot codec — the same
//     format the rule store persists — so a truncated or corrupt
//     transfer fails decode and is discarded whole; nothing applies.
//  4. farm.ApplyRemote / farm.ApplyTombstone merge survivors under the
//     version conflict rule. Replicated rules never count as learns.
//
// Failure handling is the design center: every peer conversation goes
// through a per-peer resilience breaker (a dead peer costs one Allow
// check per round, not a timeout), each HTTP call retries with capped
// backoff, the join-time warm-up runs under a hard budget, and every
// degradation lands on the same fallback — learn-on-miss. Sync makes
// the fast path warm; it is never load-bearing for correctness.
package ruledist

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"

	"omini/internal/farm"
	"omini/internal/govern"
	"omini/internal/obs"
	"omini/internal/resilience"
)

// Config tunes a Replicator.
type Config struct {
	// Self is this node's id among Peers; it is skipped when syncing.
	Self string
	// Peers maps node ids to base URLs (the cluster -peers set).
	Peers map[string]string
	// Farm is the local wrapper farm state is merged into. Required.
	Farm *farm.Farm
	// Interval is the background anti-entropy period (default 30s;
	// negative disables the ticker — Run then only serves Kicks).
	Interval time.Duration
	// JoinBudget bounds SyncOnJoin: when it expires the node flips
	// ready anyway and degrades to learn-on-miss (default 15s).
	JoinBudget time.Duration
	// PullTimeout bounds each HTTP attempt against a peer (default 5s).
	PullTimeout time.Duration
	// MaxTransferBytes caps one digest or snapshot transfer; larger
	// responses are discarded as corrupt (default 64 MiB).
	MaxTransferBytes int64
	// PullAttempts, RetryBase and RetryMaxDelay tune the per-call retry
	// policy (defaults 2 attempts, 200ms base, 2s cap).
	PullAttempts  int
	RetryBase     time.Duration
	RetryMaxDelay time.Duration
	// Breaker tunes the per-peer circuit breakers.
	Breaker resilience.BreakerConfig
	// Stats receives the ruledist.* metrics; nil uses resilience.Default.
	Stats *resilience.Stats
	// Logger receives sync events; nil uses obs.DefaultLogger().
	Logger *obs.Logger
	// Client performs the peer HTTP calls; nil builds one.
	Client *http.Client
}

const (
	defaultInterval         = 30 * time.Second
	defaultJoinBudget       = 15 * time.Second
	defaultPullTimeout      = 5 * time.Second
	defaultMaxTransferBytes = 64 << 20
	defaultPullAttempts     = 2
	defaultRetryBase        = 200 * time.Millisecond
	defaultRetryMaxDelay    = 2 * time.Second
)

// Replicator keeps the local farm reconciled with its cluster peers.
// Create with New; Run drives the background anti-entropy loop;
// SyncOnJoin is the bounded warm-up a joining node runs before
// flipping /readyz.
type Replicator struct {
	cfg      Config
	farm     *farm.Farm
	client   *http.Client
	stats    *resilience.Stats
	log      *obs.Logger
	breakers *resilience.BreakerGroup
	retry    *resilience.RetryPolicy

	// kick requests an immediate round from Run (coalescing); the
	// coordinator's readmission callback feeds it.
	kick chan struct{}

	mu    sync.Mutex
	etags map[string]string // peer id → last fully-processed digest etag
}

// New returns a replicator for the given peer set.
func New(cfg Config) (*Replicator, error) {
	if cfg.Farm == nil {
		return nil, errors.New("ruledist: Config.Farm is required")
	}
	if cfg.Interval == 0 {
		cfg.Interval = defaultInterval
	}
	if cfg.JoinBudget <= 0 {
		cfg.JoinBudget = defaultJoinBudget
	}
	if cfg.PullTimeout <= 0 {
		cfg.PullTimeout = defaultPullTimeout
	}
	if cfg.MaxTransferBytes <= 0 {
		cfg.MaxTransferBytes = defaultMaxTransferBytes
	}
	if cfg.PullAttempts <= 0 {
		cfg.PullAttempts = defaultPullAttempts
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = defaultRetryBase
	}
	if cfg.RetryMaxDelay <= 0 {
		cfg.RetryMaxDelay = defaultRetryMaxDelay
	}
	if cfg.Stats == nil {
		cfg.Stats = resilience.Default
	}
	if cfg.Logger == nil {
		cfg.Logger = obs.DefaultLogger()
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{}
	}
	if cfg.Breaker.Stats == nil {
		cfg.Breaker.Stats = cfg.Stats
	}
	r := &Replicator{
		cfg:      cfg,
		farm:     cfg.Farm,
		client:   cfg.Client,
		stats:    cfg.Stats,
		log:      cfg.Logger,
		breakers: resilience.NewBreakerGroup(cfg.Breaker),
		retry: &resilience.RetryPolicy{
			MaxAttempts:    cfg.PullAttempts,
			BaseDelay:      cfg.RetryBase,
			MaxDelay:       cfg.RetryMaxDelay,
			AttemptTimeout: cfg.PullTimeout,
			Stats:          cfg.Stats,
		},
		kick:  make(chan struct{}, 1),
		etags: make(map[string]string),
	}
	r.registerMetrics()
	return r, nil
}

// Run drives the background anti-entropy loop until ctx is cancelled:
// one SyncAll round per Interval tick, plus an immediate round per
// Kick (ring readmission). The loop is deliberately low-rate — the
// digest 304 makes steady-state rounds nearly free, and divergence is
// bounded by one Interval.
func (r *Replicator) Run(ctx context.Context) error {
	interval := r.cfg.Interval
	if interval <= 0 {
		interval = time.Duration(1<<62 - 1) // ticker disabled; kicks still served
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	g := govern.NewGuard(ctx, govern.Unlimited())
	for {
		if err := g.Poll(); err != nil {
			return err
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-r.kick:
			_ = r.SyncAll(ctx)
		case <-ticker.C:
			_ = r.SyncAll(ctx)
		}
	}
}

// Kick requests an immediate sync round from Run. Non-blocking and
// coalescing: a kick during a round schedules exactly one more.
func (r *Replicator) Kick() {
	select {
	case r.kick <- struct{}{}:
	default:
	}
}

// SyncOnJoin runs one bounded warm-up round — the "pull your shards
// before taking traffic" step a node runs on admission or re-admission,
// before the caller flips /readyz. The budget is a hard cap: however
// the round ends, the caller marks the node ready and any sites still
// missing degrade to learn-on-miss. The returned error reports what
// was left incomplete; it is advisory, never fatal.
func (r *Replicator) SyncOnJoin(ctx context.Context) error {
	r.stats.Add(SeriesJoinSyncs, 1)
	jctx, cancel := context.WithTimeout(ctx, r.cfg.JoinBudget)
	defer cancel()
	start := time.Now()
	err := r.SyncAll(jctx)
	if err != nil {
		r.log.Warn("ruledist: join sync incomplete; degrading to learn-on-miss",
			"after", time.Since(start).String(), "err", err.Error())
		return err
	}
	r.log.Info("ruledist: join sync complete",
		"after", time.Since(start).String(), "rules", r.farm.Len())
	return nil
}

// SyncAll runs one anti-entropy round: every peer in ring order, a
// digest poll each, a filtered snapshot pull only where versions
// diverge. Peer failures are counted, logged and skipped — one slow
// or dead peer never blocks reconciling with the rest — and the first
// error is returned for the caller's log.
func (r *Replicator) SyncAll(ctx context.Context) error {
	ctx = obs.WithRegistry(ctx, r.stats)
	g := govern.NewGuard(ctx, govern.Unlimited())
	var firstErr error
	for _, p := range r.peerOrder(g) {
		if err := g.Poll(); err != nil {
			return err
		}
		if err := r.syncPeer(ctx, g, p.id, p.url); err != nil {
			r.stats.Add(SeriesPeerErrors, 1)
			r.log.Warn("ruledist: peer sync failed", "peer", p.id, "err", err.Error())
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		r.stats.Add(SeriesPeerSyncs, 1)
	}
	r.stats.Add(SeriesRounds, 1)
	return firstErr
}

// digest mirrors the /rulesz?view=digest payload: the peer's per-site
// rule and tombstone versions plus the etag identifying the whole set.
type digest struct {
	Etag       string         `json:"etag"`
	Rules      map[string]int `json:"rules"`
	Tombstones map[string]int `json:"tombstones"`
}

// syncPeer reconciles with one peer under its breaker: digest poll,
// version diff, filtered pull, merge. The etag is cached only after a
// round fully applies, so a failed pull retries the diff next round.
func (r *Replicator) syncPeer(ctx context.Context, g *govern.Guard, id, base string) error {
	sctx, sp := obs.StartSpan(ctx, "ruledist.sync")
	defer sp.End()
	br := r.breakers.For(id)
	if !br.Allow() {
		r.stats.Add(SeriesBreakerSkips, 1)
		return fmt.Errorf("ruledist: peer %s: breaker open", id)
	}
	d, notMod, err := r.fetchDigest(sctx, id, base)
	if err != nil {
		br.Failure()
		return err
	}
	if notMod {
		br.Success()
		r.stats.Add(SeriesNotModified, 1)
		return nil
	}
	wants := r.wantSites(g, d)
	if len(wants) == 0 {
		br.Success()
		r.setEtag(id, d.Etag)
		return nil
	}
	snap, err := r.pull(sctx, id, base, wants)
	if err != nil {
		br.Failure()
		return err
	}
	nrules, ntombs := r.apply(g, snap)
	br.Success()
	r.setEtag(id, d.Etag)
	r.log.Info("ruledist: peer sync applied",
		"peer", id, "wanted", len(wants), "rules", nrules, "tombstones", ntombs)
	return nil
}

// wantSites diffs a peer digest against the local farm: a site is
// wanted when the peer's rule is strictly newer than both the local
// rule and any local tombstone, or when the peer's tombstone would
// kill the local copy. Sorted, so transfers are deterministic.
func (r *Replicator) wantSites(g *govern.Guard, d digest) []string {
	localRules, localTombs := r.farm.VersionVector()
	want := make(map[string]bool, len(d.Rules))
	for site, v := range d.Rules {
		if g.Poll() != nil {
			break
		}
		if v > localRules[site] && v > localTombs[site] {
			want[site] = true
		}
	}
	for site, v := range d.Tombstones {
		if g.Poll() != nil {
			break
		}
		if v > localTombs[site] && v >= localRules[site] {
			want[site] = true
		}
	}
	out := make([]string, 0, len(want))
	for site := range want {
		if g.Poll() != nil {
			break
		}
		out = append(out, site)
	}
	sort.Strings(out)
	return out
}

// fetchDigest polls one peer's version digest, honoring the cached
// etag (notMod reports a 304).
func (r *Replicator) fetchDigest(ctx context.Context, id, base string) (d digest, notMod bool, err error) {
	err = r.retry.Do(ctx, func(actx context.Context) error {
		req, rerr := http.NewRequestWithContext(actx, http.MethodGet, base+"/rulesz?view=digest", nil)
		if rerr != nil {
			return resilience.Permanent(fmt.Errorf("ruledist: digest %s: %w", id, rerr))
		}
		if etag := r.lastEtag(id); etag != "" {
			req.Header.Set("If-None-Match", `"`+etag+`"`)
		}
		if sc := obs.SpanContextFrom(actx); sc.Valid() {
			req.Header.Set(obs.TraceHeader, sc.Header())
		}
		resp, rerr := r.client.Do(req)
		if rerr != nil {
			return fmt.Errorf("ruledist: digest %s: %w", id, rerr)
		}
		defer func() {
			_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
			_ = resp.Body.Close()
		}()
		switch resp.StatusCode {
		case http.StatusNotModified:
			notMod = true
			return nil
		case http.StatusOK:
		default:
			return fmt.Errorf("ruledist: digest %s: status %d", id, resp.StatusCode)
		}
		body, rerr := io.ReadAll(io.LimitReader(resp.Body, r.cfg.MaxTransferBytes+1))
		if rerr != nil {
			return fmt.Errorf("ruledist: digest %s: read: %w", id, rerr)
		}
		if int64(len(body)) > r.cfg.MaxTransferBytes {
			r.stats.Add(SeriesCorruptDiscarded, 1)
			return resilience.Permanent(fmt.Errorf("ruledist: digest %s: response exceeds %d bytes", id, r.cfg.MaxTransferBytes))
		}
		var parsed digest
		if uerr := json.Unmarshal(body, &parsed); uerr != nil {
			r.stats.Add(SeriesCorruptDiscarded, 1)
			return fmt.Errorf("ruledist: digest %s: decode: %w", id, uerr)
		}
		d = parsed
		return nil
	})
	return d, notMod, err
}

// pull fetches the filtered snapshot for the wanted sites. The farm's
// snapshot codec is the corruption firewall: a truncated, garbled or
// too-new body fails DecodeSnapshot and the whole transfer is
// discarded — partial state never applies.
func (r *Replicator) pull(ctx context.Context, id, base string, sites []string) (farm.Snapshot, error) {
	pctx, sp := obs.StartSpan(ctx, "ruledist.pull")
	defer sp.End()
	var snap farm.Snapshot
	q := url.Values{"view": {"sync"}, "sites": {strings.Join(sites, ",")}}
	err := r.retry.Do(pctx, func(actx context.Context) error {
		req, rerr := http.NewRequestWithContext(actx, http.MethodGet, base+"/rulesz?"+q.Encode(), nil)
		if rerr != nil {
			return resilience.Permanent(fmt.Errorf("ruledist: pull %s: %w", id, rerr))
		}
		if sc := obs.SpanContextFrom(actx); sc.Valid() {
			req.Header.Set(obs.TraceHeader, sc.Header())
		}
		resp, rerr := r.client.Do(req)
		if rerr != nil {
			return fmt.Errorf("ruledist: pull %s: %w", id, rerr)
		}
		defer func() {
			_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
			_ = resp.Body.Close()
		}()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("ruledist: pull %s: status %d", id, resp.StatusCode)
		}
		body, rerr := io.ReadAll(io.LimitReader(resp.Body, r.cfg.MaxTransferBytes+1))
		if rerr != nil {
			return fmt.Errorf("ruledist: pull %s: read: %w", id, rerr)
		}
		if int64(len(body)) > r.cfg.MaxTransferBytes {
			r.stats.Add(SeriesCorruptDiscarded, 1)
			return resilience.Permanent(fmt.Errorf("ruledist: pull %s: transfer exceeds %d bytes", id, r.cfg.MaxTransferBytes))
		}
		s, derr := farm.DecodeSnapshot(body)
		if derr != nil {
			r.stats.Add(SeriesCorruptDiscarded, 1)
			return fmt.Errorf("ruledist: pull %s: discarded: %w", id, derr)
		}
		snap = s
		return nil
	})
	return snap, err
}

// apply merges a decoded peer snapshot into the farm under the version
// conflict rule. Tombstones first: a site whose rule and tombstone
// both traveled must see the eviction before the (then necessarily
// newer) rule.
func (r *Replicator) apply(g *govern.Guard, snap farm.Snapshot) (nrules, ntombs int) {
	for _, t := range snap.Tombstones {
		if g.Poll() != nil {
			break
		}
		if r.farm.ApplyTombstone(t) {
			ntombs++
			r.stats.Add(SeriesTombstonesApplied, 1)
		}
	}
	for _, sr := range snap.Rules {
		if g.Poll() != nil {
			break
		}
		if r.farm.ApplyRemote(sr) {
			nrules++
			r.stats.Add(SeriesRulesPulled, 1)
		} else {
			r.stats.Add(SeriesStaleIgnored, 1)
		}
	}
	return nrules, ntombs
}

// peer is one sync target with its clockwise ring distance from self.
type peer struct {
	id   string
	url  string
	dist uint64
}

// peerOrder sorts the peers by clockwise FNV-64a ring distance from
// this node, so the first pulls hit the ring neighbors that donate or
// inherit this node's shards when the topology changes — the sites a
// joining node is about to own arrive before the long tail.
func (r *Replicator) peerOrder(g *govern.Guard) []peer {
	selfH := ringHash64(r.cfg.Self)
	out := make([]peer, 0, len(r.cfg.Peers))
	for id, u := range r.cfg.Peers {
		if g.Poll() != nil {
			break
		}
		if id == r.cfg.Self {
			continue
		}
		out = append(out, peer{id: id, url: strings.TrimRight(u, "/"), dist: ringHash64(id) - selfH})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].dist != out[j].dist {
			return out[i].dist < out[j].dist
		}
		return out[i].id < out[j].id
	})
	return out
}

// ringHash64 hashes a node id onto the distance ring (FNV-1a, like the
// cluster's routing ring); uint64 wraparound makes subtraction the
// clockwise distance.
func ringHash64(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return h.Sum64()
}

// lastEtag returns the peer's last fully-processed digest etag.
func (r *Replicator) lastEtag(id string) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.etags[id]
}

// setEtag caches a peer's digest etag once its round fully applied.
func (r *Replicator) setEtag(id, etag string) {
	if etag == "" {
		return
	}
	r.mu.Lock()
	r.etags[id] = etag
	r.mu.Unlock()
}
