package corpus

import (
	"omini/internal/sitegen"
)

// BenchSizes are the page sizes the pipeline benchmarks sweep. The item
// counts bracket the paper's corpus: a short result list, a typical search
// page, and a heavy catalog dump.
var BenchSizes = []string{"small", "medium", "large"}

// benchItems maps a bench size to its fixed per-page object count.
var benchItems = map[string]int{
	"small":  6,
	"medium": 40,
	"large":  200,
}

// BenchPage deterministically generates the benchmark page of the given
// size ("small", "medium" or "large"). The pages share one chrome-heavy
// row-table site spec so phase costs scale only with the object count;
// benchmarks and regression tooling both key off these exact pages.
func BenchPage(size string) sitegen.Page {
	items, ok := benchItems[size]
	if !ok {
		panic("corpus: unknown bench size " + size)
	}
	spec := sitegen.SiteSpec{
		Name:       "bench-" + size + ".example",
		Domain:     sitegen.DomainBooks,
		LayoutName: "row-table",
		Chrome: sitegen.ChromeSpec{
			Banner:       true,
			NavLinks:     25,
			SidebarLinks: 12,
			FooterLinks:  8,
			SearchForm:   true,
		},
		Noise: sitegen.NoiseSpec{
			InterItemBreaks: true,
			AdEvery:         6,
			HrDecorEvery:    5,
		},
		MinItems: items,
		MaxItems: items,
	}
	return spec.Page(0)
}
