// Package corpus defines the evaluation corpus: the synthetic counterparts
// of the paper's three site collections — the 15-site test set of Table 9
// (training the combination probabilities), the 25-site experimental set of
// Table 12 (validation), and the 5-site comparison set of Table 18 (where
// the BYU heuristics fail) — with page counts patterned on Table 23.
//
// Site names mirror the paper's lists under the .example TLD. Each site is
// assigned a layout family, chrome and noise profile chosen so the corpus
// exercises the same failure modes the paper reports: navigation menus that
// defeat the highest-fanout subtree heuristic, in-region sponsor tables
// that push the IPS heuristic to rank 2, high-count <br> runs that defeat
// counting heuristics, intro paragraphs that mislead the BYU fixed tag
// list, and inconsistent item openings that starve the repeating-pattern
// heuristic.
package corpus

import (
	"omini/internal/sitegen"
)

// PagesPerTestSite and friends size the corpus like the paper's: 500 pages
// over 15 test sites, 1,500 pages over 25 experimental sites.
const (
	PagesPerTestSite         = 33
	PagesPerExperimentalSite = 60
	PagesPerComparisonSite   = 40
)

// testSpecs returns the 15 test sites (Table 9 analogues).
func testSpecs() []sitegen.SiteSpec {
	return []sitegen.SiteSpec{
		{
			Name: "agents.umbc.example", Domain: sitegen.DomainSearch,
			LayoutName: "ul-record", MinItems: 5, MaxItems: 18,
		},
		{
			Name: "www.alphabetstreet.example", Domain: sitegen.DomainBooks,
			LayoutName: "row-table",
			Chrome:     sitegen.ChromeSpec{Banner: true, NavLinks: 30},
			Noise:      sitegen.NoiseSpec{UncloseTags: true},
			MinItems:   6, MaxItems: 25,
		},
		{
			Name: "www.alphaworks.example", Domain: sitegen.DomainProducts,
			LayoutName: "dl-record",
			Chrome:     sitegen.ChromeSpec{SidebarLinks: 18},
			Noise:      sitegen.NoiseSpec{UpperTags: true, VarySizes: true, HrDecorEvery: 5, CenterDividerEvery: 2},
			MinItems:   5, MaxItems: 20,
		},
		{
			Name: "www.amazon.example", Domain: sitegen.DomainBooks,
			LayoutName: "item-table",
			Chrome:     sitegen.ChromeSpec{Banner: true, NavLinks: 25, SearchForm: true},
			Noise:      sitegen.NoiseSpec{InlineHeader: true, AdEvery: 6},
			MinItems:   8, MaxItems: 25,
		},
		{
			Name: "www.aw.example", Domain: sitegen.DomainBooks,
			LayoutName: "row-table",
			Chrome:     sitegen.ChromeSpec{FooterLinks: 8},
			Noise:      sitegen.NoiseSpec{UnquotedAttrs: true},
			// Pages can return as few as two results: below the IPS/RP
			// occurrence thresholds, some heuristics decline to answer,
			// which is what separates precision from recall (Section 6.5).
			MinItems: 2, MaxItems: 15,
		},
		// Comparison site (Table 18): intro paragraphs, heavy break runs,
		// inconsistent item openings, alternating item sizes.
		{
			Name: "www.bookpool.example", Domain: sitegen.DomainBooks,
			LayoutName: "para-record",
			Chrome:     sitegen.ChromeSpec{NavLinks: 20},
			Noise: sitegen.NoiseSpec{
				HeavyBreaks: true, HeaderStyleP: true, PlainTitles: true,
				VarySizes: true, InlineHeader: true, CenterDividerEvery: 2,
			},
			MinItems: 8, MaxItems: 22,
		},
		{
			Name: "cbc.example", Domain: sitegen.DomainNews,
			LayoutName: "item-table",
			Chrome:     sitegen.ChromeSpec{Banner: true, NavLinks: 35},
			Noise:      sitegen.NoiseSpec{HeavyBreaks: true},
			MinItems:   6, MaxItems: 18,
		},
		{
			Name: "www.chapters.example", Domain: sitegen.DomainBooks,
			LayoutName: "row-table",
			Chrome:     sitegen.ChromeSpec{Banner: true, SidebarLinks: 15, FooterLinks: 6},
			Noise:      sitegen.NoiseSpec{UncloseTags: true, UnquotedAttrs: true},
			MinItems:   6, MaxItems: 22,
		},
		// Search engines rendered as paragraphs in a bare div with sponsor
		// tables: the correct separator lands at IPS rank 2.
		{
			Name: "www.google.example", Domain: sitegen.DomainSearch,
			LayoutName: "para-div",
			Chrome:     sitegen.ChromeSpec{FooterLinks: 5},
			Noise:      sitegen.NoiseSpec{InlineHeader: true, InlineFooter: true, AdEvery: 3},
			MinItems:   10, MaxItems: 20,
		},
		{
			Name: "www.hotbot.example", Domain: sitegen.DomainSearch,
			LayoutName: "para-div",
			Chrome:     sitegen.ChromeSpec{Banner: true, NavLinks: 40},
			Noise:      sitegen.NoiseSpec{InlineHeader: true, HeaderStyleP: true, AdEvery: 3},
			MinItems:   10, MaxItems: 20,
		},
		{
			Name: "www.ibmdeveloper.example", Domain: sitegen.DomainProducts,
			LayoutName: "dl-record",
			Chrome:     sitegen.ChromeSpec{Banner: true, NavLinks: 22},
			Noise:      sitegen.NoiseSpec{VarySizes: true, HrDecorEvery: 4, CenterDividerEvery: 2},
			MinItems:   5, MaxItems: 16,
		},
		{
			Name: "www.kingbooks.example", Domain: sitegen.DomainBooks,
			LayoutName: "font-catalog",
			Chrome:     sitegen.ChromeSpec{Banner: true, SidebarLinks: 12},
			Noise:      sitegen.NoiseSpec{InlineHeader: true, AdEvery: 5},
			MinItems:   6, MaxItems: 18,
		},
		{
			Name: "www.loc.example", Domain: sitegen.DomainBooks,
			LayoutName: "hr-record",
			Chrome:     sitegen.ChromeSpec{SearchForm: true, FooterLinks: 3},
			Noise:      sitegen.NoiseSpec{InlineHeader: true, InlineFooter: true},
			MinItems:   10, MaxItems: 20,
		},
		{
			Name: "www.rubylane.example", Domain: sitegen.DomainAuctions,
			LayoutName: "div-card",
			Chrome:     sitegen.ChromeSpec{Banner: true, NavLinks: 18},
			Noise:      sitegen.NoiseSpec{DoubleBreaks: true, InlineHeader: true, AdEvery: 6},
			MinItems:   6, MaxItems: 20,
		},
		// Comparison site (Table 18).
		{
			Name: "www.signpost.example", Domain: sitegen.DomainSearch,
			LayoutName: "div-card",
			Chrome:     sitegen.ChromeSpec{NavLinks: 15},
			Noise: sitegen.NoiseSpec{
				HeavyBreaks: true, HeaderStyleP: true,
				InlineHeader: true, InlineFooter: true,
			},
			MinItems: 6, MaxItems: 18,
		},
	}
}

// experimentalSpecs returns the 25 experimental sites (Table 12 analogues).
// The mix leans cleaner than the test set, as the paper's per-heuristic
// success rates do (Table 13 vs Table 10).
func experimentalSpecs() []sitegen.SiteSpec {
	return []sitegen.SiteSpec{
		{
			Name: "www.amazon2.example", Domain: sitegen.DomainBooks,
			LayoutName: "item-table",
			Chrome:     sitegen.ChromeSpec{Banner: true, NavLinks: 25, SearchForm: true},
			Noise:      sitegen.NoiseSpec{InlineHeader: true},
			MinItems:   8, MaxItems: 25,
		},
		{
			Name: "zshops.amazon.example", Domain: sitegen.DomainProducts,
			LayoutName: "row-table",
			Chrome:     sitegen.ChromeSpec{Banner: true, NavLinks: 20},
			MinItems:   6, MaxItems: 25,
		},
		{
			Name: "www.bn.example", Domain: sitegen.DomainBooks,
			LayoutName: "row-table",
			Chrome:     sitegen.ChromeSpec{Banner: true, SidebarLinks: 14},
			Noise:      sitegen.NoiseSpec{UncloseTags: true},
			MinItems:   8, MaxItems: 25,
		},
		{
			Name: "www.bookbuyer.example", Domain: sitegen.DomainBooks,
			LayoutName: "dl-record",
			Chrome:     sitegen.ChromeSpec{FooterLinks: 6},
			// Small result pages (see www.aw.example).
			MinItems: 2, MaxItems: 20,
		},
		{
			Name: "www.borders.example", Domain: sitegen.DomainBooks,
			LayoutName: "item-table",
			Chrome:     sitegen.ChromeSpec{Banner: true, NavLinks: 18},
			Noise:      sitegen.NoiseSpec{InlineHeader: true, UncloseTags: true},
			MinItems:   6, MaxItems: 20,
		},
		{
			Name: "www.canoe.example", Domain: sitegen.DomainNews,
			LayoutName: "item-table",
			Chrome:     sitegen.ChromeSpec{Banner: true, NavLinks: 20, SearchForm: true},
			MinItems:   8, MaxItems: 15,
		},
		{
			Name: "www.codysbooks.example", Domain: sitegen.DomainBooks,
			LayoutName: "ul-record",
			Chrome:     sitegen.ChromeSpec{Banner: true},
			Noise:      sitegen.NoiseSpec{HrDecorEvery: 5},
			MinItems:   5, MaxItems: 20,
		},
		// Comparison site (Table 18).
		{
			Name: "www.ebay.example", Domain: sitegen.DomainAuctions,
			LayoutName: "item-table",
			Chrome:     sitegen.ChromeSpec{Banner: true, NavLinks: 28},
			Noise: sitegen.NoiseSpec{
				HeavyBreaks: true, HeaderStyleP: true, VarySizes: true,
				InlineHeader: true, AdEvery: 4, CenterDividerEvery: 2,
			},
			MinItems: 8, MaxItems: 25,
		},
		{
			Name: "www.etoys.example", Domain: sitegen.DomainProducts,
			LayoutName: "div-card",
			Chrome:     sitegen.ChromeSpec{Banner: true, NavLinks: 16},
			Noise:      sitegen.NoiseSpec{InlineHeader: true},
			MinItems:   6, MaxItems: 18,
		},
		{
			Name: "www.excite.example", Domain: sitegen.DomainSearch,
			LayoutName: "para-record",
			Chrome:     sitegen.ChromeSpec{Banner: true, NavLinks: 30},
			Noise:      sitegen.NoiseSpec{InlineHeader: true, InlineFooter: true},
			MinItems:   10, MaxItems: 20,
		},
		{
			Name: "www.fatbrain.example", Domain: sitegen.DomainBooks,
			LayoutName: "row-table",
			Chrome:     sitegen.ChromeSpec{SearchForm: true},
			MinItems:   5, MaxItems: 22,
		},
		{
			Name: "www.gamecenter.example", Domain: sitegen.DomainProducts,
			LayoutName: "item-table",
			Chrome:     sitegen.ChromeSpec{Banner: true, NavLinks: 24},
			Noise:      sitegen.NoiseSpec{InterItemBreaks: true},
			MinItems:   5, MaxItems: 15,
		},
		{
			Name: "www.gamelan.example", Domain: sitegen.DomainProducts,
			LayoutName: "ul-record",
			Chrome:     sitegen.ChromeSpec{SidebarLinks: 12},
			Noise:      sitegen.NoiseSpec{UncloseTags: true, HrDecorEvery: 6},
			MinItems:   6, MaxItems: 20,
		},
		// Comparison site (Table 18).
		{
			Name: "www.goto.example", Domain: sitegen.DomainSearch,
			LayoutName: "div-card",
			Chrome:     sitegen.ChromeSpec{NavLinks: 12},
			Noise: sitegen.NoiseSpec{
				HeavyBreaks: true, HeaderStyleP: true, PlainTitles: true,
				VarySizes: true, InlineHeader: true, CenterDividerEvery: 2,
			},
			MinItems: 8, MaxItems: 20,
		},
		{
			Name: "www.ibm.example", Domain: sitegen.DomainProducts,
			LayoutName: "row-table",
			Chrome:     sitegen.ChromeSpec{Banner: true, NavLinks: 26, FooterLinks: 10},
			MinItems:   5, MaxItems: 18,
		},
		{
			Name: "xml.ibm.example", Domain: sitegen.DomainProducts,
			LayoutName: "dl-record",
			Chrome:     sitegen.ChromeSpec{Banner: true, SidebarLinks: 16},
			Noise:      sitegen.NoiseSpec{UpperTags: true},
			MinItems:   5, MaxItems: 16,
		},
		{
			Name: "auctions.msn.example", Domain: sitegen.DomainAuctions,
			LayoutName: "row-table",
			Chrome:     sitegen.ChromeSpec{Banner: true, NavLinks: 22},
			Noise:      sitegen.NoiseSpec{UncloseTags: true, UnquotedAttrs: true},
			MinItems:   8, MaxItems: 25,
		},
		// Comparison site (Table 18).
		{
			Name: "www.powells.example", Domain: sitegen.DomainBooks,
			LayoutName: "ul-record",
			Chrome:     sitegen.ChromeSpec{Banner: true, NavLinks: 14},
			Noise: sitegen.NoiseSpec{
				HeavyBreaks: true, HeaderStyleP: true, InlineHeader: true,
			},
			MinItems: 6, MaxItems: 22,
		},
		{
			Name: "www.quote.example", Domain: sitegen.DomainQuotes,
			LayoutName: "row-table",
			Chrome:     sitegen.ChromeSpec{SearchForm: true},
			MinItems:   8, MaxItems: 30,
		},
		{
			Name: "www.thestar.example", Domain: sitegen.DomainNews,
			LayoutName: "hr-record",
			Chrome:     sitegen.ChromeSpec{Banner: true, FooterLinks: 4},
			Noise:      sitegen.NoiseSpec{InlineHeader: true},
			MinItems:   6, MaxItems: 16,
		},
		{
			Name: "www.vancouversun.example", Domain: sitegen.DomainNews,
			LayoutName: "item-table",
			Chrome:     sitegen.ChromeSpec{Banner: true, NavLinks: 20},
			Noise:      sitegen.NoiseSpec{InlineHeader: true},
			MinItems:   5, MaxItems: 15,
		},
		{
			Name: "www.vnunet.example", Domain: sitegen.DomainNews,
			LayoutName: "para-div",
			Chrome:     sitegen.ChromeSpec{Banner: true, NavLinks: 18},
			Noise:      sitegen.NoiseSpec{InlineHeader: true, AdEvery: 5},
			MinItems:   8, MaxItems: 18,
		},
		{
			Name: "www.wine.example", Domain: sitegen.DomainProducts,
			LayoutName: "font-catalog",
			Chrome:     sitegen.ChromeSpec{Banner: true, SidebarLinks: 10},
			Noise:      sitegen.NoiseSpec{InlineHeader: true},
			MinItems:   5, MaxItems: 15,
		},
		{
			Name: "www.yahoo.example", Domain: sitegen.DomainSearch,
			LayoutName: "ul-record",
			Chrome:     sitegen.ChromeSpec{Banner: true, NavLinks: 32},
			Noise:      sitegen.NoiseSpec{InlineHeader: true},
			MinItems:   10, MaxItems: 20,
		},
		{
			Name: "auctions.yahoo.example", Domain: sitegen.DomainAuctions,
			LayoutName: "row-table",
			Chrome:     sitegen.ChromeSpec{Banner: true, NavLinks: 24},
			MinItems:   8, MaxItems: 28,
		},
	}
}

// comparisonSiteNames are the five Table 18 analogues, drawn from the two
// sets above.
var comparisonSiteNames = []string{
	"www.bookpool.example",
	"www.ebay.example",
	"www.goto.example",
	"www.powells.example",
	"www.signpost.example",
}
