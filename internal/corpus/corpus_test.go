package corpus

import (
	"testing"

	"omini/internal/tagtree"
)

func TestSetSizes(t *testing.T) {
	c := &Corpus{PagesPerSite: 3}
	if got := len(c.TestSet()); got != 15 {
		t.Errorf("test set has %d sites, want 15 (Table 9)", got)
	}
	if got := len(c.ExperimentalSet()); got != 25 {
		t.Errorf("experimental set has %d sites, want 25 (Table 12)", got)
	}
	if got := len(c.ComparisonSet()); got != 5 {
		t.Errorf("comparison set has %d sites, want 5 (Table 18)", got)
	}
	for _, sp := range c.TestSet() {
		if len(sp.Pages) != 3 {
			t.Errorf("site %s has %d pages, want 3", sp.Spec.Name, len(sp.Pages))
		}
	}
}

func TestDefaultSizesMatchPaper(t *testing.T) {
	if PagesPerTestSite*15 < 495 {
		t.Error("test corpus smaller than the paper's 500 pages")
	}
	if PagesPerExperimentalSite*25 != 1500 {
		t.Error("experimental corpus is not 1,500 pages")
	}
}

func TestComparisonSitesAreSubset(t *testing.T) {
	names := make(map[string]bool)
	for _, s := range AllSpecs() {
		names[s.Name] = true
	}
	c := &Corpus{PagesPerSite: 1}
	for _, sp := range c.ComparisonSet() {
		if !names[sp.Spec.Name] {
			t.Errorf("comparison site %s not in the main sets", sp.Spec.Name)
		}
	}
}

func TestSiteNamesUnique(t *testing.T) {
	seen := make(map[string]bool)
	for _, s := range AllSpecs() {
		if seen[s.Name] {
			t.Errorf("duplicate site name %q", s.Name)
		}
		seen[s.Name] = true
	}
}

func TestEveryPageHasResolvableTruth(t *testing.T) {
	c := &Corpus{PagesPerSite: 4}
	sets := append(c.TestSet(), c.ExperimentalSet()...)
	for _, sp := range sets {
		for _, page := range sp.Pages {
			root, err := tagtree.Parse(page.HTML)
			if err != nil {
				t.Fatalf("%s: parse: %v", page.Name, err)
			}
			sub := tagtree.FindPath(root, page.Truth.SubtreePath)
			if sub == nil {
				t.Errorf("%s: truth path %q unresolvable", page.Name, page.Truth.SubtreePath)
				continue
			}
			if page.Truth.ObjectCount < 2 {
				t.Errorf("%s: only %d objects", page.Name, page.Truth.ObjectCount)
			}
		}
	}
}

func TestCorpusCaching(t *testing.T) {
	c := &Corpus{PagesPerSite: 2}
	a := c.TestSet()
	b := c.TestSet()
	if &a[0] != &b[0] {
		t.Error("TestSet not cached between calls")
	}
}

func TestLayoutDiversity(t *testing.T) {
	layouts := make(map[string]int)
	for _, s := range AllSpecs() {
		layouts[s.LayoutName]++
	}
	if len(layouts) < 8 {
		t.Errorf("only %d layout families used across the corpus: %v", len(layouts), layouts)
	}
}
