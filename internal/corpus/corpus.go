package corpus

import (
	"sync"

	"omini/internal/sitegen"
)

// SitePages is one site of the corpus together with its generated pages.
type SitePages struct {
	// Spec is the site definition.
	Spec sitegen.SiteSpec
	// Pages are the site's generated pages with ground truth.
	Pages []sitegen.Page
}

// Corpus materializes the three page collections lazily and caches them:
// generation is deterministic, so caching only saves time. The zero value
// is ready to use.
type Corpus struct {
	onceTest, onceExp, onceCmp sync.Once
	test, exp, cmp             []SitePages

	// PagesPerSite overrides the default per-site page counts when > 0
	// (tests use small corpora; benchmarks use the paper-sized ones).
	PagesPerSite int
}

func (c *Corpus) pagesFor(defaultCount int) int {
	if c.PagesPerSite > 0 {
		return c.PagesPerSite
	}
	return defaultCount
}

// TestSet returns the 15-site test collection (≈500 pages at default size).
func (c *Corpus) TestSet() []SitePages {
	c.onceTest.Do(func() {
		c.test = realize(testSpecs(), c.pagesFor(PagesPerTestSite))
	})
	return c.test
}

// ExperimentalSet returns the 25-site experimental collection (≈1,500 pages
// at default size).
func (c *Corpus) ExperimentalSet() []SitePages {
	c.onceExp.Do(func() {
		c.exp = realize(experimentalSpecs(), c.pagesFor(PagesPerExperimentalSite))
	})
	return c.exp
}

// ComparisonSet returns the 5-site Table 18 collection.
func (c *Corpus) ComparisonSet() []SitePages {
	c.onceCmp.Do(func() {
		specs := make([]sitegen.SiteSpec, 0, len(comparisonSiteNames))
		all := append(testSpecs(), experimentalSpecs()...)
		for _, name := range comparisonSiteNames {
			for _, s := range all {
				if s.Name == name {
					specs = append(specs, s)
					break
				}
			}
		}
		c.cmp = realize(specs, c.pagesFor(PagesPerComparisonSite))
	})
	return c.cmp
}

// AllSpecs returns every site definition of both main sets.
func AllSpecs() []sitegen.SiteSpec {
	return append(testSpecs(), experimentalSpecs()...)
}

func realize(specs []sitegen.SiteSpec, pages int) []SitePages {
	out := make([]SitePages, len(specs))
	var wg sync.WaitGroup
	for i, spec := range specs {
		wg.Add(1)
		go func(i int, spec sitegen.SiteSpec) {
			defer wg.Done()
			out[i] = SitePages{Spec: spec, Pages: spec.Pages(pages)}
		}(i, spec)
	}
	wg.Wait()
	return out
}
