package resilience

import (
	"errors"
	"sync"
	"time"
)

// ErrOpen is returned (wrapped) by callers when a circuit breaker rejects
// work because its host is considered down.
var ErrOpen = errors.New("resilience: circuit open")

// BreakerState is the classic three-state circuit-breaker state machine.
type BreakerState int

const (
	// StateClosed lets all requests through (the healthy state).
	StateClosed BreakerState = iota
	// StateOpen rejects all requests until the cooldown elapses.
	StateOpen
	// StateHalfOpen lets a single probe request through; its outcome
	// decides between closing and reopening.
	StateHalfOpen
)

// String names the state for logs and counters.
func (s BreakerState) String() string {
	switch s {
	case StateClosed:
		return "closed"
	case StateOpen:
		return "open"
	case StateHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// Breaker state-transition counters. Every transition of every breaker
// increments exactly one of these, so an operator can read flapping
// (open and closed both climbing) versus a stuck outage (open climbing
// alone) straight off /metricsz.
const (
	// SeriesBreakerOpen counts transitions into the open state (a trip,
	// from closed or from a failed half-open probe).
	SeriesBreakerOpen = "resilience.breaker_open"
	// SeriesBreakerHalfOpen counts cooldown expiries admitting a probe.
	SeriesBreakerHalfOpen = "resilience.breaker_half_open"
	// SeriesBreakerClosed counts recoveries: a success observed while
	// the breaker was open or half-open.
	SeriesBreakerClosed = "resilience.breaker_closed"
)

// BreakerConfig tunes a Breaker. The zero value selects the defaults.
type BreakerConfig struct {
	// FailureThreshold is the number of consecutive transient failures
	// that trips the breaker open (default 5).
	FailureThreshold int
	// Cooldown is how long an open breaker rejects requests before
	// allowing a half-open probe (default 10s).
	Cooldown time.Duration
	// Clock overrides time.Now in tests.
	Clock func() time.Time
	// Stats receives the "breaker.opened" and "breaker.short_circuit"
	// counters; nil uses Default.
	Stats *Stats
}

const (
	defaultFailureThreshold = 5
	defaultCooldown         = 10 * time.Second
)

// Breaker is a circuit breaker for one upstream (typically one host).
// Callers ask Allow before attempting work and report the outcome with
// Success or Failure; only transient failures should be reported as
// failures — a host answering 404s is up.
type Breaker struct {
	cfg BreakerConfig

	mu       sync.Mutex
	state    BreakerState
	failures int       // consecutive transient failures while closed
	until    time.Time // when an open breaker may half-open
	probing  bool      // a half-open probe is in flight
}

// NewBreaker returns a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	if cfg.FailureThreshold <= 0 {
		cfg.FailureThreshold = defaultFailureThreshold
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = defaultCooldown
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	if cfg.Stats == nil {
		cfg.Stats = Default
	}
	return &Breaker{cfg: cfg}
}

// Allow reports whether a request may proceed. In the half-open state only
// one probe is admitted at a time; everyone else is rejected until the
// probe reports back.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case StateClosed:
		return true
	case StateOpen:
		if b.cfg.Clock().Before(b.until) {
			b.cfg.Stats.Add("breaker.short_circuit", 1)
			return false
		}
		b.state = StateHalfOpen
		b.probing = true
		b.cfg.Stats.Add(SeriesBreakerHalfOpen, 1)
		return true
	case StateHalfOpen:
		if b.probing {
			b.cfg.Stats.Add("breaker.short_circuit", 1)
			return false
		}
		b.probing = true
		return true
	}
	return false
}

// Success reports a successful request: the breaker closes and the failure
// streak resets.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != StateClosed {
		b.cfg.Stats.Add(SeriesBreakerClosed, 1)
	}
	b.state = StateClosed
	b.failures = 0
	b.probing = false
}

// Failure reports a transient failure. A failed half-open probe reopens the
// breaker immediately; enough consecutive failures while closed trip it.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case StateHalfOpen:
		b.trip()
	case StateClosed:
		b.failures++
		if b.failures >= b.cfg.FailureThreshold {
			b.trip()
		}
	}
}

// trip opens the breaker; callers hold b.mu.
func (b *Breaker) trip() {
	b.state = StateOpen
	b.failures = 0
	b.probing = false
	b.until = b.cfg.Clock().Add(b.cfg.Cooldown)
	b.cfg.Stats.Add("breaker.opened", 1) // legacy alias of SeriesBreakerOpen
	b.cfg.Stats.Add(SeriesBreakerOpen, 1)
}

// State returns the current state (resolving an expired cooldown lazily is
// Allow's job; State reports the stored state).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// BreakerGroup hands out one Breaker per key (per host, for the fetcher) on
// demand. Safe for concurrent use.
type BreakerGroup struct {
	cfg BreakerConfig

	mu sync.Mutex
	m  map[string]*Breaker
}

// NewBreakerGroup returns a group whose breakers share cfg.
func NewBreakerGroup(cfg BreakerConfig) *BreakerGroup {
	return &BreakerGroup{cfg: cfg, m: make(map[string]*Breaker)}
}

// For returns the key's breaker, creating it on first use.
func (g *BreakerGroup) For(key string) *Breaker {
	g.mu.Lock()
	defer g.mu.Unlock()
	b := g.m[key]
	if b == nil {
		b = NewBreaker(g.cfg)
		g.m[key] = b
	}
	return b
}
