package resilience

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func fastPolicy(attempts int) *RetryPolicy {
	return &RetryPolicy{
		MaxAttempts: attempts,
		BaseDelay:   time.Millisecond,
		MaxDelay:    4 * time.Millisecond,
		Stats:       NewStats(),
	}
}

func TestRetrySucceedsAfterTransientFailures(t *testing.T) {
	p := fastPolicy(5)
	calls := 0
	err := p.Do(context.Background(), func(context.Context) error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if calls != 3 {
		t.Errorf("calls = %d, want 3", calls)
	}
	if got := p.Stats.Get("retry.retries"); got != 2 {
		t.Errorf("retries counter = %d, want 2", got)
	}
}

func TestRetryExhaustsAttempts(t *testing.T) {
	p := fastPolicy(3)
	calls := 0
	sentinel := errors.New("still down")
	err := p.Do(context.Background(), func(context.Context) error {
		calls++
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want %v", err, sentinel)
	}
	if calls != 3 {
		t.Errorf("calls = %d, want 3", calls)
	}
}

func TestRetryStopsOnPermanent(t *testing.T) {
	p := fastPolicy(5)
	calls := 0
	err := p.Do(context.Background(), func(context.Context) error {
		calls++
		return Errorf("not found")
	})
	if err == nil || !IsPermanent(err) {
		t.Fatalf("err = %v, want permanent", err)
	}
	if calls != 1 {
		t.Errorf("calls = %d, want 1 (no retry of permanent failure)", calls)
	}
}

func TestRetryRespectsContextCancel(t *testing.T) {
	p := &RetryPolicy{MaxAttempts: 100, BaseDelay: 50 * time.Millisecond, Stats: NewStats()}
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	err := p.Do(ctx, func(context.Context) error {
		calls++
		return errors.New("transient")
	})
	if err == nil {
		t.Fatal("Do succeeded after cancel")
	}
	if time.Since(start) > time.Second {
		t.Errorf("Do ran %v after cancel", time.Since(start))
	}
}

func TestRetryAttemptTimeout(t *testing.T) {
	p := &RetryPolicy{
		MaxAttempts:    2,
		BaseDelay:      time.Millisecond,
		AttemptTimeout: 5 * time.Millisecond,
		Stats:          NewStats(),
	}
	deadlines := 0
	err := p.Do(context.Background(), func(ctx context.Context) error {
		if _, ok := ctx.Deadline(); ok {
			deadlines++
		}
		<-ctx.Done()
		return ctx.Err()
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if deadlines != 2 {
		t.Errorf("attempts with deadline = %d, want 2", deadlines)
	}
}

func TestIsPermanentSeesThroughWrapping(t *testing.T) {
	err := Permanent(errors.New("inner"))
	wrapped := errors.Join(errors.New("outer"), err)
	if !IsPermanent(wrapped) {
		t.Error("wrapped permanent error not detected")
	}
	if IsPermanent(errors.New("plain")) {
		t.Error("plain error reported permanent")
	}
	if Permanent(nil) != nil {
		t.Error("Permanent(nil) != nil")
	}
}

func TestBackoffBounds(t *testing.T) {
	p := &RetryPolicy{BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second}
	for n := 1; n < 30; n++ {
		d := p.backoff(n)
		if d < 50*time.Millisecond || d > time.Second {
			t.Fatalf("backoff(%d) = %v out of [50ms, 1s]", n, d)
		}
	}
}

func TestBreakerTripsAndRecovers(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	b := NewBreaker(BreakerConfig{
		FailureThreshold: 3,
		Cooldown:         10 * time.Second,
		Clock:            clock,
		Stats:            NewStats(),
	})

	for i := 0; i < 3; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker rejected request %d", i)
		}
		b.Failure()
	}
	if b.State() != StateOpen {
		t.Fatalf("state = %v after threshold failures, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker allowed a request before cooldown")
	}

	// Cooldown elapses: exactly one probe is admitted.
	now = now.Add(11 * time.Second)
	if !b.Allow() {
		t.Fatal("half-open breaker rejected the probe")
	}
	if b.Allow() {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}

	// Probe succeeds: breaker closes.
	b.Success()
	if b.State() != StateClosed {
		t.Fatalf("state = %v after successful probe, want closed", b.State())
	}
	if !b.Allow() {
		t.Fatal("closed breaker rejected request after recovery")
	}
}

func TestBreakerReopensOnFailedProbe(t *testing.T) {
	now := time.Unix(0, 0)
	b := NewBreaker(BreakerConfig{
		FailureThreshold: 1,
		Cooldown:         time.Second,
		Clock:            func() time.Time { return now },
		Stats:            NewStats(),
	})
	b.Failure()
	if b.State() != StateOpen {
		t.Fatal("breaker did not trip")
	}
	now = now.Add(2 * time.Second)
	if !b.Allow() {
		t.Fatal("probe rejected")
	}
	b.Failure()
	if b.State() != StateOpen {
		t.Fatalf("state = %v after failed probe, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("reopened breaker allowed a request")
	}
}

func TestBreakerSuccessResetsStreak(t *testing.T) {
	b := NewBreaker(BreakerConfig{FailureThreshold: 3, Stats: NewStats()})
	b.Failure()
	b.Failure()
	b.Success()
	b.Failure()
	b.Failure()
	if b.State() != StateClosed {
		t.Error("non-consecutive failures tripped the breaker")
	}
}

func TestBreakerGroupIsPerKey(t *testing.T) {
	g := NewBreakerGroup(BreakerConfig{FailureThreshold: 1, Stats: NewStats()})
	g.For("down.example").Failure()
	if g.For("down.example").State() != StateOpen {
		t.Error("down host breaker not open")
	}
	if g.For("up.example").State() != StateClosed {
		t.Error("unrelated host breaker tripped")
	}
	if g.For("down.example") != g.For("down.example") {
		t.Error("group did not reuse the breaker")
	}
}

func TestLimiterShedsPastCap(t *testing.T) {
	l := NewLimiter(2)
	if !l.TryAcquire() || !l.TryAcquire() {
		t.Fatal("limiter rejected within capacity")
	}
	if l.TryAcquire() {
		t.Fatal("limiter admitted past capacity")
	}
	if l.InFlight() != 2 || l.Cap() != 2 {
		t.Errorf("InFlight=%d Cap=%d, want 2/2", l.InFlight(), l.Cap())
	}
	l.Release()
	if !l.TryAcquire() {
		t.Error("limiter rejected after release")
	}
}

func TestNilLimiterIsUnlimited(t *testing.T) {
	l := NewLimiter(0)
	for i := 0; i < 100; i++ {
		if !l.TryAcquire() {
			t.Fatal("nil limiter rejected")
		}
	}
	l.Release()
	if l.InFlight() != 0 || l.Cap() != 0 {
		t.Error("nil limiter reported non-zero gauges")
	}
}

func TestStatsConcurrent(t *testing.T) {
	s := NewStats()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				s.Add("hits", 1)
			}
		}()
	}
	wg.Wait()
	if got := s.Get("hits"); got != 8000 {
		t.Errorf("hits = %d, want 8000", got)
	}
	snap := s.Snapshot()
	if snap["hits"] != 8000 {
		t.Errorf("snapshot hits = %d", snap["hits"])
	}
	if names := s.Names(); len(names) != 1 || names[0] != "hits" {
		t.Errorf("names = %v", names)
	}
}
