// Package resilience supplies the fault-tolerance primitives the serving
// path is built on: a retry policy with exponential backoff and jitter, a
// per-host circuit breaker, a concurrency limiter for load shedding, and a
// counter registry that makes all of it observable. The package has no
// knowledge of HTTP or extraction — callers (internal/fetch, internal/serve,
// internal/core) decide which failures are transient and which are final.
package resilience

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// RetryPolicy retries an operation with capped exponential backoff and
// half-jitter. The zero value is usable and selects the defaults below.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries, including the first
	// (default 3).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry (default 100ms);
	// each further retry doubles it.
	BaseDelay time.Duration
	// MaxDelay caps the backoff (default 2s).
	MaxDelay time.Duration
	// AttemptTimeout bounds each individual attempt; 0 leaves attempts
	// governed only by the caller's context.
	AttemptTimeout time.Duration
	// Stats receives the "retry.attempts" and "retry.retries" counters;
	// nil uses Default.
	Stats *Stats
}

const (
	defaultMaxAttempts = 3
	defaultBaseDelay   = 100 * time.Millisecond
	defaultMaxDelay    = 2 * time.Second
)

// Do runs op until it succeeds, returns a permanent error (see Permanent),
// the attempts are exhausted, or ctx is cancelled. Each attempt receives a
// context bounded by AttemptTimeout when one is set. The error of the last
// attempt is returned unwrapped so callers can inspect it with errors.Is.
func (p *RetryPolicy) Do(ctx context.Context, op func(ctx context.Context) error) error {
	attempts := p.MaxAttempts
	if attempts <= 0 {
		attempts = defaultMaxAttempts
	}
	stats := p.Stats
	if stats == nil {
		stats = Default
	}
	var err error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			stats.Add("retry.retries", 1)
			if werr := sleepCtx(ctx, p.backoff(i)); werr != nil {
				return err // cancelled mid-backoff: report the last attempt
			}
		}
		stats.Add("retry.attempts", 1)
		attemptCtx, cancel := ctx, context.CancelFunc(func() {})
		if p.AttemptTimeout > 0 {
			attemptCtx, cancel = context.WithTimeout(ctx, p.AttemptTimeout)
		}
		err = op(attemptCtx)
		cancel()
		if err == nil {
			return nil
		}
		if IsPermanent(err) || ctx.Err() != nil {
			return err
		}
	}
	return err
}

// backoff returns the jittered delay before retry number n (n >= 1):
// uniformly within [d/2, d) where d doubles per retry up to MaxDelay.
func (p *RetryPolicy) backoff(n int) time.Duration {
	base := p.BaseDelay
	if base <= 0 {
		base = defaultBaseDelay
	}
	max := p.MaxDelay
	if max <= 0 {
		max = defaultMaxDelay
	}
	d := base << uint(n-1)
	if d <= 0 || d > max { // <= 0 guards shift overflow
		d = max
	}
	half := d / 2
	if half <= 0 {
		return d
	}
	return half + time.Duration(rand.Int63n(int64(half)))
}

// sleepCtx sleeps for d unless ctx is cancelled first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// permanentError marks an error as not worth retrying.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent wraps err so RetryPolicy.Do stops immediately instead of
// retrying — for failures that further attempts cannot fix (a 404, a
// malformed URL, an open circuit).
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// IsPermanent reports whether err (or anything it wraps) was marked with
// Permanent.
func IsPermanent(err error) bool {
	var pe *permanentError
	return errors.As(err, &pe)
}

// Errorf is fmt.Errorf followed by Permanent — a convenience for callers
// building non-retryable failures.
func Errorf(format string, args ...any) error {
	return Permanent(fmt.Errorf(format, args...))
}
