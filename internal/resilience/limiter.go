package resilience

// Limiter bounds in-flight work with a non-blocking semaphore: callers that
// cannot get a slot are shed immediately rather than queued, keeping
// latency bounded under overload (the serve layer turns a failed acquire
// into 429 + Retry-After).
type Limiter struct {
	sem chan struct{}
}

// NewLimiter returns a limiter admitting at most n concurrent holders.
// n <= 0 returns nil, which every method treats as "unlimited".
func NewLimiter(n int) *Limiter {
	if n <= 0 {
		return nil
	}
	return &Limiter{sem: make(chan struct{}, n)}
}

// TryAcquire takes a slot if one is free; it never blocks.
func (l *Limiter) TryAcquire() bool {
	if l == nil {
		return true
	}
	select {
	case l.sem <- struct{}{}:
		return true
	default:
		return false
	}
}

// Release returns a slot taken by TryAcquire.
func (l *Limiter) Release() {
	if l == nil {
		return
	}
	<-l.sem
}

// InFlight reports the number of currently held slots.
func (l *Limiter) InFlight() int {
	if l == nil {
		return 0
	}
	return len(l.sem)
}

// Cap reports the slot capacity (0 when unlimited).
func (l *Limiter) Cap() int {
	if l == nil {
		return 0
	}
	return cap(l.sem)
}
