package resilience

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Stats is an expvar-style registry of named monotonic counters. Components
// publish into it (retries, breaker trips, shed requests, recovered panics)
// and the /statsz endpoint snapshots it, so the failure handling added by
// this package is observable rather than silent.
type Stats struct {
	mu       sync.RWMutex
	counters map[string]*atomic.Int64
}

// Default is the process-wide registry; components fall back to it when no
// Stats is configured, so one /statsz dump sees everything.
var Default = NewStats()

// NewStats returns an empty registry.
func NewStats() *Stats {
	return &Stats{counters: make(map[string]*atomic.Int64)}
}

// Counter returns the named counter, creating it at zero on first use.
func (s *Stats) Counter(name string) *atomic.Int64 {
	s.mu.RLock()
	c := s.counters[name]
	s.mu.RUnlock()
	if c != nil {
		return c
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if c = s.counters[name]; c == nil {
		c = new(atomic.Int64)
		s.counters[name] = c
	}
	return c
}

// Add increments the named counter by n.
func (s *Stats) Add(name string, n int64) {
	s.Counter(name).Add(n)
}

// Get returns the named counter's value (0 if never touched).
func (s *Stats) Get(name string) int64 {
	s.mu.RLock()
	c := s.counters[name]
	s.mu.RUnlock()
	if c == nil {
		return 0
	}
	return c.Load()
}

// Snapshot returns a point-in-time copy of every counter.
func (s *Stats) Snapshot() map[string]int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string]int64, len(s.counters))
	for name, c := range s.counters {
		out[name] = c.Load()
	}
	return out
}

// Names returns the registered counter names in sorted order.
func (s *Stats) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.counters))
	for name := range s.counters {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
