package resilience

import "omini/internal/obs"

// The counter registry this package originally carried is now
// internal/obs.Registry — one metrics subsystem feeds /statsz, /metricsz,
// and the per-phase histograms, instead of a resilience-private counter
// map. The aliases below keep the package's API (retry and breaker configs
// take a *Stats; tests build their own) while making every counter land in
// the shared registry.

// Stats is the metrics registry components publish into (retries, breaker
// trips, shed requests, recovered panics). It is the obs.Registry itself,
// so counters published here appear in Prometheus exposition too.
type Stats = obs.Registry

// Default is the process-wide registry; components fall back to it when no
// Stats is configured, so one /statsz or /metricsz dump sees everything.
var Default = obs.Default

// NewStats returns an empty registry.
func NewStats() *Stats {
	return obs.NewRegistry()
}
