package resilience

import (
	"testing"
	"time"
)

// The breaker's state transitions are first-class series: a full
// open -> half-open probe -> closed cycle increments each counter
// exactly once, and a failed probe re-opens rather than closing.
func TestBreakerTransitionCounters(t *testing.T) {
	now := time.Unix(0, 0)
	stats := NewStats()
	b := NewBreaker(BreakerConfig{
		FailureThreshold: 2,
		Cooldown:         10 * time.Second,
		Clock:            func() time.Time { return now },
		Stats:            stats,
	})

	counts := func() (open, half, closed int64) {
		return stats.Get(SeriesBreakerOpen), stats.Get(SeriesBreakerHalfOpen), stats.Get(SeriesBreakerClosed)
	}

	// A success while already closed is not a transition.
	b.Success()
	if open, half, closed := counts(); open != 0 || half != 0 || closed != 0 {
		t.Fatalf("counters after no-op success = %d/%d/%d, want 0/0/0", open, half, closed)
	}

	// Trip it: closed -> open.
	b.Allow()
	b.Failure()
	b.Allow()
	b.Failure()
	if open, _, _ := counts(); open != 1 {
		t.Fatalf("breaker_open = %d after trip, want 1", open)
	}

	// Cooldown expiry admits the probe: open -> half-open.
	now = now.Add(11 * time.Second)
	if !b.Allow() {
		t.Fatal("half-open breaker rejected the probe")
	}
	if _, half, _ := counts(); half != 1 {
		t.Fatalf("breaker_half_open = %d after probe admission, want 1", half)
	}

	// Probe succeeds: half-open -> closed.
	b.Success()
	if open, half, closed := counts(); open != 1 || half != 1 || closed != 1 {
		t.Fatalf("counters after recovery = %d/%d/%d, want 1/1/1", open, half, closed)
	}
	if b.State() != StateClosed {
		t.Fatalf("state = %v, want closed", b.State())
	}

	// Second outage whose probe fails: the trip from half-open counts
	// as another open, never a close.
	b.Allow()
	b.Failure()
	b.Allow()
	b.Failure() // trips again (threshold 2)
	now = now.Add(11 * time.Second)
	b.Allow()   // half-open probe admitted
	b.Failure() // failed probe: half-open -> open
	open, half, closed := counts()
	if open != 3 || half != 2 || closed != 1 {
		t.Fatalf("counters after failed probe = %d/%d/%d, want 3/2/1", open, half, closed)
	}
}
