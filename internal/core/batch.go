package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"omini/internal/govern"
	"omini/internal/obs"
	"omini/internal/rules"
)

// ErrPanicked marks a per-page extraction that panicked; the worker pool
// survives and the page reports this error instead.
var ErrPanicked = errors.New("core: extraction panicked")

// ErrUndispatched marks batch requests that were never handed to a
// worker because the batch context was cancelled first. It wraps the
// context's error, so errors.Is(err, context.Canceled) also holds.
var ErrUndispatched = errors.New("core: batch cancelled before dispatch")

// defaultPageTimeout is the per-page watchdog applied when
// BatchOptions.PageTimeout is zero: comfortably above any sane page's
// budget (the extractor's own default Deadline is 10s) while
// guaranteeing the pool cannot be held forever by a page stuck in
// ungoverned code.
const defaultPageTimeout = 30 * time.Second

// Batch extraction: the aggregation-server workload the paper's
// introduction motivates — hundreds of result pages from many sites,
// extracted concurrently, with each site's first page paying for discovery
// and the rest replaying the learned rule (Section 6.6's optimization,
// applied fleet-wide).

// BatchRequest is one page to extract.
type BatchRequest struct {
	// Site groups requests for rule reuse; empty disables the fast path
	// for this request.
	Site string
	// HTML is the page source.
	HTML string
}

// BatchResult is the outcome for one request, in input order.
type BatchResult struct {
	// Site echoes the request's site.
	Site string
	// Result is the extraction outcome; nil when Err is set.
	Result *Result
	// FromRule reports whether the cached-rule fast path served this page.
	FromRule bool
	// Err is the per-page failure, if any.
	Err error
}

// BatchOptions tune ExtractBatch.
type BatchOptions struct {
	// Workers bounds concurrency (default: GOMAXPROCS).
	Workers int
	// Rules supplies (and collects) per-site extraction rules; nil uses a
	// private store for the batch.
	Rules *rules.Store
	// PageTimeout is the per-page watchdog: a page still running after
	// this long is abandoned with a govern.ErrDeadline result while its
	// worker moves on. Zero applies defaultPageTimeout; negative
	// disables the watchdog.
	PageTimeout time.Duration
}

// ExtractBatch extracts every request concurrently, preserving input order
// in the results. Rules are learned on first success per site and replayed
// on subsequent pages; a replay that no longer matches falls back to
// rediscovery and refreshes the cached rule.
//
// Cancelling the context stops the batch promptly: dispatch halts, and
// in-flight pages observe the cancellation through their governor polls
// and abort with results carrying ctx.Err(). Requests on which no work
// started — never handed to a worker, or received by one only after the
// cancellation — report ErrUndispatched (wrapping ctx.Err()) instead,
// so callers can tell interrupted work from work that never started. Each
// page additionally runs under the PageTimeout watchdog: a stuck or
// over-budget page fails individually with govern.ErrDeadline while
// the pool survives.
func (e *Extractor) ExtractBatch(ctx context.Context, reqs []BatchRequest, opts BatchOptions) []BatchResult {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(reqs) {
		workers = len(reqs)
	}
	store := opts.Rules
	if store == nil {
		store = rules.NewStore()
	}
	timeout := opts.PageTimeout
	if timeout == 0 {
		timeout = defaultPageTimeout
	}

	results := make([]BatchResult, len(reqs))
	dispatched := make([]bool, len(reqs))
	var (
		wg   sync.WaitGroup
		next = make(chan int)
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				// The dispatcher's select can race a cancellation: when a
				// worker frees up just as the context dies, Go may pick the
				// send over ctx.Done() and hand over one more index. A page
				// received after cancellation never started any work, so it
				// reports ErrUndispatched like its never-sent peers rather
				// than masquerading as an interrupted extraction.
				if ctx.Err() != nil {
					results[i] = BatchResult{Site: reqs[i].Site, Err: fmt.Errorf("%w: %w", ErrUndispatched, ctx.Err())}
					continue
				}
				req := reqs[i]
				results[i] = e.extractOne(ctx, req, store, timeout)
			}
		}()
	}
dispatch:
	for i := 0; i < len(reqs); i++ {
		select {
		case next <- i:
			dispatched[i] = true
		case <-ctx.Done():
			break dispatch
		}
	}
	close(next)
	wg.Wait()
	// Mark undispatched requests distinctly from interrupted ones.
	for i := range reqs {
		if !dispatched[i] {
			results[i] = BatchResult{Site: reqs[i].Site, Err: fmt.Errorf("%w: %w", ErrUndispatched, ctx.Err())}
		}
	}
	return results
}

// extractOne serves a single batch request under the per-page watchdog.
// The page itself runs in a child goroutine; if it outlives the
// watchdog, this worker abandons it (the page's governor polls observe
// the expired context and it exits on its own shortly) and reports a
// dead-letter result, keeping the pool live. The context's metrics
// registry receives per-page counters — exactly one of core.batch_pages
// per request, plus core.batch_errors / core.batch_rule_hits /
// core.batch_watchdog / core.batch_panics as they apply — so an
// operator can reconcile a batch's results against /metricsz. Error and
// rule-hit counters are charged here, on the receiving side, so an
// abandoned page can never double-count its result.
func (e *Extractor) extractOne(ctx context.Context, req BatchRequest, store *rules.Store, timeout time.Duration) BatchResult {
	reg := obs.RegistryFrom(ctx)
	reg.Add(SeriesBatchPages, 1)
	pctx, cancel := ctx, context.CancelFunc(func() {})
	if timeout > 0 {
		pctx, cancel = context.WithTimeout(ctx, timeout)
	}
	defer cancel()

	done := make(chan BatchResult, 1)
	go func() { done <- e.extractPage(pctx, reg, req, store) }()

	var out BatchResult
	select {
	case out = <-done:
	case <-pctx.Done():
		select {
		case out = <-done:
			// The page finished in the same instant; keep its result.
		default:
			err := pctx.Err()
			if errors.Is(err, context.DeadlineExceeded) && ctx.Err() == nil {
				// The watchdog fired, not the batch: dead-letter the page.
				reg.Add(SeriesBatchWatchdog, 1)
				err = fmt.Errorf("%w: %w", govern.ErrDeadline, err)
			}
			out = BatchResult{Site: req.Site, Err: err}
		}
	}
	if out.Err != nil {
		reg.Add(SeriesBatchErrors, 1)
	}
	if out.FromRule {
		reg.Add(SeriesBatchRuleHits, 1)
	}
	return out
}

// extractPage runs one page through the rule cache. A panic anywhere in
// the pipeline is isolated to this page: one pathological page yields
// one error result, never a dead worker pool.
func (e *Extractor) extractPage(ctx context.Context, reg *obs.Registry, req BatchRequest, store *rules.Store) (out BatchResult) {
	defer func() {
		if r := recover(); r != nil {
			reg.Add(SeriesBatchPanics, 1)
			// Keep the panic value's own error chain intact when it has
			// one, so errors.Is sees through ErrPanicked to the cause.
			rerr, ok := r.(error)
			if !ok {
				rerr = fmt.Errorf("%v", r)
			}
			out = BatchResult{Site: req.Site, Err: fmt.Errorf("%w: %w", ErrPanicked, rerr)}
		}
	}()
	out = BatchResult{Site: req.Site}
	if req.Site != "" {
		if rule, err := store.Get(req.Site); err == nil {
			if res, err := e.ExtractWithRuleContext(ctx, req.HTML, rule); err == nil {
				out.Result = res
				out.FromRule = true
				return out
			}
			// Stale rule; rediscover below and refresh.
		}
	}
	res, err := e.ExtractContext(ctx, req.HTML)
	if err != nil {
		out.Err = err
		return out
	}
	out.Result = res
	if req.Site != "" {
		// Best effort: a racing worker may already have stored a rule for
		// the site; last write wins and both rules are valid.
		_ = store.Put(res.Rule(req.Site))
	}
	return out
}
