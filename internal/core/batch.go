package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"omini/internal/obs"
	"omini/internal/rules"
)

// ErrPanicked marks a per-page extraction that panicked; the worker pool
// survives and the page reports this error instead.
var ErrPanicked = errors.New("core: extraction panicked")

// Batch extraction: the aggregation-server workload the paper's
// introduction motivates — hundreds of result pages from many sites,
// extracted concurrently, with each site's first page paying for discovery
// and the rest replaying the learned rule (Section 6.6's optimization,
// applied fleet-wide).

// BatchRequest is one page to extract.
type BatchRequest struct {
	// Site groups requests for rule reuse; empty disables the fast path
	// for this request.
	Site string
	// HTML is the page source.
	HTML string
}

// BatchResult is the outcome for one request, in input order.
type BatchResult struct {
	// Site echoes the request's site.
	Site string
	// Result is the extraction outcome; nil when Err is set.
	Result *Result
	// FromRule reports whether the cached-rule fast path served this page.
	FromRule bool
	// Err is the per-page failure, if any.
	Err error
}

// BatchOptions tune ExtractBatch.
type BatchOptions struct {
	// Workers bounds concurrency (default: GOMAXPROCS).
	Workers int
	// Rules supplies (and collects) per-site extraction rules; nil uses a
	// private store for the batch.
	Rules *rules.Store
}

// ExtractBatch extracts every request concurrently, preserving input order
// in the results. Rules are learned on first success per site and replayed
// on subsequent pages; a replay that no longer matches falls back to
// rediscovery and refreshes the cached rule. Cancelling the context stops
// dispatching further pages (in-flight pages finish); their results carry
// ctx.Err().
func (e *Extractor) ExtractBatch(ctx context.Context, reqs []BatchRequest, opts BatchOptions) []BatchResult {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(reqs) {
		workers = len(reqs)
	}
	store := opts.Rules
	if store == nil {
		store = rules.NewStore()
	}

	results := make([]BatchResult, len(reqs))
	var (
		wg   sync.WaitGroup
		next = make(chan int)
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				req := reqs[i]
				results[i] = e.extractOne(ctx, req, store)
			}
		}()
	}
	i := 0
dispatch:
	for ; i < len(reqs); i++ {
		select {
		case next <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(next)
	wg.Wait()
	// Mark undispatched requests as cancelled.
	for ; i < len(reqs); i++ {
		if results[i].Result == nil && results[i].Err == nil {
			results[i] = BatchResult{Site: reqs[i].Site, Err: ctx.Err()}
		}
	}
	return results
}

// extractOne serves a single batch request through the rule cache. A panic
// anywhere in the pipeline is isolated to this page: one pathological page
// yields one error result, never a dead worker pool. The context's metrics
// registry receives per-page counters — exactly one of core.batch_pages
// per request, plus core.batch_errors / core.batch_rule_hits /
// core.batch_panics as they apply — so an operator can reconcile a batch's
// results against /metricsz.
func (e *Extractor) extractOne(ctx context.Context, req BatchRequest, store *rules.Store) (out BatchResult) {
	reg := obs.RegistryFrom(ctx)
	reg.Add("core.batch_pages", 1)
	defer func() {
		if r := recover(); r != nil {
			reg.Add("core.batch_panics", 1)
			reg.Add("core.batch_errors", 1)
			out = BatchResult{Site: req.Site, Err: fmt.Errorf("%w: %v", ErrPanicked, r)}
		}
	}()
	out = BatchResult{Site: req.Site}
	if req.Site != "" {
		if rule, err := store.Get(req.Site); err == nil {
			if res, err := e.ExtractWithRuleContext(ctx, req.HTML, rule); err == nil {
				reg.Add("core.batch_rule_hits", 1)
				out.Result = res
				out.FromRule = true
				return out
			}
			// Stale rule; rediscover below and refresh.
		}
	}
	res, err := e.ExtractContext(ctx, req.HTML)
	if err != nil {
		reg.Add("core.batch_errors", 1)
		out.Err = err
		return out
	}
	out.Result = res
	if req.Site != "" {
		// Best effort: a racing worker may already have stored a rule for
		// the site; last write wins and both rules are valid.
		_ = store.Put(res.Rule(req.Site))
	}
	return out
}
