package core

import (
	"testing"

	"omini/internal/corpus"
	"omini/internal/tagtree"
)

// TestExtractTreeInvariants runs the full pipeline on the corpus bench pages
// and validates the tree each result carries: extraction must consume the
// tree without corrupting its cached metrics, since rule replay and the
// evaluation harness reuse them.
func TestExtractTreeInvariants(t *testing.T) {
	e := New(Options{})
	for _, size := range corpus.BenchSizes {
		page := corpus.BenchPage(size)
		res, err := e.Extract(page.HTML)
		if err != nil {
			t.Fatalf("%s: %v", page.Name, err)
		}
		if err := tagtree.Validate(res.Tree); err != nil {
			t.Errorf("%s: tree invalid after extraction: %v", page.Name, err)
		}
		if len(res.Objects) == 0 {
			t.Errorf("%s: no objects extracted", page.Name)
		}
	}
}
