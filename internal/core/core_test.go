package core

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"omini/internal/rules"
	"omini/internal/separator"
	"omini/internal/sitegen"
	"omini/internal/subtree"
)

func TestExtractLOCEndToEnd(t *testing.T) {
	page := sitegen.LOC()
	e := New(Options{})
	res, err := e.Extract(page.HTML)
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	if res.SubtreePath != page.Truth.SubtreePath {
		t.Errorf("subtree = %s, want %s", res.SubtreePath, page.Truth.SubtreePath)
	}
	if !page.Truth.CorrectSeparator(res.Separator) {
		t.Errorf("separator = %q, want one of %v", res.Separator, page.Truth.Separators)
	}
	if len(res.Objects) != page.Truth.ObjectCount {
		t.Errorf("objects = %d, want %d", len(res.Objects), page.Truth.ObjectCount)
	}
	if len(res.Raw) < len(res.Objects) {
		t.Error("raw candidates fewer than refined objects")
	}
	for _, o := range res.Objects {
		if !strings.Contains(o.Text(), "Call number") {
			t.Errorf("extracted non-record: %q", o.Text())
		}
	}
}

func TestExtractCanoeEndToEnd(t *testing.T) {
	page := sitegen.Canoe()
	res, err := New(Options{}).Extract(page.HTML)
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	if res.SubtreePath != page.Truth.SubtreePath {
		t.Errorf("subtree = %s, want %s", res.SubtreePath, page.Truth.SubtreePath)
	}
	if res.Separator != "table" {
		t.Errorf("separator = %q, want table", res.Separator)
	}
	if len(res.Objects) != page.Truth.ObjectCount {
		t.Errorf("objects = %d, want %d", len(res.Objects), page.Truth.ObjectCount)
	}
}

func TestExtractRecordsTimings(t *testing.T) {
	res, err := New(Options{}).Extract(sitegen.Canoe().HTML)
	if err != nil {
		t.Fatal(err)
	}
	if res.Timing.Parse <= 0 || res.Timing.Subtree <= 0 || res.Timing.Separator <= 0 {
		t.Errorf("phases not timed: %+v", res.Timing)
	}
	if res.Timing.Total() <= 0 {
		t.Error("total timing zero")
	}
}

func TestExtractWithRuleFastPath(t *testing.T) {
	page := sitegen.Canoe()
	e := New(Options{})
	full, err := e.Extract(page.HTML)
	if err != nil {
		t.Fatal(err)
	}
	rule := full.Rule(page.Site)
	if rule.Site != page.Site || !rule.Valid() {
		t.Fatalf("bad rule: %+v", rule)
	}

	fast, err := e.ExtractWithRule(page.HTML, rule)
	if err != nil {
		t.Fatalf("ExtractWithRule: %v", err)
	}
	if fast.Separator != full.Separator || fast.SubtreePath != full.SubtreePath {
		t.Error("fast path diverged from discovery")
	}
	if len(fast.Objects) != len(full.Objects) {
		t.Errorf("fast objects = %d, full = %d", len(fast.Objects), len(full.Objects))
	}
	if fast.Timing.Separator != 0 || fast.Timing.Combine != 0 {
		t.Error("fast path should skip separator discovery")
	}
}

func TestExtractWithRuleMismatch(t *testing.T) {
	e := New(Options{})
	page := sitegen.LOC()
	_, err := e.ExtractWithRule(page.HTML, rulesFor("x", "html[1].body[2].div[9]", "tr"))
	if !errors.Is(err, ErrRuleMismatch) {
		t.Errorf("bad path err = %v, want ErrRuleMismatch", err)
	}
	_, err = e.ExtractWithRule(page.HTML, rulesFor("x", "html[1].body[2]", "blockquote"))
	if !errors.Is(err, ErrRuleMismatch) {
		t.Errorf("absent separator err = %v, want ErrRuleMismatch", err)
	}
	_, err = e.ExtractWithRule(page.HTML, rulesFor("x", "", ""))
	if !errors.Is(err, ErrRuleMismatch) {
		t.Errorf("invalid rule err = %v, want ErrRuleMismatch", err)
	}
}

func TestExtractNoObjects(t *testing.T) {
	// A body holding nothing but text offers no candidate tags at all.
	_, err := New(Options{}).Extract(`<html><body>nothing but prose here</body></html>`)
	if !errors.Is(err, ErrNoObjects) {
		t.Errorf("err = %v, want ErrNoObjects", err)
	}
}

func TestExtractParseError(t *testing.T) {
	if _, err := New(Options{}).Extract(""); err == nil {
		t.Error("empty document extracted successfully")
	}
}

func TestOptionsCustomHeuristics(t *testing.T) {
	page := sitegen.Canoe()
	// HF picks the nav font; PP alone on that subtree behaves differently
	// from the default pipeline, demonstrating the options are honored.
	e := New(Options{
		Subtree:    subtree.HF(),
		Separators: []separator.Heuristic{separator.PP()},
	})
	res, err := e.Extract(page.HTML)
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	if res.SubtreePath == page.Truth.SubtreePath {
		t.Errorf("HF subtree should differ from the truth path on the canoe page")
	}
}

func TestSkipRefine(t *testing.T) {
	page := sitegen.Canoe()
	res, err := New(Options{SkipRefine: true}).Extract(page.HTML)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Objects) != len(res.Raw) {
		t.Error("SkipRefine did not bypass refinement")
	}
	if len(res.Objects) <= page.Truth.ObjectCount {
		t.Errorf("raw objects = %d, expected chrome candidates beyond %d",
			len(res.Objects), page.Truth.ObjectCount)
	}
}

func TestSkipNormalize(t *testing.T) {
	// A genuinely well-formed page (every tag explicitly closed) extracts
	// the same objects without the tidy pass.
	src := `<html><body><ul>` +
		`<li><b>alpha</b> first item description text</li>` +
		`<li><b>beta</b> second item description text</li>` +
		`<li><b>gamma</b> third item description text</li>` +
		`<li><b>delta</b> fourth item description text</li>` +
		`</ul></body></html>`
	res, err := New(Options{SkipNormalize: true}).Extract(src)
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	if res.Separator != "li" {
		t.Errorf("separator = %q, want li", res.Separator)
	}
	if len(res.Objects) != 4 {
		t.Errorf("objects = %d, want 4", len(res.Objects))
	}
}

func rulesFor(site, path, sep string) rules.Rule {
	return rules.Rule{Site: site, SubtreePath: path, Separator: sep}
}

// The paper's document model covers "HTML or XML documents"; an RSS-style
// XML feed of repeated <item> elements extracts like any result list.
func TestExtractXMLFeed(t *testing.T) {
	var b strings.Builder
	b.WriteString(`<?xml version="1.0"?><rss version="0.91"><channel>`)
	b.WriteString(`<title>Example Feed</title><link>http://feed.example/</link>`)
	for i := 0; i < 8; i++ {
		fmt.Fprintf(&b, `<item><title>Story number %d with a headline</title>`+
			`<link>http://feed.example/story/%d</link>`+
			`<description>A reasonably long description of story %d for the feed reader.</description></item>`, i, i, i)
	}
	b.WriteString(`</channel></rss>`)
	res, err := New(Options{}).Extract(b.String())
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	if res.Separator != "item" {
		t.Errorf("separator = %q, want item", res.Separator)
	}
	if len(res.Objects) != 8 {
		t.Errorf("objects = %d, want 8", len(res.Objects))
	}
	for i, o := range res.Objects {
		if !strings.Contains(o.Text(), "Story number") {
			t.Errorf("object %d = %q", i, o.Text())
		}
	}
}
