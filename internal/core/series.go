package core

import "omini/internal/govern"

// Registry series emitted by this package. One constant per series —
// the obsnames analyzer enforces that emission sites use these and
// that serve's boot pre-registration covers every one of them, so
// /metricsz exposes each series from process start.
const (
	// SeriesExtractions counts successful single-page extractions.
	SeriesExtractions = "core.extractions"
	// SeriesErrors counts failed extractions of any cause.
	SeriesErrors = "core.errors"
	// SeriesDeadlineExceeded counts pages that hit the page deadline.
	SeriesDeadlineExceeded = "core.deadline_exceeded"
	// SeriesCancelled counts pages cancelled by the caller.
	SeriesCancelled = "core.cancelled"
	// SeriesRuleExtractions / SeriesRuleMismatches count rule-cache fast
	// paths and stale-rule fallbacks.
	SeriesRuleExtractions = "core.rule_extractions"
	SeriesRuleMismatches  = "core.rule_mismatches"

	// Batch counters, reconciled against batch results by operators.
	SeriesBatchPages    = "core.batch_pages"
	SeriesBatchErrors   = "core.batch_errors"
	SeriesBatchRuleHits = "core.batch_rule_hits"
	SeriesBatchWatchdog = "core.batch_watchdog"
	SeriesBatchPanics   = "core.batch_panics"

	// Per-kind limit counters, one series per govern limit kind.
	SeriesLimitInput   = `core.limit_exceeded{kind="input"}`
	SeriesLimitTokens  = `core.limit_exceeded{kind="tokens"}`
	SeriesLimitNodes   = `core.limit_exceeded{kind="nodes"}`
	SeriesLimitDepth   = `core.limit_exceeded{kind="depth"}`
	SeriesLimitObjects = `core.limit_exceeded{kind="objects"}`
	SeriesLimitOther   = `core.limit_exceeded{kind="other"}`
)

// LimitSeries maps a govern limit kind to its counter series. Every
// return is a compile-time constant, which is what lets call sites
// stay within the constant-series contract while the kind is dynamic.
func LimitSeries(kind string) string {
	switch kind {
	case govern.KindInput:
		return SeriesLimitInput
	case govern.KindTokens:
		return SeriesLimitTokens
	case govern.KindNodes:
		return SeriesLimitNodes
	case govern.KindDepth:
		return SeriesLimitDepth
	case govern.KindObjects:
		return SeriesLimitObjects
	}
	return SeriesLimitOther
}
