// Package core wires the Omini pipeline together (the architecture of the
// paper's Figure 3): normalize a fetched page into a well-formed document,
// build its tag tree, locate the object-rich subtree, discover the object
// separator with the combined heuristic algorithm, construct candidate
// objects and refine them. It also implements the cached-rule fast path of
// Section 6.6 and records per-phase timings for the Table 16/17
// experiments.
//
// Every phase runs under an obs span (tokenize → tidy → build → subtree →
// separator → extract), so extractions feed per-phase latency histograms
// in the context's metrics registry; attach an obs.TraceRecorder to the
// context and the result additionally carries a full decision trace —
// which subtrees ranked where, how each separator heuristic voted, and
// what the combination concluded.
package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"omini/internal/combine"
	"omini/internal/extract"
	"omini/internal/htmlparse"
	"omini/internal/obs"
	"omini/internal/rules"
	"omini/internal/separator"
	"omini/internal/subtree"
	"omini/internal/tagtree"
	"omini/internal/tidy"
)

// Errors the pipeline can return.
var (
	// ErrNoObjects is returned when no separator candidate survives — the
	// page does not appear to contain a list of objects.
	ErrNoObjects = errors.New("core: no object separator found")
	// ErrRuleMismatch is returned when a cached rule does not apply to the
	// page (the site changed its structure).
	ErrRuleMismatch = errors.New("core: cached rule does not match page")
)

// Options configure an Extractor. The zero value selects the paper's
// defaults: the compound subtree heuristic, the five-heuristic RSIPB
// combination with the paper's probability table, and refinement enabled.
type Options struct {
	// Subtree ranks object-rich subtrees. Default: subtree.Compound().
	Subtree subtree.Heuristic
	// Separators are combined to choose the separator tag. Default:
	// separator.All() (the RSIPB combination).
	Separators []separator.Heuristic
	// Probs supplies the rank-probability evidence. Default:
	// combine.PaperProbs().
	Probs combine.ProbTable
	// SkipRefine disables Phase 3 refinement (used by ablations).
	SkipRefine bool
	// SkipNormalize feeds raw HTML to the tree builder without the tidy
	// pass (used by ablations; unsafe on sloppy pages).
	SkipNormalize bool
	// Refine tunes the refinement thresholds.
	Refine extract.RefineOptions
}

// Extractor runs the Omini object extraction pipeline.
type Extractor struct {
	opts Options
}

// New returns an Extractor with the given options.
func New(opts Options) *Extractor {
	if opts.Subtree == nil {
		opts.Subtree = subtree.Compound()
	}
	if opts.Separators == nil {
		opts.Separators = separator.All()
	}
	if opts.Probs == nil {
		opts.Probs = combine.PaperProbs()
	}
	return &Extractor{opts: opts}
}

// Timing records the wall-clock cost of each pipeline phase, the
// measurements behind Tables 16 and 17. ReadFile is filled by callers that
// perform I/O (package fetch); the remaining phases are measured here.
type Timing struct {
	ReadFile  time.Duration
	Parse     time.Duration
	Subtree   time.Duration
	Separator time.Duration
	Combine   time.Duration
	Construct time.Duration
}

// Total sums all recorded phases.
func (t Timing) Total() time.Duration {
	return t.ReadFile + t.Parse + t.Subtree + t.Separator + t.Combine + t.Construct
}

// Result is the outcome of one extraction.
type Result struct {
	// Objects are the extracted data objects, refined unless disabled.
	Objects []extract.Object
	// Raw are the candidate objects before refinement.
	Raw []extract.Object
	// SubtreePath is the path expression of the chosen subtree.
	SubtreePath string
	// Separator is the chosen object separator tag.
	Separator string
	// Candidates is the combined probability ranking the separator was
	// chosen from.
	Candidates []combine.Candidate
	// Tree is the page's tag tree (for callers that inspect structure).
	Tree *tagtree.Node
	// Timing is the per-phase cost of this extraction.
	Timing Timing
	// Trace is the decision trace of this extraction, present only when
	// the extraction ran under a context carrying an obs.TraceRecorder.
	Trace *obs.DecisionTrace
}

// Rule converts the result into a cacheable extraction rule for the site.
func (r *Result) Rule(site string) rules.Rule {
	return rules.Rule{
		Site:        site,
		SubtreePath: r.SubtreePath,
		Separator:   r.Separator,
		LearnedAt:   time.Now().UTC(),
	}
}

// Extract runs the full discovery pipeline on raw HTML.
func (e *Extractor) Extract(html string) (*Result, error) {
	return e.ExtractContext(context.Background(), html)
}

// ExtractContext is Extract under a caller context: phase spans land in the
// context's metrics registry, and when the context carries a trace
// recorder (obs.WithTraceRecorder) the result's Trace explains the
// decisions.
func (e *Extractor) ExtractContext(ctx context.Context, html string) (*Result, error) {
	reg := obs.RegistryFrom(ctx)
	reg.Add("core.extractions", 1)
	res := &Result{}
	root, err := e.parse(ctx, html, res)
	if err != nil {
		reg.Add("core.errors", 1)
		return nil, err
	}

	_, sp := obs.StartSpan(ctx, "subtree")
	ranked := e.opts.Subtree.Rank(root)
	sub := root
	if len(ranked) > 0 {
		sub = ranked[0].Node
	}
	sp.End()
	res.Timing.Subtree = sp.Duration()
	res.SubtreePath = tagtree.Path(sub)

	_, sp = obs.StartSpan(ctx, "separator")
	cands, lists := combine.CombineDetailed(sub, e.opts.Separators, e.opts.Probs)
	sp.End()
	res.Timing.Separator = sp.Duration()
	// The paper times "Object Separator" (running the heuristics) apart
	// from "Combine Heuristics" (merging the rankings); here both happen
	// inside combine.CombineDetailed, so the split is attributed to
	// Separator and Combine records only the final candidate selection.
	start := time.Now()
	if len(cands) == 0 {
		reg.Add("core.errors", 1)
		return nil, fmt.Errorf("%w (subtree %s)", ErrNoObjects, res.SubtreePath)
	}
	res.Candidates = cands
	res.Separator = cands[0].Tag
	res.Timing.Combine = time.Since(start)

	e.construct(ctx, sub, res)
	if rec := obs.TraceRecorderFrom(ctx); rec != nil {
		res.Trace = buildTrace(res, ranked, lists, rec)
	}
	return res, nil
}

// ExtractWithRule replays a cached rule on raw HTML, skipping subtree and
// separator discovery (the Table 17 fast path).
func (e *Extractor) ExtractWithRule(html string, rule rules.Rule) (*Result, error) {
	return e.ExtractWithRuleContext(context.Background(), html, rule)
}

// ExtractWithRuleContext is ExtractWithRule under a caller context, with
// the same span and trace behavior as ExtractContext.
func (e *Extractor) ExtractWithRuleContext(ctx context.Context, html string, rule rules.Rule) (*Result, error) {
	reg := obs.RegistryFrom(ctx)
	reg.Add("core.rule_extractions", 1)
	if !rule.Valid() {
		reg.Add("core.rule_mismatches", 1)
		return nil, fmt.Errorf("%w: rule is incomplete", ErrRuleMismatch)
	}
	res := &Result{}
	root, err := e.parse(ctx, html, res)
	if err != nil {
		reg.Add("core.errors", 1)
		return nil, err
	}

	_, sp := obs.StartSpan(ctx, "subtree")
	sub := tagtree.FindPath(root, rule.SubtreePath)
	sp.End()
	res.Timing.Subtree = sp.Duration()
	if sub == nil {
		reg.Add("core.rule_mismatches", 1)
		return nil, fmt.Errorf("%w: path %s", ErrRuleMismatch, rule.SubtreePath)
	}
	res.SubtreePath = rule.SubtreePath
	res.Separator = rule.Separator

	e.construct(ctx, sub, res)
	if len(res.Raw) == 0 {
		reg.Add("core.rule_mismatches", 1)
		return nil, fmt.Errorf("%w: separator %q absent", ErrRuleMismatch, rule.Separator)
	}
	if rec := obs.TraceRecorderFrom(ctx); rec != nil {
		res.Trace = buildTrace(res, nil, nil, rec)
		res.Trace.FromRule = true
	}
	return res, nil
}

// parse runs Phase 1 — lexing, syntactic normalization, tag tree
// construction — as three observable spans, and records its combined
// timing. Splitting tokenize from tidy costs one transient raw-token slice
// relative to the fused streaming path; the per-phase visibility is the
// point (DESIGN.md §9).
func (e *Extractor) parse(ctx context.Context, html string, res *Result) (*tagtree.Node, error) {
	parseStart := time.Now()
	_, sp := obs.StartSpan(ctx, "tokenize")
	toks := htmlparse.Tokenize(html)
	sp.End()
	if !e.opts.SkipNormalize {
		_, sp = obs.StartSpan(ctx, "tidy")
		toks = tidy.NormalizeTokensFrom(toks)
		sp.End()
	}
	// With SkipNormalize the raw stream is unbalanced; Build recovers what
	// it can.
	_, sp = obs.StartSpan(ctx, "build")
	root, err := tagtree.Build(toks)
	sp.End()
	res.Timing.Parse = time.Since(parseStart)
	if err != nil {
		return nil, fmt.Errorf("core: parse: %w", err)
	}
	res.Tree = root
	return root, nil
}

// construct runs Phase 3 and records its timing.
func (e *Extractor) construct(ctx context.Context, sub *tagtree.Node, res *Result) {
	_, sp := obs.StartSpan(ctx, "extract")
	res.Raw = extract.Construct(sub, res.Separator)
	res.Objects = res.Raw
	if !e.opts.SkipRefine {
		res.Objects = extract.Refine(res.Raw, e.opts.Refine)
	}
	sp.End()
	res.Timing.Construct = sp.Duration()
}

// traceTopN caps ranked lists in the decision trace; beyond the first few
// candidates the rankings carry no decision weight (the probability tables
// stop at rank 5).
const traceTopN = 5

// buildTrace assembles the decision trace from the discovery state. ranked
// and lists are nil on the cached-rule path, which skips discovery.
func buildTrace(res *Result, ranked []subtree.Ranked, lists []combine.RankedList, rec *obs.TraceRecorder) *obs.DecisionTrace {
	tr := &obs.DecisionTrace{
		SubtreePath: res.SubtreePath,
		Separator:   res.Separator,
		Confidence:  res.Confidence(),
		Objects:     len(res.Objects),
	}
	for i, r := range ranked {
		if i >= traceTopN {
			break
		}
		tr.SubtreeRanking = append(tr.SubtreeRanking, obs.RankedItem{
			Rank: i + 1, Key: tagtree.Path(r.Node), Score: r.Score,
		})
	}
	for _, list := range lists {
		rk := obs.Ranking{Name: list.Name}
		for i, r := range list.Ranked {
			if i >= traceTopN {
				break
			}
			rk.Items = append(rk.Items, obs.RankedItem{Rank: i + 1, Key: r.Tag, Score: r.Score})
		}
		tr.SeparatorRankings = append(tr.SeparatorRankings, rk)
	}
	for i, c := range res.Candidates {
		if i >= traceTopN {
			break
		}
		tr.Combined = append(tr.Combined, obs.RankedItem{Rank: i + 1, Key: c.Tag, Score: c.Prob})
	}
	tr.Phases = rec.Spans()
	return tr
}
