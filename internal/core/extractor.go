// Package core wires the Omini pipeline together (the architecture of the
// paper's Figure 3): normalize a fetched page into a well-formed document,
// build its tag tree, locate the object-rich subtree, discover the object
// separator with the combined heuristic algorithm, construct candidate
// objects and refine them. It also implements the cached-rule fast path of
// Section 6.6 and records per-phase timings for the Table 16/17
// experiments.
package core

import (
	"errors"
	"fmt"
	"time"

	"omini/internal/combine"
	"omini/internal/extract"
	"omini/internal/htmlparse"
	"omini/internal/rules"
	"omini/internal/separator"
	"omini/internal/subtree"
	"omini/internal/tagtree"
)

// Errors the pipeline can return.
var (
	// ErrNoObjects is returned when no separator candidate survives — the
	// page does not appear to contain a list of objects.
	ErrNoObjects = errors.New("core: no object separator found")
	// ErrRuleMismatch is returned when a cached rule does not apply to the
	// page (the site changed its structure).
	ErrRuleMismatch = errors.New("core: cached rule does not match page")
)

// Options configure an Extractor. The zero value selects the paper's
// defaults: the compound subtree heuristic, the five-heuristic RSIPB
// combination with the paper's probability table, and refinement enabled.
type Options struct {
	// Subtree ranks object-rich subtrees. Default: subtree.Compound().
	Subtree subtree.Heuristic
	// Separators are combined to choose the separator tag. Default:
	// separator.All() (the RSIPB combination).
	Separators []separator.Heuristic
	// Probs supplies the rank-probability evidence. Default:
	// combine.PaperProbs().
	Probs combine.ProbTable
	// SkipRefine disables Phase 3 refinement (used by ablations).
	SkipRefine bool
	// SkipNormalize feeds raw HTML to the tree builder without the tidy
	// pass (used by ablations; unsafe on sloppy pages).
	SkipNormalize bool
	// Refine tunes the refinement thresholds.
	Refine extract.RefineOptions
}

// Extractor runs the Omini object extraction pipeline.
type Extractor struct {
	opts Options
}

// New returns an Extractor with the given options.
func New(opts Options) *Extractor {
	if opts.Subtree == nil {
		opts.Subtree = subtree.Compound()
	}
	if opts.Separators == nil {
		opts.Separators = separator.All()
	}
	if opts.Probs == nil {
		opts.Probs = combine.PaperProbs()
	}
	return &Extractor{opts: opts}
}

// Timing records the wall-clock cost of each pipeline phase, the
// measurements behind Tables 16 and 17. ReadFile is filled by callers that
// perform I/O (package fetch); the remaining phases are measured here.
type Timing struct {
	ReadFile  time.Duration
	Parse     time.Duration
	Subtree   time.Duration
	Separator time.Duration
	Combine   time.Duration
	Construct time.Duration
}

// Total sums all recorded phases.
func (t Timing) Total() time.Duration {
	return t.ReadFile + t.Parse + t.Subtree + t.Separator + t.Combine + t.Construct
}

// Result is the outcome of one extraction.
type Result struct {
	// Objects are the extracted data objects, refined unless disabled.
	Objects []extract.Object
	// Raw are the candidate objects before refinement.
	Raw []extract.Object
	// SubtreePath is the path expression of the chosen subtree.
	SubtreePath string
	// Separator is the chosen object separator tag.
	Separator string
	// Candidates is the combined probability ranking the separator was
	// chosen from.
	Candidates []combine.Candidate
	// Tree is the page's tag tree (for callers that inspect structure).
	Tree *tagtree.Node
	// Timing is the per-phase cost of this extraction.
	Timing Timing
}

// Rule converts the result into a cacheable extraction rule for the site.
func (r *Result) Rule(site string) rules.Rule {
	return rules.Rule{
		Site:        site,
		SubtreePath: r.SubtreePath,
		Separator:   r.Separator,
		LearnedAt:   time.Now().UTC(),
	}
}

// Extract runs the full discovery pipeline on raw HTML.
func (e *Extractor) Extract(html string) (*Result, error) {
	res := &Result{}
	root, err := e.parse(html, res)
	if err != nil {
		return nil, err
	}

	start := time.Now()
	sub := root
	if ranked := e.opts.Subtree.Rank(root); len(ranked) > 0 {
		sub = ranked[0].Node
	}
	res.Timing.Subtree = time.Since(start)
	res.SubtreePath = tagtree.Path(sub)

	start = time.Now()
	cands := combine.Combine(sub, e.opts.Separators, e.opts.Probs)
	res.Timing.Separator = time.Since(start)
	// The paper times "Object Separator" (running the heuristics) apart
	// from "Combine Heuristics" (merging the rankings); here both happen
	// inside combine.Combine, so the split is attributed to Separator and
	// Combine records only the final candidate selection.
	start = time.Now()
	if len(cands) == 0 {
		return nil, fmt.Errorf("%w (subtree %s)", ErrNoObjects, res.SubtreePath)
	}
	res.Candidates = cands
	res.Separator = cands[0].Tag
	res.Timing.Combine = time.Since(start)

	e.construct(sub, res)
	return res, nil
}

// ExtractWithRule replays a cached rule on raw HTML, skipping subtree and
// separator discovery (the Table 17 fast path).
func (e *Extractor) ExtractWithRule(html string, rule rules.Rule) (*Result, error) {
	if !rule.Valid() {
		return nil, fmt.Errorf("%w: rule is incomplete", ErrRuleMismatch)
	}
	res := &Result{}
	root, err := e.parse(html, res)
	if err != nil {
		return nil, err
	}

	start := time.Now()
	sub := tagtree.FindPath(root, rule.SubtreePath)
	res.Timing.Subtree = time.Since(start)
	if sub == nil {
		return nil, fmt.Errorf("%w: path %s", ErrRuleMismatch, rule.SubtreePath)
	}
	res.SubtreePath = rule.SubtreePath
	res.Separator = rule.Separator

	e.construct(sub, res)
	if len(res.Raw) == 0 {
		return nil, fmt.Errorf("%w: separator %q absent", ErrRuleMismatch, rule.Separator)
	}
	return res, nil
}

// parse runs Phase 1 (normalization + tag tree construction) and records
// its timing.
func (e *Extractor) parse(html string, res *Result) (*tagtree.Node, error) {
	start := time.Now()
	var (
		root *tagtree.Node
		err  error
	)
	if e.opts.SkipNormalize {
		// Raw token streams are unbalanced; Build recovers what it can.
		root, err = tagtree.Build(htmlparse.Tokenize(html))
	} else {
		root, err = tagtree.Parse(html)
	}
	res.Timing.Parse = time.Since(start)
	if err != nil {
		return nil, fmt.Errorf("core: parse: %w", err)
	}
	res.Tree = root
	return root, nil
}

// construct runs Phase 3 and records its timing.
func (e *Extractor) construct(sub *tagtree.Node, res *Result) {
	start := time.Now()
	res.Raw = extract.Construct(sub, res.Separator)
	res.Objects = res.Raw
	if !e.opts.SkipRefine {
		res.Objects = extract.Refine(res.Raw, e.opts.Refine)
	}
	res.Timing.Construct = time.Since(start)
}
