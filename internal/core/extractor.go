// Package core wires the Omini pipeline together (the architecture of the
// paper's Figure 3): normalize a fetched page into a well-formed document,
// build its tag tree, locate the object-rich subtree, discover the object
// separator with the combined heuristic algorithm, construct candidate
// objects and refine them. It also implements the cached-rule fast path of
// Section 6.6 and records per-phase timings for the Table 16/17
// experiments.
//
// Every phase runs under an obs span (tokenize → tidy → build → subtree →
// separator → extract), so extractions feed per-phase latency histograms
// in the context's metrics registry; attach an obs.TraceRecorder to the
// context and the result additionally carries a full decision trace —
// which subtrees ranked where, how each separator heuristic voted, and
// what the combination concluded.
package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"omini/internal/combine"
	"omini/internal/extract"
	"omini/internal/govern"
	"omini/internal/htmlparse"
	"omini/internal/obs"
	"omini/internal/rules"
	"omini/internal/separator"
	"omini/internal/subtree"
	"omini/internal/tagtree"
	"omini/internal/tidy"
)

// Errors the pipeline can return.
var (
	// ErrNoObjects is returned when no separator candidate survives — the
	// page does not appear to contain a list of objects.
	ErrNoObjects = errors.New("core: no object separator found")
	// ErrRuleMismatch is returned when a cached rule does not apply to the
	// page (the site changed its structure).
	ErrRuleMismatch = errors.New("core: cached rule does not match page")
)

// Limits bounds the resources one extraction may consume; see
// govern.Limits for field semantics. Extractions also return
// *govern.ErrLimitExceeded and govern.ErrDeadline (wrapped) when a
// budget is blown.
type Limits = govern.Limits

// DefaultLimits returns the production resource budgets (govern.Default).
func DefaultLimits() Limits { return govern.Default() }

// Options configure an Extractor. The zero value selects the paper's
// defaults: the compound subtree heuristic, the five-heuristic RSIPB
// combination with the paper's probability table, and refinement enabled.
type Options struct {
	// Subtree ranks object-rich subtrees. Default: subtree.Compound().
	Subtree subtree.Heuristic
	// Separators are combined to choose the separator tag. Default:
	// separator.All() (the RSIPB combination).
	Separators []separator.Heuristic
	// Probs supplies the rank-probability evidence. Default:
	// combine.PaperProbs().
	Probs combine.ProbTable
	// SkipRefine disables Phase 3 refinement (used by ablations).
	SkipRefine bool
	// SkipNormalize feeds raw HTML to the tree builder without the tidy
	// pass (used by ablations; unsafe on sloppy pages).
	SkipNormalize bool
	// Refine tunes the refinement thresholds.
	Refine extract.RefineOptions
	// Limits is the resource governor for each extraction. Zero fields
	// take the production defaults (DefaultLimits); use
	// govern.Unlimited() to run ungoverned.
	Limits Limits
}

// Extractor runs the Omini object extraction pipeline.
type Extractor struct {
	opts Options
}

// New returns an Extractor with the given options.
func New(opts Options) *Extractor {
	if opts.Subtree == nil {
		opts.Subtree = subtree.Compound()
	}
	if opts.Separators == nil {
		opts.Separators = separator.All()
	}
	if opts.Probs == nil {
		opts.Probs = combine.PaperProbs()
	}
	opts.Limits = opts.Limits.WithDefaults()
	return &Extractor{opts: opts}
}

// governed derives the per-page context and guard from the extractor's
// limits. The returned cancel releases the deadline timer and must be
// called when the extraction finishes.
func (e *Extractor) governed(ctx context.Context) (context.Context, context.CancelFunc, *govern.Guard) {
	lim := e.opts.Limits
	cancel := func() {}
	if lim.Deadline > 0 {
		ctx, cancel = context.WithTimeout(ctx, lim.Deadline)
	}
	return ctx, cancel, govern.NewGuard(ctx, lim)
}

// countFailure records a failed extraction: always core.errors, plus a
// per-cause counter — one series per limit kind, one for deadline
// expiry, one for caller cancellation — so /metricsz distinguishes
// "pages are oversized" from "pages are slow".
func countFailure(reg *obs.Registry, err error) {
	reg.Add(SeriesErrors, 1)
	var lim *govern.ErrLimitExceeded
	switch {
	case errors.As(err, &lim):
		reg.Add(LimitSeries(lim.Kind), 1)
	case errors.Is(err, govern.ErrDeadline):
		reg.Add(SeriesDeadlineExceeded, 1)
	case errors.Is(err, context.Canceled):
		reg.Add(SeriesCancelled, 1)
	}
}

// Timing records the wall-clock cost of each pipeline phase, the
// measurements behind Tables 16 and 17. ReadFile is filled by callers that
// perform I/O (package fetch); the remaining phases are measured here.
type Timing struct {
	ReadFile  time.Duration
	Parse     time.Duration
	Subtree   time.Duration
	Separator time.Duration
	Combine   time.Duration
	Construct time.Duration
}

// Total sums all recorded phases.
func (t Timing) Total() time.Duration {
	return t.ReadFile + t.Parse + t.Subtree + t.Separator + t.Combine + t.Construct
}

// Result is the outcome of one extraction.
type Result struct {
	// Objects are the extracted data objects, refined unless disabled.
	Objects []extract.Object
	// Raw are the candidate objects before refinement.
	Raw []extract.Object
	// SubtreePath is the path expression of the chosen subtree.
	SubtreePath string
	// Separator is the chosen object separator tag.
	Separator string
	// Candidates is the combined probability ranking the separator was
	// chosen from.
	Candidates []combine.Candidate
	// Tree is the page's tag tree (for callers that inspect structure).
	Tree *tagtree.Node
	// Timing is the per-phase cost of this extraction.
	Timing Timing
	// Trace is the decision trace of this extraction, present only when
	// the extraction ran under a context carrying an obs.TraceRecorder.
	Trace *obs.DecisionTrace
}

// Rule converts the result into a cacheable extraction rule for the site.
func (r *Result) Rule(site string) rules.Rule {
	return rules.Rule{
		Site:        site,
		SubtreePath: r.SubtreePath,
		Separator:   r.Separator,
		LearnedAt:   time.Now().UTC(),
	}
}

// Extract runs the full discovery pipeline on raw HTML.
func (e *Extractor) Extract(html string) (*Result, error) {
	return e.ExtractContext(context.Background(), html)
}

// ExtractContext is Extract under a caller context: phase spans land in the
// context's metrics registry, and when the context carries a trace
// recorder (obs.WithTraceRecorder) the result's Trace explains the
// decisions.
func (e *Extractor) ExtractContext(ctx context.Context, html string) (*Result, error) {
	reg := obs.RegistryFrom(ctx)
	reg.Add(SeriesExtractions, 1)
	ctx, cancel, g := e.governed(ctx)
	defer cancel()
	rec := obs.TraceRecorderFrom(ctx)
	if rec != nil {
		// Failed extractions carry their charges too: the deferred write
		// runs on every exit, so a blown budget shows what was consumed.
		defer recordCharges(rec, g)
	}
	res := &Result{}
	root, err := e.parse(ctx, html, res, g)
	if err != nil {
		countFailure(reg, err)
		return nil, err
	}

	_, sp := obs.StartSpan(ctx, "subtree")
	ranked, err := subtree.RankGoverned(e.opts.Subtree, root, g)
	sp.End()
	res.Timing.Subtree = sp.Duration()
	if err != nil {
		countFailure(reg, err)
		return nil, fmt.Errorf("core: subtree: %w", err)
	}
	sub := root
	if len(ranked) > 0 {
		sub = ranked[0].Node
	}
	res.SubtreePath = tagtree.Path(sub)

	_, sp = obs.StartSpan(ctx, "separator")
	cands, lists, err := combine.CombineDetailedGoverned(sub, e.opts.Separators, e.opts.Probs, g)
	sp.End()
	res.Timing.Separator = sp.Duration()
	if err != nil {
		countFailure(reg, err)
		return nil, fmt.Errorf("core: separator: %w", err)
	}
	// The paper times "Object Separator" (running the heuristics) apart
	// from "Combine Heuristics" (merging the rankings); here both happen
	// inside combine.CombineDetailed, so the split is attributed to
	// Separator and Combine records only the final candidate selection.
	start := time.Now()
	if len(cands) == 0 {
		reg.Add(SeriesErrors, 1)
		return nil, fmt.Errorf("%w (subtree %s)", ErrNoObjects, res.SubtreePath)
	}
	res.Candidates = cands
	res.Separator = cands[0].Tag
	res.Timing.Combine = time.Since(start)

	if err := e.construct(ctx, sub, res, g); err != nil {
		countFailure(reg, err)
		return nil, err
	}
	if rec != nil {
		recordCharges(rec, g)
		res.Trace = buildTrace(res, ranked, lists, rec)
	}
	return res, nil
}

// ExtractWithRule replays a cached rule on raw HTML, skipping subtree and
// separator discovery (the Table 17 fast path).
func (e *Extractor) ExtractWithRule(html string, rule rules.Rule) (*Result, error) {
	return e.ExtractWithRuleContext(context.Background(), html, rule)
}

// ExtractWithRuleContext is ExtractWithRule under a caller context, with
// the same span and trace behavior as ExtractContext.
func (e *Extractor) ExtractWithRuleContext(ctx context.Context, html string, rule rules.Rule) (*Result, error) {
	reg := obs.RegistryFrom(ctx)
	reg.Add(SeriesRuleExtractions, 1)
	if !rule.Valid() {
		reg.Add(SeriesRuleMismatches, 1)
		return nil, fmt.Errorf("%w: rule is incomplete", ErrRuleMismatch)
	}
	ctx, cancel, g := e.governed(ctx)
	defer cancel()
	rec := obs.TraceRecorderFrom(ctx)
	if rec != nil {
		defer recordCharges(rec, g)
	}
	res := &Result{}
	root, err := e.parse(ctx, html, res, g)
	if err != nil {
		countFailure(reg, err)
		return nil, err
	}

	_, sp := obs.StartSpan(ctx, "subtree")
	sub := tagtree.FindPath(root, rule.SubtreePath)
	sp.End()
	res.Timing.Subtree = sp.Duration()
	if sub == nil {
		reg.Add(SeriesRuleMismatches, 1)
		return nil, fmt.Errorf("%w: path %s", ErrRuleMismatch, rule.SubtreePath)
	}
	res.SubtreePath = rule.SubtreePath
	res.Separator = rule.Separator

	if err := e.construct(ctx, sub, res, g); err != nil {
		countFailure(reg, err)
		return nil, err
	}
	if len(res.Raw) == 0 {
		reg.Add(SeriesRuleMismatches, 1)
		return nil, fmt.Errorf("%w: separator %q absent", ErrRuleMismatch, rule.Separator)
	}
	if rec != nil {
		recordCharges(rec, g)
		res.Trace = buildTrace(res, nil, nil, rec)
		res.Trace.FromRule = true
	}
	return res, nil
}

// parse runs Phase 1 — lexing, syntactic normalization, tag tree
// construction — as three observable spans, and records its combined
// timing. Splitting tokenize from tidy costs one transient raw-token slice
// relative to the fused streaming path; the per-phase visibility is the
// point (DESIGN.md §9). Each phase runs under the page's guard, so an
// input past MaxInputBytes, a token-budget blowout, or an
// over-deep/over-large tree surfaces here as a typed govern error.
func (e *Extractor) parse(ctx context.Context, html string, res *Result, g *govern.Guard) (*tagtree.Node, error) {
	parseStart := time.Now()
	_, sp := obs.StartSpan(ctx, "tokenize")
	toks, err := htmlparse.TokenizeGoverned(html, g)
	sp.End()
	if err != nil {
		res.Timing.Parse = time.Since(parseStart)
		return nil, fmt.Errorf("core: tokenize: %w", err)
	}
	if !e.opts.SkipNormalize {
		_, sp = obs.StartSpan(ctx, "tidy")
		toks, err = tidy.NormalizeTokensFromGoverned(toks, g)
		sp.End()
		if err != nil {
			res.Timing.Parse = time.Since(parseStart)
			return nil, fmt.Errorf("core: tidy: %w", err)
		}
	}
	// With SkipNormalize the raw stream is unbalanced; Build recovers what
	// it can.
	_, sp = obs.StartSpan(ctx, "build")
	root, err := tagtree.BuildGoverned(toks, g)
	sp.End()
	res.Timing.Parse = time.Since(parseStart)
	if err != nil {
		return nil, fmt.Errorf("core: parse: %w", err)
	}
	res.Tree = root
	return root, nil
}

// construct runs Phase 3 and records its timing.
func (e *Extractor) construct(ctx context.Context, sub *tagtree.Node, res *Result, g *govern.Guard) error {
	_, sp := obs.StartSpan(ctx, "extract")
	defer func() { res.Timing.Construct = sp.Duration() }()
	raw, err := extract.ConstructGoverned(sub, res.Separator, g)
	if err != nil {
		sp.End()
		return fmt.Errorf("core: construct: %w", err)
	}
	res.Raw = raw
	res.Objects = res.Raw
	if !e.opts.SkipRefine {
		res.Objects = extract.Refine(res.Raw, e.opts.Refine)
	}
	sp.End()
	return nil
}

// traceTopN caps ranked lists in the decision trace; beyond the first few
// candidates the rankings carry no decision weight (the probability tables
// stop at rank 5).
const traceTopN = 5

// recordCharges stamps the guard's consumed budgets onto the trace
// recorder, so traces (inline and /tracez) show what the extraction
// cost the governor.
func recordCharges(rec *obs.TraceRecorder, g *govern.Guard) {
	tokens, nodes, objects := g.Charges()
	rec.SetCharge("tokens", int64(tokens))
	rec.SetCharge("nodes", int64(nodes))
	rec.SetCharge("objects", int64(objects))
}

// buildTrace assembles the decision trace from the discovery state. ranked
// and lists are nil on the cached-rule path, which skips discovery.
func buildTrace(res *Result, ranked []subtree.Ranked, lists []combine.RankedList, rec *obs.TraceRecorder) *obs.DecisionTrace {
	tr := &obs.DecisionTrace{
		TraceID:     rec.TraceID().String(),
		SubtreePath: res.SubtreePath,
		Separator:   res.Separator,
		Confidence:  res.Confidence(),
		Objects:     len(res.Objects),
		Charges:     rec.Charges(),
	}
	for i, r := range ranked {
		if i >= traceTopN {
			break
		}
		tr.SubtreeRanking = append(tr.SubtreeRanking, obs.RankedItem{
			Rank: i + 1, Key: tagtree.Path(r.Node), Score: r.Score,
		})
	}
	for _, list := range lists {
		rk := obs.Ranking{Name: list.Name}
		for i, r := range list.Ranked {
			if i >= traceTopN {
				break
			}
			rk.Items = append(rk.Items, obs.RankedItem{Rank: i + 1, Key: r.Tag, Score: r.Score})
		}
		tr.SeparatorRankings = append(tr.SeparatorRankings, rk)
	}
	for i, c := range res.Candidates {
		if i >= traceTopN {
			break
		}
		tr.Combined = append(tr.Combined, obs.RankedItem{Rank: i + 1, Key: c.Tag, Score: c.Prob})
	}
	tr.Phases = rec.Spans()
	return tr
}
