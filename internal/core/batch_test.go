package core

import (
	"context"
	"errors"
	"testing"

	"omini/internal/rules"
	"omini/internal/sitegen"
	"omini/internal/subtree"
	"omini/internal/tagtree"
)

// batchPages builds a batch over several sites' pages.
func batchPages(t *testing.T, perSite int) []BatchRequest {
	t.Helper()
	specs := []sitegen.SiteSpec{
		{
			Name: "batch-a.example", Domain: sitegen.DomainBooks,
			LayoutName: "row-table", MinItems: 5, MaxItems: 12,
		},
		{
			Name: "batch-b.example", Domain: sitegen.DomainNews,
			LayoutName: "ul-record", MinItems: 5, MaxItems: 12,
		},
		{
			Name: "batch-c.example", Domain: sitegen.DomainSearch,
			LayoutName: "para-record", MinItems: 5, MaxItems: 12,
		},
	}
	var reqs []BatchRequest
	for i := 0; i < perSite; i++ {
		for _, spec := range specs {
			page := spec.Page(i)
			reqs = append(reqs, BatchRequest{Site: spec.Name, HTML: page.HTML})
		}
	}
	return reqs
}

func TestExtractBatchBasic(t *testing.T) {
	e := New(Options{})
	reqs := batchPages(t, 4)
	results := e.ExtractBatch(context.Background(), reqs, BatchOptions{Workers: 4})
	if len(results) != len(reqs) {
		t.Fatalf("got %d results for %d requests", len(results), len(reqs))
	}
	fromRule := 0
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("request %d (%s): %v", i, r.Site, r.Err)
		}
		if r.Site != reqs[i].Site {
			t.Errorf("result %d site = %q, want %q", i, r.Site, reqs[i].Site)
		}
		if len(r.Result.Objects) == 0 {
			t.Errorf("request %d: no objects", i)
		}
		if r.FromRule {
			fromRule++
		}
	}
	// With 4 pages per site, at least the later pages of each site should
	// ride the rule cache (the first successful page of each site learns).
	if fromRule < len(reqs)/2 {
		t.Errorf("only %d/%d extractions used cached rules", fromRule, len(reqs))
	}
}

func TestExtractBatchSharedStore(t *testing.T) {
	e := New(Options{})
	store := rules.NewStore()
	reqs := batchPages(t, 2)
	e.ExtractBatch(context.Background(), reqs, BatchOptions{Workers: 2, Rules: store})
	if store.Len() != 3 {
		t.Errorf("store holds %d rules, want 3 sites", store.Len())
	}
	// A second batch starts warm: every page should take the rule path.
	results := e.ExtractBatch(context.Background(), reqs, BatchOptions{Workers: 2, Rules: store})
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("warm request %d: %v", i, r.Err)
		}
		if !r.FromRule {
			t.Errorf("warm request %d bypassed the rule cache", i)
		}
	}
}

func TestExtractBatchMixedFailures(t *testing.T) {
	e := New(Options{})
	good := sitegen.LOC()
	reqs := []BatchRequest{
		{Site: good.Site, HTML: good.HTML},
		{Site: "bad.example", HTML: "<html><body>prose only</body></html>"},
		{Site: good.Site, HTML: good.HTML},
	}
	results := e.ExtractBatch(context.Background(), reqs, BatchOptions{Workers: 2})
	if results[0].Err != nil || results[2].Err != nil {
		t.Errorf("good pages failed: %v / %v", results[0].Err, results[2].Err)
	}
	if results[1].Err == nil {
		t.Error("object-free page succeeded")
	}
}

func TestExtractBatchCancellation(t *testing.T) {
	e := New(Options{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before dispatch
	reqs := batchPages(t, 2)
	results := e.ExtractBatch(ctx, reqs, BatchOptions{Workers: 1})
	undispatched := 0
	for i, r := range results {
		// Every page — dispatched and interrupted by the governor, or
		// never dispatched at all — reports the cancellation.
		if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("request %d: err = %v, want context.Canceled", i, r.Err)
		}
		if errors.Is(r.Err, ErrUndispatched) {
			undispatched++
		}
	}
	if undispatched == 0 {
		t.Error("no request was marked undispatched")
	}
}

func TestExtractBatchStaleRule(t *testing.T) {
	e := New(Options{})
	store := rules.NewStore()
	// Seed a rule that does not match the pages.
	if err := store.Put(rules.Rule{
		Site: "batch-a.example", SubtreePath: "html[1].body[2].div[9]", Separator: "li",
	}); err != nil {
		t.Fatal(err)
	}
	reqs := batchPages(t, 1)[:1] // one batch-a page
	results := e.ExtractBatch(context.Background(), reqs, BatchOptions{Workers: 1, Rules: store})
	if results[0].Err != nil {
		t.Fatalf("stale rule not recovered: %v", results[0].Err)
	}
	if results[0].FromRule {
		t.Error("stale rule claimed the fast path")
	}
	// The store must now hold a working rule.
	rule, err := store.Get("batch-a.example")
	if err != nil {
		t.Fatal(err)
	}
	if rule.SubtreePath == "html[1].body[2].div[9]" {
		t.Error("stale rule was not refreshed")
	}
}

// panicHeuristic stands in for a pipeline stage with a latent crash bug.
type panicHeuristic struct{}

func (panicHeuristic) Name() string                        { return "panic" }
func (panicHeuristic) Rank(*tagtree.Node) []subtree.Ranked { panic("pathological page") }

func TestExtractBatchIsolatesPanics(t *testing.T) {
	e := New(Options{Subtree: panicHeuristic{}})
	reqs := batchPages(t, 2)
	results := e.ExtractBatch(context.Background(), reqs, BatchOptions{Workers: 3})
	if len(results) != len(reqs) {
		t.Fatalf("results = %d, want %d", len(results), len(reqs))
	}
	for i, res := range results {
		if res.Err == nil {
			t.Fatalf("result %d: panic produced no error", i)
		}
		if !errors.Is(res.Err, ErrPanicked) {
			t.Errorf("result %d: err = %v, want ErrPanicked", i, res.Err)
		}
		if res.Site != reqs[i].Site {
			t.Errorf("result %d: site = %q, want %q", i, res.Site, reqs[i].Site)
		}
	}
}

func TestExtractBatchEmpty(t *testing.T) {
	e := New(Options{})
	if got := e.ExtractBatch(context.Background(), nil, BatchOptions{}); len(got) != 0 {
		t.Errorf("empty batch returned %d results", len(got))
	}
}
