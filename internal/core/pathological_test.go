package core

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"omini/internal/govern"
	"omini/internal/pathology"
	"omini/internal/rules"
	"omini/internal/sitegen"
	"omini/internal/subtree"
	"omini/internal/tagtree"
)

// TestPathologicalDepthLimit proves the stack-safety property: a
// 100k-deep page fails with the typed depth error on both the discovery
// path and the cached-rule replay path — never with a stack overflow.
func TestPathologicalDepthLimit(t *testing.T) {
	page := pathology.DeepNesting(100_000)
	e := New(Options{})

	_, err := e.Extract(page)
	var lim *govern.ErrLimitExceeded
	if !errors.As(err, &lim) || lim.Kind != govern.KindDepth {
		t.Fatalf("Extract err = %v, want ErrLimitExceeded{Kind: depth}", err)
	}

	rule := rules.Rule{Site: "deep.example", SubtreePath: "html[1]", Separator: "div"}
	_, err = e.ExtractWithRule(page, rule)
	lim = nil
	if !errors.As(err, &lim) || lim.Kind != govern.KindDepth {
		t.Fatalf("ExtractWithRule err = %v, want ErrLimitExceeded{Kind: depth}", err)
	}
}

// gateHeuristic blocks the first ranked page until released, making
// "a page is in flight right now" observable to cancellation tests.
type gateHeuristic struct {
	started chan struct{}
	release chan struct{}
	once    sync.Once
}

func (g *gateHeuristic) Name() string { return "gate" }

func (g *gateHeuristic) Rank(root *tagtree.Node) []subtree.Ranked {
	g.once.Do(func() { close(g.started) })
	<-g.release
	return subtree.Compound().Rank(root)
}

// TestPathologicalBatchMidFlightCancel cancels a batch while a page is
// provably in flight and checks the contract: results stay in input
// order with sites echoed, the interrupted page reports the
// cancellation (not ErrUndispatched), and everything never handed to a
// worker reports ErrUndispatched.
func TestPathologicalBatchMidFlightCancel(t *testing.T) {
	gate := &gateHeuristic{started: make(chan struct{}), release: make(chan struct{})}
	e := New(Options{Subtree: gate})
	page := sitegen.LOC()
	reqs := make([]BatchRequest, 8)
	for i := range reqs {
		reqs[i] = BatchRequest{Site: string(rune('a'+i)) + ".example", HTML: page.HTML}
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	resc := make(chan []BatchResult, 1)
	go func() { resc <- e.ExtractBatch(ctx, reqs, BatchOptions{Workers: 1}) }()

	<-gate.started // request 0 is inside the pipeline now
	cancel()
	close(gate.release)
	results := <-resc

	if len(results) != len(reqs) {
		t.Fatalf("results = %d, want %d", len(results), len(reqs))
	}
	undispatched := 0
	for i, r := range results {
		if r.Site != reqs[i].Site {
			t.Errorf("result %d: site %q, want %q (input order broken)", i, r.Site, reqs[i].Site)
		}
		if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("result %d: err = %v, want context.Canceled", i, r.Err)
		}
		if errors.Is(r.Err, ErrUndispatched) {
			undispatched++
		}
	}
	if errors.Is(results[0].Err, ErrUndispatched) {
		t.Error("in-flight page reported ErrUndispatched; want plain cancellation")
	}
	if undispatched != len(reqs)-1 {
		t.Errorf("undispatched = %d, want %d", undispatched, len(reqs)-1)
	}
}

// TestPathologicalBatchWatchdog wedges a page past its PageTimeout and
// checks the worker abandons it with a typed govern.ErrDeadline result
// while the batch itself survives.
func TestPathologicalBatchWatchdog(t *testing.T) {
	gate := &gateHeuristic{started: make(chan struct{}), release: make(chan struct{})}
	e := New(Options{Subtree: gate})
	page := sitegen.LOC()
	reqs := []BatchRequest{{Site: "stuck.example", HTML: page.HTML}}

	resc := make(chan []BatchResult, 1)
	go func() {
		resc <- e.ExtractBatch(context.Background(), reqs,
			BatchOptions{Workers: 1, PageTimeout: 30 * time.Millisecond})
	}()
	<-gate.started
	results := <-resc   // the watchdog, not the page, must end the wait
	close(gate.release) // let the abandoned goroutine exit

	if !errors.Is(results[0].Err, govern.ErrDeadline) {
		t.Fatalf("err = %v, want govern.ErrDeadline", results[0].Err)
	}
	if results[0].Site != "stuck.example" {
		t.Errorf("site = %q", results[0].Site)
	}
}

// TestPathologicalDeadlineMapsTyped drives a real (non-wedged) page into
// its per-page Deadline and checks the governor reports the typed error.
func TestPathologicalDeadlineMapsTyped(t *testing.T) {
	e := New(Options{Limits: Limits{Deadline: time.Nanosecond}})
	_, err := e.Extract(pathology.HugeTextNode(1 << 20))
	if !errors.Is(err, govern.ErrDeadline) {
		t.Fatalf("err = %v, want govern.ErrDeadline", err)
	}
}

// TestPathologicalCorpusTyped runs every generated pathological page
// through a default extractor: each must extract or fail with a typed,
// explainable error — never hang or panic.
func TestPathologicalCorpusTyped(t *testing.T) {
	e := New(Options{})
	for name, html := range pathology.Corpus() {
		name, html := name, html
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			_, err := e.Extract(html)
			if err == nil || errors.Is(err, ErrNoObjects) {
				return
			}
			var lim *govern.ErrLimitExceeded
			if errors.As(err, &lim) || errors.Is(err, govern.ErrDeadline) {
				return
			}
			t.Fatalf("untyped failure: %v", err)
		})
	}
}
