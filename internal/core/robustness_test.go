package core

import (
	"math/rand"
	"strings"
	"testing"

	"omini/internal/sitegen"
)

// Failure injection: real crawls deliver truncated transfers, mid-tag
// cuts, duplicated fragments and binary garbage. The pipeline must never
// panic on any input — it either extracts something or returns an error.

// mutate applies a deterministic corruption to a page.
func mutate(kind int, html string, rng *rand.Rand) string {
	if len(html) == 0 {
		return html
	}
	switch kind {
	case 0: // truncate at an arbitrary byte (mid-tag cuts included)
		return html[:rng.Intn(len(html))]
	case 1: // drop a random slice from the middle
		a := rng.Intn(len(html))
		b := a + rng.Intn(len(html)-a)
		return html[:a] + html[b:]
	case 2: // duplicate a fragment (repeated-content pathology)
		a := rng.Intn(len(html))
		b := a + rng.Intn(len(html)-a)
		return html[:b] + html[a:b] + html[b:]
	case 3: // strip all structural end tags (keep raw-text closers, which
		// even 2000-era authoring tools emitted — an unclosed <title>
		// legitimately swallows the document)
		var sb strings.Builder
		for i := 0; i < len(html); i++ {
			if html[i] == '<' && i+1 < len(html) && html[i+1] == '/' {
				end := strings.IndexByte(html[i:], '>')
				if end < 0 {
					sb.WriteString(html[i:])
					break
				}
				name := strings.ToLower(strings.TrimSpace(html[i+2 : i+end]))
				switch name {
				case "title", "script", "style", "textarea":
					sb.WriteString(html[i : i+end+1])
				}
				i += end
				continue
			}
			sb.WriteByte(html[i])
		}
		return sb.String()
	case 4: // inject binary garbage at a random position
		pos := rng.Intn(len(html))
		return html[:pos] + "\x00\xff\xfe<\x01>" + html[pos:]
	case 5: // uppercase everything (case-handling stress)
		return strings.ToUpper(html)
	default:
		return html
	}
}

func TestPipelineSurvivesCorruptedPages(t *testing.T) {
	pages := []sitegen.Page{sitegen.LOC(), sitegen.Canoe()}
	spec := sitegen.SiteSpec{
		Name: "robust.example", Domain: sitegen.DomainBooks,
		LayoutName: "item-table",
		Noise:      sitegen.NoiseSpec{UncloseTags: true, InlineHeader: true},
		MinItems:   5, MaxItems: 12,
	}
	pages = append(pages, spec.Pages(3)...)

	e := New(Options{})
	rng := rand.New(rand.NewSource(7))
	for _, page := range pages {
		for kind := 0; kind < 6; kind++ {
			for round := 0; round < 5; round++ {
				corrupted := mutate(kind, page.HTML, rng)
				res, err := e.Extract(corrupted)
				if err != nil {
					continue // clean refusal is acceptable
				}
				if res == nil || res.Separator == "" {
					t.Errorf("%s kind=%d: nil/empty result without error", page.Name, kind)
				}
			}
		}
	}
}

// Stripping end tags must still extract the list when the layout relies on
// implied closure (the tidy substrate's whole purpose).
func TestPipelineOnEndTagFreePage(t *testing.T) {
	spec := sitegen.SiteSpec{
		Name: "tagsoup.example", Domain: sitegen.DomainBooks,
		LayoutName: "row-table", MinItems: 8, MaxItems: 8,
	}
	page := spec.Page(0)
	rng := rand.New(rand.NewSource(1))
	soup := mutate(3, page.HTML, rng)
	if strings.Contains(soup, "</tr>") {
		t.Fatal("mutation left end tags behind")
	}
	res, err := New(Options{}).Extract(soup)
	if err != nil {
		t.Fatalf("Extract on end-tag-free page: %v", err)
	}
	if res.Separator != "tr" {
		t.Errorf("separator = %q, want tr", res.Separator)
	}
	if len(res.Objects) != page.Truth.ObjectCount {
		t.Errorf("objects = %d, want %d", len(res.Objects), page.Truth.ObjectCount)
	}
}

// Deeply nested input must not blow the stack.
func TestPipelineOnDeepNesting(t *testing.T) {
	var b strings.Builder
	b.WriteString("<html><body>")
	const depth = 2000
	for i := 0; i < depth; i++ {
		b.WriteString("<div>")
	}
	b.WriteString("bottom")
	for i := 0; i < depth; i++ {
		b.WriteString("</div>")
	}
	b.WriteString("<ul><li>a one</li><li>b two</li><li>c three</li></ul>")
	b.WriteString("</body></html>")
	if _, err := New(Options{}).Extract(b.String()); err != nil {
		// An error is fine; a panic is not (the test harness would catch it).
		t.Logf("deep nesting refused: %v", err)
	}
}

// Pages made of only chrome (no object list) must refuse cleanly, not
// fabricate objects from the navigation.
func TestPipelineOnChromeOnlyPage(t *testing.T) {
	html := `<html><body>
<table><tr><td><img src="/logo.gif"></td><td><a href="/">Home</a></td></tr></table>
<p>Welcome to our site. Please use the search box.</p>
<form action="/search"><input type="text" name="q"></form>
<p><a href="/about">About</a> - <a href="/contact">Contact</a></p>
</body></html>`
	res, err := New(Options{}).Extract(html)
	if err != nil {
		return // clean refusal
	}
	// If it extracts, confidence must flag the result as dubious.
	if c := res.Confidence(); c > 0.75 {
		t.Errorf("chrome-only page extracted with confidence %.3f: %d objects, sep %q",
			c, len(res.Objects), res.Separator)
	}
}
