package core

// Confidence scoring implements the self-evaluation hook the paper lists
// as future work ("the automation of evaluation process and incorporation
// of feedback-based refinement of object extraction"): a score in [0,1]
// summarizing how much the extraction should be trusted, computable with
// no ground truth. Downstream aggregation services use it to decide when
// to accept a result, when to re-learn a cached rule, and when to flag a
// site for inspection.

// Confidence rates the extraction from internal evidence:
//
//   - Separator agreement: the compound probability of the chosen tag and
//     its margin over the runner-up. A tag every heuristic ranked first is
//     near-certain; a coin-flip between two candidates is not.
//   - Object yield: one object (or none) means the page likely holds no
//     object list; a healthy list has several conforming objects.
//   - Refinement attrition: when most candidates are discarded as
//     non-conforming, the separator probably cut the page badly.
func (r *Result) Confidence() float64 {
	if r == nil || len(r.Objects) == 0 {
		return 0
	}
	score := 1.0

	// Separator evidence.
	if len(r.Candidates) > 0 {
		top := r.Candidates[0].Prob
		margin := top
		if len(r.Candidates) > 1 {
			margin = top - r.Candidates[1].Prob
		}
		// Normalize the margin's influence: a decisive top candidate
		// keeps the factor near the top probability; a near-tie halves
		// confidence.
		score *= top * (0.5 + 0.5*clamp01(margin*4))
	}
	// A rule-replayed extraction has no candidate ranking; its evidence is
	// that the cached rule still matched, which leaves score at 1 here.

	// Object yield: fewer than three objects is weak evidence of a list.
	switch len(r.Objects) {
	case 1:
		score *= 0.4
	case 2:
		score *= 0.7
	}

	// Refinement attrition.
	if len(r.Raw) > 0 {
		kept := float64(len(r.Objects)) / float64(len(r.Raw))
		// Shedding a header/footer is normal; keeping less than half the
		// candidates is not.
		score *= 0.5 + 0.5*clamp01(kept*2-0.5)
	}
	return clamp01(score)
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
