package core

import (
	"testing"

	"omini/internal/combine"
	"omini/internal/sitegen"
)

func TestConfidenceOnCleanPages(t *testing.T) {
	e := New(Options{})
	for _, page := range []sitegen.Page{sitegen.LOC(), sitegen.Canoe()} {
		res, err := e.Extract(page.HTML)
		if err != nil {
			t.Fatalf("%s: %v", page.Name, err)
		}
		if c := res.Confidence(); c < 0.7 {
			t.Errorf("%s: confidence %.3f below 0.7 on a clean page", page.Name, c)
		}
	}
}

func TestConfidenceLowOnDegeneratePages(t *testing.T) {
	e := New(Options{})
	// A page with a single quasi-object should score poorly.
	res, err := e.Extract(`<html><body><div>` +
		`<p><a href="/only">The only thing here</a> one description</p>` +
		`<p>second paragraph of prose, not a result</p>` +
		`</div></body></html>`)
	if err != nil {
		t.Skip("degenerate page yielded no extraction at all (also fine)")
	}
	clean, err := e.Extract(sitegen.Canoe().HTML)
	if err != nil {
		t.Fatal(err)
	}
	if res.Confidence() >= clean.Confidence() {
		t.Errorf("degenerate page confidence %.3f not below clean page %.3f",
			res.Confidence(), clean.Confidence())
	}
}

func TestConfidenceBounds(t *testing.T) {
	var nilResult *Result
	if got := nilResult.Confidence(); got != 0 {
		t.Errorf("nil result confidence = %v", got)
	}
	if got := (&Result{}).Confidence(); got != 0 {
		t.Errorf("empty result confidence = %v", got)
	}
	// Any real extraction stays within [0,1].
	res, err := New(Options{}).Extract(sitegen.LOC().HTML)
	if err != nil {
		t.Fatal(err)
	}
	if c := res.Confidence(); c < 0 || c > 1 {
		t.Errorf("confidence %v out of [0,1]", c)
	}
}

func TestConfidenceMarginMatters(t *testing.T) {
	base := &Result{
		Candidates: []combine.Candidate{{Tag: "tr", Prob: 0.99}, {Tag: "td", Prob: 0.10}},
	}
	tied := &Result{
		Candidates: []combine.Candidate{{Tag: "tr", Prob: 0.99}, {Tag: "td", Prob: 0.98}},
	}
	// Give both the same healthy object yield.
	fill := func(r *Result) {
		res, err := New(Options{}).Extract(sitegen.Canoe().HTML)
		if err != nil {
			t.Fatal(err)
		}
		r.Objects = res.Objects
		r.Raw = res.Raw
	}
	fill(base)
	fill(tied)
	if base.Confidence() <= tied.Confidence() {
		t.Errorf("decisive ranking %.3f not above near-tie %.3f",
			base.Confidence(), tied.Confidence())
	}
}
