package core

import (
	"context"
	"testing"

	"omini/internal/obs"
	"omini/internal/sitegen"
)

// TestExtractBatchCountersMatchResults reconciles the metrics registry
// against a concurrent batch's actual results: an operator reading
// /metricsz must see exactly what the batch returned. Run under -race this
// also hammers the registry and span recorder from many workers at once.
func TestExtractBatchCountersMatchResults(t *testing.T) {
	reqs := batchPages(t, 20) // 60 good pages across 3 sites
	// Salt the batch with pages that fail discovery, so the error counter
	// has something to count.
	for i := 0; i < 5; i++ {
		reqs = append(reqs, BatchRequest{
			Site: "object-free.example",
			HTML: "<html><body><p>prose, no object list</p></body></html>",
		})
	}
	if len(reqs) < 50 {
		t.Fatalf("batch too small for a meaningful hammer: %d pages", len(reqs))
	}

	reg := obs.NewRegistry()
	ctx := obs.WithRegistry(context.Background(), reg)
	e := New(Options{})
	results := e.ExtractBatch(ctx, reqs, BatchOptions{Workers: 8})

	var errs, ruleHits int64
	for _, r := range results {
		if r.Err != nil {
			errs++
		}
		if r.FromRule {
			ruleHits++
		}
	}
	if errs == 0 {
		t.Fatal("salted pages produced no errors; the reconciliation below would be vacuous")
	}

	if got := reg.Get("core.batch_pages"); got != int64(len(reqs)) {
		t.Errorf("core.batch_pages = %d, want %d", got, len(reqs))
	}
	if got := reg.Get("core.batch_errors"); got != errs {
		t.Errorf("core.batch_errors = %d, want %d (observed errors)", got, errs)
	}
	if got := reg.Get("core.batch_rule_hits"); got != ruleHits {
		t.Errorf("core.batch_rule_hits = %d, want %d (observed rule hits)", got, ruleHits)
	}
	if got := reg.Get("core.batch_panics"); got != 0 {
		t.Errorf("core.batch_panics = %d, want 0", got)
	}

	// Every page parses, so the parse-phase histograms must have at least
	// one observation per request; discovery-only phases ran on every
	// non-rule page.
	for _, phase := range []string{"tokenize", "tidy", "build"} {
		if got := reg.Histogram(obs.PhaseSeries(phase)).Count(); got < int64(len(reqs)) {
			t.Errorf("phase %q count = %d, want >= %d", phase, got, len(reqs))
		}
	}
	discovery := int64(len(reqs)) - ruleHits
	for _, phase := range []string{"subtree", "separator"} {
		if got := reg.Histogram(obs.PhaseSeries(phase)).Count(); got < discovery {
			t.Errorf("phase %q count = %d, want >= %d", phase, got, discovery)
		}
	}
}

// TestExtractBatchTraceIsolation proves tracing is per-context: a traced
// batch records spans, an untraced extraction sharing the process does not
// see them.
func TestExtractBatchTraceIsolation(t *testing.T) {
	e := New(Options{})
	page := sitegen.LOC()

	ctx, rec := obs.WithTraceRecorder(context.Background(), false)
	res, err := e.ExtractContext(ctx, page.HTML)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil {
		t.Fatal("traced extraction returned no trace")
	}
	if res.Trace.SubtreePath != res.SubtreePath || res.Trace.Separator != res.Separator {
		t.Errorf("trace winner (%s, %s) != result (%s, %s)",
			res.Trace.SubtreePath, res.Trace.Separator, res.SubtreePath, res.Separator)
	}
	if len(rec.Spans()) == 0 {
		t.Error("trace recorder captured no spans")
	}

	plain, err := e.Extract(page.HTML)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Trace != nil {
		t.Error("untraced extraction carries a trace")
	}
}
