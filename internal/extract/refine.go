package extract

import (
	"sort"
)

// RefineOptions tune the object extraction refinement step. The zero value
// selects the defaults described below.
type RefineOptions struct {
	// MinCommonTagFraction is the fraction of the majority tag signature an
	// object must exhibit to survive (default 2/3): "an object that is
	// missing a common set of tags" is removed.
	MinCommonTagFraction float64
	// MaxUniqueTags is the number of tags an object may carry that appear
	// in fewer than half of the objects (default 4): "an object that has
	// too many unique tags" is removed. The default tolerates one embedded
	// sponsor block (table/tr/td/img) swept into an object during
	// construction without dropping the object.
	MaxUniqueTags int
	// MinSizeRatio and MaxSizeRatio bound object content size relative to
	// the median object (defaults 0.1 and 10): "if the object is too small
	// or too large it will be removed as well".
	MinSizeRatio float64
	MaxSizeRatio float64
}

func (o RefineOptions) withDefaults() RefineOptions {
	if o.MinCommonTagFraction == 0 {
		o.MinCommonTagFraction = 2.0 / 3
	}
	if o.MaxUniqueTags == 0 {
		o.MaxUniqueTags = 4
	}
	if o.MinSizeRatio == 0 {
		o.MinSizeRatio = 0.1
	}
	if o.MaxSizeRatio == 0 {
		o.MaxSizeRatio = 10
	}
	return o
}

// Refine removes candidate objects that do not conform to the structure of
// the majority of objects (Phase 3's Object Extraction Refinement): list
// headers and footers swept up by construction, chrome blocks, and
// candidates far smaller or larger than a typical object. With fewer than
// three candidates there is no meaningful majority and the input is
// returned unchanged.
func Refine(objects []Object, opts RefineOptions) []Object {
	if len(objects) < 3 {
		return objects
	}
	opts = opts.withDefaults()

	// Tag frequency across objects defines the majority structure: tags in
	// at least half of the objects are "common"; tags in fewer than half
	// are "unique" to their carriers.
	freq := make(map[string]int)
	tagSets := make([]map[string]bool, len(objects))
	for i, o := range objects {
		tagSets[i] = o.TagSet()
		for tag := range tagSets[i] {
			freq[tag]++
		}
	}
	half := (len(objects) + 1) / 2
	var commonTags []string
	for tag, n := range freq {
		if n >= half {
			commonTags = append(commonTags, tag)
		}
	}

	median := medianSize(objects)

	out := make([]Object, 0, len(objects))
	for i, o := range objects {
		if len(commonTags) > 0 {
			have := 0
			for _, tag := range commonTags {
				if tagSets[i][tag] {
					have++
				}
			}
			if float64(have) < opts.MinCommonTagFraction*float64(len(commonTags)) {
				continue // missing the common structure
			}
		}
		unique := 0
		for tag := range tagSets[i] {
			if freq[tag] < half {
				unique++
			}
		}
		if unique > opts.MaxUniqueTags {
			continue // too much structure of its own
		}
		if median > 0 {
			size := float64(o.Size())
			if size < opts.MinSizeRatio*median || size > opts.MaxSizeRatio*median {
				continue // far from the typical object size
			}
		}
		out = append(out, o)
	}
	return out
}

// medianSize returns the median content size of the objects.
func medianSize(objects []Object) float64 {
	sizes := make([]int, len(objects))
	for i, o := range objects {
		sizes[i] = o.Size()
	}
	sort.Ints(sizes)
	n := len(sizes)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return float64(sizes[n/2])
	}
	return float64(sizes[n/2-1]+sizes[n/2]) / 2
}
