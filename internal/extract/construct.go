// Package extract implements Phase 3 of the Omini pipeline: candidate
// object construction — partitioning the object-rich subtree at the chosen
// separator tag — and object extraction refinement, which removes candidates
// that do not structurally conform to the majority of objects (list headers,
// footers, stray chrome).
package extract

import (
	"strings"

	"omini/internal/govern"
	"omini/internal/tagtree"
)

// Object is one extracted data object: a run of sibling nodes from the
// object-rich subtree.
type Object struct {
	// Nodes are the top-level sibling nodes making up the object, in
	// document order.
	Nodes []*tagtree.Node
}

// Text returns the object's visible text, with node texts joined by single
// spaces.
func (o Object) Text() string {
	parts := make([]string, 0, len(o.Nodes))
	for _, n := range o.Nodes {
		if t := strings.TrimSpace(n.InnerText()); t != "" {
			parts = append(parts, t)
		}
	}
	return strings.Join(parts, " ")
}

// Size returns the content size of the object in bytes.
func (o Object) Size() int {
	total := 0
	for _, n := range o.Nodes {
		total += n.NodeSize()
	}
	return total
}

// TagSet returns the set of tag names appearing anywhere in the object,
// the structural signature refinement compares.
func (o Object) TagSet() map[string]bool {
	set := make(map[string]bool)
	for _, n := range o.Nodes {
		n.Walk(func(v *tagtree.Node) bool {
			if !v.IsContent() {
				set[v.Tag] = true
			}
			return true
		})
	}
	return set
}

// dividerContentFraction is the share of the region's content below which
// separator occurrences are treated as empty markers rather than object
// parts. A true divider (<hr>, <br>) carries no content at all; the margin
// tolerates stray whitespace.
const dividerContentFraction = 0.05

// Construct builds candidate objects by partitioning the children of the
// subtree at occurrences of the separator tag (Section 3, Phase 3). The
// separator may play either of the roles the paper observes ("sometimes
// the separator tag sits between objects, and other times it is the root
// of the object or a part of the object"):
//
//   - Divider: when the separator occurrences are (near-)empty markers
//     (<hr> between Library of Congress records), objects are the runs of
//     siblings between consecutive separators, and the markers belong to
//     no object.
//   - Object opener: when the separator occurrences carry content (the
//     <table> that *is* a canoe.com news item, the <dt> that opens each
//     definition-list record), each occurrence starts an object that
//     extends — including following non-separator siblings such as the
//     record's <dd> — until the next occurrence.
//
// Content before the first separator is emitted as a candidate object too
// (a list header, typically) — Refine is responsible for dropping it.
func Construct(sub *tagtree.Node, sepTag string) []Object {
	objects, _ := ConstructGoverned(sub, sepTag, nil)
	return objects
}

// ConstructGoverned is Construct under a resource guard: the child
// partition polls the page context, and each flushed object is charged
// against the object budget, so a page that would partition into
// millions of objects fails typed instead of materializing them. A nil
// guard makes it identical to Construct.
func ConstructGoverned(sub *tagtree.Node, sepTag string, g *govern.Guard) ([]Object, error) {
	if sub == nil || sepTag == "" {
		return nil, nil
	}
	sepContent := 0
	sepCount := 0
	for _, c := range sub.Children {
		if err := g.Poll(); err != nil {
			return nil, err
		}
		if !c.IsContent() && c.Tag == sepTag {
			sepContent += c.NodeSize()
			sepCount++
		}
	}
	if sepCount == 0 {
		return nil, nil
	}
	divider := float64(sepContent) < dividerContentFraction*float64(sub.NodeSize())

	var (
		objects []Object
		current []*tagtree.Node
		err     error
	)
	flush := func() {
		if err != nil || len(current) == 0 {
			return
		}
		if err = g.Objects(1); err != nil {
			return
		}
		objects = append(objects, Object{Nodes: current})
		current = nil
	}
	for _, c := range sub.Children {
		if err != nil {
			return nil, err
		}
		isSep := !c.IsContent() && c.Tag == sepTag
		if isSep {
			flush()
			if !divider {
				current = append(current, c)
			}
			continue
		}
		current = append(current, c)
	}
	flush()
	if err != nil {
		return nil, err
	}
	return objects, nil
}
