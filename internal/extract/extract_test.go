package extract

import (
	"strings"
	"testing"

	"omini/internal/sitegen"
	"omini/internal/tagtree"
)

var _ = tagtree.Path // keep import used across edits

func subtreeOf(t *testing.T, page sitegen.Page) *tagtree.Node {
	t.Helper()
	root, err := tagtree.Parse(page.HTML)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	sub := tagtree.FindPath(root, page.Truth.SubtreePath)
	if sub == nil {
		t.Fatalf("truth path %q missing", page.Truth.SubtreePath)
	}
	return sub
}

// Divider-style construction: hr on the LOC page separates records and
// belongs to no object.
func TestConstructDividerStyle(t *testing.T) {
	page := sitegen.LOC()
	body := subtreeOf(t, page)
	objects := Construct(body, "hr")
	// 20 records + a leading header group (h1, i) + a trailing group.
	if len(objects) != page.Truth.ObjectCount+2 {
		t.Fatalf("got %d candidates, want %d records + header + footer",
			len(objects), page.Truth.ObjectCount)
	}
	for _, o := range objects {
		for _, n := range o.Nodes {
			if n.Tag == "hr" {
				t.Error("divider separator leaked into an object")
			}
		}
	}
	// The middle objects are the records: pre + a.
	rec := objects[1]
	if len(rec.Nodes) != 2 || rec.Nodes[0].Tag != "pre" || rec.Nodes[1].Tag != "a" {
		t.Errorf("record shape = %v", rec.Nodes)
	}
	if !strings.Contains(rec.Text(), "Beagle") {
		t.Errorf("record text = %q", rec.Text())
	}
}

// Opener-style construction: the news tables on canoe.com ARE the objects;
// each table opens an object that absorbs trailing siblings (the empty map,
// the refine-search form) until the next table.
func TestConstructOpenerStyle(t *testing.T) {
	page := sitegen.Canoe()
	form := subtreeOf(t, page)
	objects := Construct(form, "table")
	// A leading img/br group plus 13 table-opened objects.
	if len(objects) != 14 {
		t.Fatalf("got %d objects, want 14", len(objects))
	}
	for i, o := range objects[1:] {
		if o.Nodes[0].Tag != "table" {
			t.Errorf("object %d opens with %q, want table", i+1, o.Nodes[0].Tag)
		}
	}
	// The separator occurrences are included in (not between) objects.
	if objects[0].Nodes[0].Tag != "img" {
		t.Errorf("leading group starts with %q", objects[0].Nodes[0].Tag)
	}
}

// Opener-style construction keeps the separator node inside the object:
// each <dt> opens a record that carries its <dd>.
func TestConstructDtOpensRecord(t *testing.T) {
	root, err := tagtree.Parse(`<html><body><dl>` +
		`<dt>alpha</dt><dd>first definition body</dd>` +
		`<dt>beta</dt><dd>second definition body</dd>` +
		`<dt>gamma</dt><dd>third definition body</dd>` +
		`</dl></body></html>`)
	if err != nil {
		t.Fatal(err)
	}
	dl := root.FindAll("dl")[0]
	objects := Construct(dl, "dt")
	if len(objects) != 3 {
		t.Fatalf("got %d objects, want 3", len(objects))
	}
	for i, o := range objects {
		if len(o.Nodes) != 2 || o.Nodes[0].Tag != "dt" || o.Nodes[1].Tag != "dd" {
			t.Errorf("object %d = %v, want [dt dd]", i, o.Nodes)
		}
		if !strings.Contains(o.Text(), "definition body") {
			t.Errorf("object %d lost its dd text: %q", i, o.Text())
		}
	}
}

func TestConstructEdgeCases(t *testing.T) {
	page := sitegen.LOC()
	body := subtreeOf(t, page)
	if got := Construct(nil, "hr"); got != nil {
		t.Error("Construct(nil) != nil")
	}
	if got := Construct(body, ""); got != nil {
		t.Error("Construct with empty tag != nil")
	}
	if got := Construct(body, "nosuchtag"); got != nil {
		t.Error("Construct with absent separator != nil")
	}
}

// Refinement drops the header/footer candidates and keeps the records.
func TestRefineDropsChromeOnLOC(t *testing.T) {
	page := sitegen.LOC()
	body := subtreeOf(t, page)
	objects := Refine(Construct(body, "hr"), RefineOptions{})
	if len(objects) != page.Truth.ObjectCount {
		texts := make([]string, len(objects))
		for i, o := range objects {
			texts[i] = o.Text()[:min(40, len(o.Text()))]
		}
		t.Fatalf("refined to %d objects, want %d: %v",
			len(objects), page.Truth.ObjectCount, texts)
	}
	for _, o := range objects {
		if !strings.Contains(o.Text(), "Call number") {
			t.Errorf("non-record survived refinement: %q", o.Text())
		}
	}
}

// Refinement keeps the 12 news items and drops nav/map/form chrome on the
// canoe page.
func TestRefineDropsChromeOnCanoe(t *testing.T) {
	page := sitegen.Canoe()
	form := subtreeOf(t, page)
	objects := Refine(Construct(form, "table"), RefineOptions{})
	if len(objects) != page.Truth.ObjectCount {
		t.Fatalf("refined to %d objects, want %d", len(objects), page.Truth.ObjectCount)
	}
	for i, o := range objects {
		if set := o.TagSet(); !set["img"] || !set["font"] {
			t.Errorf("object %d lacks the news-item structure: %v", i, set)
		}
	}
}

func TestRefineFewObjectsPassThrough(t *testing.T) {
	root, err := tagtree.Parse(`<html><body><p>a</p><p>b</p></body></html>`)
	if err != nil {
		t.Fatal(err)
	}
	body := root.FindAll("body")[0]
	objects := Construct(body, "p")
	if got := Refine(objects, RefineOptions{}); len(got) != len(objects) {
		t.Errorf("refinement changed a %d-object set", len(objects))
	}
}

func TestRefineSizeBounds(t *testing.T) {
	// Ten similar items plus one enormous one; the giant must be dropped.
	var b strings.Builder
	b.WriteString(`<html><body>`)
	for i := 0; i < 10; i++ {
		b.WriteString(`<p><b>item</b> short description text</p>`)
	}
	b.WriteString(`<p><b>huge</b> ` + strings.Repeat("filler text ", 200) + `</p>`)
	b.WriteString(`</body></html>`)
	root, err := tagtree.Parse(b.String())
	if err != nil {
		t.Fatal(err)
	}
	body := root.FindAll("body")[0]
	objects := Construct(body, "p")
	if len(objects) != 11 {
		t.Fatalf("constructed %d, want 11", len(objects))
	}
	refined := Refine(objects, RefineOptions{})
	if len(refined) != 10 {
		t.Errorf("refined to %d, want 10 (giant dropped)", len(refined))
	}
}

func TestRefineUniqueTagLimit(t *testing.T) {
	// One candidate stuffed with tags nobody else has.
	var b strings.Builder
	b.WriteString(`<html><body>`)
	for i := 0; i < 8; i++ {
		b.WriteString(`<p><b>item</b> regular description here</p>`)
	}
	b.WriteString(`<p><table><tr><td><ul><li><em>odd</em> navigation chrome block</li></ul></td></tr></table></p>`)
	b.WriteString(`</body></html>`)
	root, err := tagtree.Parse(b.String())
	if err != nil {
		t.Fatal(err)
	}
	body := root.FindAll("body")[0]
	refined := Refine(Construct(body, "p"), RefineOptions{})
	for _, o := range refined {
		if o.TagSet()["table"] {
			t.Error("structurally alien candidate survived refinement")
		}
	}
}

func TestObjectAccessors(t *testing.T) {
	root, err := tagtree.Parse(`<html><body><p>hello <b>world</b></p><span>x</span></body></html>`)
	if err != nil {
		t.Fatal(err)
	}
	body := root.FindAll("body")[0]
	o := Object{Nodes: body.Children}
	if got := o.Text(); !strings.Contains(got, "hello") || !strings.Contains(got, "x") {
		t.Errorf("Text = %q", got)
	}
	// Whitespace collapses during tree construction: "hello" + "world" + "x".
	if got := o.Size(); got != len("hello")+len("world")+len("x") {
		t.Errorf("Size = %d", got)
	}
	set := o.TagSet()
	for _, tag := range []string{"p", "b", "span"} {
		if !set[tag] {
			t.Errorf("TagSet missing %q", tag)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Partition invariants: construction never loses, duplicates, or reorders
// the subtree's children — every non-divider child lands in exactly one
// object, in document order.
func TestConstructPartitionInvariants(t *testing.T) {
	pages := []sitegen.Page{sitegen.LOC(), sitegen.Canoe()}
	for _, page := range pages {
		sub := subtreeOf(t, page)
		for _, sep := range page.Truth.Separators {
			objects := Construct(sub, sep)
			seen := make(map[*tagtree.Node]bool)
			var flat []*tagtree.Node
			for _, o := range objects {
				for _, n := range o.Nodes {
					if seen[n] {
						t.Fatalf("%s/%s: node appears in two objects", page.Name, sep)
					}
					seen[n] = true
					flat = append(flat, n)
				}
			}
			// Every child is either in an object or a divider occurrence.
			for _, c := range sub.Children {
				if seen[c] {
					continue
				}
				if !c.IsContent() && c.Tag == sep {
					continue // divider-style separator stays outside
				}
				t.Errorf("%s/%s: child %v lost by construction", page.Name, sep, c.Tag)
			}
			// Document order is preserved.
			idx := func(n *tagtree.Node) int { return n.Index }
			for i := 1; i < len(flat); i++ {
				if idx(flat[i]) <= idx(flat[i-1]) {
					t.Fatalf("%s/%s: construction reordered children", page.Name, sep)
				}
			}
		}
	}
}

// Refinement only ever narrows the candidate set, preserving order.
func TestRefineSubsetInvariant(t *testing.T) {
	page := sitegen.Canoe()
	sub := subtreeOf(t, page)
	raw := Construct(sub, "table")
	refined := Refine(raw, RefineOptions{})
	if len(refined) > len(raw) {
		t.Fatal("refinement grew the object set")
	}
	j := 0
	for _, o := range refined {
		found := false
		for ; j < len(raw); j++ {
			if len(raw[j].Nodes) > 0 && len(o.Nodes) > 0 && raw[j].Nodes[0] == o.Nodes[0] {
				found = true
				j++
				break
			}
		}
		if !found {
			t.Fatal("refined object not drawn in-order from the raw set")
		}
	}
}
