package fetch

import (
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"omini/internal/sitegen"
)

// FaultyServer wraps a CorpusServer's page set behind a fault-injecting
// front end: the chaos harness for the resilience layer. Each request may
// be answered with an injected 500, a mid-stream disconnect, a truncated
// body, or added latency — the failure modes a live-web aggregator sees
// from slow and broken hosts. Faults are driven by a seeded RNG so runs
// are reproducible.
type FaultyServer struct {
	cfg    FaultConfig
	corpus *CorpusServer

	mu     sync.Mutex
	rng    *rand.Rand
	consec map[string]int // consecutive injected faults per path

	server   *http.Server
	listener net.Listener

	// injected fault tallies, for assertions and reports
	errors      atomic.Int64
	drops       atomic.Int64
	truncations atomic.Int64
	resets      atomic.Int64
	drips       atomic.Int64
	served      atomic.Int64
}

// FaultConfig tunes the injected failure mix. Rates are probabilities in
// [0, 1] and are tried in order: error, drop, truncate, reset, drip.
type FaultConfig struct {
	// ErrorRate injects HTTP 500 responses.
	ErrorRate float64
	// DropRate closes the connection before writing anything (the client
	// sees EOF or a connection reset).
	DropRate float64
	// TruncateRate writes headers promising the full body, sends half,
	// and cuts the connection (an unexpected EOF mid-body).
	TruncateRate float64
	// ResetRate hard-resets the connection (TCP RST via SO_LINGER 0)
	// before any response bytes: the client sees ECONNRESET rather than
	// a clean EOF — the signature of a crashed or firewalled host.
	ResetRate float64
	// SlowDripRate serves the correct full body, but trickled in
	// DripChunk-byte writes separated by DripDelay: the response is
	// eventually complete yet slow enough to trip client deadlines —
	// the classic overloaded-host failure a timeout must catch because
	// no error ever surfaces.
	SlowDripRate float64
	// DripChunk is the bytes written per drip (default 64).
	DripChunk int
	// DripDelay is the pause between drips (default 20ms).
	DripDelay time.Duration
	// MaxLatency adds a uniform random delay in [0, MaxLatency) to every
	// response, including faulty ones.
	MaxLatency time.Duration
	// MaxConsecutive caps the injected-fault streak per path: after this
	// many consecutive faults the next request for the path succeeds, so
	// failures stay transient (what the retry layer is built for) rather
	// than permanent. 0 means unlimited.
	MaxConsecutive int
	// Seed makes the fault sequence reproducible.
	Seed int64
}

// NewFaultyServer wraps the pages of corpus (which need not be started)
// behind a fault-injecting listener.
func NewFaultyServer(corpus *CorpusServer, cfg FaultConfig) *FaultyServer {
	return &FaultyServer{
		cfg:    cfg,
		corpus: corpus,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		consec: make(map[string]int),
	}
}

// Start binds a loopback listener and serves (sometimes faultily) until
// Close.
func (s *FaultyServer) Start() error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("fetch: faulty listen: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handle)
	srv := &http.Server{Handler: mux}

	s.mu.Lock()
	s.listener = ln
	s.server = srv
	s.mu.Unlock()

	go func() { _ = srv.Serve(ln) }()
	return nil
}

// BaseURL returns the server's root URL ("" before Start).
func (s *FaultyServer) BaseURL() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.listener == nil {
		return ""
	}
	return "http://" + s.listener.Addr().String()
}

// URL returns the full URL for a page once the server is started.
func (s *FaultyServer) URL(p sitegen.Page) string {
	return s.BaseURL() + pagePath(p)
}

// Close shuts the server down and releases the listener.
func (s *FaultyServer) Close() error {
	s.mu.Lock()
	srv := s.server
	s.server = nil
	s.listener = nil
	s.mu.Unlock()
	if srv == nil {
		return nil
	}
	return srv.Close()
}

// FaultCounts reports how many of each of the original fault kinds were
// injected and how many requests were served cleanly. Resets and drips
// are in Breakdown.
func (s *FaultyServer) FaultCounts() (errors, drops, truncations, served int64) {
	return s.errors.Load(), s.drops.Load(), s.truncations.Load(), s.served.Load()
}

// FaultBreakdown is the full injected-fault tally.
type FaultBreakdown struct {
	Errors      int64
	Drops       int64
	Truncations int64
	Resets      int64
	Drips       int64
	Served      int64
}

// Breakdown reports every fault tally, including the connection-reset
// and slow-drip modes.
func (s *FaultyServer) Breakdown() FaultBreakdown {
	return FaultBreakdown{
		Errors:      s.errors.Load(),
		Drops:       s.drops.Load(),
		Truncations: s.truncations.Load(),
		Resets:      s.resets.Load(),
		Drips:       s.drips.Load(),
		Served:      s.served.Load(),
	}
}

// fault is the per-request injection decision.
type fault int

const (
	faultNone fault = iota
	faultError
	faultDrop
	faultTruncate
	faultReset
	faultDrip
)

// pick rolls the fault dice for a path, honoring the consecutive-fault cap.
func (s *FaultyServer) pick(path string) (fault, time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var latency time.Duration
	if s.cfg.MaxLatency > 0 {
		latency = time.Duration(s.rng.Int63n(int64(s.cfg.MaxLatency)))
	}
	if s.cfg.MaxConsecutive > 0 && s.consec[path] >= s.cfg.MaxConsecutive {
		s.consec[path] = 0
		return faultNone, latency
	}
	r := s.rng.Float64()
	f := faultNone
	switch {
	case r < s.cfg.ErrorRate:
		f = faultError
	case r < s.cfg.ErrorRate+s.cfg.DropRate:
		f = faultDrop
	case r < s.cfg.ErrorRate+s.cfg.DropRate+s.cfg.TruncateRate:
		f = faultTruncate
	case r < s.cfg.ErrorRate+s.cfg.DropRate+s.cfg.TruncateRate+s.cfg.ResetRate:
		f = faultReset
	case r < s.cfg.ErrorRate+s.cfg.DropRate+s.cfg.TruncateRate+s.cfg.ResetRate+s.cfg.SlowDripRate:
		f = faultDrip
	}
	if f == faultNone {
		s.consec[path] = 0
	} else {
		s.consec[path]++
	}
	return f, latency
}

func (s *FaultyServer) handle(w http.ResponseWriter, r *http.Request) {
	f, latency := s.pick(r.URL.Path)
	if latency > 0 {
		time.Sleep(latency)
	}
	switch f {
	case faultError:
		s.errors.Add(1)
		http.Error(w, "injected upstream failure", http.StatusInternalServerError)
	case faultDrop:
		s.drops.Add(1)
		s.abort(w, nil)
	case faultTruncate:
		s.truncations.Add(1)
		s.corpus.mu.RLock()
		page, ok := s.corpus.pages[r.URL.Path]
		s.corpus.mu.RUnlock()
		if !ok {
			http.NotFound(w, r)
			return
		}
		s.abort(w, &page)
	case faultReset:
		s.resets.Add(1)
		s.reset(w)
	case faultDrip:
		s.drips.Add(1)
		s.drip(w, r)
	default:
		s.served.Add(1)
		s.corpus.handle(w, r)
	}
}

// abort hijacks the connection and closes it — immediately (page == nil,
// a dropped connection) or after promising the full body and sending half
// (a truncated transfer).
func (s *FaultyServer) abort(w http.ResponseWriter, page *sitegen.Page) {
	hj, ok := w.(http.Hijacker)
	if !ok {
		// Fall back to the abort panic; net/http drops the connection.
		panic(http.ErrAbortHandler)
	}
	conn, buf, err := hj.Hijack()
	if err != nil {
		panic(http.ErrAbortHandler)
	}
	defer conn.Close()
	if page == nil {
		return
	}
	fmt.Fprintf(buf, "HTTP/1.1 200 OK\r\nContent-Type: text/html; charset=utf-8\r\nContent-Length: %d\r\n\r\n", len(page.HTML))
	_, _ = io.WriteString(buf, page.HTML[:len(page.HTML)/2])
	_ = buf.Flush()
}

// reset hijacks the connection and sends a TCP RST (SO_LINGER 0 makes
// Close abort instead of FIN): the client's read fails with
// ECONNRESET before any response bytes arrive.
func (s *FaultyServer) reset(w http.ResponseWriter) {
	hj, ok := w.(http.Hijacker)
	if !ok {
		panic(http.ErrAbortHandler)
	}
	conn, _, err := hj.Hijack()
	if err != nil {
		panic(http.ErrAbortHandler)
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.SetLinger(0)
	}
	_ = conn.Close()
}

// drip serves the correct page, trickled: headers immediately, then the
// body in DripChunk-byte writes separated by DripDelay, each chunk
// flushed. The response completes eventually, so only a client-side
// deadline notices. The drip aborts early when the client gives up
// (request context cancelled) so slow responses don't pin handlers.
func (s *FaultyServer) drip(w http.ResponseWriter, r *http.Request) {
	s.corpus.mu.RLock()
	page, ok := s.corpus.pages[r.URL.Path]
	s.corpus.mu.RUnlock()
	if !ok {
		http.NotFound(w, r)
		return
	}
	chunk := s.cfg.DripChunk
	if chunk <= 0 {
		chunk = 64
	}
	delay := s.cfg.DripDelay
	if delay <= 0 {
		delay = 20 * time.Millisecond
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.Header().Set("Content-Length", fmt.Sprint(len(page.HTML)))
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	body := page.HTML
	for len(body) > 0 {
		n := chunk
		if n > len(body) {
			n = len(body)
		}
		if _, err := io.WriteString(w, body[:n]); err != nil {
			return
		}
		body = body[n:]
		if flusher != nil {
			flusher.Flush()
		}
		if len(body) == 0 {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-time.After(delay):
		}
	}
}
