package fetch

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"omini/internal/sitegen"
)

func TestFetchBasic(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		_, _ = w.Write([]byte("<html><body>hi</body></html>"))
	}))
	defer ts.Close()

	var f Fetcher
	body, err := f.Fetch(context.Background(), ts.URL+"/page")
	if err != nil {
		t.Fatalf("Fetch: %v", err)
	}
	if !strings.Contains(body, "hi") {
		t.Errorf("body = %q", body)
	}
	if hits.Load() != 1 {
		t.Errorf("hits = %d", hits.Load())
	}
}

func TestFetchCache(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		_, _ = w.Write([]byte("cached content"))
	}))
	defer ts.Close()

	f := Fetcher{CacheDir: t.TempDir()}
	for i := 0; i < 3; i++ {
		body, err := f.Fetch(context.Background(), ts.URL+"/a?b=1&c=2")
		if err != nil {
			t.Fatalf("Fetch %d: %v", i, err)
		}
		if body != "cached content" {
			t.Errorf("body = %q", body)
		}
	}
	if hits.Load() != 1 {
		t.Errorf("server hit %d times, want 1 (cache)", hits.Load())
	}
}

func TestFetchErrors(t *testing.T) {
	ts := httptest.NewServer(http.NotFoundHandler())
	defer ts.Close()
	var f Fetcher
	if _, err := f.Fetch(context.Background(), ts.URL+"/missing"); err == nil {
		t.Error("404 fetch succeeded")
	}
	if _, err := f.Fetch(context.Background(), "http://127.0.0.1:1/nope"); err == nil {
		t.Error("unreachable fetch succeeded")
	}
	if _, err := f.Fetch(context.Background(), "::bad-url::"); err == nil {
		t.Error("bad URL accepted")
	}
}

func TestFetchRespectsMaxBytes(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte(strings.Repeat("x", 1000)))
	}))
	defer ts.Close()
	f := Fetcher{MaxBytes: 100}
	body, err := f.Fetch(context.Background(), ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if len(body) != 100 {
		t.Errorf("body length = %d, want 100", len(body))
	}
}

func TestCorpusServerRoundTrip(t *testing.T) {
	srv := NewCorpusServer()
	loc := sitegen.LOC()
	canoe := sitegen.Canoe()
	srv.Add(loc, canoe)
	if err := srv.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer srv.Close()

	if got := len(srv.Paths()); got != 2 {
		t.Fatalf("paths = %d", got)
	}
	var f Fetcher
	body, err := f.Fetch(context.Background(), srv.URL(loc))
	if err != nil {
		t.Fatalf("Fetch: %v", err)
	}
	if body != loc.HTML {
		t.Error("served page differs from generated page")
	}
	if _, err := f.Fetch(context.Background(), srv.BaseURL()+"/no/such"); err == nil {
		t.Error("missing corpus page served")
	}
}

func TestCorpusServerCloseIdempotent(t *testing.T) {
	srv := NewCorpusServer()
	if err := srv.Close(); err != nil {
		t.Errorf("Close before Start: %v", err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

func TestSiteOf(t *testing.T) {
	tests := []struct{ give, want string }{
		{"/www.loc.example/loc-page-001", "www.loc.example"},
		{"www.loc.example/page", "www.loc.example"},
		{"/bare", "bare"},
		{"", ""},
	}
	for _, tt := range tests {
		if got := SiteOf(tt.give); got != tt.want {
			t.Errorf("SiteOf(%q) = %q, want %q", tt.give, got, tt.want)
		}
	}
}
