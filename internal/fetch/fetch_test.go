package fetch

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"omini/internal/resilience"
	"omini/internal/sitegen"
)

// fastRetry is a test retry policy with negligible backoff.
func fastRetry(attempts int) *resilience.RetryPolicy {
	return &resilience.RetryPolicy{
		MaxAttempts: attempts,
		BaseDelay:   time.Millisecond,
		MaxDelay:    2 * time.Millisecond,
		Stats:       resilience.NewStats(),
	}
}

func TestFetchBasic(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		_, _ = w.Write([]byte("<html><body>hi</body></html>"))
	}))
	defer ts.Close()

	var f Fetcher
	body, err := f.Fetch(context.Background(), ts.URL+"/page")
	if err != nil {
		t.Fatalf("Fetch: %v", err)
	}
	if !strings.Contains(body, "hi") {
		t.Errorf("body = %q", body)
	}
	if hits.Load() != 1 {
		t.Errorf("hits = %d", hits.Load())
	}
}

func TestFetchCache(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		_, _ = w.Write([]byte("cached content"))
	}))
	defer ts.Close()

	f := Fetcher{CacheDir: t.TempDir()}
	for i := 0; i < 3; i++ {
		body, err := f.Fetch(context.Background(), ts.URL+"/a?b=1&c=2")
		if err != nil {
			t.Fatalf("Fetch %d: %v", i, err)
		}
		if body != "cached content" {
			t.Errorf("body = %q", body)
		}
	}
	if hits.Load() != 1 {
		t.Errorf("server hit %d times, want 1 (cache)", hits.Load())
	}
}

func TestFetchErrors(t *testing.T) {
	ts := httptest.NewServer(http.NotFoundHandler())
	defer ts.Close()
	var f Fetcher
	if _, err := f.Fetch(context.Background(), ts.URL+"/missing"); err == nil {
		t.Error("404 fetch succeeded")
	}
	if _, err := f.Fetch(context.Background(), "http://127.0.0.1:1/nope"); err == nil {
		t.Error("unreachable fetch succeeded")
	}
	if _, err := f.Fetch(context.Background(), "::bad-url::"); err == nil {
		t.Error("bad URL accepted")
	}
}

func TestFetchRejectsOversizedBody(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		_, _ = w.Write([]byte(strings.Repeat("x", 1000)))
	}))
	defer ts.Close()
	f := Fetcher{MaxBytes: 100, Retry: fastRetry(3)}
	_, err := f.Fetch(context.Background(), ts.URL)
	if !errors.Is(err, ErrBodyTooLarge) {
		t.Fatalf("err = %v, want ErrBodyTooLarge", err)
	}
	// Oversize is permanent: the page will be just as big next attempt.
	if hits.Load() != 1 {
		t.Errorf("server hit %d times, want 1 (no retries)", hits.Load())
	}
}

func TestFetchAllowsBodyAtLimit(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte(strings.Repeat("x", 100)))
	}))
	defer ts.Close()
	f := Fetcher{MaxBytes: 100}
	body, err := f.Fetch(context.Background(), ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if len(body) != 100 {
		t.Errorf("body length = %d, want 100", len(body))
	}
}

func TestFetchRetriesTransient5xx(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) < 3 {
			w.WriteHeader(http.StatusBadGateway)
			return
		}
		_, _ = w.Write([]byte("<html><body>recovered</body></html>"))
	}))
	defer ts.Close()

	f := Fetcher{Retry: fastRetry(5)}
	body, err := f.Fetch(context.Background(), ts.URL+"/flaky")
	if err != nil {
		t.Fatalf("Fetch: %v", err)
	}
	if !strings.Contains(body, "recovered") {
		t.Errorf("body = %q", body)
	}
	if hits.Load() != 3 {
		t.Errorf("hits = %d, want 3 (two retries)", hits.Load())
	}
}

func TestFetchDoesNotRetryClientErrors(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusNotFound)
	}))
	defer ts.Close()

	f := Fetcher{Retry: fastRetry(5)}
	if _, err := f.Fetch(context.Background(), ts.URL+"/gone"); err == nil {
		t.Fatal("404 fetch succeeded")
	}
	if hits.Load() != 1 {
		t.Errorf("hits = %d, want 1 (404 is permanent)", hits.Load())
	}
}

func TestFetchRetriesTruncatedBody(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) == 1 {
			// Promise more bytes than delivered, then cut the connection:
			// the client sees an unexpected EOF mid-body.
			w.Header().Set("Content-Length", "1000")
			_, _ = w.Write([]byte("partial"))
			panic(http.ErrAbortHandler)
		}
		_, _ = w.Write([]byte("full body"))
	}))
	defer ts.Close()

	f := Fetcher{Retry: fastRetry(3)}
	body, err := f.Fetch(context.Background(), ts.URL+"/cut")
	if err != nil {
		t.Fatalf("Fetch: %v", err)
	}
	if body != "full body" {
		t.Errorf("body = %q", body)
	}
}

func TestFetchBreakerShortCircuits(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer ts.Close()

	f := Fetcher{
		Retry: fastRetry(1),
		Breakers: resilience.NewBreakerGroup(resilience.BreakerConfig{
			FailureThreshold: 3,
			Cooldown:         time.Hour,
			Stats:            resilience.NewStats(),
		}),
	}
	for i := 0; i < 3; i++ {
		if _, err := f.Fetch(context.Background(), ts.URL+"/down"); err == nil {
			t.Fatal("failing fetch succeeded")
		}
	}
	before := hits.Load()
	_, err := f.Fetch(context.Background(), ts.URL+"/down")
	if !errors.Is(err, resilience.ErrOpen) {
		t.Fatalf("err = %v, want ErrOpen", err)
	}
	if hits.Load() != before {
		t.Error("open breaker still hit the upstream")
	}
}

func TestFetchCacheWriteIsAtomic(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte("page body"))
	}))
	defer ts.Close()

	dir := t.TempDir()
	f := Fetcher{CacheDir: dir}
	if _, err := f.Fetch(context.Background(), ts.URL+"/p"); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".cache-") {
			t.Errorf("temp file %s left behind", e.Name())
		}
	}
	if len(entries) != 1 {
		t.Errorf("cache entries = %d, want 1", len(entries))
	}
}

func TestCachePathLongURLsDoNotCollide(t *testing.T) {
	f := Fetcher{CacheDir: t.TempDir()}
	prefix := "http://long.example/" + strings.Repeat("a", 300)
	p1 := f.cachePath(prefix + "?page=1")
	p2 := f.cachePath(prefix + "?page=2")
	if p1 == p2 {
		t.Fatalf("distinct long URLs share cache path %s", p1)
	}
	base := filepath.Base(p1)
	if len(base) > 230 {
		t.Errorf("cache name too long: %d bytes", len(base))
	}
	// Short URLs keep their readable, hashless names.
	if got := filepath.Base(f.cachePath("http://a.example/x")); strings.Contains(got, "-") &&
		!strings.Contains("http_a.example_x.html", got) {
		t.Errorf("short URL name unexpectedly altered: %s", got)
	}
}

func TestCorpusServerRoundTrip(t *testing.T) {
	srv := NewCorpusServer()
	loc := sitegen.LOC()
	canoe := sitegen.Canoe()
	srv.Add(loc, canoe)
	if err := srv.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer srv.Close()

	if got := len(srv.Paths()); got != 2 {
		t.Fatalf("paths = %d", got)
	}
	var f Fetcher
	body, err := f.Fetch(context.Background(), srv.URL(loc))
	if err != nil {
		t.Fatalf("Fetch: %v", err)
	}
	if body != loc.HTML {
		t.Error("served page differs from generated page")
	}
	if _, err := f.Fetch(context.Background(), srv.BaseURL()+"/no/such"); err == nil {
		t.Error("missing corpus page served")
	}
}

func TestCorpusServerCloseIdempotent(t *testing.T) {
	srv := NewCorpusServer()
	if err := srv.Close(); err != nil {
		t.Errorf("Close before Start: %v", err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

func TestSiteOf(t *testing.T) {
	tests := []struct{ give, want string }{
		{"/www.loc.example/loc-page-001", "www.loc.example"},
		{"www.loc.example/page", "www.loc.example"},
		{"/bare", "bare"},
		{"", ""},
	}
	for _, tt := range tests {
		if got := SiteOf(tt.give); got != tt.want {
			t.Errorf("SiteOf(%q) = %q, want %q", tt.give, got, tt.want)
		}
	}
}
