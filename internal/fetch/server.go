package fetch

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"

	"omini/internal/sitegen"
)

// CorpusServer serves generated corpus pages over real HTTP on a loopback
// listener, so the end-to-end experiments include genuine network reads —
// the "Read File" phase of Tables 16 and 17.
type CorpusServer struct {
	mu    sync.RWMutex
	pages map[string]sitegen.Page // keyed by /site/name path

	server   *http.Server
	listener net.Listener
}

// NewCorpusServer returns an empty server; add pages, then Start it.
func NewCorpusServer() *CorpusServer {
	return &CorpusServer{pages: make(map[string]sitegen.Page)}
}

// Add registers pages to be served. Safe to call before or after Start.
func (s *CorpusServer) Add(pages ...sitegen.Page) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, p := range pages {
		s.pages[pagePath(p)] = p
	}
}

// pagePath is the URL path a page is served under.
func pagePath(p sitegen.Page) string {
	return "/" + p.Site + "/" + p.Name
}

// URL returns the full URL for a page once the server is started.
func (s *CorpusServer) URL(p sitegen.Page) string {
	return s.BaseURL() + pagePath(p)
}

// BaseURL returns the server's root URL ("" before Start).
func (s *CorpusServer) BaseURL() string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.listener == nil {
		return ""
	}
	return "http://" + s.listener.Addr().String()
}

// Paths returns the registered page paths in sorted order.
func (s *CorpusServer) Paths() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	paths := make([]string, 0, len(s.pages))
	for p := range s.pages {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	return paths
}

// Start binds a loopback listener and serves pages until Close.
func (s *CorpusServer) Start() error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("fetch: listen: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handle)
	srv := &http.Server{Handler: mux}

	s.mu.Lock()
	s.listener = ln
	s.server = srv
	s.mu.Unlock()

	go func() {
		// Serve returns ErrServerClosed on Close; nothing to do either way.
		_ = srv.Serve(ln)
	}()
	return nil
}

func (s *CorpusServer) handle(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	page, ok := s.pages[r.URL.Path]
	s.mu.RUnlock()
	if !ok {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_, _ = io.WriteString(w, page.HTML)
}

// Close shuts the server down and releases the listener.
func (s *CorpusServer) Close() error {
	s.mu.Lock()
	srv := s.server
	s.server = nil
	s.listener = nil
	s.mu.Unlock()
	if srv == nil {
		return nil
	}
	return srv.Close()
}

// SiteOf extracts the site component from a corpus URL path, for rule-store
// keying.
func SiteOf(urlPath string) string {
	trimmed := strings.TrimPrefix(urlPath, "/")
	if i := strings.IndexByte(trimmed, '/'); i >= 0 {
		return trimmed[:i]
	}
	return trimmed
}
