package fetch

import (
	"context"
	"errors"
	"io"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"omini/internal/sitegen"
)

// A reset-mode fault is a hard TCP RST before any response bytes: the
// client sees a connection error (ECONNRESET on Linux), never a status.
func TestFaultyServerConnectionReset(t *testing.T) {
	corpus := NewCorpusServer()
	page := sitegen.Canoe()
	corpus.Add(page)
	faulty := NewFaultyServer(corpus, FaultConfig{ResetRate: 1})
	if err := faulty.Start(); err != nil {
		t.Fatal(err)
	}
	defer faulty.Close()

	resp, err := http.Get(faulty.URL(page))
	if err == nil {
		resp.Body.Close()
		t.Fatalf("reset-mode request succeeded with status %d, want connection error", resp.StatusCode)
	}
	if !errors.Is(err, syscall.ECONNRESET) && !errors.Is(err, io.EOF) && !os.IsTimeout(err) {
		// RST propagation varies by platform/timing; a connection-level
		// failure of any kind is the point — a clean HTTP response is not.
		t.Logf("reset surfaced as: %v", err)
	}
	if got := faulty.Breakdown().Resets; got != 1 {
		t.Errorf("Breakdown().Resets = %d, want 1", got)
	}
}

// Drip mode serves the complete, correct body — just slowly. A patient
// client gets the page; a deadline-bound client fails by timeout even
// though no error is ever sent. Both halves matter: the mode must not
// corrupt data, and it must be slow enough to exercise deadlines.
func TestFaultyServerSlowDrip(t *testing.T) {
	corpus := NewCorpusServer()
	page := sitegen.Canoe()
	corpus.Add(page)
	faulty := NewFaultyServer(corpus, FaultConfig{
		SlowDripRate: 1,
		DripChunk:    len(page.HTML)/10 + 1,
		DripDelay:    10 * time.Millisecond,
	})
	if err := faulty.Start(); err != nil {
		t.Fatal(err)
	}
	defer faulty.Close()

	// Patient client: the full body arrives intact.
	start := time.Now()
	resp, err := http.Get(faulty.URL(page))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("read dripped body: %v", err)
	}
	if string(body) != page.HTML {
		t.Fatalf("dripped body differs from page: got %d bytes, want %d", len(body), len(page.HTML))
	}
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Errorf("drip completed in %v; too fast to exercise client deadlines", elapsed)
	}

	// Deadline-bound client: the trickle outlasts the budget.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, faulty.URL(page), nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.DefaultClient.Do(req)
	if err == nil {
		_, err = io.ReadAll(resp.Body)
		resp.Body.Close()
	}
	if err == nil {
		t.Fatal("deadline-bound drip read succeeded, want timeout")
	}
	if !errors.Is(err, context.DeadlineExceeded) && !strings.Contains(err.Error(), "deadline") {
		t.Errorf("drip under deadline failed with %v, want deadline error", err)
	}
	if got := faulty.Breakdown().Drips; got != 2 {
		t.Errorf("Breakdown().Drips = %d, want 2", got)
	}
}
