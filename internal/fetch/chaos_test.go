package fetch

import (
	"context"
	"sync"
	"testing"
	"time"

	"omini/internal/core"
	"omini/internal/resilience"
	"omini/internal/sitegen"
)

// chaosSpecs defines ten synthetic sites across layouts and domains; with
// twenty pages each they form the 200-page chaos corpus.
func chaosSpecs() []sitegen.SiteSpec {
	layouts := []string{
		"row-table", "ul-record", "dl-record", "item-table", "para-record",
		"para-div", "div-card", "hr-record", "font-catalog", "row-table",
	}
	domains := []sitegen.Domain{
		sitegen.DomainBooks, sitegen.DomainNews, sitegen.DomainProducts,
		sitegen.DomainSearch, sitegen.DomainAuctions,
	}
	specs := make([]sitegen.SiteSpec, len(layouts))
	for i, layout := range layouts {
		specs[i] = sitegen.SiteSpec{
			Name:       "chaos-" + string(rune('a'+i)) + ".example",
			Domain:     domains[i%len(domains)],
			LayoutName: layout,
			MinItems:   5, MaxItems: 14,
		}
	}
	return specs
}

// TestFaultyServerCapsConsecutiveFaults pins the property the chaos test
// relies on: with MaxConsecutive set, no page can fail more times in a row
// than the cap, so a retry budget of cap+1 attempts always converges.
func TestFaultyServerCapsConsecutiveFaults(t *testing.T) {
	corpus := NewCorpusServer()
	page := sitegen.Canoe()
	corpus.Add(page)
	faulty := NewFaultyServer(corpus, FaultConfig{
		ErrorRate:      1.0, // every roll is a fault...
		MaxConsecutive: 2,   // ...but streaks are capped at 2
		Seed:           1,
	})
	if err := faulty.Start(); err != nil {
		t.Fatal(err)
	}
	defer faulty.Close()

	f := Fetcher{Retry: fastRetry(3)}
	for i := 0; i < 5; i++ {
		body, err := f.Fetch(context.Background(), faulty.URL(page))
		if err != nil {
			t.Fatalf("fetch %d: %v", i, err)
		}
		if body != page.HTML {
			t.Fatalf("fetch %d: body differs", i)
		}
	}
	injErr, _, _, served := faulty.FaultCounts()
	if injErr != 10 || served != 5 { // 2 faults then 1 success, 5 times over
		t.Errorf("errors=%d served=%d, want 10/5", injErr, served)
	}
}

// TestChaosPipelineConvergesUnderFaults is the acceptance experiment for
// the resilience layer: a 200-page batch fetch+extract against an upstream
// injecting 30% transient failures (500s, dropped connections, truncated
// bodies) plus random latency must converge to >= 99% per-page success with
// zero process crashes.
func TestChaosPipelineConvergesUnderFaults(t *testing.T) {
	corpus := NewCorpusServer()
	var pages []sitegen.Page
	var sites []string
	for _, spec := range chaosSpecs() {
		for i := 0; i < 20; i++ {
			page := spec.Page(i)
			corpus.Add(page)
			pages = append(pages, page)
			sites = append(sites, spec.Name)
		}
	}
	if len(pages) != 200 {
		t.Fatalf("corpus = %d pages, want 200", len(pages))
	}

	faulty := NewFaultyServer(corpus, FaultConfig{
		ErrorRate:    0.15,
		DropRate:     0.08,
		TruncateRate: 0.07, // 30% injected failure in total
		MaxLatency:   2 * time.Millisecond,
		// Failures stay transient: at most 3 faults in a row per page.
		MaxConsecutive: 3,
		Seed:           42,
	})
	if err := faulty.Start(); err != nil {
		t.Fatal(err)
	}
	defer faulty.Close()

	stats := resilience.NewStats()
	f := Fetcher{
		// MaxAttempts must exceed the fault streak cap; no breaker here —
		// everything shares one loopback host, and a 30% failure rate is
		// exactly what retries (not short-circuiting) are for.
		Retry: &resilience.RetryPolicy{
			MaxAttempts:    5,
			BaseDelay:      time.Millisecond,
			MaxDelay:       8 * time.Millisecond,
			AttemptTimeout: 10 * time.Second,
			Stats:          stats,
		},
	}

	bodies := make([]string, len(pages))
	fetchErrs := make([]error, len(pages))
	var wg sync.WaitGroup
	sem := make(chan struct{}, 16)
	for i := range pages {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			bodies[i], fetchErrs[i] = f.Fetch(context.Background(), faulty.URL(pages[i]))
		}(i)
	}
	wg.Wait()

	reqs := make([]core.BatchRequest, 0, len(pages))
	fetched := 0
	for i := range pages {
		if fetchErrs[i] != nil {
			t.Logf("fetch %s: %v", pages[i].Name, fetchErrs[i])
			continue
		}
		if bodies[i] != pages[i].HTML {
			t.Errorf("page %s: fetched body differs from source (truncation leaked through)", pages[i].Name)
			continue
		}
		fetched++
		reqs = append(reqs, core.BatchRequest{Site: sites[i], HTML: bodies[i]})
	}

	results := core.New(core.Options{}).ExtractBatch(context.Background(), reqs, core.BatchOptions{Workers: 8})
	succeeded := 0
	for i, res := range results {
		if res.Err != nil {
			t.Logf("extract %s: %v", reqs[i].Site, res.Err)
			continue
		}
		succeeded++
	}

	injErr, injDrop, injTrunc, served := faulty.FaultCounts()
	t.Logf("injected: %d errors, %d drops, %d truncations; %d clean; retries=%d attempts=%d; fetched=%d/200 extracted=%d/200",
		injErr, injDrop, injTrunc, served,
		stats.Get("retry.retries"), stats.Get("retry.attempts"), fetched, succeeded)

	if injErr == 0 || injDrop == 0 || injTrunc == 0 {
		t.Errorf("fault injection too quiet: errors=%d drops=%d truncations=%d", injErr, injDrop, injTrunc)
	}
	if injected := injErr + injDrop + injTrunc; float64(injected)/float64(injected+served) < 0.2 {
		t.Errorf("injected failure share %d/%d below the intended ~30%%", injected, injected+served)
	}
	if succeeded < 198 { // the >= 99% bar on 200 pages
		t.Errorf("per-page success = %d/200, want >= 198", succeeded)
	}
}
