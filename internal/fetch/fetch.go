// Package fetch implements Phase 1's page acquisition: fetching pages over
// HTTP, caching them on disk, and serving the synthetic corpus from a local
// HTTP server — the stand-in for the paper's practice of downloading 2,000+
// pages and running every experiment against the local copies ("so as not
// to overload web sites and to be able to obtain consistent results").
package fetch

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// Fetcher retrieves pages over HTTP with an optional on-disk cache.
type Fetcher struct {
	// Client is the HTTP client; http.DefaultClient when nil.
	Client *http.Client
	// CacheDir enables the page cache when non-empty: every fetched URL is
	// stored under CacheDir and served from disk on repeat fetches.
	CacheDir string
	// MaxBytes caps the page size read (default 8 MiB).
	MaxBytes int64
}

// defaultMaxBytes bounds page reads; result pages of the era are far
// smaller.
const defaultMaxBytes = 8 << 20

// Fetch returns the page body for the URL, reading through the cache when
// one is configured.
func (f *Fetcher) Fetch(ctx context.Context, url string) (string, error) {
	if f.CacheDir != "" {
		if body, err := os.ReadFile(f.cachePath(url)); err == nil {
			return string(body), nil
		}
	}
	client := f.Client
	if client == nil {
		client = http.DefaultClient
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return "", fmt.Errorf("fetch: build request %s: %w", url, err)
	}
	resp, err := client.Do(req)
	if err != nil {
		return "", fmt.Errorf("fetch: get %s: %w", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("fetch: get %s: status %s", url, resp.Status)
	}
	limit := f.MaxBytes
	if limit <= 0 {
		limit = defaultMaxBytes
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, limit))
	if err != nil {
		return "", fmt.Errorf("fetch: read %s: %w", url, err)
	}
	if f.CacheDir != "" {
		if err := f.store(url, body); err != nil {
			return "", err
		}
	}
	return string(body), nil
}

// store writes a page into the cache.
func (f *Fetcher) store(url string, body []byte) error {
	path := f.cachePath(url)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("fetch: cache dir: %w", err)
	}
	if err := os.WriteFile(path, body, 0o644); err != nil {
		return fmt.Errorf("fetch: cache write: %w", err)
	}
	return nil
}

// cachePath maps a URL to a cache file path.
func (f *Fetcher) cachePath(url string) string {
	name := strings.NewReplacer("://", "_", "/", "_", "?", "_", "&", "_", ":", "_").Replace(url)
	if len(name) > 200 {
		name = name[:200]
	}
	return filepath.Join(f.CacheDir, name+".html")
}

// WithTimeout returns a derived context with the usual page-fetch deadline.
func WithTimeout(ctx context.Context) (context.Context, context.CancelFunc) {
	return context.WithTimeout(ctx, 30*time.Second)
}
