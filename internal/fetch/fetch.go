// Package fetch implements Phase 1's page acquisition: fetching pages over
// HTTP, caching them on disk, and serving the synthetic corpus from a local
// HTTP server — the stand-in for the paper's practice of downloading 2,000+
// pages and running every experiment against the local copies ("so as not
// to overload web sites and to be able to obtain consistent results").
//
// The live web the paper's aggregation services crawl is hostile: hosts
// stall, responses truncate, servers return transient 5xxs. The Fetcher
// therefore layers internal/resilience over plain HTTP — transient
// failures are retried with backoff, persistently failing hosts are
// short-circuited by a per-host breaker, and cache writes are atomic so a
// crash never leaves a truncated page behind.
package fetch

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"net/http"
	neturl "net/url"
	"os"
	"path/filepath"
	"strings"
	"time"

	"omini/internal/obs"
	"omini/internal/resilience"
)

// Fetcher retrieves pages over HTTP with an optional on-disk cache and
// optional fault tolerance. The zero value fetches once with no cache —
// exactly the seed behavior.
type Fetcher struct {
	// Client is the HTTP client; http.DefaultClient when nil.
	Client *http.Client
	// CacheDir enables the page cache when non-empty: every fetched URL is
	// stored under CacheDir and served from disk on repeat fetches.
	CacheDir string
	// MaxBytes caps the page size read (default 8 MiB).
	MaxBytes int64
	// Retry, when non-nil, retries transient failures (timeouts,
	// connection resets, truncated bodies, 5xx and 429 responses) with
	// exponential backoff. Nil fetches exactly once.
	Retry *resilience.RetryPolicy
	// Breakers, when non-nil, short-circuits hosts that keep failing: a
	// host whose breaker is open fails fast with resilience.ErrOpen
	// instead of burning attempts on a dead upstream.
	Breakers *resilience.BreakerGroup
}

// defaultMaxBytes bounds page reads; result pages of the era are far
// smaller.
const defaultMaxBytes = 8 << 20

// ErrBodyTooLarge marks a response body exceeding MaxBytes. The fetch
// fails — handing a silently truncated page to the extractor would
// make it "succeed" with objects cut mid-list — and the failure is
// permanent: the page will be just as big on the next attempt.
var ErrBodyTooLarge = errors.New("fetch: response body exceeds size limit")

// Fetch returns the page body for the URL, reading through the cache when
// one is configured and applying the Retry policy and host Breakers when
// they are set. Outcomes land in the context's metrics registry
// (fetch.cache_hits / fetch.cache_misses / fetch.success / fetch.failures),
// so a serving process shows its acquisition behavior on /metricsz.
func (f *Fetcher) Fetch(ctx context.Context, url string) (string, error) {
	reg := obs.RegistryFrom(ctx)
	if f.CacheDir != "" {
		if body, err := os.ReadFile(f.cachePath(url)); err == nil {
			reg.Add("fetch.cache_hits", 1)
			return string(body), nil
		}
		reg.Add("fetch.cache_misses", 1)
	}
	var breaker *resilience.Breaker
	if f.Breakers != nil {
		if host := hostOf(url); host != "" {
			breaker = f.Breakers.For(host)
		}
	}
	policy := f.Retry
	if policy == nil {
		policy = &resilience.RetryPolicy{MaxAttempts: 1}
	}
	var body []byte
	err := policy.Do(ctx, func(ctx context.Context) error {
		if breaker != nil && !breaker.Allow() {
			return resilience.Errorf("fetch: get %s: %w", url, resilience.ErrOpen)
		}
		var err error
		body, err = f.fetchOnce(ctx, url)
		if breaker != nil {
			// Permanent failures (4xx, bad URL) mean the host answered;
			// only transient ones count against it.
			switch {
			case err == nil:
				breaker.Success()
			case !resilience.IsPermanent(err):
				breaker.Failure()
			}
		}
		return err
	})
	if err != nil {
		reg.Add("fetch.failures", 1)
		return "", err
	}
	reg.Add("fetch.success", 1)
	if f.CacheDir != "" {
		if err := f.store(url, body); err != nil {
			return "", err
		}
	}
	return string(body), nil
}

// fetchOnce performs a single HTTP attempt, classifying the outcome for the
// retry policy: failures a retry cannot fix are marked permanent.
func (f *Fetcher) fetchOnce(ctx context.Context, url string) ([]byte, error) {
	client := f.Client
	if client == nil {
		client = http.DefaultClient
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, resilience.Errorf("fetch: build request %s: %w", url, err)
	}
	resp, err := client.Do(req)
	if err != nil {
		// Connection refused, reset, attempt timeout: all transient. The
		// retry policy itself stops when the caller's context is done.
		return nil, fmt.Errorf("fetch: get %s: %w", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		err := fmt.Errorf("fetch: get %s: status %s", url, resp.Status)
		if retryableStatus(resp.StatusCode) {
			return nil, err
		}
		return nil, resilience.Permanent(err)
	}
	limit := f.MaxBytes
	if limit <= 0 {
		limit = defaultMaxBytes
	}
	// Read one byte past the limit so an oversized body is detected
	// rather than silently truncated at exactly `limit` bytes.
	body, err := io.ReadAll(io.LimitReader(resp.Body, limit+1))
	if err != nil {
		// Truncated transfer or mid-stream disconnect: transient.
		return nil, fmt.Errorf("fetch: read %s: %w", url, err)
	}
	if int64(len(body)) > limit {
		obs.RegistryFrom(ctx).Add("fetch.too_large", 1)
		return nil, resilience.Permanent(fmt.Errorf("fetch: read %s: %w (limit %d bytes)", url, ErrBodyTooLarge, limit))
	}
	return body, nil
}

// retryableStatus reports whether a non-200 status is worth retrying:
// server-side failures and throttling, not client errors.
func retryableStatus(code int) bool {
	return code >= 500 || code == http.StatusTooManyRequests
}

// hostOf extracts the host a URL targets ("" when unparseable), the
// breaker-group key.
func hostOf(url string) string {
	u, err := neturl.Parse(url)
	if err != nil {
		return ""
	}
	return u.Host
}

// store writes a page into the cache atomically: the body lands in a temp
// file in the cache directory and is renamed into place, so a crash
// mid-write never leaves a truncated page that poisons future runs.
func (f *Fetcher) store(url string, body []byte) error {
	path := f.cachePath(url)
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("fetch: cache dir: %w", err)
	}
	tmp, err := os.CreateTemp(dir, ".cache-*")
	if err != nil {
		return fmt.Errorf("fetch: cache temp: %w", err)
	}
	if _, err := tmp.Write(body); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("fetch: cache write: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("fetch: cache close: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("fetch: cache rename: %w", err)
	}
	return nil
}

// cachePath maps a URL to a cache file path. Long names are truncated and
// suffixed with a hash of the full URL, so two long URLs sharing a prefix
// never collide on the same cache file.
func (f *Fetcher) cachePath(url string) string {
	name := strings.NewReplacer("://", "_", "/", "_", "?", "_", "&", "_", ":", "_").Replace(url)
	if len(name) > 200 {
		sum := sha256.Sum256([]byte(url))
		name = name[:200] + "-" + hex.EncodeToString(sum[:6])
	}
	return filepath.Join(f.CacheDir, name+".html")
}

// WithTimeout returns a derived context with the usual page-fetch deadline.
func WithTimeout(ctx context.Context) (context.Context, context.CancelFunc) {
	return context.WithTimeout(ctx, 30*time.Second)
}
