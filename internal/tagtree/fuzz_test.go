// External test package: the fuzz seeds come from the corpus generator,
// which depends on tagtree, so an internal test package would cycle.
package tagtree_test

import (
	"testing"

	"omini/internal/corpus"
	"omini/internal/pathology"
	"omini/internal/sitegen"
	"omini/internal/tagtree"
)

// FuzzParse checks Phase 1 end to end on arbitrary bytes: Parse must never
// panic, must never return a nil root without an error, and every tree it
// does return must satisfy the structural invariants (metrics matching a
// fresh recount, correct Parent/Index links, acyclic) that the single-pass
// arena builder promises.
func FuzzParse(f *testing.F) {
	f.Add(corpus.BenchPage("small").HTML)
	f.Add(sitegen.Canoe().HTML)
	f.Add(sitegen.LOC().HTML)
	for _, s := range []string{
		"",
		"just text, no tags at all",
		"<td><td><td>",
		"<p>a<p>b<p>c",
		"<html><html><body><body>x",
		"</div></div>",
		"<b><i>overlap</b></i>",
		"<table><tr><td>1<tr><td>2</table>",
		"<ul><li>a<li>b</ul><ol><li>c</ol>",
		"<script>a<b</script>after",
		"<!-- only a comment -->",
		"<br><br/><hr>",
		"text<div>more</div>text",
		"\x00<\x80>\xff",
	} {
		f.Add(s)
	}
	// Scaled-down pathological pages (see testdata/pathological): deep
	// nesting, attribute floods, entity runs, unclosed avalanches, and a
	// fat text node, at sizes a fuzz iteration can afford.
	f.Add(pathology.DeepNesting(500))
	f.Add(pathology.MegaAttributes(4, 16, 8))
	f.Add(pathology.EntityBomb(600))
	f.Add(pathology.UnclosedAvalanche(500))
	f.Add(pathology.HugeTextNode(4 << 10))
	f.Fuzz(func(t *testing.T, src string) {
		root, err := tagtree.Parse(src)
		if err != nil {
			if root != nil {
				t.Fatalf("Parse returned both a root and error %v", err)
			}
			return
		}
		if root == nil {
			t.Fatal("Parse returned nil root without an error")
		}
		if err := tagtree.Validate(root); err != nil {
			t.Fatalf("invalid tree for %q: %v", src, err)
		}
	})
}
