package tagtree

import (
	"errors"
	"fmt"
	"strings"

	"omini/internal/htmlparse"
	"omini/internal/tidy"
)

// ErrNoRoot is returned when a token stream contains no tag at all.
var ErrNoRoot = errors.New("tagtree: document has no tag nodes")

// Parse normalizes src (via package tidy) and builds its tag tree. This is
// the Phase-1 pipeline of the paper: syntactic normalization followed by tag
// tree construction.
func Parse(src string) (*Node, error) {
	return Build(tidy.NormalizeTokens(src))
}

// Build constructs a tag tree from a balanced token stream, such as the
// output of tidy.NormalizeTokens. Whitespace-only text between tags is
// dropped (it carries no content and would distort nodeSize); all other
// text becomes content nodes. If the stream has multiple top-level
// elements, they are wrapped in a synthetic "html" root.
func Build(toks []htmlparse.Token) (*Node, error) {
	var roots []*Node
	var stack []*Node

	appendChild := func(c *Node) {
		if len(stack) == 0 {
			roots = append(roots, c)
			return
		}
		p := stack[len(stack)-1]
		c.Parent = p
		p.Children = append(p.Children, c)
	}

	for i := range toks {
		tok := &toks[i]
		switch tok.Type {
		case htmlparse.StartTagToken:
			n := &Node{Tag: tok.Data, Attrs: tok.Attrs}
			appendChild(n)
			stack = append(stack, n)
		case htmlparse.EndTagToken:
			// The stream is balanced; pop the matching element. Guard
			// against malformed input anyway.
			for len(stack) > 0 {
				top := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if top.Tag == tok.Data {
					break
				}
			}
		case htmlparse.TextToken:
			text := collapseSpace(tok.Data)
			if text == "" {
				continue
			}
			appendChild(&Node{Text: text})
		}
	}

	var root *Node
	switch {
	case len(roots) == 0:
		return nil, ErrNoRoot
	case len(roots) == 1 && !roots[0].IsContent():
		root = roots[0]
	default:
		root = &Node{Tag: "html"}
		for _, r := range roots {
			r.Parent = root
			root.Children = append(root.Children, r)
		}
	}
	root.Index = 1
	root.finalize()
	return root, nil
}

// collapseSpace trims text and collapses internal whitespace runs to single
// spaces, the usual HTML rendering model. Returns "" for whitespace-only
// input.
func collapseSpace(s string) string {
	return strings.Join(strings.Fields(s), " ")
}

// Path returns the dot-notation path expression from the root to n, e.g.
// "html[1].body[2].form[4]" (the paper's HTML[1].body[2].form[4]).
// Content nodes are addressed as "#text[i]".
func Path(n *Node) string {
	if n == nil {
		return ""
	}
	var parts []string
	for v := n; v != nil; v = v.Parent {
		name := v.Tag
		if v.IsContent() {
			name = "#text"
		}
		parts = append(parts, fmt.Sprintf("%s[%d]", name, v.Index))
	}
	// Reverse.
	for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
		parts[i], parts[j] = parts[j], parts[i]
	}
	return strings.Join(parts, ".")
}

// FindPath resolves a dot-notation path expression against the tree rooted
// at root. The root segment must match the root node. It returns nil when
// the path does not resolve.
func FindPath(root *Node, path string) *Node {
	if root == nil || path == "" {
		return nil
	}
	segs := strings.Split(path, ".")
	name, idx, ok := parseSeg(segs[0])
	if !ok || name != root.Tag || idx != root.Index {
		return nil
	}
	cur := root
	for _, seg := range segs[1:] {
		name, idx, ok := parseSeg(seg)
		if !ok || idx < 1 || idx > len(cur.Children) {
			return nil
		}
		child := cur.Children[idx-1]
		childName := child.Tag
		if child.IsContent() {
			childName = "#text"
		}
		if childName != name {
			return nil
		}
		cur = child
	}
	return cur
}

// parseSeg splits a path segment "tag[3]" into its name and 1-based index.
// A segment without brackets implies index 1.
func parseSeg(seg string) (name string, idx int, ok bool) {
	open := strings.IndexByte(seg, '[')
	if open < 0 {
		return seg, 1, seg != ""
	}
	if !strings.HasSuffix(seg, "]") {
		return "", 0, false
	}
	name = seg[:open]
	numStr := seg[open+1 : len(seg)-1]
	if name == "" || numStr == "" {
		return "", 0, false
	}
	n := 0
	for i := 0; i < len(numStr); i++ {
		c := numStr[i]
		if c < '0' || c > '9' {
			return "", 0, false
		}
		n = n*10 + int(c-'0')
	}
	return name, n, true
}

// MinimalSubtree returns the minimal subtree (Definition 4) containing all
// of the given nodes: the deepest node that is an ancestor of every node in
// the set. It returns nil for an empty set.
func MinimalSubtree(nodes []*Node) *Node {
	if len(nodes) == 0 {
		return nil
	}
	anc := nodes[0]
	for _, n := range nodes[1:] {
		anc = commonAncestor(anc, n)
		if anc == nil {
			return nil
		}
	}
	return anc
}

// commonAncestor returns the deepest common ancestor of a and b.
func commonAncestor(a, b *Node) *Node {
	da, db := a.Depth(), b.Depth()
	for da > db {
		a = a.Parent
		da--
	}
	for db > da {
		b = b.Parent
		db--
	}
	for a != b {
		a, b = a.Parent, b.Parent
		if a == nil || b == nil {
			return nil
		}
	}
	return a
}
