package tagtree

import (
	"errors"
	"fmt"
	"strings"

	"omini/internal/govern"
	"omini/internal/htmlparse"
	"omini/internal/tidy"
)

// ErrNoRoot is returned when a token stream contains no tag at all.
var ErrNoRoot = errors.New("tagtree: document has no tag nodes")

// Parse normalizes src (via package tidy) and builds its tag tree. This is
// the Phase-1 pipeline of the paper: syntactic normalization followed by tag
// tree construction.
func Parse(src string) (*Node, error) {
	return Build(tidy.NormalizeTokens(src))
}

// arena allocates Nodes in fixed chunks so a whole tree costs a handful of
// allocations instead of one per node. Chunks are never reallocated, so the
// pointers handed out stay stable; a tree's nodes die together with the
// tree, which is exactly the lifetime model of the immutable tag tree.
type arena struct {
	chunk []Node
}

// next chunk sizes: grow geometrically, bounded so a pathological document
// cannot demand one giant allocation.
const (
	arenaMinChunk = 128
	arenaMaxChunk = 16384
)

func (a *arena) newNode() *Node {
	if len(a.chunk) == cap(a.chunk) {
		size := 2 * cap(a.chunk)
		if size < arenaMinChunk {
			size = arenaMinChunk
		}
		if size > arenaMaxChunk {
			size = arenaMaxChunk
		}
		a.chunk = make([]Node, 0, size)
	}
	a.chunk = a.chunk[:len(a.chunk)+1]
	return &a.chunk[len(a.chunk)-1]
}

// Build constructs a tag tree from a balanced token stream, such as the
// output of tidy.NormalizeTokens. Whitespace-only text between tags is
// dropped (it carries no content and would distort nodeSize); all other
// text becomes content nodes. If the stream has multiple top-level
// elements, they are wrapped in a synthetic "html" root.
//
// Nodes come from a chunked arena and the size/count metrics are computed
// in this single pass (folded parent-ward as each element closes), so
// construction performs no per-node allocation and no second finalize walk.
// tagtree.Validate checks the resulting invariants in tests.
func Build(toks []htmlparse.Token) (*Node, error) {
	return BuildGoverned(toks, nil)
}

// BuildGoverned is Build under a resource guard: every created node is
// charged against the node budget and the element stack is checked
// against the depth limit on each push. Later phases walk the tree
// recursively, so the depth bound here is what keeps their goroutine
// stacks finite on adversarially nested input. A nil guard makes it
// identical to Build.
func BuildGoverned(toks []htmlparse.Token, g *govern.Guard) (*Node, error) {
	ar := arena{}
	if est := len(toks); est > 0 {
		size := est/2 + 8
		if size > arenaMaxChunk {
			size = arenaMaxChunk
		}
		ar.chunk = make([]Node, 0, size)
	}
	var roots []*Node
	var stack []*Node

	appendChild := func(c *Node) {
		if len(stack) == 0 {
			roots = append(roots, c)
			return
		}
		p := stack[len(stack)-1]
		c.Parent = p
		c.Index = len(p.Children) + 1
		p.Children = append(p.Children, c)
	}
	// pop closes the top element, folding its finished metrics into its
	// parent on the stack.
	pop := func() *Node {
		top := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if len(stack) > 0 {
			p := stack[len(stack)-1]
			p.nodeSize += top.nodeSize
			p.tagCount += top.tagCount
		}
		return top
	}

	for i := range toks {
		tok := &toks[i]
		switch tok.Type {
		case htmlparse.StartTagToken:
			if err := g.Nodes(1); err != nil {
				return nil, err
			}
			if err := g.Depth(len(stack) + 1); err != nil {
				return nil, err
			}
			n := ar.newNode()
			n.Tag = tok.Data
			n.Attrs = tok.Attrs
			n.tagCount = 1
			appendChild(n)
			stack = append(stack, n)
		case htmlparse.EndTagToken:
			// The stream is balanced; pop the matching element. Guard
			// against malformed input anyway.
			for len(stack) > 0 {
				g.Poll()
				if pop().Tag == tok.Data {
					break
				}
			}
		case htmlparse.TextToken:
			text := collapseSpace(tok.Data)
			if text == "" {
				continue
			}
			if err := g.Nodes(1); err != nil {
				return nil, err
			}
			n := ar.newNode()
			n.Text = text
			n.nodeSize = len(text)
			n.tagCount = 1
			appendChild(n)
			// Content nodes never sit on the stack: fold immediately.
			if len(stack) > 0 {
				p := stack[len(stack)-1]
				p.nodeSize += n.nodeSize
				p.tagCount++
			}
		}
	}
	for len(stack) > 0 {
		g.Poll()
		pop()
	}

	var root *Node
	switch {
	case len(roots) == 0:
		return nil, ErrNoRoot
	case len(roots) == 1 && !roots[0].IsContent():
		root = roots[0]
	default:
		root = ar.newNode()
		root.Tag = "html"
		root.tagCount = 1
		root.Children = make([]*Node, len(roots))
		for i, r := range roots {
			g.Poll()
			r.Parent = root
			r.Index = i + 1
			root.Children[i] = r
			root.nodeSize += r.nodeSize
			root.tagCount += r.tagCount
		}
	}
	root.Index = 1
	return root, nil
}

// collapseSpace trims text and collapses internal whitespace runs to single
// spaces, the usual HTML rendering model. Returns "" for whitespace-only
// input. Text that is already collapsed ASCII — the overwhelmingly common
// case — is returned unchanged without allocating.
func collapseSpace(s string) string {
	prevSpace := true // a space at position 0 is a leading space
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == ' ':
			if prevSpace {
				return collapseSpaceSlow(s)
			}
			prevSpace = true
		case c == '\t' || c == '\n' || c == '\r' || c == '\f' || c == '\v' || c >= 0x80:
			// Other whitespace always needs rewriting; non-ASCII may hold
			// unicode spaces, which the slow path handles exactly.
			return collapseSpaceSlow(s)
		default:
			prevSpace = false
		}
	}
	if prevSpace {
		// Trailing space (or empty input) needs a trim.
		return collapseSpaceSlow(s)
	}
	return s
}

func collapseSpaceSlow(s string) string {
	return strings.Join(strings.Fields(s), " ")
}

// Path returns the dot-notation path expression from the root to n, e.g.
// "html[1].body[2].form[4]" (the paper's HTML[1].body[2].form[4]).
// Content nodes are addressed as "#text[i]".
func Path(n *Node) string {
	if n == nil {
		return ""
	}
	var parts []string
	for v := n; v != nil; v = v.Parent {
		name := v.Tag
		if v.IsContent() {
			name = "#text"
		}
		parts = append(parts, fmt.Sprintf("%s[%d]", name, v.Index))
	}
	// Reverse.
	for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
		parts[i], parts[j] = parts[j], parts[i]
	}
	return strings.Join(parts, ".")
}

// FindPath resolves a dot-notation path expression against the tree rooted
// at root. The root segment must match the root node. It returns nil when
// the path does not resolve.
func FindPath(root *Node, path string) *Node {
	if root == nil || path == "" {
		return nil
	}
	segs := strings.Split(path, ".")
	name, idx, ok := parseSeg(segs[0])
	if !ok || name != root.Tag || idx != root.Index {
		return nil
	}
	cur := root
	for _, seg := range segs[1:] {
		name, idx, ok := parseSeg(seg)
		if !ok || idx < 1 || idx > len(cur.Children) {
			return nil
		}
		child := cur.Children[idx-1]
		childName := child.Tag
		if child.IsContent() {
			childName = "#text"
		}
		if childName != name {
			return nil
		}
		cur = child
	}
	return cur
}

// parseSeg splits a path segment "tag[3]" into its name and 1-based index.
// A segment without brackets implies index 1.
func parseSeg(seg string) (name string, idx int, ok bool) {
	open := strings.IndexByte(seg, '[')
	if open < 0 {
		return seg, 1, seg != ""
	}
	if !strings.HasSuffix(seg, "]") {
		return "", 0, false
	}
	name = seg[:open]
	numStr := seg[open+1 : len(seg)-1]
	if name == "" || numStr == "" {
		return "", 0, false
	}
	n := 0
	for i := 0; i < len(numStr); i++ {
		c := numStr[i]
		if c < '0' || c > '9' {
			return "", 0, false
		}
		n = n*10 + int(c-'0')
	}
	return name, n, true
}

// MinimalSubtree returns the minimal subtree (Definition 4) containing all
// of the given nodes: the deepest node that is an ancestor of every node in
// the set. It returns nil for an empty set.
func MinimalSubtree(nodes []*Node) *Node {
	if len(nodes) == 0 {
		return nil
	}
	anc := nodes[0]
	for _, n := range nodes[1:] {
		anc = commonAncestor(anc, n)
		if anc == nil {
			return nil
		}
	}
	return anc
}

// commonAncestor returns the deepest common ancestor of a and b.
func commonAncestor(a, b *Node) *Node {
	da, db := a.Depth(), b.Depth()
	for da > db {
		a = a.Parent
		da--
	}
	for db > da {
		b = b.Parent
		db--
	}
	for a != b {
		a, b = a.Parent, b.Parent
		if a == nil || b == nil {
			return nil
		}
	}
	return a
}
