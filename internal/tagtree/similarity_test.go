package tagtree

import (
	"testing"
	"testing/quick"
)

func TestSimilarityIdenticalStructure(t *testing.T) {
	a := mustParse(t, `<html><body><ul><li>first thing</li><li>second thing</li></ul></body></html>`)
	b := mustParse(t, `<html><body><ul><li>totally different</li><li>words here</li></ul></body></html>`)
	if got := Similarity(a, b); got != 1 {
		t.Errorf("same-structure similarity = %v, want 1", got)
	}
}

func TestSimilaritySelf(t *testing.T) {
	root := mustParse(t, simpleDoc)
	if got := Similarity(root, root); got != 1 {
		t.Errorf("self similarity = %v", got)
	}
}

func TestSimilarityDisjointStructure(t *testing.T) {
	a := mustParse(t, `<html><body><ul><li>a</li></ul></body></html>`)
	b := mustParse(t, `<html><body><dl><dt>a</dt><dd>b</dd></dl></body></html>`)
	got := Similarity(a, b)
	// html and body paths are shared; the rest is disjoint.
	if got <= 0 || got >= 0.8 {
		t.Errorf("disjoint-layout similarity = %v, want low but nonzero", got)
	}
}

func TestSimilarityGrowsWithSharedRows(t *testing.T) {
	base := mustParse(t, `<html><body><table><tr><td>a</td></tr><tr><td>b</td></tr></table></body></html>`)
	more := mustParse(t, `<html><body><table><tr><td>a</td></tr><tr><td>b</td></tr><tr><td>c</td></tr></table></body></html>`)
	redesign := mustParse(t, `<html><body><div><p>a</p><p>b</p></div></body></html>`)
	if Similarity(base, more) <= Similarity(base, redesign) {
		t.Errorf("row-count change (%v) not closer than redesign (%v)",
			Similarity(base, more), Similarity(base, redesign))
	}
}

func TestPathSignatureCounts(t *testing.T) {
	root := mustParse(t, `<html><body><ul><li>a</li><li>b</li><li>c</li></ul></body></html>`)
	sig := PathSignature(root)
	if sig["html"] != 1 || sig["html.body"] != 1 || sig["html.body.ul"] != 1 {
		t.Errorf("structural paths wrong: %v", sig)
	}
	if sig["html.body.ul.li"] != 3 {
		t.Errorf("li multiplicity = %d, want 3", sig["html.body.ul.li"])
	}
	if PathSignature(nil) == nil {
		t.Error("nil node should give an empty, non-nil signature")
	}
	if got := len(PathSignature(nil)); got != 0 {
		t.Errorf("nil node signature has %d entries", got)
	}
}

func TestSignatureSimilarityEdgeCases(t *testing.T) {
	empty := Signature{}
	if got := empty.Similarity(Signature{}); got != 1 {
		t.Errorf("empty vs empty = %v, want 1", got)
	}
	some := Signature{"html": 1}
	if got := empty.Similarity(some); got != 0 {
		t.Errorf("empty vs nonempty = %v, want 0", got)
	}
	if got := some.Similarity(empty); got != 0 {
		t.Errorf("nonempty vs empty = %v, want 0", got)
	}
}

// Properties: similarity is symmetric and bounded in [0,1].
func TestSimilarityProperties(t *testing.T) {
	mk := func(counts []uint8) Signature {
		sig := make(Signature)
		for i, c := range counts {
			if c > 0 {
				sig[string(rune('a'+i%16))] = int(c%7) + 1
			}
		}
		return sig
	}
	f := func(a, b []uint8) bool {
		sa, sb := mk(a), mk(b)
		ab := sa.Similarity(sb)
		ba := sb.Similarity(sa)
		return ab == ba && ab >= 0 && ab <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRootAndTagNodes(t *testing.T) {
	root := mustParse(t, simpleDoc)
	pre := root.FindAll("pre")[0]
	if pre.Root() != root {
		t.Error("Root from deep node did not reach the root")
	}
	if root.Root() != root {
		t.Error("Root of root is not itself")
	}
	nodes := root.TagNodes()
	for _, n := range nodes {
		if n.IsContent() {
			t.Fatal("TagNodes returned a content node")
		}
	}
	// simpleDoc: html, head, title, body, h1, hr x2, pre x2 = 9 tag nodes.
	if len(nodes) != 9 {
		t.Errorf("TagNodes = %d, want 9", len(nodes))
	}
}

func TestWalkEarlyStop(t *testing.T) {
	root := mustParse(t, simpleDoc)
	visited := 0
	root.Walk(func(n *Node) bool {
		visited++
		return n.Tag != "head" // skip head's subtree
	})
	sawTitle := false
	root.Walk(func(n *Node) bool {
		if n.Tag == "title" {
			sawTitle = true
		}
		return n.Tag != "head"
	})
	if sawTitle {
		t.Error("Walk descended into a pruned subtree")
	}
	if visited == 0 {
		t.Error("Walk visited nothing")
	}
}

func TestMinimalSubtreeDisjointTrees(t *testing.T) {
	a := mustParse(t, `<html><body><p>x</p></body></html>`)
	b := mustParse(t, `<html><body><p>y</p></body></html>`)
	if got := MinimalSubtree([]*Node{a.FindAll("p")[0], b.FindAll("p")[0]}); got != nil {
		t.Errorf("common ancestor across disjoint trees = %v", got)
	}
}
