// Package tagtree implements the tag tree model of the paper's Section 2.2:
// a well-formed web document as a directed tree whose internal nodes are tag
// nodes and whose leaves are content nodes, together with the node metrics
// (fanout, nodeSize, subtreeSize, tagCount) and dot-notation path
// expressions (HTML[1].body[2].form[4]) the extraction heuristics consume.
package tagtree

import (
	"omini/internal/htmlparse"
)

// Node is a node of a tag tree. A node is either a tag node (Tag != "") or a
// content node (Tag == "", Text holds the content). Trees are immutable
// after construction; the size and count metrics are computed once by the
// builder and served from cache.
type Node struct {
	// Tag is the lower-case tag name, or "" for a content node.
	Tag string
	// Text is the content of a content node; empty for tag nodes.
	Text string
	// Attrs are the tag attributes in document order (tag nodes only).
	Attrs []htmlparse.Attr
	// Parent is the parent node, nil at the root.
	Parent *Node
	// Children are the child nodes in document order.
	Children []*Node
	// Index is the 1-based position of this node among its parent's
	// children, as used in path expressions; 1 for the root.
	Index int

	nodeSize int
	tagCount int
}

// IsContent reports whether n is a content (leaf) node.
func (n *Node) IsContent() bool { return n.Tag == "" }

// Fanout returns the number of children of n (0 for content nodes), the
// fanout(u) of the paper.
func (n *Node) Fanout() int { return len(n.Children) }

// NodeSize returns the content size of n in bytes: the length of the text
// for a content node, and the sum of the leaf content sizes reachable from n
// for a tag node — the nodeSize(u) of the paper.
func (n *Node) NodeSize() int { return n.nodeSize }

// SubtreeSize returns the size of the subtree anchored at n. By the paper's
// definition, subtreeSize(u) = nodeSize(u).
func (n *Node) SubtreeSize() int { return n.nodeSize }

// TagCount returns the number of nodes in the subtree anchored at n,
// counting n itself — the tagCount(u) of the paper (leaves count 1).
func (n *Node) TagCount() int { return n.tagCount }

// Root returns the root of the tree containing n.
func (n *Node) Root() *Node {
	for n.Parent != nil {
		n = n.Parent
	}
	return n
}

// IsAncestorOf reports whether there is a path n ==>* v, including n == v
// (the reflexive paths of the paper's Definition 2).
func (n *Node) IsAncestorOf(v *Node) bool {
	for v != nil {
		if v == n {
			return true
		}
		v = v.Parent
	}
	return false
}

// Depth returns the number of edges from the root to n.
func (n *Node) Depth() int {
	d := 0
	for p := n.Parent; p != nil; p = p.Parent {
		d++
	}
	return d
}

// Walk visits every node of the subtree anchored at n in document order
// (pre-order). It stops early if fn returns false for a node, skipping that
// node's descendants.
func (n *Node) Walk(fn func(*Node) bool) {
	if !fn(n) {
		return
	}
	for _, c := range n.Children {
		c.Walk(fn)
	}
}

// TagNodes returns every tag node in the subtree anchored at n, in document
// order, including n itself if it is a tag node. These are the candidate
// anchors for the subtree heuristics.
func (n *Node) TagNodes() []*Node {
	nodes := make([]*Node, 0, n.tagCount)
	n.Walk(func(v *Node) bool {
		if !v.IsContent() {
			nodes = append(nodes, v)
		}
		return true
	})
	return nodes
}

// ChildTags returns the tag-node children of n in document order.
func (n *Node) ChildTags() []*Node {
	out := make([]*Node, 0, len(n.Children))
	for _, c := range n.Children {
		if !c.IsContent() {
			out = append(out, c)
		}
	}
	return out
}

// ChildTagCounts returns, for each tag name appearing among n's children,
// the number of children with that name.
func (n *Node) ChildTagCounts() map[string]int {
	counts := make(map[string]int)
	for _, c := range n.Children {
		if !c.IsContent() {
			counts[c.Tag]++
		}
	}
	return counts
}

// MaxChildTagCount returns the highest appearance count of any child tag of
// n, and the tag that attains it (ties broken by document order of first
// appearance). Used by the LTC re-ranking step.
func (n *Node) MaxChildTagCount() (string, int) {
	counts := make(map[string]int)
	bestTag, best := "", 0
	for _, c := range n.Children {
		if c.IsContent() {
			continue
		}
		counts[c.Tag]++
		if counts[c.Tag] > best {
			best = counts[c.Tag]
			bestTag = c.Tag
		}
	}
	return bestTag, best
}

// Text nodes reachable from n, concatenated. Useful for object rendering.
func (n *Node) InnerText() string {
	var buf []byte
	n.Walk(func(v *Node) bool {
		if v.IsContent() {
			buf = append(buf, v.Text...)
		}
		return true
	})
	return string(buf)
}

// FindAll returns every tag node with the given name in the subtree
// anchored at n, in document order.
func (n *Node) FindAll(tag string) []*Node {
	var out []*Node
	n.Walk(func(v *Node) bool {
		if v.Tag == tag {
			out = append(out, v)
		}
		return true
	})
	return out
}

// finalize recomputes the cached metrics for the subtree anchored at n and
// assigns child indexes. The builder computes metrics in its single pass;
// finalize remains for tests that hand-assemble trees.
func (n *Node) finalize() {
	if n.IsContent() {
		n.nodeSize = len(n.Text)
		n.tagCount = 1
		return
	}
	n.nodeSize = 0
	n.tagCount = 1
	for i, c := range n.Children {
		c.Index = i + 1
		c.finalize()
		n.nodeSize += c.nodeSize
		n.tagCount += c.tagCount
	}
}
