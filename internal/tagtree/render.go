package tagtree

import (
	"fmt"
	"strings"
)

// RenderOptions control the ASCII rendering of a tag tree.
type RenderOptions struct {
	// MaxDepth limits rendering depth; 0 means unlimited.
	MaxDepth int
	// ShowText includes (truncated) content nodes.
	ShowText bool
	// ShowMetrics annotates each tag node with fanout/size/tagCount.
	ShowMetrics bool
	// TextLimit truncates rendered content to this many bytes (default 32).
	TextLimit int
}

// Render draws the subtree anchored at n as an indented ASCII tree, in the
// style of the paper's Figures 1, 2 and 5.
func Render(n *Node, opts RenderOptions) string {
	if opts.TextLimit == 0 {
		opts.TextLimit = 32
	}
	var b strings.Builder
	render(&b, n, "", true, 0, &opts)
	return b.String()
}

func render(b *strings.Builder, n *Node, prefix string, last bool, depth int, opts *RenderOptions) {
	connector := "+- "
	if depth == 0 {
		connector = ""
	} else if !last {
		connector = "|- "
	}
	b.WriteString(prefix)
	b.WriteString(connector)
	if n.IsContent() {
		text := n.Text
		if len(text) > opts.TextLimit {
			text = text[:opts.TextLimit] + "..."
		}
		fmt.Fprintf(b, "%q\n", text)
		return
	}
	b.WriteString(n.Tag)
	if opts.ShowMetrics {
		fmt.Fprintf(b, " (fanout=%d size=%d tags=%d)", n.Fanout(), n.NodeSize(), n.TagCount())
	}
	b.WriteByte('\n')
	if opts.MaxDepth > 0 && depth >= opts.MaxDepth {
		return
	}
	childPrefix := prefix
	if depth > 0 {
		if last {
			childPrefix += "   "
		} else {
			childPrefix += "|  "
		}
	}
	kids := n.Children
	if !opts.ShowText {
		kids = n.ChildTags()
	}
	for i, c := range kids {
		render(b, c, childPrefix, i == len(kids)-1, depth+1, opts)
	}
}

// Outline returns a compact single-line summary of n's children by tag,
// e.g. "form: table x13, map x1" — handy in experiment reports.
func Outline(n *Node) string {
	var b strings.Builder
	b.WriteString(n.Tag)
	b.WriteString(":")
	counts := make(map[string]int)
	var order []string
	for _, c := range n.ChildTags() {
		if counts[c.Tag] == 0 {
			order = append(order, c.Tag)
		}
		counts[c.Tag]++
	}
	for i, tag := range order {
		if i > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(&b, " %s x%d", tag, counts[tag])
	}
	return b.String()
}
