package tagtree

import (
	"strings"
	"testing"
)

const selectDoc = `<html><head><title>t</title></head><body>
<div class="nav top"><a href="/">Home</a><a href="/help">Help</a></div>
<form action="/s" id="results">
  <table width="100%"><tr><td><a href="/r/1" rel="bookmark">one</a></td></tr></table>
  <table width="100%"><tr><td><a href="/r/2">two</a></td></tr></table>
  <table class="ad"><tr><td>sponsored</td></tr></table>
</form>
<p><a href="/next" rel="next">Next</a></p>
</body></html>`

func selRoot(t *testing.T) *Node {
	t.Helper()
	return mustParse(t, selectDoc)
}

func texts(nodes []*Node) []string {
	out := make([]string, len(nodes))
	for i, n := range nodes {
		out[i] = strings.TrimSpace(n.InnerText())
	}
	return out
}

func TestSelectDescendant(t *testing.T) {
	root := selRoot(t)
	nodes, err := Select(root, "form a")
	if err != nil {
		t.Fatal(err)
	}
	if got := texts(nodes); len(got) != 2 || got[0] != "one" || got[1] != "two" {
		t.Errorf("form a = %v", got)
	}
}

func TestSelectChildCombinator(t *testing.T) {
	root := selRoot(t)
	// Direct table children of the form: 3 (including the ad).
	nodes, err := Select(root, "form > table")
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 3 {
		t.Errorf("form > table = %d nodes", len(nodes))
	}
	// But body > table matches nothing (tables sit inside the form).
	nodes, err = Select(root, "body > table")
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 0 {
		t.Errorf("body > table = %d nodes, want 0", len(nodes))
	}
}

func TestSelectClassAndID(t *testing.T) {
	root := selRoot(t)
	nodes, err := Select(root, "div.nav a")
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 2 {
		t.Errorf("div.nav a = %d", len(nodes))
	}
	// Multi-class attribute: .top also matches.
	if n, err := SelectFirst(root, "div.top"); err != nil || n == nil {
		t.Errorf("div.top = %v, %v", n, err)
	}
	form, err := SelectFirst(root, "form#results")
	if err != nil || form == nil || form.Tag != "form" {
		t.Fatalf("form#results = %v, %v", form, err)
	}
	if n, _ := SelectFirst(root, "form#nope"); n != nil {
		t.Error("form#nope matched")
	}
	if n, _ := SelectFirst(root, "table.ad"); n == nil {
		t.Error("table.ad missed")
	}
}

func TestSelectAttributes(t *testing.T) {
	root := selRoot(t)
	// Presence.
	nodes, err := Select(root, "a[rel]")
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 2 {
		t.Errorf("a[rel] = %d, want 2", len(nodes))
	}
	// Equality.
	n, err := SelectFirst(root, "a[rel=next]")
	if err != nil || n == nil {
		t.Fatalf("a[rel=next] = %v, %v", n, err)
	}
	if href, _ := nodeAttr(n, "href"); href != "/next" {
		t.Errorf("href = %q", href)
	}
	// Quoted value.
	if n, err := SelectFirst(root, `a[rel="next"]`); err != nil || n == nil {
		t.Errorf("quoted attr failed: %v, %v", n, err)
	}
}

func TestSelectWildcardAndNth(t *testing.T) {
	root := selRoot(t)
	all, err := Select(root, "form *")
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range all {
		if n.IsContent() {
			t.Fatal("wildcard matched a content node")
		}
	}
	second, err := SelectFirst(root, "form > table:nth(2)")
	if err != nil || second == nil {
		t.Fatalf("nth(2) = %v, %v", second, err)
	}
	if !strings.Contains(second.InnerText(), "two") {
		t.Errorf("nth(2) text = %q", second.InnerText())
	}
	if n, _ := SelectFirst(root, "form > table:nth(9)"); n != nil {
		t.Error("nth(9) matched")
	}
}

func TestSelectDocumentOrderAndDedup(t *testing.T) {
	root := selRoot(t)
	// "body a" via multiple ancestor paths must not duplicate matches.
	nodes, err := Select(root, "body a")
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[*Node]bool)
	for _, n := range nodes {
		if seen[n] {
			t.Fatal("duplicate match")
		}
		seen[n] = true
	}
	got := texts(nodes)
	want := []string{"Home", "Help", "one", "two", "Next"}
	if len(got) != len(want) {
		t.Fatalf("body a = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("match %d = %q, want %q (document order)", i, got[i], want[i])
		}
	}
}

func TestSelectorReuse(t *testing.T) {
	sel := MustCompile("form > table")
	root := selRoot(t)
	if len(sel.Match(root)) != 3 {
		t.Error("first use failed")
	}
	if len(sel.Match(root)) != 3 {
		t.Error("selector not reusable")
	}
	if sel.String() != "form > table" {
		t.Errorf("String = %q", sel.String())
	}
	if sel.First(nil) != nil {
		t.Error("First(nil) non-nil")
	}
}

func TestCompileErrors(t *testing.T) {
	for _, expr := range []string{
		"", ">", "a >", "> a", "a > > b", "div.", "div#", "a[", "a[]",
		"tr:nth(0)", "tr:nth(x)", "tr:nth(2", "a:hover", "di%v",
	} {
		if _, err := Compile(expr); err == nil {
			t.Errorf("Compile(%q) succeeded", expr)
		}
	}
}

func TestMustCompilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustCompile on bad input did not panic")
		}
	}()
	MustCompile(">")
}

func TestSelectCaseInsensitiveTags(t *testing.T) {
	root := selRoot(t)
	nodes, err := Select(root, "FORM A")
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 2 {
		t.Errorf("uppercase selector = %d matches", len(nodes))
	}
}
