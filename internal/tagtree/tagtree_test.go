package tagtree

import (
	"strings"
	"testing"
	"testing/quick"
)

const simpleDoc = `<html><head><title>Home Page</title></head>` +
	`<body><h1>Results</h1><hr><pre>item one</pre><hr><pre>item two</pre></body></html>`

func mustParse(t *testing.T, src string) *Node {
	t.Helper()
	root, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return root
}

func TestParseStructure(t *testing.T) {
	root := mustParse(t, simpleDoc)
	if root.Tag != "html" {
		t.Fatalf("root = %q, want html", root.Tag)
	}
	if got := len(root.ChildTags()); got != 2 {
		t.Fatalf("html has %d tag children, want 2 (head, body)", got)
	}
	head, body := root.Children[0], root.Children[1]
	if head.Tag != "head" || body.Tag != "body" {
		t.Fatalf("children = %q, %q", head.Tag, body.Tag)
	}
	if head.Index != 1 || body.Index != 2 {
		t.Errorf("indexes = %d, %d, want 1, 2", head.Index, body.Index)
	}
}

func TestContentNodes(t *testing.T) {
	root := mustParse(t, simpleDoc)
	title := root.FindAll("title")
	if len(title) != 1 {
		t.Fatalf("found %d title nodes", len(title))
	}
	if len(title[0].Children) != 1 || !title[0].Children[0].IsContent() {
		t.Fatal("title should have one content child")
	}
	if got := title[0].Children[0].Text; got != "Home Page" {
		t.Errorf("title text = %q", got)
	}
}

func TestNodeSizeDefinition(t *testing.T) {
	// nodeSize(tag) = sum of leaf content sizes under it.
	root := mustParse(t, `<html><body><p>abcd</p><p>efghij</p></body></html>`)
	body := root.FindAll("body")[0]
	if got, want := body.NodeSize(), len("abcd")+len("efghij"); got != want {
		t.Errorf("body nodeSize = %d, want %d", got, want)
	}
	if body.SubtreeSize() != body.NodeSize() {
		t.Error("subtreeSize must equal nodeSize per the paper")
	}
	ps := root.FindAll("p")
	if ps[0].NodeSize() != 4 || ps[1].NodeSize() != 6 {
		t.Errorf("p sizes = %d, %d", ps[0].NodeSize(), ps[1].NodeSize())
	}
}

func TestTagCountDefinition(t *testing.T) {
	// tagCount(leaf) = 1; tagCount(tag) = 1 + sum(children).
	root := mustParse(t, `<html><body><p>x</p></body></html>`)
	// html(1) + body(1) + p(1) + text(1) = 4
	if got := root.TagCount(); got != 4 {
		t.Errorf("tagCount = %d, want 4", got)
	}
	p := root.FindAll("p")[0]
	if got := p.TagCount(); got != 2 {
		t.Errorf("p tagCount = %d, want 2", got)
	}
}

func TestFanout(t *testing.T) {
	root := mustParse(t, `<html><body><ul><li>a</li><li>b</li><li>c</li></ul></body></html>`)
	ul := root.FindAll("ul")[0]
	if got := ul.Fanout(); got != 3 {
		t.Errorf("ul fanout = %d, want 3", got)
	}
	li := root.FindAll("li")[0]
	if got := li.Children[0].Fanout(); got != 0 {
		t.Errorf("content fanout = %d, want 0", got)
	}
}

func TestPathExpression(t *testing.T) {
	root := mustParse(t, simpleDoc)
	title := root.FindAll("title")[0]
	if got := Path(title); got != "html[1].head[1].title[1]" {
		t.Errorf("Path(title) = %q", got)
	}
	body := root.FindAll("body")[0]
	if got := Path(body); got != "html[1].body[2]" {
		t.Errorf("Path(body) = %q", got)
	}
}

func TestFindPathRoundTrip(t *testing.T) {
	root := mustParse(t, simpleDoc)
	var nodes []*Node
	root.Walk(func(n *Node) bool {
		nodes = append(nodes, n)
		return true
	})
	for _, n := range nodes {
		got := FindPath(root, Path(n))
		if got != n {
			t.Errorf("FindPath(%q) = %v, want original node", Path(n), got)
		}
	}
}

func TestFindPathRejectsBadPaths(t *testing.T) {
	root := mustParse(t, simpleDoc)
	for _, path := range []string{
		"", "body[1]", "html[1].nosuch[1]", "html[1].head[9]",
		"html[1].head[0]", "html[2]", "html[1].head[1].title[1].#text[5]",
		"html[1].head[x]",
	} {
		if got := FindPath(root, path); got != nil {
			t.Errorf("FindPath(%q) = %v, want nil", path, got)
		}
	}
}

func TestIsAncestorOf(t *testing.T) {
	root := mustParse(t, simpleDoc)
	body := root.FindAll("body")[0]
	pre := root.FindAll("pre")[0]
	if !root.IsAncestorOf(pre) {
		t.Error("root should be ancestor of pre")
	}
	if !body.IsAncestorOf(body) {
		t.Error("ancestor relation is reflexive per Definition 2(i)")
	}
	if pre.IsAncestorOf(body) {
		t.Error("pre is not an ancestor of body")
	}
}

func TestMinimalSubtree(t *testing.T) {
	root := mustParse(t, simpleDoc)
	hrs := root.FindAll("hr")
	if len(hrs) != 2 {
		t.Fatalf("found %d hr nodes, want 2", len(hrs))
	}
	min := MinimalSubtree(hrs)
	if min == nil || min.Tag != "body" {
		t.Errorf("minimal subtree = %v, want body", min)
	}
	if got := MinimalSubtree(nil); got != nil {
		t.Errorf("MinimalSubtree(nil) = %v", got)
	}
	single := MinimalSubtree(hrs[:1])
	if single != hrs[0] {
		t.Error("minimal subtree of one node is the node itself")
	}
}

func TestChildTagCounts(t *testing.T) {
	root := mustParse(t, simpleDoc)
	body := root.FindAll("body")[0]
	counts := body.ChildTagCounts()
	if counts["hr"] != 2 || counts["pre"] != 2 || counts["h1"] != 1 {
		t.Errorf("counts = %v", counts)
	}
	tag, n := body.MaxChildTagCount()
	if n != 2 || (tag != "hr" && tag != "pre") {
		t.Errorf("max child tag = %q x%d", tag, n)
	}
}

func TestMaxChildTagCountTieBreaksByFirstAppearance(t *testing.T) {
	root := mustParse(t, `<html><body><hr><pre>a</pre><hr><pre>b</pre></body></html>`)
	body := root.FindAll("body")[0]
	tag, n := body.MaxChildTagCount()
	if tag != "hr" || n != 2 {
		t.Errorf("got %q x%d, want hr x2 (first to reach the max)", tag, n)
	}
}

func TestInnerText(t *testing.T) {
	root := mustParse(t, `<html><body><p>one <b>two</b> three</p></body></html>`)
	p := root.FindAll("p")[0]
	got := p.InnerText()
	for _, w := range []string{"one", "two", "three"} {
		if !strings.Contains(got, w) {
			t.Errorf("InnerText() = %q missing %q", got, w)
		}
	}
}

func TestWhitespaceOnlyTextDropped(t *testing.T) {
	root := mustParse(t, "<html><body>\n  <p>x</p>\n  </body></html>")
	body := root.FindAll("body")[0]
	for _, c := range body.Children {
		if c.IsContent() && strings.TrimSpace(c.Text) == "" {
			t.Error("whitespace-only content node survived")
		}
	}
}

func TestBuildErrNoRoot(t *testing.T) {
	if _, err := Build(nil); err != ErrNoRoot {
		t.Errorf("Build(nil) err = %v, want ErrNoRoot", err)
	}
}

func TestDepth(t *testing.T) {
	root := mustParse(t, simpleDoc)
	if root.Depth() != 0 {
		t.Errorf("root depth = %d", root.Depth())
	}
	title := root.FindAll("title")[0]
	if title.Depth() != 2 {
		t.Errorf("title depth = %d, want 2", title.Depth())
	}
}

func TestRender(t *testing.T) {
	root := mustParse(t, simpleDoc)
	out := Render(root, RenderOptions{ShowText: true, ShowMetrics: true})
	for _, want := range []string{"html", "body", "pre", `"item one"`} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	shallow := Render(root, RenderOptions{MaxDepth: 1})
	if strings.Contains(shallow, "pre") {
		t.Errorf("MaxDepth=1 rendered deep nodes:\n%s", shallow)
	}
}

func TestOutline(t *testing.T) {
	root := mustParse(t, simpleDoc)
	body := root.FindAll("body")[0]
	out := Outline(body)
	if !strings.Contains(out, "hr x2") || !strings.Contains(out, "pre x2") {
		t.Errorf("outline = %q", out)
	}
}

// Property: for every node, tagCount is 1 + sum of children's tagCounts and
// nodeSize is the sum of children's nodeSizes (or text length for leaves).
func TestMetricInvariants(t *testing.T) {
	root := mustParse(t, simpleDoc)
	root.Walk(func(n *Node) bool {
		if n.IsContent() {
			if n.TagCount() != 1 || n.NodeSize() != len(n.Text) {
				t.Errorf("leaf metrics wrong at %q", n.Text)
			}
			return true
		}
		wantTags, wantSize := 1, 0
		for _, c := range n.Children {
			wantTags += c.TagCount()
			wantSize += c.NodeSize()
		}
		if n.TagCount() != wantTags || n.NodeSize() != wantSize {
			t.Errorf("metrics wrong at %s: tags=%d want %d, size=%d want %d",
				Path(n), n.TagCount(), wantTags, n.NodeSize(), wantSize)
		}
		return true
	})
}

// Property: parsing arbitrary strings either errors (no tags) or yields a
// consistent tree whose every non-root node is indexed correctly.
func TestParsePropertyConsistency(t *testing.T) {
	f := func(s string) bool {
		root, err := Parse(s)
		if err != nil {
			return true
		}
		ok := true
		root.Walk(func(n *Node) bool {
			for i, c := range n.Children {
				if c.Parent != n || c.Index != i+1 {
					ok = false
				}
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
