package tagtree

// Structure similarity between tag trees, the signal behind wrapper
// evolution (the paper's Section 7): a cached rule or wrapper is safe to
// replay while the site's page structure stays put, and should be
// relearned when it drifts. Similarity is measured over the multiset of
// root-to-node tag paths — the same vocabulary the PP heuristic ranks —
// so pages that differ only in content score 1.0 and a redesigned layout
// scores near 0.

// Signature is a multiset of root-to-node tag paths.
type Signature map[string]int

// PathSignature computes the signature of the subtree anchored at n: for
// every tag node, the dot-joined tag path from n down to it, counted with
// multiplicity. Content nodes contribute nothing (content changes page to
// page; structure is what wrappers depend on).
func PathSignature(n *Node) Signature {
	sig := make(Signature)
	var walk func(v *Node, path string)
	walk = func(v *Node, path string) {
		sig[path]++
		for _, c := range v.Children {
			if !c.IsContent() {
				walk(c, path+"."+c.Tag)
			}
		}
	}
	if n != nil && !n.IsContent() {
		walk(n, n.Tag)
	}
	return sig
}

// Similarity returns the weighted Jaccard similarity of two signatures in
// [0,1]: Σ min(a_p, b_p) / Σ max(a_p, b_p) over all paths p. Two trees
// with identical structure score 1; trees sharing no paths score 0.
func (s Signature) Similarity(other Signature) float64 {
	if len(s) == 0 && len(other) == 0 {
		return 1
	}
	var minSum, maxSum int
	for p, a := range s {
		b := other[p]
		if a < b {
			minSum += a
			maxSum += b
		} else {
			minSum += b
			maxSum += a
		}
	}
	for p, b := range other {
		if _, seen := s[p]; !seen {
			maxSum += b
		}
	}
	if maxSum == 0 {
		return 0
	}
	return float64(minSum) / float64(maxSum)
}

// Similarity is the structural similarity of two trees (see
// Signature.Similarity).
func Similarity(a, b *Node) float64 {
	return PathSignature(a).Similarity(PathSignature(b))
}
