package tagtree

import (
	"fmt"
)

// Validate checks the structural invariants of the tree anchored at root
// against a fresh recount, independent of the metrics cached at build time:
//
//   - every child's Parent points back at its parent, and parent links are
//     acyclic (each node is visited exactly once from its unique parent);
//   - Index matches the child's 1-based position (1 at the root);
//   - nodeSize equals the sum of leaf text lengths in the subtree;
//   - tagCount equals the number of nodes in the subtree;
//   - content nodes carry no tag, no children and no attributes.
//
// It exists so tests of the arena/single-pass tree builder (and of every
// package that consumes trees) can prove the cached metrics are never
// silently corrupted. It returns the first violation found, nil when the
// tree is sound.
func Validate(root *Node) error {
	if root == nil {
		return fmt.Errorf("tagtree: Validate: nil root")
	}
	if root.Parent == nil && root.Index != 1 {
		return fmt.Errorf("tagtree: root %s has Index %d, want 1", Path(root), root.Index)
	}
	seen := make(map[*Node]bool)
	_, _, err := validate(root, seen)
	return err
}

// validate recomputes (nodeSize, tagCount) for n and checks them against
// the cached values.
func validate(n *Node, seen map[*Node]bool) (size, count int, err error) {
	if seen[n] {
		return 0, 0, fmt.Errorf("tagtree: node %s reachable twice (cycle or shared child)", Path(n))
	}
	seen[n] = true

	if n.IsContent() {
		if len(n.Children) > 0 {
			return 0, 0, fmt.Errorf("tagtree: content node %s has %d children", Path(n), len(n.Children))
		}
		if len(n.Attrs) > 0 {
			return 0, 0, fmt.Errorf("tagtree: content node %s has attributes", Path(n))
		}
		if n.NodeSize() != len(n.Text) {
			return 0, 0, fmt.Errorf("tagtree: content node %s nodeSize %d, want %d",
				Path(n), n.NodeSize(), len(n.Text))
		}
		if n.TagCount() != 1 {
			return 0, 0, fmt.Errorf("tagtree: content node %s tagCount %d, want 1", Path(n), n.TagCount())
		}
		return len(n.Text), 1, nil
	}

	size, count = 0, 1
	for i, c := range n.Children {
		if c.Parent != n {
			return 0, 0, fmt.Errorf("tagtree: child %d of %s has wrong Parent link", i+1, Path(n))
		}
		if c.Index != i+1 {
			return 0, 0, fmt.Errorf("tagtree: child %d of %s has Index %d", i+1, Path(n), c.Index)
		}
		cs, cc, err := validate(c, seen)
		if err != nil {
			return 0, 0, err
		}
		size += cs
		count += cc
	}
	if n.NodeSize() != size {
		return 0, 0, fmt.Errorf("tagtree: node %s nodeSize %d, fresh recount %d", Path(n), n.NodeSize(), size)
	}
	if n.TagCount() != count {
		return 0, 0, fmt.Errorf("tagtree: node %s tagCount %d, fresh recount %d", Path(n), n.TagCount(), count)
	}
	return size, count, nil
}
