package tagtree

import (
	"fmt"
	"strconv"
	"strings"
)

// A CSS-flavored selector language over tag trees, the ergonomic layer a
// downstream consumer expects from an HTML toolkit (this repository's
// substitute for goquery-style traversal). The dialect covers what result
// pages need:
//
//	table tr            descendant combinator
//	form > table        child combinator
//	div.card            class attribute shorthand
//	td#results          id attribute shorthand
//	a[href]             attribute presence
//	a[rel=next]         attribute equality
//	tr:nth(2)           the n-th match among its siblings (1-based)
//	*                   any tag
//
// Selectors are compiled once and matched against subtrees; Select is the
// one-call convenience.

// Selector is a compiled selector expression.
type Selector struct {
	steps []selStep
	src   string
}

// selStep is one compound selector plus the combinator that attaches it to
// the previous step.
type selStep struct {
	child bool // true: '>' child combinator; false: descendant
	simple
}

// simple is a compound simple-selector: tag plus attribute constraints.
type simple struct {
	tag   string // "" or "*" matches any tag
	attrs []attrCond
	nth   int // 0 = any; else 1-based index among sibling matches
}

type attrCond struct {
	name  string
	value string
	eq    bool // true: must equal value; false: presence only
}

// Compile parses a selector expression.
func Compile(expr string) (*Selector, error) {
	fields := strings.Fields(expr)
	if len(fields) == 0 {
		return nil, fmt.Errorf("tagtree: empty selector")
	}
	sel := &Selector{src: expr}
	child := false
	for _, f := range fields {
		if f == ">" {
			if child || len(sel.steps) == 0 {
				return nil, fmt.Errorf("tagtree: misplaced '>' in %q", expr)
			}
			child = true
			continue
		}
		s, err := parseSimple(f)
		if err != nil {
			return nil, err
		}
		sel.steps = append(sel.steps, selStep{child: child, simple: s})
		child = false
	}
	if child {
		return nil, fmt.Errorf("tagtree: dangling '>' in %q", expr)
	}
	return sel, nil
}

// MustCompile is Compile for selectors known valid at build time.
func MustCompile(expr string) *Selector {
	sel, err := Compile(expr)
	if err != nil {
		panic(err)
	}
	return sel
}

// String returns the source expression.
func (s *Selector) String() string { return s.src }

// parseSimple parses one compound selector like "div.card[align=left]:nth(2)".
func parseSimple(f string) (simple, error) {
	var s simple
	i := 0
	for i < len(f) && f[i] != '.' && f[i] != '#' && f[i] != '[' && f[i] != ':' {
		i++
	}
	s.tag = strings.ToLower(f[:i])
	if s.tag == "*" {
		s.tag = ""
	} else if !validTagName(s.tag) {
		return s, fmt.Errorf("tagtree: bad tag name in selector %q", f)
	}
	for i < len(f) {
		switch f[i] {
		case '.':
			j := i + 1
			for j < len(f) && f[j] != '.' && f[j] != '#' && f[j] != '[' && f[j] != ':' {
				j++
			}
			if j == i+1 {
				return s, fmt.Errorf("tagtree: empty class in %q", f)
			}
			s.attrs = append(s.attrs, attrCond{name: "class", value: f[i+1 : j], eq: true})
			i = j
		case '#':
			j := i + 1
			for j < len(f) && f[j] != '.' && f[j] != '#' && f[j] != '[' && f[j] != ':' {
				j++
			}
			if j == i+1 {
				return s, fmt.Errorf("tagtree: empty id in %q", f)
			}
			s.attrs = append(s.attrs, attrCond{name: "id", value: f[i+1 : j], eq: true})
			i = j
		case '[':
			end := strings.IndexByte(f[i:], ']')
			if end < 0 {
				return s, fmt.Errorf("tagtree: unterminated '[' in %q", f)
			}
			body := f[i+1 : i+end]
			if eq := strings.IndexByte(body, '='); eq >= 0 {
				s.attrs = append(s.attrs, attrCond{
					name:  strings.ToLower(body[:eq]),
					value: strings.Trim(body[eq+1:], `"'`),
					eq:    true,
				})
			} else if body != "" {
				s.attrs = append(s.attrs, attrCond{name: strings.ToLower(body)})
			} else {
				return s, fmt.Errorf("tagtree: empty attribute selector in %q", f)
			}
			i += end + 1
		case ':':
			rest := f[i:]
			if !strings.HasPrefix(rest, ":nth(") {
				return s, fmt.Errorf("tagtree: unsupported pseudo-class in %q", f)
			}
			end := strings.IndexByte(rest, ')')
			if end < 0 {
				return s, fmt.Errorf("tagtree: unterminated :nth in %q", f)
			}
			n, err := strconv.Atoi(rest[5:end])
			if err != nil || n < 1 {
				return s, fmt.Errorf("tagtree: bad :nth argument in %q", f)
			}
			s.nth = n
			i += end + 1
		default:
			return s, fmt.Errorf("tagtree: unexpected %q in selector %q", f[i], f)
		}
	}
	return s, nil
}

// matchesSimple reports whether node n satisfies the compound selector,
// ignoring the nth constraint (applied by the matcher across siblings).
func (s *simple) matchesSimple(n *Node) bool {
	if n.IsContent() {
		return false
	}
	if s.tag != "" && n.Tag != s.tag {
		return false
	}
	for _, c := range s.attrs {
		got, ok := nodeAttr(n, c.name)
		if !ok {
			return false
		}
		if c.eq {
			if c.name == "class" {
				if !hasClass(got, c.value) {
					return false
				}
			} else if got != c.value {
				return false
			}
		}
	}
	return true
}

// Match returns every node in the subtree anchored at root satisfying the
// selector, in document order. The root itself can match only a
// single-step selector.
func (s *Selector) Match(root *Node) []*Node {
	if root == nil {
		return nil
	}
	// matched[i] holds nodes satisfying steps[0..i].
	cur := s.matchStep(root, &s.steps[0], true)
	for i := 1; i < len(s.steps); i++ {
		step := &s.steps[i]
		var next []*Node
		seen := make(map[*Node]bool)
		for _, base := range cur {
			for _, m := range s.matchStep(base, step, false) {
				if !seen[m] {
					seen[m] = true
					next = append(next, m)
				}
			}
		}
		cur = sortDocOrder(root, next)
	}
	return cur
}

// First returns the first match in document order, or nil.
func (s *Selector) First(root *Node) *Node {
	// Matching everything then taking the head is acceptable: pages are
	// small and Match already walks the tree once per step.
	if ms := s.Match(root); len(ms) > 0 {
		return ms[0]
	}
	return nil
}

// matchStep finds nodes under base satisfying one step. includeSelf allows
// base itself to match (only for the first step). For a child step only
// direct children are inspected; otherwise all descendants.
func (s *Selector) matchStep(base *Node, step *selStep, includeSelf bool) []*Node {
	var raw []*Node
	if step.child {
		for _, c := range base.Children {
			if step.matchesSimple(c) {
				raw = append(raw, c)
			}
		}
	} else {
		base.Walk(func(n *Node) bool {
			if n == base && !includeSelf {
				return true
			}
			if step.matchesSimple(n) {
				raw = append(raw, n)
			}
			return true
		})
	}
	if step.nth == 0 {
		return raw
	}
	// nth filters among matching siblings: group by parent.
	count := make(map[*Node]int)
	var out []*Node
	for _, n := range raw {
		count[n.Parent]++
		if count[n.Parent] == step.nth {
			out = append(out, n)
		}
	}
	return out
}

// sortDocOrder orders nodes by document position under root.
func sortDocOrder(root *Node, nodes []*Node) []*Node {
	if len(nodes) < 2 {
		return nodes
	}
	pos := make(map[*Node]int, len(nodes))
	want := make(map[*Node]bool, len(nodes))
	for _, n := range nodes {
		want[n] = true
	}
	i := 0
	root.Walk(func(n *Node) bool {
		if want[n] {
			pos[n] = i
		}
		i++
		return true
	})
	out := make([]*Node, len(nodes))
	copy(out, nodes)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && pos[out[j]] < pos[out[j-1]]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Select compiles expr and returns its matches under root.
func Select(root *Node, expr string) ([]*Node, error) {
	sel, err := Compile(expr)
	if err != nil {
		return nil, err
	}
	return sel.Match(root), nil
}

// SelectFirst compiles expr and returns the first match, or nil.
func SelectFirst(root *Node, expr string) (*Node, error) {
	sel, err := Compile(expr)
	if err != nil {
		return nil, err
	}
	return sel.First(root), nil
}

// validTagName accepts HTML/XML-ish tag names ("" means wildcard and is
// validated by the caller).
func validTagName(tag string) bool {
	if tag == "" {
		return false
	}
	for i := 0; i < len(tag); i++ {
		c := tag[i]
		switch {
		case 'a' <= c && c <= 'z', '0' <= c && c <= '9', c == '-', c == '_':
		default:
			return false
		}
	}
	return true
}

// nodeAttr returns the named attribute of a tag node.
func nodeAttr(n *Node, name string) (string, bool) {
	for _, a := range n.Attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// hasClass reports whether the space-separated class list contains c.
func hasClass(classAttr, c string) bool {
	for _, f := range strings.Fields(classAttr) {
		if f == c {
			return true
		}
	}
	return false
}
