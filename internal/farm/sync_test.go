package farm

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"omini/internal/rules"
	"omini/internal/tagtree"
)

// syncRule builds a valid versioned rule for replication tests.
func syncRule(site string, version int) rules.Rule {
	return rules.Rule{
		Site:        site,
		SubtreePath: "html[1].body[1].ul[1]",
		Separator:   "li",
		LearnedAt:   time.Date(2026, 8, 2, 0, 0, 0, 0, time.UTC),
		Version:     version,
	}
}

func syncSig() tagtree.Signature {
	return tagtree.Signature{"html": 1, "html.body": 1, "html.body.ul": 1}
}

func TestInvalidateEntombs(t *testing.T) {
	f, _ := newTestFarm(t, Config{})
	f.Put(syncRule("dead.example", 3), syncSig())
	if !f.Invalidate("dead.example") {
		t.Fatal("Invalidate reported nothing removed")
	}
	if _, ok := f.Get("dead.example"); ok {
		t.Fatal("rule survived Invalidate")
	}
	if f.TombstoneCount() != 1 {
		t.Fatalf("TombstoneCount = %d, want 1", f.TombstoneCount())
	}
	tombs := f.Tombstones()
	if len(tombs) != 1 || tombs[0].Site != "dead.example" || tombs[0].Version != 3 {
		t.Fatalf("Tombstones = %+v, want dead.example v3", tombs)
	}
}

func TestTombstoneBlocksResurrection(t *testing.T) {
	f, stats := newTestFarm(t, Config{})
	f.Put(syncRule("zombie.example", 3), syncSig())
	f.Invalidate("zombie.example")

	// A stale peer still holding the dead rule must not bring it back.
	for _, v := range []int{1, 2, 3} {
		if f.ApplyRemote(StoredRule{Rule: syncRule("zombie.example", v), Signature: syncSig()}) {
			t.Fatalf("ApplyRemote(v%d) resurrected an entombed rule", v)
		}
	}
	if _, ok := f.Get("zombie.example"); ok {
		t.Fatal("entombed rule is back in the cache")
	}

	// A genuinely newer rule (someone relearned past the eviction)
	// supersedes the tombstone and clears it.
	if !f.ApplyRemote(StoredRule{Rule: syncRule("zombie.example", 4), Signature: syncSig()}) {
		t.Fatal("ApplyRemote(v4) rejected a rule above the tombstone")
	}
	if r, ok := f.Get("zombie.example"); !ok || r.Version != 4 {
		t.Fatalf("rule after supersede = %+v ok=%v, want v4", r, ok)
	}
	if f.TombstoneCount() != 0 {
		t.Fatalf("tombstone not cleared by newer rule: %+v", f.Tombstones())
	}
	if got := stats.Get(SeriesLearns); got != 0 {
		t.Fatalf("farm.learns = %d after replication, want 0", got)
	}
}

func TestRelearnLandsAboveTombstone(t *testing.T) {
	f, _ := newTestFarm(t, Config{})
	f.Put(syncRule("phoenix.example", 5), syncSig())
	f.Invalidate("phoenix.example")

	// An unversioned Put (fresh local learn) must land above the
	// tombstone, or peers still honoring the eviction would reject it.
	f.Put(syncRule("phoenix.example", 0), syncSig())
	r, ok := f.Get("phoenix.example")
	if !ok || r.Version != 6 {
		t.Fatalf("relearned rule = %+v ok=%v, want version 6", r, ok)
	}
	if f.TombstoneCount() != 0 {
		t.Fatalf("tombstone survived relearn: %+v", f.Tombstones())
	}
}

func TestApplyRemoteVersionConflict(t *testing.T) {
	f, stats := newTestFarm(t, Config{})
	f.Put(syncRule("conflict.example", 3), syncSig())

	if f.ApplyRemote(StoredRule{Rule: syncRule("conflict.example", 2), Signature: syncSig()}) {
		t.Fatal("older remote rule applied")
	}
	if f.ApplyRemote(StoredRule{Rule: syncRule("conflict.example", 3), Signature: syncSig()}) {
		t.Fatal("equal-version remote rule applied")
	}
	sr := StoredRule{Rule: syncRule("conflict.example", 7), Signature: syncSig(), Hits: 9}
	if !f.ApplyRemote(sr) {
		t.Fatal("newer remote rule rejected")
	}
	if r, _ := f.Get("conflict.example"); r.Version != 7 {
		t.Fatalf("Version = %d, want 7", r.Version)
	}
	if f.ApplyRemote(StoredRule{Rule: rules.Rule{Site: "bad.example"}}) {
		t.Fatal("invalid remote rule applied")
	}
	if got := stats.Get(SeriesLearns); got != 0 {
		t.Fatalf("farm.learns = %d after replication, want 0", got)
	}
}

func TestApplyTombstoneVersionConflict(t *testing.T) {
	f, _ := newTestFarm(t, Config{})
	f.Put(syncRule("sturdy.example", 5), syncSig())

	// A tombstone below the local rule lost the conflict: the rule was
	// already relearned past the eviction.
	if f.ApplyTombstone(Tombstone{Site: "sturdy.example", Version: 4}) {
		t.Fatal("stale tombstone applied over a newer rule")
	}
	if _, ok := f.Get("sturdy.example"); !ok {
		t.Fatal("rule lost to a stale tombstone")
	}

	// At or above the rule's version the eviction wins.
	if !f.ApplyTombstone(Tombstone{Site: "sturdy.example", Version: 5}) {
		t.Fatal("tombstone at the rule's version rejected")
	}
	if _, ok := f.Get("sturdy.example"); ok {
		t.Fatal("rule survived an applied tombstone")
	}
	if f.TombstoneCount() != 1 {
		t.Fatalf("TombstoneCount = %d, want 1", f.TombstoneCount())
	}
}

func TestVersionVectorAndEtag(t *testing.T) {
	f, _ := newTestFarm(t, Config{})
	empty := f.Etag()
	f.Put(syncRule("a.example", 2), syncSig())
	f.Put(syncRule("b.example", 1), syncSig())
	f.Invalidate("b.example")

	ruleV, tombV := f.VersionVector()
	if len(ruleV) != 1 || ruleV["a.example"] != 2 {
		t.Fatalf("ruleV = %v", ruleV)
	}
	if len(tombV) != 1 || tombV["b.example"] != 1 {
		t.Fatalf("tombV = %v", tombV)
	}

	one := f.Etag()
	if one == empty {
		t.Fatal("etag did not change with farm state")
	}
	if again := f.Etag(); again != one {
		t.Fatalf("etag unstable without mutation: %s != %s", again, one)
	}
	f.Put(syncRule("a.example", 3), syncSig())
	if f.Etag() == one {
		t.Fatal("etag did not change on version bump")
	}
}

func TestSyncSnapshotFilters(t *testing.T) {
	f, _ := newTestFarm(t, Config{})
	for _, site := range []string{"a.example", "b.example", "c.example"} {
		f.Put(syncRule(site, 1), syncSig())
	}
	f.Put(syncRule("d.example", 1), syncSig())
	f.Invalidate("d.example")

	all := f.SyncSnapshot(nil)
	if len(all.Rules) != 3 || len(all.Tombstones) != 1 {
		t.Fatalf("unfiltered snapshot: %d rules, %d tombstones", len(all.Rules), len(all.Tombstones))
	}
	if all.Version != SnapshotVersion {
		t.Fatalf("snapshot version = %d", all.Version)
	}

	part := f.SyncSnapshot([]string{"b.example", "d.example"})
	if len(part.Rules) != 1 || part.Rules[0].Site != "b.example" {
		t.Fatalf("filtered rules = %+v", part.Rules)
	}
	if len(part.Tombstones) != 1 || part.Tombstones[0].Site != "d.example" {
		t.Fatalf("filtered tombstones = %+v", part.Tombstones)
	}

	// The wire snapshot must survive its own codec (what a peer pull
	// actually decodes).
	data, err := EncodeSnapshot(part)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	back, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if len(back.Rules) != 1 || len(back.Tombstones) != 1 {
		t.Fatalf("round-tripped snapshot: %+v", back)
	}
}

func TestSnapshotCodecReconcilesTombstones(t *testing.T) {
	// A snapshot holding both a rule and a tombstone for one site is
	// reconciled by the codec under the version conflict rule.
	evictedAt := time.Date(2026, 8, 3, 0, 0, 0, 0, time.UTC)
	in := Snapshot{
		Rules: []StoredRule{
			{Rule: syncRule("dead.example", 2), Signature: syncSig()},
			{Rule: syncRule("alive.example", 5), Signature: syncSig()},
		},
		Tombstones: []Tombstone{
			{Site: "dead.example", Version: 2, EvictedAt: evictedAt},
			{Site: "alive.example", Version: 4, EvictedAt: evictedAt},
		},
	}
	data, err := EncodeSnapshot(in)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	out, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if len(out.Rules) != 1 || out.Rules[0].Site != "alive.example" {
		t.Fatalf("rules = %+v, want only alive.example (its rule outranks its tombstone)", out.Rules)
	}
	if len(out.Tombstones) != 1 || out.Tombstones[0].Site != "dead.example" {
		t.Fatalf("tombstones = %+v, want only dead.example (its tombstone outranks its rule)", out.Tombstones)
	}
	if !out.Tombstones[0].EvictedAt.Equal(evictedAt) {
		t.Fatalf("EvictedAt = %v, want %v", out.Tombstones[0].EvictedAt, evictedAt)
	}
}

func TestStoreReopenAfterTornWrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.json")
	f, _ := newTestFarm(t, Config{StorePath: path})
	f.Put(syncRule("torn.example", 1), syncSig())
	if err := f.Save(); err != nil {
		t.Fatalf("Save: %v", err)
	}

	// Simulate a torn write: the snapshot loses its tail mid-flush (a
	// crash between write and fsync on a non-atomic filesystem).
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, whole[:len(whole)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	// Strict reopen refuses the torn snapshot outright...
	if _, err := New(Config{StorePath: path}); err == nil {
		t.Fatal("New accepted a torn store file")
	}
	// ...and the serving configuration recovers to an empty farm whose
	// next save overwrites the bad file.
	f2, _ := newTestFarm(t, Config{StorePath: path, RecoverCorruptStore: true})
	if f2.Len() != 0 {
		t.Fatalf("recovered farm has %d rules, want 0", f2.Len())
	}
	f2.Put(syncRule("torn.example", 2), syncSig())
	if err := f2.Save(); err != nil {
		t.Fatalf("Save after recovery: %v", err)
	}
	snap, err := LoadSnapshot(path)
	if err != nil {
		t.Fatalf("LoadSnapshot after rewrite: %v", err)
	}
	if len(snap.Rules) != 1 || snap.Rules[0].Version != 2 {
		t.Fatalf("rewritten store = %+v", snap.Rules)
	}
}

func TestSaveLoadRoundTripsTombstones(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.json")
	f, _ := newTestFarm(t, Config{StorePath: path})
	f.Put(syncRule("kept.example", 2), syncSig())
	f.Put(syncRule("gone.example", 3), syncSig())
	f.Invalidate("gone.example")
	if err := f.Save(); err != nil {
		t.Fatalf("Save: %v", err)
	}

	// The persisted snapshot carries the eviction.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte(`"tombstones"`)) {
		t.Fatalf("store file has no tombstones section:\n%s", data)
	}

	// A restarted farm remembers it: the dead rule cannot be resurrected
	// by a stale peer even though the process is fresh.
	f2, _ := newTestFarm(t, Config{StorePath: path})
	if f2.Len() != 1 {
		t.Fatalf("reloaded farm has %d rules, want 1", f2.Len())
	}
	if f2.TombstoneCount() != 1 {
		t.Fatalf("reloaded TombstoneCount = %d, want 1", f2.TombstoneCount())
	}
	if f2.ApplyRemote(StoredRule{Rule: syncRule("gone.example", 3), Signature: syncSig()}) {
		t.Fatal("restart forgot the eviction: stale rule resurrected")
	}
}
