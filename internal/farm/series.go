package farm

// Registry series emitted by this package. One constant per series —
// the obsnames analyzer enforces that emission sites use these and
// that registerMetrics pre-registers every one of them, so /metricsz
// exposes the whole farm surface from boot.
const (
	// SeriesHits counts fast-path extractions served from a cached
	// rule; SeriesMisses counts requests whose site had no cached rule.
	SeriesHits   = "farm.hits"
	SeriesMisses = "farm.misses"
	// SeriesLearns counts full discoveries whose rule was stored (first
	// learns and relearns alike).
	SeriesLearns = "farm.learns"
	// SeriesCoalesced counts requests that joined another request's
	// in-flight discovery for the same site instead of running their
	// own (the singleflight path).
	SeriesCoalesced = "farm.coalesced"
	// SeriesStale counts cached rules that stopped matching their
	// site's pages (core.ErrRuleMismatch on the fast path) and were
	// evicted for relearning.
	SeriesStale = "farm.stale"

	// SeriesDriftChecks counts revalidation samples processed;
	// SeriesDriftDetected counts the ones whose page had drifted past
	// the threshold (triggering evict + relearn).
	SeriesDriftChecks   = "farm.drift_checks"
	SeriesDriftDetected = "farm.drift_detected"
	// SeriesRelearn counts successful relearns of an evicted rule
	// (drift- or mismatch-triggered); SeriesRelearnFailures counts
	// relearn attempts that failed (the site stays unlearned until its
	// next request).
	SeriesRelearn         = "farm.relearn"
	SeriesRelearnFailures = "farm.relearn_failures"
	// SeriesSampleDropped counts revalidation samples discarded because
	// the sampler's queue was full (sampling is best-effort; serving
	// never blocks on it).
	SeriesSampleDropped = "farm.sample_dropped"

	// SeriesEvictions counts entries displaced by LRU capacity
	// pressure (not drift or staleness).
	SeriesEvictions = "farm.evictions"
	// SeriesStoreSaves counts snapshots persisted to the rule store;
	// SeriesStoreErrors counts failed save attempts.
	SeriesStoreSaves  = "farm.store_saves"
	SeriesStoreErrors = "farm.store_errors"

	// seriesFastSeconds / seriesSlowSeconds split request latency by
	// serving path: "fast" is rule replay, "slow" is full Phase-2
	// discovery. The fast/slow quantile gap on /metricsz is the live
	// measurement of the paper's Table 17 speedup.
	seriesFastSeconds = `farm.path_seconds{path="fast"}`
	seriesSlowSeconds = `farm.path_seconds{path="slow"}`

	// gaugeRules is the number of cached rules; gaugeStoreBytes is the
	// size of the last persisted snapshot (0 until the first save);
	// gaugeTombstones is the number of remembered evictions the
	// anti-entropy layer propagates.
	gaugeRules      = "farm.rules"
	gaugeStoreBytes = "farm.store_bytes"
	gaugeTombstones = "farm.tombstones"
)

// registerMetrics pre-touches every series this package emits, so a
// scrape of a fresh process already shows the full farm surface at
// zero. The obsnames analyzer harvests this function as the boot
// pre-registration set.
func (f *Farm) registerMetrics() {
	for _, name := range []string{
		SeriesHits, SeriesMisses, SeriesLearns, SeriesCoalesced, SeriesStale,
		SeriesDriftChecks, SeriesDriftDetected, SeriesRelearn,
		SeriesRelearnFailures, SeriesSampleDropped,
		SeriesEvictions, SeriesStoreSaves, SeriesStoreErrors,
	} {
		f.stats.Counter(name)
	}
	f.stats.Histogram(seriesFastSeconds)
	f.stats.Histogram(seriesSlowSeconds)
	f.stats.RegisterGaugeFunc(gaugeRules, func() float64 {
		return float64(f.Len())
	})
	f.stats.RegisterGaugeFunc(gaugeStoreBytes, func() float64 {
		return float64(f.storeBytes.Load())
	})
	f.stats.RegisterGaugeFunc(gaugeTombstones, func() float64 {
		return float64(f.TombstoneCount())
	})
}
