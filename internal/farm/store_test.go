package farm

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"omini/internal/core"
	"omini/internal/rules"
	"omini/internal/tagtree"
)

func storedRule(site string) StoredRule {
	return StoredRule{
		Rule: rules.Rule{
			Site:        site,
			SubtreePath: "html[1].body[1].ul[1]",
			Separator:   "li",
			LearnedAt:   time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC),
			Version:     3,
		},
		Signature: tagtree.Signature{"html": 1, "html.body": 1, "html.body.ul": 1},
		Hits:      42,
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	in := Snapshot{Rules: []StoredRule{storedRule("b.example"), storedRule("a.example")}}
	data, err := EncodeSnapshot(in)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	out, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if out.Version != SnapshotVersion {
		t.Fatalf("Version = %d, want %d", out.Version, SnapshotVersion)
	}
	if len(out.Rules) != 2 || out.Rules[0].Site != "a.example" || out.Rules[1].Site != "b.example" {
		t.Fatalf("rules not canonical by site: %+v", out.Rules)
	}
	got := out.Rules[1]
	want := storedRule("b.example")
	if got.SubtreePath != want.SubtreePath || got.Separator != want.Separator ||
		got.Version != want.Version || got.Hits != want.Hits ||
		!got.LearnedAt.Equal(want.LearnedAt) {
		t.Fatalf("rule fields lost in round trip:\ngot  %+v\nwant %+v", got, want)
	}
	if got.Signature.Similarity(want.Signature) != 1 {
		t.Fatalf("signature lost in round trip: %v", got.Signature)
	}
}

func TestDecodeSnapshotCanonicalizes(t *testing.T) {
	in := Snapshot{Rules: []StoredRule{
		storedRule("dup.example"),
		{Rule: rules.Rule{Site: "invalid.example"}},          // no path/separator
		{Rule: rules.Rule{SubtreePath: "x", Separator: "y"}}, // no site
		func() StoredRule { r := storedRule("dup.example"); r.Version = 9; return r }(),
	}}
	data, err := EncodeSnapshot(in)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	out, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if len(out.Rules) != 1 {
		t.Fatalf("canonical rules = %+v, want exactly one", out.Rules)
	}
	if out.Rules[0].Version != 9 {
		t.Fatalf("dedupe kept version %d, want last-wins 9", out.Rules[0].Version)
	}
}

func TestDecodeSnapshotLegacyArray(t *testing.T) {
	legacy := []byte(`[{"site":"old.example","subtreePath":"html[1].body[1]","separator":"tr"}]`)
	snap, err := DecodeSnapshot(legacy)
	if err != nil {
		t.Fatalf("Decode legacy: %v", err)
	}
	if len(snap.Rules) != 1 || snap.Rules[0].Site != "old.example" {
		t.Fatalf("legacy rules = %+v", snap.Rules)
	}
	if snap.Version != SnapshotVersion {
		t.Fatalf("legacy Version = %d, want %d", snap.Version, SnapshotVersion)
	}
}

func TestDecodeSnapshotRejectsNewerVersion(t *testing.T) {
	_, err := DecodeSnapshot([]byte(`{"version":99,"rules":[]}`))
	if !errors.Is(err, ErrSnapshotVersion) {
		t.Fatalf("err = %v, want ErrSnapshotVersion", err)
	}
}

func TestDecodeSnapshotRejectsGarbage(t *testing.T) {
	for _, bad := range []string{"", "{", "[{]", `{"version":"x"}`, "null["} {
		if _, err := DecodeSnapshot([]byte(bad)); err == nil {
			t.Fatalf("Decode(%q) accepted garbage", bad)
		}
	}
}

func TestRulesLoadReadsFarmSnapshot(t *testing.T) {
	// The -rules flag contract: a farm snapshot is a valid rules.Store
	// file (the envelope carries a superset of the legacy array).
	data, err := EncodeSnapshot(Snapshot{Rules: []StoredRule{storedRule("compat.example")}})
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	st := rules.NewStore()
	if _, err := st.ReadFrom(bytes.NewReader(data)); err != nil {
		t.Fatalf("rules.ReadFrom(farm snapshot): %v", err)
	}
	r, err := st.Get("compat.example")
	if err != nil || r.Separator != "li" || r.Version != 3 {
		t.Fatalf("rule through rules.Store = %+v err=%v", r, err)
	}
}

// FuzzSnapshotCodec: DecodeSnapshot must never panic, and every
// accepted input must re-encode to a canonical fixed point
// (encode∘decode∘encode = encode∘decode).
func FuzzSnapshotCodec(f *testing.F) {
	f.Add([]byte(`{"version":1,"rules":[]}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`[{"site":"a","subtreePath":"html[1]","separator":"li"}]`))
	f.Add([]byte(`{"version":1,"rules":[{"site":"s.example","subtreePath":"html[1].body[1]","separator":"tr","version":2,"hits":7,"signature":{"html":1}}]}`))
	f.Add([]byte(`{"version":2,"rules":[],"tombstones":[{"site":"gone.example","version":3,"evictedAt":"2026-08-03T00:00:00Z"}]}`))
	f.Add([]byte(`{"version":2,"rules":[{"site":"both.example","subtreePath":"html[1]","separator":"li","version":2}],"tombstones":[{"site":"both.example","version":2},{"site":"both.example","version":1}]}`))
	f.Add([]byte("{"))
	f.Add([]byte("null"))
	// Seed with a real learned rule: discovery over a deterministic
	// list page, exactly what a production store holds.
	ex := core.New(core.Options{})
	var page bytes.Buffer
	page.WriteString("<html><body><ul>")
	for i := 0; i < 10; i++ {
		fmt.Fprintf(&page, `<li><a href="/%d">Seed %d</a> text</li>`, i, i)
	}
	page.WriteString("</ul></body></html>")
	if res, err := ex.ExtractContext(context.Background(), page.String()); err == nil {
		rule := res.Rule("seed.example")
		rule.Version = 1
		seed, err := EncodeSnapshot(Snapshot{Rules: []StoredRule{{
			Rule:      rule,
			Signature: tagtree.PathSignature(res.Tree),
			Hits:      1,
		}}})
		if err != nil {
			f.Fatalf("seed encode: %v", err)
		}
		f.Add(seed)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := DecodeSnapshot(data)
		if err != nil {
			return // rejected cleanly
		}
		once, err := EncodeSnapshot(snap)
		if err != nil {
			t.Fatalf("accepted snapshot failed to encode: %v", err)
		}
		again, err := DecodeSnapshot(once)
		if err != nil {
			t.Fatalf("canonical encoding failed to decode: %v", err)
		}
		twice, err := EncodeSnapshot(again)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if !bytes.Equal(once, twice) {
			t.Fatalf("codec is not a fixed point:\nonce:  %s\ntwice: %s", once, twice)
		}
	})
}
