package farm

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"omini/internal/core"
	"omini/internal/govern"
	"omini/internal/obs"
	"omini/internal/rules"
	"omini/internal/sitegen"
	"omini/internal/tagtree"
)

// unlimitedGuard returns an ungoverned guard for driving internal
// loops from tests.
func unlimitedGuard() *govern.Guard {
	return govern.NewGuard(context.Background(), govern.Unlimited())
}

// waitFor polls cond until it holds or the test deadline budget runs
// out.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}

// testSpec returns a deterministic synthetic site using the named
// layout family.
func testSpec(name, layout string) sitegen.SiteSpec {
	return sitegen.SiteSpec{
		Name:       name,
		Domain:     sitegen.DomainBooks,
		LayoutName: layout,
		Chrome:     sitegen.ChromeSpec{Banner: true, NavLinks: 4},
		MinItems:   8,
		MaxItems:   12,
	}
}

// newTestFarm builds a farm on a private registry so counter asserts
// are isolated per test.
func newTestFarm(t *testing.T, cfg Config) (*Farm, *obs.Registry) {
	t.Helper()
	if cfg.Stats == nil {
		cfg.Stats = obs.NewRegistry()
	}
	if cfg.Logger == nil {
		cfg.Logger = obs.NewLogger(io.Discard, obs.LevelError)
	}
	f, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return f, cfg.Stats
}

func TestLearnOnMissThenFastPath(t *testing.T) {
	f, stats := newTestFarm(t, Config{})
	spec := testSpec("miss.example", "ul-record")
	ctx := context.Background()

	slow, out, err := f.Extract(ctx, spec.Name, spec.Page(0).HTML)
	if err != nil {
		t.Fatalf("first Extract: %v", err)
	}
	if !out.Learned || out.FromRule {
		t.Fatalf("first request should learn, got %+v", out)
	}
	if got := stats.Get(SeriesMisses); got != 1 {
		t.Fatalf("farm.misses = %d, want 1", got)
	}
	if got := stats.Get(SeriesLearns); got != 1 {
		t.Fatalf("farm.learns = %d, want 1", got)
	}

	fast, out, err := f.Extract(ctx, spec.Name, spec.Page(0).HTML)
	if err != nil {
		t.Fatalf("second Extract: %v", err)
	}
	if !out.FromRule || out.Learned {
		t.Fatalf("second request should replay the rule, got %+v", out)
	}
	if got := stats.Get(SeriesHits); got != 1 {
		t.Fatalf("farm.hits = %d, want 1", got)
	}
	if len(fast.Objects) != len(slow.Objects) {
		t.Fatalf("fast path extracted %d objects, slow path %d",
			len(fast.Objects), len(slow.Objects))
	}
	if r, ok := f.Get(spec.Name); !ok || r.Version != 1 {
		t.Fatalf("cached rule = %+v ok=%v, want version 1", r, ok)
	}
	if f.Len() != 1 {
		t.Fatalf("Len = %d, want 1", f.Len())
	}
}

func TestSitelessRequestIsNotCached(t *testing.T) {
	f, stats := newTestFarm(t, Config{})
	spec := testSpec("anon.example", "row-table")
	if _, out, err := f.Extract(context.Background(), "", spec.Page(0).HTML); err != nil {
		t.Fatalf("Extract: %v", err)
	} else if out != (Outcome{}) {
		t.Fatalf("site-less outcome = %+v, want zero", out)
	}
	if f.Len() != 0 {
		t.Fatalf("Len = %d, want 0", f.Len())
	}
	if got := stats.Get(SeriesMisses); got != 0 {
		t.Fatalf("farm.misses = %d, want 0 (site-less requests bypass the cache)", got)
	}
}

// TestSingleflightOneDiscovery is the thundering-herd proof: N
// concurrent first requests for one host must trigger exactly one
// full discovery, with everyone else replaying the leader's rule or
// hitting the cache. Run under -race (ci.sh does).
func TestSingleflightOneDiscovery(t *testing.T) {
	f, stats := newTestFarm(t, Config{})
	spec := testSpec("herd.example", "div-card")
	const n = 24
	var wg sync.WaitGroup
	outs := make([]Outcome, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, outs[i], errs[i] = f.Extract(context.Background(), spec.Name, spec.Page(i%4).HTML)
		}(i)
	}
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	if got := stats.Get(SeriesLearns); got != 1 {
		t.Fatalf("farm.learns = %d, want exactly 1 for %d concurrent first requests", got, n)
	}
	learned, served := 0, 0
	for _, out := range outs {
		if out.Learned {
			learned++
		}
		if out.FromRule {
			served++
		}
	}
	if learned != 1 {
		t.Fatalf("%d requests report Learned, want 1", learned)
	}
	if learned+served != n {
		t.Fatalf("learned(%d) + fast(%d) = %d, want %d", learned, served, learned+served, n)
	}
	if got := stats.Get(SeriesHits); got != int64(served) {
		t.Fatalf("farm.hits = %d, want %d", got, served)
	}
}

// TestRedesignMismatchRelearns simulates a site redesign with a
// sitegen layout swap: the cached rule no longer resolves on the new
// layout, so the fast path must evict it and relearn in-line, bumping
// the rule version.
func TestRedesignMismatchRelearns(t *testing.T) {
	f, stats := newTestFarm(t, Config{})
	old := testSpec("redesign.example", "ul-record")
	redesigned := testSpec("redesign.example", "div-card")
	ctx := context.Background()

	if _, out, err := f.Extract(ctx, old.Name, old.Page(0).HTML); err != nil || !out.Learned {
		t.Fatalf("learn: out=%+v err=%v", out, err)
	}
	res, out, err := f.Extract(ctx, redesigned.Name, redesigned.Page(0).HTML)
	if err != nil {
		t.Fatalf("post-redesign Extract: %v", err)
	}
	if !out.Relearned || !out.Learned || out.FromRule {
		t.Fatalf("post-redesign outcome = %+v, want Relearned+Learned", out)
	}
	if len(res.Objects) == 0 {
		t.Fatal("post-redesign extraction returned no objects")
	}
	if got := stats.Get(SeriesStale); got != 1 {
		t.Fatalf("farm.stale = %d, want 1", got)
	}
	if got := stats.Get(SeriesRelearn); got != 1 {
		t.Fatalf("farm.relearn = %d, want 1", got)
	}
	if r, ok := f.Get(old.Name); !ok || r.Version != 2 {
		t.Fatalf("relearned rule = %+v ok=%v, want version 2", r, ok)
	}
}

// driftTrainPage is the pre-redesign page: a small sitegen ul-record
// site the rule is learned from.
func driftTrainPage(site string) string {
	return testSpec(site, "ul-record").Page(0).HTML
}

// driftedPage mutates the site's layout via sitegen without breaking
// rule replay: the original container stays in place (so the cached
// rule still resolves and extraction silently keeps working) while a
// large region rendered by a structurally different sitegen layout
// family is grafted after it — the additive redesign only the drift
// sampler can see.
func driftedPage(t *testing.T, site string) string {
	t.Helper()
	page := driftTrainPage(site)
	donor := sitegen.SiteSpec{
		Name:       site,
		Domain:     sitegen.DomainProducts,
		LayoutName: "div-card",
		Chrome:     sitegen.ChromeSpec{SidebarLinks: 8, FooterLinks: 8, SearchForm: true},
		Noise:      sitegen.NoiseSpec{VarySizes: true},
		MinItems:   60,
		MaxItems:   60,
	}.Page(1).HTML
	start := strings.Index(donor, "<body>")
	end := strings.Index(donor, "</body>")
	if start < 0 || end < 0 {
		t.Fatal("donor page has no body")
	}
	region := donor[start+len("<body>") : end]
	return strings.Replace(page, "</body>", region+"</body>", 1)
}

// TestDriftSamplerRelearns is the background-revalidation proof: a
// fast-path hit on a drifted page is sampled, the drift check fires
// past the threshold, and the rule is evicted and relearned from the
// sampled page with its version bumped.
func TestDriftSamplerRelearns(t *testing.T) {
	f, stats := newTestFarm(t, Config{SampleEvery: 1})
	ctx := context.Background()
	site := "drift.example"

	if _, out, err := f.Extract(ctx, site, driftTrainPage(site)); err != nil || !out.Learned {
		t.Fatalf("learn: out=%+v err=%v", out, err)
	}
	// The drifted page must still serve from the rule — drift is
	// invisible to the fast path; only the sampler can see it.
	if _, out, err := f.Extract(ctx, site, driftedPage(t, site)); err != nil || !out.FromRule {
		t.Fatalf("drifted page should replay: out=%+v err=%v", out, err)
	}
	if n := f.Revalidate(ctx); n != 1 {
		t.Fatalf("Revalidate processed %d samples, want 1", n)
	}
	if got := stats.Get(SeriesDriftChecks); got != 1 {
		t.Fatalf("farm.drift_checks = %d, want 1", got)
	}
	if got := stats.Get(SeriesDriftDetected); got != 1 {
		t.Fatalf("farm.drift_detected = %d, want 1", got)
	}
	if got := stats.Get(SeriesRelearn); got != 1 {
		t.Fatalf("farm.relearn = %d, want 1", got)
	}
	if r, ok := f.Get(site); !ok || r.Version != 2 {
		t.Fatalf("post-drift rule = %+v ok=%v, want version 2", r, ok)
	}
}

// TestDriftSamplerIgnoresStablePages: repeated hits on structurally
// stable pages sample and check but never trip detection.
func TestDriftSamplerIgnoresStablePages(t *testing.T) {
	f, stats := newTestFarm(t, Config{SampleEvery: 1})
	ctx := context.Background()
	spec := testSpec("stable.example", "row-table")
	if _, _, err := f.Extract(ctx, spec.Name, spec.Page(0).HTML); err != nil {
		t.Fatalf("learn: %v", err)
	}
	for i := 1; i < 4; i++ {
		if _, out, err := f.Extract(ctx, spec.Name, spec.Page(i).HTML); err != nil || !out.FromRule {
			t.Fatalf("page %d: out=%+v err=%v", i, out, err)
		}
	}
	if n := f.Revalidate(ctx); n == 0 {
		t.Fatal("Revalidate processed no samples")
	}
	if got := stats.Get(SeriesDriftDetected); got != 0 {
		t.Fatalf("farm.drift_detected = %d on structurally stable pages, want 0", got)
	}
	if r, ok := f.Get(spec.Name); !ok || r.Version != 1 {
		t.Fatalf("stable rule = %+v ok=%v, want untouched version 1", r, ok)
	}
}

// TestSweepFlagsEntriesForRevalidation: a sweep forces the next hit of
// every cached rule to sample regardless of the sampling cadence.
func TestSweepFlagsEntriesForRevalidation(t *testing.T) {
	f, stats := newTestFarm(t, Config{SampleEvery: 1 << 30})
	ctx := context.Background()
	spec := testSpec("sweep.example", "dl-record")
	if _, _, err := f.Extract(ctx, spec.Name, spec.Page(0).HTML); err != nil {
		t.Fatalf("learn: %v", err)
	}
	// Without a sweep the huge cadence means no samples.
	if _, _, err := f.Extract(ctx, spec.Name, spec.Page(1).HTML); err != nil {
		t.Fatalf("hit: %v", err)
	}
	if n := f.Revalidate(ctx); n != 0 {
		t.Fatalf("unswept hit produced %d samples, want 0", n)
	}
	if err := f.sweep(unlimitedGuard()); err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if _, _, err := f.Extract(ctx, spec.Name, spec.Page(2).HTML); err != nil {
		t.Fatalf("post-sweep hit: %v", err)
	}
	if n := f.Revalidate(ctx); n != 1 {
		t.Fatalf("post-sweep hit produced %d samples, want 1", n)
	}
	if got := stats.Get(SeriesDriftChecks); got != 1 {
		t.Fatalf("farm.drift_checks = %d, want 1", got)
	}
}

func TestLRUCapacityEviction(t *testing.T) {
	f, stats := newTestFarm(t, Config{Shards: 1, Capacity: 2})
	sig := tagtree.Signature{"html": 1}
	for i := 0; i < 3; i++ {
		f.Put(rules.Rule{
			Site:        fmt.Sprintf("site-%d.example", i),
			SubtreePath: "html[1].body[1]",
			Separator:   "li",
		}, sig)
	}
	if f.Len() != 2 {
		t.Fatalf("Len = %d, want 2 after capacity eviction", f.Len())
	}
	if got := stats.Get(SeriesEvictions); got != 1 {
		t.Fatalf("farm.evictions = %d, want 1", got)
	}
	if _, ok := f.Get("site-0.example"); ok {
		t.Fatal("least recently used rule survived eviction")
	}
}

func TestStorePersistsAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "rules.json")
	spec := testSpec("persist.example", "item-table")
	ctx := context.Background()

	f1, _ := newTestFarm(t, Config{StorePath: path})
	if _, out, err := f1.Extract(ctx, spec.Name, spec.Page(0).HTML); err != nil || !out.Learned {
		t.Fatalf("learn: out=%+v err=%v", out, err)
	}
	if err := f1.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("store file missing after Close: %v", err)
	}

	f2, stats2 := newTestFarm(t, Config{StorePath: path})
	if f2.Len() != 1 {
		t.Fatalf("restarted farm Len = %d, want 1", f2.Len())
	}
	r, ok := f2.Get(spec.Name)
	if !ok || r.Version != 1 {
		t.Fatalf("restarted rule = %+v ok=%v, want version 1", r, ok)
	}
	if _, out, err := f2.Extract(ctx, spec.Name, spec.Page(1).HTML); err != nil || !out.FromRule {
		t.Fatalf("restarted farm should serve from the persisted rule: out=%+v err=%v", out, err)
	}
	if got := stats2.Get(SeriesLearns); got != 0 {
		t.Fatalf("restarted farm ran %d discoveries, want 0", got)
	}
	// The persisted signature must survive the round trip, or drift
	// revalidation would silently disable itself after every restart.
	if stored := f2.Rules(); len(stored) != 1 || len(stored[0].Signature) == 0 {
		t.Fatalf("restarted rules = %+v, want one rule with a signature", stored)
	}
}

func TestNewRejectsCorruptStore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rules.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{StorePath: path, Stats: obs.NewRegistry(),
		Logger: obs.NewLogger(io.Discard, obs.LevelError)}); err == nil {
		t.Fatal("New accepted a corrupt store")
	}
}

func TestRulesFileSeed(t *testing.T) {
	// Legacy rules.Store array files (the ominiserve -rules format)
	// must seed the farm too.
	path := filepath.Join(t.TempDir(), "legacy.json")
	st := rules.NewStore()
	st.Put(rules.Rule{Site: "legacy.example", SubtreePath: "html[1].body[1]", Separator: "li"})
	if err := st.Save(path); err != nil {
		t.Fatalf("Save: %v", err)
	}
	f, _ := newTestFarm(t, Config{})
	if err := f.SeedFile(path); err != nil {
		t.Fatalf("SeedFile: %v", err)
	}
	r, ok := f.Get("legacy.example")
	if !ok {
		t.Fatal("legacy rule missing after seed")
	}
	if r.Version != 1 {
		t.Fatalf("legacy rule version = %d, want normalized to 1", r.Version)
	}
}

func TestInvalidate(t *testing.T) {
	f, _ := newTestFarm(t, Config{})
	f.Put(rules.Rule{Site: "x.example", SubtreePath: "html[1]", Separator: "li"}, nil)
	if !f.Invalidate("x.example") {
		t.Fatal("Invalidate reported no rule")
	}
	if f.Invalidate("x.example") {
		t.Fatal("second Invalidate reported a rule")
	}
	if f.Len() != 0 {
		t.Fatalf("Len = %d, want 0", f.Len())
	}
}

func TestPutVersionsExternalRules(t *testing.T) {
	f, _ := newTestFarm(t, Config{})
	rule := rules.Rule{Site: "put.example", SubtreePath: "html[1].body[1]", Separator: "li"}
	f.Put(rule, nil)
	if r, _ := f.Get(rule.Site); r.Version != 1 {
		t.Fatalf("first Put version = %d, want 1", r.Version)
	}
	f.Put(rule, nil)
	if r, _ := f.Get(rule.Site); r.Version != 2 {
		t.Fatalf("second Put version = %d, want 2", r.Version)
	}
}

func TestRunDrainsSamplesAndSaves(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rules.json")
	f, stats := newTestFarm(t, Config{SampleEvery: 1, StorePath: path})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- f.Run(ctx) }()

	site := "run.example"
	if _, _, err := f.Extract(ctx, site, driftTrainPage(site)); err != nil {
		t.Fatalf("learn: %v", err)
	}
	if _, _, err := f.Extract(ctx, site, driftedPage(t, site)); err != nil {
		t.Fatalf("hit: %v", err)
	}
	waitFor(t, func() bool { return stats.Get(SeriesDriftDetected) == 1 })
	cancel()
	if err := <-done; err != context.Canceled {
		t.Fatalf("Run returned %v, want context.Canceled", err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("store not saved on shutdown: %v", err)
	}
}

func TestExtractorErrorsPropagate(t *testing.T) {
	f, _ := newTestFarm(t, Config{
		Extractor: core.New(core.Options{Limits: core.Limits{MaxInputBytes: 16}}),
	})
	spec := testSpec("limits.example", "row-table")
	if _, _, err := f.Extract(context.Background(), spec.Name, spec.Page(0).HTML); err == nil {
		t.Fatal("oversized page did not error")
	}
	if f.Len() != 0 {
		t.Fatalf("failed learn cached a rule: Len = %d", f.Len())
	}
}
