package farm

import (
	"context"
	"fmt"
	"hash/fnv"
	"sort"
	"time"

	"omini/internal/govern"
)

// The farm's replication surface: what internal/ruledist (and the
// /rulesz digest/sync views in internal/serve) use to keep learned
// rules warm across the cluster. The conflict rule is deliberately
// simple — per site, the highest version wins, whether that version
// lives in a rule or in a tombstone — so any two nodes that exchange
// state converge without coordination.

// maxTombstones bounds the remembered-eviction set; past it the oldest
// tombstones are dropped. A dropped tombstone only weakens the
// no-resurrection guarantee for a site nobody has touched in a long
// time, and the drift revalidator would re-kill a resurrected rule on
// its next sampled hit anyway.
const maxTombstones = 1024

// rememberTomb records t when it is newer than any existing tombstone
// for its site, reporting whether it was recorded.
func (f *Farm) rememberTomb(t Tombstone) bool {
	f.tombMu.Lock()
	defer f.tombMu.Unlock()
	if prev, ok := f.tombs[t.Site]; ok && prev.Version >= t.Version {
		return false
	}
	f.tombs[t.Site] = t
	f.pruneTombsLocked()
	return true
}

// entomb marks a deliberate eviction (drift, fast-path mismatch,
// explicit invalidation) so neither a stale anti-entropy peer nor a
// lagging snapshot can resurrect the dead rule at or below the killed
// version. A later relearn lands above the tombstone and clears it.
func (f *Farm) entomb(site string, version int) {
	if site == "" || version <= 0 {
		return
	}
	if f.rememberTomb(Tombstone{Site: site, Version: version, EvictedAt: time.Now().UTC()}) {
		f.dirty.Store(true)
	}
}

// tombVersion returns the site's tombstone version (0 when none).
func (f *Farm) tombVersion(site string) int {
	f.tombMu.Lock()
	defer f.tombMu.Unlock()
	return f.tombs[site].Version
}

// clearTomb reports whether a rule at version may live: a tombstone at
// or above it says no; a lower tombstone is superseded and removed.
func (f *Farm) clearTomb(site string, version int) bool {
	f.tombMu.Lock()
	defer f.tombMu.Unlock()
	t, ok := f.tombs[site]
	if !ok {
		return true
	}
	if t.Version >= version {
		return false
	}
	delete(f.tombs, site)
	return true
}

// pruneTombsLocked evicts the oldest tombstones past maxTombstones.
// Callers hold tombMu.
func (f *Farm) pruneTombsLocked() {
	for len(f.tombs) > maxTombstones {
		oldestSite := ""
		var oldest time.Time
		for site, t := range f.tombs {
			if oldestSite == "" || t.EvictedAt.Before(oldest) {
				oldestSite, oldest = site, t.EvictedAt
			}
		}
		delete(f.tombs, oldestSite)
	}
}

// TombstoneCount returns the number of remembered evictions.
func (f *Farm) TombstoneCount() int {
	f.tombMu.Lock()
	defer f.tombMu.Unlock()
	return len(f.tombs)
}

// Tombstones snapshots the remembered evictions, sorted by site.
func (f *Farm) Tombstones() []Tombstone {
	g := govern.NewGuard(context.Background(), govern.Unlimited())
	f.tombMu.Lock()
	out := make([]Tombstone, 0, len(f.tombs))
	for _, t := range f.tombs {
		if g.Poll() != nil {
			break
		}
		out = append(out, t)
	}
	f.tombMu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Site < out[j].Site })
	return out
}

// ApplyRemote merges one peer rule under the version conflict rule: it
// is applied only when strictly newer than both the local rule and any
// local tombstone for the site. Applied rules do not count as learns —
// that is the whole point of replication — but they do mark the store
// dirty so the next sweep persists them. Reports whether it applied.
func (f *Farm) ApplyRemote(sr StoredRule) bool {
	if sr.Site == "" || !sr.Valid() {
		return false
	}
	if sr.Version <= 0 {
		sr.Version = 1
	}
	if cur, ok := f.Get(sr.Site); ok && cur.Version >= sr.Version {
		return false
	}
	if !f.insert(sr.Rule, sr.Signature, sr.Hits) {
		return false
	}
	f.dirty.Store(true)
	return true
}

// ApplyTombstone merges one peer eviction: the local copy of the rule
// is dropped when its version is at or below the tombstone's, and the
// tombstone is remembered so later syncs cannot bring the rule back.
// A local rule above the tombstone's version has already superseded
// the eviction and wins. Reports whether anything changed.
func (f *Farm) ApplyTombstone(t Tombstone) bool {
	if t.Site == "" || t.Version <= 0 {
		return false
	}
	if cur, ok := f.Get(t.Site); ok && cur.Version > t.Version {
		return false
	}
	if !f.rememberTomb(t) {
		return false
	}
	f.shardFor(t.Site).remove(t.Site)
	f.dirty.Store(true)
	return true
}

// VersionVector returns the farm's per-site rule and tombstone
// versions — the digest two nodes exchange to find divergence without
// shipping rule bodies.
func (f *Farm) VersionVector() (ruleV, tombV map[string]int) {
	g := govern.NewGuard(context.Background(), govern.Unlimited())
	list, _ := f.snapshotRules(g)
	ruleV = make(map[string]int, len(list))
	for _, r := range list {
		if g.Poll() != nil {
			break
		}
		ruleV[r.Site] = r.Version
	}
	tombs := f.Tombstones()
	tombV = make(map[string]int, len(tombs))
	for _, t := range tombs {
		if g.Poll() != nil {
			break
		}
		tombV[t.Site] = t.Version
	}
	return ruleV, tombV
}

// Etag is a strong hash of the farm's version vector: equal etags mean
// two nodes hold identical (site, version) sets for rules and
// tombstones alike, so an If-None-Match digest poll answers 304
// without walking rule bodies. FNV-64a over the sorted vector.
func (f *Farm) Etag() string {
	g := govern.NewGuard(context.Background(), govern.Unlimited())
	ruleV, tombV := f.VersionVector()
	h := fnv.New64a()
	for _, site := range sortedKeys(g, ruleV) {
		if g.Poll() != nil {
			break
		}
		fmt.Fprintf(h, "r %s=%d\n", site, ruleV[site])
	}
	for _, site := range sortedKeys(g, tombV) {
		if g.Poll() != nil {
			break
		}
		fmt.Fprintf(h, "t %s=%d\n", site, tombV[site])
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// sortedKeys returns m's keys in sorted order, charging the guard.
func sortedKeys(g *govern.Guard, m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		if g.Poll() != nil {
			break
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// SyncSnapshot assembles the farm's state as a canonical wire snapshot
// for a peer pull. An empty sites filter ships everything; otherwise
// only the named sites' rules and tombstones are included (the joining
// node asks only for the shards it now owns).
func (f *Farm) SyncSnapshot(sites []string) Snapshot {
	g := govern.NewGuard(context.Background(), govern.Unlimited())
	list, _ := f.snapshotRules(g)
	tombs := f.Tombstones()
	if len(sites) > 0 {
		want := make(map[string]bool, len(sites))
		for _, s := range sites {
			if g.Poll() != nil {
				break
			}
			want[s] = true
		}
		fr := list[:0]
		for _, r := range list {
			if g.Poll() != nil {
				break
			}
			if want[r.Site] {
				fr = append(fr, r)
			}
		}
		list = fr
		ft := tombs[:0]
		for _, t := range tombs {
			if g.Poll() != nil {
				break
			}
			if want[t.Site] {
				ft = append(ft, t)
			}
		}
		tombs = ft
	}
	return Snapshot{Version: SnapshotVersion, Rules: list, Tombstones: tombs}
}
