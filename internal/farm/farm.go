// Package farm is the wrapper farm: the rule-cache-first serving layer
// in front of internal/rules that industrializes the paper's Table 17
// observation — once a site's rule (subtree path + separator) is
// learned, extraction can skip Phase 2 discovery entirely, an
// order-of-magnitude latency win on repeat-host traffic.
//
// The farm keeps compiled per-site rules in a sharded in-memory LRU.
// The first request for a host runs full discovery under a singleflight
// (N concurrent first requests trigger exactly one discovery; the rest
// wait and replay the learned rule); every later request takes the
// rule fast path. Learned rules are treated as first-class, versioned,
// revalidated artifacts rather than a transient cache: they persist in
// a JSON-on-disk store (atomic writes, survives restarts, loadable via
// the ominiserve -rules snapshot path), each relearn bumps the rule's
// version, and a background revalidator samples fast-path extractions
// through wrapgen's drift detection so a site redesign evicts and
// relearns the rule instead of serving silent garbage.
//
// Everything the farm does is observable: farm.* counters (hits,
// misses, learns, coalesced, stale, drift checks/detections, relearns,
// evictions, store saves), a fast-vs-slow-path latency histogram split
// (farm.path_seconds{path="fast"|"slow"}), and rule-count / store-size
// gauges — all on /metricsz, with a per-site view on GET /rulesz.
package farm

import (
	"context"
	"errors"
	"io/fs"
	"runtime/pprof"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"omini/internal/core"
	"omini/internal/govern"
	"omini/internal/obs"
	"omini/internal/rules"
	"omini/internal/tagtree"
	"omini/internal/wrapgen"
)

// Config tunes a Farm. The zero value is usable: paper-default
// extractor, 16 shards × 4096 total rules, drift sampling every 32nd
// hit, revalidation sweep every minute, no persistence.
type Config struct {
	// Extractor runs both paths; nil builds one with default options.
	Extractor *core.Extractor
	// Shards is the lock-stripe count of the rule cache (default 16).
	Shards int
	// Capacity caps the total cached rules across all shards
	// (default 4096); the least recently used rule is evicted first.
	Capacity int
	// SampleEvery drift-samples every Nth fast-path hit per site
	// (default 32; negative disables sampling).
	SampleEvery int
	// SampleQueue bounds the pending revalidation samples (default 64);
	// excess samples are dropped, never blocking the serving path.
	SampleQueue int
	// DriftThreshold is the drift score past which a rule is evicted
	// and relearned (default wrapgen.DefaultDriftThreshold).
	DriftThreshold float64
	// RelearnInterval is the background sweep period: each sweep flags
	// every cached rule for revalidation on its next hit and flushes
	// the store if dirty (default 1m; negative disables the sweep).
	RelearnInterval time.Duration
	// StorePath persists the farm as a versioned snapshot: loaded at
	// New, saved by Run's sweeps and by Close. Empty disables
	// persistence.
	StorePath string
	// RecoverCorruptStore makes New treat an unreadable StorePath as an
	// empty store (logged) instead of failing; freshly learned rules
	// then overwrite the bad file on the next save. Servers set this —
	// a corrupt cache file should cost a cold start, not the process.
	RecoverCorruptStore bool
	// Stats receives the farm.* metrics; nil uses obs.Default.
	Stats *obs.Registry
	// Logger receives drift and store events; nil uses
	// obs.DefaultLogger().
	Logger *obs.Logger
}

const (
	defaultShards          = 16
	defaultCapacity        = 4096
	defaultSampleEvery     = 32
	defaultSampleQueue     = 64
	defaultRelearnInterval = time.Minute
)

// Outcome reports how one extraction was served.
type Outcome struct {
	// FromRule is true when the result came from cached-rule replay
	// (the fast path).
	FromRule bool
	// Learned is true when this request ran full discovery and stored
	// the resulting rule (a miss, or the singleflight leader).
	Learned bool
	// Relearned is true when a cached rule stopped matching and this
	// request rediscovered it (Learned is also true).
	Relearned bool
	// Coalesced is true when the request joined another request's
	// in-flight discovery instead of running its own.
	Coalesced bool
}

// sample is one fast-path extraction queued for background drift
// revalidation: the page (for relearning), its already-built tree (so
// the drift check costs no reparse), and the training signature plus
// version of the rule that served it.
type sample struct {
	site    string
	html    string
	root    *tagtree.Node
	sig     tagtree.Signature
	version int
}

// flight is one in-progress discovery other requests for the same
// site can wait on.
type flight struct {
	done chan struct{}
	rule rules.Rule
	err  error
}

// Farm is the rule-cache-first serving layer. Create with New; Run
// drives background revalidation and store flushes; Close final-saves.
type Farm struct {
	cfg    Config
	ex     *core.Extractor
	stats  *obs.Registry
	log    *obs.Logger
	shards []*shard

	flightMu sync.Mutex
	flights  map[string]*flight

	samples chan sample

	// tombs remembers deliberately evicted rules (site → highest killed
	// version) so anti-entropy sync cannot resurrect them; see sync.go.
	tombMu sync.Mutex
	tombs  map[string]Tombstone

	dirty      atomic.Bool
	storeBytes atomic.Int64
	saveMu     sync.Mutex
}

// New returns a farm, seeded from Config.StorePath when the file
// exists. A missing store file is a fresh start, not an error; a
// corrupt or too-new one is an error (the caller decides whether to
// boot empty).
func New(cfg Config) (*Farm, error) {
	if cfg.Extractor == nil {
		cfg.Extractor = core.New(core.Options{})
	}
	if cfg.Shards <= 0 {
		cfg.Shards = defaultShards
	}
	if cfg.Capacity <= 0 {
		cfg.Capacity = defaultCapacity
	}
	if cfg.SampleEvery == 0 {
		cfg.SampleEvery = defaultSampleEvery
	}
	if cfg.SampleQueue <= 0 {
		cfg.SampleQueue = defaultSampleQueue
	}
	if cfg.DriftThreshold <= 0 {
		cfg.DriftThreshold = wrapgen.DefaultDriftThreshold
	}
	if cfg.RelearnInterval == 0 {
		cfg.RelearnInterval = defaultRelearnInterval
	}
	if cfg.Stats == nil {
		cfg.Stats = obs.Default
	}
	if cfg.Logger == nil {
		cfg.Logger = obs.DefaultLogger()
	}
	f := &Farm{
		cfg:     cfg,
		ex:      cfg.Extractor,
		stats:   cfg.Stats,
		log:     cfg.Logger,
		flights: make(map[string]*flight),
		samples: make(chan sample, cfg.SampleQueue),
		tombs:   make(map[string]Tombstone),
	}
	perShard := (cfg.Capacity + cfg.Shards - 1) / cfg.Shards
	f.shards = make([]*shard, cfg.Shards)
	g := govern.NewGuard(context.Background(), govern.Unlimited())
	for i := range f.shards {
		if err := g.Poll(); err != nil {
			break
		}
		f.shards[i] = newShard(perShard, func(string) {
			f.stats.Add(SeriesEvictions, 1)
		})
	}
	f.registerMetrics()
	if cfg.StorePath != "" {
		if err := f.seedFile(g, cfg.StorePath, true); err != nil {
			if !cfg.RecoverCorruptStore {
				return nil, err
			}
			f.log.Error("farm: rule store unreadable; starting empty",
				"path", cfg.StorePath, "err", err.Error())
		}
	}
	return f, nil
}

// SeedFile merges a snapshot file (versioned farm store or legacy
// rules array) into the cache — the ominiserve -rules boot path. The
// file must exist.
func (f *Farm) SeedFile(path string) error {
	return f.seedFile(govern.NewGuard(context.Background(), govern.Unlimited()), path, false)
}

// seedFile loads path and inserts its rules. With allowMissing, a
// nonexistent file seeds nothing.
func (f *Farm) seedFile(g *govern.Guard, path string, allowMissing bool) error {
	snap, err := LoadSnapshot(path)
	if err != nil {
		if allowMissing && errors.Is(err, fs.ErrNotExist) {
			return nil
		}
		return err
	}
	// Tombstones first: a snapshot is already reconciled (no site holds
	// both a rule and a tombstone), but insert consults the tombstone
	// set, so the order keeps the invariant obvious.
	for _, t := range snap.Tombstones {
		if err := g.Poll(); err != nil {
			return err
		}
		f.rememberTomb(t)
	}
	n := 0
	for _, r := range snap.Rules {
		if err := g.Poll(); err != nil {
			return err
		}
		f.insert(r.Rule, r.Signature, r.Hits)
		n++
	}
	f.log.Info("farm: rule store loaded", "path", path, "rules", n, "tombstones", len(snap.Tombstones))
	return nil
}

// Extract serves one page: rule fast path on a cache hit, singleflight
// learn-on-miss otherwise. A site-less request runs plain discovery
// and is never cached. The returned Outcome reports which path served.
func (f *Farm) Extract(ctx context.Context, site, html string) (*core.Result, Outcome, error) {
	if site == "" {
		res, err := f.discover(ctx, html)
		return res, Outcome{}, err
	}
	if e := f.shardFor(site).get(site); e != nil {
		return f.serveFast(ctx, site, html, e)
	}
	f.stats.Add(SeriesMisses, 1)
	return f.learnOrJoin(ctx, site, html)
}

// serveFast replays the cached rule. A mismatch (the site changed)
// evicts the rule and falls through to rediscovery; any other failure
// (resource limits, cancellation) propagates untouched.
func (f *Farm) serveFast(ctx context.Context, site, html string, e *entry) (*core.Result, Outcome, error) {
	res, err := f.replayFast(ctx, html, e.rule)
	if err == nil {
		f.stats.Add(SeriesHits, 1)
		f.maybeSample(site, html, e, res)
		return res, Outcome{FromRule: true}, nil
	}
	if !errors.Is(err, core.ErrRuleMismatch) {
		return nil, Outcome{}, err
	}
	f.stats.Add(SeriesStale, 1)
	f.shardFor(site).remove(site)
	// The eviction is knowledge worth replicating: without a tombstone a
	// peer still holding this version would hand the dead rule straight
	// back on the next anti-entropy round.
	f.entomb(site, e.rule.Version)
	res, out, err := f.learnVersioned(ctx, site, html, e.rule.Version)
	if err == nil {
		f.stats.Add(SeriesRelearn, 1)
		out.Relearned = true
	}
	return res, out, err
}

// learnOrJoin is the singleflight learn-on-miss: the first request for
// a site runs discovery; concurrent requests wait for its rule and
// replay it on their own page.
func (f *Farm) learnOrJoin(ctx context.Context, site, html string) (*core.Result, Outcome, error) {
	f.flightMu.Lock()
	if fl := f.flights[site]; fl != nil {
		f.flightMu.Unlock()
		return f.join(ctx, fl, site, html)
	}
	fl := &flight{done: make(chan struct{})}
	f.flights[site] = fl
	f.flightMu.Unlock()

	res, out, err := f.learnVersioned(ctx, site, html, 0)
	if err == nil {
		fl.rule = res.Rule(site)
		fl.rule.Version = 1
		// A tombstone may have pushed the stored version higher; joiners
		// replay whatever version actually landed in the cache.
		if cur, ok := f.Get(site); ok {
			fl.rule.Version = cur.Version
		}
	}
	fl.err = err
	f.flightMu.Lock()
	delete(f.flights, site)
	f.flightMu.Unlock()
	close(fl.done)
	return res, out, err
}

// join waits for an in-flight discovery of the same site, then replays
// the learned rule on this request's own page. If the leader failed or
// its rule does not fit this page, the request falls back to its own
// discovery (the herd has already dispersed).
func (f *Farm) join(ctx context.Context, fl *flight, site, html string) (*core.Result, Outcome, error) {
	select {
	case <-fl.done:
	case <-ctx.Done():
		return nil, Outcome{}, ctx.Err()
	}
	f.stats.Add(SeriesCoalesced, 1)
	if fl.err == nil {
		if res, err := f.replayFast(ctx, html, fl.rule); err == nil {
			f.stats.Add(SeriesHits, 1)
			return res, Outcome{FromRule: true, Coalesced: true}, nil
		}
	}
	res, out, err := f.learnVersioned(ctx, site, html, 0)
	out.Coalesced = true
	return res, out, err
}

// learnVersioned runs full discovery, stores the rule at
// prevVersion+1 (raised past any tombstone, so a fresh learn always
// supersedes a remembered eviction), and records slow-path latency.
func (f *Farm) learnVersioned(ctx context.Context, site, html string, prevVersion int) (*core.Result, Outcome, error) {
	res, err := f.discover(ctx, html)
	if err != nil {
		return nil, Outcome{}, err
	}
	if tv := f.tombVersion(site); tv > prevVersion {
		prevVersion = tv
	}
	rule := res.Rule(site)
	rule.Version = prevVersion + 1
	var sig tagtree.Signature
	if res.Tree != nil {
		sig = tagtree.PathSignature(res.Tree)
	}
	f.insert(rule, sig, 0)
	f.stats.Add(SeriesLearns, 1)
	f.dirty.Store(true)
	return res, Outcome{Learned: true, Relearned: prevVersion > 0}, nil
}

// replayFast runs one cached-rule replay under the "farm.fast" span and
// pprof path label, recording fast-path latency (with a trace exemplar
// when the request is traced) on success.
func (f *Farm) replayFast(ctx context.Context, html string, rule rules.Rule) (*core.Result, error) {
	start := time.Now()
	fctx, sp := obs.StartSpan(ctx, "farm.fast")
	var res *core.Result
	var err error
	pprof.Do(fctx, pprof.Labels("path", "fast"), func(pctx context.Context) {
		res, err = f.ex.ExtractWithRuleContext(pctx, html, rule)
	})
	sp.End()
	if err != nil {
		return nil, err
	}
	obs.AnnotateTrace(ctx, "path", "fast")
	f.stats.ObserveExemplar(seriesFastSeconds, time.Since(start).Seconds(), obs.TraceIDStringFrom(ctx))
	return res, nil
}

// discover runs full Phase-2 discovery under the "farm.slow" span and
// pprof path label, recording slow-path latency (with a trace exemplar
// when the request is traced).
func (f *Farm) discover(ctx context.Context, html string) (*core.Result, error) {
	start := time.Now()
	sctx, sp := obs.StartSpan(ctx, "farm.slow")
	var res *core.Result
	var err error
	pprof.Do(sctx, pprof.Labels("path", "slow"), func(pctx context.Context) {
		res, err = f.ex.ExtractContext(pctx, html)
	})
	sp.End()
	if err != nil {
		return nil, err
	}
	obs.AnnotateTrace(ctx, "path", "slow")
	f.stats.ObserveExemplar(seriesSlowSeconds, time.Since(start).Seconds(), obs.TraceIDStringFrom(ctx))
	return res, nil
}

// insert stores a rule (with its training signature) in the cache,
// reporting whether it was admitted. A tombstone at or above the
// rule's version keeps the site dead (the eviction is newer
// knowledge); a rule above the tombstone clears it.
func (f *Farm) insert(rule rules.Rule, sig tagtree.Signature, hits int64) bool {
	if rule.Site == "" || !rule.Valid() {
		return false
	}
	if rule.Version <= 0 {
		rule.Version = 1
	}
	if !f.clearTomb(rule.Site, rule.Version) {
		return false
	}
	e := &entry{rule: rule, sig: sig}
	e.hits.count = hits
	f.shardFor(rule.Site).put(rule.Site, e)
	return true
}

// Put stores an externally learned rule (e.g. from wrapper learning)
// with its training signature, marking the store dirty. An
// unversioned rule lands one past the current rule or tombstone
// version, whichever is higher.
func (f *Farm) Put(rule rules.Rule, sig tagtree.Signature) {
	if rule.Version <= 0 {
		prev := 0
		if cur, ok := f.Get(rule.Site); ok {
			prev = cur.Version
		}
		if tv := f.tombVersion(rule.Site); tv > prev {
			prev = tv
		}
		rule.Version = prev + 1
	}
	if f.insert(rule, sig, 0) {
		f.dirty.Store(true)
	}
}

// Get returns the cached rule for a site without bumping recency
// (an inspection read, not a serve).
func (f *Farm) Get(site string) (rules.Rule, bool) {
	if site == "" {
		return rules.Rule{}, false
	}
	sh := f.shardFor(site)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	el, ok := sh.index[site]
	if !ok {
		return rules.Rule{}, false
	}
	return el.Value.(*lruItem).entry.rule, true
}

// Invalidate drops a site's cached rule, reporting whether one was
// cached. The eviction is entombed so replication cannot undo it.
func (f *Farm) Invalidate(site string) bool {
	cur, had := f.Get(site)
	removed := f.shardFor(site).remove(site)
	if removed {
		if had {
			f.entomb(site, cur.Version)
		}
		f.dirty.Store(true)
	}
	return removed
}

// Len returns the number of cached rules.
func (f *Farm) Len() int {
	g := govern.NewGuard(context.Background(), govern.Unlimited())
	n := 0
	for _, sh := range f.shards {
		if err := g.Poll(); err != nil {
			break
		}
		n += sh.len()
	}
	return n
}

// StoreBytes returns the encoded size of the last persisted snapshot
// (0 before the first save or without a store).
func (f *Farm) StoreBytes() int64 { return f.storeBytes.Load() }

// Rules snapshots every cached rule (with signature and hit count),
// sorted by site.
func (f *Farm) Rules() []StoredRule {
	g := govern.NewGuard(context.Background(), govern.Unlimited())
	out, _ := f.snapshotRules(g)
	return out
}

// snapshotRules collects and sorts the cache contents under the guard.
func (f *Farm) snapshotRules(g *govern.Guard) ([]StoredRule, error) {
	var out []StoredRule
	var err error
	for _, sh := range f.shards {
		if out, err = sh.snapshot(g, out); err != nil {
			return out, err
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Site < out[j].Site })
	return out, nil
}

// maybeSample enqueues a fast-path extraction for background drift
// revalidation: every SampleEvery-th hit of a site, plus any hit after
// a periodic sweep flagged the entry. Sampling never blocks serving;
// a full queue drops the sample (counted).
func (f *Farm) maybeSample(site, html string, e *entry, res *core.Result) {
	if len(e.sig) == 0 || res.Tree == nil {
		return
	}
	n, forced := e.hits.next()
	if !forced && (f.cfg.SampleEvery <= 0 || n%int64(f.cfg.SampleEvery) != 0) {
		return
	}
	s := sample{site: site, html: html, root: res.Tree, sig: e.sig, version: e.rule.Version}
	select {
	case f.samples <- s:
	default:
		f.stats.Add(SeriesSampleDropped, 1)
		if forced {
			e.hits.flag() // keep the sweep's claim for the next hit
		}
	}
}

// Revalidate synchronously processes every pending drift sample and
// returns how many it handled. Run calls it continuously; tests call
// it directly for deterministic drift handling.
func (f *Farm) Revalidate(ctx context.Context) int {
	g := govern.NewGuard(ctx, govern.Unlimited())
	n := 0
	for {
		if err := g.Poll(); err != nil {
			return n
		}
		select {
		case s := <-f.samples:
			f.revalidateOne(ctx, s)
			n++
		default:
			return n
		}
	}
}

// revalidateOne drift-checks one sampled page against its rule's
// training signature; past the threshold the rule is evicted and
// relearned from the sampled page, version bumped.
func (f *Farm) revalidateOne(ctx context.Context, s sample) {
	f.stats.Add(SeriesDriftChecks, 1)
	drift := wrapgen.DriftScore(s.sig, s.root)
	if drift <= f.cfg.DriftThreshold {
		return
	}
	f.stats.Add(SeriesDriftDetected, 1)
	f.log.Warn("farm: layout drift detected; relearning",
		"site", s.site, "drift", drift, "ruleVersion", s.version)
	f.shardFor(s.site).remove(s.site)
	// Drift-evicted rules propagate as tombstones: a peer that has not
	// seen the redesign yet must not hand the dead rule back.
	f.entomb(s.site, s.version)
	if _, _, err := f.learnVersioned(ctx, s.site, s.html, s.version); err != nil {
		f.stats.Add(SeriesRelearnFailures, 1)
		f.log.Error("farm: relearn after drift failed", "site", s.site, "err", err.Error())
		return
	}
	f.stats.Add(SeriesRelearn, 1)
}

// Run drives the farm's background work until ctx is cancelled:
// draining the drift-sample queue as samples arrive, and on every
// RelearnInterval tick flagging all cached rules for revalidation on
// their next hit and flushing the store if dirty. The final save runs
// on cancellation.
func (f *Farm) Run(ctx context.Context) error {
	interval := f.cfg.RelearnInterval
	if interval <= 0 {
		interval = time.Duration(1<<62 - 1) // sweep disabled; still drain samples
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	g := govern.NewGuard(ctx, govern.Unlimited())
	for {
		if err := g.Poll(); err != nil {
			break
		}
		select {
		case <-ctx.Done():
			f.saveIfDirty()
			return ctx.Err()
		case s := <-f.samples:
			f.revalidateOne(ctx, s)
		case <-ticker.C:
			_ = f.sweep(g)
			f.saveIfDirty()
		}
	}
	f.saveIfDirty()
	return ctx.Err()
}

// sweep flags every cached rule for drift revalidation on its next
// hit — the RelearnInterval contract: under traffic, every rule is
// rechecked at least once per interval.
func (f *Farm) sweep(g *govern.Guard) error {
	for _, sh := range f.shards {
		if err := sh.flagAll(g); err != nil {
			return err
		}
	}
	return nil
}

// saveIfDirty persists the store when something changed since the
// last save.
func (f *Farm) saveIfDirty() {
	if f.cfg.StorePath == "" || !f.dirty.Swap(false) {
		return
	}
	if err := f.Save(); err != nil {
		f.dirty.Store(true) // retry on the next sweep
		f.stats.Add(SeriesStoreErrors, 1)
		f.log.Error("farm: rule store save failed", "path", f.cfg.StorePath, "err", err.Error())
	}
}

// Save persists the cache as a versioned snapshot at Config.StorePath
// (no-op without one). Saves are serialized; concurrent mutation
// between snapshot and write is safe because writes are atomic.
func (f *Farm) Save() error {
	if f.cfg.StorePath == "" {
		return nil
	}
	f.saveMu.Lock()
	defer f.saveMu.Unlock()
	list, err := f.snapshotRules(govern.NewGuard(context.Background(), govern.Unlimited()))
	if err != nil {
		return err
	}
	n, err := SaveSnapshot(f.cfg.StorePath, Snapshot{
		Version:    SnapshotVersion,
		Rules:      list,
		Tombstones: f.Tombstones(),
	})
	if err != nil {
		return err
	}
	f.storeBytes.Store(n)
	f.stats.Add(SeriesStoreSaves, 1)
	f.log.Info("farm: rule store saved", "path", f.cfg.StorePath, "rules", len(list), "bytes", n)
	return nil
}

// Close final-saves the store (when dirty). The farm has no other
// resources to release; Run's goroutine stops with its context.
func (f *Farm) Close() error {
	if f.cfg.StorePath == "" || !f.dirty.Swap(false) {
		return nil
	}
	return f.Save()
}
