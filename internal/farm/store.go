package farm

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"omini/internal/govern"
	"omini/internal/rules"
	"omini/internal/tagtree"
)

// The persisted rule store: a versioned JSON snapshot of every learned
// rule plus its training-page signature, written atomically (temp file
// + rename, like the fetch cache) so a crash mid-save can never leave
// a torn store. The rules array inside the envelope is a superset of
// the rules.Store format — rules.Load reads a farm snapshot directly,
// which is what lets the ominiserve -rules flag accept either file.

// SnapshotVersion is the store format version this package writes.
const SnapshotVersion = 1

// ErrSnapshotVersion is returned when a snapshot was written by a
// newer format version than this binary understands.
var ErrSnapshotVersion = errors.New("farm: snapshot format version too new")

// StoredRule is one persisted rule: the replayable extraction rule,
// the training-page signature for drift revalidation, and the hit
// count at save time (informational).
type StoredRule struct {
	rules.Rule
	// Signature is the training page's tag-path structure; an empty
	// signature disables drift checks for the rule until it is
	// relearned.
	Signature tagtree.Signature `json:"signature,omitempty"`
	// Hits is the rule's fast-path hit count when the snapshot was
	// taken.
	Hits int64 `json:"hits,omitempty"`
}

// Snapshot is the on-disk envelope.
type Snapshot struct {
	Version int          `json:"version"`
	Rules   []StoredRule `json:"rules"`
}

// DecodeSnapshot parses a snapshot from its JSON encoding. Both the
// versioned envelope and a bare rules array (the legacy rules.Store
// format) are accepted; the result is canonical — invalid rules
// dropped, one rule per site (last wins), sorted by site — so
// decode∘encode is a fixed point.
func DecodeSnapshot(data []byte) (Snapshot, error) {
	var snap Snapshot
	if isJSONArray(data) {
		if err := json.Unmarshal(data, &snap.Rules); err != nil {
			return Snapshot{}, fmt.Errorf("farm: decode rules array: %w", err)
		}
		snap.Version = SnapshotVersion
	} else {
		if err := json.Unmarshal(data, &snap); err != nil {
			return Snapshot{}, fmt.Errorf("farm: decode snapshot: %w", err)
		}
		if snap.Version > SnapshotVersion {
			return Snapshot{}, fmt.Errorf("%w: %d > %d", ErrSnapshotVersion, snap.Version, SnapshotVersion)
		}
		snap.Version = SnapshotVersion
	}
	snap.Rules = canonicalRules(nil, snap.Rules)
	return snap, nil
}

// EncodeSnapshot serializes a snapshot in canonical form: current
// format version, invalid rules dropped, one rule per site, sorted.
func EncodeSnapshot(snap Snapshot) ([]byte, error) {
	snap.Version = SnapshotVersion
	snap.Rules = canonicalRules(nil, snap.Rules)
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("farm: encode snapshot: %w", err)
	}
	return append(data, '\n'), nil
}

// canonicalRules filters invalid rules, deduplicates by site (last
// wins) and sorts by site, charging the guard per rule.
func canonicalRules(g *govern.Guard, in []StoredRule) []StoredRule {
	bySite := make(map[string]StoredRule, len(in))
	order := make([]string, 0, len(in))
	for _, r := range in {
		if g.Poll() != nil {
			break
		}
		if r.Site == "" || !r.Valid() {
			continue
		}
		if _, seen := bySite[r.Site]; !seen {
			order = append(order, r.Site)
		}
		bySite[r.Site] = r
	}
	sort.Strings(order)
	out := make([]StoredRule, 0, len(order))
	for _, site := range order {
		if g.Poll() != nil {
			break
		}
		out = append(out, bySite[site])
	}
	return out
}

// isJSONArray reports whether the document's first token opens an
// array (the legacy rules.Store format) rather than an envelope.
func isJSONArray(data []byte) bool {
	for _, b := range data {
		switch b {
		case ' ', '\t', '\n', '\r':
			continue
		}
		return b == '['
	}
	return false
}

// LoadSnapshot reads and decodes a snapshot file.
func LoadSnapshot(path string) (Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Snapshot{}, fmt.Errorf("farm: load snapshot: %w", err)
	}
	return DecodeSnapshot(data)
}

// SaveSnapshot writes the snapshot atomically: encode, write to a
// temp file in the destination directory, rename into place. Returns
// the encoded size.
func SaveSnapshot(path string, snap Snapshot) (int64, error) {
	data, err := EncodeSnapshot(snap)
	if err != nil {
		return 0, err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".rulestore-*")
	if err != nil {
		return 0, fmt.Errorf("farm: snapshot temp file: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return 0, fmt.Errorf("farm: snapshot write: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return 0, fmt.Errorf("farm: snapshot close: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return 0, fmt.Errorf("farm: snapshot rename: %w", err)
	}
	return int64(len(data)), nil
}
