package farm

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"omini/internal/govern"
	"omini/internal/rules"
	"omini/internal/tagtree"
)

// The persisted rule store: a versioned JSON snapshot of every learned
// rule plus its training-page signature, written atomically (temp file
// + fsync + rename, then a directory fsync) so a crash mid-save can
// never leave a torn or zero-length store. The rules array inside the
// envelope is a superset of the rules.Store format — rules.Load reads
// a farm snapshot directly, which is what lets the ominiserve -rules
// flag accept either file.

// SnapshotVersion is the store format version this package writes.
// Version 2 added tombstones: deliberately evicted rules are recorded
// so anti-entropy sync between nodes cannot resurrect a redesigned
// site's dead rule. Version-1 files (which simply carry no tombstones)
// still load; the ceiling is shared with internal/rules so both
// readers agree on what "too new" means.
const SnapshotVersion = rules.MaxSnapshotVersion

// ErrSnapshotVersion is returned when a snapshot was written by a
// newer format version than this binary understands.
var ErrSnapshotVersion = errors.New("farm: snapshot format version too new")

// StoredRule is one persisted rule: the replayable extraction rule,
// the training-page signature for drift revalidation, and the hit
// count at save time (informational).
type StoredRule struct {
	rules.Rule
	// Signature is the training page's tag-path structure; an empty
	// signature disables drift checks for the rule until it is
	// relearned.
	Signature tagtree.Signature `json:"signature,omitempty"`
	// Hits is the rule's fast-path hit count when the snapshot was
	// taken.
	Hits int64 `json:"hits,omitempty"`
}

// Tombstone records a deliberately killed rule: the site and the
// version the rule carried when drift detection, a fast-path mismatch
// or an explicit invalidation evicted it. During anti-entropy sync a
// tombstone suppresses any peer copy at or below its version, so a
// stale node cannot resurrect a redesigned site's dead rule; a fresh
// relearn lands above the tombstone's version and clears it.
type Tombstone struct {
	Site      string    `json:"site"`
	Version   int       `json:"version"`
	EvictedAt time.Time `json:"evictedAt"`
}

// Snapshot is the on-disk envelope (and the ruledist wire format).
type Snapshot struct {
	Version    int          `json:"version"`
	Rules      []StoredRule `json:"rules"`
	Tombstones []Tombstone  `json:"tombstones,omitempty"`
}

// DecodeSnapshot parses a snapshot from its JSON encoding. The
// versioned envelope (v1 without tombstones, v2 with) and a bare rules
// array (the legacy rules.Store format) are all accepted; the result
// is canonical — invalid rules and malformed tombstones dropped, one
// entry per site, rules and tombstones reconciled under the version
// conflict rule, sorted by site — so decode∘encode is a fixed point.
func DecodeSnapshot(data []byte) (Snapshot, error) {
	var snap Snapshot
	if isJSONArray(data) {
		if err := json.Unmarshal(data, &snap.Rules); err != nil {
			return Snapshot{}, fmt.Errorf("farm: decode rules array: %w", err)
		}
		snap.Version = SnapshotVersion
	} else {
		if err := json.Unmarshal(data, &snap); err != nil {
			return Snapshot{}, fmt.Errorf("farm: decode snapshot: %w", err)
		}
		if snap.Version > SnapshotVersion {
			return Snapshot{}, fmt.Errorf("%w: %d > %d", ErrSnapshotVersion, snap.Version, SnapshotVersion)
		}
		snap.Version = SnapshotVersion
	}
	snap.Rules, snap.Tombstones = canonicalize(nil, snap.Rules, snap.Tombstones)
	return snap, nil
}

// EncodeSnapshot serializes a snapshot in canonical form: current
// format version, invalid entries dropped, one entry per site,
// rules/tombstones reconciled, sorted.
func EncodeSnapshot(snap Snapshot) ([]byte, error) {
	snap.Version = SnapshotVersion
	snap.Rules, snap.Tombstones = canonicalize(nil, snap.Rules, snap.Tombstones)
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("farm: encode snapshot: %w", err)
	}
	return append(data, '\n'), nil
}

// canonicalize produces the canonical rule and tombstone lists,
// applying the cluster-wide version conflict rule between them: a
// tombstone at or above a rule's version suppresses the rule (the
// eviction is newer knowledge); a rule above the tombstone's version
// clears the tombstone (the relearn superseded the eviction). The
// result never holds both a rule and a tombstone for one site.
func canonicalize(g *govern.Guard, rs []StoredRule, ts []Tombstone) ([]StoredRule, []Tombstone) {
	rs = canonicalRules(g, rs)
	ts = canonicalTombstones(g, ts)
	if len(ts) == 0 {
		return rs, ts
	}
	tombV := make(map[string]int, len(ts))
	for _, t := range ts {
		if g.Poll() != nil {
			break
		}
		tombV[t.Site] = t.Version
	}
	ruleV := make(map[string]int, len(rs))
	outR := make([]StoredRule, 0, len(rs))
	for _, r := range rs {
		if g.Poll() != nil {
			break
		}
		if tv, ok := tombV[r.Site]; ok && tv >= r.Version {
			continue // the tombstone wins; the rule stays dead
		}
		ruleV[r.Site] = r.Version
		outR = append(outR, r)
	}
	outT := make([]Tombstone, 0, len(ts))
	for _, t := range ts {
		if g.Poll() != nil {
			break
		}
		if rv, ok := ruleV[t.Site]; ok && rv > t.Version {
			continue // a newer rule cleared this tombstone
		}
		outT = append(outT, t)
	}
	if len(outT) == 0 {
		outT = nil // encode omits the field entirely (omitempty)
	}
	return outR, outT
}

// canonicalRules filters invalid rules, deduplicates by site (last
// wins) and sorts by site, charging the guard per rule.
func canonicalRules(g *govern.Guard, in []StoredRule) []StoredRule {
	bySite := make(map[string]StoredRule, len(in))
	order := make([]string, 0, len(in))
	for _, r := range in {
		if g.Poll() != nil {
			break
		}
		if r.Site == "" || !r.Valid() {
			continue
		}
		if r.Version <= 0 {
			r.Version = 1 // pre-versioning rules normalize to v1
		}
		if _, seen := bySite[r.Site]; !seen {
			order = append(order, r.Site)
		}
		bySite[r.Site] = r
	}
	sort.Strings(order)
	out := make([]StoredRule, 0, len(order))
	for _, site := range order {
		if g.Poll() != nil {
			break
		}
		out = append(out, bySite[site])
	}
	return out
}

// canonicalTombstones filters malformed tombstones, deduplicates by
// site (highest version wins) and sorts by site, charging the guard.
func canonicalTombstones(g *govern.Guard, in []Tombstone) []Tombstone {
	bySite := make(map[string]Tombstone, len(in))
	order := make([]string, 0, len(in))
	for _, t := range in {
		if g.Poll() != nil {
			break
		}
		if t.Site == "" || t.Version <= 0 {
			continue
		}
		prev, seen := bySite[t.Site]
		if !seen {
			order = append(order, t.Site)
		}
		if !seen || t.Version >= prev.Version {
			bySite[t.Site] = t
		}
	}
	sort.Strings(order)
	out := make([]Tombstone, 0, len(order))
	for _, site := range order {
		if g.Poll() != nil {
			break
		}
		out = append(out, bySite[site])
	}
	return out
}

// isJSONArray reports whether the document's first token opens an
// array (the legacy rules.Store format) rather than an envelope.
func isJSONArray(data []byte) bool {
	for _, b := range data {
		switch b {
		case ' ', '\t', '\n', '\r':
			continue
		}
		return b == '['
	}
	return false
}

// LoadSnapshot reads and decodes a snapshot file.
func LoadSnapshot(path string) (Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Snapshot{}, fmt.Errorf("farm: load snapshot: %w", err)
	}
	return DecodeSnapshot(data)
}

// SaveSnapshot writes the snapshot atomically and durably: encode,
// write to a temp file in the destination directory, fsync the temp
// file, rename into place, fsync the directory. The two fsyncs are
// what make the rename crash-safe — without them a power cut shortly
// after the rename can surface as a zero-length (or vanished) store
// on some filesystems, which is exactly the torn state the atomic
// rename exists to rule out. Returns the encoded size.
func SaveSnapshot(path string, snap Snapshot) (int64, error) {
	data, err := EncodeSnapshot(snap)
	if err != nil {
		return 0, err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".rulestore-*")
	if err != nil {
		return 0, fmt.Errorf("farm: snapshot temp file: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return 0, fmt.Errorf("farm: snapshot write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return 0, fmt.Errorf("farm: snapshot fsync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return 0, fmt.Errorf("farm: snapshot close: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return 0, fmt.Errorf("farm: snapshot rename: %w", err)
	}
	if err := syncDir(dir); err != nil {
		return 0, err
	}
	return int64(len(data)), nil
}

// syncDir fsyncs a directory so a just-renamed entry survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("farm: snapshot dir open: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("farm: snapshot dir fsync: %w", err)
	}
	return nil
}
