package farm

import (
	"container/list"
	"hash/fnv"
	"sync"

	"omini/internal/govern"
	"omini/internal/rules"
	"omini/internal/tagtree"
)

// entry is one cached, compiled per-site rule: the replayable rule
// itself plus the training-page signature the drift sampler compares
// live pages against. Hit counts and the revalidation flag are atomic
// so the fast path never takes a shard lock twice.
type entry struct {
	rule rules.Rule
	sig  tagtree.Signature

	hits needsCheckCounter
}

// needsCheckCounter bundles the per-entry sampling state. Kept as its
// own struct so entry copies in snapshots can drop it explicitly.
type needsCheckCounter struct {
	mu         sync.Mutex
	count      int64
	needsCheck bool
}

// next advances the hit count and reports (count, forced): forced is
// true when a periodic revalidation sweep flagged this entry since the
// last sample.
func (c *needsCheckCounter) next() (int64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.count++
	forced := c.needsCheck
	c.needsCheck = false
	return c.count, forced
}

// load returns the current hit count.
func (c *needsCheckCounter) load() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.count
}

// flag marks the entry for revalidation on its next hit.
func (c *needsCheckCounter) flag() {
	c.mu.Lock()
	c.needsCheck = true
	c.mu.Unlock()
}

// shard is one lock-striped slice of the rule cache: an LRU list plus
// a site index. The farm routes each site to one shard by hash, so
// concurrent traffic for distinct hosts rarely contends on a lock.
type shard struct {
	mu      sync.Mutex
	cap     int
	index   map[string]*list.Element // site → element holding *lruItem
	order   *list.List               // front = most recently used
	evicted func(site string)        // capacity-eviction callback (metrics)
}

// lruItem is the list payload: the site key plus its entry.
type lruItem struct {
	site  string
	entry *entry
}

func newShard(capacity int, evicted func(string)) *shard {
	return &shard{
		cap:     capacity,
		index:   make(map[string]*list.Element),
		order:   list.New(),
		evicted: evicted,
	}
}

// get returns the site's entry and bumps its recency, or nil.
func (s *shard) get(site string) *entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.index[site]
	if !ok {
		return nil
	}
	s.order.MoveToFront(el)
	return el.Value.(*lruItem).entry
}

// put inserts or replaces the site's entry, evicting the least
// recently used entry when the shard is over capacity.
func (s *shard) put(site string, e *entry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.index[site]; ok {
		el.Value.(*lruItem).entry = e
		s.order.MoveToFront(el)
		return
	}
	s.index[site] = s.order.PushFront(&lruItem{site: site, entry: e})
	if s.cap > 0 && s.order.Len() > s.cap {
		oldest := s.order.Back()
		if oldest != nil {
			item := oldest.Value.(*lruItem)
			s.order.Remove(oldest)
			delete(s.index, item.site)
			if s.evicted != nil {
				s.evicted(item.site)
			}
		}
	}
}

// remove drops the site's entry if present, reporting whether it was.
func (s *shard) remove(site string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.index[site]
	if !ok {
		return false
	}
	s.order.Remove(el)
	delete(s.index, site)
	return true
}

// len returns the shard's entry count.
func (s *shard) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.order.Len()
}

// snapshot appends a copy of every (site, rule, signature, hits)
// triple to dst, charging the guard per entry.
func (s *shard) snapshot(g *govern.Guard, dst []StoredRule) ([]StoredRule, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for el := s.order.Front(); el != nil; el = el.Next() {
		if err := g.Poll(); err != nil {
			return dst, err
		}
		item := el.Value.(*lruItem)
		dst = append(dst, StoredRule{
			Rule:      item.entry.rule,
			Signature: item.entry.sig,
			Hits:      item.entry.hits.load(),
		})
	}
	return dst, nil
}

// flagAll marks every entry for revalidation on its next hit, charging
// the guard per entry.
func (s *shard) flagAll(g *govern.Guard) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for el := s.order.Front(); el != nil; el = el.Next() {
		if err := g.Poll(); err != nil {
			return err
		}
		el.Value.(*lruItem).entry.hits.flag()
	}
	return nil
}

// shardFor hashes a site onto its shard (FNV-1a, like the cluster
// ring, so the distribution is stable across restarts).
func (f *Farm) shardFor(site string) *shard {
	h := fnv.New32a()
	_, _ = h.Write([]byte(site))
	return f.shards[h.Sum32()%uint32(len(f.shards))]
}
