package lint

// lockhold: no sync.Mutex or sync.RWMutex may be held across a
// blocking operation. The serving path's locks (cluster membership,
// farm singleflight tables, replicator etags) guard in-memory maps; a
// lock held across an HTTP round-trip, a channel operation, or a
// wait turns one slow peer into a pile-up behind the mutex. The
// analyzer propagates a "held locks" set along CFG edges from each
// Lock/RLock to the matching Unlock (a deferred unlock holds to
// function exit, which is the point) and reports any node that may
// block while the set is non-empty. Callees are classified through
// the run's call-graph facts, so a helper that transitively performs
// a round-trip counts as blocking at its call site.

import (
	"go/ast"
	"go/token"
	"go/types"
)

func newLockhold() *Analyzer {
	return &Analyzer{
		Name: "lockhold",
		Doc:  "no sync.Mutex/RWMutex held across blocking calls, channel operations, or waits",
		Run:  runLockhold,
	}
}

func runLockhold(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkLockhold(pass, fd.Body)
			// Closures get their own graphs: a literal that locks and
			// blocks is the same bug in a smaller scope.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					checkLockhold(pass, lit.Body)
				}
				return true
			})
		}
	}
}

// lockState is the set of possibly-held lock keys ("c.mu") at a
// program point.
type lockState map[string]bool

func (s lockState) clone() lockState {
	out := make(lockState, len(s))
	for k := range s {
		out[k] = true
	}
	return out
}

// mergeInto unions src into dst, reporting whether dst grew.
func mergeInto(dst, src lockState) bool {
	grew := false
	for k := range src {
		if !dst[k] {
			dst[k] = true
			grew = true
		}
	}
	return grew
}

func checkLockhold(pass *Pass, body *ast.BlockStmt) {
	cfg := pass.FuncCFG(body)
	// Fixed-point dataflow: in[b] is the union of lock sets over every
	// path reaching b (may-analysis — a lock released on only one
	// branch is still possibly held after the join).
	in := make(map[*Block]lockState, len(cfg.Blocks))
	in[cfg.Entry] = lockState{}
	work := []*Block{cfg.Entry}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		state := in[b].clone()
		for _, n := range b.Stmts {
			applyLockEffects(pass.Info, n, state)
		}
		for _, succ := range b.Succs {
			if in[succ] == nil {
				in[succ] = state.clone()
				work = append(work, succ)
			} else if mergeInto(in[succ], state) {
				work = append(work, succ)
			}
		}
	}
	// Reporting pass: replay each reachable block once with its final
	// entry state.
	reported := make(map[token.Pos]bool)
	for _, b := range cfg.Blocks {
		state, ok := in[b]
		if !ok {
			continue
		}
		state = state.clone()
		for _, n := range b.Stmts {
			if len(state) > 0 {
				if what, pos := blockingPoint(pass, n); what != "" && !reported[pos] {
					reported[pos] = true
					for _, k := range sortedKeys(state) {
						pass.Reportf(pos, "lock %s is held across %s", k, what)
					}
				}
			}
			applyLockEffects(pass.Info, n, state)
		}
	}
}

func sortedKeys(s lockState) []string {
	out := make([]string, 0, len(s))
	for k := range s {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// applyLockEffects updates the held-lock set for one block node:
// direct Lock/RLock adds the mutex, direct Unlock/RUnlock removes it,
// and a deferred unlock is a no-op (the lock stays held to exit).
func applyLockEffects(info *types.Info, n ast.Node, state lockState) {
	if _, ok := n.(*ast.DeferStmt); ok {
		return
	}
	inspectShallow(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		if key := mutexLockCall(info, call); key != "" {
			state[key] = true
		}
		if key := mutexUnlockCall(info, call); key != "" {
			delete(state, key)
		}
		return true
	})
}

// blockingPoint reports what, if anything, blocks in node n: a
// blocking call (by intrinsics or call-graph facts), a channel send
// or receive, a select without default, or a range over a channel.
// Function-literal bodies are skipped — they execute elsewhere.
func blockingPoint(pass *Pass, n ast.Node) (what string, pos token.Pos) {
	switch m := n.(type) {
	case *ast.DeferStmt:
		// The deferred call runs at exit, after this path's analysis
		// window; deferred unlocks are the usual content anyway.
		return "", token.NoPos
	case *RangeHead:
		if tv, ok := pass.Info.Types[m.Range.X]; ok {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				return "a range over a channel", m.Range.Pos()
			}
		}
		// The ranged expression itself may contain a blocking call.
		n = m.Range.X
	case *SelectHead:
		if !m.HasDefault {
			return "a blocking select", m.Select.Pos()
		}
		return "", token.NoPos
	case *CommOp:
		// The operation was chosen at the SelectHead; running the
		// clause does not block again.
		return "", token.NoPos
	}
	found := ""
	var at token.Pos
	inspectShallow(n, func(m ast.Node) bool {
		if found != "" {
			return false
		}
		switch m := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			found, at = "a channel send", m.Arrow
		case *ast.UnaryExpr:
			if m.Op == token.ARROW {
				found, at = "a channel receive", m.OpPos
			}
		case *ast.CallExpr:
			if pass.Facts.CallBlocks(pass.Info, m) {
				found, at = "blocking call "+callName(pass.Info, m), m.Pos()
			}
		}
		return true
	})
	return found, at
}

// callName renders a call target for diagnostics ("http.Client.Do",
// "syncPeer").
func callName(info *types.Info, call *ast.CallExpr) string {
	if fn, ok := calleeObject(info, call).(*types.Func); ok {
		if key := funcFactKey(fn); key != "" {
			return key
		}
		return fn.Name()
	}
	return types.ExprString(call.Fun)
}
