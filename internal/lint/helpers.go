package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// lastSegment returns the final element of an import path, which is
// how the analyzers scope themselves to project packages ("serve",
// "core", the seven phase packages) while staying testable against
// fixture trees with different module prefixes.
func lastSegment(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// namedType reports whether t (after pointer dereference) is the named
// type pkgName.typeName.
func namedType(t types.Type, pkgName, typeName string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Name() == pkgName && obj.Name() == typeName
}

// isGuardPtr reports whether t is *govern.Guard.
func isGuardPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	return ok && namedType(ptr.Elem(), "govern", "Guard")
}

// carriesGuard reports whether t (after pointer dereference) is a
// struct with a *govern.Guard field — the guard-carrying-state pattern
// (tidy's normalizer) that forwards budget charges through methods.
func carriesGuard(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if isGuardPtr(st.Field(i).Type()) {
			return true
		}
	}
	return false
}

// signatureTakesGuard reports whether sig has a *govern.Guard
// parameter.
func signatureTakesGuard(sig *types.Signature) bool {
	if sig == nil {
		return false
	}
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if isGuardPtr(params.At(i).Type()) {
			return true
		}
	}
	return false
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	return namedType(t, "context", "Context")
}

// errorIface is the universe error interface.
var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// implementsError reports whether t statically satisfies the error
// interface. The untyped nil and empty interfaces do not.
func implementsError(t types.Type) bool {
	if t == nil {
		return false
	}
	if basic, ok := t.(*types.Basic); ok && basic.Kind() == types.UntypedNil {
		return false
	}
	if iface, ok := t.Underlying().(*types.Interface); ok && iface.Empty() {
		return false
	}
	return types.Implements(t, errorIface)
}

// constStringOf returns the compile-time constant string value of
// expr, if it has one.
func constStringOf(info *types.Info, expr ast.Expr) (string, bool) {
	tv, ok := info.Types[expr]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// calleeObject resolves the object a call expression invokes (function
// or method), or nil for calls through function values.
func calleeObject(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	}
	return nil
}

// isPkgFunc reports whether the call invokes the package-level
// function pkgName.funcName.
func isPkgFunc(info *types.Info, call *ast.CallExpr, pkgName, funcName string) bool {
	obj := calleeObject(info, call)
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	fn, ok := obj.(*types.Func)
	return ok && fn.Pkg().Name() == pkgName && fn.Name() == funcName &&
		fn.Type().(*types.Signature).Recv() == nil
}

// funcKey identifies a function for baselining: "Recv.Name" for
// methods (pointer stripped), "Name" otherwise.
func funcKey(decl *ast.FuncDecl) string {
	if decl.Recv == nil || len(decl.Recv.List) == 0 {
		return decl.Name.Name
	}
	t := decl.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver
		t = idx.X
	}
	if ident, ok := t.(*ast.Ident); ok {
		return ident.Name + "." + decl.Name.Name
	}
	return decl.Name.Name
}
