package lint

// A lightweight per-function control-flow graph over go/ast statements,
// built with no dependencies beyond the stdlib (no x/tools). The CFG is
// the substrate for the concurrency and resource-hygiene analyzers
// (lockhold, bodyclose, spanend): basic blocks hold statements in
// execution order, edges follow branches, loops (with back edges),
// switch/select dispatch, and early returns, and defer statements stay
// in their registration block so a path-walk sees exactly the defers
// that will run at exit on that path.
//
// Compound statements never appear whole in a block: a block holds the
// atomic statements plus branch/loop head expressions, so an analyzer
// can inspect Block.Stmts without re-walking nested bodies. Two marker
// node types (RangeHead, SelectHead) stand in for range-loop and
// select heads, which have no atomic AST equivalent; analyzers must
// unwrap them before calling ast.Inspect.

import (
	"go/ast"
	"go/token"
)

// Block is one basic block: nodes that execute in order with no
// internal branching.
type Block struct {
	// Index is the block's position in CFG.Blocks (entry is 0).
	Index int
	// Stmts are the block's nodes in execution order: atomic
	// statements, branch condition expressions, and the RangeHead /
	// SelectHead markers.
	Stmts []ast.Node
	// Succs are the successor blocks in control-flow order.
	Succs []*Block
	// Cond, when non-nil, is the two-way branch condition ending the
	// block: Succs[0] is the true edge and Succs[1] the false edge.
	// Only if-statements and for-loop conditions set it.
	Cond ast.Expr
}

// CFG is the control-flow graph of one function body.
type CFG struct {
	// Entry is the block execution starts in.
	Entry *Block
	// Exit is the single synthetic exit block every return reaches.
	// Panic paths terminate without reaching Exit.
	Exit *Block
	// Blocks lists every block, entry first.
	Blocks []*Block
}

// RangeHead marks the per-iteration head of a range loop in a block:
// the ranged expression is evaluated (and, for channels, received
// from) here, while the loop body lives in the successor blocks.
type RangeHead struct {
	Range *ast.RangeStmt
}

func (r *RangeHead) Pos() token.Pos { return r.Range.Pos() }
func (r *RangeHead) End() token.Pos { return r.Range.X.End() }

// SelectHead marks the dispatch point of a select statement; the
// communication clauses live in the successor blocks. A select without
// a default clause blocks here.
type SelectHead struct {
	Select     *ast.SelectStmt
	HasDefault bool
}

func (s *SelectHead) Pos() token.Pos { return s.Select.Pos() }
func (s *SelectHead) End() token.Pos { return s.Select.Pos() + 6 }

// CommOp wraps a select communication statement inside its clause
// block: by the time the clause runs, the operation was already chosen
// at the SelectHead, so the send or receive itself does not block
// there. inspectShallow unwraps the marker so value flow (bindings,
// hand-offs) stays visible to the analyzers.
type CommOp struct {
	Stmt ast.Stmt
}

func (c *CommOp) Pos() token.Pos { return c.Stmt.Pos() }
func (c *CommOp) End() token.Pos { return c.Stmt.End() }

// labelInfo tracks one label's targets: Target for goto, Brk/Cont for
// labeled break/continue once the labeled loop or switch registers
// them.
type labelInfo struct {
	target *Block
	brk    *Block
	cont   *Block
}

type cfgBuilder struct {
	cfg *CFG
	// cur is the block under construction; nil after a terminating
	// statement (return, branch, panic) until the next join point.
	cur *Block
	// brk and cont are the innermost-last break/continue target stacks.
	brk  []*Block
	cont []*Block
	// labels maps label names to their targets; gotos to labels that
	// appear later in the source are patched at the end of the build.
	labels map[string]*labelInfo
	gotos  []pendingGoto
	// pendingLabel carries a label down to the loop or switch statement
	// it names, so labeled break/continue resolve.
	pendingLabel *labelInfo
	// fallthroughTarget is the next case clause while building a switch
	// clause body.
	fallthroughTarget *Block
}

type pendingGoto struct {
	from  *Block
	label string
}

// BuildCFG builds the control-flow graph of one function body. The
// graph does not descend into function literals: a closure is a value
// in the block that creates it, with its own CFG built on demand.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{
		cfg:    &CFG{},
		labels: make(map[string]*labelInfo),
	}
	entry := b.newBlock()
	exit := b.newBlock()
	b.cfg.Entry = entry
	b.cfg.Exit = exit
	b.cur = entry
	for _, s := range body.List {
		b.stmt(s)
	}
	b.jump(exit)
	for _, g := range b.gotos {
		if li := b.labels[g.label]; li != nil && li.target != nil {
			b.edge(g.from, li.target)
		}
	}
	return b.cfg
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
}

// jump connects the current block to target, unless flow already
// terminated.
func (b *cfgBuilder) jump(target *Block) {
	if b.cur != nil {
		b.edge(b.cur, target)
	}
	b.cur = nil
}

// add appends a node to the current block, opening an unreachable
// block for dead code after a terminator.
func (b *cfgBuilder) add(n ast.Node) {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	b.cur.Stmts = append(b.cur.Stmts, n)
}

// takeLabel consumes the pending label for the statement that names
// it.
func (b *cfgBuilder) takeLabel() *labelInfo {
	li := b.pendingLabel
	b.pendingLabel = nil
	return li
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		for _, st := range s.List {
			b.stmt(st)
		}
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s)
	case *ast.RangeStmt:
		b.rangeStmt(s)
	case *ast.SwitchStmt:
		b.switchStmt(s)
	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(s)
	case *ast.SelectStmt:
		b.selectStmt(s)
	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.cfg.Exit)
	case *ast.BranchStmt:
		b.branchStmt(s)
	case *ast.LabeledStmt:
		lbl := b.newBlock()
		b.jump(lbl)
		b.cur = lbl
		li := b.labels[s.Label.Name]
		if li == nil {
			li = &labelInfo{}
			b.labels[s.Label.Name] = li
		}
		li.target = lbl
		b.pendingLabel = li
		b.stmt(s.Stmt)
		b.pendingLabel = nil
	case *ast.ExprStmt:
		b.add(s)
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				// Panic terminates the path without reaching Exit; the
				// deferred statements already on the path still run.
				b.cur = nil
			}
		}
	case *ast.EmptyStmt:
		// nothing
	default:
		// Assign, Decl, Defer, Go, Send, IncDec, Bad: atomic.
		b.add(s)
	}
}

func (b *cfgBuilder) ifStmt(s *ast.IfStmt) {
	b.takeLabel()
	if s.Init != nil {
		b.add(s.Init)
	}
	b.add(s.Cond)
	cond := b.cur
	cond.Cond = s.Cond
	then := b.newBlock()
	b.edge(cond, then) // Succs[0]: condition true
	join := b.newBlock()
	if s.Else != nil {
		els := b.newBlock()
		b.edge(cond, els) // Succs[1]: condition false
		b.cur = els
		b.stmt(s.Else)
		b.jump(join)
	} else {
		b.edge(cond, join) // Succs[1]: condition false
	}
	b.cur = then
	b.stmt(s.Body)
	b.jump(join)
	b.cur = join
}

func (b *cfgBuilder) forStmt(s *ast.ForStmt) {
	lab := b.takeLabel()
	if s.Init != nil {
		b.add(s.Init)
	}
	head := b.newBlock()
	b.jump(head)
	b.cur = head
	body := b.newBlock()
	after := b.newBlock()
	if s.Cond != nil {
		b.add(s.Cond)
		head.Cond = s.Cond
		b.edge(head, body)  // Succs[0]: condition true
		b.edge(head, after) // Succs[1]: condition false
	} else {
		b.edge(head, body) // for {}: after is only reachable via break
	}
	contTarget := head
	var post *Block
	if s.Post != nil {
		post = b.newBlock()
		contTarget = post
	}
	if lab != nil {
		lab.brk, lab.cont = after, contTarget
	}
	b.brk = append(b.brk, after)
	b.cont = append(b.cont, contTarget)
	b.cur = body
	b.stmt(s.Body)
	if post != nil {
		b.jump(post)
		b.cur = post
		b.add(s.Post)
	}
	b.jump(head)
	b.brk = b.brk[:len(b.brk)-1]
	b.cont = b.cont[:len(b.cont)-1]
	b.cur = after
}

func (b *cfgBuilder) rangeStmt(s *ast.RangeStmt) {
	lab := b.takeLabel()
	head := b.newBlock()
	b.jump(head)
	b.cur = head
	b.add(&RangeHead{Range: s})
	body := b.newBlock()
	after := b.newBlock()
	b.edge(head, body)
	b.edge(head, after)
	if lab != nil {
		lab.brk, lab.cont = after, head
	}
	b.brk = append(b.brk, after)
	b.cont = append(b.cont, head)
	b.cur = body
	b.stmt(s.Body)
	b.jump(head)
	b.brk = b.brk[:len(b.brk)-1]
	b.cont = b.cont[:len(b.cont)-1]
	b.cur = after
}

func (b *cfgBuilder) switchStmt(s *ast.SwitchStmt) {
	lab := b.takeLabel()
	if s.Init != nil {
		b.add(s.Init)
	}
	if s.Tag != nil {
		b.add(s.Tag)
	}
	sw := b.cur
	if sw == nil {
		sw = b.newBlock()
		b.cur = sw
	}
	join := b.newBlock()
	if lab != nil {
		lab.brk = join
	}
	b.brk = append(b.brk, join)
	clauses := make([]*Block, 0, len(s.Body.List))
	hasDefault := false
	for _, c := range s.Body.List {
		cc := c.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		blk := b.newBlock()
		b.edge(sw, blk)
		clauses = append(clauses, blk)
	}
	if !hasDefault {
		b.edge(sw, join)
	}
	for i, c := range s.Body.List {
		cc := c.(*ast.CaseClause)
		b.cur = clauses[i]
		for _, e := range cc.List {
			b.add(e)
		}
		if i+1 < len(clauses) {
			b.fallthroughTarget = clauses[i+1]
		} else {
			b.fallthroughTarget = nil
		}
		for _, st := range cc.Body {
			b.stmt(st)
		}
		b.fallthroughTarget = nil
		b.jump(join)
	}
	b.brk = b.brk[:len(b.brk)-1]
	b.cur = join
}

func (b *cfgBuilder) typeSwitchStmt(s *ast.TypeSwitchStmt) {
	lab := b.takeLabel()
	if s.Init != nil {
		b.add(s.Init)
	}
	b.add(s.Assign)
	sw := b.cur
	join := b.newBlock()
	if lab != nil {
		lab.brk = join
	}
	b.brk = append(b.brk, join)
	hasDefault := false
	for _, c := range s.Body.List {
		cc := c.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		blk := b.newBlock()
		b.edge(sw, blk)
		b.cur = blk
		for _, st := range cc.Body {
			b.stmt(st)
		}
		b.jump(join)
	}
	if !hasDefault {
		b.edge(sw, join)
	}
	b.brk = b.brk[:len(b.brk)-1]
	b.cur = join
}

func (b *cfgBuilder) selectStmt(s *ast.SelectStmt) {
	lab := b.takeLabel()
	hasDefault := false
	for _, c := range s.Body.List {
		if c.(*ast.CommClause).Comm == nil {
			hasDefault = true
		}
	}
	b.add(&SelectHead{Select: s, HasDefault: hasDefault})
	sel := b.cur
	join := b.newBlock()
	if lab != nil {
		lab.brk = join
	}
	b.brk = append(b.brk, join)
	for _, c := range s.Body.List {
		cc := c.(*ast.CommClause)
		blk := b.newBlock()
		b.edge(sel, blk)
		b.cur = blk
		if cc.Comm != nil {
			b.add(&CommOp{Stmt: cc.Comm})
		}
		for _, st := range cc.Body {
			b.stmt(st)
		}
		b.jump(join)
	}
	// select {} blocks forever: join stays unreachable, which is what
	// the path analyses should see.
	b.brk = b.brk[:len(b.brk)-1]
	b.cur = join
}

func (b *cfgBuilder) branchStmt(s *ast.BranchStmt) {
	switch s.Tok {
	case token.BREAK:
		var target *Block
		if s.Label != nil {
			if li := b.labels[s.Label.Name]; li != nil {
				target = li.brk
			}
		} else if len(b.brk) > 0 {
			target = b.brk[len(b.brk)-1]
		}
		if target != nil {
			b.jump(target)
		} else {
			b.cur = nil
		}
	case token.CONTINUE:
		var target *Block
		if s.Label != nil {
			if li := b.labels[s.Label.Name]; li != nil {
				target = li.cont
			}
		} else if len(b.cont) > 0 {
			target = b.cont[len(b.cont)-1]
		}
		if target != nil {
			b.jump(target)
		} else {
			b.cur = nil
		}
	case token.GOTO:
		if b.cur != nil && s.Label != nil {
			b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: s.Label.Name})
		}
		b.cur = nil
	case token.FALLTHROUGH:
		if b.fallthroughTarget != nil {
			b.jump(b.fallthroughTarget)
		} else {
			b.cur = nil
		}
	}
}

// escapes reports whether some execution path from block b (starting
// at statement index start) reaches the CFG exit without encountering
// a node for which match returns true. prune, when non-nil, drops the
// i-th successor edge of a block the caller knows is infeasible for
// its query (e.g. the err != nil branch after a successful call).
// Paths that terminate without reaching Exit (panic, endless loop) do
// not count as escapes.
func (c *CFG) escapes(b *Block, start int, match func(ast.Node) bool, prune func(blk *Block, succ int) bool) bool {
	visited := make(map[*Block]bool)
	var walk func(blk *Block, from int) bool
	walk = func(blk *Block, from int) bool {
		for i := from; i < len(blk.Stmts); i++ {
			if match(blk.Stmts[i]) {
				return false
			}
		}
		if blk == c.Exit {
			return true
		}
		for i, succ := range blk.Succs {
			if prune != nil && prune(blk, i) {
				continue
			}
			if visited[succ] {
				continue
			}
			visited[succ] = true
			if walk(succ, 0) {
				return true
			}
		}
		return false
	}
	// The starting block is walked from start without marking it
	// visited: a loop back to it re-checks the nodes before start.
	return walk(b, start)
}

// blockOf locates the block and statement index holding node n, by
// identity. The bool result is false when n is not in the graph.
func (c *CFG) blockOf(n ast.Node) (*Block, int, bool) {
	for _, blk := range c.Blocks {
		for i, s := range blk.Stmts {
			if s == n {
				return blk, i, true
			}
		}
	}
	return nil, 0, false
}
