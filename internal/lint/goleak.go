package lint

// goleak: in the long-lived packages — the ones whose objects survive
// for the process lifetime (serve, cluster, farm, ruledist, obs) —
// every `go` statement must tie the goroutine to a lifecycle the
// owner can observe or end: a WaitGroup the spawner waits on, a
// context whose cancellation the body honors, or a captured stop/done
// channel. A fire-and-forget goroutine in these packages outlives
// requests, leaks under restart chaos, and turns the race detector's
// job into archaeology.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// longLivedPackages hold process-lifetime state; goroutines spawned
// here need an owner.
var longLivedPackages = map[string]bool{
	"serve":    true,
	"cluster":  true,
	"farm":     true,
	"ruledist": true,
	"obs":      true,
}

func newGoleak() *Analyzer {
	return &Analyzer{
		Name: "goleak",
		Doc:  "goroutines in long-lived packages are tied to a WaitGroup, context, or stop channel",
		Run:  runGoleak,
	}
}

func runGoleak(pass *Pass) {
	if !longLivedPackages[lastSegment(pass.Path)] {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if !goroutineHasLifecycle(pass, g) {
				pass.Reportf(g.Pos(), "goroutine in long-lived package %q has no lifecycle; tie it to a WaitGroup, a context, or a stop channel", lastSegment(pass.Path))
			}
			return true
		})
	}
}

// goroutineHasLifecycle accepts a goroutine that is (a) WaitGroup-
// tied (its body calls Done on a sync.WaitGroup), (b) context-aware
// (the body mentions a context.Context — a cancellation-honoring loop
// or a ctx-taking callee), or (c) bound to a captured channel it
// receives from, selects on, or ranges over (the stop/work-queue
// shape: closing the channel ends the goroutine).
func goroutineHasLifecycle(pass *Pass, g *ast.GoStmt) bool {
	lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
	if !ok {
		// go f(ctx, …): a context argument (or a context-typed field of
		// the receiver chain) counts; anything else is opaque.
		for _, arg := range g.Call.Args {
			if tv, ok := pass.Info.Types[arg]; ok && isContextType(tv.Type) {
				return true
			}
		}
		return false
	}
	tied := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if tied {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
				if tv, ok := pass.Info.Types[sel.X]; ok && namedType(tv.Type, "sync", "WaitGroup") {
					tied = true
				}
			}
		case *ast.Ident:
			if obj := pass.Info.Uses[n]; obj != nil && isContextType(obj.Type()) {
				tied = true
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && capturedChannel(pass, lit, n.X) {
				tied = true
			}
		case *ast.RangeStmt:
			if tv, ok := pass.Info.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan && capturedChannel(pass, lit, n.X) {
					tied = true
				}
			}
		}
		return true
	})
	return tied
}

// capturedChannel reports whether the channel expression refers to
// state declared outside the goroutine body — a channel the spawner
// (or its struct) owns and can close. A channel made inside the
// goroutine cannot be a stop signal.
func capturedChannel(pass *Pass, lit *ast.FuncLit, ch ast.Expr) bool {
	switch e := ast.Unparen(ch).(type) {
	case *ast.Ident:
		obj := pass.Info.Uses[e]
		if obj == nil {
			return false
		}
		return obj.Pos() < lit.Body.Pos() || obj.Pos() > lit.Body.End()
	case *ast.SelectorExpr:
		// A field (s.stopc) lives on a captured receiver.
		return true
	case *ast.CallExpr:
		// ctx.Done() and friends are context-typed and already counted;
		// other channel-returning calls are opaque.
		return false
	}
	return false
}
