package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// parseBody parses src as a function body and builds its CFG.
func parseBody(t *testing.T, src string) (*ast.BlockStmt, *CFG) {
	t.Helper()
	file, err := parser.ParseFile(token.NewFileSet(), "t.go", "package p\nfunc f() {\n"+src+"\n}", 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	body := file.Decls[0].(*ast.FuncDecl).Body
	return body, BuildCFG(body)
}

// callTo matches a CFG node containing a call to the named function.
func callTo(name string) func(ast.Node) bool {
	return func(n ast.Node) bool {
		found := false
		inspectShallow(n, func(m ast.Node) bool {
			if call, ok := m.(*ast.CallExpr); ok {
				if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == name {
					found = true
				}
			}
			return !found
		})
		return found
	}
}

// matchDefer matches a defer of a call to the named function.
func matchDefer(name string) func(ast.Node) bool {
	inner := callTo(name)
	return func(n ast.Node) bool {
		d, ok := n.(*ast.DeferStmt)
		return ok && inner(d)
	}
}

func TestCFGBranchOneArm(t *testing.T) {
	// mark() runs only on the true arm: the false edge escapes.
	_, cfg := parseBody(t, `
		if cond() {
			mark()
		}
		done()
	`)
	if !cfg.escapes(cfg.Entry, 0, callTo("mark"), nil) {
		t.Fatal("false branch should escape without mark()")
	}
	if cfg.escapes(cfg.Entry, 0, callTo("done"), nil) {
		t.Fatal("done() is on every path; nothing should escape it")
	}
}

func TestCFGBranchBothArms(t *testing.T) {
	_, cfg := parseBody(t, `
		if cond() {
			mark()
		} else {
			mark()
		}
	`)
	if cfg.escapes(cfg.Entry, 0, callTo("mark"), nil) {
		t.Fatal("mark() covers both arms; no path should escape")
	}
}

func TestCFGEarlyReturn(t *testing.T) {
	// The early return exits before mark(): that path escapes.
	_, cfg := parseBody(t, `
		if cond() {
			return
		}
		mark()
	`)
	if !cfg.escapes(cfg.Entry, 0, callTo("mark"), nil) {
		t.Fatal("early return should escape without mark()")
	}
}

func TestCFGEarlyReturnPruned(t *testing.T) {
	// Pruning the true edge of the guard (the caller knows it is
	// infeasible) removes the escaping path.
	_, cfg := parseBody(t, `
		if cond() {
			return
		}
		mark()
	`)
	prune := func(blk *Block, succ int) bool {
		return blk.Cond != nil && succ == 0
	}
	if cfg.escapes(cfg.Entry, 0, callTo("mark"), prune) {
		t.Fatal("with the guard's true edge pruned, every path hits mark()")
	}
}

func TestCFGLoopZeroIterations(t *testing.T) {
	// A conditional loop may run zero times: mark() inside the body is
	// not on every path, but after the loop it is.
	_, cfg := parseBody(t, `
		for i := 0; i < n; i++ {
			mark()
		}
	`)
	if !cfg.escapes(cfg.Entry, 0, callTo("mark"), nil) {
		t.Fatal("zero-iteration path should escape the loop body")
	}

	_, cfg = parseBody(t, `
		for i := 0; i < n; i++ {
			work()
		}
		mark()
	`)
	if cfg.escapes(cfg.Entry, 0, callTo("mark"), nil) {
		t.Fatal("mark() after the loop is on every path")
	}
}

func TestCFGLoopBackEdge(t *testing.T) {
	// The back edge must exist: a for {} with no break never reaches
	// exit, so nothing escapes.
	_, cfg := parseBody(t, `
		for {
			work()
		}
	`)
	if cfg.escapes(cfg.Entry, 0, callTo("mark"), nil) {
		t.Fatal("an endless loop never reaches exit; no escape")
	}

	// break restores the path to exit.
	_, cfg = parseBody(t, `
		for {
			if cond() {
				break
			}
		}
	`)
	if !cfg.escapes(cfg.Entry, 0, callTo("mark"), nil) {
		t.Fatal("break should reach exit without mark()")
	}
}

func TestCFGDefer(t *testing.T) {
	// A defer stays in its registration block: every path from after
	// the acquisition passes the defer node, so nothing escapes the
	// release.
	body, cfg := parseBody(t, `
		x := acquire()
		defer release(x)
		if cond() {
			return
		}
		work()
	`)
	acq, _, ok := cfg.blockOf(body.List[0])
	if !ok {
		t.Fatal("acquire statement not located in the graph")
	}
	if cfg.escapes(acq, 1, matchDefer("release"), nil) {
		t.Fatal("deferred release is registered on every path; no escape")
	}

	// A defer inside one branch covers only that branch.
	body, cfg = parseBody(t, `
		x := acquire()
		if cond() {
			defer release(x)
		}
		work()
	`)
	acq, _, ok = cfg.blockOf(body.List[0])
	if !ok {
		t.Fatal("acquire statement not located in the graph")
	}
	if !cfg.escapes(acq, 1, matchDefer("release"), nil) {
		t.Fatal("defer on one branch only: the other branch escapes")
	}
}

func TestCFGPanicTerminates(t *testing.T) {
	// A panic path ends without reaching exit: it neither escapes nor
	// needs the match.
	_, cfg := parseBody(t, `
		if cond() {
			panic("boom")
		}
		mark()
	`)
	if cfg.escapes(cfg.Entry, 0, callTo("mark"), nil) {
		t.Fatal("panic terminates its path; the surviving path hits mark()")
	}
}

func TestCFGSelectBlocksForever(t *testing.T) {
	// select {} never proceeds: code after it is unreachable.
	_, cfg := parseBody(t, `
		select {}
		mark()
	`)
	if cfg.escapes(cfg.Entry, 0, callTo("mark"), nil) {
		t.Fatal("select{} blocks forever; exit is unreachable")
	}
}

func TestCFGLabeledBreak(t *testing.T) {
	// A labeled break from an inner loop exits the outer loop,
	// skipping mark() at the outer loop's tail.
	_, cfg := parseBody(t, `
	outer:
		for {
			for range items {
				if cond() {
					break outer
				}
			}
			mark()
		}
	`)
	if !cfg.escapes(cfg.Entry, 0, callTo("mark"), nil) {
		t.Fatal("labeled break should reach exit without mark()")
	}
}

func TestCFGSwitchFallthrough(t *testing.T) {
	// fallthrough chains clause bodies; a switch with a default and
	// mark() in every clause covers all paths.
	_, cfg := parseBody(t, `
		switch v() {
		case 1:
			fallthrough
		case 2:
			mark()
		default:
			mark()
		}
	`)
	if cfg.escapes(cfg.Entry, 0, callTo("mark"), nil) {
		t.Fatal("all switch paths reach mark()")
	}

	// Without a default clause, the no-match path escapes.
	_, cfg = parseBody(t, `
		switch v() {
		case 1:
			mark()
		}
	`)
	if !cfg.escapes(cfg.Entry, 0, callTo("mark"), nil) {
		t.Fatal("switch without default has a fall-past path")
	}
}
