package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// governedPackages are the packages whose hot loops run under the
// resource governor (DESIGN.md §10): the seven phase packages plus the
// cluster routing and rule-replication layers, whose ring walks, probe
// sweeps and sync rounds run on or beside the serving path. governloop
// scopes itself by final path segment so the rule applies equally to
// the real module and to fixture trees.
var governedPackages = map[string]bool{
	"htmlparse": true,
	"tidy":      true,
	"tagtree":   true,
	"subtree":   true,
	"separator": true,
	"combine":   true,
	"extract":   true,
	"cluster":   true,
	"farm":      true,
	"ruledist":  true,
}

// guardChargeMethods are the govern.Guard methods that charge a budget
// or poll the page context. A loop containing any of them is
// cancellable.
var guardChargeMethods = map[string]bool{
	"Input":   true,
	"Tokens":  true,
	"Nodes":   true,
	"Depth":   true,
	"Objects": true,
	"Poll":    true,
	"Check":   true,
}

// newGovernloop builds the governloop analyzer: in the governed phase
// packages, every function that runs under a *govern.Guard must charge
// it inside each for loop and on each recursive path, and no new
// exported entry point may loop without a guard (existing ungoverned
// API is grandfathered in governloopBaseline).
func newGovernloop() *Analyzer {
	return &Analyzer{
		Name: "governloop",
		Doc:  "governed phase loops must charge the govern.Guard; no new ungoverned exported entry points",
		Run:  runGovernloop,
	}
}

func runGovernloop(pass *Pass) {
	if !governedPackages[lastSegment(pass.Path)] {
		return
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			gc := &governChecker{pass: pass}
			gc.collectClosures(fd.Body)
			switch {
			case gc.takesGuard(fd):
				gc.checkGoverned(fd)
			case strings.HasSuffix(fd.Name.Name, "Governed"):
				// The naming contract promises governed behavior; without a
				// guard in reach the promise is empty.
				pass.Reportf(fd.Name.Pos(),
					"%s is named *Governed but takes no *govern.Guard parameter", fd.Name.Name)
				gc.checkGoverned(fd)
			case fd.Name.IsExported():
				gc.checkEntryPoint(fd)
			}
		}
	}
}

// governChecker checks one function declaration.
type governChecker struct {
	pass *Pass
	// closures maps local identifiers to the func literals assigned to
	// them, so a loop that delegates its charging to a local walk
	// closure is recognized.
	closures map[types.Object]*ast.FuncLit
	// memo caches per-closure guard-touch results; the in-progress
	// marker breaks mutual-recursion cycles (an unresolved cycle does
	// not count as a charge).
	memo map[*ast.FuncLit]bool
}

// takesGuard reports whether the function has a *govern.Guard
// parameter or a receiver that carries one.
func (gc *governChecker) takesGuard(fd *ast.FuncDecl) bool {
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			if tv, ok := gc.pass.Info.Types[field.Type]; ok && isGuardPtr(tv.Type) {
				return true
			}
		}
	}
	if fd.Recv != nil && len(fd.Recv.List) > 0 {
		if tv, ok := gc.pass.Info.Types[fd.Recv.List[0].Type]; ok && carriesGuard(tv.Type) {
			return true
		}
	}
	return false
}

// collectClosures records func literals bound to local identifiers
// (walk := func(...){...}; var walk func(...); walk = func(...){...}).
func (gc *governChecker) collectClosures(body *ast.BlockStmt) {
	gc.closures = make(map[types.Object]*ast.FuncLit)
	gc.memo = make(map[*ast.FuncLit]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != len(assign.Rhs) {
			return true
		}
		for i, lhs := range assign.Lhs {
			lit, ok := assign.Rhs[i].(*ast.FuncLit)
			if !ok {
				continue
			}
			ident, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			obj := gc.pass.Info.Defs[ident]
			if obj == nil {
				obj = gc.pass.Info.Uses[ident]
			}
			if obj != nil {
				gc.closures[obj] = lit
			}
		}
		return true
	})
}

// touches reports whether the subtree charges the guard: a direct
// charge method call on a *govern.Guard, a call forwarding a guard (by
// parameter or through a guard-carrying receiver), or a call to a
// local closure that does either.
func (gc *governChecker) touches(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if gc.callTouches(call) {
			found = true
			return false
		}
		return true
	})
	return found
}

func (gc *governChecker) callTouches(call *ast.CallExpr) bool {
	info := gc.pass.Info
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if tv, ok := info.Types[sel.X]; ok {
			// g.Poll() and friends.
			if guardChargeMethods[sel.Sel.Name] && isGuardPtr(tv.Type) {
				return true
			}
			// n.feed(tok) where n's struct carries the guard.
			if info.Selections[sel] != nil && carriesGuard(tv.Type) {
				return true
			}
		}
	}
	// f(..., g) / f(..., nil) where f's signature accepts a guard.
	if tv, ok := info.Types[call.Fun]; ok {
		if sig, ok := tv.Type.(*types.Signature); ok && signatureTakesGuard(sig) {
			return true
		}
	}
	// walk(c, depth+1) where walk is a local closure that charges.
	if ident, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if obj := info.Uses[ident]; obj != nil {
			if lit := gc.closures[obj]; lit != nil {
				return gc.closureTouches(lit)
			}
		}
	}
	return false
}

func (gc *governChecker) closureTouches(lit *ast.FuncLit) bool {
	if v, ok := gc.memo[lit]; ok {
		return v
	}
	gc.memo[lit] = false // in progress: cycles don't count as charges
	v := gc.touches(lit.Body)
	gc.memo[lit] = v
	return v
}

// checkGoverned enforces the charging contract inside a governed
// function: every for loop and every recursive path must charge.
func (gc *governChecker) checkGoverned(fd *ast.FuncDecl) {
	self := gc.pass.Info.Defs[fd.Name]
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			if !gc.touches(n.Body) {
				gc.pass.Reportf(n.For, "for loop in governed function %s does not charge the *govern.Guard", fd.Name.Name)
			}
		case *ast.RangeStmt:
			if !gc.touches(n.Body) {
				gc.pass.Reportf(n.For, "range loop in governed function %s does not charge the *govern.Guard", fd.Name.Name)
			}
		case *ast.CallExpr:
			if self != nil && calleeObject(gc.pass.Info, n) == self && !gc.touches(fd.Body) {
				gc.pass.Reportf(n.Pos(), "recursive call in governed function %s with no *govern.Guard charge on the path", fd.Name.Name)
			}
		}
		return true
	})
	// A local recursive closure (the usual tree-walk shape) must charge
	// inside its own body: its loop-equivalent path is the self call.
	for obj, lit := range gc.closures {
		recursive := false
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok && calleeObject(gc.pass.Info, call) == obj {
				recursive = true
			}
			return !recursive
		})
		if recursive && !gc.closureTouches(lit) {
			gc.pass.Reportf(lit.Pos(), "recursive closure %s in governed function %s does not charge the *govern.Guard", obj.Name(), fd.Name.Name)
		}
	}
}

// checkEntryPoint enforces the no-new-ungoverned-API rule: an exported
// function in a governed package that loops must either run under a
// guard, delegate to a function that takes one, or be part of the
// grandfathered pre-governor API recorded in governloopBaseline.
func (gc *governChecker) checkEntryPoint(fd *ast.FuncDecl) {
	hasLoop := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			hasLoop = true
		}
		return !hasLoop
	})
	if !hasLoop || gc.touches(fd.Body) {
		return
	}
	key := lastSegment(gc.pass.Path) + "." + funcKey(fd)
	if governloopBaseline[key] {
		return
	}
	gc.pass.Reportf(fd.Name.Pos(),
		"exported entry point %s loops without a *govern.Guard; add a Governed variant or delegate to one", funcKey(fd))
}
