// Package lint implements ominilint, the project's static-analysis
// pass: a stdlib-only driver (go/parser, go/ast, go/types, go/importer
// — no x/tools) that loads every package in the module, type-checks
// it, and runs a suite of project-specific analyzers enforcing the
// contracts the pipeline's layers rely on but the compiler cannot see:
//
//   - governloop: governed phase loops must charge the govern.Guard,
//     and no new exported entry point in a governed package may loop
//     unboundedly without one.
//   - obsnames: obs registry series names are compile-time constants
//     following the registry grammar, declared once, and pre-registered
//     at boot.
//   - errwrap: errors are wrapped with %w and matched with errors.Is,
//     so sentinel chains survive every layer.
//   - ctxfirst: context.Context is the first parameter and never
//     stored in a struct outside the sanctioned govern.Guard.
//   - puredet: the pure phase packages stay deterministic — no clocks,
//     no randomness, no I/O — which is what makes the golden and
//     differential tests meaningful.
//
// The paper's system (Buttler, Liu, Pu, ICDCS 2001) is motivated by
// fully automated extraction at production scale; production Go stacks
// hold invariants like these with custom analyzers in CI (the
// go/analysis pattern), which this package reproduces without
// third-party dependencies.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Finding is one analyzer diagnostic.
type Finding struct {
	// Pos locates the finding (file, line, column).
	Pos token.Position
	// Analyzer names the analyzer that produced the finding.
	Analyzer string
	// Message states the violated invariant.
	Message string
}

// String renders the finding in the canonical "file:line: analyzer:
// message" form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Analyzer, f.Message)
}

// Pass hands one type-checked package to an analyzer.
type Pass struct {
	// Fset maps positions for every file in the run.
	Fset *token.FileSet
	// Path is the package's import path.
	Path string
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info carries the type-checker's facts for the package's syntax.
	Info *types.Info
	// Files are the package's parsed files (tests excluded).
	Files []*ast.File

	report func(Finding)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Finding{Pos: p.Fset.Position(pos), Message: fmt.Sprintf(format, args...)})
}

// Analyzer is one checked invariant. Analyzers are stateful across a
// run (obsnames correlates serve and core), so NewAnalyzers returns
// fresh instances per run.
type Analyzer struct {
	// Name labels findings ("governloop", "obsnames", ...).
	Name string
	// Doc is the one-line invariant description.
	Doc string
	// Run analyzes one package.
	Run func(*Pass)
	// Finish, if set, reports findings that need the whole-run view
	// (cross-package registration sets, duplicate detection). It runs
	// once after every package's Run.
	Finish func(report func(token.Position, string))
}

// NewAnalyzers returns a fresh instance of every ominilint analyzer.
func NewAnalyzers() []*Analyzer {
	return []*Analyzer{
		newGovernloop(),
		newObsnames(),
		newErrwrap(),
		newCtxfirst(),
		newPuredet(),
	}
}

// RunAnalyzers runs every analyzer over every package and returns the
// findings sorted by position.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) []Finding {
	var findings []Finding
	for _, a := range analyzers {
		for _, pkg := range pkgs {
			pass := &Pass{
				Fset:  pkg.Fset,
				Path:  pkg.Path,
				Pkg:   pkg.Types,
				Info:  pkg.Info,
				Files: pkg.Files,
			}
			name := a.Name
			pass.report = func(f Finding) {
				f.Analyzer = name
				findings = append(findings, f)
			}
			a.Run(pass)
		}
		if a.Finish != nil {
			a.Finish(func(pos token.Position, msg string) {
				findings = append(findings, Finding{Pos: pos, Analyzer: a.Name, Message: msg})
			})
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings
}

// Run loads the packages matched by patterns (resolved relative to
// dir, "./..." walks recursively) and runs the analyzers over them.
func Run(dir string, patterns []string, analyzers []*Analyzer) ([]Finding, error) {
	loader, err := NewLoader(dir)
	if err != nil {
		return nil, err
	}
	pkgs, err := loader.LoadPatterns(dir, patterns)
	if err != nil {
		return nil, err
	}
	return RunAnalyzers(pkgs, analyzers), nil
}
