// Package lint implements ominilint, the project's static-analysis
// pass: a stdlib-only driver (go/parser, go/ast, go/types, go/importer
// — no x/tools) that loads every package in the module, type-checks
// it, and runs a suite of project-specific analyzers enforcing the
// contracts the pipeline's layers rely on but the compiler cannot see:
//
//   - governloop: governed phase loops must charge the govern.Guard,
//     and no new exported entry point in a governed package may loop
//     unboundedly without one.
//   - obsnames: obs registry series names are compile-time constants
//     following the registry grammar, declared once, and pre-registered
//     at boot.
//   - errwrap: errors are wrapped with %w and matched with errors.Is,
//     so sentinel chains survive every layer.
//   - ctxfirst: context.Context is the first parameter and never
//     stored in a struct outside the sanctioned govern.Guard.
//   - puredet: the pure phase packages stay deterministic — no clocks,
//     no randomness, no I/O — which is what makes the golden and
//     differential tests meaningful.
//   - lockhold: no sync.Mutex or RWMutex is held across a blocking
//     operation (HTTP round-trips, channel sends/receives, waits).
//   - bodyclose: every *http.Response body reaches Close on all
//     control-flow paths, and remote reads go through io.LimitReader.
//   - goleak: goroutines in the long-lived packages are tied to a
//     lifecycle (WaitGroup, context, or captured stop channel).
//   - spanend: every obs.StartSpan span is ended on all paths, and
//     outbound cluster/ruledist requests stamp X-Omini-Trace.
//
// The last four are control-flow aware: the driver builds a
// per-function basic-block CFG (cfg.go) and run-wide call-graph facts
// (callgraph.go) that classify callees as blocking, lock-taking,
// trace-stamping, or body-closing, both exposed through Pass.
//
// The paper's system (Buttler, Liu, Pu, ICDCS 2001) is motivated by
// fully automated extraction at production scale; production Go stacks
// hold invariants like these with custom analyzers in CI (the
// go/analysis pattern), which this package reproduces without
// third-party dependencies.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"time"
)

// Finding is one analyzer diagnostic.
type Finding struct {
	// Pos locates the finding (file, line, column).
	Pos token.Position
	// Analyzer names the analyzer that produced the finding.
	Analyzer string
	// Message states the violated invariant.
	Message string
}

// String renders the finding in the canonical "file:line: analyzer:
// message" form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Analyzer, f.Message)
}

// Pass hands one type-checked package to an analyzer.
type Pass struct {
	// Fset maps positions for every file in the run.
	Fset *token.FileSet
	// Path is the package's import path.
	Path string
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info carries the type-checker's facts for the package's syntax.
	Info *types.Info
	// Files are the package's parsed files (tests excluded).
	Files []*ast.File
	// Facts are the run-wide call-graph classifications (blocking,
	// lock-taking, trace-stamping, body-closing callees), shared by
	// every pass of the run.
	Facts *CallFacts

	report func(Finding)
	cfgs   map[*ast.BlockStmt]*CFG
}

// FuncCFG returns the control-flow graph of a function body, built on
// first use and cached for the package across analyzers.
func (p *Pass) FuncCFG(body *ast.BlockStmt) *CFG {
	if c, ok := p.cfgs[body]; ok {
		return c
	}
	if p.cfgs == nil {
		p.cfgs = make(map[*ast.BlockStmt]*CFG)
	}
	c := BuildCFG(body)
	p.cfgs[body] = c
	return c
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Finding{Pos: p.Fset.Position(pos), Message: fmt.Sprintf(format, args...)})
}

// Analyzer is one checked invariant. Analyzers are stateful across a
// run (obsnames correlates serve and core), so NewAnalyzers returns
// fresh instances per run.
type Analyzer struct {
	// Name labels findings ("governloop", "obsnames", ...).
	Name string
	// Doc is the one-line invariant description.
	Doc string
	// Run analyzes one package.
	Run func(*Pass)
	// Finish, if set, reports findings that need the whole-run view
	// (cross-package registration sets, duplicate detection). It runs
	// once after every package's Run.
	Finish func(report func(token.Position, string))
}

// NewAnalyzers returns a fresh instance of every ominilint analyzer.
func NewAnalyzers() []*Analyzer {
	return []*Analyzer{
		newGovernloop(),
		newObsnames(),
		newErrwrap(),
		newCtxfirst(),
		newPuredet(),
		newLockhold(),
		newBodyclose(),
		newGoleak(),
		newSpanend(),
	}
}

// AnalyzerTiming records one analyzer's cost over a whole run, for the
// CLI's -json timing output.
type AnalyzerTiming struct {
	// Name is the analyzer's name.
	Name string
	// Duration is the wall time the analyzer spent across all packages
	// (including its Finish phase).
	Duration time.Duration
	// Findings counts the findings the analyzer produced.
	Findings int
}

// RunAnalyzers runs every analyzer over every package and returns the
// findings sorted by position.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) []Finding {
	findings, _ := RunAnalyzersTimed(pkgs, analyzers)
	return findings
}

// RunAnalyzersTimed is RunAnalyzers plus per-analyzer wall-time and
// finding counts. Call-graph facts and per-function CFGs are built
// once and shared: each package keeps one Pass whose report hook is
// repointed per analyzer.
func RunAnalyzersTimed(pkgs []*Package, analyzers []*Analyzer) ([]Finding, []AnalyzerTiming) {
	var findings []Finding
	facts := BuildCallFacts(pkgs)
	passes := make([]*Pass, len(pkgs))
	for i, pkg := range pkgs {
		passes[i] = &Pass{
			Fset:  pkg.Fset,
			Path:  pkg.Path,
			Pkg:   pkg.Types,
			Info:  pkg.Info,
			Files: pkg.Files,
			Facts: facts,
		}
	}
	timings := make([]AnalyzerTiming, 0, len(analyzers))
	for _, a := range analyzers {
		start := time.Now()
		count := 0
		name := a.Name
		for _, pass := range passes {
			pass.report = func(f Finding) {
				f.Analyzer = name
				findings = append(findings, f)
				count++
			}
			a.Run(pass)
		}
		if a.Finish != nil {
			a.Finish(func(pos token.Position, msg string) {
				findings = append(findings, Finding{Pos: pos, Analyzer: a.Name, Message: msg})
				count++
			})
		}
		timings = append(timings, AnalyzerTiming{Name: name, Duration: time.Since(start), Findings: count})
	}
	sortFindings(findings)
	return findings, timings
}

func sortFindings(findings []Finding) {
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// Run loads the packages matched by patterns (resolved relative to
// dir, "./..." walks recursively) and runs the analyzers over them.
func Run(dir string, patterns []string, analyzers []*Analyzer) ([]Finding, error) {
	loader, err := NewLoader(dir)
	if err != nil {
		return nil, err
	}
	pkgs, err := loader.LoadPatterns(dir, patterns)
	if err != nil {
		return nil, err
	}
	return RunAnalyzers(pkgs, analyzers), nil
}
