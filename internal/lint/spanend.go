package lint

// spanend keeps PR 8's tracing complete by construction. Two
// invariants: (1) every span returned by obs.StartSpan reaches End()
// on all control-flow paths — an unended span never lands in its
// trace recorder, so the request's trace silently loses a phase; (2)
// in the packages that make peer-to-peer requests (cluster,
// ruledist), a function that builds an outbound *http.Request must
// stamp the X-Omini-Trace header — directly or through a helper the
// call-graph facts classify as trace-stamping — so cross-node spans
// keep parenting to the hop that caused them.

import (
	"go/ast"
	"go/types"
)

// tracedClientPackages make outbound peer requests that must carry
// trace context.
var tracedClientPackages = map[string]bool{
	"cluster":  true,
	"ruledist": true,
}

func newSpanend() *Analyzer {
	return &Analyzer{
		Name: "spanend",
		Doc:  "obs.StartSpan spans are ended on all paths; outbound cluster requests stamp X-Omini-Trace",
		Run:  runSpanend,
	}
}

func runSpanend(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkSpanEnds(pass, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					checkSpanEnds(pass, lit.Body)
				}
				return true
			})
			if tracedClientPackages[lastSegment(pass.Path)] {
				checkTraceStamp(pass, fd)
			}
		}
	}
}

// checkSpanEnds verifies every `ctx, sp := obs.StartSpan(…)` in one
// function body ends sp on all paths to exit.
func checkSpanEnds(pass *Pass, body *ast.BlockStmt) {
	cfg := pass.FuncCFG(body)
	for _, b := range cfg.Blocks {
		for i, n := range b.Stmts {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Rhs) != 1 || len(as.Lhs) != 2 {
				continue
			}
			call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
			if !ok || !isPkgFunc(pass.Info, call, "obs", "StartSpan") {
				continue
			}
			id, ok := as.Lhs[1].(*ast.Ident)
			if !ok {
				continue
			}
			if id.Name == "_" {
				pass.Reportf(as.Pos(), "span from obs.StartSpan is discarded and never ended")
				continue
			}
			sp := pass.Info.Defs[id]
			if sp == nil {
				sp = pass.Info.Uses[id]
			}
			if sp == nil {
				continue
			}
			escaped := cfg.escapes(b, i+1, func(m ast.Node) bool {
				return endsOrHandsOffSpan(pass, m, sp)
			}, nil)
			if escaped {
				pass.Reportf(as.Pos(), "span %s from obs.StartSpan does not reach End on every path", id.Name)
			}
		}
	}
}

// endsOrHandsOffSpan reports whether node n discharges the End
// obligation for span variable v: sp.End() directly, deferred (bare
// or inside a deferred closure), captured by a closure, passed to a
// callee, returned, or stored.
func endsOrHandsOffSpan(pass *Pass, n ast.Node, v types.Object) bool {
	switch m := n.(type) {
	case *RangeHead:
		n = m.Range.X
	case *SelectHead:
		return false
	case *ast.DeferStmt:
		if endsSpanCall(pass.Info, m.Call, v) {
			return true
		}
		if lit, ok := ast.Unparen(m.Call.Fun).(*ast.FuncLit); ok {
			return spanEndedIn(pass.Info, lit.Body, v)
		}
		return false
	case *ast.ReturnStmt:
		// Returning the span itself hands the End duty to the caller; a
		// call inside the results falls through to the generic scan.
		for _, r := range m.Results {
			if id, ok := ast.Unparen(r).(*ast.Ident); ok && pass.Info.Uses[id] == v {
				return true
			}
		}
	}
	done := false
	inspectShallow(n, func(m ast.Node) bool {
		if done {
			return false
		}
		switch m := m.(type) {
		case *ast.FuncLit:
			if spanEndedIn(pass.Info, m.Body, v) || usesObjectAsValue(pass.Info, m.Body, v) {
				done = true
			}
			return false
		case *ast.CallExpr:
			if endsSpanCall(pass.Info, m, v) {
				done = true
				return false
			}
			for _, arg := range m.Args {
				if usesObjectAsValue(pass.Info, arg, v) {
					done = true
					return false
				}
			}
		case *ast.AssignStmt:
			for _, rhs := range m.Rhs {
				if usesObjectAsValue(pass.Info, rhs, v) {
					done = true
				}
			}
		}
		return true
	})
	return done
}

// endsSpanCall reports whether call is <v>.End().
func endsSpanCall(info *types.Info, call *ast.CallExpr, v types.Object) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "End" {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	return ok && info.Uses[id] == v
}

// spanEndedIn reports whether the subtree contains <v>.End().
func spanEndedIn(info *types.Info, n ast.Node, v types.Object) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		if call, ok := m.(*ast.CallExpr); ok && endsSpanCall(info, call, v) {
			found = true
		}
		return true
	})
	return found
}

// checkTraceStamp requires a function that builds an outbound
// *http.Request to also stamp the trace header, directly or through
// a stamping helper.
func checkTraceStamp(pass *Pass, fd *ast.FuncDecl) {
	creates := false
	stamps := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn, ok := calleeObject(pass.Info, call).(*types.Func); ok {
			switch funcFactKey(fn) {
			case "http.NewRequest", "http.NewRequestWithContext":
				creates = true
			default:
				if pass.Facts.FuncStamps(fn) {
					stamps = true
				}
			}
		}
		if stampsTraceHeader(pass.Info, call) {
			stamps = true
		}
		return true
	})
	if creates && !stamps {
		pass.Reportf(fd.Name.Pos(),
			"%s builds an outbound request but never stamps the X-Omini-Trace header (directly or via a stamping helper)", funcKey(fd))
	}
}
