package lint

// bodyclose: every *http.Response obtained in the module must have
// its Body reach Close on all control-flow paths, and every read from
// a remote body (response or inbound request) must be bounded by
// io.LimitReader. The cluster and ruledist transfer paths talk to
// peers that can stall, die mid-body, or answer with garbage; a
// leaked body pins a connection and an unbounded read hands a peer
// the ability to balloon memory. Close is checked path-sensitively on
// the CFG: a direct <resp>.Body.Close(), a deferred close (bare or
// inside a deferred closure), or handing the response off (returned,
// stored, or passed to a callee — including recognized drain-and-
// close helpers) all satisfy a path; the error branch of the
// producing call is exempt, matching the net/http contract that a
// non-nil error means no body to close.

import (
	"go/ast"
	"go/types"
)

func newBodyclose() *Analyzer {
	return &Analyzer{
		Name: "bodyclose",
		Doc:  "every *http.Response body reaches Close on all paths; remote reads go through io.LimitReader",
		Run:  runBodyclose,
	}
}

func runBodyclose(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkBodyclose(pass, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					checkBodyclose(pass, lit.Body)
				}
				return true
			})
			checkLimitedReads(pass, fd)
		}
	}
}

// responseAssign is one `resp, err := <call>` site producing an
// *http.Response.
type responseAssign struct {
	assign *ast.AssignStmt
	// resp is the response variable's object; nil when assigned to _.
	resp types.Object
	// err is the paired error variable's object, if any.
	err types.Object
}

// checkBodyclose runs the all-paths Close analysis over one function
// body (closures are analyzed separately by the caller; a response
// crossing a closure boundary counts as handed off).
func checkBodyclose(pass *Pass, body *ast.BlockStmt) {
	cfg := pass.FuncCFG(body)
	for _, b := range cfg.Blocks {
		for i, n := range b.Stmts {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				continue
			}
			site := responseAssignOf(pass, as)
			if site == nil {
				continue
			}
			if site.resp == nil {
				pass.Reportf(as.Pos(), "*http.Response assigned to _ leaks its body; close it even when discarding the response")
				continue
			}
			prune := errGuardPrune(pass, site)
			escaped := cfg.escapes(b, i+1, func(m ast.Node) bool {
				return closesOrHandsOff(pass, m, site.resp)
			}, prune)
			if escaped {
				pass.Reportf(as.Pos(), "*http.Response body does not reach Close on every path from this call")
			}
		}
	}
}

// responseAssignOf recognizes `resp, err := <call>` (or `resp := …`)
// where the call yields an *http.Response.
func responseAssignOf(pass *Pass, as *ast.AssignStmt) *responseAssign {
	if len(as.Rhs) != 1 {
		return nil
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return nil
	}
	tv, ok := pass.Info.Types[call]
	if !ok {
		return nil
	}
	// Locate the *http.Response component of the result.
	respIdx := -1
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isResponsePtr(t.At(i).Type()) {
				respIdx = i
			}
		}
	default:
		if isResponsePtr(t) {
			respIdx = 0
		}
	}
	if respIdx < 0 || respIdx >= len(as.Lhs) {
		return nil
	}
	site := &responseAssign{assign: as}
	if id, ok := as.Lhs[respIdx].(*ast.Ident); ok && id.Name != "_" {
		site.resp = pass.Info.Defs[id]
		if site.resp == nil {
			site.resp = pass.Info.Uses[id]
		}
	}
	for i, lhs := range as.Lhs {
		if i == respIdx {
			continue
		}
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		obj := pass.Info.Defs[id]
		if obj == nil {
			obj = pass.Info.Uses[id]
		}
		if obj != nil && implementsError(obj.Type()) {
			site.err = obj
		}
	}
	return site
}

// errGuardPrune builds the path filter for one response site: the
// branch where the producing call's error is non-nil (or the response
// itself is nil) carries no body, so those edges are pruned from the
// must-close query.
func errGuardPrune(pass *Pass, site *responseAssign) func(*Block, int) bool {
	return func(b *Block, succ int) bool {
		cond, ok := ast.Unparen(b.Cond).(*ast.BinaryExpr)
		if !ok || len(b.Succs) < 2 {
			return false
		}
		obj := condNilCheckObj(pass, cond)
		if obj == nil {
			return false
		}
		switch {
		case obj == site.err:
			// err != nil: prune the true edge; err == nil: the false edge.
			if cond.Op.String() == "!=" {
				return succ == 0
			}
			return succ == 1
		case obj == site.resp:
			// resp == nil: prune the true edge; resp != nil: the false edge.
			if cond.Op.String() == "==" {
				return succ == 0
			}
			return succ == 1
		}
		return false
	}
}

// condNilCheckObj resolves `x != nil` / `x == nil` to x's object.
func condNilCheckObj(pass *Pass, cond *ast.BinaryExpr) types.Object {
	op := cond.Op.String()
	if op != "!=" && op != "==" {
		return nil
	}
	x, y := ast.Unparen(cond.X), ast.Unparen(cond.Y)
	if isNilIdent(y) {
		if id, ok := x.(*ast.Ident); ok {
			return pass.Info.Uses[id]
		}
	}
	if isNilIdent(x) {
		if id, ok := y.(*ast.Ident); ok {
			return pass.Info.Uses[id]
		}
	}
	return nil
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// closesOrHandsOff reports whether node n discharges the close
// obligation for the response variable v: closes its body (directly,
// deferred, or inside a deferred closure), returns it whole, stores
// it whole (the new owner closes), captures it in a closure, or
// passes it to a recognized drain-and-close helper. Passing only
// v.Body to a callee (io.LimitReader and friends wrap reading, not
// closing) and reading fields (v.StatusCode) do not discharge.
func closesOrHandsOff(pass *Pass, n ast.Node, v types.Object) bool {
	switch m := n.(type) {
	case *RangeHead:
		n = m.Range.X
	case *SelectHead:
		return false
	case *ast.DeferStmt:
		// A deferred <v>.Body.Close(), or a deferred closure whose body
		// closes it, closes on every exit past this point.
		if closeTargets(pass.Info, m.Call, v) {
			return true
		}
		if lit, ok := ast.Unparen(m.Call.Fun).(*ast.FuncLit); ok {
			return closesBodyOf(pass.Info, lit.Body, v)
		}
		return false
	case *ast.ReturnStmt:
		// Returning the response itself hands the close duty to the
		// caller. A call inside the results does not: it falls through
		// to the generic scan, where only recognized closers discharge.
		for _, r := range m.Results {
			if id, ok := ast.Unparen(r).(*ast.Ident); ok && pass.Info.Uses[id] == v {
				return true
			}
		}
	}
	done := false
	inspectShallow(n, func(m ast.Node) bool {
		if done {
			return false
		}
		switch m := m.(type) {
		case *ast.FuncLit:
			// The closure captures v: its lifetime leaves this graph.
			if usesObjectAsValue(pass.Info, m.Body, v) || closesBodyOf(pass.Info, m.Body, v) {
				done = true
			}
			return false
		case *ast.CallExpr:
			if closeTargets(pass.Info, m, v) {
				done = true
				return false
			}
			for i, arg := range m.Args {
				if !usesObjectAsValue(pass.Info, arg, v) {
					continue
				}
				// Only a recognized drain-and-close helper discharges a
				// value pass; an arbitrary callee reading the response
				// does not inherit the close duty.
				if fn, ok := calleeObject(pass.Info, m).(*types.Func); ok {
					if idx, closer := pass.Facts.BodyCloserParam(fn); closer && idx == i {
						done = true
						return false
					}
				}
			}
		case *ast.AssignStmt:
			// Stored whole into another variable, field, or container:
			// the owner changed; this site is no longer responsible.
			for _, rhs := range m.Rhs {
				if usesObjectAsValue(pass.Info, rhs, v) {
					done = true
				}
			}
		}
		return true
	})
	return done
}

// usesObjectAsValue reports whether the subtree uses v as a whole
// value — a bare mention that is not merely the base of a field or
// method selection (v.StatusCode, v.Body, v.Write(...) are reads of
// v's parts, not uses of v itself).
func usesObjectAsValue(info *types.Info, n ast.Node, v types.Object) bool {
	// Idents appearing as the X of a selector are field reads, not
	// value uses; collect them first, then look for any other use.
	fieldReads := make(map[*ast.Ident]bool)
	ast.Inspect(n, func(m ast.Node) bool {
		if sel, ok := m.(*ast.SelectorExpr); ok {
			if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && info.Uses[id] == v {
				fieldReads[id] = true
			}
		}
		return true
	})
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		if id, ok := m.(*ast.Ident); ok && info.Uses[id] == v && !fieldReads[id] {
			found = true
		}
		return true
	})
	return found
}

// checkLimitedReads enforces the io.LimitReader rule flow-
// insensitively: a remote body handed whole to a reader sink is
// unbounded no matter the path.
var readerSinks = map[string]int{
	// "pkg.Func": index of the reader argument.
	"io.ReadAll":      0,
	"io.Copy":         1,
	"json.NewDecoder": 0,
	"bufio.NewReader": 0,
	"xml.NewDecoder":  0,
}

func checkLimitedReads(pass *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn, ok := calleeObject(pass.Info, call).(*types.Func)
		if !ok {
			return true
		}
		idx, sink := readerSinks[funcFactKey(fn)]
		if !sink || idx >= len(call.Args) {
			return true
		}
		arg := ast.Unparen(call.Args[idx])
		sel, ok := arg.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Body" {
			return true
		}
		tv, ok := pass.Info.Types[sel.X]
		if !ok {
			return true
		}
		switch {
		case isResponsePtr(tv.Type):
			pass.Reportf(arg.Pos(), "unbounded read of a response body; wrap it in io.LimitReader")
		case namedType(tv.Type, "http", "Request"):
			pass.Reportf(arg.Pos(), "unbounded read of a request body; wrap it in io.LimitReader")
		}
		return true
	})
}
