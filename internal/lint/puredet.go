package lint

import (
	"go/ast"
	"strconv"
)

// purePackages are the deterministic phase packages. Their golden and
// differential tests are only meaningful if output depends on input
// alone. This is the governed set minus cluster: the cluster routing
// layer runs under the governor too, but it is a network component —
// clocks and HTTP are its job, not a purity leak.
var purePackages = map[string]bool{
	"htmlparse": true,
	"tidy":      true,
	"tagtree":   true,
	"subtree":   true,
	"separator": true,
	"combine":   true,
	"extract":   true,
}

// impureImports are packages a pure phase must not import at all:
// randomness and I/O surfaces.
var impureImports = map[string]string{
	"math/rand":    "randomness",
	"math/rand/v2": "randomness",
	"os":           "file and process I/O",
	"os/exec":      "process I/O",
	"io/ioutil":    "file I/O",
	"net":          "network I/O",
	"net/http":     "network I/O",
	"syscall":      "system calls",
}

// impureCalls are package-level functions a pure phase must not call:
// clocks and stdout/stderr writes. Keyed pkg name -> func names.
var impureCalls = map[string]map[string]bool{
	"time": {"Now": true, "Since": true, "Until": true, "Sleep": true, "After": true, "Tick": true},
	"fmt":  {"Print": true, "Printf": true, "Println": true},
}

// newPuredet builds the puredet analyzer: the pure phase packages stay
// deterministic — no clocks, no randomness, no I/O.
func newPuredet() *Analyzer {
	return &Analyzer{
		Name: "puredet",
		Doc:  "pure phase packages must not call time.Now, math/rand, or do I/O",
		Run:  runPuredet,
	}
}

func runPuredet(pass *Pass) {
	if !purePackages[lastSegment(pass.Path)] {
		return
	}
	for _, file := range pass.Files {
		for _, imp := range file.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if why, bad := impureImports[path]; bad {
				pass.Reportf(imp.Pos(), "pure phase package imports %s (%s); phases must be deterministic", path, why)
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for pkgName, funcs := range impureCalls {
				for fn := range funcs {
					if isPkgFunc(pass.Info, call, pkgName, fn) {
						pass.Reportf(call.Pos(), "pure phase package calls %s.%s; phases must be deterministic and silent", pkgName, fn)
						return true
					}
				}
			}
			return true
		})
	}
}
