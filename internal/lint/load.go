package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	// Fset is the loader's shared file set.
	Fset *token.FileSet
	// Path is the import path.
	Path string
	// Dir is the directory the package was loaded from.
	Dir string
	// Files are the parsed non-test files.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info carries the type-checker's facts.
	Info *types.Info
}

// Loader loads and type-checks packages of one module from source.
// Module-internal imports resolve against the module tree; standard
// library imports are type-checked from GOROOT source via the
// go/importer source importer, so the loader needs no compiled export
// data and no tooling beyond the stdlib.
type Loader struct {
	Fset *token.FileSet
	// ModuleRoot is the directory holding go.mod.
	ModuleRoot string
	// ModulePath is the module's import path ("omini").
	ModulePath string

	std   types.ImporterFrom
	cache map[string]*Package
	// loading guards against import cycles while type-checking.
	loading map[string]bool
}

// NewLoader locates the module containing dir and returns a loader
// for it.
func NewLoader(dir string) (*Loader, error) {
	root, modpath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	// The source importer type-checks the standard library from GOROOT
	// source. With cgo enabled it would try to preprocess cgo files in
	// net; the pure-Go fallbacks type-check identically for analysis
	// purposes, so force them.
	build.Default.CgoEnabled = false
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("lint: source importer unavailable")
	}
	return &Loader{
		Fset:       fset,
		ModuleRoot: root,
		ModulePath: modpath,
		std:        std,
		cache:      make(map[string]*Package),
		loading:    make(map[string]bool),
	}, nil
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func findModule(dir string) (root, modpath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module line", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", abs)
		}
		d = parent
	}
}

// Import resolves an import path for the type checker: module-internal
// paths load from the module tree, everything else from GOROOT source.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
		pkg, err := l.LoadDir(filepath.Join(l.ModuleRoot, filepath.FromSlash(rel)), path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// ImportFrom implements types.ImporterFrom; the module has no vendor
// tree, so dir never changes resolution.
func (l *Loader) ImportFrom(path, _ string, _ types.ImportMode) (*types.Package, error) {
	return l.Import(path)
}

// LoadDir parses and type-checks the package in dir under the given
// import path. Test files (_test.go) are excluded: ominilint checks
// production invariants, and fixtures must be free to violate them in
// tests.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	if pkg, ok := l.cache[importPath]; ok {
		return pkg, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("lint: import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	names, err := goFileNames(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(importPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: typecheck %s: %w", importPath, err)
	}
	pkg := &Package{
		Fset:  l.Fset,
		Path:  importPath,
		Dir:   dir,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	l.cache[importPath] = pkg
	return pkg, nil
}

// goFileNames lists the non-test Go files of dir in sorted order.
func goFileNames(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		if strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// LoadPatterns expands the package patterns (resolved relative to dir;
// a trailing "/..." walks recursively) and loads every matched
// package. testdata, hidden, and underscore-prefixed directories are
// skipped, matching the go tool's convention.
func (l *Loader) LoadPatterns(dir string, patterns []string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := make(map[string]bool)
	var dirs []string
	for _, pat := range patterns {
		rec := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			rec = true
			pat = rest
			if pat == "" {
				pat = "."
			}
		}
		base := pat
		if !filepath.IsAbs(base) {
			base = filepath.Join(dir, base)
		}
		abs, err := filepath.Abs(base)
		if err != nil {
			return nil, err
		}
		base = abs
		if !rec {
			if !seen[base] {
				seen[base] = true
				dirs = append(dirs, base)
			}
			continue
		}
		err = filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != base && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if !seen[p] {
				seen[p] = true
				dirs = append(dirs, p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}

	var pkgs []*Package
	for _, d := range dirs {
		names, err := goFileNames(d)
		if err != nil || len(names) == 0 {
			continue // not a package directory
		}
		rel, err := filepath.Rel(l.ModuleRoot, d)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("lint: %s is outside module %s", d, l.ModuleRoot)
		}
		importPath := l.ModulePath
		if rel != "." {
			importPath = l.ModulePath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.LoadDir(d, importPath)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}
