package lint

// A reviewed baseline for deliberate exceptions: each entry names an
// analyzer, a function key ("pkg.Func" or "pkg.Recv.Method"), and a
// mandatory justification. Findings inside a baselined function are
// suppressed for that analyzer; entries pointing at functions that no
// longer exist in the loaded packages are themselves reported as
// findings (analyzer "baseline"), so the file can only shrink as the
// code it excuses disappears — a stale exception never lingers
// silently.

import (
	"fmt"
	"go/ast"
	"go/token"
	"os"
	"sort"
	"strings"
)

// BaselineEntry is one reviewed exception.
type BaselineEntry struct {
	// Analyzer is the analyzer whose findings the entry suppresses.
	Analyzer string
	// FuncKey identifies the function ("pkg.Func" / "pkg.Recv.Method"),
	// matching governloop's baseline key format.
	FuncKey string
	// Justification explains why the exception is correct.
	Justification string
	// Line is the entry's line in the baseline file.
	Line int
}

// Baseline is a parsed baseline file.
type Baseline struct {
	// Path names the file, for stale-entry positions.
	Path    string
	entries map[string]map[string]*BaselineEntry // analyzer -> funcKey
}

// LoadBaseline reads and parses a baseline file.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseBaseline(path, data)
}

// ParseBaseline parses baseline text: one entry per line in the form
//
//	<analyzer> <pkg>.<func-key> — <justification>
//
// ("--" works in place of the em dash). Blank lines and #-comments
// are skipped. An entry without a justification is an error: the file
// is a record of reviewed decisions, not a mute button.
func ParseBaseline(path string, data []byte) (*Baseline, error) {
	b := &Baseline{Path: path, entries: make(map[string]map[string]*BaselineEntry)}
	for i, line := range strings.Split(string(data), "\n") {
		text := strings.TrimSpace(line)
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		var why string
		for _, sep := range []string{" — ", " -- "} {
			if head, tail, ok := strings.Cut(text, sep); ok {
				text, why = strings.TrimSpace(head), strings.TrimSpace(tail)
				break
			}
		}
		fields := strings.Fields(text)
		if len(fields) != 2 || why == "" {
			return nil, fmt.Errorf("%s:%d: baseline entry must be %q", path, i+1,
				"<analyzer> <pkg>.<func> — <justification>")
		}
		e := &BaselineEntry{Analyzer: fields[0], FuncKey: fields[1], Justification: why, Line: i + 1}
		if b.entries[e.Analyzer] == nil {
			b.entries[e.Analyzer] = make(map[string]*BaselineEntry)
		}
		if b.entries[e.Analyzer][e.FuncKey] != nil {
			return nil, fmt.Errorf("%s:%d: duplicate baseline entry %s %s", path, i+1, e.Analyzer, e.FuncKey)
		}
		b.entries[e.Analyzer][e.FuncKey] = e
	}
	return b, nil
}

// Len reports the number of entries.
func (b *Baseline) Len() int {
	n := 0
	for _, m := range b.entries {
		n += len(m)
	}
	return n
}

// funcIndex maps finding positions back to enclosing declarations: a
// per-file, line-ranged index of every FuncDecl in the run, plus the
// set of existing function keys for staleness.
type funcIndex struct {
	byFile map[string][]funcRange
	keys   map[string]bool
}

type funcRange struct {
	start, end int
	key        string
}

func buildFuncIndex(pkgs []*Package) *funcIndex {
	idx := &funcIndex{byFile: make(map[string][]funcRange), keys: make(map[string]bool)}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				key := lastSegment(pkg.Path) + "." + funcKey(fd)
				idx.keys[key] = true
				start := pkg.Fset.Position(fd.Pos())
				end := pkg.Fset.Position(fd.End())
				idx.byFile[start.Filename] = append(idx.byFile[start.Filename],
					funcRange{start: start.Line, end: end.Line, key: key})
			}
		}
	}
	return idx
}

// keyAt resolves a finding position to its enclosing function key.
func (idx *funcIndex) keyAt(pos token.Position) string {
	best := ""
	bestSpan := 1 << 30
	for _, fr := range idx.byFile[pos.Filename] {
		if pos.Line >= fr.start && pos.Line <= fr.end && fr.end-fr.start < bestSpan {
			best, bestSpan = fr.key, fr.end-fr.start
		}
	}
	return best
}

// ApplyBaseline filters findings through the baseline: findings whose
// enclosing function carries a matching entry are dropped, and every
// entry that names a function absent from the loaded packages comes
// back as a stale-baseline finding positioned at its line in the
// baseline file. A nil baseline passes findings through unchanged.
func ApplyBaseline(b *Baseline, pkgs []*Package, findings []Finding) []Finding {
	if b == nil {
		return findings
	}
	idx := buildFuncIndex(pkgs)
	kept := findings[:0:0]
	for _, f := range findings {
		if byKey := b.entries[f.Analyzer]; byKey != nil {
			if key := idx.keyAt(f.Pos); key != "" && byKey[key] != nil {
				continue
			}
		}
		kept = append(kept, f)
	}
	kept = append(kept, StaleEntries(b, pkgs)...)
	sortFindings(kept)
	return kept
}

// StaleEntries reports baseline entries that reference functions no
// longer present in the loaded packages.
func StaleEntries(b *Baseline, pkgs []*Package) []Finding {
	if b == nil {
		return nil
	}
	idx := buildFuncIndex(pkgs)
	var stale []Finding
	var analyzers []string
	for a := range b.entries {
		analyzers = append(analyzers, a)
	}
	sort.Strings(analyzers)
	for _, a := range analyzers {
		for _, e := range b.entries[a] {
			if !idx.keys[e.FuncKey] {
				stale = append(stale, Finding{
					Pos:      token.Position{Filename: b.Path, Line: e.Line},
					Analyzer: "baseline",
					Message:  fmt.Sprintf("stale baseline entry: %s %s names a function that no longer exists", e.Analyzer, e.FuncKey),
				})
			}
		}
	}
	sortFindings(stale)
	return stale
}
