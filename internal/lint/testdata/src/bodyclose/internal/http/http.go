// Package http is a minimal stand-in for net/http so the fixture
// packages type-check inside their own module. bodyclose matches the
// package name and type names, not the import path.
package http

import "io"

type Header map[string][]string

func (h Header) Set(key, value string) {}

type Request struct {
	Header Header
	Body   io.ReadCloser
}

type Response struct {
	StatusCode int
	Body       io.ReadCloser
}

type Client struct{}

func (c *Client) Do(req *Request) (*Response, error) { return nil, nil }

func NewRequest(method, url string, body io.Reader) (*Request, error) {
	return &Request{Header: Header{}}, nil
}
