// Package fetch exercises bodyclose: every *http.Response body must
// reach Close on all control-flow paths, and every remote body read
// must go through io.LimitReader.
package fetch

import (
	"encoding/json"
	"io"

	"fixture/internal/http"
)

const maxBody = 1 << 20

// The sanctioned shape: error-guard, deferred close, bounded read.
func good(c *http.Client, req *http.Request) ([]byte, error) {
	resp, err := c.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return io.ReadAll(io.LimitReader(resp.Body, maxBody))
}

// No close on any path.
func badNoClose(c *http.Client, req *http.Request) (int, error) {
	resp, err := c.Do(req) // want "does not reach Close on every path"
	if err != nil {
		return 0, err
	}
	return resp.StatusCode, nil
}

// Close on one branch only: the other escapes.
func badOneBranch(c *http.Client, req *http.Request) int {
	resp, err := c.Do(req) // want "does not reach Close on every path"
	if err != nil {
		return 0
	}
	if resp.StatusCode == 200 {
		resp.Body.Close()
		return 200
	}
	return resp.StatusCode
}

// An early return between the call and the deferred close leaks.
func badEarlyReturn(c *http.Client, req *http.Request, skip bool) error {
	resp, err := c.Do(req) // want "does not reach Close on every path"
	if err != nil {
		return err
	}
	if skip {
		return nil
	}
	defer resp.Body.Close()
	return nil
}

// Discarding the response discards the only handle to its body.
func badDiscard(c *http.Client, req *http.Request) {
	_, err := c.Do(req) // want "assigned to _ leaks its body"
	_ = err
}

// Direct close on every path (no defer needed).
func goodDirectClose(c *http.Client, req *http.Request) error {
	resp, err := c.Do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	return nil
}

// A deferred closure that drains and closes counts as a close.
func goodDeferClosure(c *http.Client, req *http.Request) error {
	resp, err := c.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		_ = resp.Body.Close()
	}()
	return nil
}

// Returning the response hands the close duty to the caller.
func goodHandOffReturn(c *http.Client, req *http.Request) (*http.Response, error) {
	return c.Do(req)
}

func goodHandOffReturnVar(c *http.Client, req *http.Request) (*http.Response, error) {
	resp, err := c.Do(req)
	if err != nil {
		return nil, err
	}
	return resp, nil
}

// drainAndClose is recognized by the call-graph facts as a
// drain-and-close helper (it closes its *http.Response parameter).
func drainAndClose(resp *http.Response) {
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	_ = resp.Body.Close()
}

func goodHelperClose(c *http.Client, req *http.Request) error {
	resp, err := c.Do(req)
	if err != nil {
		return err
	}
	drainAndClose(resp)
	return nil
}

// inspect reads the response but closes nothing: passing resp to it
// does not discharge the close duty.
func inspect(resp *http.Response) int { return resp.StatusCode }

func badHelperNoClose(c *http.Client, req *http.Request) int {
	resp, err := c.Do(req) // want "does not reach Close on every path"
	if err != nil {
		return 0
	}
	return inspect(resp)
}

// Unbounded reads: handing the raw body to a reader sink.
func badUnboundedResponse(c *http.Client, req *http.Request) ([]byte, error) {
	resp, err := c.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return io.ReadAll(resp.Body) // want "unbounded read of a response body"
}

func badUnboundedDecode(c *http.Client, req *http.Request, v any) error {
	resp, err := c.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(v) // want "unbounded read of a response body"
}

// An inbound request body is a remote peer's bytes too.
func badUnboundedRequest(req *http.Request) ([]byte, error) {
	return io.ReadAll(req.Body) // want "unbounded read of a request body"
}

func goodBoundedRequest(req *http.Request) ([]byte, error) {
	return io.ReadAll(io.LimitReader(req.Body, maxBody))
}

// Storing the response whole transfers ownership out of this graph.
type cache struct {
	last *http.Response
}

func goodStore(c *http.Client, req *http.Request, s *cache) error {
	resp, err := c.Do(req)
	if err != nil {
		return err
	}
	s.last = resp
	return nil
}
