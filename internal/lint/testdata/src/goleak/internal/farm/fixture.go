// Package farm exercises goleak: it is one of the long-lived packages
// (serve, cluster, farm, ruledist, obs), so every goroutine spawned
// here must be tied to a WaitGroup, a context, or a captured stop
// channel.
package farm

import (
	"context"
	"sync"
)

type Server struct {
	wg    sync.WaitGroup
	stopc chan struct{}
	jobs  chan string
}

// Fire-and-forget: nothing can wait for or stop this goroutine.
func (s *Server) badFireAndForget() {
	go func() { // want "has no lifecycle"
		work()
	}()
}

// WaitGroup-tied: the spawner can drain it.
func (s *Server) goodWaitGroup() {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		work()
	}()
}

// Context-aware: cancellation ends the loop.
func (s *Server) goodContextLoop(ctx context.Context) {
	go func() {
		for {
			if ctx.Err() != nil {
				return
			}
			work()
		}
	}()
}

// Stop-channel select: closing s.stopc ends the goroutine.
func (s *Server) goodStopChannel() {
	go func() {
		for {
			select {
			case <-s.stopc:
				return
			case j := <-s.jobs:
				_ = j
			}
		}
	}()
}

// Ranging over a captured work queue: closing the channel ends it.
func (s *Server) goodRangeQueue() {
	go func() {
		for j := range s.jobs {
			_ = j
		}
	}()
}

// A captured local done channel is a lifecycle too.
func (s *Server) goodLocalDone() chan struct{} {
	done := make(chan struct{})
	go func() {
		<-done
	}()
	return done
}

// A channel made inside the goroutine cannot be a stop signal.
func (s *Server) badInnerChannel() {
	go func() { // want "has no lifecycle"
		inner := make(chan struct{})
		<-inner
	}()
}

// A named function taking a context is accountable to its caller.
func (s *Server) goodNamedWithContext(ctx context.Context) {
	go s.run(ctx)
}

func (s *Server) run(ctx context.Context) {
	<-ctx.Done()
}

// A named function without a context is opaque: nothing ties it down.
func (s *Server) badNamedNoContext() {
	go work() // want "has no lifecycle"
}

func work() {}
