// Package flow is not a long-lived package: goleak does not apply
// here, so even a fire-and-forget goroutine produces no finding.
package flow

func Scatter() {
	go func() {
		// request-scoped helper goroutine; out of goleak's scope
	}()
}
