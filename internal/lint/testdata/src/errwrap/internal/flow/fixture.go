// Package flow exercises the errwrap analyzer: %w wrapping, errors.Is
// matching, and recovered-value handling.
package flow

import (
	"errors"
	"fmt"
)

var ErrStale = errors.New("stale")

func wrapBad(err error) error {
	return fmt.Errorf("load: %v", err) // want "use %w"
}

func wrapGood(err error) error {
	return fmt.Errorf("load: %w", err)
}

func compareBad(err error) bool {
	return err == ErrStale // want "use errors.Is"
}

func compareGood(err error) bool {
	return errors.Is(err, ErrStale) || err == nil
}

func recoverBad() (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%w: %v", ErrStale, r) // want "assert it to error"
		}
	}()
	return nil
}

func recoverGood() (err error) {
	defer func() {
		if r := recover(); r != nil {
			rerr, ok := r.(error)
			if !ok {
				rerr = fmt.Errorf("%v", r)
			}
			err = fmt.Errorf("%w: %w", ErrStale, rerr)
		}
	}()
	return nil
}
