// Package govern is a minimal stand-in for the real governor so the
// fixture packages type-check inside their own module. The analyzers
// match the package name and type name, not the import path.
package govern

import "context"

// Guard mirrors the real guard's charging surface.
type Guard struct {
	ctx context.Context
	ops int
}

func (g *Guard) Input(n int) error  { return nil }
func (g *Guard) Tokens(n int) error { return nil }
func (g *Guard) Nodes(n int) error  { return nil }
func (g *Guard) Depth(d int) error  { return nil }
func (g *Guard) Objects(n int) error {
	return nil
}
func (g *Guard) Poll()        {}
func (g *Guard) Check() error { return nil }
