// Package subtree exercises the governloop analyzer: loops inside
// governed functions must charge the guard, *Governed names must take
// one, and exported entry points may not loop without one.
package subtree

import "fixture/internal/govern"

// SumGoverned charges on every loop iteration: conforming.
func SumGoverned(xs []int, g *govern.Guard) int {
	total := 0
	for _, x := range xs {
		g.Poll()
		total += x
	}
	return total
}

// LeakGoverned skips the guard inside its loop.
func LeakGoverned(xs []int, g *govern.Guard) int {
	total := 0
	for _, x := range xs { // want "does not charge the \\*govern.Guard"
		total += x
	}
	return total + len(xs)
}

// BadGoverned promises governed behavior without a guard in reach.
func BadGoverned(xs []int) int { // want "takes no \\*govern.Guard parameter"
	return len(xs)
}

// Join loops in an exported entry point with no guard anywhere.
func Join(xs []int) int { // want "exported entry point Join loops without"
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

// Batch loops but delegates each step to a guard-taking function:
// conforming.
func Batch(groups [][]int) int {
	total := 0
	for _, grp := range groups {
		total += SumGoverned(grp, nil)
	}
	return total
}

// DescendGoverned delegates charging to a recursive local closure that
// polls: conforming.
func DescendGoverned(n int, g *govern.Guard) int {
	var walk func(int) int
	walk = func(d int) int {
		g.Poll()
		if d <= 0 {
			return 0
		}
		return 1 + walk(d-1)
	}
	return walk(n)
}

// SpinGoverned recurses through a closure that never charges.
func SpinGoverned(n int, g *govern.Guard) int {
	var spin func(int) int
	spin = func(d int) int { // want "recursive closure spin"
		if d <= 0 {
			return 0
		}
		return 1 + spin(d-1)
	}
	return spin(n)
}

// walker carries the guard the way the tidy normalizer does.
type walker struct {
	g *govern.Guard
}

func (w *walker) step() { w.g.Poll() }

// drain loops but charges through the guard-carrying receiver:
// conforming.
func (w *walker) drain(xs []int) int {
	total := 0
	for _, x := range xs {
		w.step()
		total += x
	}
	return total
}
