// Package cluster exercises governloop on the cluster routing layer:
// ring walks and probe sweeps are governed code, so their loops must
// charge the guard and exported entry points may not loop bare.
package cluster

import "fixture/internal/govern"

// Successors charges per ring step: conforming.
func Successors(points []int, g *govern.Guard) int {
	total := 0
	for _, p := range points {
		g.Poll()
		total += p
	}
	return total
}

// probeSweep takes a guard but skips it in its sweep loop.
func probeSweep(nodes []string, g *govern.Guard) int {
	alive := 0
	for range nodes { // want "does not charge the \\*govern.Guard"
		alive++
	}
	return alive
}

// Route loops over candidates with no guard anywhere.
func Route(candidates []string) string { // want "exported entry point Route loops without"
	last := ""
	for _, c := range candidates {
		last = c
	}
	return last
}

// Rebuild loops but delegates each node to a guard-taking function:
// conforming.
func Rebuild(shards [][]int) int {
	total := 0
	for _, s := range shards {
		total += Successors(s, nil)
	}
	return total
}
