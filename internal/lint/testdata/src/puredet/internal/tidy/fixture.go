// Package tidy exercises the puredet analyzer: a pure phase package
// reaching for clocks, randomness and I/O.
package tidy

import (
	"math/rand" // want "imports math/rand"
	"os"        // want "imports os"
	"time"
)

func jitter() int {
	return rand.Int()
}

func stamp() int64 {
	return time.Now().UnixNano() // want "calls time.Now"
}

func home() string {
	return os.Getenv("HOME")
}

// clean is deterministic: conforming.
func clean(s string) string {
	return s + "!"
}
