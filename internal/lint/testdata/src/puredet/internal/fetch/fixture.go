// Package fetch is outside the pure phase set; clocks are fine here
// and must produce no findings.
package fetch

import "time"

// Stamp may read the clock: fetch is an I/O package by design.
func Stamp() int64 {
	return time.Now().UnixNano()
}
