// Package ruledist exercises obsnames on the rule-replication layer:
// as a pre-registration package, every ruledist.* series it emits must
// be constant, grammatical, and present in registerMetrics.
package ruledist

import "fixture/internal/obs"

const (
	seriesRounds      = "ruledist.rounds"
	seriesRulesPulled = "ruledist.rules_pulled"
	seriesCorrupt     = "ruledist.corrupt_discarded"
)

func registerMetrics(r *obs.Registry) {
	r.Counter(seriesRounds)
	r.Counter(seriesRulesPulled)
}

func emit(r *obs.Registry, peer string) {
	r.Add(seriesRounds, 1)
	r.Add(seriesRulesPulled, 1)
	r.Add(seriesCorrupt, 1)         // want "missing from the boot pre-registration set"
	r.Add("ruledist.peer."+peer, 1) // want "must be a compile-time constant"
	r.Add("ruledist.{bad_peer}", 1) // want "does not match the registry grammar"
	r.Add("ruledist.Tombstones", 1) // want "does not match the registry grammar"
}
