// Package cluster exercises obsnames on the cluster routing layer: as
// a pre-registration package, every cluster.* series it emits must be
// constant, grammatical, and present in registerMetrics.
package cluster

import "fixture/internal/obs"

const (
	seriesFailover  = "cluster.failover"
	seriesEjections = "cluster.ejections"
	seriesForgotten = "cluster.forgotten_total"
)

func registerMetrics(r *obs.Registry) {
	r.Counter(seriesFailover)
	r.Counter(seriesEjections)
}

func emit(r *obs.Registry, node string) {
	r.Add(seriesFailover, 1)
	r.Add(seriesEjections, 1)
	r.Add(seriesForgotten, 1)       // want "missing from the boot pre-registration set"
	r.Add("cluster.node."+node, 1)  // want "must be a compile-time constant"
	r.Add("cluster.{bad_label}", 1) // want "does not match the registry grammar"
}
