// Package serve exercises the obsnames analyzer: constant grammatical
// series names, one constant per series, and boot pre-registration of
// everything this package emits.
package serve

import "fixture/internal/obs"

const (
	seriesGood    = "serve.good_total"
	seriesAlt     = "serve.alt_total"
	seriesMissing = "serve.missing_total"
	seriesDup     = "serve.good_total" // want "duplicate constant for series"
	seriesUgly    = "Serve.BAD-NAME"
)

var phases = []string{"walk"}

func registerMetrics(r *obs.Registry) {
	r.Counter(seriesGood)
	r.Counter(seriesAlt)
	for _, phase := range phases {
		r.Histogram(obs.PhaseSeries(phase))
	}
}

func emit(r *obs.Registry, dyn string, flag bool) {
	r.Add(seriesGood, 1)
	r.Add(seriesMissing, 1) // want "missing from the boot pre-registration set"
	r.Add(seriesDup, 1)
	r.Add(seriesUgly, 1)   // want "does not match the registry grammar"
	r.Add("serve."+dyn, 1) // want "must be a compile-time constant"
	r.Add(pick(flag), 1)
	r.Observe(obs.PhaseSeries("walk"), 1)
	r.Observe(obs.PhaseSeries(dyn), 1) // want "must be a compile-time constant phase name"
	r.ObserveExemplar(seriesGood, 1, dyn)
	r.ObserveExemplar("serve."+dyn, 1, dyn) // want "must be a compile-time constant"
}

// pick yields only pre-registered constants, the sanctioned helper
// shape for bounded dynamic selection: conforming.
func pick(flag bool) string {
	if flag {
		return seriesGood
	}
	return seriesAlt
}
