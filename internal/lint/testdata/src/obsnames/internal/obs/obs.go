// Package obs is a minimal stand-in for the real registry so the
// fixture packages type-check inside their own module. The analyzer
// matches the package name, type name and method names.
package obs

// Registry mirrors the real registry's name-taking surface.
type Registry struct{}

func (r *Registry) Counter(name string)                                    {}
func (r *Registry) Add(name string, n int64)                               {}
func (r *Registry) Histogram(name string)                                  {}
func (r *Registry) Observe(name string, v float64)                         {}
func (r *Registry) ObserveExemplar(name string, v float64, traceID string) {}

// PhaseSeries mirrors the sanctioned labeled-family helper.
func PhaseSeries(phase string) string {
	return `omini_phase_seconds{phase="` + phase + `"}`
}
