// Package cluster exercises lockhold: no sync.Mutex or sync.RWMutex
// may be held across a blocking call, a channel operation, or a
// blocking select. The positive cases hold a lock across each blocking
// shape; the negative cases release first or never block.
package cluster

import (
	"sync"
	"time"

	"fixture/internal/http"
)

type Coordinator struct {
	mu     sync.Mutex
	rmu    sync.RWMutex
	client *http.Client
	peers  map[string]string
	jobs   chan string
}

// Held across an HTTP round-trip: the canonical pile-up.
func (c *Coordinator) badRoundTrip(req *http.Request) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	resp, err := c.client.Do(req) // want "lock c.mu is held across blocking call http.Client.Do"
	if err != nil {
		return err
	}
	_ = resp.Body.Close()
	return nil
}

// Unlocking before the round-trip is the fix.
func (c *Coordinator) goodRoundTrip(req *http.Request) error {
	c.mu.Lock()
	addr := c.peers["a"]
	c.mu.Unlock()
	_ = addr
	resp, err := c.client.Do(req)
	if err != nil {
		return err
	}
	_ = resp.Body.Close()
	return nil
}

// Held across a channel send.
func (c *Coordinator) badSend(v string) {
	c.mu.Lock()
	c.jobs <- v // want "lock c.mu is held across a channel send"
	c.mu.Unlock()
}

// Held across a channel receive, with a read lock.
func (c *Coordinator) badReceive() string {
	c.rmu.RLock()
	v := <-c.jobs // want "lock c.rmu is held across a channel receive"
	c.rmu.RUnlock()
	return v
}

// Held across a blocking select: the head is the blocking point.
func (c *Coordinator) badSelect(stop chan struct{}) {
	c.mu.Lock()
	defer c.mu.Unlock()
	select { // want "lock c.mu is held across a blocking select"
	case <-stop:
	case v := <-c.jobs:
		c.peers[v] = v
	}
}

// A select with a default clause never blocks.
func (c *Coordinator) goodSelectDefault() {
	c.mu.Lock()
	defer c.mu.Unlock()
	select {
	case v := <-c.jobs:
		c.peers[v] = v
	default:
	}
}

// Held across a sleep, via the intrinsics table.
func (c *Coordinator) badSleep() {
	c.mu.Lock()
	time.Sleep(time.Millisecond) // want "lock c.mu is held across blocking call time.Sleep"
	c.mu.Unlock()
}

// Held across a helper that transitively performs a round-trip: the
// call-graph facts classify fetch as blocking.
func (c *Coordinator) badTransitive(req *http.Request) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.fetch(req) // want "lock c.mu is held across blocking call cluster.Coordinator.fetch"
}

func (c *Coordinator) fetch(req *http.Request) {
	resp, err := c.client.Do(req)
	if err != nil {
		return
	}
	_ = resp.Body.Close()
}

// Held across a range over a channel.
func (c *Coordinator) badRange() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for v := range c.jobs { // want "lock c.mu is held across a range over a channel"
		c.peers[v] = v
	}
}

// Short critical sections around in-memory maps are the sanctioned
// pattern.
func (c *Coordinator) goodMapUpdate(k, v string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.peers[k] = v
}

// A lock released on only one branch is still possibly held at the
// join: may-analysis unions the paths.
func (c *Coordinator) badBranchy(req *http.Request, fast bool) {
	c.mu.Lock()
	if fast {
		c.mu.Unlock()
	}
	c.fetch(req) // want "lock c.mu is held across blocking call cluster.Coordinator.fetch"
	if !fast {
		c.mu.Unlock()
	}
}

// A goroutine body is its own scope: the spawner's lock is not held by
// the goroutine, and the literal blocking inside does not charge the
// spawner. (The closure itself takes no lock, so nothing is reported.)
func (c *Coordinator) goodGoroutine() {
	c.mu.Lock()
	defer c.mu.Unlock()
	go func() {
		v := <-c.jobs
		_ = v
	}()
}

// A closure that locks and blocks is the same bug in a smaller scope.
func (c *Coordinator) badClosure(req *http.Request) func() {
	return func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		c.fetch(req) // want "lock c.mu is held across blocking call cluster.Coordinator.fetch"
	}
}
