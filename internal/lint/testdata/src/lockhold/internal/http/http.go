// Package http is a minimal stand-in for net/http so the fixture
// packages type-check inside their own module. The analyzers and the
// blocking-intrinsics table match the package name, type name, and
// method names — not the import path.
package http

import "io"

// Header mirrors net/http.Header's Set/Add surface.
type Header map[string][]string

func (h Header) Set(key, value string) {}
func (h Header) Add(key, value string) {}

// Request mirrors the outbound-request shape the analyzers inspect.
type Request struct {
	Header Header
	Body   io.ReadCloser
}

// Response mirrors the response shape bodyclose tracks.
type Response struct {
	StatusCode int
	Body       io.ReadCloser
}

// Client.Do is in the blocking-intrinsics table as http.Client.Do.
type Client struct{}

func (c *Client) Do(req *Request) (*Response, error) { return nil, nil }

func NewRequest(method, url string, body io.Reader) (*Request, error) {
	return &Request{Header: Header{}}, nil
}
