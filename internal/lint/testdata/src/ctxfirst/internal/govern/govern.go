// Package govern holds the one sanctioned context-carrying struct: the
// analyzer must not flag govern.Guard.
package govern

import "context"

// Guard legitimately stores the page context.
type Guard struct {
	ctx context.Context
}
