// Package sched exercises the ctxfirst analyzer: context.Context is
// the first parameter and is never stored in a struct.
package sched

import "context"

type job struct {
	ctx  context.Context // want "stores a context.Context"
	name string
}

func startBad(name string, ctx context.Context) error { // want "first parameter"
	_ = name
	_ = ctx
	return nil
}

func startGood(ctx context.Context, name string) error {
	_ = ctx
	_ = name
	return nil
}
