// Package obs is a minimal stand-in for the real tracing registry so
// the fixture packages type-check inside their own module. spanend
// matches the package name, function names, and the TraceHeader
// constant — not the import path.
package obs

import "context"

// TraceHeader mirrors the real header constant.
const TraceHeader = "X-Omini-Trace"

type Span struct{}

func (s *Span) End() {}

func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	return ctx, &Span{}
}

type SpanContext struct{}

func (sc SpanContext) Valid() bool    { return false }
func (sc SpanContext) Header() string { return "" }

func SpanContextFrom(ctx context.Context) SpanContext { return SpanContext{} }
