// Package flow is not a traced-client package: the stamp rule does
// not apply here, but span endings are still checked everywhere.
package flow

import (
	"context"

	"fixture/internal/http"
	"fixture/internal/obs"
)

// Building a request without a stamp is fine outside cluster/ruledist.
func Probe(ctx context.Context, c *http.Client, url string) error {
	req, err := http.NewRequestWithContext(ctx, "GET", url, nil)
	if err != nil {
		return err
	}
	resp, err := c.Do(req)
	if err != nil {
		return err
	}
	_ = resp.Body.Close()
	return nil
}

// Span endings are checked in every package.
func badSpan(ctx context.Context, fail bool) error {
	sctx, sp := obs.StartSpan(ctx, "flow.phase") // want "does not reach End on every path"
	_ = sctx
	if fail {
		return nil
	}
	sp.End()
	return nil
}
