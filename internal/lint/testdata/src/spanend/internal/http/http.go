// Package http is a minimal stand-in for net/http so the fixture
// packages type-check inside their own module. spanend matches the
// package name and function names, not the import path.
package http

import (
	"context"
	"io"
)

type Header map[string][]string

func (h Header) Set(key, value string) {}

type Request struct {
	Header Header
}

type Response struct {
	Body io.ReadCloser
}

type Client struct{}

func (c *Client) Do(req *Request) (*Response, error) { return nil, nil }

func NewRequest(method, url string, body io.Reader) (*Request, error) {
	return &Request{Header: Header{}}, nil
}

func NewRequestWithContext(ctx context.Context, method, url string, body io.Reader) (*Request, error) {
	return &Request{Header: Header{}}, nil
}
