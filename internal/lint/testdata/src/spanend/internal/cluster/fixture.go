// Package cluster exercises spanend in a traced-client package: every
// span from obs.StartSpan must reach End on all paths, and every
// function that builds an outbound request must stamp the
// X-Omini-Trace header, directly or via a stamping helper.
package cluster

import (
	"context"

	"fixture/internal/http"
	"fixture/internal/obs"
)

type Coordinator struct {
	client *http.Client
}

// The sanctioned shape: deferred End covers every path.
func (c *Coordinator) goodDefer(ctx context.Context) error {
	sctx, sp := obs.StartSpan(ctx, "cluster.good")
	defer sp.End()
	_ = sctx
	return nil
}

// End on one branch only: the error path leaks the span.
func (c *Coordinator) badOneBranch(ctx context.Context, fail bool) error {
	sctx, sp := obs.StartSpan(ctx, "cluster.branchy") // want "does not reach End on every path"
	_ = sctx
	if fail {
		return errDown
	}
	sp.End()
	return nil
}

// Discarding the span means nobody can end it.
func (c *Coordinator) badDiscard(ctx context.Context) {
	sctx, _ := obs.StartSpan(ctx, "cluster.discard") // want "discarded and never ended"
	_ = sctx
}

// Unconditional End before every return is fine without defer.
func (c *Coordinator) goodDirect(ctx context.Context, n int) int {
	sctx, sp := obs.StartSpan(ctx, "cluster.direct")
	_ = sctx
	total := n * 2
	sp.End()
	return total
}

// A deferred closure that ends the span covers every path.
func (c *Coordinator) goodDeferClosure(ctx context.Context) {
	sctx, sp := obs.StartSpan(ctx, "cluster.closure")
	defer func() {
		sp.End()
	}()
	_ = sctx
}

// Returning the span hands the End duty to the caller.
func (c *Coordinator) goodHandOff(ctx context.Context) (context.Context, *obs.Span) {
	sctx, sp := obs.StartSpan(ctx, "cluster.handoff")
	return sctx, sp
}

// An outbound request with a direct header stamp.
func (c *Coordinator) goodStampDirect(ctx context.Context, base string) error {
	sctx, sp := obs.StartSpan(ctx, "cluster.hop")
	defer sp.End()
	req, err := http.NewRequestWithContext(sctx, "GET", base, nil)
	if err != nil {
		return err
	}
	if sc := obs.SpanContextFrom(sctx); sc.Valid() {
		req.Header.Set(obs.TraceHeader, sc.Header())
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return err
	}
	_ = resp.Body.Close()
	return nil
}

// An outbound request stamped through a helper the call-graph facts
// classify as stamping.
func (c *Coordinator) goodStampHelper(ctx context.Context, base string) error {
	req, err := http.NewRequestWithContext(ctx, "GET", base, nil)
	if err != nil {
		return err
	}
	c.stamp(ctx, req.Header)
	resp, err := c.client.Do(req)
	if err != nil {
		return err
	}
	_ = resp.Body.Close()
	return nil
}

func (c *Coordinator) stamp(ctx context.Context, h http.Header) {
	if sc := obs.SpanContextFrom(ctx); sc.Valid() {
		h.Set(obs.TraceHeader, sc.Header())
	}
}

// An outbound request with no stamp at all: the hop's span cannot
// parent to the peer's handler span.
func (c *Coordinator) badNoStamp(ctx context.Context, base string) error { // want "never stamps the X-Omini-Trace header"
	req, err := http.NewRequestWithContext(ctx, "GET", base, nil)
	if err != nil {
		return err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return err
	}
	_ = resp.Body.Close()
	return nil
}

var errDown = error(nil)
