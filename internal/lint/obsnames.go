package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
)

// registryNameMethods are the obs.Registry methods whose first argument
// is a series name.
var registryNameMethods = map[string]bool{
	"Counter":           true,
	"Add":               true,
	"Get":               true,
	"Gauge":             true,
	"SetGauge":          true,
	"RegisterGaugeFunc": true,
	"Histogram":         true,
	"Observe":           true,
	"ObserveExemplar":   true,
}

// seriesGrammar is the registry naming grammar: dotted lower-case with
// an optional single Prometheus-style label.
var seriesGrammar = regexp.MustCompile(`^[a-z0-9][a-z0-9_.]*(\{[a-z0-9_]+="[^"{}]*"\})?$`)

// preregPackages are the packages whose emitted series must appear in
// the boot pre-registration set, so /metricsz exposes every series from
// process start instead of only after first use.
var preregPackages = map[string]bool{
	"serve":    true,
	"core":     true,
	"cluster":  true,
	"farm":     true,
	"ruledist": true,
}

// phaseSeriesName mirrors obs.PhaseSeries for pre-registration
// bookkeeping: any constant harvested from registerMetrics also
// pre-registers its per-phase latency series.
func phaseSeriesName(phase string) string {
	return fmt.Sprintf("omini_phase_seconds{phase=%q}", phase)
}

// seriesUse is one registry call site with a resolved series name.
type seriesUse struct {
	value string
	pos   token.Position
	pkg   string
}

// obsnames enforces the observability naming contract: series names at
// registry call sites are compile-time constants in the registry
// grammar (or go through the sanctioned obs.PhaseSeries helper /
// constant-yielding local functions), no two named constants spell the
// same series, and everything serve and core emit is pre-registered in
// registerMetrics. The analyzer is per-run stateful; the cross-package
// checks run in Finish.
type obsnames struct {
	sawRegisterMetrics bool
	prereg             map[string]bool
	emitted            []seriesUse
	// constUses maps a series value to the named constants spelling it,
	// to catch two constants for one series.
	constUses map[string]map[types.Object]token.Position
}

func newObsnames() *Analyzer {
	o := &obsnames{
		prereg:    make(map[string]bool),
		constUses: make(map[string]map[types.Object]token.Position),
	}
	return &Analyzer{
		Name:   "obsnames",
		Doc:    "registry series names are constant, grammatical, unique, and pre-registered at boot",
		Run:    o.run,
		Finish: o.finish,
	}
}

func (o *obsnames) run(pass *Pass) {
	pkg := lastSegment(pass.Path)
	// The registry implementation plumbs name parameters through its own
	// methods and owns the one sanctioned dynamic family (PhaseSeries).
	if pkg == "obs" {
		return
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			// registerMetrics is the sanctioned registration zone: it loops
			// over the constant name sets, so its call sites are harvested
			// into the pre-registration set instead of checked.
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Name.Name == "registerMetrics" && fd.Body != nil {
				o.sawRegisterMetrics = true
				o.harvestPrereg(pass, fd.Body)
				continue
			}
			ast.Inspect(decl, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				o.checkRegistryCall(pass, pkg, call)
				return true
			})
		}
	}
}

// harvestPrereg collects the pre-registration set from registerMetrics:
// every constant string in its body (including constants referenced
// from other packages) and in the initializers of package-level vars it
// ranges over (the pipeline phase list), each also mapped through the
// per-phase latency family.
func (o *obsnames) harvestPrereg(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		expr, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		if v, ok := constStringOf(pass.Info, expr); ok {
			o.addPrereg(v)
		}
		if ident, ok := expr.(*ast.Ident); ok {
			if v, ok := pass.Info.Uses[ident].(*types.Var); ok && v.Parent() == pass.Pkg.Scope() {
				o.harvestVarInit(pass, v)
			}
		}
		return true
	})
}

// harvestVarInit harvests constant strings from the package-level
// initializer of v.
func (o *obsnames) harvestVarInit(pass *Pass, v *types.Var) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					if pass.Info.Defs[name] != v {
						continue
					}
					for _, val := range vs.Values {
						ast.Inspect(val, func(n ast.Node) bool {
							if e, ok := n.(ast.Expr); ok {
								if s, ok := constStringOf(pass.Info, e); ok {
									o.addPrereg(s)
								}
							}
							return true
						})
					}
				}
			}
		}
	}
}

func (o *obsnames) addPrereg(v string) {
	if seriesGrammar.MatchString(v) {
		o.prereg[v] = true
		o.prereg[phaseSeriesName(v)] = true
	}
}

// checkRegistryCall validates the name argument of an obs.Registry
// method call.
func (o *obsnames) checkRegistryCall(pass *Pass, pkg string, call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !registryNameMethods[sel.Sel.Name] || len(call.Args) == 0 {
		return
	}
	tv, ok := pass.Info.Types[sel.X]
	if !ok || !namedType(tv.Type, "obs", "Registry") {
		return
	}
	arg := ast.Unparen(call.Args[0])

	if v, ok := constStringOf(pass.Info, arg); ok {
		if !seriesGrammar.MatchString(v) {
			pass.Reportf(arg.Pos(), "series name %q does not match the registry grammar [a-z0-9_.]+ with optional {label=\"...\"}", v)
			return
		}
		o.recordUse(pass, pkg, arg, v)
		return
	}
	if inner, ok := arg.(*ast.CallExpr); ok {
		// obs.PhaseSeries(<const phase>) is the sanctioned labeled family.
		if isPkgFunc(pass.Info, inner, "obs", "PhaseSeries") && len(inner.Args) == 1 {
			if phase, ok := constStringOf(pass.Info, inner.Args[0]); ok {
				o.recordUse(pass, pkg, inner.Args[0], phaseSeriesName(phase))
				return
			}
			pass.Reportf(arg.Pos(), "obs.PhaseSeries argument must be a compile-time constant phase name")
			return
		}
		// A local helper whose every return is a grammatical constant
		// (request path -> series switches) is equivalent to a constant.
		if values, ok := o.constantYield(pass, inner); ok {
			for _, v := range values {
				o.emitted = append(o.emitted, seriesUse{value: v, pos: pass.Fset.Position(arg.Pos()), pkg: pkg})
			}
			return
		}
	}
	pass.Reportf(arg.Pos(), "series name passed to Registry.%s must be a compile-time constant (or obs.PhaseSeries of one)", sel.Sel.Name)
}

// recordUse notes one resolved series emission and, when the argument
// is a named constant, tracks it for duplicate detection.
func (o *obsnames) recordUse(pass *Pass, pkg string, arg ast.Expr, value string) {
	o.emitted = append(o.emitted, seriesUse{value: value, pos: pass.Fset.Position(arg.Pos()), pkg: pkg})
	var obj types.Object
	switch e := arg.(type) {
	case *ast.Ident:
		obj = pass.Info.Uses[e]
	case *ast.SelectorExpr:
		obj = pass.Info.Uses[e.Sel]
	}
	if c, ok := obj.(*types.Const); ok {
		uses := o.constUses[value]
		if uses == nil {
			uses = make(map[types.Object]token.Position)
			o.constUses[value] = uses
		}
		if _, seen := uses[c]; !seen {
			uses[c] = pass.Fset.Position(c.Pos())
		}
	}
}

// constantYield resolves a call to a same-package function whose every
// return statement yields a grammatical constant string, returning the
// set of possible values.
func (o *obsnames) constantYield(pass *Pass, call *ast.CallExpr) ([]string, bool) {
	obj := calleeObject(pass.Info, call)
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() != pass.Pkg {
		return nil, false
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || pass.Info.Defs[fd.Name] != fn || fd.Body == nil {
				continue
			}
			var values []string
			allConst := true
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				ret, ok := n.(*ast.ReturnStmt)
				if !ok || !allConst {
					return allConst
				}
				if len(ret.Results) != 1 {
					allConst = false
					return false
				}
				v, ok := constStringOf(pass.Info, ret.Results[0])
				if !ok || !seriesGrammar.MatchString(v) {
					allConst = false
					return false
				}
				values = append(values, v)
				return true
			})
			if allConst && len(values) > 0 {
				return values, true
			}
			return nil, false
		}
	}
	return nil, false
}

func (o *obsnames) finish(report func(token.Position, string)) {
	for value, uses := range o.constUses {
		if len(uses) < 2 {
			continue
		}
		positions := make([]token.Position, 0, len(uses))
		for _, pos := range uses {
			positions = append(positions, pos)
		}
		sort.Slice(positions, func(i, j int) bool {
			if positions[i].Filename != positions[j].Filename {
				return positions[i].Filename < positions[j].Filename
			}
			return positions[i].Line < positions[j].Line
		})
		for _, pos := range positions[1:] {
			report(pos, fmt.Sprintf("duplicate constant for series %q; one series, one constant", value))
		}
	}
	// The pre-registration check needs a boot set to compare against;
	// fixture packages without a registerMetrics skip it.
	if !o.sawRegisterMetrics {
		return
	}
	reported := make(map[string]bool)
	for _, use := range o.emitted {
		if !preregPackages[use.pkg] || o.prereg[use.value] || reported[use.value] {
			continue
		}
		reported[use.value] = true
		report(use.pos, fmt.Sprintf("series %q is emitted but missing from the boot pre-registration set (registerMetrics)", use.value))
	}
}
