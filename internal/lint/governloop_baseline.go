package lint

// governloopBaseline grandfathers the ungoverned exported API that
// predates the resource governor: convenience entry points and pure
// accessors whose *Governed counterparts (or governed callers) carry
// the budget. Keyed "pkg.Func" / "pkg.Recv.Method". New entries are
// not added here — new looping entry points must take a *govern.Guard
// or delegate to one.
var governloopBaseline = map[string]bool{
	"combine.Combinations":          true,
	"combine.CombineLists":          true,
	"combine.NewCombination":        true,
	"extract.Object.Size":           true,
	"extract.Object.TagSet":         true,
	"extract.Object.Text":           true,
	"extract.Refine":                true,
	"htmlparse.EscapeAttr":          true,
	"htmlparse.EscapeText":          true,
	"htmlparse.Token.Attr":          true,
	"htmlparse.Token.String":        true,
	"htmlparse.UnescapeText":        true,
	"separator.PPPaths":             true,
	"separator.RPPairs":             true,
	"separator.RankOf":              true,
	"separator.SBPairs":             true,
	"separator.Stats.FirstIndex":    true,
	"separator.Tags":                true,
	"tagtree.Compile":               true,
	"tagtree.FindPath":              true,
	"tagtree.MinimalSubtree":        true,
	"tagtree.Node.ChildTagCounts":   true,
	"tagtree.Node.ChildTags":        true,
	"tagtree.Node.Depth":            true,
	"tagtree.Node.IsAncestorOf":     true,
	"tagtree.Node.MaxChildTagCount": true,
	"tagtree.Node.Root":             true,
	"tagtree.Node.Walk":             true,
	"tagtree.Outline":               true,
	"tagtree.Path":                  true,
	"tagtree.PathSignature":         true,
	"tagtree.Selector.Match":        true,
	"tagtree.Signature.Similarity":  true,
	"tidy.Serialize":                true,
}
