package lint

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

func analyzerByName(t *testing.T, name string) *Analyzer {
	t.Helper()
	for _, a := range NewAnalyzers() {
		if a.Name == name {
			return a
		}
	}
	t.Fatalf("no analyzer named %q", name)
	return nil
}

// wantExp is one parsed `// want "regex"` expectation.
type wantExp struct {
	re      *regexp.Regexp
	raw     string
	matched bool
}

// collectWants gathers the `// want "…"` comments of every loaded
// fixture file, keyed by "file:line".
func collectWants(t *testing.T, pkgs []*Package) map[string][]*wantExp {
	t.Helper()
	wants := make(map[string][]*wantExp)
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(c.Text, "// want ")
					if !ok {
						continue
					}
					raw, err := strconv.Unquote(strings.TrimSpace(rest))
					if err != nil {
						t.Fatalf("malformed want comment %q: %v", c.Text, err)
					}
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Fatalf("malformed want pattern %q: %v", raw, err)
					}
					pos := pkg.Fset.Position(c.Pos())
					key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
					wants[key] = append(wants[key], &wantExp{re: re, raw: raw})
				}
			}
		}
	}
	return wants
}

// runFixture loads testdata/src/<name>, runs only the matching
// analyzer, and checks findings against the want comments exactly:
// every finding needs a want on its line, every want needs a finding.
func runFixture(t *testing.T, name string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	loader, err := NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadPatterns(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	findings := RunAnalyzers(pkgs, []*Analyzer{analyzerByName(t, name)})
	if len(findings) == 0 {
		t.Fatal("fixture produced no findings; the positive cases are not exercising the analyzer")
	}
	wants := collectWants(t, pkgs)
	for _, f := range findings {
		key := fmt.Sprintf("%s:%d", f.Pos.Filename, f.Pos.Line)
		matched := false
		for _, exp := range wants[key] {
			if !exp.matched && exp.re.MatchString(f.Message) {
				exp.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for key, exps := range wants {
		for _, exp := range exps {
			if !exp.matched {
				t.Errorf("%s: no finding matched want %q", key, exp.raw)
			}
		}
	}
}

func TestGovernloopFixture(t *testing.T) { runFixture(t, "governloop") }
func TestObsnamesFixture(t *testing.T)   { runFixture(t, "obsnames") }
func TestErrwrapFixture(t *testing.T)    { runFixture(t, "errwrap") }
func TestCtxfirstFixture(t *testing.T)   { runFixture(t, "ctxfirst") }
func TestPuredetFixture(t *testing.T)    { runFixture(t, "puredet") }
func TestLockholdFixture(t *testing.T)   { runFixture(t, "lockhold") }
func TestBodycloseFixture(t *testing.T)  { runFixture(t, "bodyclose") }
func TestGoleakFixture(t *testing.T)     { runFixture(t, "goleak") }
func TestSpanendFixture(t *testing.T)    { runFixture(t, "spanend") }

// TestSelfCheck asserts the full analyzer suite is green on the real
// module after the reviewed baseline is applied: the contracts
// ominilint enforces hold in this tree, every deliberate exception is
// recorded in lint.baseline, and no baseline entry is stale.
func TestSelfCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped with -short")
	}
	root := filepath.Join("..", "..")
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadPatterns(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := LoadBaseline(filepath.Join(root, "lint.baseline"))
	if err != nil {
		t.Fatal(err)
	}
	findings := ApplyBaseline(baseline, pkgs, RunAnalyzers(pkgs, NewAnalyzers()))
	for _, f := range findings {
		t.Errorf("ominilint finding on the real module: %s", f)
	}
}
