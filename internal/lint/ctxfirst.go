package lint

import (
	"go/ast"
)

// newCtxfirst builds the ctxfirst analyzer: context.Context flows as
// the first parameter of a function, never later in the list and never
// stored in a struct. The one sanctioned store is govern.Guard, whose
// whole job is carrying the page deadline into guard-charged loops.
func newCtxfirst() *Analyzer {
	return &Analyzer{
		Name: "ctxfirst",
		Doc:  "context.Context is the first parameter and is not stored in structs (except govern.Guard)",
		Run:  runCtxfirst,
	}
}

func runCtxfirst(pass *Pass) {
	pkg := lastSegment(pass.Path)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				checkCtxParams(pass, n.Type)
			case *ast.FuncLit:
				checkCtxParams(pass, n.Type)
			case *ast.TypeSpec:
				st, ok := n.Type.(*ast.StructType)
				if !ok {
					return true
				}
				if pkg == "govern" && n.Name.Name == "Guard" {
					return true
				}
				for _, field := range st.Fields.List {
					if tv, ok := pass.Info.Types[field.Type]; ok && isContextType(tv.Type) {
						pass.Reportf(field.Pos(), "struct %s stores a context.Context; pass it as the first parameter instead (only govern.Guard may carry one)", n.Name.Name)
					}
				}
			}
			return true
		})
	}
}

// checkCtxParams reports a context.Context parameter anywhere but
// position zero.
func checkCtxParams(pass *Pass, ft *ast.FuncType) {
	if ft.Params == nil {
		return
	}
	pos := 0
	for _, field := range ft.Params.List {
		tv, ok := pass.Info.Types[field.Type]
		isCtx := ok && isContextType(tv.Type)
		names := len(field.Names)
		if names == 0 {
			names = 1
		}
		for i := 0; i < names; i++ {
			if isCtx && pos > 0 {
				pass.Reportf(field.Pos(), "context.Context must be the first parameter")
				return
			}
			pos++
		}
	}
}
