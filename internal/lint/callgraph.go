package lint

// Cross-function call-graph facts for the control-flow analyzers:
// which functions block (HTTP round-trips, channel operations,
// waits), which take sync locks, which stamp the X-Omini-Trace header
// on an outbound request, and which close the body of an
// *http.Response parameter. Facts are computed once per run over
// every loaded package, seeded from an intrinsics table for the
// standard library (whose bodies are not analyzed) and propagated
// through the module's own call graph to a fixed point.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// blockingIntrinsics names standard-library calls that block the
// calling goroutine on I/O, another goroutine, or the clock. Keys are
// "pkg.Func" for functions and "pkg.Recv.Method" for methods, matched
// by package name (not path) so fixture stand-ins exercise the same
// table. sync.Mutex.Lock is deliberately absent: nested lock
// acquisition is ordinary; lockhold's concern is locks held across
// the operations listed here.
var blockingIntrinsics = map[string]bool{
	"http.Client.Do":                true,
	"http.Client.Get":               true,
	"http.Client.Head":              true,
	"http.Client.Post":              true,
	"http.Client.PostForm":          true,
	"http.Transport.RoundTrip":      true,
	"http.RoundTripper.RoundTrip":   true,
	"http.Get":                      true,
	"http.Head":                     true,
	"http.Post":                     true,
	"http.PostForm":                 true,
	"http.ListenAndServe":           true,
	"http.ListenAndServeTLS":        true,
	"http.Server.ListenAndServe":    true,
	"http.Server.ListenAndServeTLS": true,
	"http.Server.Serve":             true,
	"http.Server.Shutdown":          true,
	"net.Dial":                      true,
	"net.DialTimeout":               true,
	"net.Dialer.Dial":               true,
	"net.Dialer.DialContext":        true,
	"sync.WaitGroup.Wait":           true,
	"sync.Cond.Wait":                true,
	"time.Sleep":                    true,
}

// CallFacts classifies functions for the control-flow analyzers.
type CallFacts struct {
	blocking map[*types.Func]bool
	locking  map[*types.Func]bool
	stamping map[*types.Func]bool
	// bodyCloser maps a function to the index of the *http.Response
	// parameter whose Body it closes.
	bodyCloser map[*types.Func]int
}

// funcFactKey renders a *types.Func as an intrinsics-table key:
// "pkg.Name" for functions, "pkg.Recv.Name" for methods with the
// receiver's pointer stripped.
func funcFactKey(fn *types.Func) string {
	if fn.Pkg() == nil {
		return ""
	}
	key := fn.Pkg().Name() + "."
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			key += named.Obj().Name() + "."
		}
	}
	return key + fn.Name()
}

// intrinsicBlockingCall reports whether the call is a known-blocking
// standard-library operation.
func intrinsicBlockingCall(info *types.Info, call *ast.CallExpr) bool {
	fn, ok := calleeObject(info, call).(*types.Func)
	return ok && blockingIntrinsics[funcFactKey(fn)]
}

// inspectShallow walks n skipping goroutine bodies: a `go func(){…}()`
// literal runs on another goroutine, so nothing inside it executes as
// part of the enclosing function. Deferred and directly-called
// literals stay in scope. The walk also never descends into the
// marker nodes (they are not ast-walkable); callers unwrap them
// first.
func inspectShallow(n ast.Node, f func(ast.Node) bool) {
	switch m := n.(type) {
	case *RangeHead:
		inspectShallow(m.Range.X, f)
		return
	case *SelectHead:
		return
	case *CommOp:
		inspectShallow(m.Stmt, f)
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			if _, lit := ast.Unparen(g.Call.Fun).(*ast.FuncLit); lit {
				// Visit the call's arguments (evaluated synchronously)
				// but not the literal's body.
				for _, a := range g.Call.Args {
					inspectShallow(a, f)
				}
				return false
			}
		}
		return f(n)
	})
}

// BuildCallFacts computes the call-graph facts for one run's loaded
// packages.
func BuildCallFacts(pkgs []*Package) *CallFacts {
	cf := &CallFacts{
		blocking:   make(map[*types.Func]bool),
		locking:    make(map[*types.Func]bool),
		stamping:   make(map[*types.Func]bool),
		bodyCloser: make(map[*types.Func]int),
	}
	// callers[f] lists the module functions that call f, for upward
	// propagation.
	callers := make(map[*types.Func][]*types.Func)
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				cf.seed(pkg.Info, fn, fd, callers)
			}
		}
	}
	cf.propagate(cf.blocking, callers)
	cf.propagate(cf.stamping, callers)
	return cf
}

// seed records a function's direct facts and call edges.
func (cf *CallFacts) seed(info *types.Info, fn *types.Func, fd *ast.FuncDecl, callers map[*types.Func][]*types.Func) {
	inspectShallow(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			cf.blocking[fn] = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				cf.blocking[fn] = true
			}
		case *ast.SelectStmt:
			hasDefault := false
			for _, c := range n.Body.List {
				if c.(*ast.CommClause).Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				cf.blocking[fn] = true
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					cf.blocking[fn] = true
				}
			}
		case *ast.CallExpr:
			if intrinsicBlockingCall(info, n) {
				cf.blocking[fn] = true
			}
			if mutexLockCall(info, n) != "" {
				cf.locking[fn] = true
			}
			if stampsTraceHeader(info, n) {
				cf.stamping[fn] = true
			}
			if callee, ok := calleeObject(info, n).(*types.Func); ok {
				callers[callee] = append(callers[callee], fn)
			}
		}
		return true
	})
	if idx, ok := closesResponseParam(info, fd); ok {
		cf.bodyCloser[fn] = idx
	}
}

// propagate closes a fact over the call graph: a caller of a fact-
// holding function holds the fact.
func (cf *CallFacts) propagate(fact map[*types.Func]bool, callers map[*types.Func][]*types.Func) {
	work := make([]*types.Func, 0, len(fact))
	for fn := range fact {
		work = append(work, fn)
	}
	for len(work) > 0 {
		fn := work[len(work)-1]
		work = work[:len(work)-1]
		for _, caller := range callers[fn] {
			if !fact[caller] {
				fact[caller] = true
				work = append(work, caller)
			}
		}
	}
}

// mutexLockCall returns the printed receiver of a Lock/RLock call on a
// sync.Mutex or sync.RWMutex ("c.mu"), or "" for any other call.
// unlockCall is the mirror for Unlock/RUnlock.
func mutexLockCall(info *types.Info, call *ast.CallExpr) string {
	return mutexCall(info, call, "Lock", "RLock")
}

func mutexUnlockCall(info *types.Info, call *ast.CallExpr) string {
	return mutexCall(info, call, "Unlock", "RUnlock")
}

func mutexCall(info *types.Info, call *ast.CallExpr, names ...string) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	match := false
	for _, n := range names {
		if sel.Sel.Name == n {
			match = true
		}
	}
	if !match {
		return ""
	}
	tv, ok := info.Types[sel.X]
	if !ok {
		return ""
	}
	if !namedType(tv.Type, "sync", "Mutex") && !namedType(tv.Type, "sync", "RWMutex") {
		return ""
	}
	return types.ExprString(sel.X)
}

// stampsTraceHeader reports whether the call sets the X-Omini-Trace
// header on an http.Header: h.Set(obs.TraceHeader, …) or a Set call
// whose first argument is the literal header name.
func stampsTraceHeader(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Set" && sel.Sel.Name != "Add") || len(call.Args) == 0 {
		return false
	}
	tv, ok := info.Types[sel.X]
	if !ok || !namedType(tv.Type, "http", "Header") {
		return false
	}
	arg := ast.Unparen(call.Args[0])
	if v, ok := constStringOf(info, arg); ok && v == "X-Omini-Trace" {
		return true
	}
	if s, ok := arg.(*ast.SelectorExpr); ok {
		if c, ok := info.Uses[s.Sel].(*types.Const); ok &&
			c.Pkg() != nil && c.Pkg().Name() == "obs" && c.Name() == "TraceHeader" {
			return true
		}
	}
	return false
}

// closesResponseParam reports the index of an *http.Response parameter
// whose Body the function closes, for recognizing drain-and-close
// helpers.
func closesResponseParam(info *types.Info, fd *ast.FuncDecl) (int, bool) {
	if fd.Type.Params == nil {
		return 0, false
	}
	idx := 0
	for _, field := range fd.Type.Params.List {
		tv, isResp := info.Types[field.Type]
		for _, name := range field.Names {
			if isResp && isResponsePtr(tv.Type) {
				obj := info.Defs[name]
				if obj != nil && closesBodyOf(info, fd.Body, obj) {
					return idx, true
				}
			}
			idx++
		}
		if len(field.Names) == 0 {
			idx++
		}
	}
	return 0, false
}

// isResponsePtr reports whether t is *http.Response (or http.Response).
func isResponsePtr(t types.Type) bool {
	return namedType(t, "http", "Response")
}

// closesBodyOf reports whether the body contains a <v>.Body.Close()
// call on the given variable.
func closesBodyOf(info *types.Info, body *ast.BlockStmt, v types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if closeTargets(info, call, v) {
			found = true
		}
		return true
	})
	return found
}

// closeTargets reports whether call is <v>.Body.Close() for the
// response variable v.
func closeTargets(info *types.Info, call *ast.CallExpr, v types.Object) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Close" {
		return false
	}
	inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok || inner.Sel.Name != "Body" {
		return false
	}
	id, ok := ast.Unparen(inner.X).(*ast.Ident)
	return ok && info.Uses[id] == v
}

// CallBlocks reports whether a call blocks the calling goroutine:
// a blocking intrinsic or a module function that (transitively)
// blocks.
func (cf *CallFacts) CallBlocks(info *types.Info, call *ast.CallExpr) bool {
	if intrinsicBlockingCall(info, call) {
		return true
	}
	fn, ok := calleeObject(info, call).(*types.Func)
	return ok && cf.blocking[fn]
}

// FuncBlocks reports whether fn (transitively) blocks.
func (cf *CallFacts) FuncBlocks(fn *types.Func) bool {
	return fn != nil && (cf.blocking[fn] || blockingIntrinsics[funcFactKey(fn)])
}

// FuncLocks reports whether fn directly acquires a sync.Mutex or
// sync.RWMutex.
func (cf *CallFacts) FuncLocks(fn *types.Func) bool {
	return fn != nil && cf.locking[fn]
}

// FuncStamps reports whether fn (transitively) stamps the
// X-Omini-Trace header on an outbound header set.
func (cf *CallFacts) FuncStamps(fn *types.Func) bool {
	return fn != nil && cf.stamping[fn]
}

// BodyCloserParam reports the *http.Response parameter index whose
// Body fn closes.
func (cf *CallFacts) BodyCloserParam(fn *types.Func) (int, bool) {
	if fn == nil {
		return 0, false
	}
	idx, ok := cf.bodyCloser[fn]
	return idx, ok
}
