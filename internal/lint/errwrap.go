package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// newErrwrap builds the errwrap analyzer: fmt.Errorf must wrap error
// arguments with %w (not %v/%s, which flatten the chain and break
// errors.Is through that layer), a recovered value folded into a
// wrapping Errorf must be asserted to error first, and error values
// must be compared with errors.Is/errors.As rather than ==.
func newErrwrap() *Analyzer {
	return &Analyzer{
		Name: "errwrap",
		Doc:  "wrap errors with %w and match sentinels with errors.Is/errors.As",
		Run:  runErrwrap,
	}
}

func runErrwrap(pass *Pass) {
	for _, file := range pass.Files {
		recoverVars := collectRecoverVars(pass.Info, file)
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkErrorf(pass, recoverVars, n)
			case *ast.BinaryExpr:
				checkSentinelCompare(pass, n)
			}
			return true
		})
	}
}

// collectRecoverVars finds variables assigned directly from recover(),
// whose static type is any even when the recovered value is an error.
func collectRecoverVars(info *types.Info, file *ast.File) map[types.Object]bool {
	vars := make(map[types.Object]bool)
	ast.Inspect(file, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Rhs) != 1 {
			return true
		}
		call, ok := assign.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		if ident, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || ident.Name != "recover" || info.Uses[ident] != types.Universe.Lookup("recover") {
			return true
		}
		for _, lhs := range assign.Lhs {
			if ident, ok := lhs.(*ast.Ident); ok {
				if obj := info.Defs[ident]; obj != nil {
					vars[obj] = true
				}
			}
		}
		return true
	})
	return vars
}

// checkErrorf validates verb/argument pairing in a fmt.Errorf call.
func checkErrorf(pass *Pass, recoverVars map[types.Object]bool, call *ast.CallExpr) {
	if !isPkgFunc(pass.Info, call, "fmt", "Errorf") || len(call.Args) < 2 || call.Ellipsis.IsValid() {
		return
	}
	format, ok := constStringOf(pass.Info, call.Args[0])
	if !ok {
		return
	}
	verbs, ok := formatVerbs(format)
	if !ok {
		return // indexed verbs; too dynamic to pair reliably
	}
	args := call.Args[1:]
	wraps := false
	for _, v := range verbs {
		if v == 'w' {
			wraps = true
		}
	}
	for i, verb := range verbs {
		if i >= len(args) || verb == 'w' {
			continue
		}
		arg := args[i]
		if tv, ok := pass.Info.Types[arg]; ok && implementsError(tv.Type) {
			pass.Reportf(arg.Pos(), "error argument formatted with %%%c; use %%w so errors.Is sees the chain", verb)
			continue
		}
		// fmt.Errorf("%v", r) converting a recovered value to an error is
		// fine; folding r into a chain that already wraps (%w elsewhere)
		// flattens any error r carries.
		if wraps {
			if ident, ok := ast.Unparen(arg).(*ast.Ident); ok && recoverVars[pass.Info.Uses[ident]] {
				pass.Reportf(arg.Pos(), "recovered value %s folded into a wrapping fmt.Errorf with %%%c; assert it to error and wrap with %%w", ident.Name, verb)
			}
		}
	}
}

// checkSentinelCompare flags == / != between two error-typed values.
// Comparisons against nil or any-typed values (recover results) are
// not error comparisons and stay exempt.
func checkSentinelCompare(pass *Pass, expr *ast.BinaryExpr) {
	if expr.Op != token.EQL && expr.Op != token.NEQ {
		return
	}
	xt, xok := pass.Info.Types[expr.X]
	yt, yok := pass.Info.Types[expr.Y]
	if !xok || !yok {
		return
	}
	if implementsError(xt.Type) && implementsError(yt.Type) {
		pass.Reportf(expr.OpPos, "error compared with %s; use errors.Is (or errors.As) so wrapped chains match", expr.Op)
	}
}

// formatVerbs returns the verb letter consuming each successive
// argument of a fmt format string ('*' for width/precision args). It
// reports !ok on explicit argument indexes, which break positional
// pairing.
func formatVerbs(format string) ([]byte, bool) {
	var verbs []byte
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
	scan:
		for ; i < len(format); i++ {
			switch c := format[i]; {
			case c == '%':
				break scan // literal %%
			case c == '+' || c == '-' || c == '#' || c == ' ' || c == '0' || c == '.' || (c >= '1' && c <= '9'):
			case c == '*':
				verbs = append(verbs, '*')
			case c == '[':
				return nil, false
			default:
				verbs = append(verbs, c)
				break scan
			}
		}
	}
	return verbs, true
}
