// Package sitegen generates the web pages the experiments run on: exact
// replicas of the paper's two running examples (the Library of Congress
// search results of Figure 1 and the canoe.com news search of Figures 4/5)
// and a deterministic synthetic corpus of multi-layout result sites standing
// in for the paper's 2,000+ cached pages (see DESIGN.md §3).
package sitegen

import (
	"fmt"
	"strings"
)

// locTitles are the result records of the Library of Congress replica. The
// titles vary in length so the SD heuristic has real variance to measure.
var locTitles = []string{
	"The voyage of the Beagle / Charles Darwin; with an introduction",
	"On the origin of species by means of natural selection",
	"The descent of man, and selection in relation to sex",
	"A naturalist's voyage round the world: the journal",
	"The expression of the emotions in man and animals",
	"The variation of animals and plants under domestication, vol. 1",
	"Insectivorous plants / by Charles Darwin",
	"The power of movement in plants, assisted by Francis Darwin",
	"The formation of vegetable mould, through the action of worms",
	"The different forms of flowers on plants of the same species",
	"The effects of cross and self fertilisation in the vegetable kingdom",
	"On the various contrivances by which British and foreign orchids",
	"The movements and habits of climbing plants, 2nd edition",
	"Geological observations on South America",
	"The structure and distribution of coral reefs",
	"A monograph on the sub-class Cirripedia, with figures of all species",
	"Journal of researches into the natural history and geology",
	"The life and letters of Charles Darwin, including an autobiography",
	"More letters of Charles Darwin: a record of his work",
	"The autobiography of Charles Darwin, 1809-1882, with original omissions",
}

// LOC returns the Library of Congress replica page of Figure 1: a body
// whose children are h1, i, then 20 records of (pre, a) separated by hr,
// then a trailing link, br, a search form and a footer paragraph. Tag
// counts match the paper's: hr x21, a x21, pre x20.
func LOC() Page {
	var b strings.Builder
	b.WriteString("<html><head><title>Library of Congress Search Results</title></head><body>\n")
	b.WriteString("<h1>Search Results</h1>\n")
	b.WriteString("<i>Records 1 through 20 of 243 returned.</i>\n")
	b.WriteString("<hr>\n")
	for i, title := range locTitles {
		fmt.Fprintf(&b, "<pre>[%02d] Book  %s\n     Call number QH365 .%c%d  Washington, D.C.</pre>\n",
			i+1, title, 'A'+byte(i%26), 1859+i)
		fmt.Fprintf(&b, "<a href=\"/cgi-bin/record?id=%d\">Full record</a>\n", i+1)
		b.WriteString("<hr>\n")
	}
	b.WriteString("<a href=\"/cgi-bin/next\">Next 20 records</a>\n<br>\n")
	b.WriteString("<form action=\"/cgi-bin/search\">")
	for i := 0; i < 8; i++ {
		fmt.Fprintf(&b, "<input type=\"text\" name=\"f%d\">", i)
	}
	b.WriteString("</form>\n")
	b.WriteString("<p>Library of Congress, 101 Independence Ave.</p>\n")
	b.WriteString("</body></html>\n")
	return Page{
		Site: "www.loc.gov",
		Name: "loc-search",
		HTML: b.String(),
		Truth: Truth{
			SubtreePath:  "html[1].body[2]",
			Separators:   []string{"hr", "pre"},
			ObjectCount:  len(locTitles),
			ObjectTitles: locTitles,
		},
	}
}
