package sitegen

import (
	"strings"
	"testing"

	"omini/internal/tagtree"
)

func spec(layout string, noise NoiseSpec) SiteSpec {
	return SiteSpec{
		Name:       "test." + layout + ".example",
		Domain:     DomainBooks,
		LayoutName: layout,
		Noise:      noise,
		MinItems:   5,
		MaxItems:   15,
	}
}

func TestPageDeterministic(t *testing.T) {
	s := spec("item-table", NoiseSpec{InlineHeader: true, HeavyBreaks: true})
	a, b := s.Page(3), s.Page(3)
	if a.HTML != b.HTML {
		t.Error("same (site, idx) produced different pages")
	}
	if a.Truth.SubtreePath != b.Truth.SubtreePath {
		t.Error("truth differs between identical generations")
	}
	c := s.Page(4)
	if a.HTML == c.HTML {
		t.Error("different page indexes produced identical pages")
	}
}

func TestEveryLayoutProducesResolvableTruth(t *testing.T) {
	for name, layout := range Layouts() {
		t.Run(name, func(t *testing.T) {
			s := spec(name, NoiseSpec{InlineHeader: true, InlineFooter: true})
			page := s.Page(0)
			if page.Truth.SubtreePath == "" {
				t.Fatal("empty truth path")
			}
			root, err := tagtree.Parse(page.HTML)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			sub := tagtree.FindPath(root, page.Truth.SubtreePath)
			if sub == nil {
				t.Fatalf("truth path %q does not resolve", page.Truth.SubtreePath)
			}
			if sub.Tag != layout.Container {
				t.Errorf("truth node is <%s>, want <%s>", sub.Tag, layout.Container)
			}
			if len(page.Truth.Separators) == 0 {
				t.Error("no truth separators")
			}
			// The separator tag must actually appear among the container's
			// children at least ObjectCount times (hr-style markers may
			// exceed it by one).
			counts := sub.ChildTagCounts()
			sep := page.Truth.Separators[0]
			if counts[sep] < page.Truth.ObjectCount {
				t.Errorf("separator %q occurs %d times, want >= %d objects",
					sep, counts[sep], page.Truth.ObjectCount)
			}
		})
	}
}

func TestEveryLayoutSurvivesAllNoise(t *testing.T) {
	noise := NoiseSpec{
		UncloseTags: true, UpperTags: true, UnquotedAttrs: true,
		HeavyBreaks: true, HeaderStyleP: true, PlainTitles: true,
		VarySizes: true, InlineHeader: true, InlineFooter: true,
		AdEvery: 3, HrDecorEvery: 4,
	}
	for name := range Layouts() {
		t.Run(name, func(t *testing.T) {
			s := spec(name, noise)
			for i := 0; i < 5; i++ {
				page := s.Page(i)
				root, err := tagtree.Parse(page.HTML)
				if err != nil {
					t.Fatalf("page %d: parse: %v", i, err)
				}
				if tagtree.FindPath(root, page.Truth.SubtreePath) == nil {
					t.Fatalf("page %d: truth path %q unresolvable under noise",
						i, page.Truth.SubtreePath)
				}
			}
		})
	}
}

func TestChromeAppears(t *testing.T) {
	s := spec("row-table", NoiseSpec{})
	s.Chrome = ChromeSpec{
		Banner: true, NavLinks: 20, SidebarLinks: 10, FooterLinks: 5, SearchForm: true,
	}
	page := s.Page(0)
	for _, want := range []string{"logo.gif", "Channels", `valign="top"`, "Copyright 2000", `action="/search"`} {
		if !strings.Contains(page.HTML, want) {
			t.Errorf("chrome fragment %q missing", want)
		}
	}
	// Sidebar wrapping must not break truth resolution.
	root, err := tagtree.Parse(page.HTML)
	if err != nil {
		t.Fatal(err)
	}
	if tagtree.FindPath(root, page.Truth.SubtreePath) == nil {
		t.Errorf("truth path %q unresolvable with sidebar", page.Truth.SubtreePath)
	}
}

func TestObjectCountWithinBounds(t *testing.T) {
	s := spec("ul-record", NoiseSpec{})
	for i := 0; i < 20; i++ {
		page := s.Page(i)
		if page.Truth.ObjectCount < s.MinItems || page.Truth.ObjectCount > s.MaxItems {
			t.Errorf("page %d: %d objects outside [%d,%d]",
				i, page.Truth.ObjectCount, s.MinItems, s.MaxItems)
		}
	}
}

func TestNoiseUnclosedTagsActuallyUnclosed(t *testing.T) {
	s := spec("row-table", NoiseSpec{UncloseTags: true})
	page := s.Page(0)
	if strings.Contains(page.HTML, "</td>") || strings.Contains(page.HTML, "</tr>") {
		t.Error("uncloseTags noise still emits </td>/</tr>")
	}
}

func TestNoiseUpperTags(t *testing.T) {
	s := spec("dl-record", NoiseSpec{UpperTags: true})
	page := s.Page(0)
	if !strings.Contains(page.HTML, "<DT>") {
		t.Error("upperTags noise produced no upper-case tags")
	}
}

func TestUnknownLayoutPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown layout did not panic")
		}
	}()
	bad := spec("no-such-layout", NoiseSpec{})
	bad.Page(0)
}

func TestTruthCorrectSeparator(t *testing.T) {
	truth := Truth{Separators: []string{"hr", "pre"}}
	if !truth.CorrectSeparator("hr") || !truth.CorrectSeparator("pre") {
		t.Error("listed separators not recognized")
	}
	if truth.CorrectSeparator("table") {
		t.Error("unlisted separator recognized")
	}
}

func TestPagesHelper(t *testing.T) {
	s := spec("para-record", NoiseSpec{})
	pages := s.Pages(4)
	if len(pages) != 4 {
		t.Fatalf("got %d pages", len(pages))
	}
	seen := make(map[string]bool)
	for _, p := range pages {
		if seen[p.Name] {
			t.Errorf("duplicate page name %q", p.Name)
		}
		seen[p.Name] = true
	}
}

func TestReplicasAreWellFormedPages(t *testing.T) {
	for _, page := range []Page{LOC(), Canoe()} {
		root, err := tagtree.Parse(page.HTML)
		if err != nil {
			t.Fatalf("%s: %v", page.Name, err)
		}
		if tagtree.FindPath(root, page.Truth.SubtreePath) == nil {
			t.Errorf("%s: truth path %q unresolvable", page.Name, page.Truth.SubtreePath)
		}
	}
}
