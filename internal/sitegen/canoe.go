package sitegen

import (
	"fmt"
	"strings"
)

// canoeHeadlines are the twelve news items of the canoe.com replica.
var canoeHeadlines = []struct {
	headline string
	summary  string
	source   string
}{
	{"Maple Leafs clinch playoff berth with overtime win",
		"Toronto defeated Ottawa 4-3 in overtime on Saturday night to secure a spot in the post-season for the third consecutive year.", "CANOE Sports"},
	{"Federal budget promises surplus for third straight year",
		"The finance minister tabled a budget that projects a modest surplus, with new spending on health care and debt reduction.", "CANOE Money"},
	{"Canadian dollar climbs against greenback",
		"The loonie gained half a cent against the US dollar in heavy trading as commodity prices continued their spring rally.", "CANOE Money"},
	{"Blue Jays open season with comeback victory",
		"A three-run ninth inning gave Toronto an opening-day win in front of a sellout crowd at SkyDome on Monday afternoon.", "CANOE Sports"},
	{"New telescope snaps sharpest images of distant galaxy",
		"Astronomers released images captured by the new instrument showing spiral arms in unprecedented detail.", "CANOE C-Health"},
	{"Census shows urban growth outpacing rural regions",
		"Statistics released Tuesday show city populations growing at twice the national rate over the past five years.", "CANOE CNEWS"},
	{"Film festival announces record lineup of premieres",
		"Organizers said this fall's festival will screen more than three hundred films from forty countries.", "JAM! Showbiz"},
	{"Scientists report progress on new flu vaccine",
		"Researchers say early trials of the candidate vaccine produced a strong immune response with mild side effects.", "CANOE C-Health"},
	{"Tech shares rally as quarterly earnings beat forecasts",
		"Technology stocks led the market higher after several bellwether companies reported better-than-expected results.", "CANOE Money"},
	{"Olympic committee shortlists three cities for winter games",
		"The shortlist was announced Wednesday; a final decision is expected at next summer's session.", "SLAM! Sports"},
	{"Storm system brings heavy snow to the prairies",
		"Up to thirty centimetres fell across southern Manitoba, closing highways and delaying flights.", "CANOE CNEWS"},
	{"Veteran goaltender announces retirement after 18 seasons",
		"The netminder leaves the game holding franchise records for wins and shutouts.", "SLAM! Sports"},
}

// canoeNavChannels populate the navigation menu whose font node carries the
// highest fan-out in the tree — the documented failure case of HF.
var canoeNavChannels = []string{
	"CNEWS", "Money", "Sports", "JAM!", "C-Health", "Lifewise", "AUTONET",
	"Travel", "Slam", "Matchmaker", "Weather", "Horoscopes", "Lotteries",
	"Crossword", "Scoreboard", "Mutual Funds", "Stocks", "Classifieds",
	"Careers", "Obituaries",
}

// canoeNewsTable renders one news item in the nested-table layout of
// Figure 5: outer table > tr > (td with img, td with inner table whose
// second cell carries font > b/a headline, two br, bold source).
func canoeNewsTable(i int, headline, summary, source string) string {
	return fmt.Sprintf(`<table width="100%%"><tr>`+
		`<td width="20%%"><img src="/img/story%d.gif" alt="photo"></td>`+
		`<td><table><tr><td>%02d.</td>`+
		`<td><font size="2"><b><a href="/cnews/story%d.html">%s</a></b>`+
		`<br>%s<br><b>%s</b></font></td>`+
		`</tr></table></td>`+
		`</tr></table>`+"\n", i, i+1, i, headline, summary, source)
}

// Canoe returns the canoe.com replica of Figures 4/5. The object-rich
// subtree is the fourth child of body (a form); its 19 children are
// img, br, img, br, the navigation table, six news tables, an empty map,
// six more news tables, and a trailing search form — a layout whose sibling
// pair counts reproduce the paper's Table 6 exactly ((table,table) x11,
// (img,br) x2, (br,img), (br,table), (table,map), (map,table),
// (table,form) x1 each).
func Canoe() Page {
	var b strings.Builder
	b.WriteString("<html><head><title>CANOE -- Search Results</title></head><body>\n")

	// body child 1: banner table (logo plus a couple of short links).
	b.WriteString(`<table><tr><td><img src="/img/canoe.gif" alt="CANOE"></td>` +
		`<td><a href="/">Home</a></td><td><a href="/help">Help</a></td></tr></table>` + "\n")

	// body child 2: the small search form the GSI table ranks (form[2]).
	b.WriteString(`<form action="/search"><table><tr><td>Find:</td>` +
		`<td><input type="text" name="q"><input type="submit" value="Go"></td></tr></table></form>` + "\n")

	// body child 3: rule between chrome and results.
	b.WriteString("<hr>\n")

	// body child 4: the object-rich form.
	b.WriteString(`<form action="/search/again">` + "\n")
	b.WriteString(`<img src="/img/ad-top.gif" alt="ad"><br>` + "\n")
	b.WriteString(`<img src="/img/ad-side.gif" alt="ad"><br>` + "\n")

	// Child 5: navigation table whose td[2]>font[1] holds the link list.
	b.WriteString(`<table border="0"><tr><td>Channels</td><td><font size="1">`)
	for i, ch := range canoeNavChannels {
		if i > 0 {
			b.WriteString(" | ")
		}
		fmt.Fprintf(&b, `<a href="/%s">%s</a>`, strings.ToLower(strings.Trim(ch, "!")), ch)
	}
	b.WriteString(`</font></td></tr></table>` + "\n")

	// Children 6-11: first six news tables.
	for i, item := range canoeHeadlines[:6] {
		b.WriteString(canoeNewsTable(i, item.headline, item.summary, item.source))
	}
	// Child 12: empty image map between the two result groups.
	b.WriteString(`<map name="midnav"></map>` + "\n")
	// Children 13-18: remaining six news tables.
	for i, item := range canoeHeadlines[6:] {
		b.WriteString(canoeNewsTable(i+6, item.headline, item.summary, item.source))
	}
	// Child 19: trailing refine-search form.
	b.WriteString(`<form action="/search"><table><tr><td>Search again:</td>` +
		`<td><input type="text" name="q"><input type="submit" value="Search"></td></tr></table></form>` + "\n")
	b.WriteString("</form>\n")

	// body children 5 and 6: closing rule and footer.
	b.WriteString("<hr>\n")
	b.WriteString(`<p>Copyright 2000, Canoe Limited Partnership.</p>` + "\n")
	b.WriteString("</body></html>\n")

	headlines := make([]string, len(canoeHeadlines))
	for i, item := range canoeHeadlines {
		headlines[i] = item.headline
	}
	return Page{
		Site: "www.canoe.com",
		Name: "canoe-search",
		HTML: b.String(),
		Truth: Truth{
			SubtreePath:  "html[1].body[2].form[4]",
			Separators:   []string{"table"},
			ObjectCount:  len(canoeHeadlines),
			ObjectTitles: headlines,
		},
	}
}
