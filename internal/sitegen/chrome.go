package sitegen

import (
	"fmt"
	"math/rand"
	"strings"
)

// chromeProfile describes the page furniture around the content region:
// banners, navigation menus, sidebars and footers. Chrome is what defeats
// the naive highest-fanout subtree heuristic (Section 4.1) — a navigation
// menu with more links than there are search results.
type chromeProfile struct {
	// banner emits a logo table at the top of the body.
	banner bool
	// navLinks emits a navigation menu of that many links inside a
	// table>tr>td>font chain, canoe.com style (0 = none).
	navLinks int
	// sidebarLinks wraps the content region in a two-cell table whose
	// first cell carries that many stacked links (0 = no sidebar).
	sidebarLinks int
	// footerLinks emits a footer paragraph with that many links.
	footerLinks int
	// searchForm emits a small search form above the content region.
	searchForm bool
}

var navWords = []string{
	"Home", "News", "Sports", "Money", "Shop", "Books", "Music", "Video",
	"Travel", "Careers", "Weather", "Health", "Science", "Politics",
	"Local", "World", "Opinion", "Archive", "Help", "Contact", "About",
	"Specials", "Auctions", "Classifieds", "Horoscopes", "Lotteries",
	"Community", "Calendar", "Directory", "Gifts", "Kids", "Teens",
	"Software", "Hardware", "Reviews", "Forums", "Chat", "Email", "Maps",
	"Stocks",
}

func writeBanner(b *strings.Builder, site string) {
	fmt.Fprintf(b, `<table><tr><td><img src="/img/logo.gif" alt="%s"></td>`+
		`<td><a href="/">Home</a></td><td><a href="/help">Help</a></td></tr></table>`+"\n", site)
}

func writeNavMenu(rng *rand.Rand, b *strings.Builder, links int) {
	b.WriteString(`<table border="0"><tr><td>Channels</td><td><font size="1">`)
	for i := 0; i < links; i++ {
		if i > 0 {
			b.WriteString(" | ")
		}
		w := navWords[(i+rng.Intn(3))%len(navWords)]
		fmt.Fprintf(b, `<a href="/%s%d">%s</a>`, strings.ToLower(w), i, w)
	}
	b.WriteString(`</font></td></tr></table>` + "\n")
}

func writeSearchForm(b *strings.Builder) {
	b.WriteString(`<form action="/search"><table><tr><td>Find:</td>` +
		`<td><input type="text" name="q"><input type="submit" value="Go"></td></tr></table></form>` + "\n")
}

func writeSidebarOpen(rng *rand.Rand, b *strings.Builder, links int) {
	b.WriteString(`<table width="100%"><tr><td valign="top" width="15%">`)
	for i := 0; i < links; i++ {
		w := navWords[(i*7+rng.Intn(5))%len(navWords)]
		fmt.Fprintf(b, `<a href="/side/%d">%s</a><br>`, i, w)
	}
	b.WriteString(`</td><td valign="top">`)
}

func writeSidebarClose(b *strings.Builder) {
	b.WriteString(`</td></tr></table>` + "\n")
}

func writeFooter(b *strings.Builder, links int) {
	b.WriteString(`<p>`)
	for i := 0; i < links; i++ {
		if i > 0 {
			b.WriteString(" - ")
		}
		w := navWords[(i*3)%len(navWords)]
		fmt.Fprintf(b, `<a href="/footer/%d">%s</a>`, i, w)
	}
	b.WriteString(` Copyright 2000.</p>` + "\n")
}
