package sitegen

import (
	"fmt"
	"math/rand"
	"strings"
)

// Domain selects the vocabulary a site draws its object content from,
// mirroring the application domains of the paper's site lists (Tables 9 and
// 12): book stores, auctions, news portals, web search engines, product
// catalogs and stock quotes.
type Domain int

// Domains available to generated sites.
const (
	DomainBooks Domain = iota + 1
	DomainAuctions
	DomainNews
	DomainSearch
	DomainProducts
	DomainQuotes
)

var (
	nouns = []string{
		"river", "compiler", "garden", "voyage", "mountain", "archive",
		"protocol", "island", "festival", "reactor", "harbor", "novel",
		"galaxy", "museum", "market", "engine", "canyon", "library",
		"forest", "algorithm", "bridge", "observatory", "railway", "studio",
		"workshop", "kernel", "satellite", "orchard", "foundry", "atlas",
	}
	adjectives = []string{
		"silent", "modern", "ancient", "practical", "hidden", "complete",
		"portable", "distributed", "annotated", "essential", "advanced",
		"illustrated", "concise", "definitive", "updated", "rare",
		"vintage", "digital", "compact", "professional",
	}
	verbs = []string{
		"explores", "describes", "announces", "reveals", "introduces",
		"examines", "presents", "surveys", "documents", "celebrates",
		"measures", "improves", "challenges", "summarizes", "rebuilds",
	}
	surnames = []string{
		"Okafor", "Lindqvist", "Tanaka", "Moreau", "Castellanos", "Novak",
		"Bergstrom", "Achebe", "Kaplan", "Whitfield", "Duarte", "Ivanova",
		"Mbeki", "Halloran", "Svensson", "Oyelaran", "Petrov", "Nakamura",
	}
	sources = []string{
		"Wire Service", "Staff Report", "Business Desk", "Sports Desk",
		"Technology Desk", "Field Bureau", "Market Watch", "Science Desk",
	}
)

// words produces n space-joined pseudo-words.
func words(rng *rand.Rand, n int) string {
	parts := make([]string, n)
	for i := range parts {
		switch rng.Intn(3) {
		case 0:
			parts[i] = nouns[rng.Intn(len(nouns))]
		case 1:
			parts[i] = adjectives[rng.Intn(len(adjectives))]
		default:
			parts[i] = verbs[rng.Intn(len(verbs))]
		}
	}
	return strings.Join(parts, " ")
}

// titleCase upper-cases the first letter of each word.
func titleCase(s string) string {
	parts := strings.Fields(s)
	for i, p := range parts {
		parts[i] = strings.ToUpper(p[:1]) + p[1:]
	}
	return strings.Join(parts, " ")
}

// Item is one data object a generated page displays.
type Item struct {
	Title  string
	Desc   string
	Extra  string // author / seller / source, domain-dependent
	Price  string
	URL    string
	Img    string
	HasImg bool
}

// makeItem draws one item from the domain's vocabulary. Descriptions vary
// widely in length (descMin..descMax words) so size-based heuristics face
// realistic variance.
func makeItem(rng *rand.Rand, domain Domain, seq int) Item {
	it := Item{
		Title: titleCase(fmt.Sprintf("the %s %s", adjectives[rng.Intn(len(adjectives))],
			nouns[rng.Intn(len(nouns))])),
		Desc: words(rng, 8+rng.Intn(18)),
		URL:  fmt.Sprintf("/item/%d", seq),
	}
	switch domain {
	case DomainBooks:
		it.Extra = "by " + surnames[rng.Intn(len(surnames))] + ", " +
			surnames[rng.Intn(len(surnames))]
		it.Price = fmt.Sprintf("$%d.%02d", 5+rng.Intn(80), rng.Intn(100))
	case DomainAuctions:
		it.Extra = fmt.Sprintf("%d bids, closes in %dh", rng.Intn(40), 1+rng.Intn(72))
		it.Price = fmt.Sprintf("$%d.%02d", 1+rng.Intn(500), rng.Intn(100))
		it.HasImg = rng.Intn(3) > 0
	case DomainNews:
		it.Extra = sources[rng.Intn(len(sources))]
		it.HasImg = rng.Intn(2) == 0
	case DomainSearch:
		it.Extra = fmt.Sprintf("www.site%d.example/%s", rng.Intn(900),
			nouns[rng.Intn(len(nouns))])
	case DomainProducts:
		it.Extra = fmt.Sprintf("SKU %06d, in stock: %d", rng.Intn(999999), rng.Intn(50))
		it.Price = fmt.Sprintf("$%d.99", 9+rng.Intn(190))
		it.HasImg = true
	case DomainQuotes:
		it.Extra = fmt.Sprintf("vol %d", 1000+rng.Intn(9000000))
		it.Price = fmt.Sprintf("%d.%02d", 2+rng.Intn(300), rng.Intn(100))
	}
	if it.HasImg {
		it.Img = fmt.Sprintf("/img/thumb%d.gif", seq)
	}
	return it
}

// makeItems draws n items. With varySizes, descriptions alternate between
// very short and very long, giving size-based heuristics realistic variance
// to cope with.
func makeItems(rng *rand.Rand, domain Domain, n int, varySizes bool) []Item {
	items := make([]Item, n)
	for i := range items {
		items[i] = makeItem(rng, domain, i)
		if varySizes {
			if i%2 == 0 {
				items[i].Desc = words(rng, 3+rng.Intn(3))
			} else {
				items[i].Desc = words(rng, 35+rng.Intn(15))
			}
		}
	}
	return items
}
