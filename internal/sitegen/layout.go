package sitegen

import (
	"fmt"
	"math/rand"
	"strings"
)

// Layout is one of the presentation families the paper's IPS table (Table
// 4) enumerates: how a site arranges its result objects inside the
// object-rich container.
type Layout struct {
	// Name identifies the family in reports.
	Name string
	// Container is the tag of the element wrapping the object list — the
	// anchor of the minimal object-rich subtree.
	Container string
	// Separators are the correct object separator tags, best first.
	Separators []string
	// render writes the container's inner HTML for the given items.
	render func(rng *rand.Rand, items []Item, noise noiseProfile, b *strings.Builder)
}

// noiseProfile controls the era-typical sloppiness and in-region clutter a
// site's pages carry. Noise both exercises the tidy substrate and creates
// the adversarial conditions under which individual heuristics fail.
type noiseProfile struct {
	// uncloseTags leaves li/p/td/dt end tags out (tidy must repair).
	uncloseTags bool
	// upperTags emits tag names in upper case.
	upperTags bool
	// unquotedAttrs emits attribute values without quotes.
	unquotedAttrs bool
	// interItemBreaks inserts <br> runs between items (decoy high-count
	// tag at candidate level).
	interItemBreaks bool
	// heavyBreaks emits one or two <br> after every item, pushing the br
	// count above the separator count — the high-count irregular decoy
	// that defeats count-based heuristics (the paper's HC discussion).
	heavyBreaks bool
	// doubleBreaks deterministically separates items with <br><br> runs —
	// a high-count, regularly repeating decoy that poisons count- and
	// pattern-based heuristics (the failure mode of the paper's Table 18
	// comparison sites).
	doubleBreaks bool
	// headerStyle selects the inline header markup: "b" (default) or "p"
	// (a decoy high on the BYU identifiable-tag list).
	headerStyle string
	// plainTitles renders every other item's title as plain text instead
	// of a link, making the objects' opening pattern inconsistent (the
	// repeating-pattern heuristic's blind spot).
	plainTitles bool
	// inlineHeader opens the region with a heading + blurb inside the
	// container (candidate object construction must shed it).
	inlineHeader bool
	// inlineFooter closes the region with pagination links inside the
	// container.
	inlineFooter bool
	// adEvery inserts an ad block into the region every n items (0 = off).
	adEvery int
	// hrDecorEvery inserts a decorative <hr> section rule every n items
	// (0 = off) — harmless to every heuristic except a fixed separator
	// list that ranks hr first.
	hrDecorEvery int
	// centerDividerEvery inserts a <center> divider every n items (0 =
	// off). Combined with alternating item sizes, its gaps are nearly
	// constant — a regularity trap for the standard-deviation heuristic
	// that no tag-list or pattern heuristic falls for.
	centerDividerEvery int
}

// tag renders a tag name respecting the upper-case noise flag.
func (np noiseProfile) tag(name string) string {
	if np.upperTags {
		return strings.ToUpper(name)
	}
	return name
}

// closeTag renders "</name>" or nothing when unclosed-tag noise applies and
// the element is one browsers auto-close.
func (np noiseProfile) closeTag(name string) string {
	if np.uncloseTags {
		switch name {
		case "li", "p", "td", "dt", "dd", "tr", "option":
			return ""
		}
	}
	return "</" + np.tag(name) + ">"
}

// attr renders name="value" or unquoted per the profile.
func (np noiseProfile) attr(name, value string) string {
	if np.unquotedAttrs && !strings.ContainsAny(value, " \t\"'<>") {
		return fmt.Sprintf(` %s=%s`, name, value)
	}
	return fmt.Sprintf(` %s=%q`, name, value)
}

// header/footer/ad snippets shared by layouts.

func writeInlineHeader(np noiseProfile, b *strings.Builder, count int) {
	if !np.inlineHeader {
		return
	}
	if np.headerStyle == "p" {
		fmt.Fprintf(b, `<%s>Your search matched %d documents.%s`,
			np.tag("p"), count*7, np.closeTag("p"))
		fmt.Fprintf(b, `<%s>Sorted by relevance. Results below.%s`,
			np.tag("p"), np.closeTag("p"))
		return
	}
	fmt.Fprintf(b, `<%s>Your search matched %d documents.%s`,
		np.tag("b"), count*7, np.closeTag("b"))
}

func writeInlineFooter(np noiseProfile, b *strings.Builder) {
	if !np.inlineFooter {
		return
	}
	fmt.Fprintf(b, `<%s%s>Next page</%s> <%s%s>Previous</%s>`,
		np.tag("a"), np.attr("href", "/next"), np.tag("a"),
		np.tag("a"), np.attr("href", "/prev"), np.tag("a"))
}

func writeAd(np noiseProfile, b *strings.Builder, i int) {
	// Era-typical inline sponsor box: a small table inside the content
	// region — a decoy candidate that sits high on separator tag lists.
	fmt.Fprintf(b, `<table%s><tr><td><img%s alt="ad"> Sponsored link %d</td></tr></table>`,
		np.attr("border", "1"), np.attr("src", fmt.Sprintf("/ads/banner%d.gif", i)), i)
}

func maybeHrDecor(np noiseProfile, b *strings.Builder, i int) {
	if np.hrDecorEvery > 0 && i > 0 && i%np.hrDecorEvery == 0 {
		b.WriteString("<hr>")
	}
}

func maybeCenterDivider(np noiseProfile, b *strings.Builder, i int) {
	if np.centerDividerEvery > 0 && i > 0 && i%np.centerDividerEvery == 0 {
		fmt.Fprintf(b, `<center><img%s alt="divider"></center>`,
			np.attr("src", "/img/dot.gif"))
	}
}

func maybeBreaks(rng *rand.Rand, np noiseProfile, b *strings.Builder) {
	switch {
	case np.doubleBreaks:
		b.WriteString("<br><br>")
	case np.heavyBreaks:
		// Zero to three spacer breaks per item (1.5 on average): enough to
		// out-count the separator, irregular enough to carry no pattern.
		for k := rng.Intn(4); k > 0; k-- {
			b.WriteString("<br>")
		}
	case np.interItemBreaks:
		if rng.Intn(2) == 0 {
			b.WriteString("<br>")
		}
	}
}

// Layouts returns the presentation families, keyed by name.
func Layouts() map[string]Layout {
	families := []Layout{
		rowTableLayout(),
		itemTableLayout(),
		hrRecordLayout(),
		dlRecordLayout(),
		ulRecordLayout(),
		paraRecordLayout(),
		paraDivLayout(),
		divCardLayout(),
		fontCatalogLayout(),
	}
	m := make(map[string]Layout, len(families))
	for _, f := range families {
		m[f.Name] = f
	}
	return m
}

// rowTableLayout renders objects as rows of one table — the single most
// common style of the era (tr is the top separator in Table 5).
func rowTableLayout() Layout {
	return Layout{
		Name:       "row-table",
		Container:  "table",
		Separators: []string{"tr"},
		render: func(rng *rand.Rand, items []Item, np noiseProfile, b *strings.Builder) {
			for i, it := range items {
				fmt.Fprintf(b, `<%s>`, np.tag("tr"))
				fmt.Fprintf(b, `<%s><%s%s>%s</%s>%s`,
					np.tag("td"), np.tag("a"), np.attr("href", it.URL), it.Title,
					np.tag("a"), np.closeTag("td"))
				fmt.Fprintf(b, `<%s>%s<%s>%s%s%s`,
					np.tag("td"), it.Desc, np.tag("br"), it.Extra, priceCell(np, it),
					np.closeTag("td"))
				b.WriteString(np.closeTag("tr"))
				_ = i
			}
		},
	}
}

// itemTableLayout renders each object as its own table inside the
// container, canoe.com style.
func itemTableLayout() Layout {
	return Layout{
		Name:       "item-table",
		Container:  "form",
		Separators: []string{"table"},
		render: func(rng *rand.Rand, items []Item, np noiseProfile, b *strings.Builder) {
			writeInlineHeader(np, b, len(items))
			for i, it := range items {
				if np.adEvery > 0 && i > 0 && i%np.adEvery == 0 {
					writeAd(np, b, i)
				}
				maybeCenterDivider(np, b, i)
				maybeBreaks(rng, np, b)
				fmt.Fprintf(b, `<%s%s><%s>`, np.tag("table"), np.attr("width", "100%"), np.tag("tr"))
				if it.HasImg {
					fmt.Fprintf(b, `<%s><img%s>%s`, np.tag("td"), np.attr("src", it.Img), np.closeTag("td"))
				}
				fmt.Fprintf(b, `<%s><%s><%s%s>%s</%s>%s<%s>%s<%s>%s<%s>%s%s%s`,
					np.tag("td"), np.tag("b"), np.tag("a"), np.attr("href", it.URL),
					it.Title, np.tag("a"), "</"+np.tag("b")+">",
					np.tag("br"), it.Desc, np.tag("br"), it.Extra,
					np.tag("br"), priceCell(np, it),
					np.closeTag("td"), np.closeTag("tr"))
				fmt.Fprintf(b, `</%s>`, np.tag("table"))
			}
			writeInlineFooter(np, b)
		},
	}
}

// hrRecordLayout renders LOC-style records separated by horizontal rules.
func hrRecordLayout() Layout {
	return Layout{
		Name:       "hr-record",
		Container:  "div",
		Separators: []string{"hr", "pre"},
		render: func(rng *rand.Rand, items []Item, np noiseProfile, b *strings.Builder) {
			writeInlineHeader(np, b, len(items))
			b.WriteString("<hr>")
			for _, it := range items {
				fmt.Fprintf(b, `<%s>%s  %s
    %s %s</%s>`,
					np.tag("pre"), it.Title, it.Desc, it.Extra, it.Price, np.tag("pre"))
				fmt.Fprintf(b, `<%s%s>Full record</%s>`, np.tag("a"), np.attr("href", it.URL), np.tag("a"))
				b.WriteString("<hr>")
			}
			writeInlineFooter(np, b)
		},
	}
}

// dlRecordLayout renders objects as definition-list pairs.
func dlRecordLayout() Layout {
	return Layout{
		Name:       "dl-record",
		Container:  "dl",
		Separators: []string{"dt"},
		render: func(rng *rand.Rand, items []Item, np noiseProfile, b *strings.Builder) {
			for i, it := range items {
				maybeHrDecor(np, b, i)
				maybeCenterDivider(np, b, i)
				fmt.Fprintf(b, `<%s><%s%s>%s</%s>%s`,
					np.tag("dt"), np.tag("a"), np.attr("href", it.URL), it.Title,
					np.tag("a"), np.closeTag("dt"))
				fmt.Fprintf(b, `<%s>%s <%s>%s %s%s%s`,
					np.tag("dd"), it.Desc, np.tag("i"), it.Extra, "</"+np.tag("i")+">",
					it.Price, np.closeTag("dd"))
			}
		},
	}
}

// ulRecordLayout renders objects as list items.
func ulRecordLayout() Layout {
	return Layout{
		Name:       "ul-record",
		Container:  "ul",
		Separators: []string{"li"},
		render: func(rng *rand.Rand, items []Item, np noiseProfile, b *strings.Builder) {
			writeInlineHeader(np, b, len(items))
			for i, it := range items {
				maybeHrDecor(np, b, i)
				maybeBreaks(rng, np, b)
				fmt.Fprintf(b, `<%s><%s%s>%s</%s> %s <%s>%s%s %s`,
					np.tag("li"), np.tag("a"), np.attr("href", it.URL), it.Title,
					np.tag("a"), it.Desc, np.tag("b"), it.Extra, "</"+np.tag("b")+">",
					it.Price)
				fmt.Fprintf(b, ` <%s%s>details</%s>%s`,
					np.tag("a"), np.attr("href", it.URL+"/full"), np.tag("a"), np.closeTag("li"))
			}
			writeInlineFooter(np, b)
		},
	}
}

// paraRecordLayout renders each object as a paragraph, search-engine style.
func paraRecordLayout() Layout {
	return Layout{
		Name:       "para-record",
		Container:  "blockquote",
		Separators: []string{"p"},
		render: func(rng *rand.Rand, items []Item, np noiseProfile, b *strings.Builder) {
			writeInlineHeader(np, b, len(items))
			for i, it := range items {
				if np.adEvery > 0 && i > 0 && i%np.adEvery == 0 {
					writeAd(np, b, i)
				}
				maybeCenterDivider(np, b, i)
				maybeBreaks(rng, np, b)
				if np.plainTitles && i%2 == 1 {
					fmt.Fprintf(b, `<%s>%s<%s>%s<%s><%s>%s%s%s`,
						np.tag("p"), it.Title,
						np.tag("br"), it.Desc, np.tag("br"), np.tag("i"), it.Extra,
						"</"+np.tag("i")+">", np.closeTag("p"))
				} else {
					fmt.Fprintf(b, `<%s><%s%s><%s>%s%s</%s><%s>%s<%s><%s>%s%s%s`,
						np.tag("p"), np.tag("a"), np.attr("href", it.URL), np.tag("b"),
						it.Title, "</"+np.tag("b")+">", np.tag("a"),
						np.tag("br"), it.Desc, np.tag("br"), np.tag("i"), it.Extra,
						"</"+np.tag("i")+">", np.closeTag("p"))
				}
			}
			writeInlineFooter(np, b)
		},
	}
}

// paraDivLayout is the paragraph layout inside a plain div container — the
// style of search engines without blockquote indentation. The div container
// has no per-type IPS list, so in-region table ads outrank p on the global
// IPSList and push the correct separator to rank 2 (the Table 10 IPS
// signature).
func paraDivLayout() Layout {
	base := paraRecordLayout()
	return Layout{
		Name:       "para-div",
		Container:  "div",
		Separators: base.Separators,
		render:     base.render,
	}
}

// divCardLayout renders objects as division cards — rare in 2000 (div sits
// deep in the IPSList), so it stresses list-based heuristics.
func divCardLayout() Layout {
	return Layout{
		Name:       "div-card",
		Container:  "div",
		Separators: []string{"div"},
		render: func(rng *rand.Rand, items []Item, np noiseProfile, b *strings.Builder) {
			writeInlineHeader(np, b, len(items))
			for i, it := range items {
				maybeCenterDivider(np, b, i)
				maybeBreaks(rng, np, b)
				fmt.Fprintf(b, `<%s%s>`, np.tag("div"), np.attr("class", "card"))
				if it.HasImg {
					fmt.Fprintf(b, `<img%s>`, np.attr("src", it.Img))
				}
				if np.plainTitles && i%2 == 1 {
					fmt.Fprintf(b, `<%s>%s%s<%s>%s %s %s`,
						np.tag("b"), it.Title, "</"+np.tag("b")+">",
						np.tag("br"), it.Desc, it.Extra, it.Price)
				} else {
					fmt.Fprintf(b, `<%s%s>%s</%s><%s>%s %s %s`,
						np.tag("a"), np.attr("href", it.URL), it.Title, np.tag("a"),
						np.tag("br"), it.Desc, it.Extra, it.Price)
				}
				fmt.Fprintf(b, ` <%s%s>more</%s> <%s%s>similar</%s>`,
					np.tag("a"), np.attr("href", it.URL+"/full"), np.tag("a"),
					np.tag("a"), np.attr("href", it.URL+"/similar"), np.tag("a"))
				fmt.Fprintf(b, `</%s>`, np.tag("div"))
			}
			writeInlineFooter(np, b)
		},
	}
}

// fontCatalogLayout renders objects as font blocks inside a table cell —
// the td/font style of Table 4.
func fontCatalogLayout() Layout {
	return Layout{
		Name:       "font-catalog",
		Container:  "td",
		Separators: []string{"font"},
		render: func(rng *rand.Rand, items []Item, np noiseProfile, b *strings.Builder) {
			writeInlineHeader(np, b, len(items))
			for i, it := range items {
				if np.adEvery > 0 && i > 0 && i%np.adEvery == 0 {
					writeAd(np, b, i)
				}
				maybeHrDecor(np, b, i)
				maybeBreaks(rng, np, b)
				fmt.Fprintf(b, `<%s%s><%s><%s%s>%s</%s>%s<%s>%s %s %s`,
					np.tag("font"), np.attr("size", "2"), np.tag("b"),
					np.tag("a"), np.attr("href", it.URL), it.Title, np.tag("a"),
					"</"+np.tag("b")+">", np.tag("br"), it.Desc, it.Extra, it.Price)
				fmt.Fprintf(b, `</%s>`, np.tag("font"))
			}
			writeInlineFooter(np, b)
		},
	}
}

// priceCell renders the price fragment when the item has one.
func priceCell(np noiseProfile, it Item) string {
	if it.Price == "" {
		return ""
	}
	return fmt.Sprintf(` <%s>%s%s`, np.tag("b"), it.Price, "</"+np.tag("b")+">")
}
