package sitegen

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"strings"

	"omini/internal/tagtree"
)

// contentMarker is the attribute value marking the object-rich container in
// generated pages, used only to compute ground truth. Attributes are
// invisible to every extraction heuristic (they consume tag names, sizes
// and counts), so the marker cannot leak into the evaluation.
const contentMarker = "results"

// SiteSpec defines one synthetic web site: its domain vocabulary, layout
// family, chrome profile, noise profile and result-count range. All pages
// of a site share structure and differ in content — exactly the property
// the rule cache of Section 6.6 exploits.
type SiteSpec struct {
	// Name is the site host name, e.g. "www.bookpool.example".
	Name string
	// Domain selects the content vocabulary.
	Domain Domain
	// LayoutName selects the presentation family (see Layouts).
	LayoutName string
	// Chrome is the page furniture profile.
	Chrome ChromeSpec
	// Noise is the sloppiness/clutter profile.
	Noise NoiseSpec
	// MinItems and MaxItems bound the per-page object count.
	MinItems, MaxItems int
}

// ChromeSpec is the exported page-furniture profile.
type ChromeSpec struct {
	Banner       bool
	NavLinks     int
	SidebarLinks int
	FooterLinks  int
	SearchForm   bool
}

// NoiseSpec is the exported noise profile.
type NoiseSpec struct {
	UncloseTags        bool
	UpperTags          bool
	UnquotedAttrs      bool
	InterItemBreaks    bool
	HeavyBreaks        bool
	DoubleBreaks       bool
	HeaderStyleP       bool
	PlainTitles        bool
	VarySizes          bool
	InlineHeader       bool
	InlineFooter       bool
	AdEvery            int
	HrDecorEvery       int
	CenterDividerEvery int
}

func (n NoiseSpec) profile() noiseProfile {
	np := noiseProfile{
		uncloseTags:        n.UncloseTags,
		upperTags:          n.UpperTags,
		unquotedAttrs:      n.UnquotedAttrs,
		interItemBreaks:    n.InterItemBreaks,
		heavyBreaks:        n.HeavyBreaks,
		doubleBreaks:       n.DoubleBreaks,
		inlineHeader:       n.InlineHeader,
		inlineFooter:       n.InlineFooter,
		adEvery:            n.AdEvery,
		hrDecorEvery:       n.HrDecorEvery,
		centerDividerEvery: n.CenterDividerEvery,
	}
	if n.HeaderStyleP {
		np.headerStyle = "p"
	}
	np.plainTitles = n.PlainTitles
	return np
}

// Page generates the idx-th page of the site, deterministically: the same
// (site, idx) always yields the same page, standing in for the paper's
// locally cached corpus.
func (s SiteSpec) Page(idx int) Page {
	layout, ok := Layouts()[s.LayoutName]
	if !ok {
		panic(fmt.Sprintf("sitegen: site %q references unknown layout %q", s.Name, s.LayoutName))
	}
	rng := rand.New(rand.NewSource(int64(pageSeed(s.Name, idx))))
	span := s.MaxItems - s.MinItems + 1
	if span < 1 {
		span = 1
	}
	n := s.MinItems + rng.Intn(span)
	items := makeItems(rng, s.Domain, n, s.Noise.VarySizes)
	titles := make([]string, len(items))
	for i, it := range items {
		titles[i] = it.Title
	}
	np := s.Noise.profile()

	var region strings.Builder
	layout.render(rng, items, np, &region)

	var b strings.Builder
	fmt.Fprintf(&b, "<html><head><title>%s search results</title></head><body>\n", s.Name)
	if s.Chrome.Banner {
		writeBanner(&b, s.Name)
	}
	if s.Chrome.NavLinks > 0 {
		writeNavMenu(rng, &b, s.Chrome.NavLinks)
	}
	if s.Chrome.SearchForm {
		writeSearchForm(&b)
	}
	if s.Chrome.SidebarLinks > 0 {
		writeSidebarOpen(rng, &b, s.Chrome.SidebarLinks)
	}
	writeContainer(&b, layout.Container, region.String())
	if s.Chrome.SidebarLinks > 0 {
		writeSidebarClose(&b)
	}
	if s.Chrome.FooterLinks > 0 {
		writeFooter(&b, s.Chrome.FooterLinks)
	}
	b.WriteString("</body></html>\n")
	html := b.String()

	return Page{
		Site: s.Name,
		Name: fmt.Sprintf("%s-page-%03d", s.Name, idx),
		HTML: html,
		Truth: Truth{
			SubtreePath:  truthPath(html),
			Separators:   layout.Separators,
			ObjectCount:  n,
			ObjectTitles: titles,
		},
	}
}

// Pages generates pages 0..n-1 of the site.
func (s SiteSpec) Pages(n int) []Page {
	pages := make([]Page, n)
	for i := range pages {
		pages[i] = s.Page(i)
	}
	return pages
}

// writeContainer emits the marked object-rich container. A td container is
// given its mandatory table/tr scaffolding.
func writeContainer(b *strings.Builder, container, region string) {
	switch container {
	case "td":
		fmt.Fprintf(b, `<table width="85%%"><tr><td id=%q>%s</td></tr></table>`+"\n",
			contentMarker, region)
	case "form":
		fmt.Fprintf(b, `<form action="/results" id=%q>%s</form>`+"\n", contentMarker, region)
	default:
		fmt.Fprintf(b, `<%s id=%q>%s</%s>`+"\n", container, contentMarker, region, container)
	}
}

// truthPath parses the generated page and returns the path expression of
// the marked container — the ground-truth minimal object-rich subtree,
// playing the role of the paper's manual page examination.
func truthPath(html string) string {
	root, err := tagtree.Parse(html)
	if err != nil {
		return ""
	}
	var marked *tagtree.Node
	root.Walk(func(n *tagtree.Node) bool {
		if marked != nil {
			return false
		}
		for _, a := range n.Attrs {
			if a.Name == "id" && a.Value == contentMarker {
				marked = n
				return false
			}
		}
		return true
	})
	return tagtree.Path(marked)
}

// pageSeed derives a stable 64-bit seed from the site name and page index.
func pageSeed(site string, idx int) uint64 {
	h := fnv.New64a()
	h.Write([]byte(site))
	fmt.Fprintf(h, "/%d", idx)
	return h.Sum64()
}
