package sitegen

// Page is one generated web page together with its ground truth.
type Page struct {
	// Site is the site the page belongs to (e.g. "www.loc.gov").
	Site string
	// Name identifies the page within its site.
	Name string
	// HTML is the raw page source, before normalization. Generated pages
	// deliberately contain era-typical sloppiness (unclosed <p>/<li>/<td>,
	// unquoted attributes) so the tidy substrate is exercised.
	HTML string
	// Truth is the manually-derivable ground truth the evaluation scores
	// against, playing the role of the paper's manual page examination.
	Truth Truth
}

// Truth is the ground truth for one page: the path of the minimal
// object-rich subtree, the set of tags that correctly separate its objects,
// and the number of objects the page contains.
type Truth struct {
	// SubtreePath is the dot-notation path of the minimal subtree
	// containing all objects of interest.
	SubtreePath string
	// Separators are all correct object separator tags, best first. Any of
	// them counts as a correct answer, matching the paper's "all possible
	// separator tags" labelling.
	Separators []string
	// ObjectCount is the number of data objects on the page.
	ObjectCount int
	// ObjectTitles are the titles of the page's objects in order, enabling
	// object-level precision/recall: an extracted object is correct when
	// it contains exactly one of these titles.
	ObjectTitles []string
}

// CorrectSeparator reports whether tag is one of the page's correct object
// separator tags.
func (t Truth) CorrectSeparator(tag string) bool {
	for _, s := range t.Separators {
		if s == tag {
			return true
		}
	}
	return false
}
