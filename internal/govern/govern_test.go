package govern

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestNilGuardIsNoOp(t *testing.T) {
	var g *Guard
	for _, err := range []error{
		g.Input(1 << 30), g.Tokens(1 << 30), g.Nodes(1 << 30),
		g.Depth(1 << 30), g.Objects(1 << 30), g.Poll(), g.Check(),
	} {
		if err != nil {
			t.Fatalf("nil guard returned %v", err)
		}
	}
}

func TestBudgets(t *testing.T) {
	lim := Limits{MaxInputBytes: 10, MaxTokens: 5, MaxNodes: 4, MaxTreeDepth: 3, MaxObjects: 2}
	cases := []struct {
		kind   string
		charge func(g *Guard) error
	}{
		{KindInput, func(g *Guard) error { return g.Input(11) }},
		{KindTokens, func(g *Guard) error {
			var err error
			for i := 0; i < 6 && err == nil; i++ {
				err = g.Tokens(1)
			}
			return err
		}},
		{KindNodes, func(g *Guard) error { return g.Nodes(5) }},
		{KindDepth, func(g *Guard) error { return g.Depth(4) }},
		{KindObjects, func(g *Guard) error { return g.Objects(3) }},
	}
	for _, c := range cases {
		g := NewGuard(context.Background(), lim)
		err := c.charge(g)
		var lerr *ErrLimitExceeded
		if !errors.As(err, &lerr) {
			t.Fatalf("%s: got %v, want ErrLimitExceeded", c.kind, err)
		}
		if lerr.Kind != c.kind {
			t.Fatalf("kind = %q, want %q", lerr.Kind, c.kind)
		}
		if lerr.Actual <= lerr.Limit {
			t.Fatalf("%s: Actual %d not past Limit %d", c.kind, lerr.Actual, lerr.Limit)
		}
	}
}

func TestUnderBudgetPasses(t *testing.T) {
	g := NewGuard(context.Background(), Limits{MaxTokens: 100, MaxTreeDepth: 10})
	for i := 0; i < 100; i++ {
		if err := g.Tokens(1); err != nil {
			t.Fatalf("token %d: %v", i, err)
		}
	}
	if err := g.Depth(10); err != nil {
		t.Fatalf("depth at limit: %v", err)
	}
}

func TestDepthIsThresholdNotCumulative(t *testing.T) {
	g := NewGuard(context.Background(), Limits{MaxTreeDepth: 5})
	for i := 0; i < 1000; i++ {
		if err := g.Depth(3); err != nil {
			t.Fatalf("repeated shallow depth check failed: %v", err)
		}
	}
}

func TestDisabledLimits(t *testing.T) {
	g := NewGuard(context.Background(), Unlimited())
	if err := g.Input(1 << 30); err != nil {
		t.Fatalf("unlimited input: %v", err)
	}
	if err := g.Tokens(10 << 20); err != nil {
		t.Fatalf("unlimited tokens: %v", err)
	}
	if err := g.Depth(1 << 20); err != nil {
		t.Fatalf("unlimited depth: %v", err)
	}
}

func TestPollSeesCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	g := NewGuard(ctx, Limits{})
	cancel()
	var err error
	for i := 0; i < 2*pollEvery && err == nil; i++ {
		err = g.Poll()
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("poll after cancel: got %v, want context.Canceled", err)
	}
}

func TestCheckMapsDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	<-ctx.Done()
	err := NewGuard(ctx, Limits{}).Check()
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("got %v, want ErrDeadline", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("ErrDeadline should wrap context.DeadlineExceeded, got %v", err)
	}
}

func TestCheckPassesCancellationRaw(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := NewGuard(ctx, Limits{}).Check()
	if !errors.Is(err, context.Canceled) || errors.Is(err, ErrDeadline) {
		t.Fatalf("got %v, want bare context.Canceled", err)
	}
}

func TestWithDefaults(t *testing.T) {
	l := Limits{MaxTokens: -1, MaxTreeDepth: 100}.WithDefaults()
	d := Default()
	if l.MaxTokens != -1 {
		t.Fatalf("negative field overwritten: %d", l.MaxTokens)
	}
	if l.MaxTreeDepth != 100 {
		t.Fatalf("explicit field overwritten: %d", l.MaxTreeDepth)
	}
	if l.MaxInputBytes != d.MaxInputBytes || l.Deadline != d.Deadline {
		t.Fatalf("zero fields not defaulted: %+v", l)
	}
}
