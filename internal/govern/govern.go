// Package govern is the pipeline's resource governor: hard budgets on
// input size, token count, tree size/depth, and object count, plus a
// per-page deadline, enforced cooperatively inside every phase loop.
//
// The paper's motivating deployment (Omini §1, §6) feeds arbitrary —
// and occasionally adversarial — web pages through the extractor at
// scale. A single pathological page (100k-deep nesting, a multi-MB
// text node, an unclosed-tag avalanche) must not stall or OOM a
// worker. The governor makes every phase loop interruptible: each
// phase threads a *Guard through its hot loop and charges the work it
// does; when a budget is exceeded the phase returns a typed
// ErrLimitExceeded, and when the page's context expires it returns
// ErrDeadline (or the raw cancellation error). Both wrap cleanly, so
// callers dispatch with errors.As / errors.Is.
//
// The package is a leaf: it imports only the standard library and is
// imported by every pipeline package, so it carries no Omini types.
package govern

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// Limits bounds the resources a single extraction may consume. The
// zero value of each field means "use the default" at the core layer;
// a negative value disables that limit. Limits are cheap to copy.
type Limits struct {
	// MaxInputBytes caps the raw HTML size accepted by the pipeline.
	MaxInputBytes int
	// MaxTokens caps the number of tokens the lexer and the tidy
	// normalizer may produce. Tidy repairs (format-tag reopening,
	// implied end tags) emit tokens too, so a repair loop that blows
	// up quadratically trips this budget even on small inputs.
	MaxTokens int
	// MaxNodes caps the number of tag-tree nodes built.
	MaxNodes int
	// MaxTreeDepth caps the open-element nesting depth, enforced in
	// tidy and again in the tree builder. Keeping the bound well
	// under the recursion the later phases can absorb is what makes
	// a 100k-deep page fail typed instead of overflowing the stack.
	MaxTreeDepth int
	// MaxObjects caps the number of objects constructed in Phase 3.
	MaxObjects int
	// Deadline is the per-page wall-clock budget. The core layer
	// derives a context.WithTimeout from it; the guard surfaces the
	// expiry as ErrDeadline.
	Deadline time.Duration
}

// Default returns the production limits: generous enough that any
// plausible real page sails through (the governor must be free on
// well-formed input), tight enough that the pathological corpus fails
// fast. MaxTreeDepth 4096 admits the deepest trees seen in the wild
// by two orders of magnitude while staying far below the nesting that
// threatens the goroutine stack in the recursive analysis phases.
func Default() Limits {
	return Limits{
		MaxInputBytes: 16 << 20, // 16 MiB of HTML
		MaxTokens:     4 << 20,  // 4M tokens
		MaxNodes:      2 << 20,  // 2M tree nodes
		MaxTreeDepth:  4096,     // open-element nesting
		MaxObjects:    1 << 16,  // 65536 extracted objects
		Deadline:      10 * time.Second,
	}
}

// Unlimited returns Limits with every budget disabled. Benchmarks and
// the ungoverned half of the chaos experiment use it.
func Unlimited() Limits {
	return Limits{
		MaxInputBytes: -1,
		MaxTokens:     -1,
		MaxNodes:      -1,
		MaxTreeDepth:  -1,
		MaxObjects:    -1,
		Deadline:      -1,
	}
}

// WithDefaults returns l with every zero field replaced by the
// corresponding Default value. Negative fields stay negative
// (disabled).
func (l Limits) WithDefaults() Limits {
	d := Default()
	if l.MaxInputBytes == 0 {
		l.MaxInputBytes = d.MaxInputBytes
	}
	if l.MaxTokens == 0 {
		l.MaxTokens = d.MaxTokens
	}
	if l.MaxNodes == 0 {
		l.MaxNodes = d.MaxNodes
	}
	if l.MaxTreeDepth == 0 {
		l.MaxTreeDepth = d.MaxTreeDepth
	}
	if l.MaxObjects == 0 {
		l.MaxObjects = d.MaxObjects
	}
	if l.Deadline == 0 {
		l.Deadline = d.Deadline
	}
	return l
}

// Limit kinds, carried in ErrLimitExceeded.Kind and used as the
// {kind="..."} label on the obs counters.
const (
	KindInput   = "input"
	KindTokens  = "tokens"
	KindNodes   = "nodes"
	KindDepth   = "depth"
	KindObjects = "objects"
)

// ErrLimitExceeded reports a blown resource budget. It is returned by
// pointer and matched with errors.As:
//
//	var lim *govern.ErrLimitExceeded
//	if errors.As(err, &lim) { ... lim.Kind ... }
type ErrLimitExceeded struct {
	Kind   string // one of the Kind* constants
	Limit  int    // the configured budget
	Actual int    // the observed value that tripped it
}

func (e *ErrLimitExceeded) Error() string {
	return fmt.Sprintf("govern: %s limit exceeded (limit %d, got %d)", e.Kind, e.Limit, e.Actual)
}

// ErrDeadline marks a page that ran out of wall-clock budget. It
// wraps the underlying context.DeadlineExceeded, so both
// errors.Is(err, govern.ErrDeadline) and
// errors.Is(err, context.DeadlineExceeded) hold.
var ErrDeadline = errors.New("govern: page deadline exceeded")

// Guard enforces Limits for one extraction. It is single-goroutine
// state — each page gets its own — and all methods are safe on a nil
// receiver (no-ops returning nil), so ungoverned call paths pay one
// nil check and nothing else.
type Guard struct {
	ctx context.Context
	lim Limits

	tokens  int
	nodes   int
	objects int
	ops     int // since the last context poll
}

// pollEvery is how many charged operations pass between context
// polls. 1024 keeps the per-iteration cost to an increment and a
// compare while bounding cancellation latency to ~a microsecond of
// work on any realistic page.
const pollEvery = 1024

// NewGuard returns a Guard enforcing lim for work done under ctx.
// The caller owns deriving the deadline context from Limits.Deadline.
func NewGuard(ctx context.Context, lim Limits) *Guard {
	return &Guard{ctx: ctx, lim: lim}
}

// Input checks the raw input size n against MaxInputBytes.
func (g *Guard) Input(n int) error {
	if g == nil {
		return nil
	}
	if g.lim.MaxInputBytes > 0 && n > g.lim.MaxInputBytes {
		return &ErrLimitExceeded{Kind: KindInput, Limit: g.lim.MaxInputBytes, Actual: n}
	}
	return nil
}

// Tokens charges n produced tokens against MaxTokens and polls the
// context.
func (g *Guard) Tokens(n int) error {
	if g == nil {
		return nil
	}
	g.tokens += n
	if g.lim.MaxTokens > 0 && g.tokens > g.lim.MaxTokens {
		return &ErrLimitExceeded{Kind: KindTokens, Limit: g.lim.MaxTokens, Actual: g.tokens}
	}
	return g.step(n)
}

// Nodes charges n built tree nodes against MaxNodes and polls the
// context.
func (g *Guard) Nodes(n int) error {
	if g == nil {
		return nil
	}
	g.nodes += n
	if g.lim.MaxNodes > 0 && g.nodes > g.lim.MaxNodes {
		return &ErrLimitExceeded{Kind: KindNodes, Limit: g.lim.MaxNodes, Actual: g.nodes}
	}
	return g.step(n)
}

// Depth checks the current nesting depth d against MaxTreeDepth.
// Unlike the charge methods it is a pure threshold: depth rises and
// falls with the open-element stack.
func (g *Guard) Depth(d int) error {
	if g == nil {
		return nil
	}
	if g.lim.MaxTreeDepth > 0 && d > g.lim.MaxTreeDepth {
		return &ErrLimitExceeded{Kind: KindDepth, Limit: g.lim.MaxTreeDepth, Actual: d}
	}
	return nil
}

// Objects charges n constructed objects against MaxObjects.
func (g *Guard) Objects(n int) error {
	if g == nil {
		return nil
	}
	g.objects += n
	if g.lim.MaxObjects > 0 && g.objects > g.lim.MaxObjects {
		return &ErrLimitExceeded{Kind: KindObjects, Limit: g.lim.MaxObjects, Actual: g.objects}
	}
	return g.step(n)
}

// Charges reports the work charged so far: produced tokens, built
// tree nodes, constructed objects. Trace recording reads it to stamp
// governor consumption onto a request's trace.
func (g *Guard) Charges() (tokens, nodes, objects int) {
	if g == nil {
		return 0, 0, 0
	}
	return g.tokens, g.nodes, g.objects
}

// Poll charges one unit of un-budgeted work (a visited node, a
// scanned candidate) and checks the context every pollEvery charges.
// This is the hook the analysis phases — subtree ranking, separator
// stats, object construction — thread through their loops.
func (g *Guard) Poll() error {
	if g == nil {
		return nil
	}
	return g.step(1)
}

// step advances the op counter by n and polls the context when it
// crosses the poll interval.
func (g *Guard) step(n int) error {
	g.ops += n
	if g.ops < pollEvery {
		return nil
	}
	g.ops = 0
	return g.Check()
}

// Check polls the context immediately, mapping expiry to ErrDeadline
// so callers can tell "the page ran out of time" from "the batch was
// cancelled": cancellation surfaces as the raw context error.
func (g *Guard) Check() error {
	if g == nil || g.ctx == nil {
		return nil
	}
	if err := g.ctx.Err(); err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			return fmt.Errorf("%w: %w", ErrDeadline, err)
		}
		return err
	}
	return nil
}
