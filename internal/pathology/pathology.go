// Package pathology generates adversarial HTML pages for the resource
// governor's test corpus: inputs a hostile or broken web server could
// feed the extractor, each designed to blow up a different pipeline
// phase if that phase had no budget. The canonical instances live in
// testdata/pathological/ (written by WriteCorpus); tests also call the
// generators directly when they need a precise size.
//
// Every page here must either extract, fail with ErrNoObjects, or fail
// fast with a typed govern error — never hang, panic, or overflow the
// stack. That invariant is enforced by TestPathologicalCorpus at the
// repository root and the Pathological tests in internal/core.
package pathology

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// DeepNesting returns a page whose body is `depth` nested <div>s with a
// single text leaf at the bottom. At 100k levels it overflows the goroutine
// stack of any recursive tree walk unless the depth budget trips first.
func DeepNesting(depth int) string {
	var b strings.Builder
	b.Grow(depth*11 + 64)
	b.WriteString("<html><body>")
	for i := 0; i < depth; i++ {
		b.WriteString("<div>")
	}
	b.WriteString("bottom")
	for i := 0; i < depth; i++ {
		b.WriteString("</div>")
	}
	b.WriteString("</body></html>")
	return b.String()
}

// MegaAttributes returns a page of `tags` elements each dragging `attrs`
// attributes with `valLen`-byte values — a lexer stressor: almost all the
// input is attribute machinery, not content.
func MegaAttributes(tags, attrs, valLen int) string {
	val := strings.Repeat("v", valLen)
	var attr strings.Builder
	for i := 0; i < attrs; i++ {
		fmt.Fprintf(&attr, ` data-a%d="%s"`, i, val)
	}
	var b strings.Builder
	b.Grow(tags * (attr.Len() + 32))
	b.WriteString("<html><body>")
	for i := 0; i < tags; i++ {
		fmt.Fprintf(&b, "<p%s>item %d</p>", attr.String(), i)
	}
	b.WriteString("</body></html>")
	return b.String()
}

// EntityBomb returns a page whose text is `n` back-to-back character
// entities — the decode-heavy analogue of XML entity-expansion attacks
// (true recursive expansion does not exist in HTML, so volume stands in
// for recursion).
func EntityBomb(n int) string {
	unit := "&amp;&lt;&gt;&quot;&#65;&#x42;"
	var b strings.Builder
	b.Grow(n*len(unit)/6 + 64)
	b.WriteString("<html><body><p>")
	for i := 0; i < n/6; i++ {
		b.WriteString(unit)
	}
	b.WriteString("</p></body></html>")
	return b.String()
}

// UnclosedAvalanche returns a page of `n` open tags that are never closed.
// Tidy must repair every one; without budgets the repair stack grows with
// the input and close-all emits n synthetic end tags.
func UnclosedAvalanche(n int) string {
	tags := []string{"div", "span", "b", "i", "em"}
	var b strings.Builder
	b.Grow(n*8 + 64)
	b.WriteString("<html><body>")
	for i := 0; i < n; i++ {
		b.WriteString("<" + tags[i%len(tags)] + ">x")
	}
	return b.String()
}

// HugeTextNode returns a page holding one text node of roughly `size`
// bytes — a multi-megabyte "paragraph" that must flow through tokenize,
// tidy and the tree as a single node without amplification.
func HugeTextNode(size int) string {
	word := "lorem ipsum dolor sit amet "
	var b strings.Builder
	b.Grow(size + 64)
	b.WriteString("<html><body><p>")
	for b.Len() < size {
		b.WriteString(word)
	}
	b.WriteString("</p></body></html>")
	return b.String()
}

// Corpus lists the canonical pathological pages by file name.
func Corpus() map[string]string {
	return map[string]string{
		"deep_nesting.html":       DeepNesting(100_000),
		"mega_attributes.html":    MegaAttributes(400, 64, 32),
		"entity_bomb.html":        EntityBomb(300_000),
		"unclosed_avalanche.html": UnclosedAvalanche(200_000),
		"huge_text_node.html":     HugeTextNode(3 << 20),
	}
}

// WriteCorpus materializes the canonical corpus into dir, creating it if
// needed. It is what `go generate` runs to refresh testdata/pathological/.
func WriteCorpus(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for name, html := range Corpus() {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(html), 0o644); err != nil {
			return err
		}
	}
	return nil
}
