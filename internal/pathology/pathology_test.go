package pathology

import (
	"strings"
	"testing"
)

func TestGeneratorShapes(t *testing.T) {
	if got := DeepNesting(3); got != "<html><body><div><div><div>bottom</div></div></div></body></html>" {
		t.Errorf("DeepNesting(3) = %q", got)
	}
	if got := UnclosedAvalanche(2); !strings.HasSuffix(got, "<div>x<span>x") {
		t.Errorf("UnclosedAvalanche(2) = %q", got)
	}
	if got := HugeTextNode(1 << 10); len(got) < 1<<10 {
		t.Errorf("HugeTextNode(1K) only %d bytes", len(got))
	}
	if got := MegaAttributes(2, 3, 4); strings.Count(got, "data-a") != 6 {
		t.Errorf("MegaAttributes(2,3,4) attr count wrong: %q", got)
	}
	if got := EntityBomb(600); strings.Count(got, "&amp;") != 100 {
		t.Errorf("EntityBomb(600) = %d units", strings.Count(got, "&amp;"))
	}
}

func TestCorpusCovers(t *testing.T) {
	c := Corpus()
	for _, name := range []string{
		"deep_nesting.html", "mega_attributes.html", "entity_bomb.html",
		"unclosed_avalanche.html", "huge_text_node.html",
	} {
		if c[name] == "" {
			t.Errorf("corpus missing %s", name)
		}
	}
}

func TestWriteCorpus(t *testing.T) {
	dir := t.TempDir()
	if err := WriteCorpus(dir); err != nil {
		t.Fatal(err)
	}
}
