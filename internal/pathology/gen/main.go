// Command gen refreshes the committed pathological corpus:
//
//	go run ./internal/pathology/gen testdata/pathological
//
// Regenerate after changing the generators in internal/pathology so the
// on-disk corpus and the code that documents it stay in sync.
package main

import (
	"fmt"
	"os"

	"omini/internal/pathology"
)

func main() {
	dir := "testdata/pathological"
	if len(os.Args) > 1 {
		dir = os.Args[1]
	}
	if err := pathology.WriteCorpus(dir); err != nil {
		fmt.Fprintln(os.Stderr, "gen:", err)
		os.Exit(1)
	}
}
