package obs

import (
	"math"
	"sort"
	"sync/atomic"
)

// DefaultBounds are the upper bucket bounds (in seconds) of a latency
// histogram: a 1-2-5 series from 1µs to 10s. Pipeline phases on real pages
// land between tens of microseconds and tens of milliseconds; whole
// requests under load can reach seconds. An implicit +Inf bucket catches
// the rest, so the histogram is bounded regardless of input.
var DefaultBounds = []float64{
	1e-6, 2e-6, 5e-6,
	1e-5, 2e-5, 5e-5,
	1e-4, 2e-4, 5e-4,
	1e-3, 2e-3, 5e-3,
	1e-2, 2e-2, 5e-2,
	1e-1, 2.5e-1, 5e-1,
	1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket histogram safe for concurrent observation.
// Memory is bounded by the bucket count; observations are two atomic adds
// and a CAS loop for the float sum. Quantiles are estimated by linear
// interpolation inside the winning bucket — exact enough for p50/p95/p99
// dashboards, and the buckets themselves are exposed for anything finer.
type Histogram struct {
	bounds    []float64      // ascending upper bounds; +Inf bucket is implicit
	counts    []atomic.Int64 // len(bounds)+1
	count     atomic.Int64
	sum       atomic.Uint64 // float64 bits, CAS-updated
	exemplars []atomic.Pointer[Exemplar]
}

// Exemplar links one observed value to the trace that produced it, in
// the OpenMetrics sense: the most recent traced observation per bucket.
type Exemplar struct {
	TraceID string
	Value   float64
}

// NewHistogram returns a histogram with the given ascending upper bounds;
// nil selects DefaultBounds.
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefaultBounds
	}
	return &Histogram{
		bounds:    bounds,
		counts:    make([]atomic.Int64, len(bounds)+1),
		exemplars: make([]atomic.Pointer[Exemplar], len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveExemplar records one value and, when traceID is non-empty,
// stamps it as the winning bucket's exemplar (last writer wins — the
// freshest trace is the useful one).
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	if traceID != "" {
		i := sort.SearchFloat64s(h.bounds, v)
		h.exemplars[i].Store(&Exemplar{TraceID: traceID, Value: v})
	}
	h.Observe(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// HistogramSnapshot is a point-in-time copy of a histogram's state.
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds; Counts[i] observations fell at or
	// below Bounds[i]. Counts has one extra entry for the +Inf bucket.
	Bounds []float64
	Counts []int64
	Count  int64
	Sum    float64
	// Exemplars[i] is the latest traced observation that landed in
	// bucket i (nil when the bucket has never seen one).
	Exemplars []*Exemplar
}

// Snapshot copies the histogram's buckets. The per-bucket loads are not
// mutually atomic; under concurrent writes the snapshot is approximate in
// the usual Prometheus sense.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds:    h.bounds,
		Counts:    make([]int64, len(h.counts)),
		Count:     h.count.Load(),
		Sum:       h.Sum(),
		Exemplars: make([]*Exemplar, len(h.counts)),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
		s.Exemplars[i] = h.exemplars[i].Load()
	}
	return s
}

// Quantile estimates the q-th quantile (0 < q <= 1) from the snapshot by
// linear interpolation within the winning bucket. Returns 0 with no
// observations; values in the +Inf bucket report the last finite bound.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	var cum int64
	for i, c := range s.Counts {
		cum += c
		if float64(cum) >= rank {
			if i >= len(s.Bounds) {
				return s.Bounds[len(s.Bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = s.Bounds[i-1]
			}
			hi := s.Bounds[i]
			if c == 0 {
				return hi
			}
			// Position of the target rank inside this bucket.
			inBucket := rank - float64(cum-c)
			return lo + (hi-lo)*math.Min(1, inBucket/float64(c))
		}
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Quantile estimates the q-th quantile of the live histogram.
func (h *Histogram) Quantile(q float64) float64 {
	return h.Snapshot().Quantile(q)
}
