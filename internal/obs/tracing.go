package obs

// Distributed tracing identity and storage: 128-bit trace IDs, 64-bit
// span IDs, a W3C-traceparent-style header codec for propagating them
// across cluster hops, a cheap probabilistic head sampler, and a
// bounded tail-sampling sink that always keeps errored and slowest-N
// traces. The types are transport-agnostic; internal/serve and
// internal/cluster wire them to HTTP.

import (
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math/rand/v2"
	"sort"
	"strings"
	"sync"
	"time"
)

// TraceHeader is the HTTP header carrying trace identity across
// cluster hops, in the W3C traceparent shape:
//
//	X-Omini-Trace: 00-<32 hex trace id>-<16 hex span id>-<2 hex flags>
//
// Flag bit 0 is "sampled": the sender is recording this trace, and the
// receiver should record its part too so the span tree is complete.
const TraceHeader = "X-Omini-Trace"

// TraceID is a 128-bit trace identity shared by every span of one
// request, across every node it touches.
type TraceID [16]byte

// SpanID is a 64-bit span identity, unique within its trace.
type SpanID [8]byte

// NewTraceID returns a random non-zero trace ID.
func NewTraceID() TraceID {
	var id TraceID
	binary.BigEndian.PutUint64(id[:8], rand.Uint64())
	binary.BigEndian.PutUint64(id[8:], rand.Uint64())
	if id == (TraceID{}) {
		id[15] = 1
	}
	return id
}

// IsZero reports whether the ID is the invalid all-zero value.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String renders the ID as 32 lower-case hex digits.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// IsZero reports whether the ID is the invalid all-zero value.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String renders the ID as 16 lower-case hex digits.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// SpanContext is the propagated identity of one span: the trace it
// belongs to, its own ID (the parent of whatever the receiver starts),
// and whether the trace is being recorded.
type SpanContext struct {
	TraceID TraceID
	SpanID  SpanID
	Sampled bool
}

// Valid reports whether the context carries a usable trace ID.
func (sc SpanContext) Valid() bool { return !sc.TraceID.IsZero() }

// Header encodes the context in the TraceHeader wire format.
func (sc SpanContext) Header() string {
	flags := "00"
	if sc.Sampled {
		flags = "01"
	}
	return "00-" + sc.TraceID.String() + "-" + sc.SpanID.String() + "-" + flags
}

// ParseTraceHeader decodes a TraceHeader value. An empty string is not
// an error shape worth distinguishing: it returns a zero (invalid)
// context and a nil error, so callers can treat "absent" and "present"
// uniformly through Valid().
func ParseTraceHeader(s string) (SpanContext, error) {
	if s == "" {
		return SpanContext{}, nil
	}
	parts := strings.Split(s, "-")
	if len(parts) != 4 || len(parts[0]) != 2 || len(parts[1]) != 32 || len(parts[2]) != 16 || len(parts[3]) != 2 {
		return SpanContext{}, fmt.Errorf("obs: malformed trace header %q", s)
	}
	var sc SpanContext
	if _, err := hex.Decode(sc.TraceID[:], []byte(parts[1])); err != nil {
		return SpanContext{}, fmt.Errorf("obs: bad trace id in header %q: %w", s, err)
	}
	if _, err := hex.Decode(sc.SpanID[:], []byte(parts[2])); err != nil {
		return SpanContext{}, fmt.Errorf("obs: bad span id in header %q: %w", s, err)
	}
	var flags [1]byte
	if _, err := hex.Decode(flags[:], []byte(parts[3])); err != nil {
		return SpanContext{}, fmt.Errorf("obs: bad flags in header %q: %w", s, err)
	}
	if sc.TraceID.IsZero() {
		return SpanContext{}, fmt.Errorf("obs: zero trace id in header %q", s)
	}
	sc.Sampled = flags[0]&1 != 0
	return sc, nil
}

// Sampler makes the head-sampling decision for requests that arrive
// without an upstream decision. A nil Sampler samples everything.
type Sampler struct {
	rate float64
}

// NewSampler returns a sampler recording the given fraction of
// requests: rate >= 1 records all, rate <= 0 records none.
func NewSampler(rate float64) *Sampler {
	return &Sampler{rate: rate}
}

// Sample reports whether the next request should be traced.
func (s *Sampler) Sample() bool {
	if s == nil || s.rate >= 1 {
		return true
	}
	if s.rate <= 0 {
		return false
	}
	return rand.Float64() < s.rate
}

// TraceSummary is one trace's /tracez list row.
type TraceSummary struct {
	TraceID string `json:"traceId"`
	// Node is the cluster node that recorded this trace ("" single-node).
	Node string `json:"node,omitempty"`
	// Op is the operation ("/extract", "/records", "route").
	Op string `json:"op,omitempty"`
	// Site is the requested site, when known.
	Site string `json:"site,omitempty"`
	// Path is the farm serving path taken ("fast" or "slow"), when the
	// request reached the farm.
	Path string `json:"path,omitempty"`
	// Status is the HTTP status the request finished with.
	Status int `json:"status,omitempty"`
	// Error is the error message of a failed request.
	Error      string    `json:"error,omitempty"`
	StartedAt  time.Time `json:"startedAt"`
	DurationNS int64     `json:"durationNs"`
	SpanCount  int       `json:"spanCount"`
}

// TraceData is one stored trace: the summary plus the full span tree,
// free-form attributes, and the governor charges of its extraction.
type TraceData struct {
	TraceSummary
	Attrs   map[string]string `json:"attrs,omitempty"`
	Charges map[string]int64  `json:"governorCharges,omitempty"`
	Spans   []PhaseSample     `json:"spans,omitempty"`
}

// errored reports whether the trace should be pinned as a failure.
func (t *TraceData) errored() bool {
	return t.Status >= 400 || t.Error != ""
}

// DefaultTraceCapacity bounds the trace sink when no capacity is
// configured.
const DefaultTraceCapacity = 256

// TraceSink is the bounded tail-sampling trace buffer behind
// GET /tracez. Every finished sampled trace is Recorded; when the
// buffer is full the sink evicts the oldest trace that is neither
// errored nor among the slowest keep-slow set, so the traces worth
// debugging — failures and tail latency — survive buffer churn.
// Recording a trace ID that is already stored merges the span sets,
// which is how the coordinator half and the serve half of a
// self-served request end up as one trace.
type TraceSink struct {
	mu       sync.Mutex
	capacity int
	keepSlow int
	entries  map[string]*TraceData
	order    []string // insertion order, oldest first
}

// NewTraceSink returns a sink holding up to capacity traces
// (DefaultTraceCapacity when capacity <= 0). A quarter of the buffer
// (at least 4 slots) is reserved for the slowest traces.
func NewTraceSink(capacity int) *TraceSink {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	keepSlow := capacity / 4
	if keepSlow < 4 {
		keepSlow = 4
	}
	if keepSlow > capacity {
		keepSlow = capacity
	}
	return &TraceSink{
		capacity: capacity,
		keepSlow: keepSlow,
		entries:  make(map[string]*TraceData, capacity),
	}
}

// Capacity returns the configured bound.
func (s *TraceSink) Capacity() int {
	if s == nil {
		return 0
	}
	return s.capacity
}

// Len returns the number of stored traces.
func (s *TraceSink) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Record stores (or merges) one finished trace and returns how many
// traces were evicted to make room. The sink takes ownership of t.
func (s *TraceSink) Record(t *TraceData) (evicted int) {
	if s == nil || t == nil || t.TraceID == "" {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if existing := s.entries[t.TraceID]; existing != nil {
		mergeTrace(existing, t)
		return 0
	}
	s.entries[t.TraceID] = t
	s.order = append(s.order, t.TraceID)
	for len(s.entries) > s.capacity {
		if !s.evictOneLocked() {
			break
		}
		evicted++
	}
	return evicted
}

// mergeTrace folds src into dst: span sets concatenate, empty scalar
// fields fill in, the window extends to cover both halves. Durations
// are node-local measurements; the merged duration is the larger one
// (the outer half covers the inner).
func mergeTrace(dst, src *TraceData) {
	dst.Spans = append(dst.Spans, src.Spans...)
	dst.SpanCount = len(dst.Spans)
	if dst.Node == "" {
		dst.Node = src.Node
	}
	if dst.Op == "" || src.Op == "route" {
		// The route half is the outermost view of the request.
		dst.Op = src.Op
	}
	if dst.Site == "" {
		dst.Site = src.Site
	}
	if dst.Path == "" {
		dst.Path = src.Path
	}
	if dst.Error == "" {
		dst.Error = src.Error
	}
	if dst.Status == 0 {
		dst.Status = src.Status
	}
	if dst.StartedAt.IsZero() || (!src.StartedAt.IsZero() && src.StartedAt.Before(dst.StartedAt)) {
		dst.StartedAt = src.StartedAt
	}
	if src.DurationNS > dst.DurationNS {
		dst.DurationNS = src.DurationNS
	}
	if len(src.Attrs) > 0 {
		if dst.Attrs == nil {
			dst.Attrs = make(map[string]string, len(src.Attrs))
		}
		for k, v := range src.Attrs {
			if _, ok := dst.Attrs[k]; !ok {
				dst.Attrs[k] = v
			}
		}
	}
	if len(src.Charges) > 0 {
		if dst.Charges == nil {
			dst.Charges = make(map[string]int64, len(src.Charges))
		}
		for k, v := range src.Charges {
			if _, ok := dst.Charges[k]; !ok {
				dst.Charges[k] = v
			}
		}
	}
}

// evictOneLocked removes one trace under the tail-sampling policy:
// the oldest trace that is neither errored nor in the slowest-N set.
// When everything is pinned, the oldest errored non-slow trace goes,
// and as the final fallback the oldest trace of all — the bound always
// holds. Reports whether anything was removed.
func (s *TraceSink) evictOneLocked() bool {
	if len(s.order) == 0 {
		return false
	}
	slow := s.slowestLocked()
	victim := -1
	for i, id := range s.order {
		t := s.entries[id]
		if t == nil {
			victim = i // stale order entry; reclaim it
			break
		}
		if !t.errored() && !slow[id] {
			victim = i
			break
		}
	}
	if victim < 0 {
		for i, id := range s.order {
			if t := s.entries[id]; t != nil && !slow[id] {
				victim = i
				break
			}
		}
	}
	if victim < 0 {
		victim = 0
	}
	id := s.order[victim]
	s.order = append(s.order[:victim], s.order[victim+1:]...)
	delete(s.entries, id)
	return true
}

// slowestLocked returns the IDs of the keepSlow slowest stored traces.
func (s *TraceSink) slowestLocked() map[string]bool {
	type slowEntry struct {
		id  string
		dur int64
	}
	all := make([]slowEntry, 0, len(s.entries))
	for id, t := range s.entries {
		all = append(all, slowEntry{id: id, dur: t.DurationNS})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].dur > all[j].dur })
	n := s.keepSlow
	if n > len(all) {
		n = len(all)
	}
	out := make(map[string]bool, n)
	for _, e := range all[:n] {
		out[e.id] = true
	}
	return out
}

// List returns summaries of every stored trace, newest first.
func (s *TraceSink) List() []TraceSummary {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]TraceSummary, 0, len(s.order))
	for i := len(s.order) - 1; i >= 0; i-- {
		if t := s.entries[s.order[i]]; t != nil {
			out = append(out, t.TraceSummary)
		}
	}
	return out
}

// Get returns a copy of one stored trace by ID.
func (s *TraceSink) Get(id string) (TraceData, bool) {
	if s == nil {
		return TraceData{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.entries[id]
	if t == nil {
		return TraceData{}, false
	}
	out := *t
	out.Spans = append([]PhaseSample(nil), t.Spans...)
	if t.Attrs != nil {
		out.Attrs = make(map[string]string, len(t.Attrs))
		for k, v := range t.Attrs {
			out.Attrs[k] = v
		}
	}
	if t.Charges != nil {
		out.Charges = make(map[string]int64, len(t.Charges))
		for k, v := range t.Charges {
			out.Charges[k] = v
		}
	}
	return out, true
}
