// Package obs is the observability layer of the pipeline: a metrics
// registry (atomic counters, gauges, bounded latency histograms with
// quantile estimation, Prometheus-style text exposition), lightweight span
// tracing propagated through context.Context, a structured per-extraction
// decision trace, and a leveled JSON logger.
//
// The package is stdlib-only and knows nothing about HTML or extraction;
// the pipeline (internal/core, internal/fetch, internal/serve,
// internal/resilience) publishes into it and the operational surfaces
// (/metricsz, /statsz, ?trace=1, omini -trace) read out of it. The paper's
// evaluation (Sections 6-7) is built on exactly this visibility — which
// heuristic drove each extraction and where the time went — and this
// package makes the same questions answerable on a production instance
// under live traffic instead of only in offline benchmarks.
package obs

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry is a process- or component-scoped collection of named metrics:
// monotonic counters, gauges (stored or computed), and bounded histograms.
// All methods are safe for concurrent use; the read paths (Get, Snapshot,
// WritePrometheus) never block writers for long.
//
// Names use dotted lower-case ("serve.panics", "core.batch_pages") and are
// sanitized to Prometheus conventions only at exposition time, so the
// JSON-facing surfaces keep the friendly names.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*atomic.Int64
	gauges   map[string]*atomic.Int64
	gaugefns map[string]func() float64
	hists    map[string]*Histogram
}

// Default is the process-wide registry; components fall back to it when no
// Registry is configured, so one /metricsz scrape sees everything.
var Default = NewRegistry()

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*atomic.Int64),
		gauges:   make(map[string]*atomic.Int64),
		gaugefns: make(map[string]func() float64),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it at zero on first use.
func (r *Registry) Counter(name string) *atomic.Int64 {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = new(atomic.Int64)
		r.counters[name] = c
	}
	return c
}

// Add increments the named counter by n.
func (r *Registry) Add(name string, n int64) {
	r.Counter(name).Add(n)
}

// Get returns the named counter's value (0 if never touched).
func (r *Registry) Get(name string) int64 {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c == nil {
		return 0
	}
	return c.Load()
}

// Gauge returns the named stored gauge, creating it at zero on first use.
func (r *Registry) Gauge(name string) *atomic.Int64 {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = new(atomic.Int64)
		r.gauges[name] = g
	}
	return g
}

// SetGauge stores v in the named gauge.
func (r *Registry) SetGauge(name string, v int64) {
	r.Gauge(name).Store(v)
}

// RegisterGaugeFunc registers a gauge computed at exposition time (cache
// sizes, in-flight requests). Re-registering a name replaces the function.
func (r *Registry) RegisterGaugeFunc(name string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gaugefns[name] = fn
}

// Histogram returns the named histogram with the default latency bounds,
// creating it on first use. The name may carry Prometheus-style labels
// (`phase_seconds{phase="tidy"}`); series sharing the text before '{' are
// grouped into one family at exposition.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = NewHistogram(nil)
		r.hists[name] = h
	}
	return h
}

// Observe records v into the named histogram.
func (r *Registry) Observe(name string, v float64) {
	r.Histogram(name).Observe(v)
}

// ObserveExemplar records v into the named histogram and attaches the
// trace ID as the bucket's exemplar, so a latency outlier on /metricsz
// links to the /tracez trace that caused it. An empty trace ID records
// the value without an exemplar, so untraced requests share the call
// site.
func (r *Registry) ObserveExemplar(name string, v float64, traceID string) {
	r.Histogram(name).ObserveExemplar(v, traceID)
}

// Snapshot returns a point-in-time copy of every counter. (Gauges and
// histograms have their own read paths; this keeps the legacy /statsz
// payload shape.)
func (r *Registry) Snapshot() map[string]int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]int64, len(r.counters))
	for name, c := range r.counters {
		out[name] = c.Load()
	}
	return out
}

// Names returns the registered counter names in sorted order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.counters))
	for name := range r.counters {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// registryKey carries a Registry through a context.
type registryKey struct{}

// WithRegistry returns a context carrying reg; spans and instrumented
// components publish into it instead of Default.
func WithRegistry(ctx context.Context, reg *Registry) context.Context {
	return context.WithValue(ctx, registryKey{}, reg)
}

// RegistryFrom returns the context's registry, or Default when none is
// attached. It never returns nil.
func RegistryFrom(ctx context.Context) *Registry {
	if ctx != nil {
		if reg, ok := ctx.Value(registryKey{}).(*Registry); ok && reg != nil {
			return reg
		}
	}
	return Default
}
