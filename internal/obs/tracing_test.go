package obs

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestTraceHeaderRoundTrip(t *testing.T) {
	sc := SpanContext{TraceID: NewTraceID(), Sampled: true}
	sc.SpanID[7] = 0x2a
	got, err := ParseTraceHeader(sc.Header())
	if err != nil {
		t.Fatalf("ParseTraceHeader(%q): %v", sc.Header(), err)
	}
	if got != sc {
		t.Errorf("round trip = %+v, want %+v", got, sc)
	}
	if !got.Valid() {
		t.Error("round-tripped context should be valid")
	}

	// The unsampled flag survives too.
	sc.Sampled = false
	got, err = ParseTraceHeader(sc.Header())
	if err != nil {
		t.Fatalf("ParseTraceHeader: %v", err)
	}
	if got.Sampled {
		t.Error("sampled = true, want false")
	}
}

func TestParseTraceHeaderAbsentAndMalformed(t *testing.T) {
	sc, err := ParseTraceHeader("")
	if err != nil {
		t.Fatalf("empty header: %v", err)
	}
	if sc.Valid() {
		t.Error("empty header should yield an invalid context")
	}

	bad := []string{
		"00",
		"00-abc-def-01",
		"00-" + strings.Repeat("0", 32) + "-00000000000000aa-01", // zero trace id
		"00-" + strings.Repeat("g", 32) + "-00000000000000aa-01", // non-hex
		"00-" + strings.Repeat("a", 32) + "-00000000000000aa-zz",
		"0-" + strings.Repeat("a", 32) + "-00000000000000aa-01",
	}
	for _, h := range bad {
		if _, err := ParseTraceHeader(h); err == nil {
			t.Errorf("ParseTraceHeader(%q) = nil error, want reject", h)
		}
	}
}

func TestSamplerRates(t *testing.T) {
	var nilSampler *Sampler
	if !nilSampler.Sample() {
		t.Error("nil sampler should sample everything")
	}
	if !NewSampler(1).Sample() || !NewSampler(2).Sample() {
		t.Error("rate >= 1 should sample everything")
	}
	if NewSampler(0).Sample() || NewSampler(-1).Sample() {
		t.Error("rate <= 0 should sample nothing")
	}
	hits := 0
	s := NewSampler(0.5)
	for i := 0; i < 1000; i++ {
		if s.Sample() {
			hits++
		}
	}
	if hits == 0 || hits == 1000 {
		t.Errorf("rate 0.5 sampled %d/1000, want a strict fraction", hits)
	}
}

// TestTraceSinkMerge checks the cluster self-serve shape: the route half
// and the handler half of one trace ID merge into a single trace with
// the route half's view outermost.
func TestTraceSinkMerge(t *testing.T) {
	sink := NewTraceSink(8)
	id := NewTraceID().String()
	sink.Record(&TraceData{
		TraceSummary: TraceSummary{TraceID: id, Op: "/extract", Site: "example.com", Status: 200, DurationNS: 100},
		Attrs:        map[string]string{"path": "fast"},
		Charges:      map[string]int64{"tokens": 7},
		Spans:        []PhaseSample{{Name: "handler"}},
	})
	sink.Record(&TraceData{
		TraceSummary: TraceSummary{TraceID: id, Op: "route", Node: "a", DurationNS: 250},
		Spans:        []PhaseSample{{Name: "route"}, {Name: "hop"}},
	})

	if sink.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (merged)", sink.Len())
	}
	got, ok := sink.Get(id)
	if !ok {
		t.Fatalf("Get(%q) missed", id)
	}
	if got.Op != "route" {
		t.Errorf("Op = %q, want the route half to win as outermost", got.Op)
	}
	if got.Node != "a" || got.Site != "example.com" || got.Status != 200 {
		t.Errorf("merged scalars = %+v", got.TraceSummary)
	}
	if got.DurationNS != 250 {
		t.Errorf("DurationNS = %d, want the larger half (250)", got.DurationNS)
	}
	if len(got.Spans) != 3 || got.SpanCount != 3 {
		t.Errorf("spans = %d (count %d), want 3 merged", len(got.Spans), got.SpanCount)
	}
	if got.Attrs["path"] != "fast" || got.Charges["tokens"] != 7 {
		t.Errorf("attrs/charges lost in merge: %+v / %+v", got.Attrs, got.Charges)
	}
}

// TestTraceSinkTailSampling churns a small sink far past capacity and
// checks the tail-sampling pins: errored traces and the slowest-N
// survive while ordinary traces are evicted.
func TestTraceSinkTailSampling(t *testing.T) {
	const capacity = 16
	sink := NewTraceSink(capacity)

	erroredID := fmt.Sprintf("%032x", 1)
	sink.Record(&TraceData{TraceSummary: TraceSummary{TraceID: erroredID, Status: 504, DurationNS: 10}})
	slowIDs := make([]string, 0, 4)
	for i := 0; i < 4; i++ {
		id := fmt.Sprintf("%032x", 100+i)
		slowIDs = append(slowIDs, id)
		sink.Record(&TraceData{TraceSummary: TraceSummary{TraceID: id, Status: 200, DurationNS: int64(time.Second) * int64(10+i)}})
	}

	evicted := 0
	for i := 0; i < 500; i++ {
		evicted += sink.Record(&TraceData{TraceSummary: TraceSummary{
			TraceID:    fmt.Sprintf("%032x", 1000+i),
			Status:     200,
			DurationNS: int64(i), // all faster than the slow set
		}})
	}

	if sink.Len() != capacity {
		t.Errorf("Len = %d, want the bound %d to hold", sink.Len(), capacity)
	}
	if evicted == 0 {
		t.Error("churn past capacity should report evictions")
	}
	if _, ok := sink.Get(erroredID); !ok {
		t.Error("errored trace was evicted; tail sampling must pin failures")
	}
	for _, id := range slowIDs {
		if _, ok := sink.Get(id); !ok {
			t.Errorf("slow trace %s was evicted; tail sampling must pin the slowest-N", id)
		}
	}
	// The newest ordinary trace should still be present (it just arrived).
	if _, ok := sink.Get(fmt.Sprintf("%032x", 1499)); !ok {
		t.Error("the newest trace should survive its own insertion")
	}

	list := sink.List()
	if len(list) != capacity {
		t.Fatalf("List len = %d, want %d", len(list), capacity)
	}
	if list[len(list)-1].TraceID != erroredID {
		t.Errorf("List should be newest-first; oldest surviving = %s, want the pinned errored trace", list[len(list)-1].TraceID)
	}
}

func TestTraceSinkNilSafety(t *testing.T) {
	var sink *TraceSink
	if n := sink.Record(&TraceData{TraceSummary: TraceSummary{TraceID: "x"}}); n != 0 {
		t.Errorf("nil sink Record = %d, want 0", n)
	}
	if sink.Len() != 0 || sink.Capacity() != 0 || sink.List() != nil {
		t.Error("nil sink accessors should be zero-valued")
	}
	if _, ok := sink.Get("x"); ok {
		t.Error("nil sink Get should miss")
	}
}

// TestStartTraceAdoptsUpstreamIdentity checks cross-node parenting: a
// local root span under an adopted SpanContext parents to the remote
// span ID, and nested spans parent locally.
func TestStartTraceAdoptsUpstreamIdentity(t *testing.T) {
	upstream := SpanContext{TraceID: NewTraceID(), Sampled: true}
	upstream.SpanID[0] = 0xbe

	ctx := WithRegistry(context.Background(), NewRegistry())
	ctx, rec := StartTrace(ctx, upstream, false)
	if rec.TraceID() != upstream.TraceID {
		t.Errorf("TraceID = %s, want adopted %s", rec.TraceID(), upstream.TraceID)
	}

	ctx1, root := StartSpan(ctx, "handler")
	_, child := StartSpan(ctx1, "farm.slow")
	child.End()
	root.End()

	spans := rec.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	var rootSample, childSample PhaseSample
	for _, s := range spans {
		switch s.Name {
		case "handler":
			rootSample = s
		case "farm.slow":
			childSample = s
		}
	}
	if rootSample.ParentSpanID != upstream.SpanID.String() {
		t.Errorf("root parent = %q, want the remote span %q", rootSample.ParentSpanID, upstream.SpanID)
	}
	if childSample.ParentSpanID != rootSample.SpanID {
		t.Errorf("child parent = %q, want the root span %q", childSample.ParentSpanID, rootSample.SpanID)
	}
	if rootSample.SpanID == childSample.SpanID || rootSample.SpanID == "" {
		t.Errorf("span IDs must be unique and non-empty: %q vs %q", rootSample.SpanID, childSample.SpanID)
	}

	// The open child span's propagation context names itself as parent.
	ctx2, open := StartSpan(ctx1, "hop")
	sc := SpanContextFrom(ctx2)
	if !sc.Valid() || sc.SpanID != open.ID() || sc.TraceID != upstream.TraceID || !sc.Sampled {
		t.Errorf("SpanContextFrom = %+v, want the open span's identity", sc)
	}
	open.End()
}

func TestStartTraceMintsIDWhenZero(t *testing.T) {
	_, rec := WithTraceRecorder(context.Background(), false)
	if rec.TraceID().IsZero() {
		t.Error("WithTraceRecorder must mint a non-zero trace ID")
	}
}

func TestObserveExemplarExposition(t *testing.T) {
	r := NewRegistry()
	tid := NewTraceID().String()
	r.ObserveExemplar("serve.fast_seconds", 0.002, tid)
	r.ObserveExemplar("serve.fast_seconds", 0.004, "") // untraced: plain observe

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := buf.String()
	want := fmt.Sprintf("# {trace_id=%q}", tid)
	if !strings.Contains(out, want) {
		t.Errorf("exposition lacks exemplar %s:\n%s", want, out)
	}
	if h := r.Histogram("serve.fast_seconds"); h.Count() != 2 {
		t.Errorf("Count = %d, want both observations recorded", h.Count())
	}

	// The suffix must not disturb field-splitting parsers: the bucket
	// sample value stays field two.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "trace_id") {
			fields := strings.Fields(line)
			if len(fields) < 3 || fields[2] != "#" {
				t.Errorf("exemplar suffix must start at field 3: %q", line)
			}
		}
	}
}
