package obs

import (
	"context"
	"strings"
	"sync"
	"testing"
)

// The registry and span recorder are hammered from many goroutines while a
// reader scrapes exposition — the steady state of a serving process. Run
// under -race (scripts/ci.sh does), this is the package's concurrency
// safety proof.

func TestRegistryConcurrentMixedUse(t *testing.T) {
	r := NewRegistry()
	const (
		workers = 8
		rounds  = 200
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				r.Add("shared.counter", 1)
				r.Add("worker.counter", int64(n))
				r.SetGauge("shared.gauge", int64(i))
				r.Observe(PhaseSeries("tidy"), float64(i)*1e-6)
				r.Observe(PhaseSeries("subtree"), float64(i)*1e-5)
			}
		}(w)
	}
	// Concurrent scrapers.
	for s := 0; s < 2; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				var b strings.Builder
				if err := r.WritePrometheus(&b); err != nil {
					t.Errorf("WritePrometheus: %v", err)
				}
				_ = r.Snapshot()
				_ = r.Names()
			}
		}()
	}
	wg.Wait()
	if got := r.Get("shared.counter"); got != workers*rounds {
		t.Errorf("shared.counter = %d, want %d", got, workers*rounds)
	}
	if got := r.Histogram(PhaseSeries("tidy")).Count(); got != workers*rounds {
		t.Errorf("tidy histogram count = %d, want %d", got, workers*rounds)
	}
	sum := r.Histogram(PhaseSeries("tidy")).Sum()
	// Each worker contributes sum_{i<rounds} i*1e-6.
	want := float64(workers) * float64(rounds*(rounds-1)/2) * 1e-6
	if diff := sum - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("tidy histogram sum = %v, want %v", sum, want)
	}
}

func TestSpansConcurrent(t *testing.T) {
	r := NewRegistry()
	base := WithRegistry(context.Background(), r)
	ctx, rec := WithTraceRecorder(base, false)
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				c, sp := StartSpan(ctx, "outer")
				_, in := StartSpan(c, "inner")
				in.End()
				sp.End()
			}
		}()
	}
	wg.Wait()
	spans := rec.Spans()
	if len(spans) != workers*200 {
		t.Errorf("recorded %d spans, want %d", len(spans), workers*200)
	}
	for _, s := range spans {
		if s.Name == "inner" && (s.Parent != "outer" || s.Depth != 1) {
			t.Fatalf("inner span mis-nested: %+v", s)
		}
	}
	if got := r.Histogram(PhaseSeries("outer")).Count(); got != workers*100 {
		t.Errorf("outer histogram count = %d, want %d", got, workers*100)
	}
}
