package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// Level orders log severities.
type Level int

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String names the level for output and flag parsing.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	}
	return "unknown"
}

// ParseLevel maps a level name to its Level; unknown names select
// LevelInfo.
func ParseLevel(s string) Level {
	switch s {
	case "debug":
		return LevelDebug
	case "info":
		return LevelInfo
	case "warn", "warning":
		return LevelWarn
	case "error":
		return LevelError
	}
	return LevelInfo
}

// Logger is a leveled structured logger emitting one JSON object per line:
//
//	{"ts":"2026-08-05T12:00:00.000Z","level":"info","msg":"listening","addr":":8800"}
//
// Key/value pairs come as alternating arguments (slog-style); a trailing
// odd key gets the value "!MISSING". Safe for concurrent use. The zero
// Logger is unusable; construct with NewLogger.
type Logger struct {
	mu    sync.Mutex
	w     io.Writer
	level Level
	// now is overridable for tests.
	now func() time.Time
}

// NewLogger returns a logger writing records at or above level to w.
func NewLogger(w io.Writer, level Level) *Logger {
	return &Logger{w: w, level: level, now: time.Now}
}

// defaultLogger guards the process-wide fallback.
var (
	defaultLoggerMu sync.RWMutex
	defaultLogger   = NewLogger(os.Stderr, LevelInfo)
)

// DefaultLogger returns the process-wide logger (stderr, info) unless
// SetDefaultLogger replaced it.
func DefaultLogger() *Logger {
	defaultLoggerMu.RLock()
	defer defaultLoggerMu.RUnlock()
	return defaultLogger
}

// SetDefaultLogger replaces the process-wide logger; nil is ignored.
func SetDefaultLogger(l *Logger) {
	if l == nil {
		return
	}
	defaultLoggerMu.Lock()
	defaultLogger = l
	defaultLoggerMu.Unlock()
}

// Enabled reports whether records at lv would be written.
func (l *Logger) Enabled(lv Level) bool {
	return l != nil && lv >= l.level
}

// Log writes one record at lv with alternating key/value pairs.
func (l *Logger) Log(lv Level, msg string, kv ...any) {
	if !l.Enabled(lv) {
		return
	}
	rec := make(map[string]any, len(kv)/2+3)
	rec["ts"] = l.now().UTC().Format(time.RFC3339Nano)
	rec["level"] = lv.String()
	rec["msg"] = msg
	for i := 0; i < len(kv); i += 2 {
		key, ok := kv[i].(string)
		if !ok {
			key = fmt.Sprint(kv[i])
		}
		if i+1 < len(kv) {
			rec[key] = jsonSafe(kv[i+1])
		} else {
			rec[key] = "!MISSING"
		}
	}
	line, err := json.Marshal(rec)
	if err != nil {
		line = []byte(fmt.Sprintf(`{"level":%q,"msg":%q,"logError":%q}`, lv.String(), msg, err))
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	_, _ = l.w.Write(append(line, '\n'))
}

// jsonSafe converts values json.Marshal would reject (errors, arbitrary
// types) into strings.
func jsonSafe(v any) any {
	switch x := v.(type) {
	case nil, bool, string,
		int, int8, int16, int32, int64,
		uint, uint8, uint16, uint32, uint64,
		float32, float64, json.Marshaler:
		return x
	case error:
		return x.Error()
	case time.Duration:
		return x.String()
	case fmt.Stringer:
		return x.String()
	default:
		if _, err := json.Marshal(x); err != nil {
			return fmt.Sprint(x)
		}
		return x
	}
}

// Debug logs at LevelDebug.
func (l *Logger) Debug(msg string, kv ...any) { l.Log(LevelDebug, msg, kv...) }

// Info logs at LevelInfo.
func (l *Logger) Info(msg string, kv ...any) { l.Log(LevelInfo, msg, kv...) }

// Warn logs at LevelWarn.
func (l *Logger) Warn(msg string, kv ...any) { l.Log(LevelWarn, msg, kv...) }

// Error logs at LevelError.
func (l *Logger) Error(msg string, kv ...any) { l.Log(LevelError, msg, kv...) }
