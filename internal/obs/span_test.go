package obs

import (
	"context"
	"strings"
	"testing"
)

func TestSpanRecordsIntoRegistryAndRecorder(t *testing.T) {
	r := NewRegistry()
	ctx := WithRegistry(context.Background(), r)
	ctx, rec := WithTraceRecorder(ctx, false)

	_, sp := StartSpan(ctx, "tidy")
	sp.End()

	h := r.Histogram(PhaseSeries("tidy"))
	if h.Count() != 1 {
		t.Errorf("histogram count = %d, want 1", h.Count())
	}
	spans := rec.Spans()
	if len(spans) != 1 || spans[0].Name != "tidy" {
		t.Fatalf("spans = %+v, want one 'tidy' span", spans)
	}
	if spans[0].DurationNS < 0 {
		t.Errorf("negative duration %d", spans[0].DurationNS)
	}
	if sp.Duration() <= 0 {
		t.Errorf("Duration() = %v, want > 0", sp.Duration())
	}
}

func TestSpanNesting(t *testing.T) {
	ctx := WithRegistry(context.Background(), NewRegistry())
	ctx, rec := WithTraceRecorder(ctx, false)

	ctx1, parent := StartSpan(ctx, "parse")
	ctx2, child := StartSpan(ctx1, "tokenize")
	_, grandchild := StartSpan(ctx2, "entities")
	grandchild.End()
	child.End()
	// A sibling started from the parent's context nests under "parse",
	// not under the already-ended "tokenize".
	_, sibling := StartSpan(ctx1, "tidy")
	sibling.End()
	parent.End()

	byName := map[string]PhaseSample{}
	for _, s := range rec.Spans() {
		byName[s.Name] = s
	}
	checks := []struct {
		name, parent string
		depth        int
	}{
		{"parse", "", 0},
		{"tokenize", "parse", 1},
		{"entities", "tokenize", 2},
		{"tidy", "parse", 1},
	}
	for _, c := range checks {
		got, ok := byName[c.name]
		if !ok {
			t.Errorf("span %q not recorded", c.name)
			continue
		}
		if got.Parent != c.parent || got.Depth != c.depth {
			t.Errorf("span %q: parent=%q depth=%d, want parent=%q depth=%d",
				c.name, got.Parent, got.Depth, c.parent, c.depth)
		}
	}
	// Completion order: children end before parents.
	spans := rec.Spans()
	if spans[len(spans)-1].Name != "parse" {
		t.Errorf("last completed span = %q, want parse", spans[len(spans)-1].Name)
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	ctx := WithRegistry(context.Background(), NewRegistry())
	ctx, rec := WithTraceRecorder(ctx, false)
	_, sp := StartSpan(ctx, "x")
	sp.End()
	sp.End()
	if n := len(rec.Spans()); n != 1 {
		t.Errorf("double End recorded %d spans, want 1", n)
	}
	var nilSpan *Span
	nilSpan.End() // must not panic
}

// allocSink keeps test allocations observable to the span's memstats delta.
var allocSink []byte

func TestSpanAllocSampling(t *testing.T) {
	ctx, rec := WithTraceRecorder(context.Background(), true)
	_, sp := StartSpan(ctx, "alloc")
	allocSink = make([]byte, 1<<20)
	sp.End()
	spans := rec.Spans()
	if len(spans) != 1 {
		t.Fatalf("spans = %d, want 1", len(spans))
	}
	if spans[0].AllocBytes < 1<<20 {
		t.Errorf("AllocBytes = %d, want >= 1MiB", spans[0].AllocBytes)
	}
	if spans[0].Allocs < 1 {
		t.Errorf("Allocs = %d, want >= 1", spans[0].Allocs)
	}
}

func TestSpanWithoutRecorderStillObserves(t *testing.T) {
	r := NewRegistry()
	ctx := WithRegistry(context.Background(), r)
	_, sp := StartSpan(ctx, "solo")
	sp.End()
	if r.Histogram(PhaseSeries("solo")).Count() != 1 {
		t.Error("span without recorder did not feed the registry histogram")
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `omini_phase_seconds_count{phase="solo"} 1`) {
		t.Errorf("exposition missing solo phase:\n%s", b.String())
	}
}
