package obs

import (
	"context"
	"math"
	"strings"
	"testing"
)

func TestRegistryCounters(t *testing.T) {
	r := NewRegistry()
	r.Add("a.one", 3)
	r.Add("a.one", 2)
	r.Add("b.two", 1)
	if got := r.Get("a.one"); got != 5 {
		t.Errorf("Get(a.one) = %d, want 5", got)
	}
	if got := r.Get("missing"); got != 0 {
		t.Errorf("Get(missing) = %d, want 0", got)
	}
	snap := r.Snapshot()
	if snap["a.one"] != 5 || snap["b.two"] != 1 {
		t.Errorf("Snapshot = %v", snap)
	}
	names := r.Names()
	if len(names) != 2 || names[0] != "a.one" || names[1] != "b.two" {
		t.Errorf("Names = %v, want [a.one b.two]", names)
	}
}

func TestRegistryGauges(t *testing.T) {
	r := NewRegistry()
	r.SetGauge("inflight", 7)
	if got := r.Gauge("inflight").Load(); got != 7 {
		t.Errorf("gauge = %d, want 7", got)
	}
	r.RegisterGaugeFunc("cache_size", func() float64 { return 42 })
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"inflight 7", "cache_size 42", "# TYPE inflight gauge"} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramBucketing(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500, 5000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// 0.5 and 1 land in le=1; 5 in le=10; 50 in le=100; 500 and 5000 in +Inf.
	want := []int64{2, 1, 1, 2}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 6 {
		t.Errorf("count = %d, want 6", s.Count)
	}
	if math.Abs(s.Sum-5556.5) > 1e-9 {
		t.Errorf("sum = %v, want 5556.5", s.Sum)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram(nil)
	// 100 observations of 1ms: every quantile must land in the (1e-3, 2e-3]
	// neighborhood, interpolated from the 1e-3..2e-3 bucket.
	for i := 0; i < 100; i++ {
		h.Observe(1.5e-3)
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		got := h.Quantile(q)
		if got < 1e-3 || got > 2e-3 {
			t.Errorf("Quantile(%v) = %v, want within (1e-3, 2e-3]", q, got)
		}
	}
	var empty Histogram
	if got := empty.Snapshot().Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %v, want 0", got)
	}
}

func TestHistogramQuantileOrdering(t *testing.T) {
	h := NewHistogram(nil)
	// A spread of latencies: quantiles must be monotone.
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i) * 1e-5) // 10µs .. 10ms
	}
	p50, p95, p99 := h.Quantile(0.5), h.Quantile(0.95), h.Quantile(0.99)
	if !(p50 <= p95 && p95 <= p99) {
		t.Errorf("quantiles not monotone: p50=%v p95=%v p99=%v", p50, p95, p99)
	}
	if p50 < 1e-3 || p50 > 1e-2 {
		t.Errorf("p50 = %v, want near 5ms", p50)
	}
}

func TestWritePrometheusHistogram(t *testing.T) {
	r := NewRegistry()
	r.Add("serve.panics", 2)
	r.Observe(PhaseSeries("tidy"), 0.004)
	r.Observe(PhaseSeries("tidy"), 0.004)
	r.Observe(PhaseSeries("tokenize"), 0.001)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE serve_panics counter",
		"serve_panics 2",
		"# TYPE omini_phase_seconds histogram",
		`omini_phase_seconds_bucket{phase="tidy",le="+Inf"} 2`,
		`omini_phase_seconds_count{phase="tidy"} 2`,
		`omini_phase_seconds_sum{phase="tidy"} 0.008`,
		`omini_phase_seconds_count{phase="tokenize"} 1`,
		"# TYPE omini_phase_seconds_quantile gauge",
		`omini_phase_seconds_quantile{phase="tidy",quantile="0.5"}`,
		`omini_phase_seconds_quantile{phase="tidy",quantile="0.99"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Cumulative bucket counts: the le="5e-03" bucket holds both tidy
	// observations (0.004 <= 0.005).
	if !strings.Contains(out, `omini_phase_seconds_bucket{phase="tidy",le="0.005"} 2`) {
		t.Errorf("cumulative bucket wrong:\n%s", out)
	}
}

func TestSanitizeName(t *testing.T) {
	for in, want := range map[string]string{
		"serve.panics":    "serve_panics",
		"retry.attempts":  "retry_attempts",
		"ok_name:total":   "ok_name:total",
		"9starts.with":    "_starts_with",
		"dash-and space!": "dash_and_space_",
	} {
		if got := sanitizeName(in); got != want {
			t.Errorf("sanitizeName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestRegistryFromContext(t *testing.T) {
	if got := RegistryFrom(context.Background()); got != Default {
		t.Error("RegistryFrom(background) != Default")
	}
	r := NewRegistry()
	ctx := WithRegistry(context.Background(), r)
	if got := RegistryFrom(ctx); got != r {
		t.Error("RegistryFrom lost the attached registry")
	}
}
