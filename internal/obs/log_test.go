package obs

import (
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// decodeLines parses each JSON log line written to the builder.
func decodeLines(t *testing.T, out string) []map[string]any {
	t.Helper()
	var recs []map[string]any
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if line == "" {
			continue
		}
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("log line is not JSON: %q: %v", line, err)
		}
		recs = append(recs, rec)
	}
	return recs
}

func TestLoggerJSONAndLevels(t *testing.T) {
	var b strings.Builder
	l := NewLogger(&b, LevelInfo)
	l.now = func() time.Time { return time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC) }

	l.Debug("hidden")
	l.Info("listening", "addr", "127.0.0.1:8800", "inflight", 3)
	l.Error("boom", "err", errors.New("kaput"), "took", 250*time.Millisecond)

	recs := decodeLines(t, b.String())
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2 (debug filtered): %v", len(recs), recs)
	}
	info := recs[0]
	if info["level"] != "info" || info["msg"] != "listening" || info["addr"] != "127.0.0.1:8800" {
		t.Errorf("info record = %v", info)
	}
	if info["ts"] != "2026-08-05T12:00:00Z" {
		t.Errorf("ts = %v", info["ts"])
	}
	if info["inflight"] != float64(3) {
		t.Errorf("inflight = %v (%T)", info["inflight"], info["inflight"])
	}
	errRec := recs[1]
	if errRec["err"] != "kaput" {
		t.Errorf("error value not stringified: %v", errRec["err"])
	}
	if errRec["took"] != "250ms" {
		t.Errorf("duration not stringified: %v", errRec["took"])
	}
}

func TestLoggerOddKeyPair(t *testing.T) {
	var b strings.Builder
	l := NewLogger(&b, LevelDebug)
	l.Debug("odd", "dangling")
	recs := decodeLines(t, b.String())
	if recs[0]["dangling"] != "!MISSING" {
		t.Errorf("dangling key = %v", recs[0]["dangling"])
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]Level{
		"debug": LevelDebug, "info": LevelInfo, "warn": LevelWarn,
		"warning": LevelWarn, "error": LevelError, "bogus": LevelInfo,
	} {
		if got := ParseLevel(in); got != want {
			t.Errorf("ParseLevel(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestLoggerConcurrent(t *testing.T) {
	var b lockedBuilder
	l := NewLogger(&b, LevelInfo)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				l.Info("tick", "worker", n, "j", j)
			}
		}(i)
	}
	wg.Wait()
	recs := decodeLines(t, b.String())
	if len(recs) != 400 {
		t.Errorf("got %d records, want 400", len(recs))
	}
}

// lockedBuilder is a concurrency-safe strings.Builder stand-in; the logger
// serializes writes itself, but the test's final read needs a barrier too.
type lockedBuilder struct {
	mu sync.Mutex
	b  strings.Builder
}

func (lb *lockedBuilder) Write(p []byte) (int, error) {
	lb.mu.Lock()
	defer lb.mu.Unlock()
	return lb.b.Write(p)
}

func (lb *lockedBuilder) String() string {
	lb.mu.Lock()
	defer lb.mu.Unlock()
	return lb.b.String()
}
