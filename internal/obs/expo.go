package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Prometheus-style text exposition. Registry names use friendly dotted
// forms internally; exposition sanitizes them ("serve.panics" →
// "serve_panics") and groups labeled histogram series
// (`omini_phase_seconds{phase="tidy"}`) under one family with the standard
// _bucket/_sum/_count series, plus estimated p50/p95/p99 as a companion
// gauge family so dashboards get quantiles without server-side PromQL.

// quantiles reported for every histogram family.
var expoQuantiles = []struct {
	label string
	q     float64
}{{"0.5", 0.50}, {"0.95", 0.95}, {"0.99", 0.99}}

// sanitizeName maps a registry name to a legal Prometheus metric name.
func sanitizeName(name string) string {
	var b strings.Builder
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// splitSeries separates a series name into its family and label block:
// `phase_seconds{phase="tidy"}` → ("phase_seconds", `phase="tidy"`).
func splitSeries(name string) (family, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	family = name[:i]
	labels = strings.TrimSuffix(name[i+1:], "}")
	return family, labels
}

// joinLabels merges existing labels with one extra pair into a rendered
// label block (with braces), or "" when empty.
func joinLabels(labels, extraKey, extraVal string) string {
	var parts []string
	if labels != "" {
		parts = append(parts, labels)
	}
	if extraKey != "" {
		parts = append(parts, fmt.Sprintf("%s=%q", extraKey, extraVal))
	}
	if len(parts) == 0 {
		return ""
	}
	return "{" + strings.Join(parts, ",") + "}"
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// exemplarSuffix renders a bucket's exemplar as an OpenMetrics-style
// comment suffix (` # {trace_id="..."} value`), or "" without one. The
// suffix rides after the sample value, so whitespace-splitting scrape
// parsers that read the first two fields are unaffected.
func exemplarSuffix(e *Exemplar) string {
	if e == nil {
		return ""
	}
	return fmt.Sprintf(" # {trace_id=%q} %s", e.TraceID, formatFloat(e.Value))
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format: counters and gauges as-is, histograms as _bucket/_sum/_count plus
// a <family>_quantile gauge family with p50/p95/p99 estimates. Output is
// sorted so scrapes are diffable.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	counters := make(map[string]int64, len(r.counters))
	for name, c := range r.counters {
		counters[name] = c.Load()
	}
	gauges := make(map[string]float64, len(r.gauges)+len(r.gaugefns))
	for name, g := range r.gauges {
		gauges[name] = float64(g.Load())
	}
	fns := make(map[string]func() float64, len(r.gaugefns))
	for name, fn := range r.gaugefns {
		fns[name] = fn
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for name, h := range r.hists {
		hists[name] = h
	}
	r.mu.RUnlock()
	// Computed gauges run outside the lock: they may call back into code
	// that touches the registry.
	for name, fn := range fns {
		gauges[name] = fn()
	}

	var b strings.Builder
	writeScalars := func(kind string, m map[string]float64, format func(float64) string) {
		names := make([]string, 0, len(m))
		for name := range m {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			family, labels := splitSeries(name)
			family = sanitizeName(family)
			fmt.Fprintf(&b, "# TYPE %s %s\n", family, kind)
			fmt.Fprintf(&b, "%s%s %s\n", family, joinLabels(labels, "", ""), format(m[name]))
		}
	}
	cm := make(map[string]float64, len(counters))
	for name, v := range counters {
		cm[name] = float64(v)
	}
	writeScalars("counter", cm, func(v float64) string { return strconv.FormatInt(int64(v), 10) })
	writeScalars("gauge", gauges, formatFloat)

	// Histograms: group series by family so each family gets one TYPE line.
	byFamily := make(map[string][]string)
	for name := range hists {
		family, _ := splitSeries(name)
		byFamily[family] = append(byFamily[family], name)
	}
	families := make([]string, 0, len(byFamily))
	for f := range byFamily {
		families = append(families, f)
	}
	sort.Strings(families)
	for _, family := range families {
		series := byFamily[family]
		sort.Strings(series)
		fam := sanitizeName(family)
		fmt.Fprintf(&b, "# TYPE %s histogram\n", fam)
		for _, name := range series {
			_, labels := splitSeries(name)
			s := hists[name].Snapshot()
			var cum int64
			for i, bound := range s.Bounds {
				cum += s.Counts[i]
				fmt.Fprintf(&b, "%s_bucket%s %d%s\n",
					fam, joinLabels(labels, "le", formatFloat(bound)), cum,
					exemplarSuffix(s.Exemplars[i]))
			}
			fmt.Fprintf(&b, "%s_bucket%s %d%s\n", fam, joinLabels(labels, "le", "+Inf"), s.Count,
				exemplarSuffix(s.Exemplars[len(s.Bounds)]))
			fmt.Fprintf(&b, "%s_sum%s %s\n", fam, joinLabels(labels, "", ""), formatFloat(s.Sum))
			fmt.Fprintf(&b, "%s_count%s %d\n", fam, joinLabels(labels, "", ""), s.Count)
		}
		fmt.Fprintf(&b, "# TYPE %s_quantile gauge\n", fam)
		for _, name := range series {
			_, labels := splitSeries(name)
			s := hists[name].Snapshot()
			for _, eq := range expoQuantiles {
				fmt.Fprintf(&b, "%s_quantile%s %s\n",
					fam, joinLabels(labels, "quantile", eq.label), formatFloat(s.Quantile(eq.q)))
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
