package obs

// The decision trace: a structured record of *why* one extraction came out
// the way it did — which subtrees the Section 4 heuristics ranked where,
// how each Section 5 separator heuristic voted, and what the Section 6
// probabilistic combination concluded. It is the per-request analogue of
// the paper's evaluation tables, attached to a live result instead of
// averaged over a corpus. The types here are deliberately generic (names,
// keys, scores) so the package stays free of pipeline imports; internal/core
// fills them in.

// RankedItem is one entry of a ranked list: a key (a subtree path, a
// separator tag), the score the ranker assigned, and its 1-based rank.
type RankedItem struct {
	Rank  int     `json:"rank"`
	Key   string  `json:"key"`
	Score float64 `json:"score"`
}

// Ranking is one named ranker's ordered candidate list.
type Ranking struct {
	// Name identifies the ranker ("SD", "RP", "IPS", "PP", "SB", ...).
	Name string `json:"name"`
	// Items are the ranker's candidates, best first.
	Items []RankedItem `json:"items"`
}

// DecisionTrace explains one extraction end to end. Serialize it with
// encoding/json; ?trace=1 on the HTTP service and `omini -trace` both emit
// exactly this structure.
type DecisionTrace struct {
	// TraceID is the distributed trace this extraction belongs to (32
	// hex digits), correlating the inline trace with /tracez, the access
	// log and histogram exemplars. Empty on recorders without identity.
	TraceID string `json:"traceId,omitempty"`
	// SubtreePath is the chosen object-rich subtree.
	SubtreePath string `json:"subtreePath"`
	// SubtreeRanking lists the top-ranked subtree candidates (path + score)
	// of the configured subtree heuristic.
	SubtreeRanking []RankedItem `json:"subtreeRanking,omitempty"`
	// SeparatorRankings holds each separator heuristic's own candidate
	// ranking, before combination.
	SeparatorRankings []Ranking `json:"separatorRankings,omitempty"`
	// Combined is the probabilistically combined candidate ranking; its
	// scores are compound probabilities.
	Combined []RankedItem `json:"combined,omitempty"`
	// Separator is the winning separator tag.
	Separator string `json:"separator"`
	// Confidence is the extraction's self-assessed confidence in [0,1].
	Confidence float64 `json:"confidence"`
	// FromRule marks a cached-rule replay: discovery was skipped, so the
	// ranking fields are empty and the winner came from the rule.
	FromRule bool `json:"fromRule,omitempty"`
	// Objects is the number of refined objects produced.
	Objects int `json:"objects"`
	// Phases are the completed pipeline spans, in completion order.
	Phases []PhaseSample `json:"phases,omitempty"`
	// Charges are the governor budgets this extraction consumed
	// (tokens, nodes, objects), when it ran under a guard.
	Charges map[string]int64 `json:"governorCharges,omitempty"`
}
