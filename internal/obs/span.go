package obs

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"
)

// PhaseFamily is the histogram family every span's wall time lands in, one
// labeled series per span name. /metricsz therefore exposes a latency
// histogram per pipeline phase with no per-phase registration code.
const PhaseFamily = "omini_phase_seconds"

// PhaseSeries returns the registry series name for one phase's latency
// histogram.
func PhaseSeries(phase string) string {
	return fmt.Sprintf("%s{phase=%q}", PhaseFamily, phase)
}

// PhaseSample is one completed span as recorded in a trace: its name, its
// position in the span tree, wall time, and (when the recorder samples
// allocations) the process-wide allocation delta across the span.
type PhaseSample struct {
	// Name is the span name ("tokenize", "tidy", ...).
	Name string `json:"name"`
	// Parent is the enclosing span's name ("" at the root).
	Parent string `json:"parent,omitempty"`
	// Depth is the nesting depth (0 at the root).
	Depth int `json:"depth"`
	// DurationNS is the span's wall time in nanoseconds.
	DurationNS int64 `json:"durationNs"`
	// AllocBytes and Allocs are the process-wide heap-allocation deltas
	// over the span (approximate under concurrency; exact when the traced
	// extraction runs alone, which is how traces are usually taken).
	AllocBytes int64 `json:"allocBytes,omitempty"`
	Allocs     int64 `json:"allocs,omitempty"`
}

// TraceRecorder accumulates the completed spans of one traced operation.
// Attach one to a context with WithTraceRecorder; spans started under that
// context report into it. Safe for concurrent use.
type TraceRecorder struct {
	// SampleAllocs enables per-span allocation deltas via
	// runtime.ReadMemStats. The read briefly stops the world, so it is
	// opt-in and meant for interactive tracing, not steady-state serving.
	SampleAllocs bool

	mu    sync.Mutex
	spans []PhaseSample
}

// Spans returns the recorded samples in completion order.
func (tr *TraceRecorder) Spans() []PhaseSample {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	out := make([]PhaseSample, len(tr.spans))
	copy(out, tr.spans)
	return out
}

func (tr *TraceRecorder) add(s PhaseSample) {
	tr.mu.Lock()
	tr.spans = append(tr.spans, s)
	tr.mu.Unlock()
}

type recorderKey struct{}
type spanKey struct{}

// WithTraceRecorder returns a context carrying a fresh TraceRecorder and
// the recorder itself. sampleAllocs additionally records per-span
// allocation deltas (see TraceRecorder.SampleAllocs).
func WithTraceRecorder(ctx context.Context, sampleAllocs bool) (context.Context, *TraceRecorder) {
	tr := &TraceRecorder{SampleAllocs: sampleAllocs}
	return context.WithValue(ctx, recorderKey{}, tr), tr
}

// TraceRecorderFrom returns the context's recorder, or nil when the
// operation is not being traced.
func TraceRecorderFrom(ctx context.Context) *TraceRecorder {
	if ctx == nil {
		return nil
	}
	tr, _ := ctx.Value(recorderKey{}).(*TraceRecorder)
	return tr
}

// Span is one in-flight timed region. Created by StartSpan; End records it
// into the context's registry histogram and trace recorder.
type Span struct {
	name   string
	parent string
	depth  int
	start  time.Time
	dur    time.Duration
	reg    *Registry
	rec    *TraceRecorder
	mem0   runtime.MemStats
	ended  bool
}

// StartSpan begins a named span under ctx and returns a derived context
// (carrying the span, so nested StartSpan calls see their parent) plus the
// span itself. The span's wall time always lands in the context registry's
// per-phase histogram; when the context carries a TraceRecorder the span is
// also appended to the trace. Always pair with End:
//
//	ctx, sp := obs.StartSpan(ctx, "tidy")
//	... phase work ...
//	sp.End()
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	sp := &Span{
		name: name,
		reg:  RegistryFrom(ctx),
		rec:  TraceRecorderFrom(ctx),
	}
	if parent, ok := ctx.Value(spanKey{}).(*Span); ok && parent != nil {
		sp.parent = parent.name
		sp.depth = parent.depth + 1
	}
	if sp.rec != nil && sp.rec.SampleAllocs {
		runtime.ReadMemStats(&sp.mem0)
	}
	sp.start = time.Now()
	return context.WithValue(ctx, spanKey{}, sp), sp
}

// End completes the span, recording wall time (and alloc deltas when
// sampled) into the registry and recorder. End is idempotent; only the
// first call records.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	s.dur = time.Since(s.start)
	s.reg.Observe(PhaseSeries(s.name), s.dur.Seconds())
	if s.rec == nil {
		return
	}
	sample := PhaseSample{
		Name:       s.name,
		Parent:     s.parent,
		Depth:      s.depth,
		DurationNS: s.dur.Nanoseconds(),
	}
	if s.rec.SampleAllocs {
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		sample.AllocBytes = int64(m.TotalAlloc - s.mem0.TotalAlloc)
		sample.Allocs = int64(m.Mallocs - s.mem0.Mallocs)
	}
	s.rec.add(sample)
}

// Duration returns the span's recorded wall time (0 before End).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	return s.dur
}
