package obs

import (
	"context"
	"encoding/binary"
	"fmt"
	"math/rand/v2"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// PhaseFamily is the histogram family every span's wall time lands in, one
// labeled series per span name. /metricsz therefore exposes a latency
// histogram per pipeline phase with no per-phase registration code.
const PhaseFamily = "omini_phase_seconds"

// PhaseSeries returns the registry series name for one phase's latency
// histogram.
func PhaseSeries(phase string) string {
	return fmt.Sprintf("%s{phase=%q}", PhaseFamily, phase)
}

// PhaseSample is one completed span as recorded in a trace: its name, its
// position in the span tree, wall time, and (when the recorder samples
// allocations) the process-wide allocation delta across the span. On
// traced requests it additionally carries the span's distributed-tracing
// identity: its own ID, its parent's ID (which may live on another node),
// and its start offset from the local recorder's start.
type PhaseSample struct {
	// Name is the span name ("tokenize", "tidy", ...).
	Name string `json:"name"`
	// Parent is the enclosing span's name ("" at the root).
	Parent string `json:"parent,omitempty"`
	// Depth is the nesting depth (0 at the root).
	Depth int `json:"depth"`
	// DurationNS is the span's wall time in nanoseconds.
	DurationNS int64 `json:"durationNs"`
	// SpanID / ParentSpanID identify the span in its distributed trace
	// (16 hex digits; empty on untraced extractions). A root span's
	// ParentSpanID may name a span recorded on another node — the
	// cluster hop that forwarded the request here.
	SpanID       string `json:"spanId,omitempty"`
	ParentSpanID string `json:"parentSpanId,omitempty"`
	// StartNS is the span's start offset from the recorder's start, in
	// nanoseconds. Offsets are node-local clocks; spans from different
	// nodes of one trace are not mutually aligned.
	StartNS int64 `json:"startNs,omitempty"`
	// AllocBytes and Allocs are the process-wide heap-allocation deltas
	// over the span (approximate under concurrency; exact when the traced
	// extraction runs alone, which is how traces are usually taken).
	AllocBytes int64 `json:"allocBytes,omitempty"`
	Allocs     int64 `json:"allocs,omitempty"`
}

// TraceRecorder accumulates the completed spans of one traced operation,
// along with its trace identity, free-form annotations and governor
// charges. Attach one to a context with StartTrace (or the
// WithTraceRecorder shorthand); spans started under that context report
// into it. Safe for concurrent use.
type TraceRecorder struct {
	// SampleAllocs enables per-span allocation deltas via
	// runtime.ReadMemStats. The read briefly stops the world, so it is
	// opt-in and meant for interactive tracing, not steady-state serving.
	SampleAllocs bool

	traceID TraceID
	remote  SpanID // upstream parent span; local roots parent to it
	start   time.Time
	base    uint64        // random base for span-ID allocation
	seq     atomic.Uint64 // per-span increment over base

	mu      sync.Mutex
	spans   []PhaseSample
	attrs   map[string]string
	charges map[string]int64
}

// TraceID returns the trace's identity.
func (tr *TraceRecorder) TraceID() TraceID {
	if tr == nil {
		return TraceID{}
	}
	return tr.traceID
}

// Start returns the recorder's creation time; span StartNS offsets are
// relative to it.
func (tr *TraceRecorder) Start() time.Time {
	if tr == nil {
		return time.Time{}
	}
	return tr.start
}

// nextSpanID allocates a span ID unique within this recorder: one
// random 64-bit base per trace plus an atomic sequence, so the serving
// path pays no per-span randomness.
func (tr *TraceRecorder) nextSpanID() SpanID {
	v := tr.base + tr.seq.Add(1)
	if v == 0 {
		v = tr.base + tr.seq.Add(1)
	}
	var id SpanID
	binary.BigEndian.PutUint64(id[:], v)
	return id
}

// Annotate attaches a key/value attribute to the trace (the farm path
// taken, for example). First write wins on a duplicate key.
func (tr *TraceRecorder) Annotate(k, v string) {
	if tr == nil || k == "" {
		return
	}
	tr.mu.Lock()
	if tr.attrs == nil {
		tr.attrs = make(map[string]string, 4)
	}
	if _, ok := tr.attrs[k]; !ok {
		tr.attrs[k] = v
	}
	tr.mu.Unlock()
}

// Attrs returns a copy of the trace's attributes (nil when none).
func (tr *TraceRecorder) Attrs() map[string]string {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if len(tr.attrs) == 0 {
		return nil
	}
	out := make(map[string]string, len(tr.attrs))
	for k, v := range tr.attrs {
		out[k] = v
	}
	return out
}

// SetCharge records one governor charge (tokens, nodes, objects)
// consumed by the traced operation. Last write wins.
func (tr *TraceRecorder) SetCharge(kind string, v int64) {
	if tr == nil || kind == "" {
		return
	}
	tr.mu.Lock()
	if tr.charges == nil {
		tr.charges = make(map[string]int64, 4)
	}
	tr.charges[kind] = v
	tr.mu.Unlock()
}

// Charges returns a copy of the recorded governor charges (nil when
// none).
func (tr *TraceRecorder) Charges() map[string]int64 {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if len(tr.charges) == 0 {
		return nil
	}
	out := make(map[string]int64, len(tr.charges))
	for k, v := range tr.charges {
		out[k] = v
	}
	return out
}

// Spans returns the recorded samples in completion order.
func (tr *TraceRecorder) Spans() []PhaseSample {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	out := make([]PhaseSample, len(tr.spans))
	copy(out, tr.spans)
	return out
}

func (tr *TraceRecorder) add(s PhaseSample) {
	tr.mu.Lock()
	tr.spans = append(tr.spans, s)
	tr.mu.Unlock()
}

type recorderKey struct{}
type spanKey struct{}

// StartTrace returns a context carrying a fresh TraceRecorder for one
// traced operation. sc continues an upstream trace: its TraceID is
// adopted (a zero TraceID generates a fresh one) and its SpanID becomes
// the remote parent of the local root span. sampleAllocs additionally
// records per-span allocation deltas (see TraceRecorder.SampleAllocs).
func StartTrace(ctx context.Context, sc SpanContext, sampleAllocs bool) (context.Context, *TraceRecorder) {
	tr := &TraceRecorder{
		SampleAllocs: sampleAllocs,
		traceID:      sc.TraceID,
		remote:       sc.SpanID,
		start:        time.Now(),
		base:         rand.Uint64(),
	}
	if tr.traceID.IsZero() {
		tr.traceID = NewTraceID()
	}
	return context.WithValue(ctx, recorderKey{}, tr), tr
}

// WithTraceRecorder is StartTrace with a fresh trace identity — the
// single-process tracing entry point (omini -trace, golden trace
// tests).
func WithTraceRecorder(ctx context.Context, sampleAllocs bool) (context.Context, *TraceRecorder) {
	return StartTrace(ctx, SpanContext{}, sampleAllocs)
}

// TraceRecorderFrom returns the context's recorder, or nil when the
// operation is not being traced.
func TraceRecorderFrom(ctx context.Context) *TraceRecorder {
	if ctx == nil {
		return nil
	}
	tr, _ := ctx.Value(recorderKey{}).(*TraceRecorder)
	return tr
}

// TraceIDStringFrom returns the hex trace ID of the context's trace,
// or "" when the operation is not being traced — the exemplar argument
// for Registry.ObserveExemplar.
func TraceIDStringFrom(ctx context.Context) string {
	tr := TraceRecorderFrom(ctx)
	if tr == nil {
		return ""
	}
	return tr.traceID.String()
}

// AnnotateTrace attaches a key/value attribute to the context's trace;
// a no-op on untraced contexts.
func AnnotateTrace(ctx context.Context, k, v string) {
	TraceRecorderFrom(ctx).Annotate(k, v)
}

// SpanContextFrom returns the propagation context of the current span:
// the trace ID plus the innermost open span's ID, marked sampled. It is
// invalid (zero) when the context carries no traced span — untraced
// work propagates nothing.
func SpanContextFrom(ctx context.Context) SpanContext {
	if ctx == nil {
		return SpanContext{}
	}
	sp, _ := ctx.Value(spanKey{}).(*Span)
	if sp == nil || sp.rec == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: sp.rec.traceID, SpanID: sp.id, Sampled: true}
}

// Span is one in-flight timed region. Created by StartSpan; End records it
// into the context's registry histogram and trace recorder.
type Span struct {
	name     string
	parent   string
	depth    int
	id       SpanID
	parentID SpanID
	startOff int64
	start    time.Time
	dur      time.Duration
	reg      *Registry
	rec      *TraceRecorder
	mem0     runtime.MemStats
	ended    bool
}

// StartSpan begins a named span under ctx and returns a derived context
// (carrying the span, so nested StartSpan calls see their parent) plus the
// span itself. The span's wall time always lands in the context registry's
// per-phase histogram; when the context carries a TraceRecorder the span is
// also appended to the trace with a span ID parented into the trace's span
// tree. Always pair with End:
//
//	ctx, sp := obs.StartSpan(ctx, "tidy")
//	... phase work ...
//	sp.End()
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	sp := &Span{
		name: name,
		reg:  RegistryFrom(ctx),
		rec:  TraceRecorderFrom(ctx),
	}
	if parent, ok := ctx.Value(spanKey{}).(*Span); ok && parent != nil {
		sp.parent = parent.name
		sp.depth = parent.depth + 1
		sp.parentID = parent.id
	} else if sp.rec != nil {
		sp.parentID = sp.rec.remote
	}
	if sp.rec != nil {
		sp.id = sp.rec.nextSpanID()
		sp.startOff = time.Since(sp.rec.start).Nanoseconds()
		if sp.rec.SampleAllocs {
			runtime.ReadMemStats(&sp.mem0)
		}
	}
	sp.start = time.Now()
	return context.WithValue(ctx, spanKey{}, sp), sp
}

// ID returns the span's trace-local identity (zero on untraced spans).
func (s *Span) ID() SpanID {
	if s == nil {
		return SpanID{}
	}
	return s.id
}

// Context returns the span's propagation context for cross-node
// forwarding; invalid (zero) on untraced spans.
func (s *Span) Context() SpanContext {
	if s == nil || s.rec == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: s.rec.traceID, SpanID: s.id, Sampled: true}
}

// End completes the span, recording wall time (and alloc deltas when
// sampled) into the registry and recorder. End is idempotent; only the
// first call records.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	s.dur = time.Since(s.start)
	s.reg.Observe(PhaseSeries(s.name), s.dur.Seconds())
	if s.rec == nil {
		return
	}
	sample := PhaseSample{
		Name:         s.name,
		Parent:       s.parent,
		Depth:        s.depth,
		DurationNS:   s.dur.Nanoseconds(),
		SpanID:       s.id.String(),
		ParentSpanID: s.parentID.String(),
		StartNS:      s.startOff,
	}
	if s.parentID.IsZero() {
		sample.ParentSpanID = ""
	}
	if s.rec.SampleAllocs {
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		sample.AllocBytes = int64(m.TotalAlloc - s.mem0.TotalAlloc)
		sample.Allocs = int64(m.Mallocs - s.mem0.Mallocs)
	}
	s.rec.add(sample)
}

// Duration returns the span's recorded wall time (0 before End).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	return s.dur
}
