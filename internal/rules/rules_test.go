package rules

import (
	"bytes"
	"errors"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"
)

func sampleRule(site string) Rule {
	return Rule{
		Site:        site,
		SubtreePath: "html[1].body[2].form[4]",
		Separator:   "table",
		LearnedAt:   time.Date(2026, 7, 5, 12, 0, 0, 0, time.UTC),
	}
}

func TestPutGetDelete(t *testing.T) {
	s := NewStore()
	r := sampleRule("www.canoe.com")
	if err := s.Put(r); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, err := s.Get("www.canoe.com")
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if got != r {
		t.Errorf("Get = %+v, want %+v", got, r)
	}
	if _, err := s.Get("missing.example"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get(missing) err = %v, want ErrNotFound", err)
	}
	s.Delete("www.canoe.com")
	if _, err := s.Get("www.canoe.com"); !errors.Is(err, ErrNotFound) {
		t.Error("rule survived Delete")
	}
}

func TestPutValidation(t *testing.T) {
	s := NewStore()
	if err := s.Put(Rule{SubtreePath: "x", Separator: "y"}); err == nil {
		t.Error("Put without site succeeded")
	}
	if err := s.Put(Rule{Site: "a.com"}); err == nil {
		t.Error("Put of invalid rule succeeded")
	}
}

func TestRuleValid(t *testing.T) {
	if (Rule{}).Valid() {
		t.Error("zero rule should be invalid")
	}
	if !sampleRule("x").Valid() {
		t.Error("sample rule should be valid")
	}
}

func TestSitesSorted(t *testing.T) {
	s := NewStore()
	for _, site := range []string{"c.com", "a.com", "b.com"} {
		if err := s.Put(sampleRule(site)); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Sites(); !reflect.DeepEqual(got, []string{"a.com", "b.com", "c.com"}) {
		t.Errorf("Sites = %v", got)
	}
	if s.Len() != 3 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestJSONRoundTrip(t *testing.T) {
	s := NewStore()
	for _, site := range []string{"www.loc.gov", "www.canoe.com"} {
		if err := s.Put(sampleRule(site)); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	loaded := NewStore()
	if _, err := loaded.ReadFrom(&buf); err != nil {
		t.Fatalf("ReadFrom: %v", err)
	}
	if loaded.Len() != 2 {
		t.Fatalf("loaded %d rules", loaded.Len())
	}
	got, err := loaded.Get("www.loc.gov")
	if err != nil {
		t.Fatal(err)
	}
	if !got.LearnedAt.Equal(sampleRule("").LearnedAt) {
		t.Errorf("LearnedAt = %v", got.LearnedAt)
	}
}

func TestReadFromSkipsInvalid(t *testing.T) {
	s := NewStore()
	payload := `[
		{"site": "good.com", "subtreePath": "html[1]", "separator": "tr"},
		{"site": "", "subtreePath": "html[1]", "separator": "tr"},
		{"site": "bad.com", "subtreePath": "", "separator": ""}
	]`
	if _, err := s.ReadFrom(bytes.NewReader([]byte(payload))); err != nil {
		t.Fatalf("ReadFrom: %v", err)
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d, want 1 (invalid entries skipped)", s.Len())
	}
}

func TestReadFromBadJSON(t *testing.T) {
	s := NewStore()
	if _, err := s.ReadFrom(bytes.NewReader([]byte("{not json"))); err == nil {
		t.Error("bad JSON accepted")
	}
}

func TestSaveLoadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rules.json")
	s := NewStore()
	if err := s.Put(sampleRule("www.loc.gov")); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(path); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if loaded.Len() != 1 {
		t.Errorf("loaded %d rules", loaded.Len())
	}
	if _, err := Load(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Error("Load of missing file succeeded")
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := NewStore()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			site := string(rune('a'+i)) + ".com"
			for j := 0; j < 100; j++ {
				if err := s.Put(sampleRule(site)); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
				if _, err := s.Get(site); err != nil {
					t.Errorf("Get: %v", err)
					return
				}
				s.Sites()
			}
		}(i)
	}
	wg.Wait()
	if s.Len() != 8 {
		t.Errorf("Len = %d, want 8", s.Len())
	}
}

// TestReadFromRejectsMalformedSnapshots is the hardening table over the
// snapshot shapes replication can put on the wire: corrupt, truncated,
// duplicate-site and future-version payloads must fail with typed
// errors (and leave the store empty), while legacy and current shapes
// still load.
func TestReadFromRejectsMalformedSnapshots(t *testing.T) {
	good := `{"site": "good.com", "subtreePath": "html[1]", "separator": "tr"}`
	tests := []struct {
		name    string
		payload string
		wantErr error // nil = any error unacceptable, load must succeed
		bad     bool  // true = must fail (wantErr nil means "any error")
	}{
		{name: "current envelope", payload: `{"version": 2, "rules": [` + good + `]}`},
		{name: "v1 envelope", payload: `{"version": 1, "rules": [` + good + `]}`},
		{name: "legacy array", payload: `[` + good + `]`},
		{name: "corrupt", payload: `{"version": 2, "rules": [{]}`, bad: true},
		{name: "truncated", payload: `{"version": 2, "rules": [` + good, bad: true},
		{name: "empty", payload: ``, bad: true},
		{
			name:    "duplicate site",
			payload: `{"version": 1, "rules": [` + good + `, ` + good + `]}`,
			wantErr: ErrDuplicateSite, bad: true,
		},
		{
			name:    "duplicate site legacy array",
			payload: `[` + good + `, ` + good + `]`,
			wantErr: ErrDuplicateSite, bad: true,
		},
		{
			name:    "future version",
			payload: `{"version": 99, "rules": [` + good + `]}`,
			wantErr: ErrSnapshotVersion, bad: true,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := NewStore()
			_, err := s.ReadFrom(bytes.NewReader([]byte(tt.payload)))
			if !tt.bad {
				if err != nil {
					t.Fatalf("ReadFrom: %v", err)
				}
				if s.Len() != 1 {
					t.Fatalf("Len = %d, want 1", s.Len())
				}
				return
			}
			if err == nil {
				t.Fatal("malformed snapshot accepted")
			}
			if tt.wantErr != nil && !errors.Is(err, tt.wantErr) {
				t.Fatalf("err = %v, want %v", err, tt.wantErr)
			}
			if s.Len() != 0 {
				t.Errorf("rejected snapshot left %d rules in the store", s.Len())
			}
		})
	}
}
