// Package rules implements the extraction-rule cache of the paper's Section
// 6.6: because the structure of a web site rarely changes, the minimal
// subtree path and separator tag discovered for one page of a site can be
// stored and replayed on its other pages, skipping subtree and separator
// discovery entirely — the second, order-of-magnitude-faster extraction
// method of Table 17.
package rules

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"
)

// Rule is a learned extraction rule for one site.
type Rule struct {
	// Site identifies the web site the rule was learned from.
	Site string `json:"site"`
	// SubtreePath is the dot-notation path of the object-rich subtree.
	SubtreePath string `json:"subtreePath"`
	// Separator is the object separator tag.
	Separator string `json:"separator"`
	// LearnedAt records when the rule was discovered (RFC 3339 in JSON).
	LearnedAt time.Time `json:"learnedAt"`
	// Version counts how many times the site's rule has been learned:
	// 1 on first discovery, incremented on every drift- or
	// mismatch-triggered relearn. Zero means the rule predates
	// versioning (treated as version 1).
	Version int `json:"version,omitempty"`
}

// Valid reports whether the rule carries the fields replay requires.
func (r Rule) Valid() bool {
	return r.SubtreePath != "" && r.Separator != ""
}

// ErrNotFound is returned when a store holds no rule for a site.
var ErrNotFound = errors.New("rules: no rule for site")

// MaxSnapshotVersion is the newest snapshot envelope version this
// package (and internal/farm, which writes the envelope and pins its
// SnapshotVersion to this constant) understands. Version 2 added
// tombstones; a snapshot declaring a higher version was written by a
// newer binary and is rejected with ErrSnapshotVersion rather than
// half-read.
const MaxSnapshotVersion = 2

// ErrSnapshotVersion is returned by ReadFrom for a snapshot envelope
// declaring a format version newer than MaxSnapshotVersion.
var ErrSnapshotVersion = errors.New("rules: snapshot format version too new")

// ErrDuplicateSite is returned by ReadFrom for a snapshot holding two
// entries for one site: silently letting the last one win would mask
// a corrupt or hand-edited file, so the whole load is rejected.
var ErrDuplicateSite = errors.New("rules: duplicate site in snapshot")

// Store is a concurrency-safe collection of per-site extraction rules with
// JSON persistence.
type Store struct {
	mu    sync.RWMutex
	rules map[string]Rule
}

// NewStore returns an empty rule store.
func NewStore() *Store {
	return &Store{rules: make(map[string]Rule)}
}

// Put stores (or replaces) the rule for its site.
func (s *Store) Put(r Rule) error {
	if r.Site == "" {
		return errors.New("rules: rule has no site")
	}
	if !r.Valid() {
		return fmt.Errorf("rules: invalid rule for site %q", r.Site)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rules[r.Site] = r
	return nil
}

// Get returns the rule for the site, or ErrNotFound.
func (s *Store) Get(site string) (Rule, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	r, ok := s.rules[site]
	if !ok {
		return Rule{}, fmt.Errorf("%w: %s", ErrNotFound, site)
	}
	return r, nil
}

// Delete removes the rule for the site, if present.
func (s *Store) Delete(site string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.rules, site)
}

// Len returns the number of stored rules.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.rules)
}

// Sites returns the stored sites in sorted order.
func (s *Store) Sites() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	sites := make([]string, 0, len(s.rules))
	for site := range s.rules {
		sites = append(sites, site)
	}
	sort.Strings(sites)
	return sites
}

// WriteTo serializes the store as a JSON array sorted by site.
func (s *Store) WriteTo(w io.Writer) (int64, error) {
	s.mu.RLock()
	list := make([]Rule, 0, len(s.rules))
	for _, r := range s.rules {
		list = append(list, r)
	}
	s.mu.RUnlock()
	sort.Slice(list, func(i, j int) bool { return list[i].Site < list[j].Site })
	data, err := json.MarshalIndent(list, "", "  ")
	if err != nil {
		return 0, fmt.Errorf("rules: marshal: %w", err)
	}
	n, err := w.Write(append(data, '\n'))
	return int64(n), err
}

// ReadFrom loads rules from a JSON array — or from a versioned wrapper-farm
// snapshot (`{"version":2,"rules":[...]}`, see internal/farm), whose extra
// envelope and per-rule fields are ignored — merging into the store. The
// format is sniffed from the first JSON token, so the ominiserve -rules flag
// accepts both a Store.Save file and a farm -rule-store file.
//
// Malformed snapshots are rejected before anything merges: a declared
// envelope version above MaxSnapshotVersion returns ErrSnapshotVersion,
// and two entries naming one site return ErrDuplicateSite (silent
// last-wins would hide a corrupt or hand-edited file). Entries missing
// replay fields are skipped, as before — an individually invalid rule
// is a degraded entry, not evidence the whole file is untrustworthy.
func (s *Store) ReadFrom(r io.Reader) (int64, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return int64(len(data)), fmt.Errorf("rules: read: %w", err)
	}
	var list []Rule
	if isJSONObject(data) {
		var envelope struct {
			Version int    `json:"version"`
			Rules   []Rule `json:"rules"`
		}
		if err := json.Unmarshal(data, &envelope); err != nil {
			return int64(len(data)), fmt.Errorf("rules: unmarshal snapshot: %w", err)
		}
		if envelope.Version > MaxSnapshotVersion {
			return int64(len(data)), fmt.Errorf("%w: %d > %d", ErrSnapshotVersion, envelope.Version, MaxSnapshotVersion)
		}
		list = envelope.Rules
	} else if err := json.Unmarshal(data, &list); err != nil {
		return int64(len(data)), fmt.Errorf("rules: unmarshal: %w", err)
	}
	seen := make(map[string]bool, len(list))
	for _, rule := range list {
		if rule.Site == "" {
			continue
		}
		if seen[rule.Site] {
			return int64(len(data)), fmt.Errorf("%w: %q", ErrDuplicateSite, rule.Site)
		}
		seen[rule.Site] = true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, rule := range list {
		if rule.Site != "" && rule.Valid() {
			s.rules[rule.Site] = rule
		}
	}
	return int64(len(data)), nil
}

// isJSONObject reports whether the document's first token opens an
// object (a versioned snapshot envelope) rather than an array.
func isJSONObject(data []byte) bool {
	for _, b := range data {
		switch b {
		case ' ', '\t', '\n', '\r':
			continue
		}
		return b == '{'
	}
	return false
}

// Save writes the store to a file.
func (s *Store) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("rules: save: %w", err)
	}
	defer f.Close()
	if _, err := s.WriteTo(f); err != nil {
		return err
	}
	return f.Close()
}

// Load reads a store from a file created by Save.
func Load(path string) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("rules: load: %w", err)
	}
	defer f.Close()
	s := NewStore()
	if _, err := s.ReadFrom(f); err != nil {
		return nil, err
	}
	return s, nil
}
