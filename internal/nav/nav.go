// Package nav discovers result-list navigation on extracted pages: the
// next-page link an aggregation service follows to gather the full result
// set (the crawl loop around the paper's Figure 3 pipeline), and numbered
// pagination bars. Like the rest of the system it is heuristic and fully
// automatic.
package nav

import (
	"strconv"
	"strings"

	"omini/internal/tagtree"
)

// nextWords are anchor texts that signal the next result page, checked
// after whitespace collapsing and lower-casing.
var nextWords = map[string]bool{
	"next":            true,
	"next page":       true,
	"next 10":         true,
	"next 20":         true,
	"next results":    true,
	"more":            true,
	"more results":    true,
	">":               true,
	">>":              true,
	"›":               true,
	"»":               true,
	"next →":          true,
	"show more":       true,
	"view more":       true,
	"next 10 matches": true,
	"next 20 records": true,
}

// FindNext returns the href of the most plausible next-page link on the
// page, preferring an explicit rel="next" anchor, then next-flavored link
// text (with "next N ..." prefixes recognized), then a numbered pagination
// bar's successor. ok is false when the page offers no next link.
func FindNext(root *tagtree.Node) (href string, ok bool) {
	var relNext, textNext string
	root.Walk(func(n *tagtree.Node) bool {
		if n.Tag != "a" {
			return true
		}
		target := attr(n, "href")
		if target == "" {
			return true
		}
		if strings.EqualFold(attr(n, "rel"), "next") && relNext == "" {
			relNext = target
		}
		if textNext == "" && isNextText(n.InnerText()) {
			textNext = target
		}
		return true
	})
	switch {
	case relNext != "":
		return relNext, true
	case textNext != "":
		return textNext, true
	}
	if bar := FindPagination(root); bar != nil {
		if next := bar.Next(); next != "" {
			return next, true
		}
	}
	return "", false
}

// isNextText reports whether anchor text announces the next page.
func isNextText(text string) bool {
	t := strings.ToLower(strings.Join(strings.Fields(text), " "))
	if nextWords[t] {
		return true
	}
	// "next 20 records", "next 10 hits", ... — any phrase led by "next".
	return strings.HasPrefix(t, "next ")
}

// Pagination is a numbered page bar: links labelled 1, 2, 3... plus the
// current (unlinked) page number.
type Pagination struct {
	// Current is the page number rendered without a link (the page being
	// viewed); 0 when every number is linked.
	Current int
	// Links maps page numbers to hrefs.
	Links map[int]string
}

// Next returns the href of Current+1, or of the smallest numbered link
// when the current page is unknown; "" when absent.
func (p *Pagination) Next() string {
	if p.Current > 0 {
		return p.Links[p.Current+1]
	}
	best := 0
	for n := range p.Links {
		if best == 0 || n < best {
			best = n
		}
	}
	return p.Links[best]
}

// FindPagination locates the densest run of numbered sibling links on the
// page (at least three consecutive numbers), or nil.
func FindPagination(root *tagtree.Node) *Pagination {
	var best *Pagination
	root.Walk(func(n *tagtree.Node) bool {
		if n.IsContent() {
			return true
		}
		p := paginationUnder(n)
		if p == nil {
			return true
		}
		if best == nil || len(p.Links) > len(best.Links) {
			best = p
		}
		return true
	})
	return best
}

// paginationUnder inspects one parent's children for a numbered bar.
func paginationUnder(parent *tagtree.Node) *Pagination {
	links := make(map[int]string)
	current := 0
	for _, c := range parent.Children {
		switch {
		case c.IsContent():
			if n, err := strconv.Atoi(strings.TrimSpace(c.Text)); err == nil && plausiblePage(n) {
				current = n
			}
		case c.Tag == "a":
			text := strings.TrimSpace(c.InnerText())
			n, err := strconv.Atoi(text)
			if err != nil || !plausiblePage(n) {
				continue
			}
			if target := attr(c, "href"); target != "" {
				links[n] = target
			}
		case c.Tag == "b", c.Tag == "strong", c.Tag == "font", c.Tag == "span":
			// The current page is often wrapped for emphasis.
			if n, err := strconv.Atoi(strings.TrimSpace(c.InnerText())); err == nil && plausiblePage(n) {
				current = n
			}
		}
	}
	if !isNumberRun(links, current) {
		return nil
	}
	return &Pagination{Current: current, Links: links}
}

// plausiblePage bounds page numbers; result sets are not millions of pages
// and years/IDs should not read as pagination.
func plausiblePage(n int) bool { return n >= 1 && n <= 999 }

// isNumberRun requires at least three numbers forming a consecutive run
// (counting the unlinked current page).
func isNumberRun(links map[int]string, current int) bool {
	if len(links) == 0 {
		return false
	}
	present := make(map[int]bool, len(links)+1)
	for n := range links {
		present[n] = true
	}
	if current > 0 {
		present[current] = true
	}
	if len(present) < 3 {
		return false
	}
	run, bestRun := 0, 0
	for n := 1; n <= 1000; n++ {
		if present[n] {
			run++
			if run > bestRun {
				bestRun = run
			}
		} else {
			run = 0
		}
	}
	return bestRun >= 3
}

func attr(n *tagtree.Node, name string) string {
	for _, a := range n.Attrs {
		if a.Name == name {
			return a.Value
		}
	}
	return ""
}
