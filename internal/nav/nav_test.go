package nav

import (
	"testing"

	"omini/internal/sitegen"
	"omini/internal/tagtree"
)

func parse(t *testing.T, src string) *tagtree.Node {
	t.Helper()
	root, err := tagtree.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return root
}

func TestFindNextByText(t *testing.T) {
	tests := []struct {
		name string
		give string
		want string
	}{
		{"plain next", `<body><a href="/p2">Next</a></body>`, "/p2"},
		{"next page", `<body><a href="/p2">Next page</a></body>`, "/p2"},
		{"next n records", `<body><a href="/p2">Next 20 records</a></body>`, "/p2"},
		{"more results", `<body><a href="/p2">More results</a></body>`, "/p2"},
		{"angle quote", `<body><a href="/p2">&raquo;</a></body>`, "/p2"},
		{"case insensitive", `<body><a href="/p2">NEXT</a></body>`, "/p2"},
		{"nested markup", `<body><a href="/p2"><b>Next</b></a></body>`, "/p2"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, ok := FindNext(parse(t, tt.give))
			if !ok || got != tt.want {
				t.Errorf("FindNext = %q, %v; want %q", got, ok, tt.want)
			}
		})
	}
}

func TestFindNextPrefersRelNext(t *testing.T) {
	root := parse(t, `<body>
		<a href="/wrong">Next</a>
		<a href="/right" rel="next">continue</a>
	</body>`)
	got, ok := FindNext(root)
	if !ok || got != "/right" {
		t.Errorf("FindNext = %q, %v; want /right", got, ok)
	}
}

func TestFindNextAbsent(t *testing.T) {
	for _, src := range []string{
		`<body><a href="/home">Home</a><a href="/about">About</a></body>`,
		`<body><p>no links at all</p></body>`,
		`<body><a>Next</a></body>`, // next text but no href
	} {
		if got, ok := FindNext(parse(t, src)); ok {
			t.Errorf("FindNext(%q) = %q, want none", src, got)
		}
	}
}

func TestPaginationBar(t *testing.T) {
	root := parse(t, `<body><p>Results</p><div>
		<a href="/q?p=1">1</a> <b>2</b> <a href="/q?p=3">3</a>
		<a href="/q?p=4">4</a> <a href="/q?p=5">5</a>
	</div></body>`)
	bar := FindPagination(root)
	if bar == nil {
		t.Fatal("no pagination found")
	}
	if bar.Current != 2 {
		t.Errorf("current = %d, want 2", bar.Current)
	}
	if got := bar.Next(); got != "/q?p=3" {
		t.Errorf("Next = %q, want /q?p=3", got)
	}
	// FindNext falls through to the bar when no next-text link exists.
	href, ok := FindNext(root)
	if !ok || href != "/q?p=3" {
		t.Errorf("FindNext = %q, %v", href, ok)
	}
}

func TestPaginationCurrentAsBareText(t *testing.T) {
	root := parse(t, `<body><div>
		1 <a href="/p2">2</a> <a href="/p3">3</a> <a href="/p4">4</a>
	</div></body>`)
	bar := FindPagination(root)
	if bar == nil {
		t.Fatal("no pagination found")
	}
	if bar.Current != 1 || bar.Next() != "/p2" {
		t.Errorf("current=%d next=%q", bar.Current, bar.Next())
	}
}

func TestPaginationRejectsSparseNumbers(t *testing.T) {
	// Two numbered links do not make a bar; neither do non-consecutive
	// numbers (years, SKUs).
	for _, src := range []string{
		`<body><div><a href="/a">1</a> <a href="/b">2</a></div></body>`,
		`<body><div><a href="/a">3</a> <a href="/b">17</a> <a href="/c">99</a></div></body>`,
		`<body><div><a href="/a">1998</a> <a href="/b">1999</a> <a href="/c">2000</a></div></body>`,
	} {
		if bar := FindPagination(parse(t, src)); bar != nil {
			t.Errorf("FindPagination(%q) = %+v, want nil", src, bar)
		}
	}
}

func TestPaginationYearsOutOfRange(t *testing.T) {
	// Consecutive years are in range only if <= 999; 1998-2000 must not
	// count (covered above); 7 8 9 must.
	root := parse(t, `<body><div>
		<a href="/p7">7</a> <a href="/p8">8</a> <a href="/p9">9</a>
	</div></body>`)
	if FindPagination(root) == nil {
		t.Error("consecutive small numbers rejected")
	}
}

// The generated corpus's inline footers carry "Next page" links; FindNext
// must locate them on real pages.
func TestFindNextOnCorpusPages(t *testing.T) {
	spec := sitegen.SiteSpec{
		Name: "nav.example", Domain: sitegen.DomainSearch,
		LayoutName: "para-div",
		Noise:      sitegen.NoiseSpec{InlineHeader: true, InlineFooter: true},
		MinItems:   6, MaxItems: 10,
	}
	page := spec.Page(0)
	root := parse(t, page.HTML)
	href, ok := FindNext(root)
	if !ok || href != "/next" {
		t.Errorf("FindNext on corpus page = %q, %v", href, ok)
	}
}

func TestNextOnEmptyPagination(t *testing.T) {
	p := &Pagination{Links: map[int]string{}}
	if got := p.Next(); got != "" {
		t.Errorf("Next on empty bar = %q", got)
	}
}
