package combine

import (
	"strings"

	"omini/internal/separator"
)

// letterOrder fixes the canonical ordering of heuristic letters in
// combination names, matching the paper's usage (HC→H, IT→T, RP→R, SD→S,
// IPS→I, PP→P, SB→B; "RSIPB" is the all-five Omini combination, "HTRS" the
// BYU one).
const letterOrder = "HTRSIPB"

// Combination is a named set of separator heuristics evaluated together.
type Combination struct {
	// Name is the letter acronym, e.g. "RSIPB".
	Name string
	// Heuristics are the members, in canonical letter order.
	Heuristics []separator.Heuristic
}

// NewCombination builds a Combination from any set of heuristics,
// normalizing the member order and name.
func NewCombination(hs []separator.Heuristic) Combination {
	ordered := make([]separator.Heuristic, 0, len(hs))
	for _, letter := range letterOrder {
		for _, h := range hs {
			if rune(h.Letter()) == letter {
				ordered = append(ordered, h)
			}
		}
	}
	var name strings.Builder
	for _, h := range ordered {
		name.WriteByte(h.Letter())
	}
	return Combination{Name: name.String(), Heuristics: ordered}
}

// RSIPB returns the paper's best combination: all five Omini heuristics.
func RSIPB() Combination {
	return NewCombination(separator.All())
}

// HTRS returns the BYU four-heuristic combination of Section 6.7 (HC, IT,
// RP, SD — everything in Embley et al. except the ontology heuristic).
func HTRS() Combination {
	return NewCombination([]separator.Heuristic{
		separator.HC(), separator.IT(), separator.RP(), separator.SD(),
	})
}

// Combinations enumerates every subset of hs with at least minSize members,
// in order of increasing size then canonical letter order. With the five
// Omini heuristics and minSize 2 this yields the paper's 26 combinations
// (C(5,2)+C(5,3)+C(5,4)+C(5,5) = 10+10+5+1).
func Combinations(hs []separator.Heuristic, minSize int) []Combination {
	var out []Combination
	n := len(hs)
	for size := minSize; size <= n; size++ {
		idx := make([]int, size)
		for i := range idx {
			idx[i] = i
		}
		for {
			subset := make([]separator.Heuristic, size)
			for i, j := range idx {
				subset[i] = hs[j]
			}
			out = append(out, NewCombination(subset))
			// Advance the combination index vector.
			i := size - 1
			for i >= 0 && idx[i] == n-size+i {
				i--
			}
			if i < 0 {
				break
			}
			idx[i]++
			for j := i + 1; j < size; j++ {
				idx[j] = idx[j-1] + 1
			}
		}
	}
	return out
}
