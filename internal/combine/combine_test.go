package combine

import (
	"math"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"omini/internal/separator"
	"omini/internal/sitegen"
	"omini/internal/tagtree"
)

func chosenSubtree(t *testing.T, page sitegen.Page) *tagtree.Node {
	t.Helper()
	root, err := tagtree.Parse(page.HTML)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	sub := tagtree.FindPath(root, page.Truth.SubtreePath)
	if sub == nil {
		t.Fatalf("truth path %q missing", page.Truth.SubtreePath)
	}
	return sub
}

// The paper's Section 6.2 example: compound probability of 78%, 63% and 85%
// is 89% by inclusion–exclusion.
func TestInclusionExclusionExample(t *testing.T) {
	miss := (1 - 0.78) * (1 - 0.63) * (1 - 0.85)
	got := 1 - miss
	if math.Abs(got-0.98779) > 1e-5 {
		t.Fatalf("sanity: %v", got)
	}
	// The paper rounds the printed intermediate differently (89% comes
	// from its worked arithmetic); what we verify here is the law itself:
	// P(A∪B) = P(A)+P(B)−P(A∩B) for two events.
	pa, pb := 0.78, 0.63
	union := pa + pb - pa*pb
	if math.Abs((1-(1-pa)*(1-pb))-union) > 1e-12 {
		t.Error("inclusion-exclusion identity violated")
	}
}

func TestProbTableLookup(t *testing.T) {
	table := PaperProbs()
	tests := []struct {
		heuristic string
		rank      int
		want      float64
	}{
		{"SD", 1, 0.78},
		{"PP", 1, 0.85},
		{"IPS", 2, 0.46},
		{"SB", 5, 0.03},
		{"SD", 6, 0},    // beyond table depth
		{"SD", 0, 0},    // invalid rank
		{"XX", 1, 0},    // unknown heuristic
		{"HC", 1, 0.79}, // BYU entries present
	}
	for _, tt := range tests {
		if got := table.Prob(tt.heuristic, tt.rank); got != tt.want {
			t.Errorf("Prob(%s,%d) = %v, want %v", tt.heuristic, tt.rank, got, tt.want)
		}
	}
}

func TestCombineOnReplicas(t *testing.T) {
	table := PaperProbs()
	for _, page := range []sitegen.Page{sitegen.LOC(), sitegen.Canoe()} {
		sub := chosenSubtree(t, page)
		cands := Combine(sub, separator.All(), table)
		if len(cands) == 0 {
			t.Fatalf("%s: no candidates", page.Name)
		}
		if !page.Truth.CorrectSeparator(cands[0].Tag) {
			t.Errorf("%s: combined top = %q (p=%.3f), want one of %v",
				page.Name, cands[0].Tag, cands[0].Prob, page.Truth.Separators)
		}
		if got := Best(sub, separator.All(), table); got != cands[0].Tag {
			t.Errorf("Best = %q, Combine top = %q", got, cands[0].Tag)
		}
		// Probabilities must be valid and sorted descending.
		for i, c := range cands {
			if c.Prob < 0 || c.Prob > 1 {
				t.Errorf("%s: P(%s) = %v out of range", page.Name, c.Tag, c.Prob)
			}
			if i > 0 && c.Prob > cands[i-1].Prob {
				t.Errorf("%s: ranking not sorted at %d", page.Name, i)
			}
		}
	}
}

// A tag ranked first by all five heuristics must collect a higher compound
// probability than any tag seen by fewer heuristics.
func TestCompoundEvidenceAccumulates(t *testing.T) {
	sub := chosenSubtree(t, sitegen.Canoe())
	cands := Combine(sub, separator.All(), PaperProbs())
	if cands[0].Tag != "table" {
		t.Fatalf("top = %q", cands[0].Tag)
	}
	if cands[0].Support != 5 {
		t.Errorf("table support = %d, want 5 (ranked by every heuristic)", cands[0].Support)
	}
	// The exact compound for five rank-1 probabilities:
	want := 1.0
	for _, p := range []float64{0.78, 0.73, 0.40, 0.85, 0.63} {
		want *= 1 - p
	}
	want = 1 - want
	if math.Abs(cands[0].Prob-want) > 1e-12 {
		t.Errorf("P(table) = %v, want %v", cands[0].Prob, want)
	}
}

func TestCombineEmptySubtree(t *testing.T) {
	root, err := tagtree.Parse(`<html><body><p>just text</p></body></html>`)
	if err != nil {
		t.Fatal(err)
	}
	p := root.FindAll("p")[0]
	if cands := Combine(p, separator.All(), PaperProbs()); len(cands) != 0 {
		t.Errorf("candidates on leaf subtree: %v", cands)
	}
	if got := Best(p, separator.All(), PaperProbs()); got != "" {
		t.Errorf("Best = %q, want empty", got)
	}
}

func TestNewCombinationCanonicalOrder(t *testing.T) {
	c := NewCombination([]separator.Heuristic{
		separator.SB(), separator.PP(), separator.SD(), separator.RP(), separator.IPS(),
	})
	if c.Name != "RSIPB" {
		t.Errorf("name = %q, want RSIPB", c.Name)
	}
	if got := RSIPB().Name; got != "RSIPB" {
		t.Errorf("RSIPB() name = %q", got)
	}
	if got := HTRS().Name; got != "HTRS" {
		t.Errorf("HTRS() name = %q", got)
	}
}

func TestCombinationsCount(t *testing.T) {
	// The paper: 26 combinations of the five heuristics beyond singles.
	combos := Combinations(separator.All(), 2)
	if len(combos) != 26 {
		t.Fatalf("got %d combinations, want 26", len(combos))
	}
	names := make(map[string]bool, len(combos))
	for _, c := range combos {
		if names[c.Name] {
			t.Errorf("duplicate combination %q", c.Name)
		}
		names[c.Name] = true
	}
	for _, want := range []string{"RS", "SI", "SB", "RIB", "RSB", "SIB", "RP",
		"SP", "IP", "PB", "RSI", "RIP", "RSP", "SIP", "SPB", "RSIP", "RSIB",
		"RSPB", "SIPB", "RIPB", "RPB", "IPB", "IB", "RB", "RI", "RSIPB"} {
		if !names[want] {
			t.Errorf("missing combination %q (paper Table 11)", want)
		}
	}
	// BYU: four heuristics yield 11 combinations of size >= 2.
	byu := Combinations(HTRS().Heuristics, 2)
	if len(byu) != 11 {
		t.Errorf("BYU combinations = %d, want 11 (Table 20)", len(byu))
	}
}

func TestCombinationsIncludeSingles(t *testing.T) {
	combos := Combinations(separator.All(), 1)
	if len(combos) != 31 {
		t.Fatalf("got %d, want 31 (26 + 5 singles)", len(combos))
	}
	var singles []string
	for _, c := range combos {
		if len(c.Heuristics) == 1 {
			singles = append(singles, c.Name)
		}
	}
	sort.Strings(singles)
	if want := []string{"B", "I", "P", "R", "S"}; !reflect.DeepEqual(singles, want) {
		t.Errorf("singles = %v, want %v", singles, want)
	}
}

// Property: compound probability never decreases when another heuristic's
// evidence is added.
func TestCompoundMonotoneProperty(t *testing.T) {
	f := func(raw []float64) bool {
		miss := 1.0
		prev := 0.0
		for _, p := range raw {
			p = math.Abs(p)
			p -= math.Floor(p) // clamp into [0,1)
			miss *= 1 - p
			cur := 1 - miss
			if cur+1e-12 < prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
