// Package combine implements the probabilistic combination of object
// separator heuristics from the paper's Section 6: each heuristic carries an
// empirical probability that its rank-r candidate is the correct separator
// (Table 10); the evidence of several independent heuristics for one tag is
// merged with the inclusion–exclusion law P(A∪B) = P(A)+P(B)−P(A∩B); and
// the tag with the highest compound probability wins. The package also
// enumerates all 26 heuristic combinations so the Table 11 sweep can be
// reproduced, and implements the BYU HTRS combination for Section 6.7.
package combine

import (
	"omini/internal/govern"
	"omini/internal/separator"
	"omini/internal/tagtree"
)

// maxRank is the deepest rank carrying probability mass in the paper's
// tables; candidates ranked deeper contribute no evidence.
const maxRank = 5

// ProbTable maps a heuristic name to the empirical probability that its
// candidate at rank r (1-based, index r-1) is the correct separator.
type ProbTable map[string][]float64

// PaperProbs returns the rank-probability distribution the paper reports
// for its test data (Table 10 for the Omini heuristics, Table 20 for BYU's
// HC and IT). It is the default evidence table for the combined algorithm;
// the evaluation harness can substitute a table measured on this
// repository's own corpus.
func PaperProbs() ProbTable {
	return ProbTable{
		"SD":  {0.78, 0.18, 0.10, 0.00, 0.00},
		"RP":  {0.73, 0.13, 0.00, 0.00, 0.00},
		"IPS": {0.40, 0.46, 0.13, 0.07, 0.00},
		"PP":  {0.85, 0.06, 0.02, 0.00, 0.00},
		"SB":  {0.63, 0.17, 0.12, 0.06, 0.03},
		"HC":  {0.79, 0.13, 0.14, 0.00, 0.00},
		"IT":  {0.46, 0.33, 0.20, 0.06, 0.00},
	}
}

// Prob returns the probability the table assigns to rank (1-based) of the
// named heuristic; 0 when the heuristic or rank is unknown.
func (t ProbTable) Prob(heuristic string, rank int) float64 {
	probs, ok := t[heuristic]
	if !ok || rank < 1 || rank > len(probs) || rank > maxRank {
		return 0
	}
	return probs[rank-1]
}

// Candidate is one entry of the combined ranking.
type Candidate struct {
	// Tag is the candidate separator tag.
	Tag string
	// Prob is the compound probability that Tag is the correct separator.
	Prob float64
	// Support counts how many heuristics ranked the tag at all.
	Support int
}

// RankedList is one heuristic's candidate ranking, named so the probability
// table can be consulted.
type RankedList struct {
	// Name is the heuristic's short name ("SD", "RP", ...).
	Name string
	// Ranked is the heuristic's candidate list, best first.
	Ranked []separator.Ranked
}

// RankAll runs each heuristic once on the subtree, sharing one
// separator.Stats index across all of them. The result feeds CombineLists,
// letting callers (like the 26-combination sweep) evaluate many combinations
// without re-running the heuristics.
func RankAll(sub *tagtree.Node, heuristics []separator.Heuristic) []RankedList {
	return rankAllWith(separator.NewStats(sub), heuristics)
}

func rankAllWith(st *separator.Stats, heuristics []separator.Heuristic) []RankedList {
	lists := make([]RankedList, len(heuristics))
	for i, h := range heuristics {
		lists[i] = RankedList{Name: h.Name(), Ranked: separator.RankWith(st, h)}
	}
	return lists
}

// Combine runs every heuristic on the subtree, converts ranks to
// probabilities via the table, and merges per-tag evidence with
// inclusion–exclusion: P(t) = 1 − Π_h (1 − p_h(t)). The result is sorted by
// descending compound probability; ties prefer broader support, then the
// tag's first appearance among the subtree's children. One Stats index over
// the subtree serves every heuristic and the tie-break map.
func Combine(sub *tagtree.Node, heuristics []separator.Heuristic, table ProbTable) []Candidate {
	cands, _ := CombineDetailed(sub, heuristics, table)
	return cands
}

// CombineDetailed is Combine, additionally returning each heuristic's own
// ranking (already computed as the combination's input). The lists feed the
// decision trace: per-heuristic candidate rankings with scores, at no cost
// beyond what Combine already does.
func CombineDetailed(sub *tagtree.Node, heuristics []separator.Heuristic, table ProbTable) ([]Candidate, []RankedList) {
	cands, lists, _ := CombineDetailedGoverned(sub, heuristics, table, nil)
	return cands, lists
}

// CombineDetailedGoverned is CombineDetailed under a resource guard:
// the shared Stats index scan polls the page context and the guard is
// re-checked between heuristics, so a cancelled or out-of-time page
// stops after the current heuristic instead of ranking all of them.
// A nil guard makes it identical to CombineDetailed.
func CombineDetailedGoverned(sub *tagtree.Node, heuristics []separator.Heuristic, table ProbTable, g *govern.Guard) ([]Candidate, []RankedList, error) {
	st, err := separator.NewStatsGoverned(sub, g)
	if err != nil {
		return nil, nil, err
	}
	lists := make([]RankedList, len(heuristics))
	for i, h := range heuristics {
		if err := g.Check(); err != nil {
			return nil, nil, err
		}
		lists[i] = RankedList{Name: h.Name(), Ranked: separator.RankWith(st, h)}
	}
	if err := g.Check(); err != nil {
		return nil, nil, err
	}
	return CombineLists(lists, table, st.FirstIndex()), lists, nil
}

// CombineLists merges pre-computed heuristic rankings, as Combine does.
// tieBreak maps tags to their document position for deterministic ordering
// of equal-probability candidates (ChildFirstIndex supplies it); nil is
// allowed.
func CombineLists(lists []RankedList, table ProbTable, tieBreak map[string]int) []Candidate {
	type acc struct {
		miss    float64 // Π (1 − p_h)
		support int
	}
	accs := make(map[string]*acc)
	var tags []string
	for _, list := range lists {
		for i, r := range list.Ranked {
			p := table.Prob(list.Name, i+1)
			a, ok := accs[r.Tag]
			if !ok {
				a = &acc{miss: 1}
				accs[r.Tag] = a
				tags = append(tags, r.Tag)
			}
			a.support++
			a.miss *= 1 - p
		}
	}
	out := make([]Candidate, 0, len(tags))
	for _, tag := range tags {
		a := accs[tag]
		out = append(out, Candidate{Tag: tag, Prob: 1 - a.miss, Support: a.support})
	}
	sortCandidates(out, tieBreak)
	return out
}

// ChildFirstIndex maps each child tag of sub to the index of its first
// appearance, the tie-break CombineLists expects.
func ChildFirstIndex(sub *tagtree.Node) map[string]int {
	return childFirstIndex(sub)
}

// Best returns the combined algorithm's chosen separator tag, or "" when no
// heuristic produced a candidate.
func Best(sub *tagtree.Node, heuristics []separator.Heuristic, table ProbTable) string {
	cands := Combine(sub, heuristics, table)
	if len(cands) == 0 {
		return ""
	}
	return cands[0].Tag
}

// childFirstIndex maps each child tag of sub to the index of its first
// appearance, for deterministic tie-breaks.
func childFirstIndex(sub *tagtree.Node) map[string]int {
	m := make(map[string]int)
	for i, c := range sub.Children {
		if c.IsContent() {
			continue
		}
		if _, ok := m[c.Tag]; !ok {
			m[c.Tag] = i
		}
	}
	return m
}

func sortCandidates(cands []Candidate, firstChild map[string]int) {
	pos := func(tag string) int {
		if p, ok := firstChild[tag]; ok {
			return p
		}
		return 1 << 30
	}
	// Insertion sort keeps the dependency surface zero and the candidate
	// lists are tiny (one entry per distinct child tag).
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0; j-- {
			a, b := cands[j-1], cands[j]
			less := b.Prob > a.Prob ||
				(b.Prob == a.Prob && b.Support > a.Support) ||
				(b.Prob == a.Prob && b.Support == a.Support && pos(b.Tag) < pos(a.Tag))
			if !less {
				break
			}
			cands[j-1], cands[j] = b, a
		}
	}
}
