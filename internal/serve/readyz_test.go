package serve

import (
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"omini/internal/rules"
)

func getStatus(t *testing.T, url string) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	return resp.StatusCode
}

// Without a rules snapshot there is nothing to wait for: the server is
// ready from the first request.
func TestReadyzImmediateWithoutSnapshot(t *testing.T) {
	ts := newTestServer(t)
	if got := getStatus(t, ts.URL+"/readyz"); got != http.StatusOK {
		t.Errorf("/readyz = %d, want 200", got)
	}
}

// A snapshot that loads flips readiness; a snapshot that cannot load
// leaves the server alive (healthz 200) but not ready (readyz 503) —
// the split that keeps a bad deploy out of rotation without restarting
// it into a crash loop.
func TestReadyzGatedOnRuleSnapshot(t *testing.T) {
	good := filepath.Join(t.TempDir(), "rules.json")
	if err := rules.NewStore().Save(good); err != nil {
		t.Fatal(err)
	}
	srv := New(Config{RulesFile: good})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	if got := getStatus(t, ts.URL+"/readyz"); got != http.StatusOK {
		t.Errorf("loaded snapshot: /readyz = %d, want 200", got)
	}
	if !srv.Ready() {
		t.Error("Ready() = false after successful snapshot load")
	}

	bad := New(Config{RulesFile: filepath.Join(t.TempDir(), "missing.json")})
	tsBad := httptest.NewServer(bad)
	defer tsBad.Close()
	if got := getStatus(t, tsBad.URL+"/readyz"); got != http.StatusServiceUnavailable {
		t.Errorf("missing snapshot: /readyz = %d, want 503", got)
	}
	if got := getStatus(t, tsBad.URL+"/healthz"); got != http.StatusOK {
		t.Errorf("missing snapshot: /healthz = %d, want 200 (alive, not ready)", got)
	}
	if bad.Ready() {
		t.Error("Ready() = true with a failed snapshot load")
	}
}
