// Package serve implements the HTTP extraction service behind
// cmd/ominiserve: Omini as a component of an information aggregation
// system. Clients POST raw HTML and receive extracted objects or
// wrapper-projected records; discovered rules and wrappers are cached per
// site, so a site's first page pays for discovery and the rest take the
// fast path. A rule that stops matching (the site changed) is relearned
// transparently.
package serve

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"sync"

	"omini/internal/core"
	"omini/internal/nav"
	"omini/internal/rules"
	"omini/internal/wrapgen"
)

// Config tunes the service.
type Config struct {
	// MaxBodyBytes caps request bodies (default 8 MiB).
	MaxBodyBytes int64
}

// Server is the HTTP handler. Create with New.
type Server struct {
	cfg       Config
	mux       *http.ServeMux
	extractor *core.Extractor

	mu       sync.RWMutex
	rules    *rules.Store
	wrappers map[string]*wrapgen.Wrapper
}

// New returns a ready-to-serve handler.
func New(cfg Config) *Server {
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 8 << 20
	}
	s := &Server{
		cfg:       cfg,
		mux:       http.NewServeMux(),
		extractor: core.New(core.Options{}),
		rules:     rules.NewStore(),
		wrappers:  make(map[string]*wrapgen.Wrapper),
	}
	s.mux.HandleFunc("POST /extract", s.handleExtract)
	s.mux.HandleFunc("POST /records", s.handleRecords)
	s.mux.HandleFunc("GET /rules", s.handleRules)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		_, _ = io.WriteString(w, "ok\n")
	})
	return s
}

// ServeHTTP dispatches to the service's endpoints.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// objectResponse is the /extract payload.
type objectResponse struct {
	Site        string  `json:"site,omitempty"`
	SubtreePath string  `json:"subtreePath"`
	Separator   string  `json:"separator"`
	Confidence  float64 `json:"confidence"`
	FromRule    bool    `json:"fromRule"`
	// NextPage is the discovered next-result-page link, when the page has
	// one — the crawl pointer an aggregator follows.
	NextPage string      `json:"nextPage,omitempty"`
	Objects  []objectDTO `json:"objects"`
}

type objectDTO struct {
	Index int    `json:"index"`
	Text  string `json:"text"`
	Size  int    `json:"sizeBytes"`
}

func (s *Server) handleExtract(w http.ResponseWriter, r *http.Request) {
	html, site, ok := s.readPage(w, r)
	if !ok {
		return
	}
	res, fromRule, err := s.extract(site, html)
	if err != nil {
		httpError(w, err)
		return
	}
	resp := objectResponse{
		Site:        site,
		SubtreePath: res.SubtreePath,
		Separator:   res.Separator,
		Confidence:  res.Confidence(),
		FromRule:    fromRule,
	}
	if res.Tree != nil {
		if next, ok := nav.FindNext(res.Tree); ok {
			resp.NextPage = next
		}
	}
	for i, o := range res.Objects {
		resp.Objects = append(resp.Objects, objectDTO{Index: i + 1, Text: o.Text(), Size: o.Size()})
	}
	writeJSON(w, resp)
}

// recordResponse is the /records payload.
type recordResponse struct {
	Site    string           `json:"site"`
	Fields  []wrapgen.Field  `json:"fields"`
	Records []wrapgen.Record `json:"records"`
}

func (s *Server) handleRecords(w http.ResponseWriter, r *http.Request) {
	html, site, ok := s.readPage(w, r)
	if !ok {
		return
	}
	if site == "" {
		http.Error(w, "records endpoint requires ?site=", http.StatusBadRequest)
		return
	}
	wrapper, err := s.wrapperFor(site, html)
	if err != nil {
		httpError(w, err)
		return
	}
	// Wrapper evolution: a page that no longer resembles the training page
	// triggers relearning before extraction goes wrong quietly.
	if stale, err := wrapper.Stale(html, wrapgen.DefaultDriftThreshold); err == nil && stale {
		if relearned, err := s.relearnWrapper(site, html); err == nil {
			wrapper = relearned
		}
	}
	records, err := wrapper.Extract(html)
	if err != nil {
		// The cached wrapper no longer matches; relearn once.
		wrapper, err = s.relearnWrapper(site, html)
		if err != nil {
			httpError(w, err)
			return
		}
		if records, err = wrapper.Extract(html); err != nil {
			httpError(w, err)
			return
		}
	}
	writeJSON(w, recordResponse{Site: site, Fields: wrapper.Fields, Records: records})
}

func (s *Server) handleRules(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	w.Header().Set("Content-Type", "application/json")
	if _, err := s.rules.WriteTo(w); err != nil {
		httpError(w, err)
	}
}

// extract runs the cached-rule fast path when possible, falling back to
// (and caching) full discovery.
func (s *Server) extract(site, html string) (*core.Result, bool, error) {
	if site != "" {
		s.mu.RLock()
		rule, err := s.rules.Get(site)
		s.mu.RUnlock()
		if err == nil {
			if res, err := s.extractor.ExtractWithRule(html, rule); err == nil {
				return res, true, nil
			}
			// Stale rule: drop it and rediscover.
			s.mu.Lock()
			s.rules.Delete(site)
			delete(s.wrappers, site)
			s.mu.Unlock()
		}
	}
	res, err := s.extractor.Extract(html)
	if err != nil {
		return nil, false, err
	}
	if site != "" {
		s.mu.Lock()
		_ = s.rules.Put(res.Rule(site))
		s.mu.Unlock()
	}
	return res, false, nil
}

// wrapperFor returns the site's cached wrapper, learning one if needed.
func (s *Server) wrapperFor(site, html string) (*wrapgen.Wrapper, error) {
	s.mu.RLock()
	wrapper := s.wrappers[site]
	s.mu.RUnlock()
	if wrapper != nil {
		return wrapper, nil
	}
	return s.relearnWrapper(site, html)
}

func (s *Server) relearnWrapper(site, html string) (*wrapgen.Wrapper, error) {
	wrapper, err := wrapgen.Learn(site, html)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.wrappers[site] = wrapper
	_ = s.rules.Put(wrapper.Rule)
	s.mu.Unlock()
	return wrapper, nil
}

// readPage reads and validates the request body and site parameter.
func (s *Server) readPage(w http.ResponseWriter, r *http.Request) (html, site string, ok bool) {
	body, err := io.ReadAll(io.LimitReader(r.Body, s.cfg.MaxBodyBytes+1))
	if err != nil {
		http.Error(w, "read body: "+err.Error(), http.StatusBadRequest)
		return "", "", false
	}
	if int64(len(body)) > s.cfg.MaxBodyBytes {
		http.Error(w, "body exceeds limit", http.StatusRequestEntityTooLarge)
		return "", "", false
	}
	if len(body) == 0 {
		http.Error(w, "empty body", http.StatusBadRequest)
		return "", "", false
	}
	return string(body), r.URL.Query().Get("site"), true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// httpError maps extraction failures to status codes.
func httpError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, core.ErrNoObjects),
		errors.Is(err, wrapgen.ErrNoObjects),
		errors.Is(err, wrapgen.ErrNoFields):
		status = http.StatusUnprocessableEntity
	case errors.Is(err, core.ErrRuleMismatch):
		status = http.StatusConflict
	}
	http.Error(w, err.Error(), status)
}
