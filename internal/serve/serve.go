// Package serve implements the HTTP extraction service behind
// cmd/ominiserve: Omini as a component of an information aggregation
// system. Clients POST raw HTML and receive extracted objects or
// wrapper-projected records; discovered rules and wrappers are cached per
// site, so a site's first page pays for discovery and the rest take the
// fast path. A rule that stops matching (the site changed) is relearned
// transparently.
//
// The handler chain is hardened for production traffic: a panic anywhere
// in extraction returns a JSON 500 instead of killing the process, an
// in-flight cap sheds excess load with 429 + Retry-After, every request
// runs under a deadline, and all errors are structured JSON. The /statsz
// endpoint exposes the resilience counters so none of this is silent.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"strconv"
	"sync"
	"time"

	"omini/internal/core"
	"omini/internal/nav"
	"omini/internal/resilience"
	"omini/internal/rules"
	"omini/internal/wrapgen"
)

// Config tunes the service.
type Config struct {
	// MaxBodyBytes caps request bodies (default 8 MiB).
	MaxBodyBytes int64
	// MaxInFlight caps concurrent extractions; excess requests are shed
	// with 429 + Retry-After. 0 selects the default (256); negative
	// disables the cap.
	MaxInFlight int
	// RequestTimeout bounds each extraction request; timed-out requests
	// get 503. 0 selects the default (30s); negative disables it.
	RequestTimeout time.Duration
	// RetryAfter is the Retry-After hint on shed requests (default 1s).
	RetryAfter time.Duration
	// Stats receives the service's counters; nil uses resilience.Default.
	Stats *resilience.Stats
}

const (
	defaultMaxInFlight    = 256
	defaultRequestTimeout = 30 * time.Second
	defaultRetryAfter     = time.Second
)

// Server is the HTTP handler. Create with New.
type Server struct {
	cfg       Config
	handler   http.Handler
	extractor *core.Extractor
	limiter   *resilience.Limiter
	stats     *resilience.Stats

	mu       sync.RWMutex
	rules    *rules.Store
	wrappers map[string]*wrapgen.Wrapper
}

// New returns a ready-to-serve handler.
func New(cfg Config) *Server {
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 8 << 20
	}
	if cfg.MaxInFlight == 0 {
		cfg.MaxInFlight = defaultMaxInFlight
	}
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = defaultRequestTimeout
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = defaultRetryAfter
	}
	if cfg.Stats == nil {
		cfg.Stats = resilience.Default
	}
	s := &Server{
		cfg:       cfg,
		extractor: core.New(core.Options{}),
		limiter:   resilience.NewLimiter(cfg.MaxInFlight),
		stats:     cfg.Stats,
		rules:     rules.NewStore(),
		wrappers:  make(map[string]*wrapgen.Wrapper),
	}

	// Extraction endpoints run behind the load shed and request deadline;
	// health and stats probes stay outside so an overloaded server still
	// answers its operators.
	api := http.NewServeMux()
	api.HandleFunc("POST /extract", s.handleExtract)
	api.HandleFunc("POST /records", s.handleRecords)
	api.HandleFunc("GET /rules", s.handleRules)

	root := http.NewServeMux()
	root.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		_, _ = io.WriteString(w, "ok\n")
	})
	root.HandleFunc("GET /statsz", s.handleStatsz)
	root.Handle("/", s.withLimit(s.withTimeout(api)))

	s.handler = s.withRecovery(root)
	return s
}

// ServeHTTP dispatches through the hardened middleware chain.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.handler.ServeHTTP(w, r)
}

// withRecovery converts handler panics into JSON 500s: one pathological
// page must cost one request, never the process.
func (s *Server) withRecovery(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			rec := recover()
			if rec == nil {
				return
			}
			if rec == http.ErrAbortHandler { // deliberate connection abort
				panic(rec)
			}
			s.stats.Add("serve.panics", 1)
			log.Printf("serve: recovered panic on %s %s: %v", r.Method, r.URL.Path, rec)
			writeError(w, http.StatusInternalServerError, fmt.Sprintf("internal error: %v", rec))
		}()
		next.ServeHTTP(w, r)
	})
}

// withLimit sheds requests past the in-flight cap with 429 + Retry-After.
func (s *Server) withLimit(next http.Handler) http.Handler {
	if s.limiter == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !s.limiter.TryAcquire() {
			s.stats.Add("serve.shed", 1)
			w.Header().Set("Retry-After", strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
			writeError(w, http.StatusTooManyRequests, "server at capacity")
			return
		}
		defer s.limiter.Release()
		next.ServeHTTP(w, r)
	})
}

// withTimeout bounds each request; http.TimeoutHandler handles the
// handler-vs-deadline write race.
func (s *Server) withTimeout(next http.Handler) http.Handler {
	if s.cfg.RequestTimeout <= 0 {
		return next
	}
	body, _ := json.Marshal(errorResponse{Error: "request timed out", Status: http.StatusServiceUnavailable})
	return http.TimeoutHandler(next, s.cfg.RequestTimeout, string(body))
}

// statszResponse is the /statsz payload.
type statszResponse struct {
	// Counters are the cumulative resilience counters (retries, breaker
	// trips, shed requests, recovered panics, ...).
	Counters map[string]int64 `json:"counters"`
	// InFlight is the number of extraction requests currently running.
	InFlight int `json:"inFlight"`
	// MaxInFlight is the shed threshold (0 = unlimited).
	MaxInFlight int `json:"maxInFlight"`
	// CachedRules and CachedWrappers size the per-site caches.
	CachedRules    int `json:"cachedRules"`
	CachedWrappers int `json:"cachedWrappers"`
}

func (s *Server) handleStatsz(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	nrules, nwrap := s.rules.Len(), len(s.wrappers)
	s.mu.RUnlock()
	writeJSON(w, statszResponse{
		Counters:       s.stats.Snapshot(),
		InFlight:       s.limiter.InFlight(),
		MaxInFlight:    s.limiter.Cap(),
		CachedRules:    nrules,
		CachedWrappers: nwrap,
	})
}

// objectResponse is the /extract payload.
type objectResponse struct {
	Site        string  `json:"site,omitempty"`
	SubtreePath string  `json:"subtreePath"`
	Separator   string  `json:"separator"`
	Confidence  float64 `json:"confidence"`
	FromRule    bool    `json:"fromRule"`
	// NextPage is the discovered next-result-page link, when the page has
	// one — the crawl pointer an aggregator follows.
	NextPage string      `json:"nextPage,omitempty"`
	Objects  []objectDTO `json:"objects"`
}

type objectDTO struct {
	Index int    `json:"index"`
	Text  string `json:"text"`
	Size  int    `json:"sizeBytes"`
}

func (s *Server) handleExtract(w http.ResponseWriter, r *http.Request) {
	html, site, ok := s.readPage(w, r)
	if !ok {
		return
	}
	res, fromRule, err := s.extract(site, html)
	if err != nil {
		httpError(w, err)
		return
	}
	resp := objectResponse{
		Site:        site,
		SubtreePath: res.SubtreePath,
		Separator:   res.Separator,
		Confidence:  res.Confidence(),
		FromRule:    fromRule,
	}
	if res.Tree != nil {
		if next, ok := nav.FindNext(res.Tree); ok {
			resp.NextPage = next
		}
	}
	for i, o := range res.Objects {
		resp.Objects = append(resp.Objects, objectDTO{Index: i + 1, Text: o.Text(), Size: o.Size()})
	}
	writeJSON(w, resp)
}

// recordResponse is the /records payload.
type recordResponse struct {
	Site    string           `json:"site"`
	Fields  []wrapgen.Field  `json:"fields"`
	Records []wrapgen.Record `json:"records"`
}

func (s *Server) handleRecords(w http.ResponseWriter, r *http.Request) {
	html, site, ok := s.readPage(w, r)
	if !ok {
		return
	}
	if site == "" {
		writeError(w, http.StatusBadRequest, "records endpoint requires ?site=")
		return
	}
	wrapper, err := s.wrapperFor(site, html)
	if err != nil {
		httpError(w, err)
		return
	}
	// Wrapper evolution: a page that no longer resembles the training page
	// triggers relearning before extraction goes wrong quietly.
	if stale, err := wrapper.Stale(html, wrapgen.DefaultDriftThreshold); err == nil && stale {
		if relearned, err := s.relearnWrapper(site, html); err == nil {
			wrapper = relearned
		}
	}
	records, err := wrapper.Extract(html)
	if err != nil {
		// The cached wrapper no longer matches; relearn once.
		wrapper, err = s.relearnWrapper(site, html)
		if err != nil {
			httpError(w, err)
			return
		}
		if records, err = wrapper.Extract(html); err != nil {
			httpError(w, err)
			return
		}
	}
	writeJSON(w, recordResponse{Site: site, Fields: wrapper.Fields, Records: records})
}

func (s *Server) handleRules(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	w.Header().Set("Content-Type", "application/json")
	if _, err := s.rules.WriteTo(w); err != nil {
		httpError(w, err)
	}
}

// extract runs the cached-rule fast path when possible, falling back to
// (and caching) full discovery.
func (s *Server) extract(site, html string) (*core.Result, bool, error) {
	if site != "" {
		s.mu.RLock()
		rule, err := s.rules.Get(site)
		s.mu.RUnlock()
		if err == nil {
			if res, err := s.extractor.ExtractWithRule(html, rule); err == nil {
				return res, true, nil
			}
			// Stale rule: drop it and rediscover.
			s.mu.Lock()
			s.rules.Delete(site)
			delete(s.wrappers, site)
			s.mu.Unlock()
		}
	}
	res, err := s.extractor.Extract(html)
	if err != nil {
		return nil, false, err
	}
	if site != "" {
		s.mu.Lock()
		_ = s.rules.Put(res.Rule(site))
		s.mu.Unlock()
	}
	return res, false, nil
}

// wrapperFor returns the site's cached wrapper, learning one if needed.
func (s *Server) wrapperFor(site, html string) (*wrapgen.Wrapper, error) {
	s.mu.RLock()
	wrapper := s.wrappers[site]
	s.mu.RUnlock()
	if wrapper != nil {
		return wrapper, nil
	}
	return s.relearnWrapper(site, html)
}

func (s *Server) relearnWrapper(site, html string) (*wrapgen.Wrapper, error) {
	wrapper, err := wrapgen.Learn(site, html)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.wrappers[site] = wrapper
	_ = s.rules.Put(wrapper.Rule)
	s.mu.Unlock()
	return wrapper, nil
}

// readPage reads and validates the request body and site parameter.
func (s *Server) readPage(w http.ResponseWriter, r *http.Request) (html, site string, ok bool) {
	body, err := io.ReadAll(io.LimitReader(r.Body, s.cfg.MaxBodyBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, "read body: "+err.Error())
		return "", "", false
	}
	if int64(len(body)) > s.cfg.MaxBodyBytes {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("body exceeds %d-byte limit", s.cfg.MaxBodyBytes))
		return "", "", false
	}
	if len(body) == 0 {
		writeError(w, http.StatusBadRequest, "empty body")
		return "", "", false
	}
	return string(body), r.URL.Query().Get("site"), true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// errorResponse is the structured error payload every failure returns.
type errorResponse struct {
	Error  string `json:"error"`
	Status int    `json:"status"`
}

// writeError sends a structured JSON error with the given status.
func writeError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(errorResponse{Error: msg, Status: status})
}

// httpError maps extraction failures to status codes.
func httpError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, core.ErrNoObjects),
		errors.Is(err, wrapgen.ErrNoObjects),
		errors.Is(err, wrapgen.ErrNoFields):
		status = http.StatusUnprocessableEntity
	case errors.Is(err, core.ErrRuleMismatch):
		status = http.StatusConflict
	}
	writeError(w, status, err.Error())
}
