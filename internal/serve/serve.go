// Package serve implements the HTTP extraction service behind
// cmd/ominiserve: Omini as a component of an information aggregation
// system. Clients POST raw HTML and receive extracted objects or
// wrapper-projected records; discovered rules and wrappers are cached per
// site, so a site's first page pays for discovery and the rest take the
// fast path. A rule that stops matching (the site changed) is relearned
// transparently.
//
// The handler chain is hardened for production traffic: a panic anywhere
// in extraction returns a JSON 500 instead of killing the process, an
// in-flight cap sheds excess load with 429 + Retry-After, every request
// runs under a deadline, and all errors are structured JSON.
//
// Nothing the service does is silent: every extraction runs under the
// obs registry, so /metricsz exposes Prometheus-style counters, gauges
// and per-phase latency histograms, /statsz keeps the legacy JSON counter
// view of the same registry, /debug/pprof/* serves the runtime profiles,
// each request emits one structured access-log line with its decision
// summary, and ?trace=1 on /extract returns the full decision trace
// inline.
//
// Extraction requests are additionally distributed-traced: each sampled
// request gets a 128-bit trace ID (adopted from the X-Omini-Trace header
// when a cluster coordinator forwarded it, freshly minted otherwise), its
// handler/farm/pipeline spans are recorded as one span tree, and finished
// traces land in a bounded tail-sampling buffer served by GET /tracez —
// errored and slowest traces are pinned, so the requests worth debugging
// survive buffer churn. The trace ID is stamped into the access-log line,
// JSON error bodies, and the latency histograms' exemplars.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"runtime/debug"
	rpprof "runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"omini/internal/core"
	"omini/internal/farm"
	"omini/internal/govern"
	"omini/internal/nav"
	"omini/internal/obs"
	"omini/internal/resilience"
	"omini/internal/rules"
	"omini/internal/wrapgen"
)

// Config tunes the service.
type Config struct {
	// MaxBodyBytes caps request bodies (default 8 MiB).
	MaxBodyBytes int64
	// MaxInFlight caps concurrent extractions; excess requests are shed
	// with 429 + Retry-After. 0 selects the default (256); negative
	// disables the cap.
	MaxInFlight int
	// RequestTimeout bounds each extraction request; timed-out requests
	// get 503. 0 selects the default (30s); negative disables it.
	RequestTimeout time.Duration
	// RetryAfter is the Retry-After hint on shed requests (default 1s).
	RetryAfter time.Duration
	// Stats receives the service's metrics (counters, gauges, phase
	// histograms); nil uses resilience.Default (the process registry).
	Stats *resilience.Stats
	// Logger receives the structured access and error log; nil uses
	// obs.DefaultLogger().
	Logger *obs.Logger
	// Limits is the per-extraction resource governor. Zero fields take
	// core.DefaultLimits(); violations surface as 413 (input too
	// large), 422 (budget exceeded) or 504 (page deadline).
	Limits core.Limits
	// RulesFile optionally seeds the rule store from a rules.Save
	// snapshot. Readiness (/readyz) is gated on the load: the server
	// answers 503 until the snapshot is in, so a load balancer or the
	// cluster health checker never routes shard traffic to a node whose
	// caches would miss. Empty means no snapshot and immediate
	// readiness. Farm snapshots (the -rule-store format) load here too.
	RulesFile string
	// RuleStorePath persists the wrapper farm's learned rules as a
	// versioned snapshot: loaded on boot, rewritten by the farm's
	// background sweeps and on Close, so learned rules survive
	// restarts. Empty disables persistence.
	RuleStorePath string
	// RelearnInterval is the farm's background revalidation period:
	// each sweep flags every cached rule for a drift check on its next
	// hit and flushes the rule store if dirty. 0 selects the farm
	// default (1m); negative disables the sweep.
	RelearnInterval time.Duration
	// TraceSampleRate is the fraction of extraction requests traced when
	// the client (or an upstream coordinator) did not decide: 0 selects
	// the default (trace everything), negative disables head sampling.
	// ?trace=1 always traces, and a sampled X-Omini-Trace header always
	// wins — the upstream hop already decided for the whole request.
	TraceSampleRate float64
	// TraceCapacity bounds the tail-sampling trace buffer behind
	// GET /tracez (default obs.DefaultTraceCapacity).
	TraceCapacity int
	// Traces is the trace sink; nil builds one with TraceCapacity. A
	// cluster node shares one sink between its coordinator and server so
	// both halves of a self-served request merge into one trace.
	Traces *obs.TraceSink
	// DeferReady holds /readyz at 503 after the rules load until
	// MarkReady is called. Cluster nodes set it when they sync rules
	// from ring peers on join: the health checker must not route shard
	// traffic to a node whose cache is still filling. Serving itself is
	// never gated — a request that arrives anyway is answered (learn on
	// miss), readiness only steers the routers.
	DeferReady bool
}

const (
	defaultMaxInFlight    = 256
	defaultRequestTimeout = 30 * time.Second
	defaultRetryAfter     = time.Second
)

// pipelinePhases are the spans the extraction pipeline records; they are
// pre-registered so /metricsz exposes every phase histogram from boot,
// before the first request arrives.
var pipelinePhases = []string{"tokenize", "tidy", "build", "subtree", "separator", "extract"}

// servingPhases are the serving-layer spans recorded above the pipeline
// on traced requests: the handler root span and the farm's fast/slow
// path spans. Pre-registered for the same from-boot reason.
var servingPhases = []string{"handler", "farm.fast", "farm.slow"}

// Registry series emitted by this package. One constant per series;
// registerMetrics pre-registers every one of them (plus core's) so a
// scrape of a fresh process already shows the full metric surface.
const (
	seriesRequests  = "serve.requests"
	seriesErrors    = "serve.errors"
	seriesPanics    = "serve.panics"
	seriesShed      = "serve.shed"
	seriesRuleHits  = "serve.rule_hits"
	seriesRuleStale = "serve.rule_stale"

	// Trace lifecycle: sampled counts requests that recorded a trace,
	// stored counts traces that reached the tail-sampling sink, evicted
	// counts traces the full sink displaced; buffered is the sink's
	// current size.
	seriesTraceSampled = "trace.sampled"
	seriesTraceStored  = "trace.stored"
	seriesTraceEvicted = "trace.evicted"

	gaugeInflight       = "serve.inflight"
	gaugeCachedRules    = "serve.cached_rules"
	gaugeCachedWrappers = "serve.cached_wrappers"
	gaugeTraceBuffered  = "trace.buffered"

	// Request-latency series, one per public endpoint plus the pprof and
	// catch-all buckets, keeping label cardinality bounded regardless of
	// what paths clients probe.
	seriesReqExtract  = `omini_request_seconds{path="/extract"}`
	seriesReqRecords  = `omini_request_seconds{path="/records"}`
	seriesReqRules    = `omini_request_seconds{path="/rules"}`
	seriesReqRulesz   = `omini_request_seconds{path="/rulesz"}`
	seriesReqHealthz  = `omini_request_seconds{path="/healthz"}`
	seriesReqReadyz   = `omini_request_seconds{path="/readyz"}`
	seriesReqStatsz   = `omini_request_seconds{path="/statsz"}`
	seriesReqMetricsz = `omini_request_seconds{path="/metricsz"}`
	seriesReqPprof    = `omini_request_seconds{path="/debug/pprof"}`
	seriesReqTracez   = `omini_request_seconds{path="/tracez"}`
	seriesReqOther    = `omini_request_seconds{path="other"}`
)

// Server is the HTTP handler. Create with New.
type Server struct {
	cfg       Config
	handler   http.Handler
	extractor *core.Extractor
	limiter   *resilience.Limiter
	stats     *resilience.Stats
	log       *obs.Logger
	traces    *obs.TraceSink
	sampler   *obs.Sampler

	// farm is the rule-cache-first serving layer: sharded rule LRU,
	// singleflight learn-on-miss, drift revalidation, persistence.
	farm *farm.Farm

	// ready flips once the rule store is loaded (immediately when no
	// RulesFile is configured); joined flips once the join-time rule
	// sync finishes (immediately unless Config.DeferReady). /readyz
	// reports the conjunction.
	ready  atomic.Bool
	joined atomic.Bool

	mu       sync.RWMutex
	wrappers map[string]*wrapgen.Wrapper
}

// New returns a ready-to-serve handler.
func New(cfg Config) *Server {
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 8 << 20
	}
	if cfg.MaxInFlight == 0 {
		cfg.MaxInFlight = defaultMaxInFlight
	}
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = defaultRequestTimeout
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = defaultRetryAfter
	}
	if cfg.Stats == nil {
		cfg.Stats = resilience.Default
	}
	if cfg.Logger == nil {
		cfg.Logger = obs.DefaultLogger()
	}
	if cfg.Traces == nil {
		cfg.Traces = obs.NewTraceSink(cfg.TraceCapacity)
	}
	rate := cfg.TraceSampleRate
	if rate == 0 {
		rate = 1
	}
	s := &Server{
		cfg:       cfg,
		extractor: core.New(core.Options{Limits: cfg.Limits}),
		limiter:   resilience.NewLimiter(cfg.MaxInFlight),
		stats:     cfg.Stats,
		log:       cfg.Logger,
		traces:    cfg.Traces,
		sampler:   obs.NewSampler(rate),
		wrappers:  make(map[string]*wrapgen.Wrapper),
	}
	// The farm shares the server's extractor, registry and logger, so
	// farm.* series land on this server's /metricsz next to serve.*.
	// A corrupt rule store costs a cold cache, never the process
	// (RecoverCorruptStore), so New cannot fail here.
	fm, err := farm.New(farm.Config{
		Extractor:           s.extractor,
		StorePath:           cfg.RuleStorePath,
		RelearnInterval:     cfg.RelearnInterval,
		RecoverCorruptStore: true,
		Stats:               cfg.Stats,
		Logger:              cfg.Logger,
	})
	if err != nil {
		s.log.Error("farm init failed; serving without a rule store", "err", err.Error())
		fm, _ = farm.New(farm.Config{Extractor: s.extractor, Stats: cfg.Stats, Logger: cfg.Logger})
	}
	s.farm = fm
	s.joined.Store(!cfg.DeferReady)
	s.registerMetrics()
	s.loadRules()

	// Extraction endpoints run behind the load shed and request deadline;
	// health, stats and profiling probes stay outside so an overloaded
	// server still answers its operators.
	api := http.NewServeMux()
	api.HandleFunc("POST /extract", s.handleExtract)
	api.HandleFunc("POST /records", s.handleRecords)
	api.HandleFunc("GET /rules", s.handleRules)

	root := http.NewServeMux()
	root.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		_, _ = io.WriteString(w, "ok\n")
	})
	root.HandleFunc("GET /readyz", s.handleReadyz)
	root.HandleFunc("GET /rulesz", s.handleRulesz)
	root.HandleFunc("GET /tracez", s.handleTracez)
	root.HandleFunc("GET /statsz", s.handleStatsz)
	root.HandleFunc("GET /metricsz", s.handleMetricsz)
	root.HandleFunc("/debug/pprof/", pprof.Index)
	root.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	root.HandleFunc("/debug/pprof/profile", pprof.Profile)
	root.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	root.HandleFunc("/debug/pprof/trace", pprof.Trace)
	root.Handle("/", s.withLimit(s.withTimeout(api)))

	s.handler = s.withRecovery(s.withObs(root))
	return s
}

// registerMetrics pre-touches the counters, phase histograms and computed
// gauges the service exposes, so a scrape of a fresh process already shows
// the full metric surface at zero.
func (s *Server) registerMetrics() {
	// Governor outcomes sit alongside the request counters: one series
	// per limit kind, plus deadline and cancellation counts, so a scrape
	// distinguishes oversized pages from slow ones before the first
	// violation occurs.
	for _, name := range []string{
		seriesRequests, seriesErrors, seriesPanics, seriesShed,
		seriesRuleHits, seriesRuleStale,
		seriesTraceSampled, seriesTraceStored, seriesTraceEvicted,
		core.SeriesExtractions, core.SeriesErrors,
		core.SeriesDeadlineExceeded, core.SeriesCancelled,
		core.SeriesRuleExtractions, core.SeriesRuleMismatches,
		core.SeriesBatchPages, core.SeriesBatchErrors,
		core.SeriesBatchRuleHits, core.SeriesBatchWatchdog,
		core.SeriesBatchPanics,
		core.SeriesLimitInput, core.SeriesLimitTokens, core.SeriesLimitNodes,
		core.SeriesLimitDepth, core.SeriesLimitObjects, core.SeriesLimitOther,
	} {
		s.stats.Counter(name)
	}
	for _, name := range []string{
		seriesReqExtract, seriesReqRecords, seriesReqRules,
		seriesReqRulesz, seriesReqHealthz, seriesReqReadyz,
		seriesReqStatsz, seriesReqMetricsz, seriesReqPprof,
		seriesReqTracez, seriesReqOther,
	} {
		s.stats.Histogram(name)
	}
	for _, phase := range pipelinePhases {
		s.stats.Histogram(obs.PhaseSeries(phase))
	}
	for _, phase := range servingPhases {
		s.stats.Histogram(obs.PhaseSeries(phase))
	}
	s.stats.RegisterGaugeFunc(gaugeInflight, func() float64 {
		return float64(s.limiter.InFlight())
	})
	s.stats.RegisterGaugeFunc(gaugeCachedRules, func() float64 {
		return float64(s.farm.Len())
	})
	s.stats.RegisterGaugeFunc(gaugeCachedWrappers, func() float64 {
		s.mu.RLock()
		defer s.mu.RUnlock()
		return float64(len(s.wrappers))
	})
	s.stats.RegisterGaugeFunc(gaugeTraceBuffered, func() float64 {
		return float64(s.traces.Len())
	})
}

// ServeHTTP dispatches through the hardened middleware chain.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.handler.ServeHTTP(w, r)
}

// loadRules seeds the farm from Config.RulesFile and flips the
// readiness gate. Liveness (/healthz) and readiness are deliberately
// split: a process that failed its snapshot load is alive (don't
// restart it into a crash loop) but not ready (don't route to it).
func (s *Server) loadRules() {
	if s.cfg.RulesFile == "" {
		s.ready.Store(true)
		return
	}
	if err := s.farm.SeedFile(s.cfg.RulesFile); err != nil {
		s.log.Error("rules snapshot load failed; staying not-ready",
			"file", s.cfg.RulesFile, "err", err.Error())
		return
	}
	s.log.Info("rules snapshot loaded", "file", s.cfg.RulesFile, "rules", s.farm.Len())
	s.ready.Store(true)
}

// Farm exposes the server's wrapper farm (rule inspection, manual
// saves, test-driven revalidation).
func (s *Server) Farm() *farm.Farm { return s.farm }

// Traces exposes the server's tail-sampling trace sink, so a cluster
// coordinator on the same node can record its routing half of each
// trace into the same buffer.
func (s *Server) Traces() *obs.TraceSink { return s.traces }

// Run drives the farm's background work — drift-sample revalidation
// and periodic store flushes — until ctx is cancelled. cmd/ominiserve
// runs it alongside the HTTP listener; embedded servers may skip it
// and call Farm().Revalidate themselves.
func (s *Server) Run(ctx context.Context) error { return s.farm.Run(ctx) }

// Close final-saves the farm's rule store when it has unsaved changes.
func (s *Server) Close() error { return s.farm.Close() }

// Ready reports whether the server would pass its own /readyz probe.
func (s *Server) Ready() bool { return s.ready.Load() && s.joined.Load() }

// MarkReady releases a Config.DeferReady hold: the join-time rule sync
// finished (or gave up and degraded to learn-on-miss), so the health
// checker may route shard traffic here. Idempotent.
func (s *Server) MarkReady() { s.joined.Store(true) }

// handleReadyz is the readiness probe: 200 once the rule store is
// loaded and any join-time rule sync has finished, 503 before (or
// forever, on a bad snapshot).
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	switch {
	case !s.ready.Load():
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = io.WriteString(w, "not ready: rules not loaded\n")
	case !s.joined.Load():
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = io.WriteString(w, "not ready: rule sync in progress\n")
	default:
		w.WriteHeader(http.StatusOK)
		_, _ = io.WriteString(w, "ready\n")
	}
}

// reqInfo is the per-request decision summary handlers fill in for the
// access log: what was extracted and why, in one line.
type reqInfo struct {
	mu         sync.Mutex
	site       string
	separator  string
	subtree    string
	objects    int
	fromRule   bool
	confidence float64
	filled     bool
	errMsg     string
}

type reqInfoKey struct{}

// infoFrom returns the request's summary slot (nil outside withObs).
func infoFrom(ctx context.Context) *reqInfo {
	ri, _ := ctx.Value(reqInfoKey{}).(*reqInfo)
	return ri
}

// fill records the extraction summary for the access log.
func (ri *reqInfo) fill(site string, res *core.Result, fromRule bool) {
	if ri == nil || res == nil {
		return
	}
	ri.mu.Lock()
	defer ri.mu.Unlock()
	ri.filled = true
	ri.site = site
	ri.separator = res.Separator
	ri.subtree = res.SubtreePath
	ri.objects = len(res.Objects)
	ri.fromRule = fromRule
	ri.confidence = res.Confidence()
}

// setSite records the requested site before the outcome is known, so
// failed requests still carry it in the log line and trace summary.
func (ri *reqInfo) setSite(site string) {
	if ri == nil {
		return
	}
	ri.mu.Lock()
	ri.site = site
	ri.mu.Unlock()
}

// fail records the error message a failed request returned. First
// write wins: the original failure, not a later fallback's.
func (ri *reqInfo) fail(msg string) {
	if ri == nil {
		return
	}
	ri.mu.Lock()
	if ri.errMsg == "" {
		ri.errMsg = msg
	}
	ri.mu.Unlock()
}

// statusWriter captures the response status for metrics and the access log.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(p)
}

// requestSeries buckets request-latency series by endpoint, keeping label
// cardinality bounded regardless of what paths clients probe.
func requestSeries(path string) string {
	switch {
	case path == "/extract":
		return seriesReqExtract
	case path == "/records":
		return seriesReqRecords
	case path == "/rules":
		return seriesReqRules
	case path == "/rulesz":
		return seriesReqRulesz
	case path == "/healthz":
		return seriesReqHealthz
	case path == "/readyz":
		return seriesReqReadyz
	case path == "/statsz":
		return seriesReqStatsz
	case path == "/metricsz":
		return seriesReqMetricsz
	case path == "/tracez":
		return seriesReqTracez
	case strings.HasPrefix(path, "/debug/pprof"):
		return seriesReqPprof
	default:
		return seriesReqOther
	}
}

// operational marks endpoints whose access-log lines go to Debug rather
// than Info, so scrapers and probes don't flood the log.
func operational(path string) bool {
	return path == "/healthz" || path == "/readyz" || path == "/rulesz" ||
		path == "/statsz" || path == "/metricsz" || path == "/tracez" ||
		strings.HasPrefix(path, "/debug/pprof")
}

// traceable marks the endpoints whose requests are candidates for
// distributed tracing: the extraction paths. Probes and inspection
// endpoints are never traced — their spans would only churn the sink.
func traceable(r *http.Request) bool {
	return r.Method == http.MethodPost &&
		(r.URL.Path == "/extract" || r.URL.Path == "/records")
}

// withObs threads the metrics registry into the request context (so the
// pipeline's phase spans land in this server's registry), times the
// request, counts it, and emits one structured access-log line carrying
// the handler's decision summary.
//
// It is also the tracing middleware: a sampled request gets a trace
// recorder and a "handler" root span in its context (continuing the
// X-Omini-Trace header's trace when a coordinator forwarded one), the
// trace ID is echoed in the response's X-Omini-Trace header and stamped
// into the log line and the latency histogram's exemplar, and the
// finished span tree is recorded into the tail-sampling sink.
func (s *Server) withObs(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		ri := &reqInfo{}
		ctx := obs.WithRegistry(r.Context(), s.stats)
		ctx = context.WithValue(ctx, reqInfoKey{}, ri)

		// An inbound header carries the upstream hop's sampling decision
		// for the whole request; without one, local requests to the
		// extraction endpoints decide here (?trace=1 always traces).
		sc, scErr := obs.ParseTraceHeader(r.Header.Get(obs.TraceHeader))
		var sampled bool
		if scErr == nil && sc.Valid() {
			sampled = sc.Sampled
		} else if traceable(r) {
			sampled = wantTrace(r) || s.sampler.Sample()
		}
		var rec *obs.TraceRecorder
		var root *obs.Span
		if sampled {
			// Allocation sampling stays off on the serving path; wall
			// times and span structure are the useful parts under traffic.
			ctx, rec = obs.StartTrace(ctx, sc, false)
			ctx, root = obs.StartSpan(ctx, "handler")
			s.stats.Add(seriesTraceSampled, 1)
			// Set before the handler writes: the header doubles as the
			// trace-ID channel for the recovery middleware, which sits
			// outside this one and cannot see the request context.
			w.Header().Set(obs.TraceHeader, root.Context().Header())
		}

		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r.WithContext(ctx))

		elapsed := time.Since(start)
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		s.stats.Add(seriesRequests, 1)
		if status >= 500 {
			s.stats.Add(seriesErrors, 1)
		}
		if rec != nil {
			root.End()
			s.stats.ObserveExemplar(requestSeries(r.URL.Path), elapsed.Seconds(), rec.TraceID().String())
			s.recordTrace(rec, r, ri, status, elapsed)
		} else {
			s.stats.Observe(requestSeries(r.URL.Path), elapsed.Seconds())
		}

		kv := []any{
			"method", r.Method,
			"path", r.URL.Path,
			"status", status,
			"durMs", float64(elapsed.Microseconds()) / 1000,
		}
		if rec != nil {
			kv = append(kv, "trace", rec.TraceID().String())
		}
		ri.mu.Lock()
		if ri.filled {
			kv = append(kv,
				"site", ri.site,
				"subtree", ri.subtree,
				"separator", ri.separator,
				"objects", ri.objects,
				"fromRule", ri.fromRule,
				"confidence", ri.confidence,
			)
		}
		if ri.errMsg != "" {
			kv = append(kv, "err", ri.errMsg)
		}
		ri.mu.Unlock()
		if operational(r.URL.Path) {
			s.log.Debug("request", kv...)
		} else {
			s.log.Info("request", kv...)
		}
	})
}

// recordTrace folds one finished traced request into the tail-sampling
// sink behind /tracez.
func (s *Server) recordTrace(rec *obs.TraceRecorder, r *http.Request, ri *reqInfo, status int, elapsed time.Duration) {
	attrs := rec.Attrs()
	t := &obs.TraceData{
		TraceSummary: obs.TraceSummary{
			TraceID:    rec.TraceID().String(),
			Op:         r.URL.Path,
			Path:       attrs["path"],
			Status:     status,
			StartedAt:  rec.Start(),
			DurationNS: elapsed.Nanoseconds(),
		},
		Attrs:   attrs,
		Charges: rec.Charges(),
		Spans:   rec.Spans(),
	}
	t.SpanCount = len(t.Spans)
	ri.mu.Lock()
	t.Site = ri.site
	t.Error = ri.errMsg
	ri.mu.Unlock()
	evicted := s.traces.Record(t)
	s.stats.Add(seriesTraceStored, 1)
	if evicted > 0 {
		s.stats.Add(seriesTraceEvicted, int64(evicted))
	}
}

// withRecovery converts handler panics into JSON 500s: one pathological
// page must cost one request, never the process. The panic is counted and
// logged with its stack through the structured logger, so it is visible on
// /metricsz and in the log stream, not only in the failed response.
func (s *Server) withRecovery(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			rec := recover()
			if rec == nil {
				return
			}
			if rec == http.ErrAbortHandler { // deliberate connection abort
				panic(rec)
			}
			s.stats.Add(seriesPanics, 1)
			// Recovery sits outside the tracing middleware; the request
			// context is gone, but withObs echoed the trace identity into
			// the response header before the handler ran.
			var tid string
			if sc, err := obs.ParseTraceHeader(w.Header().Get(obs.TraceHeader)); err == nil && sc.Valid() {
				tid = sc.TraceID.String()
			}
			s.log.Error("recovered panic",
				"method", r.Method,
				"path", r.URL.Path,
				"trace", tid,
				"panic", fmt.Sprint(rec),
				"stack", string(debug.Stack()),
			)
			writeErrorID(w, http.StatusInternalServerError, fmt.Sprintf("internal error: %v", rec), tid)
		}()
		next.ServeHTTP(w, r)
	})
}

// withLimit sheds requests past the in-flight cap with 429 + Retry-After.
func (s *Server) withLimit(next http.Handler) http.Handler {
	if s.limiter == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !s.limiter.TryAcquire() {
			s.stats.Add(seriesShed, 1)
			w.Header().Set("Retry-After", strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
			writeError(r.Context(), w, http.StatusTooManyRequests, "server at capacity")
			return
		}
		defer s.limiter.Release()
		next.ServeHTTP(w, r)
	})
}

// withTimeout bounds each request; http.TimeoutHandler handles the
// handler-vs-deadline write race.
func (s *Server) withTimeout(next http.Handler) http.Handler {
	if s.cfg.RequestTimeout <= 0 {
		return next
	}
	body, _ := json.Marshal(errorResponse{Error: "request timed out", Status: http.StatusServiceUnavailable})
	return http.TimeoutHandler(next, s.cfg.RequestTimeout, string(body))
}

// statszResponse is the /statsz payload.
type statszResponse struct {
	// Counters are the cumulative counters of the shared obs registry —
	// the same registry /metricsz exposes in Prometheus form.
	Counters map[string]int64 `json:"counters"`
	// InFlight is the number of extraction requests currently running.
	InFlight int `json:"inFlight"`
	// MaxInFlight is the shed threshold (0 = unlimited).
	MaxInFlight int `json:"maxInFlight"`
	// CachedRules and CachedWrappers size the per-site caches.
	CachedRules    int `json:"cachedRules"`
	CachedWrappers int `json:"cachedWrappers"`
}

// handleStatsz serves the legacy JSON counter view. It is a thin alias of
// the /metricsz registry: both read the identical obs.Registry, so the two
// endpoints can never disagree.
func (s *Server) handleStatsz(w http.ResponseWriter, _ *http.Request) {
	nrules := s.farm.Len()
	s.mu.RLock()
	nwrap := len(s.wrappers)
	s.mu.RUnlock()
	writeJSON(w, statszResponse{
		Counters:       s.stats.Snapshot(),
		InFlight:       s.limiter.InFlight(),
		MaxInFlight:    s.limiter.Cap(),
		CachedRules:    nrules,
		CachedWrappers: nwrap,
	})
}

// handleMetricsz serves the registry as Prometheus-style text: counters,
// gauges, and the per-phase latency histograms with p50/p95/p99.
func (s *Server) handleMetricsz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.stats.WritePrometheus(w); err != nil {
		s.log.Error("metricsz write failed", "err", err)
	}
}

// objectResponse is the /extract payload.
type objectResponse struct {
	Site        string  `json:"site,omitempty"`
	SubtreePath string  `json:"subtreePath"`
	Separator   string  `json:"separator"`
	Confidence  float64 `json:"confidence"`
	FromRule    bool    `json:"fromRule"`
	// NextPage is the discovered next-result-page link, when the page has
	// one — the crawl pointer an aggregator follows.
	NextPage string      `json:"nextPage,omitempty"`
	Objects  []objectDTO `json:"objects"`
	// Trace is the decision trace, present when the request asked for it
	// with ?trace=1.
	Trace *obs.DecisionTrace `json:"trace,omitempty"`
}

type objectDTO struct {
	Index int    `json:"index"`
	Text  string `json:"text"`
	Size  int    `json:"sizeBytes"`
}

// wantTrace reports whether the request opted into an inline decision
// trace.
func wantTrace(r *http.Request) bool {
	switch r.URL.Query().Get("trace") {
	case "1", "true", "yes":
		return true
	}
	return false
}

func (s *Server) handleExtract(w http.ResponseWriter, r *http.Request) {
	html, site, ok := s.readPage(w, r)
	if !ok {
		return
	}
	ctx := r.Context()
	infoFrom(ctx).setSite(site)
	var res *core.Result
	var fromRule bool
	var err error
	rpprof.Do(ctx, rpprof.Labels("site", site), func(pctx context.Context) {
		res, fromRule, err = s.extract(pctx, site, html)
	})
	if err != nil {
		httpError(ctx, w, err)
		return
	}
	infoFrom(ctx).fill(site, res, fromRule)
	resp := objectResponse{
		Site:        site,
		SubtreePath: res.SubtreePath,
		Separator:   res.Separator,
		Confidence:  res.Confidence(),
		FromRule:    fromRule,
	}
	if wantTrace(r) {
		// The inline trace ships only on request; sampled requests that
		// did not ask still reach /tracez by trace ID.
		resp.Trace = res.Trace
	}
	if res.Tree != nil {
		if next, ok := nav.FindNext(res.Tree); ok {
			resp.NextPage = next
		}
	}
	for i, o := range res.Objects {
		resp.Objects = append(resp.Objects, objectDTO{Index: i + 1, Text: o.Text(), Size: o.Size()})
	}
	writeJSON(w, resp)
}

// recordResponse is the /records payload.
type recordResponse struct {
	Site    string           `json:"site"`
	Fields  []wrapgen.Field  `json:"fields"`
	Records []wrapgen.Record `json:"records"`
}

func (s *Server) handleRecords(w http.ResponseWriter, r *http.Request) {
	html, site, ok := s.readPage(w, r)
	if !ok {
		return
	}
	ctx := r.Context()
	if site == "" {
		writeError(ctx, w, http.StatusBadRequest, "records endpoint requires ?site=")
		return
	}
	infoFrom(ctx).setSite(site)
	rpprof.Do(ctx, rpprof.Labels("site", site), func(pctx context.Context) {
		s.serveRecords(pctx, w, site, html)
	})
}

// serveRecords is handleRecords' extraction body, split out so it runs
// under the site pprof label.
func (s *Server) serveRecords(ctx context.Context, w http.ResponseWriter, site, html string) {
	wrapper, err := s.wrapperFor(site, html)
	if err != nil {
		httpError(ctx, w, err)
		return
	}
	// Wrapper evolution: a page that no longer resembles the training page
	// triggers relearning before extraction goes wrong quietly.
	if stale, err := wrapper.Stale(html, wrapgen.DefaultDriftThreshold); err == nil && stale {
		if relearned, err := s.relearnWrapper(site, html); err == nil {
			wrapper = relearned
		}
	}
	records, err := wrapper.Extract(html)
	if err != nil {
		// The cached wrapper no longer matches; relearn once.
		wrapper, err = s.relearnWrapper(site, html)
		if err != nil {
			httpError(ctx, w, err)
			return
		}
		if records, err = wrapper.Extract(html); err != nil {
			httpError(ctx, w, err)
			return
		}
	}
	writeJSON(w, recordResponse{Site: site, Fields: wrapper.Fields, Records: records})
}

func (s *Server) handleRules(w http.ResponseWriter, r *http.Request) {
	// The legacy array format, so dumps keep working as -rules seeds.
	st := rules.NewStore()
	for _, sr := range s.farm.Rules() {
		_ = st.Put(sr.Rule)
	}
	w.Header().Set("Content-Type", "application/json")
	if _, err := st.WriteTo(w); err != nil {
		httpError(r.Context(), w, err)
	}
}

// ruleszRule is one row of the /rulesz farm inspection view.
type ruleszRule struct {
	Site        string    `json:"site"`
	SubtreePath string    `json:"subtreePath"`
	Separator   string    `json:"separator"`
	Version     int       `json:"version"`
	LearnedAt   time.Time `json:"learnedAt"`
	Hits        int64     `json:"hits"`
	// SignaturePaths sizes the training signature backing drift checks;
	// 0 means the rule cannot be drift-checked until relearned.
	SignaturePaths int `json:"signaturePaths"`
}

// ruleszResponse is the /rulesz payload: farm totals plus one row per
// cached rule.
type ruleszResponse struct {
	Rules      int          `json:"rules"`
	StoreBytes int64        `json:"storeBytes"`
	Etag       string       `json:"etag"`
	Tombstones int          `json:"tombstones"`
	Sites      []ruleszRule `json:"sites"`
}

// ruleszDigest is the ?view=digest payload: the farm's per-site rule
// and tombstone versions plus their etag — everything a ruledist peer
// needs to decide which sites to pull, without any rule bodies.
type ruleszDigest struct {
	Etag       string         `json:"etag"`
	Rules      map[string]int `json:"rules"`
	Tombstones map[string]int `json:"tombstones"`
}

// handleRulesz serves the farm's per-site state. The default view is
// the human inspection listing; ?view=digest returns the version
// vector (with ETag / If-None-Match negotiation, so a steady-state
// anti-entropy poll costs one 304), and ?view=sync returns the farm's
// canonical wire snapshot, optionally filtered to ?sites=a,b,c — the
// incremental transfer a joining node pulls from its ring neighbors.
func (s *Server) handleRulesz(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Query().Get("view") {
	case "digest":
		s.serveRuleszDigest(w, r)
		return
	case "sync":
		s.serveRuleszSync(w, r)
		return
	}
	stored := s.farm.Rules()
	resp := ruleszResponse{
		Rules:      len(stored),
		StoreBytes: s.farm.StoreBytes(),
		Etag:       s.farm.Etag(),
		Tombstones: s.farm.TombstoneCount(),
		Sites:      make([]ruleszRule, 0, len(stored)),
	}
	for _, r := range stored {
		resp.Sites = append(resp.Sites, ruleszRule{
			Site:           r.Site,
			SubtreePath:    r.SubtreePath,
			Separator:      r.Separator,
			Version:        r.Version,
			LearnedAt:      r.LearnedAt,
			Hits:           r.Hits,
			SignaturePaths: len(r.Signature),
		})
	}
	writeJSON(w, resp)
}

// notModified answers an If-None-Match probe against the farm etag,
// reporting whether a 304 was written. The ETag header is set either
// way, so pollers always learn the current value.
func notModified(w http.ResponseWriter, r *http.Request, etag string) bool {
	w.Header().Set("ETag", `"`+etag+`"`)
	match := strings.Trim(r.Header.Get("If-None-Match"), `"`)
	if match == "" || match != etag {
		return false
	}
	w.WriteHeader(http.StatusNotModified)
	return true
}

// serveRuleszDigest serves the version-vector digest view.
func (s *Server) serveRuleszDigest(w http.ResponseWriter, r *http.Request) {
	etag := s.farm.Etag()
	if notModified(w, r, etag) {
		return
	}
	ruleV, tombV := s.farm.VersionVector()
	writeJSON(w, ruleszDigest{Etag: etag, Rules: ruleV, Tombstones: tombV})
}

// serveRuleszSync serves the farm's canonical snapshot (the same codec
// the rule store persists, so a truncated or corrupt transfer fails
// decode on the puller and is discarded whole). Only the unfiltered
// view participates in ETag negotiation — a ?sites= subset has no
// stable identity of its own.
func (s *Server) serveRuleszSync(w http.ResponseWriter, r *http.Request) {
	var sites []string
	if raw := r.URL.Query().Get("sites"); raw != "" {
		for _, site := range strings.Split(raw, ",") {
			if site = strings.TrimSpace(site); site != "" {
				sites = append(sites, site)
			}
		}
	}
	if len(sites) == 0 && notModified(w, r, s.farm.Etag()) {
		return
	}
	data, err := farm.EncodeSnapshot(s.farm.SyncSnapshot(sites))
	if err != nil {
		httpError(r.Context(), w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(data)
}

// tracezResponse is the /tracez list payload.
type tracezResponse struct {
	// Capacity is the sink's bound; Stored is how many traces it holds.
	Capacity int `json:"capacity"`
	Stored   int `json:"stored"`
	// Traces are the stored trace summaries, newest first.
	Traces []obs.TraceSummary `json:"traces"`
}

// handleTracez serves the tail-sampled trace buffer: the summary list
// by default, one full trace (span tree, attributes, governor charges)
// with ?id=<traceId>.
func (s *Server) handleTracez(w http.ResponseWriter, r *http.Request) {
	if id := r.URL.Query().Get("id"); id != "" {
		t, ok := s.traces.Get(id)
		if !ok {
			writeError(r.Context(), w, http.StatusNotFound, "trace not found: "+id)
			return
		}
		writeJSON(w, t)
		return
	}
	writeJSON(w, tracezResponse{
		Capacity: s.traces.Capacity(),
		Stored:   s.traces.Len(),
		Traces:   s.traces.List(),
	})
}

// extract serves through the wrapper farm: cached-rule fast path on a
// hit, singleflight learn-on-miss otherwise, transparent relearn when
// a rule stops matching. The context carries the server's registry
// (phase spans) and, on traced requests, the trace recorder.
func (s *Server) extract(ctx context.Context, site, html string) (*core.Result, bool, error) {
	res, out, err := s.farm.Extract(ctx, site, html)
	if err != nil {
		return nil, false, err
	}
	if out.FromRule {
		s.stats.Add(seriesRuleHits, 1)
	}
	if out.Relearned {
		// The site changed under its rule; the wrapper learned from the
		// old layout is stale with it.
		s.stats.Add(seriesRuleStale, 1)
		s.mu.Lock()
		delete(s.wrappers, site)
		s.mu.Unlock()
	}
	return res, out.FromRule, nil
}

// wrapperFor returns the site's cached wrapper, learning one if needed.
func (s *Server) wrapperFor(site, html string) (*wrapgen.Wrapper, error) {
	s.mu.RLock()
	wrapper := s.wrappers[site]
	s.mu.RUnlock()
	if wrapper != nil {
		return wrapper, nil
	}
	return s.relearnWrapper(site, html)
}

func (s *Server) relearnWrapper(site, html string) (*wrapgen.Wrapper, error) {
	wrapper, err := wrapgen.Learn(site, html)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.wrappers[site] = wrapper
	s.mu.Unlock()
	// The wrapper's rule joins the farm (with the training signature,
	// so drift checks cover wrapper-learned rules too).
	s.farm.Put(wrapper.Rule, wrapper.Signature)
	return wrapper, nil
}

// readPage reads and validates the request body and site parameter.
func (s *Server) readPage(w http.ResponseWriter, r *http.Request) (html, site string, ok bool) {
	body, err := io.ReadAll(io.LimitReader(r.Body, s.cfg.MaxBodyBytes+1))
	if err != nil {
		writeError(r.Context(), w, http.StatusBadRequest, "read body: "+err.Error())
		return "", "", false
	}
	if int64(len(body)) > s.cfg.MaxBodyBytes {
		writeError(r.Context(), w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("body exceeds %d-byte limit", s.cfg.MaxBodyBytes))
		return "", "", false
	}
	if len(body) == 0 {
		writeError(r.Context(), w, http.StatusBadRequest, "empty body")
		return "", "", false
	}
	return string(body), r.URL.Query().Get("site"), true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// errorResponse is the structured error payload every failure returns.
type errorResponse struct {
	Error  string `json:"error"`
	Status int    `json:"status"`
	// TraceID correlates the failure with its /tracez record, access-log
	// line and histogram exemplars, when the request was traced.
	TraceID string `json:"traceId,omitempty"`
}

// writeError sends a structured JSON error with the given status,
// stamping the context's trace ID (when traced) into the body and the
// request's log summary.
func writeError(ctx context.Context, w http.ResponseWriter, status int, msg string) {
	infoFrom(ctx).fail(msg)
	writeErrorID(w, status, msg, obs.TraceIDStringFrom(ctx))
}

// writeErrorID is writeError with an explicit trace ID, for callers —
// the recovery middleware — that no longer hold the traced context.
func writeErrorID(w http.ResponseWriter, status int, msg, traceID string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(errorResponse{Error: msg, Status: status, TraceID: traceID})
}

// httpError maps extraction failures to status codes.
func httpError(ctx context.Context, w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	var lim *govern.ErrLimitExceeded
	switch {
	case errors.As(err, &lim):
		// An oversized input is the client's fault (413); any other
		// blown budget means the page is structurally unprocessable
		// under the configured limits (422).
		status = http.StatusUnprocessableEntity
		if lim.Kind == govern.KindInput {
			status = http.StatusRequestEntityTooLarge
		}
	case errors.Is(err, govern.ErrDeadline):
		status = http.StatusGatewayTimeout
	case errors.Is(err, core.ErrNoObjects),
		errors.Is(err, wrapgen.ErrNoObjects),
		errors.Is(err, wrapgen.ErrNoFields):
		status = http.StatusUnprocessableEntity
	case errors.Is(err, core.ErrRuleMismatch):
		status = http.StatusConflict
	}
	writeError(ctx, w, status, err.Error())
}
