package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"omini/internal/farm"
	"omini/internal/resilience"
	"omini/internal/rules"
	"omini/internal/tagtree"
)

// seedRule plants one versioned rule straight into a server's farm.
func seedRule(s *Server, site string, version int) {
	s.Farm().Put(rules.Rule{
		Site:        site,
		SubtreePath: "html[1].body[1].ul[1]",
		Separator:   "li",
		LearnedAt:   time.Date(2026, 8, 4, 0, 0, 0, 0, time.UTC),
		Version:     version,
	}, tagtree.Signature{"html": 1, "html.body": 1})
}

func getWithHeader(t *testing.T, url, header, value string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if header != "" {
		req.Header.Set(header, value)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// TestRuleszDigestView: the digest is the replication wire surface —
// per-site rule and tombstone versions plus a strong etag that answers
// If-None-Match with 304 until farm state changes.
func TestRuleszDigestView(t *testing.T) {
	srv := New(Config{Stats: resilience.NewStats()})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	seedRule(srv, "a.example", 2)
	seedRule(srv, "b.example", 1)
	srv.Farm().Invalidate("b.example")

	resp := getWithHeader(t, ts.URL+"/rulesz?view=digest", "", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("digest status = %d", resp.StatusCode)
	}
	etag := resp.Header.Get("ETag")
	if etag == "" {
		t.Fatal("digest response has no ETag")
	}
	var d ruleszDigest
	if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
		t.Fatalf("bad digest JSON: %v", err)
	}
	if d.Rules["a.example"] != 2 || len(d.Rules) != 1 {
		t.Fatalf("digest rules = %v", d.Rules)
	}
	if d.Tombstones["b.example"] != 1 || len(d.Tombstones) != 1 {
		t.Fatalf("digest tombstones = %v", d.Tombstones)
	}

	// Matching If-None-Match short-circuits to 304.
	if resp := getWithHeader(t, ts.URL+"/rulesz?view=digest", "If-None-Match", etag); resp.StatusCode != http.StatusNotModified {
		t.Fatalf("matching If-None-Match status = %d, want 304", resp.StatusCode)
	}
	// A state change invalidates the etag.
	seedRule(srv, "c.example", 1)
	resp = getWithHeader(t, ts.URL+"/rulesz?view=digest", "If-None-Match", etag)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stale If-None-Match status = %d, want 200", resp.StatusCode)
	}
	if resp.Header.Get("ETag") == etag {
		t.Fatal("etag unchanged after farm mutation")
	}
}

// TestRuleszSyncView: the sync view ships the canonical farm snapshot —
// whole, or filtered to the sites a joining node asks for.
func TestRuleszSyncView(t *testing.T) {
	srv := New(Config{Stats: resilience.NewStats()})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	for _, site := range []string{"a.example", "b.example", "c.example"} {
		seedRule(srv, site, 1)
	}
	seedRule(srv, "d.example", 3)
	srv.Farm().Invalidate("d.example")

	resp := getWithHeader(t, ts.URL+"/rulesz?view=sync", "", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sync status = %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := farm.DecodeSnapshot(body)
	if err != nil {
		t.Fatalf("sync body failed the snapshot codec: %v", err)
	}
	if len(snap.Rules) != 3 || len(snap.Tombstones) != 1 {
		t.Fatalf("unfiltered sync = %d rules, %d tombstones", len(snap.Rules), len(snap.Tombstones))
	}

	resp = getWithHeader(t, ts.URL+"/rulesz?view=sync&sites=b.example,d.example,unknown.example", "", "")
	body, err = io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	snap, err = farm.DecodeSnapshot(body)
	if err != nil {
		t.Fatalf("filtered sync body: %v", err)
	}
	if len(snap.Rules) != 1 || snap.Rules[0].Site != "b.example" {
		t.Fatalf("filtered rules = %+v", snap.Rules)
	}
	if len(snap.Tombstones) != 1 || snap.Tombstones[0].Site != "d.example" {
		t.Fatalf("filtered tombstones = %+v", snap.Tombstones)
	}

	// The unfiltered sync view honors If-None-Match like the digest, so
	// converged anti-entropy rounds cost no snapshot encode. (Filtered
	// pulls skip negotiation: the etag names the whole farm.)
	etag := getWithHeader(t, ts.URL+"/rulesz?view=sync", "", "").Header.Get("ETag")
	if etag == "" {
		t.Fatal("unfiltered sync response has no ETag")
	}
	if resp := getWithHeader(t, ts.URL+"/rulesz?view=sync", "If-None-Match", etag); resp.StatusCode != http.StatusNotModified {
		t.Fatalf("sync If-None-Match status = %d, want 304", resp.StatusCode)
	}
}

// TestRuleszInspectionReportsEtag: the default human view carries the
// same etag and the tombstone count, so divergence is visible to
// operators without the digest view.
func TestRuleszInspectionReportsEtag(t *testing.T) {
	srv := New(Config{Stats: resilience.NewStats()})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	seedRule(srv, "a.example", 1)
	seedRule(srv, "b.example", 1)
	srv.Farm().Invalidate("b.example")

	resp := getWithHeader(t, ts.URL+"/rulesz", "", "")
	var out ruleszResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Etag == "" {
		t.Fatal("inspection view has no etag")
	}
	if out.Tombstones != 1 {
		t.Fatalf("inspection tombstones = %d, want 1", out.Tombstones)
	}
}

// TestDeferReadyHoldsReadyz: with DeferReady the server answers
// traffic but stays out of rotation until MarkReady — the joining
// node's "pull rules before taking shard traffic" window.
func TestDeferReadyHoldsReadyz(t *testing.T) {
	srv := New(Config{DeferReady: true, Stats: resilience.NewStats()})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	if got := getStatus(t, ts.URL+"/readyz"); got != http.StatusServiceUnavailable {
		t.Fatalf("/readyz before MarkReady = %d, want 503", got)
	}
	if got := getStatus(t, ts.URL+"/healthz"); got != http.StatusOK {
		t.Fatalf("/healthz during join sync = %d, want 200 (alive, not ready)", got)
	}
	// Serving is never gated on the sync: the sync window only affects
	// routing, and a direct request still works (degrades to learn).
	if got := getStatus(t, ts.URL+"/rulesz"); got != http.StatusOK {
		t.Fatalf("/rulesz during join sync = %d, want 200", got)
	}
	if srv.Ready() {
		t.Fatal("Ready() = true before MarkReady")
	}
	srv.MarkReady()
	if got := getStatus(t, ts.URL+"/readyz"); got != http.StatusOK {
		t.Fatalf("/readyz after MarkReady = %d, want 200", got)
	}
	srv.MarkReady() // idempotent
	if !srv.Ready() {
		t.Fatal("Ready() = false after MarkReady")
	}
}
