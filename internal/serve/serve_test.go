package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"omini/internal/core"
	"omini/internal/govern"
	"omini/internal/resilience"
	"omini/internal/sitegen"
)

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(New(Config{}))
	t.Cleanup(ts.Close)
	return ts
}

func post(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "text/html", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	var buf strings.Builder
	if _, err := buf.WriteString(readAll(t, resp)); err != nil {
		t.Fatal(err)
	}
	return resp, []byte(buf.String())
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return sb.String()
}

func TestHealthz(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status = %d", resp.StatusCode)
	}
}

func TestExtractEndpoint(t *testing.T) {
	ts := newTestServer(t)
	page := sitegen.Canoe()
	resp, body := post(t, ts.URL+"/extract?site="+page.Site, page.HTML)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var out objectResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if out.Separator != "table" || len(out.Objects) != page.Truth.ObjectCount {
		t.Errorf("separator=%q objects=%d", out.Separator, len(out.Objects))
	}
	if out.FromRule {
		t.Error("first extraction claimed the rule path")
	}
	if out.Confidence <= 0.5 {
		t.Errorf("confidence = %v", out.Confidence)
	}

	// Second request for the same site takes the cached-rule path.
	resp2, body2 := post(t, ts.URL+"/extract?site="+page.Site, page.HTML)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp2.StatusCode)
	}
	var out2 objectResponse
	if err := json.Unmarshal(body2, &out2); err != nil {
		t.Fatal(err)
	}
	if !out2.FromRule {
		t.Error("second extraction did not use the cached rule")
	}
	if len(out2.Objects) != len(out.Objects) {
		t.Errorf("rule path objects = %d, discovery = %d", len(out2.Objects), len(out.Objects))
	}
}

func TestExtractStaleRuleRelearns(t *testing.T) {
	ts := newTestServer(t)
	// Learn a rule from the canoe page under site X...
	canoe := sitegen.Canoe()
	if resp, _ := post(t, ts.URL+"/extract?site=changing.example", canoe.HTML); resp.StatusCode != http.StatusOK {
		t.Fatal("initial extraction failed")
	}
	// ...then serve a structurally different page for the same site.
	loc := sitegen.LOC()
	resp, body := post(t, ts.URL+"/extract?site=changing.example", loc.HTML)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var out objectResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.FromRule {
		t.Error("stale rule was not rediscovered")
	}
	if len(out.Objects) != loc.Truth.ObjectCount {
		t.Errorf("objects = %d, want %d", len(out.Objects), loc.Truth.ObjectCount)
	}
}

func TestRecordsEndpoint(t *testing.T) {
	ts := newTestServer(t)
	page := sitegen.Canoe()
	resp, body := post(t, ts.URL+"/records?site="+page.Site, page.HTML)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var out recordResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Records) != page.Truth.ObjectCount {
		t.Fatalf("records = %d, want %d", len(out.Records), page.Truth.ObjectCount)
	}
	for i, rec := range out.Records {
		if rec["title"] != page.Truth.ObjectTitles[i] {
			t.Errorf("record %d title = %q", i, rec["title"])
		}
	}
}

func TestRecordsRequiresSite(t *testing.T) {
	ts := newTestServer(t)
	resp, _ := post(t, ts.URL+"/records", sitegen.Canoe().HTML)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status = %d, want 400", resp.StatusCode)
	}
}

func TestExtractRejectsEmptyAndHuge(t *testing.T) {
	ts := httptest.NewServer(New(Config{MaxBodyBytes: 64}))
	defer ts.Close()
	if resp, _ := post(t, ts.URL+"/extract", ""); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty body status = %d", resp.StatusCode)
	}
	if resp, _ := post(t, ts.URL+"/extract", strings.Repeat("x", 200)); resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("huge body status = %d", resp.StatusCode)
	}
}

func TestExtractUnprocessablePage(t *testing.T) {
	ts := newTestServer(t)
	resp, _ := post(t, ts.URL+"/extract", "<html><body>prose only</body></html>")
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("status = %d, want 422", resp.StatusCode)
	}
}

func TestRulesEndpoint(t *testing.T) {
	ts := newTestServer(t)
	page := sitegen.LOC()
	post(t, ts.URL+"/extract?site="+page.Site, page.HTML)
	resp, err := http.Get(ts.URL + "/rules")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body := readAll(t, resp)
	if !strings.Contains(body, page.Site) {
		t.Errorf("rules dump missing site: %s", body)
	}
}

func TestExtractReportsNextPage(t *testing.T) {
	ts := newTestServer(t)
	spec := sitegen.SiteSpec{
		Name: "paged.example", Domain: sitegen.DomainSearch,
		LayoutName: "para-div",
		Noise:      sitegen.NoiseSpec{InlineHeader: true, InlineFooter: true},
		MinItems:   6, MaxItems: 10,
	}
	page := spec.Page(0)
	resp, body := post(t, ts.URL+"/extract?site="+spec.Name, page.HTML)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out objectResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.NextPage != "/next" {
		t.Errorf("nextPage = %q, want /next", out.NextPage)
	}
}

// decodeError parses the structured JSON error payload and checks its
// status field matches the response code.
func decodeError(t *testing.T, resp *http.Response, body []byte) errorResponse {
	t.Helper()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Errorf("error Content-Type = %q, want application/json", ct)
	}
	var e errorResponse
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatalf("error body is not JSON: %v: %s", err, body)
	}
	if e.Status != resp.StatusCode {
		t.Errorf("payload status = %d, response status = %d", e.Status, resp.StatusCode)
	}
	if e.Error == "" {
		t.Error("error payload has empty message")
	}
	return e
}

func TestErrorPathsReturnStructuredJSON(t *testing.T) {
	big := httptest.NewServer(New(Config{MaxBodyBytes: 64, Stats: resilience.NewStats()}))
	defer big.Close()
	ts := newTestServer(t)

	t.Run("oversized body 413", func(t *testing.T) {
		resp, body := post(t, big.URL+"/extract", strings.Repeat("x", 200))
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Fatalf("status = %d, want 413", resp.StatusCode)
		}
		decodeError(t, resp, body)
	})
	t.Run("empty body 400", func(t *testing.T) {
		resp, body := post(t, ts.URL+"/extract", "")
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status = %d, want 400", resp.StatusCode)
		}
		decodeError(t, resp, body)
	})
	t.Run("missing site on records 400", func(t *testing.T) {
		resp, body := post(t, ts.URL+"/records", sitegen.Canoe().HTML)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status = %d, want 400", resp.StatusCode)
		}
		e := decodeError(t, resp, body)
		if !strings.Contains(e.Error, "site") {
			t.Errorf("message does not mention site: %q", e.Error)
		}
	})
	t.Run("unparseable HTML 422", func(t *testing.T) {
		resp, body := post(t, ts.URL+"/extract", "\x00\x01\x02 not html at all \xff\xfe")
		if resp.StatusCode != http.StatusUnprocessableEntity {
			t.Fatalf("status = %d, want 422", resp.StatusCode)
		}
		decodeError(t, resp, body)
	})
	t.Run("wrapper relearn failure 422", func(t *testing.T) {
		// Prose-only page: wrapper learning finds no objects, so /records
		// fails with a structured error rather than a crash or empty 200.
		resp, body := post(t, ts.URL+"/records?site=prose.example",
			"<html><body><p>just one paragraph of prose</p></body></html>")
		if resp.StatusCode != http.StatusUnprocessableEntity {
			t.Fatalf("status = %d, want 422", resp.StatusCode)
		}
		decodeError(t, resp, body)
	})
}

func TestRecoveryMiddlewareReturnsJSON500(t *testing.T) {
	stats := resilience.NewStats()
	s := New(Config{Stats: stats})
	h := s.withRecovery(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("pathological page")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/extract", strings.NewReader("x")))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rec.Code)
	}
	var e errorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil {
		t.Fatalf("panic response not JSON: %v: %s", err, rec.Body.String())
	}
	if !strings.Contains(e.Error, "pathological page") {
		t.Errorf("error = %q", e.Error)
	}
	if stats.Get("serve.panics") != 1 {
		t.Errorf("serve.panics = %d, want 1", stats.Get("serve.panics"))
	}
}

func TestLoadSheddingPastInFlightCap(t *testing.T) {
	stats := resilience.NewStats()
	s := New(Config{MaxInFlight: 1, RetryAfter: 2 * time.Second, Stats: stats})
	release := make(chan struct{})
	started := make(chan struct{})
	h := s.withLimit(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		close(started)
		<-release
		w.WriteHeader(http.StatusOK)
	}))

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/extract", strings.NewReader("x")))
	}()
	<-started

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/extract", strings.NewReader("x")))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", rec.Code)
	}
	if got := rec.Header().Get("Retry-After"); got != "2" {
		t.Errorf("Retry-After = %q, want \"2\"", got)
	}
	var e errorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil {
		t.Fatalf("shed response not JSON: %v", err)
	}
	if stats.Get("serve.shed") != 1 {
		t.Errorf("serve.shed = %d, want 1", stats.Get("serve.shed"))
	}

	close(release)
	wg.Wait()
}

func TestRequestTimeoutReturns503(t *testing.T) {
	s := New(Config{RequestTimeout: 20 * time.Millisecond, Stats: resilience.NewStats()})
	h := s.withTimeout(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done()
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/extract", strings.NewReader("x")))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", rec.Code)
	}
	var e errorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil {
		t.Fatalf("timeout response not JSON: %v: %s", err, rec.Body.String())
	}
}

func TestHealthzBypassesLoadShedding(t *testing.T) {
	// A fully saturated server must still answer its operators.
	s := New(Config{MaxInFlight: 1, Stats: resilience.NewStats()})
	if !s.limiter.TryAcquire() {
		t.Fatal("could not saturate limiter")
	}
	defer s.limiter.Release()
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("healthz under load = %d, want 200", rec.Code)
	}
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/statsz", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("statsz under load = %d, want 200", rec.Code)
	}
}

func TestStatszEndpoint(t *testing.T) {
	stats := resilience.NewStats()
	ts := httptest.NewServer(New(Config{Stats: stats}))
	defer ts.Close()

	// Generate one shed-free extraction and one 413 so counters move.
	page := sitegen.Canoe()
	post(t, ts.URL+"/extract?site="+page.Site, page.HTML)

	resp, err := http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out statszResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("statsz not JSON: %v", err)
	}
	if out.MaxInFlight != defaultMaxInFlight {
		t.Errorf("maxInFlight = %d, want %d", out.MaxInFlight, defaultMaxInFlight)
	}
	if out.CachedRules != 1 {
		t.Errorf("cachedRules = %d, want 1", out.CachedRules)
	}
	if out.Counters == nil {
		t.Error("counters missing")
	}
}

func TestRecordsRelearnOnDrift(t *testing.T) {
	ts := newTestServer(t)
	// Train the wrapper on a table-layout page...
	canoe := sitegen.Canoe()
	if resp, _ := post(t, ts.URL+"/records?site=drift.example", canoe.HTML); resp.StatusCode != http.StatusOK {
		t.Fatal("training request failed")
	}
	// ...then serve a redesigned (hr-record) page for the same site. The
	// drift check must relearn instead of mis-projecting.
	loc := sitegen.LOC()
	resp, body := post(t, ts.URL+"/records?site=drift.example", loc.HTML)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var out recordResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Records) != loc.Truth.ObjectCount {
		t.Fatalf("records = %d, want %d after relearn", len(out.Records), loc.Truth.ObjectCount)
	}
	if out.Records[0]["title"] == "" {
		t.Error("relearned wrapper produced empty titles")
	}
}

func TestHTTPErrorMapsGovernorFailures(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"input", fmt.Errorf("core: tokenize: %w", &govern.ErrLimitExceeded{Kind: govern.KindInput, Limit: 10, Actual: 20}), http.StatusRequestEntityTooLarge},
		{"depth", fmt.Errorf("core: tidy: %w", &govern.ErrLimitExceeded{Kind: govern.KindDepth, Limit: 10, Actual: 20}), http.StatusUnprocessableEntity},
		{"tokens", &govern.ErrLimitExceeded{Kind: govern.KindTokens, Limit: 10, Actual: 20}, http.StatusUnprocessableEntity},
		{"deadline", fmt.Errorf("core: subtree: %w", govern.ErrDeadline), http.StatusGatewayTimeout},
	}
	for _, c := range cases {
		rec := httptest.NewRecorder()
		httpError(context.Background(), rec, c.err)
		if rec.Code != c.want {
			t.Errorf("%s: status = %d, want %d", c.name, rec.Code, c.want)
		}
	}
}

func TestExtractGovernedLimits(t *testing.T) {
	// A service configured with tight limits turns pathological pages
	// into client errors instead of burning worker time.
	srv := New(Config{Limits: core.Limits{MaxTreeDepth: 16, MaxInputBytes: 4096}})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	deep := strings.Repeat("<div>", 64) + "bottom"
	resp, body := post(t, ts.URL+"/extract", deep)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("deep page: status = %d, want 422: %s", resp.StatusCode, body)
	}

	big := "<html><body>" + strings.Repeat("<p>hello world</p>", 400) + "</body></html>"
	resp, body = post(t, ts.URL+"/extract", big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("big page: status = %d, want 413: %s", resp.StatusCode, body)
	}
}
