package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"omini/internal/sitegen"
)

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(New(Config{}))
	t.Cleanup(ts.Close)
	return ts
}

func post(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "text/html", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	var buf strings.Builder
	if _, err := buf.WriteString(readAll(t, resp)); err != nil {
		t.Fatal(err)
	}
	return resp, []byte(buf.String())
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return sb.String()
}

func TestHealthz(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status = %d", resp.StatusCode)
	}
}

func TestExtractEndpoint(t *testing.T) {
	ts := newTestServer(t)
	page := sitegen.Canoe()
	resp, body := post(t, ts.URL+"/extract?site="+page.Site, page.HTML)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var out objectResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if out.Separator != "table" || len(out.Objects) != page.Truth.ObjectCount {
		t.Errorf("separator=%q objects=%d", out.Separator, len(out.Objects))
	}
	if out.FromRule {
		t.Error("first extraction claimed the rule path")
	}
	if out.Confidence <= 0.5 {
		t.Errorf("confidence = %v", out.Confidence)
	}

	// Second request for the same site takes the cached-rule path.
	resp2, body2 := post(t, ts.URL+"/extract?site="+page.Site, page.HTML)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp2.StatusCode)
	}
	var out2 objectResponse
	if err := json.Unmarshal(body2, &out2); err != nil {
		t.Fatal(err)
	}
	if !out2.FromRule {
		t.Error("second extraction did not use the cached rule")
	}
	if len(out2.Objects) != len(out.Objects) {
		t.Errorf("rule path objects = %d, discovery = %d", len(out2.Objects), len(out.Objects))
	}
}

func TestExtractStaleRuleRelearns(t *testing.T) {
	ts := newTestServer(t)
	// Learn a rule from the canoe page under site X...
	canoe := sitegen.Canoe()
	if resp, _ := post(t, ts.URL+"/extract?site=changing.example", canoe.HTML); resp.StatusCode != http.StatusOK {
		t.Fatal("initial extraction failed")
	}
	// ...then serve a structurally different page for the same site.
	loc := sitegen.LOC()
	resp, body := post(t, ts.URL+"/extract?site=changing.example", loc.HTML)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var out objectResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.FromRule {
		t.Error("stale rule was not rediscovered")
	}
	if len(out.Objects) != loc.Truth.ObjectCount {
		t.Errorf("objects = %d, want %d", len(out.Objects), loc.Truth.ObjectCount)
	}
}

func TestRecordsEndpoint(t *testing.T) {
	ts := newTestServer(t)
	page := sitegen.Canoe()
	resp, body := post(t, ts.URL+"/records?site="+page.Site, page.HTML)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var out recordResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Records) != page.Truth.ObjectCount {
		t.Fatalf("records = %d, want %d", len(out.Records), page.Truth.ObjectCount)
	}
	for i, rec := range out.Records {
		if rec["title"] != page.Truth.ObjectTitles[i] {
			t.Errorf("record %d title = %q", i, rec["title"])
		}
	}
}

func TestRecordsRequiresSite(t *testing.T) {
	ts := newTestServer(t)
	resp, _ := post(t, ts.URL+"/records", sitegen.Canoe().HTML)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status = %d, want 400", resp.StatusCode)
	}
}

func TestExtractRejectsEmptyAndHuge(t *testing.T) {
	ts := httptest.NewServer(New(Config{MaxBodyBytes: 64}))
	defer ts.Close()
	if resp, _ := post(t, ts.URL+"/extract", ""); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty body status = %d", resp.StatusCode)
	}
	if resp, _ := post(t, ts.URL+"/extract", strings.Repeat("x", 200)); resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("huge body status = %d", resp.StatusCode)
	}
}

func TestExtractUnprocessablePage(t *testing.T) {
	ts := newTestServer(t)
	resp, _ := post(t, ts.URL+"/extract", "<html><body>prose only</body></html>")
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("status = %d, want 422", resp.StatusCode)
	}
}

func TestRulesEndpoint(t *testing.T) {
	ts := newTestServer(t)
	page := sitegen.LOC()
	post(t, ts.URL+"/extract?site="+page.Site, page.HTML)
	resp, err := http.Get(ts.URL + "/rules")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body := readAll(t, resp)
	if !strings.Contains(body, page.Site) {
		t.Errorf("rules dump missing site: %s", body)
	}
}

func TestExtractReportsNextPage(t *testing.T) {
	ts := newTestServer(t)
	spec := sitegen.SiteSpec{
		Name: "paged.example", Domain: sitegen.DomainSearch,
		LayoutName: "para-div",
		Noise:      sitegen.NoiseSpec{InlineHeader: true, InlineFooter: true},
		MinItems:   6, MaxItems: 10,
	}
	page := spec.Page(0)
	resp, body := post(t, ts.URL+"/extract?site="+spec.Name, page.HTML)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out objectResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.NextPage != "/next" {
		t.Errorf("nextPage = %q, want /next", out.NextPage)
	}
}

func TestRecordsRelearnOnDrift(t *testing.T) {
	ts := newTestServer(t)
	// Train the wrapper on a table-layout page...
	canoe := sitegen.Canoe()
	if resp, _ := post(t, ts.URL+"/records?site=drift.example", canoe.HTML); resp.StatusCode != http.StatusOK {
		t.Fatal("training request failed")
	}
	// ...then serve a redesigned (hr-record) page for the same site. The
	// drift check must relearn instead of mis-projecting.
	loc := sitegen.LOC()
	resp, body := post(t, ts.URL+"/records?site=drift.example", loc.HTML)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var out recordResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Records) != loc.Truth.ObjectCount {
		t.Fatalf("records = %d, want %d after relearn", len(out.Records), loc.Truth.ObjectCount)
	}
	if out.Records[0]["title"] == "" {
		t.Error("relearned wrapper produced empty titles")
	}
}
