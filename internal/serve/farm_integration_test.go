package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"omini/internal/resilience"
	"omini/internal/sitegen"
)

func writeFileT(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestRuleszEndpoint: the farm inspection view reports each cached
// rule with its version, hit count and drift-check readiness.
func TestRuleszEndpoint(t *testing.T) {
	ts := newTestServer(t)
	page := sitegen.Canoe()
	for i := 0; i < 2; i++ {
		if resp, body := post(t, ts.URL+"/extract?site="+page.Site, page.HTML); resp.StatusCode != http.StatusOK {
			t.Fatalf("extract %d: status %d: %s", i, resp.StatusCode, body)
		}
	}
	resp, err := http.Get(ts.URL + "/rulesz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("rulesz status = %d", resp.StatusCode)
	}
	var out ruleszResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("bad rulesz JSON: %v", err)
	}
	if out.Rules != 1 || len(out.Sites) != 1 {
		t.Fatalf("rulesz = %+v, want one rule", out)
	}
	row := out.Sites[0]
	if row.Site != page.Site || row.Version != 1 || row.Separator == "" {
		t.Fatalf("rulesz row = %+v", row)
	}
	if row.SignaturePaths == 0 {
		t.Fatal("learned rule has no training signature; drift checks are dead")
	}
	if row.Hits < 1 {
		t.Fatalf("rulesz hits = %d after a fast-path request, want >= 1", row.Hits)
	}
}

// TestRuleStorePersistsAcrossServers: rules learned by one server are
// served fast-path by a new server booted on the same -rule-store.
func TestRuleStorePersistsAcrossServers(t *testing.T) {
	store := filepath.Join(t.TempDir(), "rules.json")
	page := sitegen.LOC()

	s1 := New(Config{RuleStorePath: store, Stats: resilience.NewStats()})
	ts1 := httptest.NewServer(s1)
	if resp, body := post(t, ts1.URL+"/extract?site="+page.Site, page.HTML); resp.StatusCode != http.StatusOK {
		t.Fatalf("learn: status %d: %s", resp.StatusCode, body)
	}
	ts1.Close()
	if err := s1.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2 := New(Config{RuleStorePath: store, Stats: resilience.NewStats()})
	ts2 := httptest.NewServer(s2)
	defer ts2.Close()
	resp, body := post(t, ts2.URL+"/extract?site="+page.Site, page.HTML)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("restarted extract: status %d: %s", resp.StatusCode, body)
	}
	var out objectResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if !out.FromRule {
		t.Fatal("first request after restart should replay the persisted rule")
	}
}

// TestRulesFileAcceptsFarmStore: the readiness-gated -rules boot path
// loads a farm -rule-store snapshot, not only legacy rule arrays.
func TestRulesFileAcceptsFarmStore(t *testing.T) {
	store := filepath.Join(t.TempDir(), "rules.json")
	page := sitegen.Canoe()
	s1 := New(Config{RuleStorePath: store, Stats: resilience.NewStats()})
	ts1 := httptest.NewServer(s1)
	if resp, body := post(t, ts1.URL+"/extract?site="+page.Site, page.HTML); resp.StatusCode != http.StatusOK {
		t.Fatalf("learn: status %d: %s", resp.StatusCode, body)
	}
	ts1.Close()
	if err := s1.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2 := New(Config{RulesFile: store, Stats: resilience.NewStats()})
	if !s2.Ready() {
		t.Fatal("server with a farm-store RulesFile never became ready")
	}
	if s2.Farm().Len() != 1 {
		t.Fatalf("seeded farm Len = %d, want 1", s2.Farm().Len())
	}
}

// TestCorruptRuleStoreServesCold: a torn store file costs a cold
// cache, never the process.
func TestCorruptRuleStoreServesCold(t *testing.T) {
	store := filepath.Join(t.TempDir(), "rules.json")
	writeFileT(t, store, "{torn")
	s := New(Config{RuleStorePath: store, Stats: resilience.NewStats()})
	ts := httptest.NewServer(s)
	defer ts.Close()
	page := sitegen.Canoe()
	if resp, body := post(t, ts.URL+"/extract?site="+page.Site, page.HTML); resp.StatusCode != http.StatusOK {
		t.Fatalf("extract on corrupt store: status %d: %s", resp.StatusCode, body)
	}
	if s.Farm().Len() != 1 {
		t.Fatalf("Len = %d, want 1 freshly learned rule", s.Farm().Len())
	}
}

// TestMetricszExposesFarmSeries: the farm's counters and the
// fast/slow path latency split surface on this server's /metricsz.
func TestMetricszExposesFarmSeries(t *testing.T) {
	ts := newTestServer(t)
	page := sitegen.Canoe()
	for i := 0; i < 2; i++ {
		post(t, ts.URL+"/extract?site="+page.Site, page.HTML)
	}
	resp, err := http.Get(ts.URL + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body := readAll(t, resp)
	for _, want := range []string{
		"farm_hits", "farm_misses", "farm_learns", "farm_drift_checks",
		"farm_rules", "farm_store_bytes",
		`farm_path_seconds_quantile{path="fast"`,
		`farm_path_seconds_quantile{path="slow"`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metricsz missing %q", want)
		}
	}
}
