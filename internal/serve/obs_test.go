package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"omini/internal/obs"
	"omini/internal/resilience"
	"omini/internal/sitegen"
)

// syncBuffer is a goroutine-safe log sink: the access log is written by the
// server goroutine after the client already has its response, so the test
// must synchronize and wait for the line.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) bytes() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]byte(nil), b.buf.Bytes()...)
}

// waitLine polls until the sink holds at least one full line.
func (b *syncBuffer) waitLine(t *testing.T) []byte {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if data := b.bytes(); bytes.ContainsRune(data, '\n') {
			return data
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("no log line arrived")
	return nil
}

// TestMetricszEndpoint proves /metricsz exposes the full pipeline: after
// one extraction, every phase's latency histogram and the serve counters
// appear in Prometheus text form.
func TestMetricszEndpoint(t *testing.T) {
	stats := resilience.NewStats()
	ts := httptest.NewServer(New(Config{Stats: stats}))
	defer ts.Close()

	page := sitegen.Canoe()
	post(t, ts.URL+"/extract?site="+page.Site, page.HTML)

	resp, err := http.Get(ts.URL + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	body := readAll(t, resp)
	if body == "" {
		t.Fatal("empty exposition")
	}
	for _, phase := range pipelinePhases {
		series := `omini_phase_seconds_bucket{phase="` + phase + `",le="+Inf"} `
		if !strings.Contains(body, series) {
			t.Errorf("exposition missing %q", series)
		}
	}
	for _, want := range []string{
		"# TYPE omini_phase_seconds histogram",
		"omini_phase_seconds_quantile{",
		"serve_requests",
		"serve_inflight",
		"serve_cached_rules",
		"omini_request_seconds_bucket{path=\"/extract\"",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestMetricszNonEmptyAtBoot: a scrape of a fresh process must already show
// the metric surface (all phase histograms at zero), so dashboards don't
// start blind.
func TestMetricszNonEmptyAtBoot(t *testing.T) {
	ts := httptest.NewServer(New(Config{Stats: resilience.NewStats()}))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body := readAll(t, resp)
	for _, phase := range pipelinePhases {
		if !strings.Contains(body, `phase="`+phase+`"`) {
			t.Errorf("boot exposition missing phase %q", phase)
		}
	}
	if !strings.Contains(body, "serve_panics 0") {
		t.Error("boot exposition missing serve_panics 0")
	}
}

// TestExtractInlineTrace: ?trace=1 returns the decision trace inline, and
// its winners agree with the response's own fields; without the parameter
// no trace is attached.
func TestExtractInlineTrace(t *testing.T) {
	ts := httptest.NewServer(New(Config{Stats: resilience.NewStats()}))
	defer ts.Close()
	page := sitegen.Canoe()

	resp, body := post(t, ts.URL+"/extract?trace=1", page.HTML)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var out objectResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Trace == nil {
		t.Fatal("?trace=1 returned no trace")
	}
	if out.Trace.Separator != out.Separator || out.Trace.SubtreePath != out.SubtreePath {
		t.Errorf("trace winner (%s, %s) != response (%s, %s)",
			out.Trace.SubtreePath, out.Trace.Separator, out.SubtreePath, out.Separator)
	}
	if len(out.Trace.Phases) == 0 || len(out.Trace.SeparatorRankings) == 0 {
		t.Errorf("trace incomplete: %d phases, %d rankings",
			len(out.Trace.Phases), len(out.Trace.SeparatorRankings))
	}

	_, body = post(t, ts.URL+"/extract", page.HTML)
	var plain objectResponse
	if err := json.Unmarshal(body, &plain); err != nil {
		t.Fatal(err)
	}
	if plain.Trace != nil {
		t.Error("untraced request returned a trace")
	}
}

// TestPprofEndpoints: the runtime profiles answer on the operator mux.
func TestPprofEndpoints(t *testing.T) {
	ts := httptest.NewServer(New(Config{Stats: resilience.NewStats()}))
	defer ts.Close()
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/heap?debug=1", "/debug/pprof/goroutine?debug=1"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body := readAll(t, resp)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d", path, resp.StatusCode)
		}
		if body == "" {
			t.Errorf("GET %s returned empty body", path)
		}
	}
}

// TestPanicCountedAndStackLogged: a handler panic increments serve.panics
// and emits a structured log line carrying the stack trace.
func TestPanicCountedAndStackLogged(t *testing.T) {
	var buf bytes.Buffer
	stats := resilience.NewStats()
	s := New(Config{Stats: stats, Logger: obs.NewLogger(&buf, obs.LevelError)})
	h := s.withRecovery(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("pathological page")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/extract", strings.NewReader("x")))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rec.Code)
	}
	if got := stats.Get("serve.panics"); got != 1 {
		t.Errorf("serve.panics = %d, want 1", got)
	}
	var line map[string]any
	if err := json.Unmarshal(buf.Bytes(), &line); err != nil {
		t.Fatalf("panic log is not one JSON object: %v: %s", err, buf.String())
	}
	if line["level"] != "error" || line["msg"] != "recovered panic" {
		t.Errorf("unexpected log line: %v", line)
	}
	if p, _ := line["panic"].(string); !strings.Contains(p, "pathological page") {
		t.Errorf("log panic field = %v", line["panic"])
	}
	if stack, _ := line["stack"].(string); !strings.Contains(stack, "goroutine") {
		t.Errorf("log stack field does not look like a stack: %.80v", line["stack"])
	}
}

// TestAccessLogCarriesDecisionSummary: each extraction request emits one
// structured access-log line naming what was extracted and why.
func TestAccessLogCarriesDecisionSummary(t *testing.T) {
	buf := &syncBuffer{}
	ts := httptest.NewServer(New(Config{
		Stats:  resilience.NewStats(),
		Logger: obs.NewLogger(buf, obs.LevelInfo),
	}))
	defer ts.Close()
	page := sitegen.Canoe()
	post(t, ts.URL+"/extract?site="+page.Site, page.HTML)

	data := buf.waitLine(t)
	var line map[string]any
	if err := json.Unmarshal(data, &line); err != nil {
		t.Fatalf("access log is not one JSON object: %v: %s", err, data)
	}
	if line["msg"] != "request" || line["method"] != "POST" || line["path"] != "/extract" {
		t.Fatalf("unexpected access line: %v", line)
	}
	if line["status"] != float64(http.StatusOK) {
		t.Errorf("status = %v", line["status"])
	}
	for _, key := range []string{"site", "subtree", "separator", "objects", "durMs"} {
		if _, ok := line[key]; !ok {
			t.Errorf("access line missing %q: %v", key, line)
		}
	}
	if line["separator"] != "table" {
		t.Errorf("separator = %v, want table", line["separator"])
	}
}

// TestStatszMatchesMetricsz: the two endpoints read the same registry, so
// a counter visible on one must be visible on the other.
func TestStatszMatchesMetricsz(t *testing.T) {
	stats := resilience.NewStats()
	ts := httptest.NewServer(New(Config{Stats: stats}))
	defer ts.Close()
	page := sitegen.Canoe()
	post(t, ts.URL+"/extract?site="+page.Site, page.HTML)

	resp, err := http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	var out statszResponse
	err = json.NewDecoder(resp.Body).Decode(&out)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	ext, ok := out.Counters["core.extractions"]
	if !ok || ext < 1 {
		t.Fatalf("statsz counters missing core.extractions: %v", out.Counters)
	}
	if got := stats.Get("core.extractions"); got != ext {
		t.Errorf("registry core.extractions = %d, statsz = %d", got, ext)
	}
}
