package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"omini/internal/obs"
	"omini/internal/resilience"
	"omini/internal/sitegen"
)

// traceFromHeader parses and validates the response's X-Omini-Trace
// header, returning the trace ID.
func traceFromHeader(t *testing.T, resp *http.Response) string {
	t.Helper()
	h := resp.Header.Get(obs.TraceHeader)
	if h == "" {
		t.Fatalf("response has no %s header", obs.TraceHeader)
	}
	sc, err := obs.ParseTraceHeader(h)
	if err != nil || !sc.Valid() {
		t.Fatalf("bad trace header %q: %v", h, err)
	}
	if !sc.Sampled {
		t.Errorf("response header %q not marked sampled", h)
	}
	return sc.TraceID.String()
}

// getTrace fetches one trace by ID from /tracez.
func getTrace(t *testing.T, base, id string) obs.TraceData {
	t.Helper()
	resp, err := http.Get(base + "/tracez?id=" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/tracez?id=%s status = %d", id, resp.StatusCode)
	}
	var td obs.TraceData
	if err := json.NewDecoder(resp.Body).Decode(&td); err != nil {
		t.Fatalf("trace detail not JSON: %v", err)
	}
	return td
}

// spanNames returns the set of span names in a trace.
func spanNames(td obs.TraceData) map[string]obs.PhaseSample {
	out := make(map[string]obs.PhaseSample, len(td.Spans))
	for _, s := range td.Spans {
		out[s.Name] = s
	}
	return out
}

func TestExtractTracedEndToEnd(t *testing.T) {
	ts := httptest.NewServer(New(Config{Stats: resilience.NewStats()}))
	defer ts.Close()
	page := sitegen.Canoe()

	// First request: rule miss, discovery — the slow path.
	resp, body := post(t, ts.URL+"/extract?site="+page.Site, page.HTML)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	slowID := traceFromHeader(t, resp)

	td := getTrace(t, ts.URL, slowID)
	if td.Op != "/extract" || td.Site != page.Site || td.Status != http.StatusOK {
		t.Errorf("summary = %+v", td.TraceSummary)
	}
	if td.Path != "slow" {
		t.Errorf("path = %q, want slow on a rule miss", td.Path)
	}
	if td.Charges["tokens"] <= 0 || td.Charges["nodes"] <= 0 {
		t.Errorf("governor charges missing from trace: %v", td.Charges)
	}
	spans := spanNames(td)
	handler, ok := spans["handler"]
	if !ok {
		t.Fatalf("no handler root span; spans: %v", td.Spans)
	}
	if handler.ParentSpanID != "" {
		t.Errorf("locally-rooted handler span has parent %q", handler.ParentSpanID)
	}
	farmSlow, ok := spans["farm.slow"]
	if !ok {
		t.Fatalf("no farm.slow span; spans: %v", td.Spans)
	}
	if farmSlow.ParentSpanID != handler.SpanID {
		t.Errorf("farm.slow parent = %q, want handler %q", farmSlow.ParentSpanID, handler.SpanID)
	}
	for _, phase := range pipelinePhases {
		if _, ok := spans[phase]; !ok {
			t.Errorf("pipeline phase %q missing from span tree", phase)
		}
	}

	// Second request: cached rule — the fast path, a distinct trace.
	resp2, _ := post(t, ts.URL+"/extract?site="+page.Site, page.HTML)
	fastID := traceFromHeader(t, resp2)
	if fastID == slowID {
		t.Fatal("two requests shared one trace ID")
	}
	td2 := getTrace(t, ts.URL, fastID)
	if td2.Path != "fast" {
		t.Errorf("path = %q, want fast on a rule hit", td2.Path)
	}
	if _, ok := spanNames(td2)["farm.fast"]; !ok {
		t.Errorf("no farm.fast span on the rule hit; spans: %v", td2.Spans)
	}

	// The list view carries both, newest first.
	lresp, err := http.Get(ts.URL + "/tracez")
	if err != nil {
		t.Fatal(err)
	}
	defer lresp.Body.Close()
	var list tracezResponse
	if err := json.NewDecoder(lresp.Body).Decode(&list); err != nil {
		t.Fatalf("/tracez not JSON: %v", err)
	}
	if list.Capacity != obs.DefaultTraceCapacity || list.Stored != 2 || len(list.Traces) != 2 {
		t.Fatalf("list = capacity %d stored %d len %d", list.Capacity, list.Stored, len(list.Traces))
	}
	if list.Traces[0].TraceID != fastID || list.Traces[1].TraceID != slowID {
		t.Errorf("list order = %s, %s; want newest first", list.Traces[0].TraceID, list.Traces[1].TraceID)
	}
}

func TestTracezUnknownIDIs404(t *testing.T) {
	ts := httptest.NewServer(New(Config{Stats: resilience.NewStats()}))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/tracez?id=" + strings.Repeat("ab", 16))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status = %d, want 404", resp.StatusCode)
	}
}

func TestTraceSamplingDisabledStillHonorsExplicitAsk(t *testing.T) {
	srv := New(Config{Stats: resilience.NewStats(), TraceSampleRate: -1})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	page := sitegen.Canoe()

	resp, _ := post(t, ts.URL+"/extract?site="+page.Site, page.HTML)
	if h := resp.Header.Get(obs.TraceHeader); h != "" {
		t.Errorf("head sampling off, but response carries trace header %q", h)
	}
	if n := srv.Traces().Len(); n != 0 {
		t.Errorf("sink holds %d traces with sampling off", n)
	}

	// ?trace=1 overrides the sampler: the client asked.
	resp2, body := post(t, ts.URL+"/extract?trace=1&site="+page.Site, page.HTML)
	id := traceFromHeader(t, resp2)
	var out objectResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Trace == nil {
		t.Fatal("?trace=1 response lacks the inline trace")
	}
	if out.Trace.TraceID != id {
		t.Errorf("inline trace ID %q != header trace ID %q", out.Trace.TraceID, id)
	}
	if len(out.Trace.Charges) == 0 {
		t.Error("inline trace lacks governor charges")
	}
	if _, ok := srv.Traces().Get(id); !ok {
		t.Error("explicitly-asked trace missing from the sink")
	}
}

func TestInlineTraceOnlyWhenAsked(t *testing.T) {
	ts := httptest.NewServer(New(Config{Stats: resilience.NewStats()}))
	defer ts.Close()
	page := sitegen.Canoe()
	_, body := post(t, ts.URL+"/extract?site="+page.Site, page.HTML)
	var out objectResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Trace != nil {
		t.Error("sampled request without ?trace=1 shipped an inline trace")
	}
}

func TestErrorBodyCarriesTraceID(t *testing.T) {
	srv := New(Config{Stats: resilience.NewStats()})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// An unprocessable page fails inside extraction: 422, traced.
	resp, body := post(t, ts.URL+"/extract", "<html><body>prose only</body></html>")
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d, want 422", resp.StatusCode)
	}
	id := traceFromHeader(t, resp)
	var e errorResponse
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatal(err)
	}
	if e.TraceID != id {
		t.Errorf("error body traceId = %q, want header's %q", e.TraceID, id)
	}

	// The errored trace is pinned in the sink with the failure recorded.
	td, ok := srv.Traces().Get(id)
	if !ok {
		t.Fatal("errored trace missing from the sink")
	}
	if td.Status != http.StatusUnprocessableEntity || td.Error == "" {
		t.Errorf("errored trace summary = %+v", td.TraceSummary)
	}
}

func TestUpstreamHeaderDecisionWins(t *testing.T) {
	srv := New(Config{Stats: resilience.NewStats()})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	page := sitegen.Canoe()

	// A sampled upstream header: its trace ID is adopted and the local
	// handler root parents to the upstream span.
	up := obs.SpanContext{TraceID: obs.NewTraceID(), Sampled: true}
	up.SpanID[0] = 0xfe
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/extract?site="+page.Site, strings.NewReader(page.HTML))
	req.Header.Set(obs.TraceHeader, up.Header())
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if id := traceFromHeader(t, resp); id != up.TraceID.String() {
		t.Errorf("trace ID %q, want the upstream's %q", id, up.TraceID)
	}
	td, ok := srv.Traces().Get(up.TraceID.String())
	if !ok {
		t.Fatal("adopted trace missing from the sink")
	}
	if h, ok := spanNames(td)["handler"]; !ok || h.ParentSpanID != up.SpanID.String() {
		t.Errorf("handler parent = %+v, want upstream span %s", h, up.SpanID)
	}

	// An unsampled upstream header suppresses tracing even when the local
	// sampler would record: the coordinator decided for the whole request.
	down := obs.SpanContext{TraceID: obs.NewTraceID(), Sampled: false}
	req2, _ := http.NewRequest(http.MethodPost, ts.URL+"/extract?site="+page.Site, strings.NewReader(page.HTML))
	req2.Header.Set(obs.TraceHeader, down.Header())
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if h := resp2.Header.Get(obs.TraceHeader); h != "" {
		t.Errorf("unsampled upstream decision ignored; response header %q", h)
	}
	if _, ok := srv.Traces().Get(down.TraceID.String()); ok {
		t.Error("unsampled request was recorded anyway")
	}
}

func TestRequestHistogramCarriesExemplar(t *testing.T) {
	stats := resilience.NewStats()
	ts := httptest.NewServer(New(Config{Stats: stats}))
	defer ts.Close()
	page := sitegen.Canoe()
	resp, _ := post(t, ts.URL+"/extract?site="+page.Site, page.HTML)
	id := traceFromHeader(t, resp)

	var sb strings.Builder
	if err := stats.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `trace_id="`+id+`"`) {
		t.Errorf("no exemplar for trace %s in exposition", id)
	}
}
