package separator

import (
	"sort"
	"strings"

	"omini/internal/tagtree"
)

// pp is the Partial Path heuristic of Section 5.5, introduced by Omini:
// multiple instances of one object type share the same tag structure, so
// the tag whose downward paths repeat most often is the likely separator.
// All paths from each candidate node (a child of the chosen subtree) to
// every node reachable from it are listed and counted; candidate tags are
// ranked descending by path count, with longer paths (more structure)
// breaking ties. With no paths longer than one, PP reduces to highest
// count — exactly the paper's remark about the Library of Congress page.
// Tags whose best path occurs only once are not ranked (the paper's Table 8
// lists no count-1 tags): a pattern seen once separates nothing.
type pp struct{}

// PP returns the partial path heuristic.
func PP() Heuristic { return pp{} }

func (pp) Name() string { return "PP" }

func (pp) Letter() byte { return 'P' }

// PathCount is one row of the partial-path listing (Table 7).
type PathCount struct {
	// Path is the dot-joined downward tag path, e.g. "table.tr.td".
	Path string
	// Count is the number of occurrences of the path across all candidate
	// nodes.
	Count int
}

func (h pp) Rank(sub *tagtree.Node) []Ranked { return h.rankWith(NewStats(sub)) }

func (pp) rankWith(st *Stats) []Ranked {
	trie := st.pp()
	stats := st.tags
	type best struct {
		count  int
		length int
	}
	// The trie dedups top-level tags by construction, so the best path per
	// candidate tag is a max over that child's trie subtree: highest count,
	// longest path among those.
	bests := make(map[string]best, len(trie.children))
	tags := make([]string, 0, len(trie.children))
	for _, top := range trie.children {
		b := best{}
		var scan func(t *ppTrieNode)
		scan = func(t *ppTrieNode) {
			if t.count > b.count || (t.count == b.count && t.depth > b.length) {
				b = best{count: t.count, length: t.depth}
			}
			for _, c := range t.children {
				scan(c)
			}
		}
		scan(top)
		bests[top.tag] = b
		tags = append(tags, top.tag)
	}
	sort.Slice(tags, func(i, j int) bool {
		a, b := bests[tags[i]], bests[tags[j]]
		if a.count != b.count {
			return a.count > b.count
		}
		if a.length != b.length {
			return a.length > b.length
		}
		// Every path starts at a child of sub, so both tags have child
		// stats; remaining ties follow document order of first appearance.
		return stats[tags[i]].first < stats[tags[j]].first
	})
	out := make([]Ranked, 0, len(tags))
	for _, tag := range tags {
		if bests[tag].count < 2 {
			continue
		}
		out = append(out, Ranked{Tag: tag, Score: float64(bests[tag].count)})
	}
	return out
}

// ppTrieNode is one node of the partial-path trie: the tags on the way from
// the trie root to the node spell a downward tag path, count is the number
// of occurrences of that path. Children are a small slice scanned linearly —
// the distinct continuations of one path are few, and the scan avoids a map
// allocation per trie node.
type ppTrieNode struct {
	tag      string
	depth    int // path length in tags
	count    int
	children []*ppTrieNode
}

// child returns the continuation of t's path by tag, creating it on first
// use.
func (t *ppTrieNode) child(tag string) *ppTrieNode {
	for _, c := range t.children {
		if c.tag == tag {
			return c
		}
	}
	c := &ppTrieNode{tag: tag, depth: t.depth + 1}
	t.children = append(t.children, c)
	return c
}

// buildPPTrie counts every downward tag path starting at a child of sub.
// Replacing the per-node strings.Join of the naive enumeration, each tag
// node costs one linear trie step; path strings are only materialized once
// per distinct path, by PPPaths.
func buildPPTrie(sub *tagtree.Node) *ppTrieNode {
	root := &ppTrieNode{}
	var walk func(n *tagtree.Node, at *ppTrieNode)
	walk = func(n *tagtree.Node, at *ppTrieNode) {
		if n.IsContent() {
			return
		}
		at = at.child(n.Tag)
		at.count++
		for _, c := range n.Children {
			walk(c, at)
		}
	}
	for _, c := range sub.Children {
		walk(c, root)
	}
	return root
}

// PPPaths enumerates every downward tag path starting at a child of the
// chosen subtree (Table 7): for each candidate child c and each tag node v
// reachable from c, the dot-joined sequence of tag names from c to v counts
// one occurrence. Paths are returned in descending count order, ties broken
// by longer path then lexicographic order.
func PPPaths(sub *tagtree.Node) []PathCount {
	root := buildPPTrie(sub)
	var out []PathCount
	var parts []string
	var emit func(t *ppTrieNode)
	emit = func(t *ppTrieNode) {
		parts = append(parts, t.tag)
		out = append(out, PathCount{Path: strings.Join(parts, "."), Count: t.count})
		for _, c := range t.children {
			emit(c)
		}
		parts = parts[:len(parts)-1]
	}
	for _, c := range root.children {
		emit(c)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Count != b.Count {
			return a.Count > b.Count
		}
		la, lb := strings.Count(a.Path, "."), strings.Count(b.Path, ".")
		if la != lb {
			return la > lb
		}
		return a.Path < b.Path
	})
	return out
}
