package separator

import (
	"sort"
	"strings"

	"omini/internal/tagtree"
)

// pp is the Partial Path heuristic of Section 5.5, introduced by Omini:
// multiple instances of one object type share the same tag structure, so
// the tag whose downward paths repeat most often is the likely separator.
// All paths from each candidate node (a child of the chosen subtree) to
// every node reachable from it are listed and counted; candidate tags are
// ranked descending by path count, with longer paths (more structure)
// breaking ties. With no paths longer than one, PP reduces to highest
// count — exactly the paper's remark about the Library of Congress page.
// Tags whose best path occurs only once are not ranked (the paper's Table 8
// lists no count-1 tags): a pattern seen once separates nothing.
type pp struct{}

// PP returns the partial path heuristic.
func PP() Heuristic { return pp{} }

func (pp) Name() string { return "PP" }

func (pp) Letter() byte { return 'P' }

// PathCount is one row of the partial-path listing (Table 7).
type PathCount struct {
	// Path is the dot-joined downward tag path, e.g. "table.tr.td".
	Path string
	// Count is the number of occurrences of the path across all candidate
	// nodes.
	Count int
}

func (pp) Rank(sub *tagtree.Node) []Ranked {
	paths := PPPaths(sub)
	stats := childStats(sub)
	type best struct {
		count  int
		length int
	}
	bests := make(map[string]best)
	var tags []string
	for _, pc := range paths {
		tag := pc.Path
		if dot := strings.IndexByte(tag, '.'); dot >= 0 {
			tag = tag[:dot]
		}
		length := strings.Count(pc.Path, ".") + 1
		b, ok := bests[tag]
		if !ok {
			tags = append(tags, tag)
			bests[tag] = best{count: pc.Count, length: length}
			continue
		}
		if pc.Count > b.count || (pc.Count == b.count && length > b.length) {
			b.count, b.length = pc.Count, length
			bests[tag] = b
		}
	}
	sort.SliceStable(tags, func(i, j int) bool {
		a, b := bests[tags[i]], bests[tags[j]]
		if a.count != b.count {
			return a.count > b.count
		}
		if a.length != b.length {
			return a.length > b.length
		}
		// Every path starts at a child of sub, so both tags have child
		// stats; remaining ties follow document order of first appearance.
		return stats[tags[i]].first < stats[tags[j]].first
	})
	out := make([]Ranked, 0, len(tags))
	for _, tag := range tags {
		if bests[tag].count < 2 {
			continue
		}
		out = append(out, Ranked{Tag: tag, Score: float64(bests[tag].count)})
	}
	return out
}

// PPPaths enumerates every downward tag path starting at a child of the
// chosen subtree (Table 7): for each candidate child c and each tag node v
// reachable from c, the dot-joined sequence of tag names from c to v counts
// one occurrence. Paths are returned in descending count order, ties broken
// by longer path then lexicographic order.
func PPPaths(sub *tagtree.Node) []PathCount {
	counts := make(map[string]int)
	var stack []string
	var walk func(n *tagtree.Node)
	walk = func(n *tagtree.Node) {
		if n.IsContent() {
			return
		}
		stack = append(stack, n.Tag)
		counts[strings.Join(stack, ".")]++
		for _, c := range n.Children {
			walk(c)
		}
		stack = stack[:len(stack)-1]
	}
	for _, c := range sub.Children {
		walk(c)
	}
	out := make([]PathCount, 0, len(counts))
	for p, c := range counts {
		out = append(out, PathCount{Path: p, Count: c})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Count != b.Count {
			return a.Count > b.Count
		}
		la, lb := strings.Count(a.Path, "."), strings.Count(b.Path, ".")
		if la != lb {
			return la > lb
		}
		return a.Path < b.Path
	})
	return out
}
