package separator

import (
	"reflect"
	"testing"

	"omini/internal/sitegen"
	"omini/internal/subtree"
	"omini/internal/tagtree"
)

// chosenSubtree parses a replica page and resolves its ground-truth minimal
// subtree, which is the input every separator heuristic receives.
func chosenSubtree(t *testing.T, page sitegen.Page) *tagtree.Node {
	t.Helper()
	root, err := tagtree.Parse(page.HTML)
	if err != nil {
		t.Fatalf("parse %s: %v", page.Name, err)
	}
	sub := tagtree.FindPath(root, page.Truth.SubtreePath)
	if sub == nil {
		t.Fatalf("truth path %q does not resolve; tree:\n%s",
			page.Truth.SubtreePath, tagtree.Render(root, tagtree.RenderOptions{MaxDepth: 3}))
	}
	return sub
}

func TestLOCReplicaShape(t *testing.T) {
	body := chosenSubtree(t, sitegen.LOC())
	counts := body.ChildTagCounts()
	// The paper's Figure 2 counts: hr x21, a x21, pre x20.
	if counts["hr"] != 21 || counts["a"] != 21 || counts["pre"] != 20 {
		t.Errorf("LOC child counts = hr:%d a:%d pre:%d, want 21/21/20",
			counts["hr"], counts["a"], counts["pre"])
	}
}

func TestCanoeReplicaShape(t *testing.T) {
	form := chosenSubtree(t, sitegen.Canoe())
	if form.Tag != "form" {
		t.Fatalf("subtree tag = %q, want form", form.Tag)
	}
	if got := form.Fanout(); got != 19 {
		t.Errorf("form fanout = %d, want 19 (Figure 5)", got)
	}
	counts := form.ChildTagCounts()
	want := map[string]int{"img": 2, "br": 2, "table": 13, "map": 1, "form": 1}
	for tag, n := range want {
		if counts[tag] != n {
			t.Errorf("form child %s count = %d, want %d", tag, counts[tag], n)
		}
	}
}

// Table 1 behaviour: on the canoe tree HF's top subtree is the navigation
// font, while GSI, LTC and the compound algorithm rank form[4] first.
func TestCanoeSubtreeHeuristicsMatchTable1(t *testing.T) {
	page := sitegen.Canoe()
	root, err := tagtree.Parse(page.HTML)
	if err != nil {
		t.Fatal(err)
	}
	hfTop := subtree.HF().Rank(root)[0].Node
	if hfTop.Tag != "font" {
		t.Errorf("HF top = %s, want the nav font (Table 1 rank 1)", tagtree.Path(hfTop))
	}
	for _, h := range []subtree.Heuristic{subtree.GSI(), subtree.LTC(), subtree.Compound()} {
		top := h.Rank(root)[0].Node
		if got := tagtree.Path(top); got != page.Truth.SubtreePath {
			t.Errorf("%s top = %s, want %s", h.Name(), got, page.Truth.SubtreePath)
		}
	}
	// Table 1 ranks 2 and 3 for HF: form[4] then body.
	hfRanked := subtree.HF().Rank(root)
	if got := tagtree.Path(hfRanked[1].Node); got != "html[1].body[2].form[4]" {
		t.Errorf("HF rank 2 = %s, want form[4]", got)
	}
	if got := tagtree.Path(hfRanked[2].Node); got != "html[1].body[2]" {
		t.Errorf("HF rank 3 = %s, want body", got)
	}
}

// Table 2 behaviour: SD on the LOC body ranks hr, pre, a — ascending σ with
// the separator first.
func TestSDOnLOCMatchesTable2(t *testing.T) {
	body := chosenSubtree(t, sitegen.LOC())
	ranked := SD().Rank(body)
	if len(ranked) != 3 {
		t.Fatalf("SD returned %d candidates, want 3 (hr, pre, a): %v", len(ranked), ranked)
	}
	if ranked[0].Tag != "hr" {
		t.Errorf("SD rank 1 = %q, want hr", ranked[0].Tag)
	}
	got := map[string]bool{}
	for _, r := range ranked {
		got[r.Tag] = true
	}
	for _, tag := range []string{"hr", "pre", "a"} {
		if !got[tag] {
			t.Errorf("SD ranking missing %q: %v", tag, ranked)
		}
	}
	// σ ascends except within the documented 5% near-tie window, where the
	// more frequent tag ranks first.
	for i := 1; i < len(ranked); i++ {
		if ranked[i].Score < ranked[i-1].Score*0.95 {
			t.Errorf("SD scores not ascending beyond near-tie tolerance: %v", ranked)
		}
	}
}

// Table 3 behaviour: RP on the canoe form ranks (table,tr) first with a
// difference of zero, and the chosen separator tag is table.
func TestRPOnCanoeMatchesTable3(t *testing.T) {
	form := chosenSubtree(t, sitegen.Canoe())
	pairs := RPPairs(form)
	if len(pairs) == 0 {
		t.Fatal("no RP pairs")
	}
	top := pairs[0]
	if top.Pair.First != "table" || top.Pair.Second != "tr" {
		t.Errorf("top pair = %v, want (table,tr)", top.Pair)
	}
	if top.Diff != 0 {
		t.Errorf("top pair diff = %d, want 0", top.Diff)
	}
	// The (img,br) pair of Table 3 with count 2 and diff 0.
	found := false
	for _, p := range pairs {
		if p.Pair == (TagPair{First: "img", Second: "br"}) {
			found = true
			if p.Count != 2 || p.Diff != 0 {
				t.Errorf("(img,br) = count %d diff %d, want 2/0", p.Count, p.Diff)
			}
		}
	}
	if !found {
		t.Error("(img,br) pair missing")
	}
	ranked := RP().Rank(form)
	if len(ranked) == 0 || ranked[0].Tag != "table" {
		t.Errorf("RP rank 1 = %v, want table", ranked)
	}
}

func TestRPEmptyWhenNoRepeatingPairs(t *testing.T) {
	root, err := tagtree.Parse(`<html><body><p>a</p>text<b>c</b>text<i>d</i></body></html>`)
	if err != nil {
		t.Fatal(err)
	}
	body := root.FindAll("body")[0]
	if got := RP().Rank(body); len(got) != 0 {
		t.Errorf("RP = %v, want empty (no answer)", got)
	}
}

// Table 6 behaviour: SB sibling pair counts on both replicas.
func TestSBPairsMatchTable6(t *testing.T) {
	form := chosenSubtree(t, sitegen.Canoe())
	pairs := SBPairs(form)
	wantCanoe := map[TagPair]int{
		{First: "table", Second: "table"}: 11,
		{First: "img", Second: "br"}:      2,
		{First: "br", Second: "img"}:      1,
		{First: "br", Second: "table"}:    1,
		{First: "table", Second: "map"}:   1,
		{First: "map", Second: "table"}:   1,
		{First: "table", Second: "form"}:  1,
	}
	got := make(map[TagPair]int, len(pairs))
	for _, p := range pairs {
		got[p.Pair] = p.Count
	}
	for pair, want := range wantCanoe {
		if got[pair] != want {
			t.Errorf("canoe SB pair %v = %d, want %d", pair, got[pair], want)
		}
	}
	if pairs[0].Pair != (TagPair{First: "table", Second: "table"}) {
		t.Errorf("canoe SB top pair = %v, want (table,table)", pairs[0].Pair)
	}

	body := chosenSubtree(t, sitegen.LOC())
	locPairs := SBPairs(body)
	locGot := make(map[TagPair]int, len(locPairs))
	for _, p := range locPairs {
		locGot[p.Pair] = p.Count
	}
	wantLOC := map[TagPair]int{
		{First: "hr", Second: "pre"}:  20,
		{First: "pre", Second: "a"}:   20,
		{First: "a", Second: "hr"}:    20,
		{First: "h1", Second: "i"}:    1,
		{First: "i", Second: "hr"}:    1,
		{First: "hr", Second: "a"}:    1,
		{First: "a", Second: "br"}:    1,
		{First: "br", Second: "form"}: 1,
		{First: "form", Second: "p"}:  1,
	}
	for pair, want := range wantLOC {
		if locGot[pair] != want {
			t.Errorf("LOC SB pair %v = %d, want %d", pair, locGot[pair], want)
		}
	}
	// (hr,pre) appears before (pre,a) in the document, so it ranks first.
	if locPairs[0].Pair != (TagPair{First: "hr", Second: "pre"}) {
		t.Errorf("LOC SB top pair = %v, want (hr,pre)", locPairs[0].Pair)
	}
	if got := SB().Rank(body); len(got) == 0 || got[0].Tag != "hr" {
		t.Errorf("LOC SB separator = %v, want hr", got)
	}
	if got := SB().Rank(form); len(got) == 0 || got[0].Tag != "table" {
		t.Errorf("canoe SB separator = %v, want table", got)
	}
}

// Tables 7/8 behaviour: PP path counts and tag rankings on both replicas.
func TestPPMatchesTables7And8(t *testing.T) {
	form := chosenSubtree(t, sitegen.Canoe())
	paths := PPPaths(form)
	counts := make(map[string]int, len(paths))
	for _, pc := range paths {
		counts[pc.Path] = pc.Count
	}
	wantPaths := map[string]int{
		"table.tr.td":             26,
		"table.tr":                13,
		"table":                   13,
		"table.tr.td.img":         12,
		"table.tr.td.table":       12,
		"table.tr.td.table.tr":    12,
		"form.table.tr.td.input":  2,
		"form.table.tr.td":        2,
		"img":                     2,
		"br":                      2,
		"table.tr.td.table.tr.td": 24,
	}
	for p, want := range wantPaths {
		if counts[p] != want {
			t.Errorf("path %q count = %d, want %d", p, counts[p], want)
		}
	}

	ranked := PP().Rank(form)
	wantOrder := []string{"table", "form", "img", "br"} // map occurs once: below threshold
	if got := Tags(ranked); !reflect.DeepEqual(got, wantOrder) {
		t.Errorf("canoe PP ranking = %v, want %v (Table 8)", got, wantOrder)
	}
	if ranked[0].Score != 26 {
		t.Errorf("canoe PP top score = %v, want 26", ranked[0].Score)
	}

	body := chosenSubtree(t, sitegen.LOC())
	locRanked := PP().Rank(body)
	if len(locRanked) < 4 {
		t.Fatalf("LOC PP ranking too short: %v", locRanked)
	}
	wantLOC := []Ranked{
		{Tag: "hr", Score: 21},
		{Tag: "a", Score: 21},
		{Tag: "pre", Score: 20},
		{Tag: "form", Score: 8},
	}
	for i, want := range wantLOC {
		if locRanked[i].Tag != want.Tag || locRanked[i].Score != want.Score {
			t.Errorf("LOC PP rank %d = %s/%v, want %s/%v (Table 8)",
				i+1, locRanked[i].Tag, locRanked[i].Score, want.Tag, want.Score)
		}
	}
}

// IPS uses the per-subtree-type lists of Table 4: table first for form
// subtrees, tr first for table subtrees, li for lists.
func TestIPSUsesSubtreeTypeLists(t *testing.T) {
	form := chosenSubtree(t, sitegen.Canoe())
	ranked := IPS().Rank(form)
	if len(ranked) == 0 || ranked[0].Tag != "table" {
		t.Errorf("IPS on form subtree = %v, want table first", Tags(ranked))
	}

	root, err := tagtree.Parse(`<html><body><ul>` +
		`<li>one item</li><li>two item</li><li>three item</li>` +
		`</ul></body></html>`)
	if err != nil {
		t.Fatal(err)
	}
	ul := root.FindAll("ul")[0]
	ranked = IPS().Rank(ul)
	if len(ranked) == 0 || ranked[0].Tag != "li" {
		t.Errorf("IPS on ul subtree = %v, want li first", Tags(ranked))
	}

	tbl, err := tagtree.Parse(`<html><body><table>` +
		`<tr><td>a</td></tr><tr><td>b</td></tr><tr><td>c</td></tr>` +
		`</table></body></html>`)
	if err != nil {
		t.Fatal(err)
	}
	ranked = IPS().Rank(tbl.FindAll("table")[0])
	if len(ranked) == 0 || ranked[0].Tag != "tr" {
		t.Errorf("IPS on table subtree = %v, want tr first", Tags(ranked))
	}
}

func TestIPSThreshold(t *testing.T) {
	// A single table child is below the occurrence threshold: no answer.
	root, err := tagtree.Parse(`<html><body><form><table><tr><td>x</td></tr></table></form></body></html>`)
	if err != nil {
		t.Fatal(err)
	}
	form := root.FindAll("form")[0]
	if got := IPS().Rank(form); len(got) != 0 {
		t.Errorf("IPS = %v, want empty below threshold", Tags(got))
	}
}

func TestIPSFallsBackToGlobalList(t *testing.T) {
	// A div subtree has no Table 4 entry; the global IPSList applies.
	root, err := tagtree.Parse(`<html><body><div>` +
		`<p>a</p><p>b</p><p>c</p><span>x</span><span>y</span><span>z</span>` +
		`</div></body></html>`)
	if err != nil {
		t.Fatal(err)
	}
	div := root.FindAll("div")[0]
	ranked := IPS().Rank(div)
	if len(ranked) != 2 || ranked[0].Tag != "p" || ranked[1].Tag != "span" {
		t.Errorf("IPS on div = %v, want [p span]", Tags(ranked))
	}
}

// HC ranks by raw child appearance count.
func TestHCRanking(t *testing.T) {
	body := chosenSubtree(t, sitegen.LOC())
	ranked := HC().Rank(body)
	if len(ranked) == 0 {
		t.Fatal("HC empty")
	}
	if ranked[0].Tag != "hr" || ranked[0].Score != 21 {
		t.Errorf("HC rank 1 = %s/%v, want hr/21", ranked[0].Tag, ranked[0].Score)
	}
	// a also has 21; hr appears first in the document.
	if ranked[1].Tag != "a" {
		t.Errorf("HC rank 2 = %s, want a", ranked[1].Tag)
	}
}

// IT uses one fixed list for every subtree type — on a form subtree it
// ranks hr/p/table by list position, ignoring the subtree type.
func TestITFixedList(t *testing.T) {
	form := chosenSubtree(t, sitegen.Canoe())
	ranked := IT().Rank(form)
	if len(ranked) == 0 || ranked[0].Tag != "table" {
		t.Errorf("IT on canoe form = %v, want table first (only listed tag above threshold)", Tags(ranked))
	}
	body := chosenSubtree(t, sitegen.LOC())
	ranked = IT().Rank(body)
	if len(ranked) == 0 || ranked[0].Tag != "hr" {
		t.Errorf("IT on LOC body = %v, want hr first", Tags(ranked))
	}
}

func TestAllAndByName(t *testing.T) {
	all := All()
	if len(all) != 5 {
		t.Fatalf("All() returned %d heuristics", len(all))
	}
	wantLetters := map[string]byte{
		"SD": 'S', "RP": 'R', "IPS": 'I', "PP": 'P', "SB": 'B', "HC": 'H', "IT": 'T',
	}
	for name, letter := range wantLetters {
		h := ByName(name)
		if h == nil {
			t.Fatalf("ByName(%q) = nil", name)
		}
		if h.Name() != name || h.Letter() != letter {
			t.Errorf("ByName(%q) = %s/%c", name, h.Name(), h.Letter())
		}
	}
	if ByName("nope") != nil {
		t.Error("ByName(nope) should be nil")
	}
}

func TestRankOfAndTags(t *testing.T) {
	ranked := []Ranked{{Tag: "tr"}, {Tag: "table"}, {Tag: "p"}}
	if got := RankOf(ranked, "table"); got != 2 {
		t.Errorf("RankOf = %d, want 2", got)
	}
	if got := RankOf(ranked, "li"); got != 0 {
		t.Errorf("RankOf(absent) = %d, want 0", got)
	}
	if got := Tags(ranked); !reflect.DeepEqual(got, []string{"tr", "table", "p"}) {
		t.Errorf("Tags = %v", got)
	}
}

// Every heuristic must answer correctly on both replicas: rank 1 is a
// ground-truth separator (this is the success-rate-1.0 scenario).
func TestAllHeuristicsCorrectOnReplicas(t *testing.T) {
	pages := []sitegen.Page{sitegen.LOC(), sitegen.Canoe()}
	for _, page := range pages {
		sub := chosenSubtree(t, page)
		for _, h := range All() {
			ranked := h.Rank(sub)
			if len(ranked) == 0 {
				t.Errorf("%s on %s: no answer", h.Name(), page.Name)
				continue
			}
			if !page.Truth.CorrectSeparator(ranked[0].Tag) {
				t.Errorf("%s on %s: top = %q, want one of %v (full: %v)",
					h.Name(), page.Name, ranked[0].Tag, page.Truth.Separators, Tags(ranked))
			}
		}
	}
}

// Heuristics must be pure functions of the subtree: same input, same output.
func TestHeuristicsDeterministic(t *testing.T) {
	form := chosenSubtree(t, sitegen.Canoe())
	heuristics := append(All(), HC(), IT())
	for _, h := range heuristics {
		first := Tags(h.Rank(form))
		for i := 0; i < 3; i++ {
			if again := Tags(h.Rank(form)); !reflect.DeepEqual(first, again) {
				t.Errorf("%s not deterministic: %v vs %v", h.Name(), first, again)
			}
		}
	}
}

// Empty or leaf-only subtrees must not panic and should yield no answer.
func TestHeuristicsOnDegenerateSubtrees(t *testing.T) {
	root, err := tagtree.Parse(`<html><body><p>only text here</p></body></html>`)
	if err != nil {
		t.Fatal(err)
	}
	p := root.FindAll("p")[0]
	heuristics := append(All(), HC(), IT())
	for _, h := range heuristics {
		ranked := h.Rank(p) // p's only child is a content node
		if len(ranked) != 0 {
			t.Errorf("%s on leaf-only subtree = %v, want empty", h.Name(), Tags(ranked))
		}
	}
}
