package separator

// Differential tests: the optimized shared-index heuristics must produce
// rankings identical to the frozen slowXxx references (slow_test.go) on
// randomized trees and on the corpus replicas. Scores derive from integer
// arithmetic in both implementations, so exact equality is required.

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"omini/internal/tagtree"
)

// randPageHTML emits a random, deliberately sloppy HTML page: nested tags
// from the separator-relevant vocabulary, text runs, void elements, and
// occasionally unclosed tags (tidy repairs them).
func randPageHTML(rng *rand.Rand) string {
	tags := []string{
		"div", "table", "tr", "td", "ul", "li", "p", "b", "a", "span",
		"dl", "dt", "dd", "font", "blockquote", "pre", "h3", "center",
	}
	words := []string{"alpha", "bravo", "charlie", "delta", "echo", "golf", "hotel"}
	var b strings.Builder
	b.WriteString("<html><body>")
	var emit func(depth int)
	emit = func(depth int) {
		n := 1 + rng.Intn(6)
		for i := 0; i < n; i++ {
			switch {
			case depth > 4 || rng.Intn(3) == 0:
				for w := 0; w <= rng.Intn(3); w++ {
					b.WriteString(words[rng.Intn(len(words))])
					b.WriteByte(' ')
				}
			case rng.Intn(8) == 0:
				b.WriteString("<hr>")
			case rng.Intn(8) == 0:
				b.WriteString("<br>")
			default:
				tag := tags[rng.Intn(len(tags))]
				fmt.Fprintf(&b, "<%s>", tag)
				emit(depth + 1)
				if rng.Intn(10) != 0 { // sometimes leave unclosed
					fmt.Fprintf(&b, "</%s>", tag)
				}
			}
		}
	}
	emit(0)
	b.WriteString("</body></html>")
	return b.String()
}

// randSubtrees parses a random page and returns up to max multi-child tag
// nodes to use as chosen subtrees.
func randSubtrees(t *testing.T, rng *rand.Rand, max int) []*tagtree.Node {
	t.Helper()
	root, err := tagtree.Parse(randPageHTML(rng))
	if err != nil {
		t.Fatalf("parse random page: %v", err)
	}
	var subs []*tagtree.Node
	root.Walk(func(n *tagtree.Node) bool {
		if !n.IsContent() && n.Fanout() > 1 && len(subs) < max {
			subs = append(subs, n)
		}
		return true
	})
	return subs
}

func sameRanking(a, b []Ranked) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Tag != b[i].Tag || a[i].Score != b[i].Score {
			return false
		}
	}
	return true
}

func TestDifferentialRankings(t *testing.T) {
	refs := []struct {
		h    Heuristic
		slow func(*tagtree.Node) []Ranked
	}{
		{SD(), slowSDRank},
		{RP(), slowRPRank},
		{IPS(), slowIPSRank},
		{PP(), slowPPRank},
		{SB(), slowSBRank},
		{HC(), slowHCRank},
		{IT(), slowITRank},
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		for _, sub := range randSubtrees(t, rng, 12) {
			for _, ref := range refs {
				got := ref.h.Rank(sub)
				want := ref.slow(sub)
				if !sameRanking(got, want) {
					t.Fatalf("trial %d: %s diverged on %s:\n got: %v\nwant: %v",
						trial, ref.h.Name(), tagtree.Path(sub), got, want)
				}
			}
		}
	}
}

// TestDifferentialPairListings pins the exported pair/path listings (Tables
// 3, 6, 7) to their references, since reports and tests consume them.
func TestDifferentialPairListings(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		for _, sub := range randSubtrees(t, rng, 8) {
			gotRP, wantRP := RPPairs(sub), slowRPPairs(sub)
			if fmt.Sprint(gotRP) != fmt.Sprint(wantRP) {
				t.Fatalf("trial %d: RPPairs diverged on %s:\n got: %v\nwant: %v",
					trial, tagtree.Path(sub), gotRP, wantRP)
			}
			gotSB, wantSB := SBPairs(sub), slowSBPairs(sub)
			if fmt.Sprint(gotSB) != fmt.Sprint(wantSB) {
				t.Fatalf("trial %d: SBPairs diverged on %s:\n got: %v\nwant: %v",
					trial, tagtree.Path(sub), gotSB, wantSB)
			}
			gotPP, wantPP := PPPaths(sub), slowPPPaths(sub)
			if fmt.Sprint(gotPP) != fmt.Sprint(wantPP) {
				t.Fatalf("trial %d: PPPaths diverged on %s:\n got: %v\nwant: %v",
					trial, tagtree.Path(sub), gotPP, wantPP)
			}
		}
	}
}
