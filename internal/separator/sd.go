package separator

import (
	"math"
	"sort"

	"omini/internal/tagtree"
)

// sd is the Standard Deviation heuristic of Section 5.1 (adopted unchanged
// from Embley et al.): multiple instances of one object type are about the
// same size, so the correct separator tag shows the *smallest* standard
// deviation in the distance (in characters of content) between consecutive
// occurrences. Candidates are ranked ascending by σ.
type sd struct{}

// SD returns the standard deviation heuristic.
func SD() Heuristic { return sd{} }

func (sd) Name() string { return "SD" }

func (sd) Letter() byte { return 'S' }

func (h sd) Rank(sub *tagtree.Node) []Ranked { return h.rankWith(NewStats(sub)) }

func (sd) rankWith(st *Stats) []Ranked {
	stats := st.tags
	if len(stats) == 0 {
		return nil
	}
	// Per Section 5.1, σ is computed for the "highest count tags": tags
	// whose appearance count is comparable to the maximum. Rare tags (a
	// banner, one form) cannot separate a result list, and a tag with a
	// single gap would get a degenerate σ of 0.
	maxCount := 0
	for _, s := range stats {
		if s.count > maxCount {
			maxCount = s.count
		}
	}
	threshold := maxCount / 3
	if threshold < 2 {
		threshold = 2
	}

	type entry struct {
		tag   string
		sigma float64
		count int
		first int
	}
	var entries []entry
	for tag, s := range stats {
		if s.count < threshold {
			continue
		}
		gaps := st.gaps(tag)
		if len(gaps) == 0 {
			continue
		}
		entries = append(entries, entry{
			tag:   tag,
			sigma: stddev(gaps),
			count: s.count,
			first: s.first,
		})
	}
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		if a.sigma != b.sigma {
			return a.sigma < b.sigma
		}
		if a.count != b.count {
			return a.count > b.count
		}
		return a.first < b.first
	})
	// Near-tie adjustment: candidates of near-identical regularity (σ
	// within 5%) are ordered by frequency instead. The LOC page's hr and
	// pre bound the same objects and measure nearly the same σ; the extra
	// occurrence of the true bracketing tag (hr, 21 vs 20) is the tell.
	for i := 1; i < len(entries); i++ {
		for j := i; j > 0; j-- {
			hi, lo := entries[j], entries[j-1]
			near := hi.sigma-lo.sigma <= 0.05*hi.sigma
			better := hi.count > lo.count ||
				(hi.count == lo.count && hi.first < lo.first)
			if !near || !better {
				break
			}
			entries[j-1], entries[j] = hi, lo
		}
	}
	out := make([]Ranked, len(entries))
	for i, e := range entries {
		out[i] = Ranked{Tag: e.tag, Score: e.sigma}
	}
	return out
}

// The "distance in terms of the number of characters" of Section 5.1 —
// the content spanned from one occurrence of a tag to the next, including
// the occurrence's own content — is served by Stats.gaps from the prefix
// sums built in NewStats's single child pass.

// stddev is the population standard deviation of xs.
func stddev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	mean := 0.0
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	variance := 0.0
	for _, x := range xs {
		d := x - mean
		variance += d * d
	}
	variance /= float64(len(xs))
	return math.Sqrt(variance)
}
