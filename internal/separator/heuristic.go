// Package separator implements the object separator extraction heuristics
// of the paper's Section 5 — SD (standard deviation), RP (repeating
// pattern), IPS (identifiable path separator), SB (sibling tag) and PP
// (partial path) — plus the two BYU heuristics the paper compares against,
// HC (highest count) and IT (identifiable tag).
//
// Each heuristic independently produces a ranked list of candidate separator
// tags for a chosen object-rich subtree. Following the paper, the candidate
// tags are the tag names appearing among the *child* nodes of the subtree
// root ("it is sufficient to consider only the child nodes in the chosen
// subtree as the candidate separator tags"). A heuristic may return an
// empty list when it has no answer (e.g. RP with no repeating pairs).
package separator

import (
	"omini/internal/tagtree"
)

// Ranked is one entry of a heuristic's candidate-tag ranking.
type Ranked struct {
	// Tag is the candidate separator tag name.
	Tag string
	// Score is the heuristic's figure of merit for reports. Its meaning is
	// heuristic-specific (σ for SD, pair count for RP/SB, path count for
	// PP, appearance count for HC, list position for IPS/IT); the ranking
	// order of the returned slice is authoritative, not the score.
	Score float64
}

// Heuristic ranks candidate separator tags for a chosen subtree.
type Heuristic interface {
	// Name returns the short name used in reports ("SD", "RP", ...).
	Name() string
	// Letter returns the one-letter acronym used in combination names
	// (SD→S, RP→R, IPS→I, PP→P, SB→B, HC→H, IT→T).
	Letter() byte
	// Rank returns candidate tags, best first. An empty slice means the
	// heuristic has no answer for this subtree.
	Rank(sub *tagtree.Node) []Ranked
}

// All returns the five Omini heuristics in the paper's canonical order.
func All() []Heuristic {
	return []Heuristic{SD(), RP(), IPS(), PP(), SB()}
}

// ByName returns the heuristic with the given short name, or nil. Both the
// Omini five and the BYU pair are recognized.
func ByName(name string) Heuristic {
	switch name {
	case "SD":
		return SD()
	case "RP":
		return RP()
	case "IPS":
		return IPS()
	case "PP":
		return PP()
	case "SB":
		return SB()
	case "HC":
		return HC()
	case "IT":
		return IT()
	default:
		return nil
	}
}

// tagStat aggregates the per-tag candidate statistics shared by the
// heuristics: how many children of the subtree root carry the tag and the
// position of its first appearance. NewStats computes them in one pass over
// the children, shared by all heuristics ranking the same subtree.
type tagStat struct {
	count int
	first int
}

// Tags extracts just the tag names from a ranking, preserving order.
func Tags(ranked []Ranked) []string {
	out := make([]string, len(ranked))
	for i, r := range ranked {
		out[i] = r.Tag
	}
	return out
}

// RankOf returns the 1-based position of tag in the ranking, or 0 when the
// tag does not appear.
func RankOf(ranked []Ranked, tag string) int {
	for i, r := range ranked {
		if r.Tag == tag {
			return i + 1
		}
	}
	return 0
}
