package separator

import (
	"sort"

	"omini/internal/tagtree"
)

// sb is the Sibling Tag heuristic of Section 5.4, introduced by Omini: count
// pairs of immediately adjacent sibling tags among the children of the
// minimal subtree and rank the pairs by descending occurrence count, ties by
// order of first appearance in the document. The first tag of the best pair
// is the separator — repetition of a *pattern* of siblings ((hr,pre) twenty
// times on the Library of Congress page, (table,table) eleven times on
// canoe.com) is stronger evidence than a high count of a single tag that may
// appear irregularly.
type sb struct{}

// SB returns the sibling tag heuristic.
func SB() Heuristic { return sb{} }

func (sb) Name() string { return "SB" }

func (sb) Letter() byte { return 'B' }

// SBPair is one row of the sibling-pair ranking (Table 6).
type SBPair struct {
	Pair  TagPair
	Count int
}

func (h sb) Rank(sub *tagtree.Node) []Ranked { return h.rankWith(NewStats(sub)) }

func (sb) rankWith(st *Stats) []Ranked {
	pairs := st.sb()
	stats := st.tags
	var out []Ranked
	seen := make(map[string]bool)
	for _, p := range pairs {
		tag := p.Pair.First
		if _, isChild := stats[tag]; !isChild || seen[tag] {
			continue
		}
		seen[tag] = true
		out = append(out, Ranked{Tag: tag, Score: float64(p.Count)})
	}
	return out
}

// SBPairs computes the sibling-pair ranking of Section 5.4: every adjacent
// pair among the tag children of the subtree root, ranked descending by
// count with ties broken by first appearance. Text between two siblings
// breaks their immediacy (a "a | a | a" link row yields no pairs); a tag's
// own content lives inside it and does not.
func SBPairs(sub *tagtree.Node) []SBPair {
	pairCount := make(map[TagPair]int)
	firstSeen := make(map[TagPair]int)
	prev := ""
	for i, c := range sub.Children {
		if c.IsContent() {
			prev = ""
			continue
		}
		if prev != "" {
			p := TagPair{First: prev, Second: c.Tag}
			if pairCount[p] == 0 {
				firstSeen[p] = i
			}
			pairCount[p]++
		}
		prev = c.Tag
	}
	out := make([]SBPair, 0, len(pairCount))
	for p, c := range pairCount {
		out = append(out, SBPair{Pair: p, Count: c})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Count != b.Count {
			return a.Count > b.Count
		}
		return firstSeen[a.Pair] < firstSeen[b.Pair]
	})
	return out
}
