package separator

import (
	"sort"

	"omini/internal/tagtree"
)

// This file implements the two heuristics of the BYU record-boundary
// discovery system (Embley, Jiang, Ng — SIGMOD'99) that Omini does NOT
// adopt, so the paper's Section 6.7 comparison can be reproduced: HC
// (highest count) and IT (identifiable tag). The BYU system's other two
// heuristics, SD and RP, are shared with Omini; its ontology heuristic is
// human-dependent and excluded, exactly as in the paper.

// hc is the Highest Count heuristic: rank candidate tags by the number of
// times they appear as children of the chosen subtree. The paper found HC
// undesirable — it never appeared in the most successful combinations, and
// PP strictly generalizes it.
type hc struct{}

// HC returns the BYU highest count heuristic.
func HC() Heuristic { return hc{} }

func (hc) Name() string { return "HC" }

func (hc) Letter() byte { return 'H' }

func (h hc) Rank(sub *tagtree.Node) []Ranked { return h.rankWith(NewStats(sub)) }

func (hc) rankWith(st *Stats) []Ranked {
	stats := st.tags
	type entry struct {
		tag   string
		count int
		first int
	}
	entries := make([]entry, 0, len(stats))
	for tag, s := range stats {
		entries = append(entries, entry{tag: tag, count: s.count, first: s.first})
	}
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		if a.count != b.count {
			return a.count > b.count
		}
		return a.first < b.first
	})
	out := make([]Ranked, len(entries))
	for i, e := range entries {
		out[i] = Ranked{Tag: e.tag, Score: float64(e.count)}
	}
	return out
}

// itList is the single predefined, pre-ranked separator list the IT
// heuristic uses for every page regardless of subtree type — the
// inflexibility that motivated Omini's IPS ("instead of using the same list
// of pre-determined and ranked candidate tags for every tag tree, a
// different list is used based on the subtree that is chosen").
var itList = []string{
	"hr", "p", "table", "tr", "li", "dt", "ul", "dl", "blockquote", "pre",
	"div", "b", "font", "a",
}

// itMinCount mirrors the RP/IPS occurrence threshold.
const itMinCount = 2

// it is the BYU Identifiable Tag heuristic.
type it struct{}

// IT returns the BYU identifiable tag heuristic.
func IT() Heuristic { return it{} }

func (it) Name() string { return "IT" }

func (it) Letter() byte { return 'T' }

func (h it) Rank(sub *tagtree.Node) []Ranked { return h.rankWith(NewStats(sub)) }

func (it) rankWith(st *Stats) []Ranked {
	stats := st.tags
	var out []Ranked
	for pos, tag := range itList {
		s, ok := stats[tag]
		if !ok || s.count < itMinCount {
			continue
		}
		out = append(out, Ranked{Tag: tag, Score: float64(pos + 1)})
	}
	return out
}
