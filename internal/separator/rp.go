package separator

import (
	"sort"

	"omini/internal/tagtree"
)

// rpMinPairCount is the occurrence threshold below which RP declines to
// answer (Section 6.5: "both RP and IPS reject tags that occur below a
// given threshold").
const rpMinPairCount = 2

// rp is the Repeating Pattern heuristic of Section 5.2 (adopted from Embley
// et al.): a single tag may mean many things, but a pattern of two tags with
// no text between them is likelier to mean one thing.
//
// The pattern sequence is built at the boundary level of the chosen
// subtree, which is what reproduces the paper's Table 3: every tag child
// contributes its own tag, followed by its opening pattern — the first tag
// inside it when no text intervenes (each <table><tr> result row yields a
// (table,tr) pair). A childless element (an <img>, <br>, or empty <map>)
// additionally pairs with the next sibling tag, since nothing at all stands
// between them. Pairs are ranked by descending count and ascending
// |pairCount − min(count(a), count(b))|; candidate tags inherit the order
// of the pairs they open.
type rp struct{}

// RP returns the repeating pattern heuristic.
func RP() Heuristic { return rp{} }

func (rp) Name() string { return "RP" }

func (rp) Letter() byte { return 'R' }

// TagPair is an ordered pair of tags with no text (or content of any kind)
// between them.
type TagPair struct {
	First, Second string
}

// RPPair is one row of the repeating-pattern pair ranking (Table 3).
type RPPair struct {
	Pair TagPair
	// Count is the number of occurrences of the pair.
	Count int
	// Diff is |Count − min(count(First), count(Second))|.
	Diff int
}

func (h rp) Rank(sub *tagtree.Node) []Ranked { return h.rankWith(NewStats(sub)) }

func (rp) rankWith(st *Stats) []Ranked {
	pairs := st.rp()
	stats := st.tags
	var out []Ranked
	seen := make(map[string]bool)
	for _, p := range pairs {
		if p.Count < rpMinPairCount {
			continue
		}
		tag := p.Pair.First
		if _, isChild := stats[tag]; !isChild || seen[tag] {
			continue
		}
		seen[tag] = true
		out = append(out, Ranked{Tag: tag, Score: float64(p.Count)})
	}
	return out
}

// RPPairs computes the full pair ranking of Section 5.2 over the subtree's
// boundary patterns, in the Table 3 listing order: descending pair count,
// ascending difference, then first appearance.
func RPPairs(sub *tagtree.Node) []RPPair {
	var (
		pairCount = make(map[TagPair]int)
		tagCount  = make(map[string]int)
		firstSeen = make(map[TagPair]int)
		seq       int
	)
	addPair := func(a, b string) {
		p := TagPair{First: a, Second: b}
		if pairCount[p] == 0 {
			firstSeen[p] = seq
		}
		pairCount[p]++
		seq++
	}

	// prevEmpty holds the tag of the preceding childless sibling, if the
	// gap to the current child is content-free.
	prevEmpty := ""
	for _, c := range sub.Children {
		if c.IsContent() {
			prevEmpty = ""
			continue
		}
		tagCount[c.Tag]++
		if prevEmpty != "" {
			addPair(prevEmpty, c.Tag)
		}
		// Opening pattern: the first thing inside the child, when it is a
		// tag (text first means no clean pattern).
		if len(c.Children) > 0 {
			if g := c.Children[0]; !g.IsContent() {
				tagCount[g.Tag]++
				addPair(c.Tag, g.Tag)
			}
			prevEmpty = ""
			continue
		}
		prevEmpty = c.Tag
	}

	out := make([]RPPair, 0, len(pairCount))
	for p, c := range pairCount {
		minTag := tagCount[p.First]
		if tc := tagCount[p.Second]; tc < minTag {
			minTag = tc
		}
		diff := c - minTag
		if diff < 0 {
			diff = -diff
		}
		out = append(out, RPPair{Pair: p, Count: c, Diff: diff})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Count != b.Count {
			return a.Count > b.Count
		}
		if a.Diff != b.Diff {
			return a.Diff < b.Diff
		}
		return firstSeen[a.Pair] < firstSeen[b.Pair]
	})
	return out
}
