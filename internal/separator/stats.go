package separator

import (
	"omini/internal/govern"
	"omini/internal/tagtree"
)

// Stats is a one-pass index over the children of a chosen subtree, shared by
// every heuristic ranking the same subtree: per-tag counts and first
// appearances, a running content-size prefix over the children (so SD's
// inter-occurrence distances become O(1) lookups), per-tag occurrence
// positions, and lazily cached pair/path listings for RP, SB and PP. Build
// one with NewStats and hand it to RankWith to rank several heuristics
// without rescanning the subtree once per heuristic.
type Stats struct {
	sub  *tagtree.Node
	tags map[string]tagStat
	// prefix[i] is the total NodeSize of children[0:i]; the content spanned
	// from child a up to (not including) child b is prefix[b]-prefix[a].
	prefix []int
	// occ lists the positions among sub.Children at which each tag occurs.
	occ map[string][]int

	rpPairs []RPPair
	rpDone  bool
	sbPairs []SBPair
	sbDone  bool
	ppRoot  *ppTrieNode
}

// NewStats indexes the children of sub in a single pass.
func NewStats(sub *tagtree.Node) *Stats {
	st, _ := NewStatsGoverned(sub, nil)
	return st
}

// NewStatsGoverned is NewStats under a resource guard: the child scan
// polls the page context, so indexing a subtree with millions of
// children stops when the page is cancelled or out of time. A nil
// guard makes it identical to NewStats.
func NewStatsGoverned(sub *tagtree.Node, g *govern.Guard) (*Stats, error) {
	st := &Stats{
		sub:    sub,
		tags:   make(map[string]tagStat),
		prefix: make([]int, len(sub.Children)+1),
		occ:    make(map[string][]int),
	}
	for i, c := range sub.Children {
		if err := g.Poll(); err != nil {
			return nil, err
		}
		st.prefix[i+1] = st.prefix[i] + c.NodeSize()
		if c.IsContent() {
			continue
		}
		s, ok := st.tags[c.Tag]
		if !ok {
			s.first = i
		}
		s.count++
		st.tags[c.Tag] = s
		st.occ[c.Tag] = append(st.occ[c.Tag], i)
	}
	return st, nil
}

// Sub returns the subtree the index was built over.
func (st *Stats) Sub() *tagtree.Node { return st.sub }

// FirstIndex returns, for each child tag, the index of its first appearance
// among the subtree's children — the tie-break combine.CombineLists expects.
func (st *Stats) FirstIndex() map[string]int {
	m := make(map[string]int, len(st.tags))
	for tag, s := range st.tags {
		m[tag] = s.first
	}
	return m
}

// gaps returns the content distances between consecutive occurrences of tag
// among the subtree's children (Section 5.1), each gap read off the prefix
// sums instead of re-accumulating child sizes.
func (st *Stats) gaps(tag string) []float64 {
	pos := st.occ[tag]
	if len(pos) < 2 {
		return nil
	}
	out := make([]float64, len(pos)-1)
	for i := range out {
		out[i] = float64(st.prefix[pos[i+1]] - st.prefix[pos[i]])
	}
	return out
}

// rp returns the cached RP pair listing, computing it on first use.
func (st *Stats) rp() []RPPair {
	if !st.rpDone {
		st.rpPairs = RPPairs(st.sub)
		st.rpDone = true
	}
	return st.rpPairs
}

// sb returns the cached SB pair listing, computing it on first use.
func (st *Stats) sb() []SBPair {
	if !st.sbDone {
		st.sbPairs = SBPairs(st.sub)
		st.sbDone = true
	}
	return st.sbPairs
}

// pp returns the cached partial-path trie, computing it on first use.
func (st *Stats) pp() *ppTrieNode {
	if st.ppRoot == nil {
		st.ppRoot = buildPPTrie(st.sub)
	}
	return st.ppRoot
}

// statsRanker is implemented by heuristics that can rank off a shared Stats.
type statsRanker interface {
	rankWith(st *Stats) []Ranked
}

// RankWith ranks candidate tags with h over a prebuilt index, sharing the
// child scan and the cached pair/path listings across heuristics. It is
// equivalent to h.Rank(st.Sub()).
func RankWith(st *Stats, h Heuristic) []Ranked {
	if sr, ok := h.(statsRanker); ok {
		return sr.rankWith(st)
	}
	return h.Rank(st.Sub())
}
