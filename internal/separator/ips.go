package separator

import (
	"omini/internal/tagtree"
)

// ipsMinCount is the appearance threshold below which a tag cannot be an
// IPS answer (Section 6.5). IPS demands three occurrences where IT accepts
// two: a tag appearing twice (an intro paragraph and its blurb) is routine
// page furniture, and filtering it is part of what makes IPS "much higher
// extensibility and scalability" than the fixed-list IT it evolved from.
const ipsMinCount = 3

// ipsTagLists is the per-subtree-type object separator table of the paper's
// Table 4: for each kind of subtree root, the tags observed to separate
// objects within it, most likely first.
var ipsTagLists = map[string][]string{
	"body":       {"table", "p", "hr", "ul", "li", "blockquote", "div", "pre", "b", "a"},
	"table":      {"tr", "b"},
	"form":       {"table", "p", "dl"},
	"td":         {"table", "hr", "dt", "li", "p", "tr", "font"},
	"dl":         {"dt", "dd"},
	"ol":         {"li"},
	"ul":         {"li"},
	"blockquote": {"p"},
}

// IPSList is the global ranking of object separator tags (Section 5.3),
// derived in the paper from the separator-probability distribution of
// Table 5. It is used for subtree types without an entry in Table 4 and for
// candidate tags beyond the per-type list.
var IPSList = []string{
	"tr", "table", "p", "li", "hr", "dt", "ul", "pre", "font", "dl", "div",
	"dd", "blockquote", "b", "a", "span", "td", "br", "h4", "h3", "h2", "h1",
	"strong", "em", "i",
}

// ips is the Identifiable Path Separator heuristic of Section 5.3, Omini's
// evolution of Embley's IT: instead of one predefined separator list for
// every page, the list depends on the tag at which the chosen subtree is
// anchored — tr first for tables, li first for lists, table first for body
// and form subtrees.
type ips struct{}

// IPS returns the identifiable path separator heuristic.
func IPS() Heuristic { return ips{} }

func (ips) Name() string { return "IPS" }

func (ips) Letter() byte { return 'I' }

func (h ips) Rank(sub *tagtree.Node) []Ranked { return h.rankWith(NewStats(sub)) }

func (ips) rankWith(st *Stats) []Ranked {
	stats := st.tags
	sub := st.sub
	var out []Ranked
	seen := make(map[string]bool)
	appendTag := func(tag string, pos int) {
		if seen[tag] {
			return
		}
		if s, ok := stats[tag]; !ok || s.count < ipsMinCount {
			return
		}
		seen[tag] = true
		out = append(out, Ranked{Tag: tag, Score: float64(pos)})
	}
	// First the per-subtree-type list (Table 4), then the global IPSList
	// for any remaining candidates.
	pos := 1
	for _, tag := range ipsTagLists[sub.Tag] {
		appendTag(tag, pos)
		pos++
	}
	for _, tag := range IPSList {
		appendTag(tag, pos)
		pos++
	}
	return out
}
