package separator

// Frozen reference implementations of the five Omini separator heuristics
// plus the BYU pair, copied verbatim from the pre-optimization code (repeated
// per-heuristic child scans, strings.Join path building). The differential
// tests in diff_test.go pin the optimized shared-index implementations to
// these on randomized trees; do not "improve" this file.

import (
	"math"
	"sort"
	"strings"

	"omini/internal/tagtree"
)

func slowChildStats(sub *tagtree.Node) map[string]tagStat {
	stats := make(map[string]tagStat)
	for i, c := range sub.Children {
		if c.IsContent() {
			continue
		}
		s, ok := stats[c.Tag]
		if !ok {
			s.first = i
		}
		s.count++
		stats[c.Tag] = s
	}
	return stats
}

// --- SD ---

func slowSDRank(sub *tagtree.Node) []Ranked {
	stats := slowChildStats(sub)
	if len(stats) == 0 {
		return nil
	}
	maxCount := 0
	for _, s := range stats {
		if s.count > maxCount {
			maxCount = s.count
		}
	}
	threshold := maxCount / 3
	if threshold < 2 {
		threshold = 2
	}

	type entry struct {
		tag   string
		sigma float64
		count int
		first int
	}
	var entries []entry
	for tag, s := range stats {
		if s.count < threshold {
			continue
		}
		gaps := slowConsecutiveDistances(sub, tag)
		if len(gaps) == 0 {
			continue
		}
		entries = append(entries, entry{
			tag:   tag,
			sigma: slowStddev(gaps),
			count: s.count,
			first: s.first,
		})
	}
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		if a.sigma != b.sigma {
			return a.sigma < b.sigma
		}
		if a.count != b.count {
			return a.count > b.count
		}
		return a.first < b.first
	})
	for i := 1; i < len(entries); i++ {
		for j := i; j > 0; j-- {
			hi, lo := entries[j], entries[j-1]
			near := hi.sigma-lo.sigma <= 0.05*hi.sigma
			better := hi.count > lo.count ||
				(hi.count == lo.count && hi.first < lo.first)
			if !near || !better {
				break
			}
			entries[j-1], entries[j] = hi, lo
		}
	}
	out := make([]Ranked, len(entries))
	for i, e := range entries {
		out[i] = Ranked{Tag: e.tag, Score: e.sigma}
	}
	return out
}

func slowConsecutiveDistances(sub *tagtree.Node, tag string) []float64 {
	var (
		gaps    []float64
		started bool
		acc     int
	)
	for _, c := range sub.Children {
		if !c.IsContent() && c.Tag == tag {
			if started {
				gaps = append(gaps, float64(acc))
			}
			started = true
			acc = 0
		}
		if started {
			acc += c.NodeSize()
		}
	}
	return gaps
}

func slowStddev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	mean := 0.0
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	variance := 0.0
	for _, x := range xs {
		d := x - mean
		variance += d * d
	}
	variance /= float64(len(xs))
	return math.Sqrt(variance)
}

// --- RP ---

func slowRPRank(sub *tagtree.Node) []Ranked {
	pairs := slowRPPairs(sub)
	stats := slowChildStats(sub)
	var out []Ranked
	seen := make(map[string]bool)
	for _, p := range pairs {
		if p.Count < rpMinPairCount {
			continue
		}
		tag := p.Pair.First
		if _, isChild := stats[tag]; !isChild || seen[tag] {
			continue
		}
		seen[tag] = true
		out = append(out, Ranked{Tag: tag, Score: float64(p.Count)})
	}
	return out
}

func slowRPPairs(sub *tagtree.Node) []RPPair {
	var (
		pairCount = make(map[TagPair]int)
		tagCount  = make(map[string]int)
		firstSeen = make(map[TagPair]int)
		seq       int
	)
	addPair := func(a, b string) {
		p := TagPair{First: a, Second: b}
		if pairCount[p] == 0 {
			firstSeen[p] = seq
		}
		pairCount[p]++
		seq++
	}

	prevEmpty := ""
	for _, c := range sub.Children {
		if c.IsContent() {
			prevEmpty = ""
			continue
		}
		tagCount[c.Tag]++
		if prevEmpty != "" {
			addPair(prevEmpty, c.Tag)
		}
		if len(c.Children) > 0 {
			if g := c.Children[0]; !g.IsContent() {
				tagCount[g.Tag]++
				addPair(c.Tag, g.Tag)
			}
			prevEmpty = ""
			continue
		}
		prevEmpty = c.Tag
	}

	out := make([]RPPair, 0, len(pairCount))
	for p, c := range pairCount {
		minTag := tagCount[p.First]
		if tc := tagCount[p.Second]; tc < minTag {
			minTag = tc
		}
		diff := c - minTag
		if diff < 0 {
			diff = -diff
		}
		out = append(out, RPPair{Pair: p, Count: c, Diff: diff})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Count != b.Count {
			return a.Count > b.Count
		}
		if a.Diff != b.Diff {
			return a.Diff < b.Diff
		}
		return firstSeen[a.Pair] < firstSeen[b.Pair]
	})
	return out
}

// --- SB ---

func slowSBRank(sub *tagtree.Node) []Ranked {
	pairs := slowSBPairs(sub)
	stats := slowChildStats(sub)
	var out []Ranked
	seen := make(map[string]bool)
	for _, p := range pairs {
		tag := p.Pair.First
		if _, isChild := stats[tag]; !isChild || seen[tag] {
			continue
		}
		seen[tag] = true
		out = append(out, Ranked{Tag: tag, Score: float64(p.Count)})
	}
	return out
}

func slowSBPairs(sub *tagtree.Node) []SBPair {
	pairCount := make(map[TagPair]int)
	firstSeen := make(map[TagPair]int)
	prev := ""
	for i, c := range sub.Children {
		if c.IsContent() {
			prev = ""
			continue
		}
		if prev != "" {
			p := TagPair{First: prev, Second: c.Tag}
			if pairCount[p] == 0 {
				firstSeen[p] = i
			}
			pairCount[p]++
		}
		prev = c.Tag
	}
	out := make([]SBPair, 0, len(pairCount))
	for p, c := range pairCount {
		out = append(out, SBPair{Pair: p, Count: c})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Count != b.Count {
			return a.Count > b.Count
		}
		return firstSeen[a.Pair] < firstSeen[b.Pair]
	})
	return out
}

// --- IPS ---

func slowIPSRank(sub *tagtree.Node) []Ranked {
	stats := slowChildStats(sub)
	var out []Ranked
	seen := make(map[string]bool)
	appendTag := func(tag string, pos int) {
		if seen[tag] {
			return
		}
		if s, ok := stats[tag]; !ok || s.count < ipsMinCount {
			return
		}
		seen[tag] = true
		out = append(out, Ranked{Tag: tag, Score: float64(pos)})
	}
	pos := 1
	for _, tag := range ipsTagLists[sub.Tag] {
		appendTag(tag, pos)
		pos++
	}
	for _, tag := range IPSList {
		appendTag(tag, pos)
		pos++
	}
	return out
}

// --- PP ---

func slowPPRank(sub *tagtree.Node) []Ranked {
	paths := slowPPPaths(sub)
	stats := slowChildStats(sub)
	type best struct {
		count  int
		length int
	}
	bests := make(map[string]best)
	var tags []string
	for _, pc := range paths {
		tag := pc.Path
		if dot := strings.IndexByte(tag, '.'); dot >= 0 {
			tag = tag[:dot]
		}
		length := strings.Count(pc.Path, ".") + 1
		b, ok := bests[tag]
		if !ok {
			tags = append(tags, tag)
			bests[tag] = best{count: pc.Count, length: length}
			continue
		}
		if pc.Count > b.count || (pc.Count == b.count && length > b.length) {
			b.count, b.length = pc.Count, length
			bests[tag] = b
		}
	}
	sort.SliceStable(tags, func(i, j int) bool {
		a, b := bests[tags[i]], bests[tags[j]]
		if a.count != b.count {
			return a.count > b.count
		}
		if a.length != b.length {
			return a.length > b.length
		}
		return stats[tags[i]].first < stats[tags[j]].first
	})
	out := make([]Ranked, 0, len(tags))
	for _, tag := range tags {
		if bests[tag].count < 2 {
			continue
		}
		out = append(out, Ranked{Tag: tag, Score: float64(bests[tag].count)})
	}
	return out
}

func slowPPPaths(sub *tagtree.Node) []PathCount {
	counts := make(map[string]int)
	var stack []string
	var walk func(n *tagtree.Node)
	walk = func(n *tagtree.Node) {
		if n.IsContent() {
			return
		}
		stack = append(stack, n.Tag)
		counts[strings.Join(stack, ".")]++
		for _, c := range n.Children {
			walk(c)
		}
		stack = stack[:len(stack)-1]
	}
	for _, c := range sub.Children {
		walk(c)
	}
	out := make([]PathCount, 0, len(counts))
	for p, c := range counts {
		out = append(out, PathCount{Path: p, Count: c})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Count != b.Count {
			return a.Count > b.Count
		}
		la, lb := strings.Count(a.Path, "."), strings.Count(b.Path, ".")
		if la != lb {
			return la > lb
		}
		return a.Path < b.Path
	})
	return out
}

// --- BYU HC / IT ---

func slowHCRank(sub *tagtree.Node) []Ranked {
	stats := slowChildStats(sub)
	type entry struct {
		tag   string
		count int
		first int
	}
	entries := make([]entry, 0, len(stats))
	for tag, s := range stats {
		entries = append(entries, entry{tag: tag, count: s.count, first: s.first})
	}
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		if a.count != b.count {
			return a.count > b.count
		}
		return a.first < b.first
	})
	out := make([]Ranked, len(entries))
	for i, e := range entries {
		out[i] = Ranked{Tag: e.tag, Score: float64(e.count)}
	}
	return out
}

func slowITRank(sub *tagtree.Node) []Ranked {
	stats := slowChildStats(sub)
	var out []Ranked
	for pos, tag := range itList {
		s, ok := stats[tag]
		if !ok || s.count < itMinCount {
			continue
		}
		out = append(out, Ranked{Tag: tag, Score: float64(pos + 1)})
	}
	return out
}
